package shortcutmining_test

import (
	"fmt"

	"shortcutmining"
)

// The headline workflow: compare the conventional baseline against
// Shortcut Mining on a zoo network.
func ExampleSimulate() {
	net, err := shortcutmining.BuildNetwork("resnet34")
	if err != nil {
		panic(err)
	}
	cfg := shortcutmining.DefaultConfig()
	base, err := shortcutmining.Simulate(net, cfg, shortcutmining.Baseline)
	if err != nil {
		panic(err)
	}
	scm, err := shortcutmining.Simulate(net, cfg, shortcutmining.SCM)
	if err != nil {
		panic(err)
	}
	fmt.Printf("reduction %.1f%%, speedup %.2fx\n",
		100*scm.TrafficReductionVs(base), scm.SpeedupVs(base))
	// Output: reduction 68.8%, speedup 1.80x
}

// Characterize exposes the motivation numbers: how much of a network's
// feature-map traffic is shortcut data.
func ExampleCharacterize() {
	net, err := shortcutmining.BuildNetwork("resnet152")
	if err != nil {
		panic(err)
	}
	ch := shortcutmining.Characterize(net, shortcutmining.Fixed16)
	fmt.Printf("%d shortcut edges, %.1f%% of traffic\n",
		ch.ShortcutEdges, 100*ch.ShortcutShare)
	// Output: 54 shortcut edges, 34.6% of traffic
}

// Custom topologies go through NetworkBuilder and simulate like any
// zoo network.
func ExampleNewNetworkBuilder() {
	b := shortcutmining.NewNetworkBuilder("block", shortcutmining.Shape{C: 8, H: 16, W: 16})
	x := b.Conv("c1", b.InputName(), 8, 3, 1, 1)
	y := b.Conv("c2", x, 8, 3, 1, 1)
	b.Add("residual", x, y)
	net, err := b.Finish()
	if err != nil {
		panic(err)
	}
	fmt.Println(len(net.Layers), "layers,", net.Output().Out)
	// Output: 4 layers, 8x16x16
}

// Experiments regenerate the paper's tables programmatically.
func ExampleRunExperiment() {
	res, err := shortcutmining.RunExperiment("E9")
	if err != nil {
		panic(err)
	}
	// Pinned banks are identical at span 1 and span 8: retention
	// across any number of intermediate layers is free.
	fmt.Println(res.Metrics["pinned/1"] == res.Metrics["pinned/8"])
	// Output: true
}
