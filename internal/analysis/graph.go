package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strings"
)

// graph is the module-wide context the call-graph checks share: a
// conservative static call graph, the guarded-field table, and
// memoized reachability facts.
//
// The graph resolves direct calls only — a call through an interface
// method or a function value has no statically known body, so the
// checks built on it under-approximate (they can miss, never
// over-report, along those edges). That is the right trade for a
// gating linter: every finding is a real static path.
type graph struct {
	mod    *Module
	cfg    Config
	passes []*pass
	// byDir locates the pass owning a source position (suppressions
	// are per-package state).
	byDir map[string]*pass
	// funcs indexes every declared function and method of the module.
	funcs map[*types.Func]*funcNode
	// guards maps a struct field object to its `guarded by` contract.
	guards map[*types.Var]*guard

	nondetMemo map[*types.Func]*witness
	bgMemo     map[*types.Func]*witness
}

// funcNode is one declared function or method with a body.
type funcNode struct {
	fn  *types.Func
	pkg *Package

	// calls are the statically resolved calls to other module
	// functions, in source order (function literals fold into their
	// enclosing declaration).
	calls []callSite
	// nondet are the function's own unsuppressed nondeterministic
	// operations: wall-clock reads, global-rand calls, map ranges.
	nondet []opRef
	// bg are the function's own unsuppressed context.Background/TODO
	// calls, excluding the nil-normalization idiom.
	bg []opRef
	// hasCtx reports whether the signature accepts a context.Context;
	// such functions are checked in their own right, so taint searches
	// do not propagate through them.
	hasCtx bool
}

// callSite is one resolved call expression.
type callSite struct {
	pos    token.Pos
	callee *types.Func
}

// opRef is one primitive operation a taint analysis cares about.
type opRef struct {
	pos  token.Pos
	desc string
}

// witness explains why a function is tainted: the primitive operation
// its call subgraph reaches.
type witness struct {
	op opRef
}

// guard is one `guarded by <mu>` annotation on a struct field.
type guard struct {
	// mu is the sibling field that must be locked while the guarded
	// field is touched.
	mu string
	// owner is the declaring struct's name, for messages.
	owner string
}

// guardedRx extracts the mutex name from a field comment. The phrase
// works inside any comment form and tolerates trailing prose:
// `f int // guarded by mu: detail`.
var guardedRx = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_.]*)`)

// buildGraph walks every package once, collecting declarations, call
// edges, primitive operations, and guarded-field annotations.
func buildGraph(mod *Module, cfg Config, passes []*pass) *graph {
	g := &graph{
		mod: mod, cfg: cfg, passes: passes,
		byDir:      make(map[string]*pass),
		funcs:      make(map[*types.Func]*funcNode),
		guards:     make(map[*types.Var]*guard),
		nondetMemo: make(map[*types.Func]*witness),
		bgMemo:     make(map[*types.Func]*witness),
	}
	for _, p := range passes {
		g.byDir[p.pkg.Dir] = p
		g.collectGuards(p)
		p.eachFunc(func(decl *ast.FuncDecl) {
			fn, _ := p.pkg.Info.Defs[decl.Name].(*types.Func)
			if fn == nil {
				return
			}
			node := &funcNode{fn: fn, pkg: p.pkg, hasCtx: hasCtxParam(fn)}
			g.collectBody(p, decl, node)
			g.funcs[fn] = node
		})
	}
	return g
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// hasCtxParam reports whether fn's signature accepts a context.Context
// parameter.
func hasCtxParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// moduleFunc reports whether fn is declared inside the module under
// analysis.
func (g *graph) moduleFunc(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == g.mod.Path || strings.HasPrefix(pkg.Path(), g.mod.Path+"/")
}

// collectBody records fn's call edges and primitive operations.
// Suppressed operations (scmvet:ok on their line for the relevant
// check) are excluded at the source, so one justified annotation
// clears every transitive caller instead of forcing one per call site.
func (g *graph) collectBody(p *pass, decl *ast.FuncDecl, node *funcNode) {
	allowedBG := nilGuardAllowed(p, decl)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := p.callee(n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if g.moduleFunc(fn) {
				node.calls = append(node.calls, callSite{pos: n.Pos(), callee: fn})
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					g.addNondet(p, node, n.Pos(), "time."+fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && !globalRandAllowed[fn.Name()] {
					g.addNondet(p, node, n.Pos(), "global rand."+fn.Name())
				}
			case "context":
				switch fn.Name() {
				case "Background", "TODO":
					if allowedBG[n.Pos()] || p.suppressedAt(CheckCtxFlow, n.Pos()) {
						return true
					}
					node.bg = append(node.bg, opRef{pos: n.Pos(), desc: "context." + fn.Name()})
				}
			}
		case *ast.RangeStmt:
			t := p.pkg.Info.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); ok {
				g.addNondet(p, node, n.Pos(), "map iteration")
			}
		}
		return true
	})
}

// addNondet records one nondeterministic operation unless its line is
// annotated for determinism or determinism-transitive.
func (g *graph) addNondet(p *pass, node *funcNode, pos token.Pos, desc string) {
	if p.suppressedAt(CheckDeterminism, pos) || p.suppressedAt(CheckDetTransitive, pos) {
		return
	}
	node.nondet = append(node.nondet, opRef{pos: pos, desc: desc})
}

// nilGuardAllowed returns the positions of context.Background/TODO
// calls that implement the sanctioned nil-normalization idiom:
//
//	if ctx == nil { ctx = context.Background() }
//
// where ctx is one of decl's context.Context parameters.
func nilGuardAllowed(p *pass, decl *ast.FuncDecl) map[token.Pos]bool {
	ctxParams := make(map[types.Object]bool)
	if decl.Type.Params != nil {
		for _, field := range decl.Type.Params.List {
			for _, name := range field.Names {
				if obj := p.pkg.Info.Defs[name]; obj != nil && isContextType(obj.Type()) {
					ctxParams[obj] = true
				}
			}
		}
	}
	if len(ctxParams) == 0 {
		return nil
	}
	allowed := make(map[token.Pos]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		cond, ok := ifStmt.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.EQL {
			return true
		}
		id, nilSide := condOperands(cond)
		if id == nil || !nilSide {
			return true
		}
		obj := p.pkg.Info.Uses[id]
		if obj == nil || !ctxParams[obj] {
			return true
		}
		for _, stmt := range ifStmt.Body.List {
			assign, ok := stmt.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
				continue
			}
			lhs, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident)
			if !ok || p.pkg.Info.Uses[lhs] != obj {
				continue
			}
			if call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr); ok {
				allowed[call.Pos()] = true
			}
		}
		return true
	})
	return allowed
}

// condOperands extracts the identifier compared against nil in a
// binary ==, in either operand order.
func condOperands(cond *ast.BinaryExpr) (*ast.Ident, bool) {
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if id, ok := ast.Unparen(cond.X).(*ast.Ident); ok && isNil(cond.Y) {
		return id, true
	}
	if id, ok := ast.Unparen(cond.Y).(*ast.Ident); ok && isNil(cond.X) {
		return id, true
	}
	return nil, false
}

// collectGuards records `guarded by <mu>` field annotations from the
// package's top-level struct declarations and validates that the named
// mutex is a sibling field.
func (g *graph) collectGuards(p *pass) {
	for _, file := range p.pkg.Files {
		for _, decl := range file.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok || gen.Tok != token.TYPE {
				continue
			}
			for _, spec := range gen.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				g.collectStructGuards(p, ts.Name.Name, st)
			}
		}
	}
}

func (g *graph) collectStructGuards(p *pass, owner string, st *ast.StructType) {
	fieldNames := make(map[string]bool)
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			fieldNames[name.Name] = true
		}
	}
	for _, field := range st.Fields.List {
		text := ""
		if field.Doc != nil {
			text += field.Doc.Text() + "\n"
		}
		if field.Comment != nil {
			text += field.Comment.Text()
		}
		m := guardedRx.FindStringSubmatch(text)
		if m == nil {
			continue
		}
		mu := m[1]
		// A plain sibling name must exist; a dotted path ("inner.mu")
		// is trusted as written.
		if !strings.Contains(mu, ".") && !fieldNames[mu] {
			p.report(CheckLocking, field.Pos(),
				"guarded by names %q, which is not a sibling field of %s; fix the annotation", mu, owner)
			continue
		}
		for _, name := range field.Names {
			if obj, ok := p.pkg.Info.Defs[name].(*types.Var); ok {
				g.guards[obj] = &guard{mu: mu, owner: owner}
			}
		}
	}
}

// passAt locates the pass owning a position, for checks that report
// across package boundaries.
func (g *graph) passAt(pos token.Pos) *pass {
	return g.byDir[filepath.Dir(g.mod.Fset.Position(pos).Filename)]
}

// posString renders a position module-root-relative ("pkg/file.go:42").
func (g *graph) posString(pos token.Pos) string {
	position := g.mod.Fset.Position(pos)
	name := position.Filename
	if rel, ok := strings.CutPrefix(name, g.mod.Root+"/"); ok {
		name = rel
	}
	return fmt.Sprintf("%s:%d", name, position.Line)
}

// funcName renders fn module-root-relative for messages
// ("internal/nn.Build", "(internal/sram.Pool).Alloc").
func (g *graph) funcName(fn *types.Func) string {
	return strings.ReplaceAll(fn.FullName(), g.mod.Path+"/", "")
}

// reach reports whether fn's call subgraph contains one of the ops
// selected by ops, descending only through callees follow admits. The
// result is memoized per memo map; a DFS that merely hit an
// in-progress cycle member is not memoized negative, so later queries
// from a different entry point stay correct.
func (g *graph) reach(fn *types.Func, memo map[*types.Func]*witness, stack map[*types.Func]bool,
	ops func(*funcNode) []opRef, follow func(*funcNode) bool) (*witness, bool) {
	if w, ok := memo[fn]; ok {
		return w, true
	}
	if stack[fn] {
		return nil, false
	}
	node := g.funcs[fn]
	if node == nil {
		memo[fn] = nil // external or bodyless: nothing to see
		return nil, true
	}
	if list := ops(node); len(list) > 0 {
		w := &witness{op: list[0]}
		memo[fn] = w
		return w, true
	}
	stack[fn] = true
	defer delete(stack, fn)
	complete := true
	for _, cs := range node.calls {
		cn := g.funcs[cs.callee]
		if cn == nil || !follow(cn) {
			continue
		}
		w, ok := g.reach(cs.callee, memo, stack, ops, follow)
		if w != nil {
			memo[fn] = w
			return w, true
		}
		if !ok {
			complete = false
		}
	}
	if complete {
		memo[fn] = nil
	}
	return nil, complete
}

// reachNondet reports the nondeterministic operation fn reaches, nil
// when its subgraph is clean. The search stops at deterministic
// packages: their functions are checked at their own frontier.
func (g *graph) reachNondet(fn *types.Func) *witness {
	w, _ := g.reach(fn, g.nondetMemo, make(map[*types.Func]bool),
		func(n *funcNode) []opRef { return n.nondet },
		func(n *funcNode) bool { return !contains(g.cfg.DeterministicPkgs, n.pkg.RelPath) })
	return w
}

// reachBackground reports the context.Background/TODO call fn reaches
// through context-free functions, nil when its subgraph is clean. The
// search stops at context-receiving functions: they are checked in
// their own right.
func (g *graph) reachBackground(fn *types.Func) *witness {
	w, _ := g.reach(fn, g.bgMemo, make(map[*types.Func]bool),
		func(n *funcNode) []opRef { return n.bg },
		func(n *funcNode) bool { return !n.hasCtx })
	return w
}
