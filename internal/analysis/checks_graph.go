package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"
)

// mutexMethods are the sync.Mutex/RWMutex acquire entry points; any of
// them counts as holding the guard for the rest of the function (the
// check is flow-insensitive — unlock-then-touch escapes it, which is
// the documented under-approximation).
var mutexMethods = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
}

// checkLocking enforces `guarded by <mu>` field annotations: every read
// or write of a guarded field must happen in a function that acquires
// the named mutex on the same base expression. Functions whose name
// ends in "Locked" are callee-side helpers assumed to run under the
// lock, and values freshly constructed in the function (no concurrent
// aliases yet) are exempt.
func checkLocking(p *pass, g *graph) {
	if len(g.guards) == 0 {
		return
	}
	p.eachFunc(func(decl *ast.FuncDecl) {
		if strings.HasSuffix(decl.Name.Name, "Locked") {
			return
		}
		acquired := lockedBases(p, decl)
		fresh := freshLocals(p, decl)
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := p.pkg.Info.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			field, ok := selection.Obj().(*types.Var)
			if !ok {
				return true
			}
			guard := g.guards[field]
			if guard == nil {
				return true
			}
			base := ast.Unparen(sel.X)
			if id, ok := base.(*ast.Ident); ok && fresh[p.pkg.Info.ObjectOf(id)] {
				return true
			}
			key := types.ExprString(base) + "." + guard.mu
			if !acquired[key] {
				p.report(CheckLocking, sel.Sel.Pos(),
					"%s.%s is guarded by %s but %s does not hold %s; lock it, rename the helper with a Locked suffix, or annotate the seam",
					guard.owner, field.Name(), guard.mu, decl.Name.Name, key)
			}
			return true
		})
	})
}

// lockedBases collects the receiver expressions this function acquires
// a mutex on, keyed by source text ("e.mu", "j.mu").
func lockedBases(p *pass, decl *ast.FuncDecl) map[string]bool {
	acquired := make(map[string]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !mutexMethods[sel.Sel.Name] {
			return true
		}
		fn, _ := p.pkg.Info.Uses[sel.Sel].(*types.Func)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		acquired[types.ExprString(ast.Unparen(sel.X))] = true
		return true
	})
	return acquired
}

// freshLocals collects objects this function constructs itself —
// composite literals, new(T), or zero-value var declarations. A value
// with no concurrent aliases yet needs no lock to initialize.
func freshLocals(p *pass, decl *ast.FuncDecl) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	mark := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		switch r := ast.Unparen(rhs).(type) {
		case *ast.CompositeLit:
		case *ast.UnaryExpr:
			if r.Op != token.AND {
				return
			}
			if _, ok := ast.Unparen(r.X).(*ast.CompositeLit); !ok {
				return
			}
		case *ast.CallExpr:
			if !p.isBuiltin(r, "new") {
				return
			}
		default:
			return
		}
		if obj := p.pkg.Info.Defs[id]; obj != nil {
			fresh[obj] = true
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i := range n.Lhs {
				mark(n.Lhs[i], n.Rhs[i])
			}
		case *ast.DeclStmt:
			gen, ok := n.Decl.(*ast.GenDecl)
			if !ok || gen.Tok != token.VAR {
				return true
			}
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue // initialized vars go through mark's rules, skip
				}
				for _, name := range vs.Names {
					if obj := p.pkg.Info.Defs[name]; obj != nil {
						fresh[obj] = true
					}
				}
			}
		}
		return true
	})
	return fresh
}

// checkCtxFlow enforces that a function receiving a context.Context
// keeps the caller's cancellation live below it: no direct
// context.Background/TODO (nil-normalization excepted), and no call
// into a context-free module function whose subgraph starts a fresh
// context.
func checkCtxFlow(p *pass, g *graph) {
	if isCommandPkg(p.pkg.RelPath) {
		return
	}
	p.eachFunc(func(decl *ast.FuncDecl) {
		fn, _ := p.pkg.Info.Defs[decl.Name].(*types.Func)
		node := g.funcs[fn]
		if node == nil || !node.hasCtx {
			return
		}
		for _, op := range node.bg {
			p.report(CheckCtxFlow, op.pos,
				"%s in a context-receiving function detaches from the caller's cancellation; pass ctx down or annotate the seam",
				op.desc)
		}
		for _, cs := range node.calls {
			cn := g.funcs[cs.callee]
			if cn == nil || cn.hasCtx {
				continue
			}
			if w := g.reachBackground(cs.callee); w != nil {
				p.report(CheckCtxFlow, cs.pos,
					"call drops ctx: %s reaches %s (%s); plumb context through or annotate the seam",
					g.funcName(cs.callee), w.op.desc, g.posString(w.op.pos))
			}
		}
	})
}

// checkDetTransitive extends the determinism contract across package
// boundaries: a function in a deterministic package must not call out
// to a function whose subgraph reads the clock, uses global rand, or
// ranges a map — even where that operation is individually legal.
// Findings land on the frontier call site; propagation stops at other
// deterministic-package functions, which are checked at their own
// frontier.
func checkDetTransitive(p *pass, g *graph) {
	if !contains(p.cfg.DeterministicPkgs, p.pkg.RelPath) {
		return
	}
	p.eachFunc(func(decl *ast.FuncDecl) {
		fn, _ := p.pkg.Info.Defs[decl.Name].(*types.Func)
		node := g.funcs[fn]
		if node == nil {
			return
		}
		for _, cs := range node.calls {
			cn := g.funcs[cs.callee]
			if cn == nil || contains(p.cfg.DeterministicPkgs, cn.pkg.RelPath) {
				continue
			}
			if w := g.reachNondet(cs.callee); w != nil {
				p.report(CheckDetTransitive, cs.pos,
					"call leaves the deterministic boundary: %s reaches %s (%s); make the callee deterministic or annotate the operation",
					g.funcName(cs.callee), w.op.desc, g.posString(w.op.pos))
			}
		}
	})
}

// checkSnapshotStable walks the struct graph reachable from the
// configured serialized-schema roots and requires every field to be
// exported with an explicit json name (or "-"), and to avoid map,
// interface, func, and chan types whose encoding is not schema-stable.
func checkSnapshotStable(g *graph) {
	byRel := make(map[string]*pass, len(g.passes))
	for _, p := range g.passes {
		byRel[p.pkg.RelPath] = p
	}
	seen := make(map[*types.Named]bool)
	var queue []*types.Named
	for _, root := range g.cfg.SnapshotRoots {
		dot := strings.LastIndex(root, ".")
		var named *types.Named
		if dot > 0 {
			if p := byRel[root[:dot]]; p != nil {
				if obj, ok := p.pkg.Pkg.Scope().Lookup(root[dot+1:]).(*types.TypeName); ok {
					named, _ = types.Unalias(obj.Type()).(*types.Named)
				}
			}
		}
		if named == nil || !isStruct(named) {
			if len(g.passes) > 0 {
				g.passes[0].reportRaw(Finding{
					File: "go.mod", Line: 1, Col: 1, Check: CheckSnapshot,
					Message: "configured snapshot root " + root + " does not resolve to a struct type; fix SnapshotRoots so the schema walk cannot silently stop",
				})
			}
			continue
		}
		if !seen[named] {
			seen[named] = true
			queue = append(queue, named)
		}
	}
	for len(queue) > 0 {
		named := queue[0]
		queue = queue[1:]
		p := g.passAt(named.Obj().Pos())
		if p == nil {
			continue
		}
		st := named.Underlying().(*types.Struct)
		g.checkStructFields(p, named.Obj().Name(), st, seen, &queue)
	}
}

func isStruct(named *types.Named) bool {
	_, ok := named.Underlying().(*types.Struct)
	return ok
}

// checkStructFields applies the schema-stability rules to one struct's
// fields and enqueues in-module named structs its fields reach.
func (g *graph) checkStructFields(p *pass, owner string, st *types.Struct, seen map[*types.Named]bool, queue *[]*types.Named) {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			p.report(CheckSnapshot, f.Pos(),
				"unexported field %s of serialized struct %s is invisible to encoding/json; export it or move it out of the schema", f.Name(), owner)
			continue
		}
		if !f.Embedded() {
			name, ok := jsonName(st.Tag(i))
			if !ok {
				p.report(CheckSnapshot, f.Pos(),
					"field %s of serialized struct %s has no json tag; pin the wire name explicitly (`json:\"%s\"`) so renames cannot drift the schema", f.Name(), owner, f.Name())
			} else if name == "" {
				p.report(CheckSnapshot, f.Pos(),
					"field %s of serialized struct %s has a json tag without a name; pin the wire name explicitly so renames cannot drift the schema", f.Name(), owner)
			}
		}
		g.scanFieldType(p, owner, f, f.Type(), seen, queue)
	}
}

// jsonName extracts the name part of a json struct tag. ok is false
// when no json tag is present at all.
func jsonName(tag string) (name string, ok bool) {
	v, ok := reflect.StructTag(tag).Lookup("json")
	if !ok {
		return "", false
	}
	if i := strings.Index(v, ","); i >= 0 {
		v = v[:i]
	}
	return v, true
}

// scanFieldType recursively validates a field's type: containers are
// unwrapped, in-module named structs join the walk, and
// encoding-unstable kinds (map, interface, func, chan) are findings at
// the field, where a scmvet:ok can justify a deterministic-encode seam.
func (g *graph) scanFieldType(p *pass, owner string, f *types.Var, t types.Type, seen map[*types.Named]bool, queue *[]*types.Named) {
	switch t := types.Unalias(t).(type) {
	case *types.Pointer:
		g.scanFieldType(p, owner, f, t.Elem(), seen, queue)
	case *types.Slice:
		g.scanFieldType(p, owner, f, t.Elem(), seen, queue)
	case *types.Array:
		g.scanFieldType(p, owner, f, t.Elem(), seen, queue)
	case *types.Map:
		p.report(CheckSnapshot, f.Pos(),
			"field %s of serialized struct %s is a map; JSON map encoding is not schema-stable — use a sorted slice or annotate the deterministic-encode seam", f.Name(), owner)
	case *types.Interface:
		p.report(CheckSnapshot, f.Pos(),
			"field %s of serialized struct %s is an interface; its dynamic type is not part of the schema — use a concrete type or annotate the seam", f.Name(), owner)
	case *types.Signature:
		p.report(CheckSnapshot, f.Pos(),
			"field %s of serialized struct %s is a func; encoding/json cannot serialize it", f.Name(), owner)
	case *types.Chan:
		p.report(CheckSnapshot, f.Pos(),
			"field %s of serialized struct %s is a channel; encoding/json cannot serialize it", f.Name(), owner)
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() == nil {
			// Universe types: error is a named interface.
			g.scanFieldType(p, owner, f, t.Underlying(), seen, queue)
			return
		}
		path := obj.Pkg().Path()
		if path != g.mod.Path && !strings.HasPrefix(path, g.mod.Path+"/") {
			return // stdlib/external types (time.Time, json.RawMessage) own their encoding
		}
		if isStruct(t) {
			if !seen[t] {
				seen[t] = true
				*queue = append(*queue, t)
			}
			return
		}
		g.scanFieldType(p, owner, f, t.Underlying(), seen, queue)
	case *types.Struct:
		// Anonymous struct field: apply the same rules inline.
		g.checkStructFields(p, owner+"."+f.Name(), t, seen, queue)
	}
}
