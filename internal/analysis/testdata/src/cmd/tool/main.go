// Command tool is cmd-exemption corpus: main programs may panic, read
// the clock, call Must wrappers, and drop errors without findings.
package main

import (
	"fmt"
	"time"

	"example.com/vetcorpus/internal/nn"
)

func main() {
	start := time.Now()
	n := nn.MustBuild("resnet")
	if n == nil {
		panic("unreachable")
	}
	fmt.Println(n.Name, time.Since(start))
}
