// Package bad is suppression-parsing corpus: malformed scmvet:ok
// annotations are themselves findings, and they do not suppress.
package bad

import "errors"

func fallible() error { return errors.New("boom") }

// NoReason omits the mandatory justification.
func NoReason() {
	// scmvet:ok ignorederr
	fallible() // want `\[ignorederr\] call discards its error result`
}

// UnknownCheck names a check that does not exist.
func UnknownCheck() {
	// scmvet:ok speling this reason does not save the typo
	fallible() // want `\[ignorederr\] call discards its error result`
}

// WrongCheck suppresses a different check than the one firing.
func WrongCheck() {
	// scmvet:ok determinism reason aimed at the wrong check
	fallible() // want `\[ignorederr\] call discards its error result`
}
