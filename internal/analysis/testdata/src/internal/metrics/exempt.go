// Package metrics is nopanic-exempt corpus: registration-path panics
// here are sanctioned by the config and produce no findings.
package metrics

// Register panics on programmer error, like the real registry.
func Register(name string) {
	if name == "" {
		panic("metrics: empty name")
	}
}
