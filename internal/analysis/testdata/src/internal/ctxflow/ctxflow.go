// Ctxflow-check corpus: functions that receive a context.Context must
// keep the caller's cancellation live below them.
package ctxflow

import "context"

// Direct starts fresh contexts below the API boundary, both ways.
func Direct(ctx context.Context) {
	c := context.Background() // want `\[ctxflow\] context\.Background in a context-receiving function`
	_ = c
	t := context.TODO() // want `\[ctxflow\] context\.TODO in a context-receiving function`
	_ = t
}

// Normalized is the sanctioned nil-normalization idiom.
func Normalized(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}

// detach documents its lifetime split at the source, which clears
// every transitive caller.
func detach() context.Context {
	// scmvet:ok ctxflow corpus: deliberate lifetime split, documented here once
	return context.Background()
}

// lost silently drops whatever the caller wanted canceled.
func lost() context.Context {
	return context.Background()
}

// Caller shows the frontier rule: the annotated callee is clean, the
// unannotated one is a finding at the call site.
func Caller(ctx context.Context) context.Context {
	_ = detach()
	return lost() // want `\[ctxflow\] call drops ctx: internal/ctxflow\.lost reaches context\.Background`
}

// Passes hands ctx to a context-receiving callee; that callee is
// checked in its own right, so no finding lands here.
func Passes(ctx context.Context) {
	Direct(ctx)
}
