// Determinism-transitive corpus, caller side: core IS a deterministic
// package, so reaching a map iteration through any chain of calls is a
// finding at the frontier call site.
package core

import "example.com/vetcorpus/internal/agg"

// Checksum crosses the deterministic boundary directly into an
// iterating callee.
func Checksum(m map[string]int64) int64 {
	return agg.Sum(m) // want `\[determinism-transitive\] call leaves the deterministic boundary: internal/agg\.Sum reaches map iteration`
}

// Chained reaches the same iteration one hop deeper.
func Chained(ms []map[string]int64) int64 {
	return agg.Total(ms) // want `\[determinism-transitive\] call leaves the deterministic boundary: internal/agg\.Total reaches map iteration`
}

// Count is clean: the callee annotated its iteration at the source.
func Count(m map[string]int64) int {
	return agg.Size(m)
}

// Fingerprint suppresses at the call site instead.
func Fingerprint(m map[string]int64) int64 {
	// scmvet:ok determinism-transitive corpus: order-independent sum, justified at this one caller
	return agg.Sum(m)
}
