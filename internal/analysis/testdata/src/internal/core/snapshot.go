// Snapshotstable corpus: RunSnapshot is a configured schema root
// (DefaultConfig.SnapshotRoots), so every struct reachable from it must
// keep exported, explicitly json-tagged fields and avoid
// encoding-unstable kinds.
package core

// RunSnapshot seeds one violation of each field rule.
type RunSnapshot struct {
	Cycles  int64            `json:"cycles"`
	hidden  int              // want `\[snapshotstable\] unexported field hidden of serialized struct RunSnapshot`
	Missing int64            // want `\[snapshotstable\] field Missing of serialized struct RunSnapshot has no json tag`
	Loose   int64            `json:",omitempty"` // want `\[snapshotstable\] field Loose of serialized struct RunSnapshot has a json tag without a name`
	ByName  map[string]int64 `json:"byName"`     // want `\[snapshotstable\] field ByName of serialized struct RunSnapshot is a map`
	Err     error            `json:"err"`        // want `\[snapshotstable\] field Err of serialized struct RunSnapshot is an interface`
	Layers  []LayerSnap      `json:"layers"`
	// scmvet:ok snapshotstable corpus: encoded through a sorted-key shim
	Seam map[string]int64 `json:"seam"`
}

// LayerSnap is reached through RunSnapshot.Layers, so its fields are
// checked too.
type LayerSnap struct {
	Name   string   `json:"name"`
	Notify func()   `json:"notify"` // want `\[snapshotstable\] field Notify of serialized struct LayerSnap is a func`
	Done   chan int `json:"done"`   // want `\[snapshotstable\] field Done of serialized struct LayerSnap is a channel`
}
