// Package core is determinism-check corpus: it stands in for a
// deterministic simulator package, so wall-clock reads, global rand,
// and map iteration are all violations here.
package core

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock two ways.
func Stamp() (time.Time, time.Duration) {
	now := time.Now()           // want `\[determinism\] time\.Now reads the wall clock`
	d := time.Since(now)        // want `\[determinism\] time\.Since reads the wall clock`
	_ = time.Until(time.Time{}) // want `\[determinism\] time\.Until reads the wall clock`
	return now, d
}

// GlobalRand uses the shared process generator.
func GlobalRand() int {
	f := rand.Float64() // want `\[determinism\] global rand\.Float64 uses the shared process generator`
	_ = f
	return rand.Intn(10) // want `\[determinism\] global rand\.Intn uses the shared process generator`
}

// SeededRand is the sanctioned construction: an explicit source, then
// methods on the instance.
func SeededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// MapOrder iterates maps in a deterministic package.
func MapOrder(m map[string]int64) int64 {
	var sum int64
	for _, v := range m { // want `\[determinism\] map iteration order is not deterministic`
		sum += v
	}
	// scmvet:ok determinism order-independent sum, proven by the test corpus
	for _, v := range m {
		sum += v
	}
	for _, v := range []int64{1, 2} { // slices are ordered; no finding
		sum += v
	}
	return sum
}

// SameLine shows a trailing suppression covering its own line.
func SameLine(m map[string]int64) (n int64) {
	for range m { // scmvet:ok determinism counting entries, order cannot matter
		n++
	}
	return n
}
