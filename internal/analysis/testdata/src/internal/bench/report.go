package bench

// Report is a configured schema root (DefaultConfig.SnapshotRoots) and
// is fully clean: this package must stay finding-free (the determinism
// exemption test pins that), so it doubles as proof that a compliant
// schema produces no snapshotstable noise.
type Report struct {
	Schema string      `json:"schema"`
	Runs   []RunReport `json:"runs"`
}

// RunReport is reached through Report.Runs.
type RunReport struct {
	Name    string  `json:"name"`
	Cycles  int64   `json:"cycles"`
	Seconds float64 `json:"seconds,omitempty"`
}
