// Package bench is determinism-exempt corpus: measurement code whose
// contract is reading the wall clock. Nothing here produces findings —
// the exemption covers time.Now/Since/Until and the global rand
// generator without per-line annotations.
package bench

import (
	"math/rand"
	"time"
)

// Measure times fn the way the real harness does: bare wall-clock
// reads, no injected Clock, no scmvet:ok comments.
func Measure(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// Deadline uses the third forbidden-elsewhere helper.
func Deadline(t time.Time) time.Duration {
	return time.Until(t)
}

// Jitter draws from the process-global generator, which the exemption
// also sanctions (benchmark jitter need not be reproducible).
func Jitter() int {
	return rand.Int()
}
