// Determinism-transitive corpus, callee side: agg is NOT a
// deterministic package, so its map iterations are individually legal —
// but deterministic packages must not reach them through the call
// graph.
package agg

// Sum ranges a map; legal here, poison for deterministic callers.
func Sum(m map[string]int64) int64 {
	var s int64
	for _, v := range m {
		s += v
	}
	return s
}

// Total reaches Sum's iteration one hop deeper.
func Total(ms []map[string]int64) int64 {
	var s int64
	for _, m := range ms {
		s += Sum(m)
	}
	return s
}

// Size annotates its iteration at the source, which clears every
// transitive caller at once.
func Size(m map[string]int64) int {
	n := 0
	for range m { // scmvet:ok determinism counting entries, order cannot matter
		n++
	}
	return n
}
