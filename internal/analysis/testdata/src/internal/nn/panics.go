// Package nn is nopanic-check corpus.
package nn

import "errors"

// Network is a stand-in result type.
type Network struct{ Name string }

// Build returns an error like library code should.
func Build(name string) (*Network, error) {
	if name == "" {
		return nil, errors.New("nn: empty name")
	}
	return &Network{Name: name}, nil
}

// MustBuild is a checked wrapper; panicking here is the documented
// convention and not a finding.
func MustBuild(name string) *Network {
	n, err := Build(name)
	if err != nil {
		panic(err)
	}
	return n
}

// Validate panics instead of returning an error.
func Validate(n *Network) {
	if n == nil {
		panic("nn: nil network") // want `\[nopanic\] library code must return an error instead of panicking`
	}
}

// FromLibrary calls a Must wrapper outside cmd/ and tests.
func FromLibrary() *Network {
	return MustBuild("resnet") // want `\[nopanic\] MustBuild may panic; library code must use the error-returning variant`
}

// Invariant shows the suppression escape hatch for true invariants.
func Invariant(ok bool) {
	if !ok {
		// scmvet:ok nopanic corpus invariant, unreachable by construction
		panic("nn: broken invariant")
	}
}
