// Package tiling is accounting-check corpus: a deterministic package
// that must not write the dram.Traffic ledger.
package tiling

import "example.com/vetcorpus/internal/dram"

// Stats carries a paper-facing ledger field.
type Stats struct {
	Traffic dram.Traffic
}

// LeakBytes writes ledgers every forbidden way.
func LeakBytes(s *Stats, ch *dram.Channel, t *dram.Traffic) {
	s.Traffic[0] += 4096        // want `\[accounting\] write to traffic ledger outside internal/dram/internal/sram`
	s.Traffic = dram.Traffic{}  // want `\[accounting\] write to traffic ledger outside internal/dram/internal/sram`
	s.Traffic[1]++              // want `\[accounting\] write to traffic ledger outside internal/dram/internal/sram`
	t[2] = 7                    // want `\[accounting\] write to traffic ledger outside internal/dram/internal/sram`
	s.Traffic.Add(ch.Traffic()) // want `\[accounting\] Add mutates a traffic ledger outside internal/dram/internal/sram`
}

// ScratchMath copies the tally into locals; value-copy arithmetic is
// not a ledger write.
func ScratchMath(ch *dram.Channel) int64 {
	before := ch.Traffic()
	delta := ch.Traffic()
	for c := range delta {
		delta[c] -= before[c]
	}
	delta.Add(before) // mutates the local copy only
	return delta.Total()
}

// Aggregate is an annotated seam, like RunStats aggregation in the
// real simulator.
func Aggregate(s *Stats, ch *dram.Channel) {
	s.Traffic = ch.Traffic() // scmvet:ok accounting aggregation of the channel's own tally, corpus seam
}
