// Snapshotstable corpus: Record is the durable-log schema root. One
// seeded drift proves roots beyond the first are walked.
package journal

// Record is a configured schema root (DefaultConfig.SnapshotRoots).
type Record struct {
	Seq     uint64 `json:"seq"`
	Payload []byte `json:"payload"`
	State   int    // want `\[snapshotstable\] field State of serialized struct Record has no json tag`
}
