// Locking-check corpus: `guarded by <mu>` field annotations and every
// way code may legitimately or illegitimately touch a guarded field.
package locked

import "sync"

// Counter guards its tallies with a plain Mutex.
type Counter struct {
	mu   sync.Mutex
	n    int64 // guarded by mu
	peak int64 // guarded by mu
}

// Add is the clean pattern: lock, defer unlock, touch.
func (c *Counter) Add(d int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
	if c.n > c.peak {
		c.peak = c.n
	}
}

// Racy reads a guarded field with no lock in sight.
func (c *Counter) Racy() int64 {
	return c.n // want `\[locking\] Counter\.n is guarded by mu but Racy does not hold c\.mu`
}

// snapshotLocked carries the Locked suffix: the caller holds the lock.
func (c *Counter) snapshotLocked() (int64, int64) {
	return c.n, c.peak
}

// Snapshot shows the convention end to end.
func (c *Counter) Snapshot() (int64, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapshotLocked()
}

// New initializes guarded fields on a value it just built — no
// concurrent aliases exist yet, so no lock is needed.
func New(start int64) *Counter {
	c := &Counter{}
	c.n = start
	return c
}

// Approx documents a deliberately racy monitoring read.
func (c *Counter) Approx() int64 {
	// scmvet:ok locking monitoring read; a stale value is acceptable here
	return c.n
}

// Meter guards a value with an RWMutex; RLock counts as holding it.
type Meter struct {
	mu sync.RWMutex
	v  float64 // guarded by mu
}

// Get holds the read lock.
func (m *Meter) Get() float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.v
}

// Set holds the write lock.
func (m *Meter) Set(v float64) {
	m.mu.Lock()
	m.v = v
	m.mu.Unlock()
}

// Peek reads without either lock.
func (m *Meter) Peek() float64 {
	return m.v // want `\[locking\] Meter\.v is guarded by mu but Peek does not hold m\.mu`
}

// Orphan names a mutex that is not a sibling field; the annotation
// itself is the bug.
type Orphan struct {
	v int // guarded by lock // want `\[locking\] guarded by names "lock", which is not a sibling field of Orphan`
}

// Use keeps Orphan referenced.
func Use(o *Orphan) int { return o.v }
