// Package util is ignorederr-check corpus.
package util

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
)

func fallible() error { return errors.New("boom") }

func twoResults() (int, error) { return 0, errors.New("boom") }

// Discards drops errors every forbidden way.
func Discards() {
	fallible()           // want `\[ignorederr\] call discards its error result`
	_ = fallible()       // want `\[ignorederr\] error assigned to blank`
	v, _ := twoResults() // want `\[ignorederr\] error assigned to blank`
	_ = v
}

// Handled is the clean variant.
func Handled() error {
	if err := fallible(); err != nil {
		return err
	}
	v, err := twoResults()
	if err != nil {
		return err
	}
	_ = v
	return nil
}

// NeverFails exercises the static-nil allowlist: strings.Builder,
// hash.Hash, and fmt.Fprintf into either.
func NeverFails() string {
	var sb strings.Builder
	sb.WriteString("hello")
	fmt.Fprintf(&sb, " %d", 42)
	h := fnv.New64a()
	h.Write([]byte(sb.String()))
	return fmt.Sprintf("%x", h.Sum64())
}

// Annotated documents why the discard is safe.
func Annotated() {
	// scmvet:ok ignorederr corpus: failure here is harmless by design
	fallible()
}
