// Package dram is accounting-check corpus: it defines the ledger type
// and is allowed to write it.
package dram

// NumClasses mirrors the real traffic-class count.
const NumClasses = 3

// Traffic is the per-class byte ledger named by the test config.
type Traffic [NumClasses]int64

// Total sums every class.
func (t Traffic) Total() int64 {
	var sum int64
	for _, b := range t {
		sum += b
	}
	return sum
}

// Add accumulates another tally (a mutating pointer method).
func (t *Traffic) Add(o Traffic) {
	for c := range t {
		t[c] += o[c]
	}
}

// Channel is the only sanctioned writer of Traffic.
type Channel struct {
	traffic Traffic
}

// Transfer records bytes; writes here are allowed (defining package).
func (ch *Channel) Transfer(class int, bytes int64) {
	ch.traffic[class] += bytes
}

// Traffic returns the tally.
func (ch *Channel) Traffic() Traffic { return ch.traffic }
