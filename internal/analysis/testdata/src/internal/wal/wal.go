// Package wal is ignorederr-check corpus for durable-write idioms: on
// an fsync-on-commit path, a discarded Sync or Close error silently
// converts "durable" into "maybe durable", so the check must see every
// step of the write→sync→close chain handled.
package wal

import "os"

// CommitLossy drops errors at each stage of the durable-write chain.
func CommitLossy(f *os.File, line []byte) {
	f.Write(line) // want `\[ignorederr\] call discards its error result`
	f.Sync()      // want `\[ignorederr\] call discards its error result`
	f.Close()     // want `\[ignorederr\] call discards its error result`
}

// CommitBlank launders the fsync result through blank instead.
func CommitBlank(f *os.File, line []byte) {
	_, _ = f.Write(line) // want `\[ignorederr\] error assigned to blank`
	_ = f.Sync()         // want `\[ignorederr\] error assigned to blank`
}

// Commit is the clean variant: a record is committed only when the
// write and the fsync both succeeded, and a failed close after a clean
// sync still fails the commit.
func Commit(f *os.File, line []byte) error {
	if _, err := f.Write(line); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// Abort documents the one legitimate discard: closing a file whose
// write already failed is cleanup, not commit.
func Abort(f *os.File, err error) error {
	// scmvet:ok ignorederr corpus: best-effort close on the error path; the write error is what the caller needs
	f.Close()
	return err
}
