module example.com/vetcorpus

go 1.22
