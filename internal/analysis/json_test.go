package analysis

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files instead of comparing")

// TestGoldenJSON pins the machine-readable output: the corpus findings,
// encoded exactly as scm-vet -json does, must match testdata/golden.json
// byte for byte. Regenerate with go test ./internal/analysis -update.
func TestGoldenJSON(t *testing.T) {
	_, findings := corpusFindings(t)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(findings); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON output drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}
