package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// RelPath is the package directory relative to the module root,
	// slash-separated ("" for the root package, "internal/core", ...).
	RelPath string
	// Path is the full import path.
	Path string
	// Dir is the absolute directory.
	Dir string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Src holds the raw bytes of each file in Files (same order);
	// suppression parsing needs to see line prefixes.
	Src [][]byte
	// Pkg and Info are the go/types results.
	Pkg  *types.Package
	Info *types.Info
}

// Module is a fully loaded and type-checked Go module.
type Module struct {
	// Root is the absolute module root (the directory with go.mod).
	Root string
	// Path is the module path from go.mod.
	Path string
	// Fset positions every file of every package.
	Fset *token.FileSet
	// Pkgs holds every package in dependency (topological) order.
	Pkgs []*Package
}

// RelType renders a named type as "<pkg-rel-path>.<Name>" when the type
// belongs to this module ("internal/dram.Traffic"), or as its full
// qualified name otherwise. Configs name ledger types in this form so
// the same rules apply to the test corpus module.
func (m *Module) RelType(obj *types.TypeName) string {
	pkg := obj.Pkg()
	if pkg == nil {
		return obj.Name()
	}
	path := pkg.Path()
	if path == m.Path {
		return "." + obj.Name()
	}
	if rest, ok := strings.CutPrefix(path, m.Path+"/"); ok {
		return rest + "." + obj.Name()
	}
	return path + "." + obj.Name()
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p == "" {
				break
			}
			return p, nil
		}
	}
	return "", fmt.Errorf("analysis: no module path in %s", gomod)
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod at or above %s", dir)
		}
		dir = parent
	}
}

// chainImporter resolves module-internal imports from the packages
// already checked and everything else (the standard library) through
// the compiler's source importer. Using only the source importer keeps
// the loader dependency-free and independent of prebuilt export data.
type chainImporter struct {
	done map[string]*types.Package
	std  types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.done[path]; ok {
		return p, nil
	}
	return c.std.Import(path)
}

// LoadModule parses and type-checks every non-test package under root
// (a directory containing go.mod), using only the standard library.
// Directories named testdata or vendor, and hidden or underscore
// directories, are skipped — the same set the go tool ignores.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	mod := &Module{Root: root, Path: modPath, Fset: token.NewFileSet()}

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		// A nested module is a separate unit; stay out of it.
		if path != root {
			if _, statErr := os.Stat(filepath.Join(path, "go.mod")); statErr == nil {
				return filepath.SkipDir
			}
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}

	byPath := make(map[string]*Package)
	for _, dir := range dirs {
		bp, err := build.ImportDir(dir, 0)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue
			}
			return nil, fmt.Errorf("analysis: %s: %w", dir, err)
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		rel = filepath.ToSlash(rel)
		if rel == "." {
			rel = ""
		}
		imp := modPath
		if rel != "" {
			imp = modPath + "/" + rel
		}
		p := &Package{RelPath: rel, Path: imp, Dir: dir}
		files := append([]string(nil), bp.GoFiles...)
		sort.Strings(files)
		for _, name := range files {
			full := filepath.Join(dir, name)
			src, err := os.ReadFile(full)
			if err != nil {
				return nil, err
			}
			f, err := parser.ParseFile(mod.Fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			p.Files = append(p.Files, f)
			p.Src = append(p.Src, src)
		}
		byPath[imp] = p
	}

	order, err := topoSort(byPath, modPath)
	if err != nil {
		return nil, err
	}

	done := make(map[string]*types.Package)
	imp := &chainImporter{done: done, std: importer.ForCompiler(mod.Fset, "source", nil)}
	for _, p := range order {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Uses:       make(map[*ast.Ident]types.Object),
			Defs:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		var terrs []error
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { terrs = append(terrs, err) },
		}
		tpkg, err := conf.Check(p.Path, mod.Fset, p.Files, info)
		if len(terrs) > 0 {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", p.Path, terrs[0])
		}
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", p.Path, err)
		}
		done[p.Path] = tpkg
		p.Pkg, p.Info = tpkg, info
		mod.Pkgs = append(mod.Pkgs, p)
	}
	return mod, nil
}

// topoSort orders packages so every module-internal import precedes its
// importer.
func topoSort(byPath map[string]*Package, modPath string) ([]*Package, error) {
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = iota
		visiting
		visited
	)
	state := make(map[string]int)
	var order []*Package
	var visit func(path string, stack []string) error
	visit = func(path string, stack []string) error {
		switch state[path] {
		case visited:
			return nil
		case visiting:
			return fmt.Errorf("analysis: import cycle through %s (%s)", path, strings.Join(stack, " -> "))
		}
		state[path] = visiting
		p := byPath[path]
		var deps []string
		for _, f := range p.Files {
			for _, spec := range f.Imports {
				target := strings.Trim(spec.Path.Value, `"`)
				if target == modPath || strings.HasPrefix(target, modPath+"/") {
					if _, ok := byPath[target]; ok {
						deps = append(deps, target)
					}
				}
			}
		}
		sort.Strings(deps)
		for _, d := range deps {
			if err := visit(d, append(stack, path)); err != nil {
				return err
			}
		}
		state[path] = visited
		order = append(order, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}
