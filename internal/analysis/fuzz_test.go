package analysis

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzSuppressionDirective hammers the scmvet:ok directive parser with
// arbitrary annotation tails and holds its invariants: it never
// panics, a success names only known checks, and a failure carries an
// actionable message.
func FuzzSuppressionDirective(f *testing.F) {
	// Well-formed.
	f.Add(" determinism order-independent sum")
	f.Add(" locking monitoring read; staleness acceptable")
	f.Add(" determinism,ctxflow shared seam across two contracts")
	f.Add("\tdeterminism-transitive\ttab-separated reason")
	// Malformed: missing reason.
	f.Add(" determinism")
	f.Add(" locking\n")
	// Malformed: unknown or mangled check lists.
	f.Add(" speling the reason")
	f.Add(" determinism,,nopanic double comma")
	f.Add(" determinism, nopanic space after comma")
	f.Add(" ,determinism leading comma")
	f.Add(" determinism, trailing comma then reason")
	f.Add(" suppress the pseudo-check is not selectable")
	// Degenerate.
	f.Add("")
	f.Add(" ")
	f.Add("\x00\xff")
	f.Add(strings.Repeat("determinism,", 1000) + " reason")

	known := AllChecks()
	f.Fuzz(func(t *testing.T, rest string) {
		checks, problem := ParseDirective(rest)
		if problem != "" {
			if len(checks) != 0 {
				t.Fatalf("ParseDirective(%q) returned checks %v alongside problem %q", rest, checks, problem)
			}
			if utf8.ValidString(rest) && !strings.Contains(problem, "scmvet:ok") {
				t.Fatalf("problem %q does not mention the directive form", problem)
			}
			return
		}
		if len(checks) == 0 {
			t.Fatalf("ParseDirective(%q) succeeded with no checks", rest)
		}
		for _, c := range checks {
			if !contains(known, c) {
				t.Fatalf("ParseDirective(%q) accepted unknown check %q", rest, c)
			}
		}
		// A successful parse implies at least two whitespace-separated
		// fields: the check list and a non-empty reason.
		if fields := strings.Fields(rest); len(fields) < 2 {
			t.Fatalf("ParseDirective(%q) succeeded without a reason", rest)
		}
	})
}
