package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// corpusState loads the testdata corpus module once per test process —
// type-checking pulls the standard library through the source importer,
// which is worth amortizing.
var corpusState struct {
	once     sync.Once
	mod      *Module
	findings []Finding
	err      error
}

func corpusFindings(t *testing.T) (*Module, []Finding) {
	t.Helper()
	corpusState.once.Do(func() {
		mod, err := LoadModule(filepath.Join("testdata", "src"))
		if err != nil {
			corpusState.err = err
			return
		}
		corpusState.mod = mod
		corpusState.findings = Run(mod, DefaultConfig())
	})
	if corpusState.err != nil {
		t.Fatalf("loading corpus: %v", corpusState.err)
	}
	return corpusState.mod, corpusState.findings
}

// wantRx extracts the backquoted patterns of a // want comment.
var wantRx = regexp.MustCompile("`([^`]+)`")

// collectWants scans the corpus sources for // want annotations and
// returns them keyed by file:line.
func collectWants(t *testing.T, root string) map[string][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string][]*regexp.Regexp)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		for i, line := range strings.Split(string(data), "\n") {
			_, spec, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			key := fmt.Sprintf("%s:%d", rel, i+1)
			for _, m := range wantRx.FindAllStringSubmatch(spec, -1) {
				rx, err := regexp.Compile(m[1])
				if err != nil {
					return fmt.Errorf("%s: bad want pattern %q: %v", key, m[1], err)
				}
				wants[key] = append(wants[key], rx)
			}
			if len(wantRx.FindAllString(spec, -1)) == 0 {
				return fmt.Errorf("%s: want comment with no backquoted pattern", key)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// TestCorpusWant runs every check over the corpus module and matches
// findings against the inline // want annotations, in both directions:
// an unexpected finding fails, and an unmatched want fails. The
// suppress pseudo-check is asserted separately (its findings land on
// comment lines, where want annotations cannot live).
func TestCorpusWant(t *testing.T) {
	_, findings := corpusFindings(t)
	wants := collectWants(t, filepath.Join("testdata", "src"))

	for _, f := range findings {
		if f.Check == CheckSuppress {
			continue
		}
		key := fmt.Sprintf("%s:%d", f.File, f.Line)
		text := fmt.Sprintf("[%s] %s", f.Check, f.Message)
		matched := false
		rest := wants[key][:0:0]
		for _, rx := range wants[key] {
			if !matched && rx.MatchString(text) {
				matched = true
				continue
			}
			rest = append(rest, rx)
		}
		wants[key] = rest
		if !matched {
			t.Errorf("unexpected finding %s: %s", key, text)
		}
	}
	for key, rxs := range wants {
		for _, rx := range rxs {
			t.Errorf("%s: expected finding matching %q, got none", key, rx)
		}
	}
}

// TestSuppressionFindings pins the malformed-annotation behavior: a
// scmvet:ok without a reason and one naming an unknown check are
// reported, and neither suppresses the finding it sat above.
func TestSuppressionFindings(t *testing.T) {
	_, findings := corpusFindings(t)
	var got []Finding
	for _, f := range findings {
		if f.Check == CheckSuppress {
			got = append(got, f)
		}
	}
	if len(got) != 2 {
		t.Fatalf("suppress findings = %d, want 2: %v", len(got), got)
	}
	for _, f := range got {
		if f.File != "internal/bad/suppress.go" {
			t.Errorf("suppress finding in %s, want internal/bad/suppress.go", f.File)
		}
	}
	if !strings.Contains(got[0].Message, "needs a check name and a reason") {
		t.Errorf("first suppress finding = %q, want missing-reason complaint", got[0].Message)
	}
	if !strings.Contains(got[1].Message, `unknown check "speling"`) {
		t.Errorf("second suppress finding = %q, want unknown-check complaint", got[1].Message)
	}
}

// TestValidSuppressionsConsume checks that the corpus's well-formed
// annotations removed their findings: no finding may remain on a line
// covered by a matching scmvet:ok.
func TestValidSuppressionsConsume(t *testing.T) {
	_, findings := corpusFindings(t)
	for _, f := range findings {
		if strings.Contains(f.Message, "scmvet:ok") && f.Check != CheckSuppress {
			t.Errorf("finding about a suppression comment escaped: %+v", f)
		}
	}
	// The annotated seam in the accounting corpus must not fire.
	for _, f := range findings {
		if f.File == "internal/tiling/acct.go" && f.Check == CheckAccounting && f.Line > 20 {
			if strings.Contains(f.Message, "Aggregate") {
				t.Errorf("annotated aggregation seam still flagged: %+v", f)
			}
		}
	}
}

// writeModule materializes a throwaway module for violation seeding.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		full := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestSeededViolation is the acceptance drill: dropping a time.Now into
// internal/core of a clean module must produce exactly one determinism
// finding at that file and line.
func TestSeededViolation(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/seeded\n\ngo 1.22\n",
		"internal/core/clean.go": `package core

// Pure is contract-clean.
func Pure(a, b int64) int64 { return a + b }
`,
		"internal/core/bad.go": `package core

import "time"

// Bad reads the wall clock in a deterministic package.
func Bad() time.Time {
	return time.Now()
}
`,
	})
	mod, err := LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SnapshotRoots = nil // the throwaway module defines no schema roots
	findings := Run(mod, cfg)
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly one", findings)
	}
	f := findings[0]
	if f.File != "internal/core/bad.go" || f.Line != 7 || f.Check != CheckDeterminism {
		t.Errorf("finding = %+v, want determinism at internal/core/bad.go:7", f)
	}
	if want := "internal/core/bad.go:7: [determinism]"; !strings.HasPrefix(f.String(), want) {
		t.Errorf("String() = %q, want prefix %q", f.String(), want)
	}
}

// TestCheckSelection runs a single check over the corpus and verifies
// the others stay silent.
func TestCheckSelection(t *testing.T) {
	mod, _ := corpusFindings(t)
	cfg := DefaultConfig()
	cfg.Checks = []string{CheckNoPanic}
	for _, f := range Run(mod, cfg) {
		if f.Check != CheckNoPanic && f.Check != CheckSuppress {
			t.Errorf("check selection leaked %+v", f)
		}
	}
}

// TestFindingString pins the vet output format the CI step greps.
func TestFindingString(t *testing.T) {
	f := Finding{File: "internal/core/sim.go", Line: 42, Col: 7, Check: CheckDeterminism, Message: "boom"}
	if got, want := f.String(), "internal/core/sim.go:42: [determinism] boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestDeterminismExemptPkg pins the internal/bench contract: the
// corpus package full of bare time.Now/Since/Until and global-rand
// reads produces zero findings, because measuring wall-clock time is
// that package's job. Removing the exemption from DefaultConfig must
// fail this test.
func TestDeterminismExemptPkg(t *testing.T) {
	_, findings := corpusFindings(t)
	for _, f := range findings {
		if strings.HasPrefix(f.File, "internal/bench/") {
			t.Errorf("determinism-exempt package flagged: %+v", f)
		}
	}

	// The exemption is per-package, not global: the same wall-clock
	// read outside internal/bench still fires.
	cfg := DefaultConfig()
	cfg.DeterminismExemptPkgs = nil
	mod, err := LoadModule(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	var benchFindings int
	for _, f := range Run(mod, cfg) {
		if strings.HasPrefix(f.File, "internal/bench/") && f.Check == CheckDeterminism {
			benchFindings++
		}
	}
	if benchFindings == 0 {
		t.Fatal("corpus bench package produced no determinism findings without the exemption; the corpus no longer exercises the check")
	}
}
