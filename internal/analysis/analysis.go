// Package analysis is scm-vet: a standard-library-only static analyzer
// that enforces this repository's simulator contracts at review time
// instead of waiting for a golden test or a cache key to diverge.
//
// Four intra-package checks run over every non-test package of the
// module:
//
//   - determinism: no wall-clock reads (time.Now/Since/Until) and no
//     global math/rand calls anywhere in library code, and no ranging
//     over maps in the deterministic packages whose outputs feed
//     RunStats, Traffic ledgers, metrics snapshots, or cache keys.
//   - nopanic: library packages return errors instead of panicking.
//     Checked Must* wrappers may panic but may only be called from
//     cmd/, examples, and tests.
//   - accounting: the paper-facing Traffic ledgers are written only by
//     the memory models (internal/dram, internal/sram); everything else
//     must go through a Channel/Pool so retry or tenancy bytes cannot
//     leak into headline numbers.
//   - ignorederr: library code must not discard error results, either
//     by a bare call statement or by assigning them to blank.
//
// Four more checks run on top of a conservative module-wide call graph
// (direct calls only — calls through interfaces and function values are
// invisible, so these checks under-approximate; see graph.go):
//
//   - locking: struct fields annotated `guarded by <mu>` may only be
//     read or written inside a function that locks (or RLocks) the
//     named sibling mutex on the same base expression. Functions whose
//     name ends in "Locked" are assumed to be called with the lock
//     held; constructors touching a value they just built are exempt.
//   - ctxflow: a function that receives a context.Context must not
//     start a fresh context below it — neither by calling
//     context.Background/TODO directly (the `if ctx == nil { ctx =
//     context.Background() }` normalization idiom is allowed) nor by
//     calling a context-free module function that reaches one through
//     the call graph.
//   - snapshotstable: every struct reachable from the configured
//     serialized-schema roots (core.RunSnapshot, journal records,
//     BENCH_*.json) must have only exported fields with explicit json
//     tags, and no map, interface, func, or chan fields — schema drift
//     there silently breaks crash recovery and the bench -check gate.
//   - determinism-transitive: a function in a deterministic package
//     must not *reach* a wall-clock read, global-rand call, or map
//     range through the call graph, even when the operation lives in a
//     package where it is individually legal. Findings land on the
//     frontier call site; annotating the operation's own line with
//     determinism or determinism-transitive clears every caller.
//
// Findings can be suppressed per line with a justified annotation:
//
//	// scmvet:ok <check>[,<check>] <reason>
//
// The reason is mandatory; a bare "scmvet:ok determinism" is itself
// reported. The comment covers its own line, or the following line when
// it stands alone.
package analysis

import (
	"bytes"
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Check names, as they appear in findings and suppression comments.
const (
	CheckDeterminism   = "determinism"
	CheckNoPanic       = "nopanic"
	CheckAccounting    = "accounting"
	CheckIgnoredErr    = "ignorederr"
	CheckLocking       = "locking"
	CheckCtxFlow       = "ctxflow"
	CheckSnapshot      = "snapshotstable"
	CheckDetTransitive = "determinism-transitive"
	// CheckSuppress reports malformed scmvet:ok annotations; it cannot
	// itself be suppressed.
	CheckSuppress = "suppress"
)

// AllChecks lists every selectable check in output order.
func AllChecks() []string {
	return []string{
		CheckDeterminism, CheckNoPanic, CheckAccounting, CheckIgnoredErr,
		CheckLocking, CheckCtxFlow, CheckSnapshot, CheckDetTransitive,
	}
}

// Finding is one rule violation.
type Finding struct {
	// File is the path relative to the module root.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Check is the rule that fired (determinism, nopanic, ...).
	Check   string `json:"check"`
	Message string `json:"message"`
}

// String renders the finding in the vet-style file:line: [check] form
// the CI step greps for.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Check, f.Message)
}

// Config tunes the checks to a module's layout. Paths are relative to
// the module root so the same defaults apply to the test corpus.
type Config struct {
	// Checks selects which rules run; nil means all.
	Checks []string

	// DeterministicPkgs are the packages whose outputs must be
	// bit-identical across runs: map iteration order is forbidden there.
	// The call rules (wall clock, global rand) apply to every library
	// package regardless.
	DeterministicPkgs []string

	// DeterminismExemptPkgs are library packages the determinism check
	// skips entirely — measurement code whose contract is reading the
	// wall clock (internal/bench). The exemption is by package, not by
	// annotation, because every timing read there is legitimate and
	// line-level scmvet:ok noise would drown the real annotations.
	DeterminismExemptPkgs []string

	// NoPanicExemptPkgs may panic: documented must-not-fail registration
	// paths where returning an error would be worse than crashing.
	NoPanicExemptPkgs []string

	// LedgerTypes are the byte-accounting types (as "relpkg.Name") whose
	// values may only be written inside LedgerWriterPkgs.
	LedgerTypes []string

	// LedgerWriterPkgs are the packages allowed to write ledger values —
	// the memory models that actually move the bytes.
	LedgerWriterPkgs []string

	// NeverFailTypes are types whose error results are statically known
	// to be nil (strings.Builder, bytes.Buffer, hash.Hash); discarding
	// their errors is fine. A leading * is ignored when matching.
	NeverFailTypes []string

	// SnapshotRoots name the serialized-schema root types (as
	// "relpkg.Name", unexported names allowed) whose reachable struct
	// graph the snapshotstable check walks. A configured root that no
	// longer resolves is itself a finding, so a rename cannot silently
	// turn the check off.
	SnapshotRoots []string
}

// DefaultConfig returns the contract configuration for this repository.
func DefaultConfig() Config {
	return Config{
		DeterministicPkgs: []string{
			"internal/core", "internal/sched", "internal/sram",
			"internal/dram", "internal/tiling", "internal/fused",
			"internal/dse", "internal/report", "internal/stats",
			"internal/metrics", "internal/noc", "internal/cluster",
		},
		DeterminismExemptPkgs: []string{"internal/bench"},
		NoPanicExemptPkgs:     []string{"internal/metrics"},
		LedgerTypes:           []string{"internal/dram.Traffic"},
		LedgerWriterPkgs:      []string{"internal/dram", "internal/sram"},
		NeverFailTypes:        []string{"strings.Builder", "bytes.Buffer", "hash.Hash", "hash.Hash32", "hash.Hash64"},
		SnapshotRoots: []string{
			"internal/core.RunSnapshot", "internal/journal.Record", "internal/bench.Report",
		},
	}
}

func (c Config) checkEnabled(name string) bool {
	if len(c.Checks) == 0 {
		return true
	}
	for _, n := range c.Checks {
		if n == name {
			return true
		}
	}
	return false
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// isCommandPkg reports whether rel is a main-program directory exempt
// from the library-code rules.
func isCommandPkg(rel string) bool {
	return rel == "cmd" || strings.HasPrefix(rel, "cmd/") ||
		rel == "examples" || strings.HasPrefix(rel, "examples/")
}

// suppression is one parsed scmvet:ok annotation.
type suppression struct {
	checks []string
	line   int // the line the annotation covers
	pos    token.Pos
	used   bool
}

// suppressions indexes a package's annotations by file and line.
type suppressions map[string]map[int][]*suppression

// ParseDirective parses the text following the "scmvet:ok" marker into
// its check list. A non-empty problem is the exact message reported as
// a suppress finding: a directive needs at least one known check name
// and a reason. Exported for the fuzz target; never panics on any
// input.
func ParseDirective(rest string) (checks []string, problem string) {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return nil, "scmvet:ok needs a check name and a reason: // scmvet:ok <check>[,<check>] <reason>"
	}
	checks = strings.Split(fields[0], ",")
	for _, name := range checks {
		if !contains(AllChecks(), name) {
			return nil, fmt.Sprintf("scmvet:ok names unknown check %q (have %s)", name, strings.Join(AllChecks(), ", "))
		}
	}
	return checks, ""
}

// parseSuppressions scans a package's comments for scmvet:ok
// annotations. Malformed annotations (no reason, unknown check) are
// reported as findings of the suppress pseudo-check.
func parseSuppressions(p *pass) suppressions {
	const marker = "scmvet:ok"
	sup := make(suppressions)
	for fi, file := range p.pkg.Files {
		src := p.pkg.Src[fi]
		for _, group := range file.Comments {
			for _, c := range group.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSuffix(text, "*/")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, marker)
				if !ok {
					continue
				}
				pos := p.mod.Fset.Position(c.Pos())
				checks, problem := ParseDirective(rest)
				if problem != "" {
					p.reportRaw(Finding{
						File: relFile(p, pos.Filename), Line: pos.Line, Col: pos.Column,
						Check: CheckSuppress, Message: problem,
					})
					continue
				}
				line := pos.Line
				if standsAlone(src, pos) {
					line++ // a comment on its own line covers the next one
				}
				byLine := sup[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]*suppression)
					sup[pos.Filename] = byLine
				}
				s := &suppression{checks: checks, line: line, pos: c.Pos()}
				byLine[line] = append(byLine[line], s)
			}
		}
	}
	return sup
}

// standsAlone reports whether only whitespace precedes the comment on
// its line.
func standsAlone(src []byte, pos token.Position) bool {
	off := pos.Offset
	start := off
	for start > 0 && src[start-1] != '\n' {
		start--
	}
	return len(bytes.TrimSpace(src[start:off])) == 0
}

// Run executes the configured checks over every package of mod and
// returns the surviving findings sorted by file, line, column, check.
func Run(mod *Module, cfg Config) []Finding {
	var findings []Finding
	passes := make([]*pass, 0, len(mod.Pkgs))
	for _, pkg := range mod.Pkgs {
		p := &pass{mod: mod, pkg: pkg, cfg: cfg, findings: &findings}
		p.sup = parseSuppressions(p)
		passes = append(passes, p)
	}
	var g *graph
	if cfg.checkEnabled(CheckLocking) || cfg.checkEnabled(CheckCtxFlow) ||
		cfg.checkEnabled(CheckSnapshot) || cfg.checkEnabled(CheckDetTransitive) {
		g = buildGraph(mod, cfg, passes)
	}
	for _, p := range passes {
		if cfg.checkEnabled(CheckDeterminism) {
			checkDeterminism(p)
		}
		if cfg.checkEnabled(CheckNoPanic) {
			checkNoPanic(p)
		}
		if cfg.checkEnabled(CheckAccounting) {
			checkAccounting(p)
		}
		if cfg.checkEnabled(CheckIgnoredErr) {
			checkIgnoredErr(p)
		}
		if cfg.checkEnabled(CheckLocking) {
			checkLocking(p, g)
		}
		if cfg.checkEnabled(CheckCtxFlow) {
			checkCtxFlow(p, g)
		}
		if cfg.checkEnabled(CheckDetTransitive) {
			checkDetTransitive(p, g)
		}
	}
	if cfg.checkEnabled(CheckSnapshot) {
		checkSnapshotStable(g)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return findings
}

// pass carries one package through the checks.
type pass struct {
	mod      *Module
	pkg      *Package
	cfg      Config
	sup      suppressions
	findings *[]Finding
}

// relFile converts an absolute filename to a module-root-relative,
// slash-separated path for stable output.
func relFile(p *pass, filename string) string {
	if rel, ok := strings.CutPrefix(filename, p.mod.Root+"/"); ok {
		return rel
	}
	return filename
}

// suppressedAt reports whether a matching scmvet:ok covers pos.
// report consults it before filing; the call-graph taint collection
// uses it directly so an annotated source line does not poison every
// caller.
func (p *pass) suppressedAt(check string, pos token.Pos) bool {
	position := p.mod.Fset.Position(pos)
	for _, s := range p.sup[position.Filename][position.Line] {
		if contains(s.checks, check) {
			s.used = true
			return true
		}
	}
	return false
}

// report files a finding unless a matching suppression covers the line.
func (p *pass) report(check string, pos token.Pos, format string, args ...any) {
	if p.suppressedAt(check, pos) {
		return
	}
	position := p.mod.Fset.Position(pos)
	p.reportRaw(Finding{
		File: relFile(p, position.Filename), Line: position.Line, Col: position.Column,
		Check: check, Message: fmt.Sprintf(format, args...),
	})
}

func (p *pass) reportRaw(f Finding) { *p.findings = append(*p.findings, f) }
