package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// callee resolves the function object a call invokes, or nil for
// indirect calls and conversions.
func (p *pass) callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.pkg.Info.Uses[id].(*types.Func)
	return fn
}

// isBuiltin reports whether a call invokes the named builtin.
func (p *pass) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := p.pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// eachFunc visits every function and method declaration of the package
// along with its body.
func (p *pass) eachFunc(fn func(decl *ast.FuncDecl)) {
	for _, file := range p.pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// globalRandAllowed are the math/rand package-level functions that
// construct seeded generators — the sanctioned path to randomness.
var globalRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2 sources
}

// checkDeterminism forbids wall-clock reads and the process-global
// math/rand generator in every library package, and map iteration in
// the packages whose outputs must be bit-identical across runs.
func checkDeterminism(p *pass) {
	if isCommandPkg(p.pkg.RelPath) || contains(p.cfg.DeterminismExemptPkgs, p.pkg.RelPath) {
		return
	}
	det := contains(p.cfg.DeterministicPkgs, p.pkg.RelPath)
	for _, file := range p.pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := p.callee(n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					switch fn.Name() {
					case "Now", "Since", "Until":
						p.report(CheckDeterminism, n.Pos(),
							"time.%s reads the wall clock; inject a Clock (or annotate the single seam) so runs stay reproducible", fn.Name())
					}
				case "math/rand", "math/rand/v2":
					sig, ok := fn.Type().(*types.Signature)
					if !ok || sig.Recv() != nil {
						return true // methods on an explicit *rand.Rand are seeded by construction
					}
					if !globalRandAllowed[fn.Name()] {
						p.report(CheckDeterminism, n.Pos(),
							"global rand.%s uses the shared process generator; use rand.New(rand.NewSource(seed)) instead", fn.Name())
					}
				}
			case *ast.RangeStmt:
				if !det {
					return true
				}
				t := p.pkg.Info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); ok {
					p.report(CheckDeterminism, n.Pos(),
						"map iteration order is not deterministic in package %s; sort the keys first or annotate why order cannot matter", p.pkg.RelPath)
				}
			}
			return true
		})
	}
}

// checkNoPanic forbids panic in library packages (Must* wrappers
// excepted) and confines Must* wrapper calls to cmd/, examples, and
// tests.
func checkNoPanic(p *pass) {
	if isCommandPkg(p.pkg.RelPath) || contains(p.cfg.NoPanicExemptPkgs, p.pkg.RelPath) {
		return
	}
	p.eachFunc(func(decl *ast.FuncDecl) {
		inMust := strings.HasPrefix(decl.Name.Name, "Must")
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if p.isBuiltin(call, "panic") && !inMust {
				p.report(CheckNoPanic, call.Pos(),
					"library code must return an error instead of panicking (or move the panic into a checked Must* wrapper)")
				return true
			}
			fn := p.callee(call)
			if fn == nil || fn.Pkg() == nil || !strings.HasPrefix(fn.Name(), "Must") {
				return true
			}
			pkgPath := fn.Pkg().Path()
			if pkgPath != p.mod.Path && !strings.HasPrefix(pkgPath, p.mod.Path+"/") {
				return true // stdlib Must helpers (regexp.MustCompile on literals) are out of scope
			}
			p.report(CheckNoPanic, call.Pos(),
				"%s may panic; library code must use the error-returning variant (Must* is for cmd/, examples, and tests)", fn.Name())
			return true
		})
	})
}

// ledgerType reports whether t (after stripping pointers) is one of the
// configured byte-accounting ledger types.
func (p *pass) ledgerType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return contains(p.cfg.LedgerTypes, p.mod.RelType(named.Obj()))
}

// ledgerWrite reports whether assigning through expr mutates ledger
// storage that outlives the statement — a struct field, a pointer
// deref, or an element reached through either. Writes to plain local
// variables only touch a copy (Traffic is a value type), so scratch
// arithmetic like `delta := ch.Traffic(); delta[c] -= before[c]` stays
// clean; the moment the result persists into a field, the write is
// flagged.
func (p *pass) ledgerWrite(expr ast.Expr) bool {
	expr = ast.Unparen(expr)
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		return p.ledgerType(p.pkg.Info.TypeOf(e))
	case *ast.StarExpr:
		return p.ledgerType(p.pkg.Info.TypeOf(e.X))
	case *ast.IndexExpr:
		base := ast.Unparen(e.X)
		if !p.ledgerType(p.pkg.Info.TypeOf(base)) {
			return false
		}
		return p.persistentBase(base)
	}
	return false
}

// persistentBase reports whether a ledger-typed expression denotes
// shared storage rather than a local value copy.
func (p *pass) persistentBase(expr ast.Expr) bool {
	if id, ok := ast.Unparen(expr).(*ast.Ident); ok {
		t := p.pkg.Info.TypeOf(id)
		if t == nil {
			return false
		}
		_, isPtr := t.Underlying().(*types.Pointer)
		return isPtr // a pointer-typed local still reaches the shared ledger
	}
	return true
}

// checkAccounting flags writes to Traffic-ledger values outside the
// memory-model packages, so new subsystems cannot quietly add or scale
// paper-facing byte tallies.
func checkAccounting(p *pass) {
	if isCommandPkg(p.pkg.RelPath) || contains(p.cfg.LedgerWriterPkgs, p.pkg.RelPath) {
		return
	}
	for _, file := range p.pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if p.ledgerWrite(lhs) {
						p.report(CheckAccounting, lhs.Pos(),
							"write to traffic ledger outside %s; record bytes through the memory models or annotate the aggregation seam",
							strings.Join(p.cfg.LedgerWriterPkgs, "/"))
					}
				}
			case *ast.IncDecStmt:
				if p.ledgerWrite(n.X) {
					p.report(CheckAccounting, n.X.Pos(),
						"write to traffic ledger outside %s; record bytes through the memory models or annotate the aggregation seam",
						strings.Join(p.cfg.LedgerWriterPkgs, "/"))
				}
			case *ast.CallExpr:
				sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn := p.callee(n)
				if fn == nil {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Recv() == nil {
					return true
				}
				if _, ptr := sig.Recv().Type().(*types.Pointer); ptr &&
					p.ledgerType(sig.Recv().Type()) &&
					p.ledgerType(p.pkg.Info.TypeOf(sel.X)) && p.persistentBase(sel.X) {
					p.report(CheckAccounting, n.Pos(),
						"%s mutates a traffic ledger outside %s; record bytes through the memory models or annotate the aggregation seam",
						fn.Name(), strings.Join(p.cfg.LedgerWriterPkgs, "/"))
				}
			}
			return true
		})
	}
}

// errorType reports whether t is the built-in error interface.
func errorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// errorResults returns the positions of error-typed results of a call,
// or nil when the call returns no error.
func (p *pass) errorResults(call *ast.CallExpr) []int {
	t := p.pkg.Info.TypeOf(call)
	if t == nil {
		return nil
	}
	switch t := t.(type) {
	case *types.Tuple:
		var out []int
		for i := 0; i < t.Len(); i++ {
			if errorType(t.At(i).Type()) {
				out = append(out, i)
			}
		}
		return out
	default:
		if errorType(t) {
			return []int{0}
		}
	}
	return nil
}

// neverFails reports whether a call's error result is statically known
// to be nil: a method on a NeverFailTypes receiver, or an fmt.Fprint*/
// io.WriteString whose destination is such a type.
func (p *pass) neverFails(call *ast.CallExpr) bool {
	match := func(t types.Type) bool {
		if t == nil {
			return false
		}
		s := strings.TrimPrefix(t.String(), "*")
		return contains(p.cfg.NeverFailTypes, s)
	}
	fn := p.callee(call)
	if fn == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return match(p.pkg.Info.TypeOf(sel.X))
		}
		return false
	}
	if fn.Pkg() == nil || len(call.Args) == 0 {
		return false
	}
	full := fn.Pkg().Path() + "." + fn.Name()
	switch full {
	case "fmt.Fprint", "fmt.Fprintf", "fmt.Fprintln", "io.WriteString":
		return match(p.pkg.Info.TypeOf(call.Args[0]))
	}
	return false
}

// checkIgnoredErr flags discarded error results in library packages:
// bare call statements and errors assigned to blank.
func checkIgnoredErr(p *pass) {
	if isCommandPkg(p.pkg.RelPath) {
		return
	}
	for _, file := range p.pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if errs := p.errorResults(call); len(errs) > 0 && !p.neverFails(call) {
					p.report(CheckIgnoredErr, call.Pos(),
						"call discards its error result; handle it, return it, or annotate why it cannot fail")
				}
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
				if !ok || p.neverFails(call) {
					return true
				}
				for _, i := range p.errorResults(call) {
					if i >= len(n.Lhs) {
						continue
					}
					if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
						p.report(CheckIgnoredErr, n.Lhs[i].Pos(),
							"error assigned to blank; handle it, return it, or annotate why it cannot fail")
					}
				}
			}
			return true
		})
	}
}
