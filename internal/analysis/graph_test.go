package analysis

import (
	"strings"
	"testing"
)

// runSeeded loads a throwaway module and runs one check over it.
func runSeeded(t *testing.T, files map[string]string, cfgEdit func(*Config)) []Finding {
	t.Helper()
	dir := writeModule(t, files)
	mod, err := LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SnapshotRoots = nil
	if cfgEdit != nil {
		cfgEdit(&cfg)
	}
	return Run(mod, cfg)
}

// findingsFor filters by check name.
func findingsFor(findings []Finding, check string) []Finding {
	var out []Finding
	for _, f := range findings {
		if f.Check == check {
			out = append(out, f)
		}
	}
	return out
}

// TestSeededLockingViolation: an unlocked read of a guarded field in an
// otherwise clean module must produce exactly one locking finding.
func TestSeededLockingViolation(t *testing.T) {
	findings := runSeeded(t, map[string]string{
		"go.mod": "module example.com/seeded\n\ngo 1.22\n",
		"internal/box/box.go": `package box

import "sync"

// Box holds one guarded value.
type Box struct {
	mu sync.Mutex
	v  int // guarded by mu
}

// Get locks correctly.
func (b *Box) Get() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.v
}

// Peek does not.
func (b *Box) Peek() int {
	return b.v
}
`,
	}, func(cfg *Config) { cfg.Checks = []string{CheckLocking} })
	got := findingsFor(findings, CheckLocking)
	if len(got) != 1 {
		t.Fatalf("locking findings = %v, want exactly one", findings)
	}
	f := got[0]
	if f.File != "internal/box/box.go" || f.Line != 20 {
		t.Errorf("finding at %s:%d, want internal/box/box.go:20", f.File, f.Line)
	}
	if !strings.Contains(f.Message, "Box.v is guarded by mu") || !strings.Contains(f.Message, "Peek does not hold b.mu") {
		t.Errorf("message = %q", f.Message)
	}
}

// TestSeededCtxFlowViolation: a ctx-receiving function calling through
// a context-free helper to context.Background must be flagged at the
// frontier call site, with the witness path in the message.
func TestSeededCtxFlowViolation(t *testing.T) {
	findings := runSeeded(t, map[string]string{
		"go.mod": "module example.com/seeded\n\ngo 1.22\n",
		"internal/svc/svc.go": `package svc

import "context"

func fresh() context.Context {
	return context.Background()
}

// Handle receives a context but its helper chain abandons it.
func Handle(ctx context.Context) context.Context {
	return fresh()
}
`,
	}, func(cfg *Config) { cfg.Checks = []string{CheckCtxFlow} })
	got := findingsFor(findings, CheckCtxFlow)
	if len(got) != 1 {
		t.Fatalf("ctxflow findings = %v, want exactly one", findings)
	}
	f := got[0]
	if f.File != "internal/svc/svc.go" || f.Line != 11 {
		t.Errorf("finding at %s:%d, want internal/svc/svc.go:11", f.File, f.Line)
	}
	if !strings.Contains(f.Message, "internal/svc.fresh reaches context.Background (internal/svc/svc.go:6)") {
		t.Errorf("message = %q, want witness path", f.Message)
	}
}

// TestSeededSnapshotViolation: a map field in a struct reachable from a
// configured root must be flagged, and a configured root that does not
// resolve must itself be a finding.
func TestSeededSnapshotViolation(t *testing.T) {
	files := map[string]string{
		"go.mod": "module example.com/seeded\n\ngo 1.22\n",
		"internal/snap/snap.go": `package snap

// Root is the schema root.
type Root struct {
	Name  string           ` + "`json:\"name\"`" + `
	Inner Inner            ` + "`json:\"inner\"`" + `
}

// Inner is reached through Root.
type Inner struct {
	ByKey map[string]int ` + "`json:\"byKey\"`" + `
}
`,
	}
	findings := runSeeded(t, files, func(cfg *Config) {
		cfg.Checks = []string{CheckSnapshot}
		cfg.SnapshotRoots = []string{"internal/snap.Root", "internal/snap.Gone"}
	})
	got := findingsFor(findings, CheckSnapshot)
	if len(got) != 2 {
		t.Fatalf("snapshotstable findings = %v, want two", findings)
	}
	if got[0].File != "go.mod" || !strings.Contains(got[0].Message, "internal/snap.Gone does not resolve") {
		t.Errorf("missing-root finding = %+v", got[0])
	}
	if got[1].File != "internal/snap/snap.go" || !strings.Contains(got[1].Message, "field ByKey of serialized struct Inner is a map") {
		t.Errorf("map-field finding = %+v", got[1])
	}
}

// TestSeededDetTransitiveViolation: a deterministic package reaching a
// map range through a helper package two hops away must be flagged at
// its own frontier call, not inside the helper.
func TestSeededDetTransitiveViolation(t *testing.T) {
	findings := runSeeded(t, map[string]string{
		"go.mod": "module example.com/seeded\n\ngo 1.22\n",
		"internal/helper/helper.go": `package helper

func iterate(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

// Outer hides the iteration one call deeper.
func Outer(m map[string]int) int {
	return iterate(m)
}
`,
		"internal/core/core.go": `package core

import "example.com/seeded/internal/helper"

// Digest is deterministic-package code reaching the iteration.
func Digest(m map[string]int) int {
	return helper.Outer(m)
}
`,
	}, func(cfg *Config) { cfg.Checks = []string{CheckDetTransitive} })
	got := findingsFor(findings, CheckDetTransitive)
	if len(got) != 1 {
		t.Fatalf("determinism-transitive findings = %v, want exactly one", findings)
	}
	f := got[0]
	if f.File != "internal/core/core.go" || f.Line != 7 {
		t.Errorf("finding at %s:%d, want internal/core/core.go:7", f.File, f.Line)
	}
	if !strings.Contains(f.Message, "internal/helper.Outer reaches map iteration (internal/helper/helper.go:5)") {
		t.Errorf("message = %q, want witness through Outer to iterate", f.Message)
	}
}

// TestCallCycleTerminates guards the reach memoization against
// mutual recursion: the analyzer must terminate and still find the
// operation past the cycle.
func TestCallCycleTerminates(t *testing.T) {
	findings := runSeeded(t, map[string]string{
		"go.mod": "module example.com/seeded\n\ngo 1.22\n",
		"internal/helper/helper.go": `package helper

func ping(m map[string]int, depth int) int {
	if depth <= 0 {
		s := 0
		for _, v := range m {
			s += v
		}
		return s
	}
	return pong(m, depth-1)
}

func pong(m map[string]int, depth int) int {
	return ping(m, depth)
}

// Entry reaches the iteration through the ping/pong cycle.
func Entry(m map[string]int) int {
	return ping(m, 3)
}
`,
		"internal/core/core.go": `package core

import "example.com/seeded/internal/helper"

func Digest(m map[string]int) int {
	return helper.Entry(m)
}
`,
	}, func(cfg *Config) { cfg.Checks = []string{CheckDetTransitive} })
	got := findingsFor(findings, CheckDetTransitive)
	if len(got) != 1 {
		t.Fatalf("determinism-transitive findings = %v, want exactly one through the cycle", findings)
	}
}

// TestGuardSuppressionKillsTaint: annotating the nondeterministic
// operation at its source clears transitive callers without any
// annotation on their side.
func TestGuardSuppressionKillsTaint(t *testing.T) {
	findings := runSeeded(t, map[string]string{
		"go.mod": "module example.com/seeded\n\ngo 1.22\n",
		"internal/helper/helper.go": `package helper

// Count iterates but is annotated at the source.
func Count(m map[string]int) int {
	n := 0
	for range m { // scmvet:ok determinism counting entries, order cannot matter
		n++
	}
	return n
}
`,
		"internal/core/core.go": `package core

import "example.com/seeded/internal/helper"

func Size(m map[string]int) int {
	return helper.Count(m)
}
`,
	}, func(cfg *Config) { cfg.Checks = []string{CheckDetTransitive} })
	if got := findingsFor(findings, CheckDetTransitive); len(got) != 0 {
		t.Fatalf("annotated source still taints callers: %v", got)
	}
}

// TestLockingCorpusPackage spot-checks the corpus package dedicated to
// the locking check so a corpus regression cannot silently skip it.
func TestLockingCorpusPackage(t *testing.T) {
	_, findings := corpusFindings(t)
	var locked []Finding
	for _, f := range findings {
		if strings.HasPrefix(f.File, "internal/locked/") {
			locked = append(locked, f)
		}
	}
	if len(locked) != 3 {
		t.Fatalf("locked corpus findings = %v, want 3 (two unlocked reads, one orphan guard)", locked)
	}
	for _, f := range locked {
		if f.Check != CheckLocking {
			t.Errorf("non-locking finding in locking corpus: %+v", f)
		}
	}
}

// TestSnapshotRootsResolve pins that the corpus defines every default
// schema root: if a root stops resolving, the missing-root finding
// lands on go.mod and this test names it.
func TestSnapshotRootsResolve(t *testing.T) {
	_, findings := corpusFindings(t)
	for _, f := range findings {
		if f.File == "go.mod" {
			t.Errorf("unresolved snapshot root: %s", f.Message)
		}
	}
}

// TestCorpusGraphChecksFire asserts each call-graph check produces at
// least one finding from its corpus package, so the want annotations
// cannot all be deleted without failing a named test.
func TestCorpusGraphChecksFire(t *testing.T) {
	_, findings := corpusFindings(t)
	perCheck := make(map[string]int)
	for _, f := range findings {
		perCheck[f.Check]++
	}
	for _, check := range []string{CheckLocking, CheckCtxFlow, CheckSnapshot, CheckDetTransitive} {
		if perCheck[check] == 0 {
			t.Errorf("corpus produced no %s findings", check)
		}
	}
}
