package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"shortcutmining/internal/serve"
)

// Op kinds the load generator issues.
const (
	OpSimulate = "simulate"
	OpSweep    = "sweep"
	OpSchedule = "schedule"
)

// Op is one planned request. The plan is materialized before any
// request is sent, so the workload is a pure function of the seed.
type Op struct {
	Kind     string `json:"kind"`
	Network  string `json:"network,omitempty"`
	Strategy string `json:"strategy,omitempty"`
	// Spec is the scheduling grammar for OpSchedule.
	Spec string `json:"spec,omitempty"`
}

// OpWeight is one entry of the request mix.
type OpWeight struct {
	Op     string
	Weight int
}

// DefaultMix is the standing request mix: mostly synchronous
// simulations (the cache-friendly hot path) with a trickle of
// asynchronous sweep and schedule jobs to keep the pool contended.
func DefaultMix() []OpWeight {
	return []OpWeight{
		{OpSimulate, 8},
		{OpSweep, 1},
		{OpSchedule, 1},
	}
}

// loadNetworks is the model set the generator draws from — small
// enough that a single op completes in well under a millisecond of
// simulation, varied enough that the cache sees several keys.
var loadNetworks = []string{"densechain", "squeezenet", "resnet18"}

// loadStrategies skews toward scm (the paper's design point) with the
// two ablations mixed in.
var loadStrategies = []string{"scm", "scm", "fm-reuse", "baseline"}

// loadSpecs are the OpSchedule scenarios (tiny, so async jobs finish
// inside the benchmark window).
var loadSpecs = []string{
	"seed=1;policy=rr;stream=densechain:n=1,gap=0",
	"seed=2;policy=fcfs;stream=squeezenet:n=1,gap=0",
}

// Plan deterministically expands (seed, workers, perWorker, mix) into
// per-worker op sequences. Each worker gets an independent generator
// seeded from the run seed and its index, so the plan is identical
// across runs and insensitive to scheduling order.
func Plan(seed int64, workers, perWorker int, mix []OpWeight) [][]Op {
	if len(mix) == 0 {
		mix = DefaultMix()
	}
	total := 0
	for _, m := range mix {
		total += m.Weight
	}
	plan := make([][]Op, workers)
	for w := range plan {
		rng := rand.New(rand.NewSource(seed + int64(w)*0x9e3779b9))
		ops := make([]Op, perWorker)
		for i := range ops {
			pick := rng.Intn(total)
			kind := mix[len(mix)-1].Op
			for _, m := range mix {
				if pick < m.Weight {
					kind = m.Op
					break
				}
				pick -= m.Weight
			}
			switch kind {
			case OpSchedule:
				ops[i] = Op{Kind: kind, Spec: loadSpecs[rng.Intn(len(loadSpecs))]}
			default:
				ops[i] = Op{
					Kind:     kind,
					Network:  loadNetworks[rng.Intn(len(loadNetworks))],
					Strategy: loadStrategies[rng.Intn(len(loadStrategies))],
				}
			}
		}
		plan[w] = ops
	}
	return plan
}

// ServeConfig parameterizes the load-generation phase.
type ServeConfig struct {
	// Workers is the engine worker-pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Concurrency is the number of closed-loop client workers.
	Concurrency int
	// PerWorker is each client's planned op count. Duration (if set)
	// truncates the deterministic sequence early; it never reorders it.
	PerWorker int
	Duration  time.Duration
	Seed      int64
	Mix       []OpWeight
}

func (c ServeConfig) withDefaults(smoke bool) ServeConfig {
	if c.Concurrency <= 0 {
		c.Concurrency = 8
		if smoke {
			c.Concurrency = 4
		}
	}
	if c.PerWorker <= 0 {
		c.PerWorker = 150
		if smoke {
			c.PerWorker = 25
		}
	}
	if len(c.Mix) == 0 {
		c.Mix = DefaultMix()
	}
	return c
}

// tinySweepSpace is the design space OpSweep submits: one point, so an
// async sweep job costs about one simulation.
const tinySweepBody = `{"Banks":[16],"BankKiB":[8],"PE":[[32,32]],"FmapGBps":[1.0]}`

// runServe spins up an in-process serve engine + HTTP server on a
// loopback port, drives it with the planned closed-loop workload, and
// reduces the observations to a ServeResult.
func runServe(ctx context.Context, cfg ServeConfig, smoke bool) (*ServeResult, error) {
	cfg = cfg.withDefaults(smoke)
	engine := serve.NewEngine(serve.Options{Workers: cfg.Workers})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("bench: listen: %w", err)
	}
	srv := &http.Server{Handler: serve.NewHandler(engine)}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		// scmvet:ok ignorederr Serve always returns ErrServerClosed after Shutdown
		srv.Serve(ln)
	}()
	base := "http://" + ln.Addr().String()

	plan := Plan(cfg.Seed, cfg.Concurrency, cfg.PerWorker, cfg.Mix)
	deadline := time.Time{}
	if cfg.Duration > 0 {
		deadline = time.Now().Add(cfg.Duration)
	}

	type tally struct {
		requests, completed, errors, rejected int64
		latMS                                 []float64
		mix                                   map[string]int64
	}
	tallies := make([]tally, cfg.Concurrency)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{}
			t := &tallies[w]
			t.mix = make(map[string]int64)
			for _, op := range plan[w] {
				if ctx.Err() != nil {
					return
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					return
				}
				start := time.Now()
				status, err := issue(ctx, client, base, op)
				t.latMS = append(t.latMS, float64(time.Since(start).Microseconds())/1000)
				t.requests++
				t.mix[op.Kind]++
				switch {
				case err != nil:
					t.errors++
				case status == http.StatusTooManyRequests:
					t.rejected++
				case status >= 200 && status < 300:
					t.completed++
				default:
					t.errors++
				}
			}
		}(w)
	}
	wallStart := time.Now()
	wg.Wait()
	wall := time.Since(wallStart)

	// scmvet:ok ctxflow shutdown deadline must run even after the load context is canceled
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// scmvet:ok ignorederr a shutdown timeout only means stragglers were canceled
	srv.Shutdown(shutCtx)
	<-serveDone
	// scmvet:ok ignorederr drain timeout likewise only forces cancellation
	engine.Drain(shutCtx)

	res := &ServeResult{
		Workers:     engine.Workers(),
		Concurrency: cfg.Concurrency,
		WallSeconds: wall.Seconds(),
	}
	mix := make(map[string]int64)
	var lat []float64
	for i := range tallies {
		t := &tallies[i]
		res.Requests += t.requests
		res.Completed += t.completed
		res.Errors += t.errors
		res.Rejected += t.rejected
		lat = append(lat, t.latMS...)
		for k, v := range t.mix {
			mix[k] += v
		}
	}
	if res.WallSeconds > 0 {
		res.RequestsPerSec = float64(res.Requests) / res.WallSeconds
	}
	res.Latency = summarize(lat)
	kinds := make([]string, 0, len(mix))
	for k := range mix {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		res.Mix = append(res.Mix, MixCount{Op: k, Count: mix[k]})
	}
	cs := engine.CacheStats()
	res.CacheHits, res.CacheMisses = cs.Hits, cs.Misses
	if n := cs.Hits + cs.Misses; n > 0 {
		res.CacheHitRate = float64(cs.Hits) / float64(n)
	}
	return res, nil
}

// issue sends one planned op and returns the HTTP status. Synchronous
// simulations measure full request latency; sweep and schedule are
// async submissions (202), measuring the admission path.
func issue(ctx context.Context, client *http.Client, base string, op Op) (int, error) {
	var path string
	var body map[string]any
	switch op.Kind {
	case OpSimulate:
		path = "/v1/simulate"
		body = map[string]any{"network": op.Network, "strategy": op.Strategy}
	case OpSweep:
		path = "/v1/sweep"
		body = map[string]any{
			"network":  op.Network,
			"space":    json.RawMessage(tinySweepBody),
			"parallel": 1,
		}
	case OpSchedule:
		path = "/v1/schedule"
		body = map[string]any{"spec": op.Spec}
	default:
		return 0, fmt.Errorf("bench: unknown op kind %q", op.Kind)
	}
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(buf))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	// Drain so the connection is reusable; the payload itself is not
	// part of the measurement.
	// scmvet:ok ignorederr best-effort drain of an already-answered response
	io.Copy(io.Discard, resp.Body)
	// scmvet:ok ignorederr closing a drained response body cannot usefully fail
	resp.Body.Close()
	return resp.StatusCode, nil
}
