package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"shortcutmining/internal/core"
	"shortcutmining/internal/dse"
	"shortcutmining/internal/fpga"
	"shortcutmining/internal/nn"
)

// simCase is one (network, strategy) pair on the hot-path list.
type simCase struct {
	network  string
	strategy core.Strategy
}

// simCases returns the fixed measurement set. The full list spans the
// paper's network spectrum (shallow chain to ResNet-152) plus the
// three buffer-management strategies on ResNet-34 so a regression in
// any one scheduling path shows up; smoke keeps only the two cheapest
// networks so CI stays fast.
func simCases(smoke bool) []simCase {
	if smoke {
		return []simCase{
			{"densechain", core.SCM},
			{"squeezenet", core.SCM},
		}
	}
	return []simCase{
		{"densechain", core.SCM},
		{"squeezenet", core.SCM},
		{"resnet18", core.SCM},
		{"resnet34", core.Baseline},
		{"resnet34", core.FMReuse},
		{"resnet34", core.SCM},
		{"resnet152", core.SCM},
	}
}

// runSim measures core.Simulate for each case: one warmup run, then
// repeats until minDur of wall clock accumulates (at least one timed
// run), reporting simulated-cycles/sec and runs/sec.
func runSim(ctx context.Context, cfg core.Config, smoke bool, minDur time.Duration) ([]SimResult, error) {
	var out []SimResult
	for _, c := range simCases(smoke) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		net, err := nn.Build(c.network)
		if err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
		warm, err := core.SimulateContext(ctx, net, cfg, c.strategy, nil)
		if err != nil {
			return nil, fmt.Errorf("bench: %s/%s: %w", c.network, c.strategy, err)
		}
		runs := 0
		start := time.Now()
		var wall time.Duration
		for wall < minDur || runs == 0 {
			if _, err := core.SimulateContext(ctx, net, cfg, c.strategy, nil); err != nil {
				return nil, fmt.Errorf("bench: %s/%s: %w", c.network, c.strategy, err)
			}
			runs++
			wall = time.Since(start)
		}
		sec := wall.Seconds()
		out = append(out, SimResult{
			Network:         c.network,
			Strategy:        c.strategy.String(),
			Layers:          len(warm.Layers),
			Runs:            runs,
			WallSeconds:     sec,
			SimCycles:       warm.TotalCycles,
			SimCyclesPerSec: float64(warm.TotalCycles) * float64(runs) / sec,
			RunsPerSec:      float64(runs) / sec,
		})
	}
	return out, nil
}

// sweepSpace returns the design-space grid the sweep benchmark
// enumerates: the full calibrated grid normally, a 2-point corner in
// smoke mode.
func sweepSpace(smoke bool) dse.Space {
	if smoke {
		return dse.Space{
			Banks:    []int{16, 34},
			BankKiB:  []int{8},
			PE:       [][2]int{{32, 32}},
			FmapGBps: []float64{1.0},
		}
	}
	return dse.DefaultSpace()
}

// runSweep measures dse.ExploreContext round trips: full-grid sweeps
// per second and individual design points per second.
func runSweep(ctx context.Context, cfg core.Config, smoke bool, parallel int, minDur time.Duration) (*SweepResult, error) {
	const network = "resnet34"
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0) // record the resolved fan-out
	}
	net, err := nn.Build(network)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	space := sweepSpace(smoke)
	dev := fpga.VC709()
	if _, err := dse.ExploreContext(ctx, net, cfg, space, dev, parallel); err != nil { // warmup
		return nil, fmt.Errorf("bench: sweep warmup: %w", err)
	}
	rounds := 0
	start := time.Now()
	var wall time.Duration
	for wall < minDur || rounds == 0 {
		if _, err := dse.ExploreContext(ctx, net, cfg, space, dev, parallel); err != nil {
			return nil, fmt.Errorf("bench: sweep: %w", err)
		}
		rounds++
		wall = time.Since(start)
	}
	sec := wall.Seconds()
	return &SweepResult{
		Network:      network,
		Points:       space.Size(),
		Rounds:       rounds,
		Parallel:     parallel,
		WallSeconds:  sec,
		SweepsPerSec: float64(rounds) / sec,
		PointsPerSec: float64(rounds*space.Size()) / sec,
	}, nil
}
