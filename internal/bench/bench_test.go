package bench

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestPlanDeterministic is the reproducibility contract: two plans
// from the same seed are deep-equal, so two scm-bench runs issue
// identical request sequences and only the timings differ.
func TestPlanDeterministic(t *testing.T) {
	a := Plan(42, 8, 200, nil)
	b := Plan(42, 8, 200, nil)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	c := Plan(43, 8, 200, nil)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans (generator ignores seed)")
	}
}

// TestPlanShape checks worker/op counts and that every op is
// well-formed for its kind.
func TestPlanShape(t *testing.T) {
	plan := Plan(7, 3, 50, nil)
	if len(plan) != 3 {
		t.Fatalf("workers = %d, want 3", len(plan))
	}
	kinds := map[string]int{}
	for _, ops := range plan {
		if len(ops) != 50 {
			t.Fatalf("per-worker ops = %d, want 50", len(ops))
		}
		for _, op := range ops {
			kinds[op.Kind]++
			switch op.Kind {
			case OpSimulate, OpSweep:
				if op.Network == "" || op.Strategy == "" {
					t.Fatalf("%s op missing network/strategy: %+v", op.Kind, op)
				}
			case OpSchedule:
				if op.Spec == "" {
					t.Fatalf("schedule op missing spec: %+v", op)
				}
			default:
				t.Fatalf("unknown op kind %q", op.Kind)
			}
		}
	}
	// With the 8:1:1 default mix over 150 ops, every kind should appear.
	for _, k := range []string{OpSimulate, OpSweep, OpSchedule} {
		if kinds[k] == 0 {
			t.Errorf("mix produced zero %s ops", k)
		}
	}
}

func validReport() *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		Seed:          1,
		Host:          CurrentHost(),
		Sim: []SimResult{{
			Network: "densechain", Strategy: "scm", Layers: 12, Runs: 10,
			WallSeconds: 0.1, SimCycles: 90652,
			SimCyclesPerSec: 9e6, RunsPerSec: 100,
		}},
		Serve: &ServeResult{
			Workers: 2, Concurrency: 4,
			Requests: 10, Completed: 8, Errors: 1, Rejected: 1,
			WallSeconds: 0.5, RequestsPerSec: 20,
			Latency: Latency{P50: 1, P95: 2, P99: 3, Mean: 1.2, Max: 4},
			Mix:     []MixCount{{Op: OpSimulate, Count: 10}},
		},
	}
}

func TestReportValidate(t *testing.T) {
	if err := validReport().Validate(); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	breakages := map[string]func(*Report){
		"schema":        func(r *Report) { r.SchemaVersion = 99 },
		"no sim":        func(r *Report) { r.Sim = nil },
		"host":          func(r *Report) { r.Host.CPUs = 0 },
		"zero runs":     func(r *Report) { r.Sim[0].Runs = 0 },
		"accounting":    func(r *Report) { r.Serve.Completed = 5 },
		"quantiles":     func(r *Report) { r.Serve.Latency.P95 = 0.1 },
		"hit rate":      func(r *Report) { r.Serve.CacheHitRate = 1.5 },
		"mix total":     func(r *Report) { r.Serve.Mix[0].Count = 3 },
		"empty network": func(r *Report) { r.Sim[0].Network = "" },
	}
	for name, corrupt := range breakages {
		r := validReport()
		corrupt(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s corruption not caught", name)
		}
	}
}

// TestReportJSONRoundTrip pins the schema: a report survives
// marshal/unmarshal and still validates, and the document carries the
// schema_version discriminator.
func TestReportJSONRoundTrip(t *testing.T) {
	r := validReport()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"schema_version":1`) {
		t.Fatalf("encoded report lacks schema_version: %s", b)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped report invalid: %v", err)
	}
}

// TestRunSmoke executes a miniature end-to-end benchmark: all three
// phases complete, the report validates, and the text renderer works.
func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end benchmark")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	r, err := Run(ctx, Config{
		Seed:        1,
		Smoke:       true,
		MinDuration: 10 * time.Millisecond,
		Serve:       ServeConfig{Concurrency: 2, PerWorker: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("smoke report invalid: %v", err)
	}
	if r.Serve.Requests != 20 {
		t.Errorf("requests = %d, want 20 (2 workers x 10 ops)", r.Serve.Requests)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "simulator hot path") {
		t.Errorf("text rendering missing sections:\n%s", sb.String())
	}
}

func TestQuantileHelpers(t *testing.T) {
	var ms []float64
	for i := 1; i <= 100; i++ {
		ms = append(ms, float64(i))
	}
	l := summarize(ms)
	if l.P50 != 50 || l.P95 != 95 || l.P99 != 99 || l.Max != 100 {
		t.Fatalf("nearest-rank quantiles wrong: %+v", l)
	}
	if l.Mean != 50.5 {
		t.Fatalf("mean = %g, want 50.5", l.Mean)
	}
	if got := (Latency{}); summarize(nil) != got {
		t.Fatalf("empty summarize = %+v, want zero", summarize(nil))
	}
}
