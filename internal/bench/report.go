// Package bench is the performance observability harness: a
// deterministic-workload benchmark over the simulator hot path
// (cycles/sec, sweeps/sec) plus a self-driving closed-loop load
// generator that exercises an in-process serve engine end to end and
// records the latency distribution the way a client would see it.
//
// The workload is a pure function of the seed — two runs with the same
// seed issue byte-identical request sequences, so BENCH_<n>.json files
// committed across PRs form a comparable performance trajectory (only
// the timings move). The package is exempt from scm-vet's determinism
// check by contract: measuring wall-clock time is its whole job.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
)

// SchemaVersion identifies the Report JSON layout. Consumers must
// reject files with a different version instead of misreading them.
const SchemaVersion = 1

// Report is the schema-versioned result document (BENCH_<n>.json).
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	PR            int    `json:"pr,omitempty"`
	Seed          int64  `json:"seed"`
	Smoke         bool   `json:"smoke,omitempty"`
	Timestamp     string `json:"timestamp,omitempty"` // RFC3339, stamped by the CLI
	Host          Host   `json:"host"`

	Sim   []SimResult  `json:"sim"`
	Sweep *SweepResult `json:"sweep,omitempty"`
	Serve *ServeResult `json:"serve,omitempty"`
}

// Host describes the machine the numbers came from — without it a
// trajectory across commits is uninterpretable.
type Host struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
}

// CurrentHost snapshots the running process's host facts.
func CurrentHost() Host {
	return Host{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
}

// SimResult is the hot-path measurement for one (network, strategy)
// pair: how many simulated cycles and full runs per wall-clock second
// core.Simulate sustains.
type SimResult struct {
	Network         string  `json:"network"`
	Strategy        string  `json:"strategy"`
	Layers          int     `json:"layers"`
	Runs            int     `json:"runs"`
	WallSeconds     float64 `json:"wall_seconds"`
	SimCycles       int64   `json:"sim_cycles"` // per run (deterministic)
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`
	RunsPerSec      float64 `json:"runs_per_sec"`
}

// SweepResult measures the design-space exploration path: full sweeps
// and individual grid points per second.
type SweepResult struct {
	Network      string  `json:"network"`
	Points       int     `json:"points"`
	Rounds       int     `json:"rounds"`
	Parallel     int     `json:"parallel"`
	WallSeconds  float64 `json:"wall_seconds"`
	SweepsPerSec float64 `json:"sweeps_per_sec"`
	PointsPerSec float64 `json:"points_per_sec"`
}

// Latency is a latency summary in milliseconds.
type Latency struct {
	P50  float64 `json:"p50_ms"`
	P95  float64 `json:"p95_ms"`
	P99  float64 `json:"p99_ms"`
	Mean float64 `json:"mean_ms"`
	Max  float64 `json:"max_ms"`
}

// MixCount is one operation kind's share of the issued load. A sorted
// slice (not a map) keeps the JSON stable across runs.
type MixCount struct {
	Op    string `json:"op"`
	Count int64  `json:"count"`
}

// ServeResult is the end-to-end measurement of the serving stack under
// the closed-loop load generator.
type ServeResult struct {
	Workers     int `json:"workers"`     // engine pool size
	Concurrency int `json:"concurrency"` // closed-loop client workers

	Requests  int64 `json:"requests"`
	Completed int64 `json:"completed"`
	Errors    int64 `json:"errors"`
	Rejected  int64 `json:"rejected_429"`

	WallSeconds    float64 `json:"wall_seconds"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	Latency        Latency `json:"latency"`

	Mix []MixCount `json:"mix"`

	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// Validate checks the report's internal consistency — the same checks
// CI runs against a freshly produced smoke file.
func (r *Report) Validate() error {
	if r.SchemaVersion != SchemaVersion {
		return fmt.Errorf("bench: schema_version %d, this tool reads %d", r.SchemaVersion, SchemaVersion)
	}
	if len(r.Sim) == 0 {
		return fmt.Errorf("bench: report has no sim results")
	}
	if r.Host.GoVersion == "" || r.Host.CPUs <= 0 {
		return fmt.Errorf("bench: host facts missing (go_version=%q cpus=%d)", r.Host.GoVersion, r.Host.CPUs)
	}
	for i, s := range r.Sim {
		if s.Network == "" || s.Strategy == "" {
			return fmt.Errorf("bench: sim[%d] missing network or strategy", i)
		}
		if s.Runs <= 0 || s.WallSeconds <= 0 || s.SimCycles <= 0 {
			return fmt.Errorf("bench: sim[%d] %s/%s has non-positive measurements", i, s.Network, s.Strategy)
		}
		if s.SimCyclesPerSec <= 0 || s.RunsPerSec <= 0 {
			return fmt.Errorf("bench: sim[%d] %s/%s has non-positive rates", i, s.Network, s.Strategy)
		}
	}
	if w := r.Sweep; w != nil {
		if w.Points <= 0 || w.Rounds <= 0 || w.WallSeconds <= 0 {
			return fmt.Errorf("bench: sweep has non-positive measurements")
		}
	}
	if s := r.Serve; s != nil {
		if s.Requests != s.Completed+s.Errors+s.Rejected {
			return fmt.Errorf("bench: serve requests=%d != completed+errors+rejected=%d",
				s.Requests, s.Completed+s.Errors+s.Rejected)
		}
		if s.WallSeconds <= 0 || s.Requests <= 0 {
			return fmt.Errorf("bench: serve has non-positive measurements")
		}
		l := s.Latency
		if l.P50 < 0 || l.P50 > l.P95 || l.P95 > l.P99 || l.P99 > l.Max {
			return fmt.Errorf("bench: serve latency quantiles not monotone: p50=%g p95=%g p99=%g max=%g",
				l.P50, l.P95, l.P99, l.Max)
		}
		if s.CacheHitRate < 0 || s.CacheHitRate > 1 {
			return fmt.Errorf("bench: serve cache_hit_rate %g outside [0,1]", s.CacheHitRate)
		}
		var mixTotal int64
		for _, m := range s.Mix {
			mixTotal += m.Count
		}
		if mixTotal != s.Requests {
			return fmt.Errorf("bench: serve mix total %d != requests %d", mixTotal, s.Requests)
		}
	}
	return nil
}

// WriteText renders the report for humans (-format text).
func (r *Report) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "scm-bench report (schema v%d", r.SchemaVersion)
	if r.PR > 0 {
		fmt.Fprintf(&b, ", PR %d", r.PR)
	}
	if r.Smoke {
		b.WriteString(", smoke")
	}
	fmt.Fprintf(&b, ")\nhost: %s %s/%s, %d CPUs\nseed: %d\n",
		r.Host.GoVersion, r.Host.GOOS, r.Host.GOARCH, r.Host.CPUs, r.Seed)
	if r.Timestamp != "" {
		fmt.Fprintf(&b, "when: %s\n", r.Timestamp)
	}

	b.WriteString("\nsimulator hot path (core.Simulate)\n")
	fmt.Fprintf(&b, "  %-20s %-10s %7s %8s %15s %12s\n",
		"network", "strategy", "layers", "runs", "sim-cycles/sec", "runs/sec")
	for _, s := range r.Sim {
		fmt.Fprintf(&b, "  %-20s %-10s %7d %8d %15.3e %12.1f\n",
			s.Network, s.Strategy, s.Layers, s.Runs, s.SimCyclesPerSec, s.RunsPerSec)
	}

	if w2 := r.Sweep; w2 != nil {
		b.WriteString("\ndesign-space sweep (dse.Explore)\n")
		fmt.Fprintf(&b, "  %s: %d points x %d rounds, parallel=%d: %.2f sweeps/sec, %.1f points/sec\n",
			w2.Network, w2.Points, w2.Rounds, w2.Parallel, w2.SweepsPerSec, w2.PointsPerSec)
	}

	if s := r.Serve; s != nil {
		b.WriteString("\nserving stack (closed-loop load generator)\n")
		fmt.Fprintf(&b, "  %d client workers against a %d-worker engine, %.2fs wall\n",
			s.Concurrency, s.Workers, s.WallSeconds)
		fmt.Fprintf(&b, "  %d requests: %d completed, %d errors, %d rejected (429)\n",
			s.Requests, s.Completed, s.Errors, s.Rejected)
		fmt.Fprintf(&b, "  throughput: %.1f req/sec\n", s.RequestsPerSec)
		fmt.Fprintf(&b, "  latency ms: p50=%.3f p95=%.3f p99=%.3f mean=%.3f max=%.3f\n",
			s.Latency.P50, s.Latency.P95, s.Latency.P99, s.Latency.Mean, s.Latency.Max)
		var mix []string
		for _, m := range s.Mix {
			mix = append(mix, fmt.Sprintf("%s=%d", m.Op, m.Count))
		}
		fmt.Fprintf(&b, "  mix: %s\n", strings.Join(mix, " "))
		fmt.Fprintf(&b, "  cache: %d hits / %d misses (hit rate %.1f%%)\n",
			s.CacheHits, s.CacheMisses, 100*s.CacheHitRate)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// quantile returns the nearest-rank q-quantile of sorted samples
// (the same convention internal/sched and internal/metrics use).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.999999) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// summarize reduces raw millisecond samples to a Latency.
func summarize(ms []float64) Latency {
	if len(ms) == 0 {
		return Latency{}
	}
	s := append([]float64(nil), ms...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	return Latency{
		P50:  quantile(s, 0.50),
		P95:  quantile(s, 0.95),
		P99:  quantile(s, 0.99),
		Mean: sum / float64(len(s)),
		Max:  s[len(s)-1],
	}
}
