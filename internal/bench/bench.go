package bench

import (
	"context"
	"time"

	"shortcutmining/internal/core"
)

// Config parameterizes one benchmark run.
type Config struct {
	// Seed drives every workload choice; same seed, same workload.
	Seed int64
	// PR stamps the report with the repo PR number it belongs to.
	PR int
	// Smoke shrinks every phase for CI: fewest networks, smallest
	// sweep grid, shortest measurement windows.
	Smoke bool
	// MinDuration is the per-measurement wall-clock floor (default 1s,
	// smoke 50ms). Longer windows smooth scheduler noise.
	MinDuration time.Duration
	// SweepParallel is the sweep's internal fan-out; <= 0 means
	// GOMAXPROCS (the dse default).
	SweepParallel int
	// Serve configures the load-generation phase; zero values get
	// smoke-aware defaults.
	Serve ServeConfig
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MinDuration <= 0 {
		c.MinDuration = time.Second
		if c.Smoke {
			c.MinDuration = 50 * time.Millisecond
		}
	}
	if c.Serve.Seed == 0 {
		c.Serve.Seed = c.Seed
	}
	return c
}

// Run executes the three phases — simulator hot path, design-space
// sweep, serving stack under load — and assembles the report. The
// caller stamps Timestamp (keeping this package's output a pure
// function of its inputs plus machine speed).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	platform := core.Default()

	r := &Report{
		SchemaVersion: SchemaVersion,
		PR:            cfg.PR,
		Seed:          cfg.Seed,
		Smoke:         cfg.Smoke,
		Host:          CurrentHost(),
	}
	var err error
	if r.Sim, err = runSim(ctx, platform, cfg.Smoke, cfg.MinDuration); err != nil {
		return nil, err
	}
	if r.Sweep, err = runSweep(ctx, platform, cfg.Smoke, cfg.SweepParallel, cfg.MinDuration); err != nil {
		return nil, err
	}
	if r.Serve, err = runServe(ctx, cfg.Serve, cfg.Smoke); err != nil {
		return nil, err
	}
	return r, nil
}
