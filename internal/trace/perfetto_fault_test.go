package trace

import (
	"bytes"
	"testing"
)

func TestWritePerfettoFaultEvents(t *testing.T) {
	events := []Event{
		{Seq: 1, Kind: KindLayerStart, Layer: "conv1", Cycle: 0},
		{Seq: 2, Kind: KindFault, Layer: "conv1", Note: "bank-fail", Banks: 2, Cycle: 10},
		{Seq: 3, Kind: KindRelocate, Layer: "conv1", Tag: "sc", Banks: 1, Cycle: 20},
		{Seq: 4, Kind: KindRetry, Layer: "conv1", Class: "ifm-read", Bytes: 4096, Cycle: 30, DurCycles: 50},
		{Seq: 5, Kind: KindLayerEnd, Layer: "conv1", Banks: 4, Cycle: 500, DurCycles: 500},
	}
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, events, 1); err != nil {
		t.Fatal(err)
	}
	got := decodePerfetto(t, buf.Bytes())
	var instants, retryB, retryE int
	for _, e := range got {
		switch {
		case e["ph"] == "i" && e["cat"] == "fault":
			instants++
		case e["name"] == "retry:ifm-read" && e["ph"] == "B":
			retryB++
			if ts := e["ts"].(float64); ts != 30 {
				t.Errorf("retry B at ts %g, want 30", ts)
			}
		case e["name"] == "retry:ifm-read" && e["ph"] == "E":
			retryE++
			if ts := e["ts"].(float64); ts != 80 {
				t.Errorf("retry E at ts %g, want 80", ts)
			}
		}
	}
	if instants != 2 {
		t.Errorf("fault instant markers = %d, want 2 (fault + relocate)", instants)
	}
	if retryB != 1 || retryE != 1 {
		t.Errorf("retry span B/E = %d/%d, want 1/1", retryB, retryE)
	}
}

func TestSummarizeFaultKinds(t *testing.T) {
	events := []Event{
		{Seq: 1, Kind: KindLayerStart, Layer: "conv1"},
		{Seq: 2, Kind: KindFault, Layer: "conv1"},
		{Seq: 3, Kind: KindRetry, Layer: "conv1"},
		{Seq: 4, Kind: KindRelocate, Layer: "conv1"},
		{Seq: 5, Kind: KindLayerEnd, Layer: "conv1"},
	}
	s := Summarize(events)
	want := []Kind{KindLayerStart, KindFault, KindRetry, KindRelocate, KindLayerEnd}
	if len(s.Kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", s.Kinds, want)
	}
	for i, k := range want {
		if s.Kinds[i] != k {
			t.Errorf("kind %d = %v, want %v (lifecycle order)", i, s.Kinds[i], k)
		}
	}
	if s.Counts["conv1"][KindFault] != 1 {
		t.Error("fault count missing")
	}
}
