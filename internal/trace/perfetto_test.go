package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// decodePerfetto parses an exported file back into its event list.
func decodePerfetto(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var file struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit == "" {
		t.Error("missing displayTimeUnit")
	}
	return file.TraceEvents
}

func sampleEvents() []Event {
	return []Event{
		{Seq: 1, Kind: KindLayerStart, Layer: "conv1", Cycle: 0},
		{Seq: 2, Kind: KindDRAM, Layer: "conv1", Tag: "input", Class: "ifm-read", Bytes: 4096, Cycle: 0, DurCycles: 100},
		{Seq: 3, Kind: KindLayerEnd, Layer: "conv1", Banks: 4, Pinned: 1, Cycle: 500, DurCycles: 500},
		{Seq: 4, Kind: KindLayerStart, Layer: "add", Cycle: 500},
		{Seq: 5, Kind: KindRefill, Layer: "add", Tag: "conv1", Class: "shortcut-read", Bytes: 64, Cycle: 500, DurCycles: 1},
		{Seq: 6, Kind: KindLayerEnd, Layer: "add", Banks: 2, Cycle: 700, DurCycles: 200},
	}
}

func TestWritePerfettoWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, sampleEvents(), 200); err != nil {
		t.Fatal(err)
	}
	evs := decodePerfetto(t, buf.Bytes())

	// Timestamps must be monotone in emission order, and only B/E/C/M
	// phases may appear.
	prev := -1.0
	depth := map[float64]int{} // per tid
	counters := 0
	for _, e := range evs {
		ph := e["ph"].(string)
		ts := e["ts"].(float64)
		tid := e["tid"].(float64)
		switch ph {
		case "M":
			continue
		case "B":
			depth[tid]++
		case "E":
			depth[tid]--
			if depth[tid] < 0 {
				t.Fatalf("unbalanced E on tid %v at ts %v", tid, ts)
			}
		case "C":
			counters++
		default:
			t.Fatalf("unexpected phase %q", ph)
		}
		if ts < prev {
			t.Fatalf("non-monotone ts %v after %v", ts, prev)
		}
		prev = ts
	}
	for tid, d := range depth {
		if d != 0 {
			t.Errorf("tid %v left %d spans open", tid, d)
		}
	}
	if counters != 2 {
		t.Errorf("counter events = %d, want 2 (one per layer-end)", counters)
	}
}

func TestWritePerfettoCycleClockMapping(t *testing.T) {
	var buf bytes.Buffer
	// 200 MHz: 500 cycles = 2.5 µs.
	if err := WritePerfetto(&buf, sampleEvents(), 200); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range decodePerfetto(t, buf.Bytes()) {
		if e["ph"] == "E" && e["name"] == "conv1" && e["cat"] == "layer" {
			if ts := e["ts"].(float64); ts != 2.5 {
				t.Errorf("layer-end ts = %v µs, want 2.5", ts)
			}
			found = true
		}
	}
	if !found {
		t.Error("no layer-end E event for conv1")
	}
}

func TestWritePerfettoTruncatedTrace(t *testing.T) {
	// A stream missing its final layer-end must still export balanced
	// spans (the open layer is closed at the last timestamp).
	events := sampleEvents()[:4] // ends after add's layer-start
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, events, 200); err != nil {
		t.Fatal(err)
	}
	b, e := 0, 0
	for _, ev := range decodePerfetto(t, buf.Bytes()) {
		switch ev["ph"] {
		case "B":
			b++
		case "E":
			e++
		}
	}
	if b != e || b == 0 {
		t.Errorf("B/E = %d/%d, want balanced and nonzero", b, e)
	}
}

func TestWritePerfettoEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, nil, 0); err != nil {
		t.Fatal(err)
	}
	for _, e := range decodePerfetto(t, buf.Bytes()) {
		if e["ph"] != "M" {
			t.Errorf("empty stream emitted %v", e)
		}
	}
}

func TestWritePerfettoSkipsDanglingEnd(t *testing.T) {
	// A filtered stream may begin mid-layer; an E without a B is
	// dropped rather than emitted unbalanced.
	events := []Event{{Kind: KindLayerEnd, Layer: "ghost", Cycle: 10}}
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, events, 1); err != nil {
		t.Fatal(err)
	}
	for _, e := range decodePerfetto(t, buf.Bytes()) {
		if e["ph"] == "E" {
			t.Errorf("dangling E emitted: %v", e)
		}
	}
}
