// Perfetto/Chrome trace_event export: any recorded run can be opened
// in ui.perfetto.dev (or chrome://tracing) as a timeline — layer spans
// on one track, DMA transfers on a second, pool occupancy as counter
// tracks — with the simulated cycle clock mapped to microseconds.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Track/thread ids of the exported timeline. One synthetic process
// holds all tracks.
const (
	perfettoPid      = 1
	layerTid         = 1 // layer execution spans
	dmaTid           = 2 // DRAM transfer spans
	requestTid       = 3 // serving-layer request spans
	nocTid           = 4 // interconnect link-occupancy spans
	processName      = "shortcutmining"
	layerTrackName   = "layers"
	dmaTrackName     = "dram"
	requestTrackName = "requests"
	nocTrackName     = "noc"
	bankCounterName  = "pool banks"
)

// perfettoEvent is one entry of the trace_event "traceEvents" array.
type perfettoEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// perfettoFile is the JSON object format of trace_event (the array
// format is also legal, but the object form carries metadata).
type perfettoFile struct {
	TraceEvents     []perfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
	OtherData       map[string]any  `json:"otherData,omitempty"`
}

// WritePerfetto converts a recorded event stream into Chrome
// trace_event JSON. clockMHz maps the simulated cycle clock to wall
// microseconds (ts = cycle / clockMHz); a non-positive clock defaults
// to 1 MHz, i.e. one cycle = 1 µs.
//
// Mapping:
//   - layer-start / layer-end become B/E duration events on the
//     "layers" track. The layer-end Cycle (start + layer cycles)
//     closes the span; a missing layer-end (truncated trace) is closed
//     at the stream's final timestamp so the file stays well-formed.
//   - dram / refill / spill / retry events carrying a DurCycles become
//     B/E pairs on the "dram" track, labeled by traffic class (retries
//     are prefixed "retry:" so reissued attempts stand apart from
//     payload transfers).
//   - fault and relocate events become instant ("i") markers on the
//     layer track, so injected adversity is visible against the layer
//     it hit.
//   - layer-end occupancy (used/pinned banks) becomes a "C" counter
//     event, rendering the pool timeline Perfetto-natively.
//   - request events become B/E spans on the "requests" track, named by
//     the serving-layer request ID (Tag), so an X-Request-ID from an
//     scm-serve log line is searchable in the timeline.
//
// Events are emitted sorted by timestamp (stable, so same-cycle events
// keep stream order), which keeps every track's B/E sequence monotone.
func WritePerfetto(w io.Writer, events []Event, clockMHz float64) error {
	if clockMHz <= 0 {
		clockMHz = 1
	}
	us := func(cycle int64) float64 { return float64(cycle) / clockMHz }

	out := []perfettoEvent{
		{Name: "process_name", Ph: "M", Pid: perfettoPid, Tid: layerTid,
			Args: map[string]any{"name": processName}},
		{Name: "thread_name", Ph: "M", Pid: perfettoPid, Tid: layerTid,
			Args: map[string]any{"name": layerTrackName}},
		{Name: "thread_name", Ph: "M", Pid: perfettoPid, Tid: dmaTid,
			Args: map[string]any{"name": dmaTrackName}},
		{Name: "thread_name", Ph: "M", Pid: perfettoPid, Tid: requestTid,
			Args: map[string]any{"name": requestTrackName}},
		{Name: "thread_name", Ph: "M", Pid: perfettoPid, Tid: nocTid,
			Args: map[string]any{"name": nocTrackName}},
	}
	meta := len(out)

	var lastTs float64
	openLayers := make(map[string]bool)
	var openOrder []string
	for _, e := range events {
		ts := us(e.Cycle)
		if ts > lastTs {
			lastTs = ts
		}
		switch e.Kind {
		case KindLayerStart:
			out = append(out, perfettoEvent{Name: e.Layer, Ph: "B", Ts: ts,
				Pid: perfettoPid, Tid: layerTid, Cat: "layer"})
			if !openLayers[e.Layer] {
				openLayers[e.Layer] = true
				openOrder = append(openOrder, e.Layer)
			}
		case KindLayerEnd:
			if end := us(e.Cycle); end > lastTs {
				lastTs = end
			}
			if !openLayers[e.Layer] {
				// End without a start (filtered/truncated head): skip
				// rather than emit an unbalanced E.
				continue
			}
			delete(openLayers, e.Layer)
			args := map[string]any{}
			if e.Bytes != 0 {
				args["dram_bytes"] = e.Bytes
			}
			out = append(out, perfettoEvent{Name: e.Layer, Ph: "E", Ts: ts,
				Pid: perfettoPid, Tid: layerTid, Cat: "layer", Args: args})
			out = append(out, perfettoEvent{Name: bankCounterName, Ph: "C", Ts: ts,
				Pid: perfettoPid, Tid: layerTid,
				Args: map[string]any{"used": e.Banks, "pinned": e.Pinned}})
		case KindFault, KindRelocate:
			args := map[string]any{}
			if e.Note != "" {
				args["fault"] = e.Note
			}
			if e.Banks != 0 {
				args["banks"] = e.Banks
			}
			if e.Tag != "" {
				args["fmap"] = e.Tag
			}
			out = append(out, perfettoEvent{Name: string(e.Kind), Ph: "i", Ts: ts,
				Pid: perfettoPid, Tid: layerTid, Cat: "fault", Args: args})
		case KindRequest:
			// One serving-layer request span: named by the request ID so
			// a Perfetto search for the ID from an scm-serve log line
			// lands on the simulated interval it covers.
			name := e.Tag
			if name == "" {
				name = "request"
			}
			args := map[string]any{"request_id": e.Tag}
			if e.Note != "" {
				args["note"] = e.Note
			}
			end := us(e.Cycle + e.DurCycles)
			out = append(out, perfettoEvent{Name: name, Ph: "B", Ts: ts,
				Pid: perfettoPid, Tid: requestTid, Cat: "request", Args: args})
			out = append(out, perfettoEvent{Name: name, Ph: "E", Ts: end,
				Pid: perfettoPid, Tid: requestTid, Cat: "request"})
			if end > lastTs {
				lastTs = end
			}
		case KindLink:
			// One interconnect link-occupancy window: named by the
			// directed link (Tag), so contention on a hot link shows up
			// as back-to-back spans on the "noc" track.
			name := e.Tag
			if name == "" {
				name = "link"
			}
			args := map[string]any{"bytes": e.Bytes}
			if e.Note != "" {
				args["transfer"] = e.Note
			}
			end := us(e.Cycle + e.DurCycles)
			out = append(out, perfettoEvent{Name: name, Ph: "B", Ts: ts,
				Pid: perfettoPid, Tid: nocTid, Cat: "noc", Args: args})
			out = append(out, perfettoEvent{Name: name, Ph: "E", Ts: end,
				Pid: perfettoPid, Tid: nocTid, Cat: "noc"})
			if end > lastTs {
				lastTs = end
			}
		case KindDRAM, KindRefill, KindSpill, KindRetry:
			if e.DurCycles <= 0 {
				continue // bookkeeping event without a modeled transfer span
			}
			name := e.Class
			if name == "" {
				name = string(e.Kind)
			}
			if e.Kind == KindRetry {
				name = "retry:" + name
			}
			args := map[string]any{"bytes": e.Bytes}
			if e.Tag != "" {
				args["fmap"] = e.Tag
			}
			if e.Layer != "" {
				args["layer"] = e.Layer
			}
			end := us(e.Cycle + e.DurCycles)
			out = append(out, perfettoEvent{Name: name, Ph: "B", Ts: ts,
				Pid: perfettoPid, Tid: dmaTid, Cat: "dma", Args: args})
			out = append(out, perfettoEvent{Name: name, Ph: "E", Ts: end,
				Pid: perfettoPid, Tid: dmaTid, Cat: "dma"})
			if end > lastTs {
				lastTs = end
			}
		}
	}
	// Close spans left open by a truncated trace at the final timestamp.
	for _, layer := range openOrder {
		if openLayers[layer] {
			out = append(out, perfettoEvent{Name: layer, Ph: "E", Ts: lastTs,
				Pid: perfettoPid, Tid: layerTid, Cat: "layer",
				Args: map[string]any{"truncated": true}})
		}
	}

	// Stable sort by timestamp (metadata stays in front at ts 0 in
	// generation order) so the emitted stream is monotone.
	body := out[meta:]
	sort.SliceStable(body, func(i, j int) bool { return body[i].Ts < body[j].Ts })

	enc := json.NewEncoder(w)
	if err := enc.Encode(perfettoFile{
		TraceEvents:     out,
		DisplayTimeUnit: "ms",
		OtherData:       map[string]any{"clock_mhz": clockMHz, "events": len(events)},
	}); err != nil {
		return fmt.Errorf("trace: perfetto export: %w", err)
	}
	return nil
}
