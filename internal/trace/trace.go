// Package trace records the buffer-management decisions of a scheduler
// run as structured events. Traces make the Shortcut Mining procedures
// observable — every allocation, role switch, pin, spill, and bank
// recycle appears in order — and back the scm-trace CLI, which emits
// them as JSON lines for external tooling.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Kind enumerates event types.
type Kind string

// Event kinds, in rough lifecycle order of a layer execution.
const (
	KindLayerStart Kind = "layer-start"
	KindAlloc      Kind = "alloc"       // logical buffer formed (P1)
	KindRoleSwitch Kind = "role-switch" // output renamed to input (P2)
	KindPin        Kind = "pin"         // shortcut retained (P3)
	KindUnpin      Kind = "unpin"
	KindRecycle    Kind = "recycle" // consumed shortcut banks reused (P4)
	KindSpill      Kind = "spill"   // partial retention overflow (P5)
	KindRefill     Kind = "refill"  // spilled bytes read back
	KindFree       Kind = "free"
	KindDRAM       Kind = "dram" // any off-chip transfer
	KindLayerEnd   Kind = "layer-end"

	// Fault-injection kinds (internal/fault): an injected fault, a
	// reissued DMA transfer attempt, and a bank relocated to a spare.
	KindFault    Kind = "fault"
	KindRetry    Kind = "retry"
	KindRelocate Kind = "relocate"

	// KindRequest is a serving-layer span enclosing one HTTP request's
	// simulation: Tag carries the request ID, Cycle/DurCycles the
	// simulated interval. It is what correlates an scm-serve request to
	// its cycle-level Perfetto timeline.
	KindRequest Kind = "request"

	// KindLink is one granted occupancy window on a chip-to-chip
	// interconnect link (internal/noc): Tag names the directed link
	// (e.g. "c0>c1"), Bytes the flit-rounded payload, Cycle/DurCycles
	// the window. Rendered on the Perfetto "noc" track.
	KindLink Kind = "link"
)

// Event is one scheduler decision. Fields are contextual; unused ones
// stay zero and are omitted from JSON.
type Event struct {
	Seq   int64  `json:"seq"`
	Kind  Kind   `json:"kind"`
	Layer string `json:"layer,omitempty"`
	Tag   string `json:"tag,omitempty"`   // feature-map identity
	Role  string `json:"role,omitempty"`  // buffer role involved
	Class string `json:"class,omitempty"` // DRAM traffic class
	Banks int    `json:"banks,omitempty"`
	Bytes int64  `json:"bytes,omitempty"`
	Note  string `json:"note,omitempty"`

	// Cycle is the simulated-clock timestamp the event occurred at;
	// DurCycles is the span length for events that model an interval
	// (a layer execution on layer-end, a DMA transfer on dram/refill/
	// spill events). Together they back the Perfetto export.
	Cycle     int64 `json:"cycle,omitempty"`
	DurCycles int64 `json:"dur,omitempty"`
	// Pinned is the pinned-bank count at layer-end (alongside Banks,
	// the used count), feeding the occupancy counter track.
	Pinned int `json:"pinned,omitempty"`
}

// Recorder receives events. Implementations must tolerate a zero
// Event.Seq: the scheduler stamps sequence numbers through Stamper.
type Recorder interface {
	Record(Event)
}

// Nop discards events; the analytical experiments use it.
type Nop struct{}

// Record implements Recorder.
func (Nop) Record(Event) {}

// Buffer retains events in memory for tests and programmatic
// inspection.
type Buffer struct {
	Events []Event
}

// Record implements Recorder.
func (b *Buffer) Record(e Event) { b.Events = append(b.Events, e) }

// OfKind returns the recorded events of one kind, in order.
func (b *Buffer) OfKind(k Kind) []Event {
	var out []Event
	for _, e := range b.Events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// JSONL streams events to a writer as JSON lines. Write errors are
// sticky and surfaced by Err, keeping the Recorder interface clean for
// the scheduler hot path.
type JSONL struct {
	w   io.Writer
	enc *json.Encoder
	err error
}

// NewJSONL builds a JSONL recorder.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: w, enc: json.NewEncoder(w)}
}

// Record implements Recorder.
func (j *JSONL) Record(e Event) {
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(e)
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error { return j.err }

// Stamper decorates a Recorder with monotonically increasing sequence
// numbers.
type Stamper struct {
	R   Recorder
	seq int64
}

// Record implements Recorder.
func (s *Stamper) Record(e Event) {
	s.seq++
	e.Seq = s.seq
	s.R.Record(e)
}

// Count returns how many events have been stamped.
func (s *Stamper) Count() int64 { return s.seq }

// TimelinePoint is one step of a pool-occupancy timeline.
type TimelinePoint struct {
	Layer     string
	UsedBanks int
}

// Timeline extracts the per-layer pool occupancy from a recorded event
// stream: one point per layer-end event, in execution order. The
// scm-trace tool renders it as a bar chart; tests use it to assert
// occupancy shapes (e.g. retention plateaus across shortcut spans).
func Timeline(events []Event) []TimelinePoint {
	var out []TimelinePoint
	for _, e := range events {
		if e.Kind == KindLayerEnd {
			out = append(out, TimelinePoint{Layer: e.Layer, UsedBanks: e.Banks})
		}
	}
	return out
}

// SeqGaps returns the sequence numbers missing from an event stream
// stamped by a Stamper: for every adjacent pair whose Seq differs by
// more than one, the skipped values. A truncated or filtered JSONL
// file shows up as gaps; a complete stream returns nil. Events before
// the first stamped one (Seq <= 0) are ignored.
func SeqGaps(events []Event) []int64 {
	var gaps []int64
	prev := int64(0)
	for _, e := range events {
		if e.Seq <= 0 {
			continue
		}
		if prev > 0 {
			for s := prev + 1; s < e.Seq; s++ {
				gaps = append(gaps, s)
			}
		}
		prev = e.Seq
	}
	return gaps
}

// Summary is the event-kind × layer census of a recorded stream:
// layers in first-appearance order, kinds in lifecycle order (only
// those present), counts by layer then kind. Events with no layer
// label are grouped under the empty string.
type Summary struct {
	Layers []string
	Kinds  []Kind
	Counts map[string]map[Kind]int
}

// allKinds lists every kind in lifecycle order (the order Summarize
// presents columns in).
var allKinds = []Kind{KindLayerStart, KindAlloc, KindRoleSwitch, KindPin, KindUnpin,
	KindRecycle, KindSpill, KindRefill, KindFree, KindDRAM,
	KindFault, KindRetry, KindRelocate, KindLayerEnd, KindRequest, KindLink}

// Summarize builds the kind × layer census backing scm-trace -summary.
func Summarize(events []Event) Summary {
	s := Summary{Counts: make(map[string]map[Kind]int)}
	present := make(map[Kind]bool)
	for _, e := range events {
		row, ok := s.Counts[e.Layer]
		if !ok {
			row = make(map[Kind]int)
			s.Counts[e.Layer] = row
			s.Layers = append(s.Layers, e.Layer)
		}
		row[e.Kind]++
		present[e.Kind] = true
	}
	for _, k := range allKinds {
		if present[k] {
			s.Kinds = append(s.Kinds, k)
			delete(present, k)
		}
	}
	// Custom kinds outside the lifecycle list keep stream order.
	if len(present) > 0 {
		for _, e := range events {
			if present[e.Kind] {
				s.Kinds = append(s.Kinds, e.Kind)
				delete(present, e.Kind)
			}
		}
	}
	return s
}

// Describe renders an event as a one-line human-readable string (used
// by the -v mode of scm-trace).
func Describe(e Event) string {
	s := fmt.Sprintf("#%d %s", e.Seq, e.Kind)
	if e.Cycle != 0 || e.DurCycles != 0 {
		s += fmt.Sprintf(" @%d", e.Cycle)
	}
	if e.DurCycles != 0 {
		s += fmt.Sprintf("+%d", e.DurCycles)
	}
	if e.Layer != "" {
		s += " layer=" + e.Layer
	}
	if e.Tag != "" {
		s += " tag=" + e.Tag
	}
	if e.Role != "" {
		s += " role=" + e.Role
	}
	if e.Class != "" {
		s += " class=" + e.Class
	}
	if e.Banks != 0 {
		s += fmt.Sprintf(" banks=%d", e.Banks)
	}
	if e.Bytes != 0 {
		s += fmt.Sprintf(" bytes=%d", e.Bytes)
	}
	if e.Note != "" {
		s += " (" + e.Note + ")"
	}
	return s
}
