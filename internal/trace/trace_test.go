package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestBufferRecorder(t *testing.T) {
	var b Buffer
	b.Record(Event{Kind: KindAlloc, Tag: "fm0"})
	b.Record(Event{Kind: KindPin, Tag: "fm0"})
	b.Record(Event{Kind: KindAlloc, Tag: "fm1"})
	if len(b.Events) != 3 {
		t.Fatalf("events = %d", len(b.Events))
	}
	allocs := b.OfKind(KindAlloc)
	if len(allocs) != 2 || allocs[0].Tag != "fm0" || allocs[1].Tag != "fm1" {
		t.Errorf("OfKind(alloc) = %v", allocs)
	}
	if len(b.OfKind(KindSpill)) != 0 {
		t.Error("phantom spill events")
	}
}

func TestStamperSequencesEvents(t *testing.T) {
	var b Buffer
	s := &Stamper{R: &b}
	s.Record(Event{Kind: KindLayerStart})
	s.Record(Event{Kind: KindLayerEnd})
	if s.Count() != 2 {
		t.Errorf("count = %d", s.Count())
	}
	if b.Events[0].Seq != 1 || b.Events[1].Seq != 2 {
		t.Errorf("seqs = %d, %d", b.Events[0].Seq, b.Events[1].Seq)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	s := &Stamper{R: j}
	s.Record(Event{Kind: KindSpill, Layer: "conv1", Tag: "fm0", Bytes: 4096, Banks: 4})
	s.Record(Event{Kind: KindRecycle, Layer: "add", Banks: 2})
	if j.Err() != nil {
		t.Fatal(j.Err())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != KindSpill || e.Layer != "conv1" || e.Bytes != 4096 || e.Seq != 1 {
		t.Errorf("decoded = %+v", e)
	}
	// Omitted fields stay out of the JSON.
	if strings.Contains(lines[1], "tag") || strings.Contains(lines[1], "bytes") {
		t.Errorf("line 2 has empty fields: %s", lines[1])
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

func TestJSONLStickyError(t *testing.T) {
	j := NewJSONL(&failWriter{n: 1})
	j.Record(Event{Kind: KindAlloc})
	if j.Err() != nil {
		t.Fatalf("first write failed: %v", j.Err())
	}
	j.Record(Event{Kind: KindFree})
	if j.Err() == nil {
		t.Fatal("second write should have failed")
	}
	// Further records are no-ops, error retained.
	j.Record(Event{Kind: KindPin})
	if j.Err() == nil || !strings.Contains(j.Err().Error(), "disk full") {
		t.Errorf("err = %v", j.Err())
	}
}

func TestNopRecorder(t *testing.T) {
	var n Nop
	n.Record(Event{Kind: KindAlloc}) // must not panic
}

func TestDescribe(t *testing.T) {
	e := Event{Seq: 7, Kind: KindSpill, Layer: "conv2", Tag: "fm3", Role: "retained",
		Class: "spill-write", Banks: 3, Bytes: 12288, Note: "pool full"}
	s := Describe(e)
	for _, want := range []string{"#7", "spill", "conv2", "fm3", "retained", "spill-write", "banks=3", "bytes=12288", "pool full"} {
		if !strings.Contains(s, want) {
			t.Errorf("Describe missing %q: %s", want, s)
		}
	}
	if got := Describe(Event{Seq: 1, Kind: KindLayerEnd}); got != "#1 layer-end" {
		t.Errorf("minimal describe = %q", got)
	}
}

func TestTimeline(t *testing.T) {
	events := []Event{
		{Kind: KindLayerStart, Layer: "a"},
		{Kind: KindAlloc, Layer: "a", Banks: 4},
		{Kind: KindLayerEnd, Layer: "a", Banks: 4},
		{Kind: KindLayerEnd, Layer: "b", Banks: 7},
	}
	tl := Timeline(events)
	if len(tl) != 2 {
		t.Fatalf("timeline = %v", tl)
	}
	if tl[0].Layer != "a" || tl[0].UsedBanks != 4 || tl[1].UsedBanks != 7 {
		t.Errorf("timeline = %v", tl)
	}
	if Timeline(nil) != nil {
		t.Error("empty stream should yield nil timeline")
	}
}

func TestTimelineMissingLayerEnd(t *testing.T) {
	// A truncated trace whose last layer never ends contributes no
	// point — the timeline covers completed layers only.
	events := []Event{
		{Kind: KindLayerStart, Layer: "a"},
		{Kind: KindLayerEnd, Layer: "a", Banks: 3},
		{Kind: KindLayerStart, Layer: "b"},
		{Kind: KindAlloc, Layer: "b", Banks: 9},
	}
	tl := Timeline(events)
	if len(tl) != 1 || tl[0].Layer != "a" || tl[0].UsedBanks != 3 {
		t.Errorf("timeline = %v", tl)
	}
}

func TestDescribeZeroEvent(t *testing.T) {
	// The zero event must render without panicking and carry its seq.
	if got := Describe(Event{}); got != "#0 " {
		t.Errorf("zero event = %q", got)
	}
}

func TestDescribeCycleStamp(t *testing.T) {
	s := Describe(Event{Seq: 3, Kind: KindDRAM, Cycle: 120, DurCycles: 40})
	for _, want := range []string{"@120", "+40"} {
		if !strings.Contains(s, want) {
			t.Errorf("Describe missing %q: %s", want, s)
		}
	}
}

func TestSeqGaps(t *testing.T) {
	stamp := func(seqs ...int64) []Event {
		out := make([]Event, len(seqs))
		for i, s := range seqs {
			out[i] = Event{Seq: s, Kind: KindAlloc}
		}
		return out
	}
	if got := SeqGaps(stamp(1, 2, 3)); got != nil {
		t.Errorf("complete stream has gaps %v", got)
	}
	got := SeqGaps(stamp(1, 4, 5, 8))
	want := []int64{2, 3, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("gaps = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("gaps = %v, want %v", got, want)
		}
	}
	if SeqGaps(nil) != nil {
		t.Error("zero-event stream reported gaps")
	}
	// Unstamped events (Seq 0) are ignored, not treated as gaps.
	if got := SeqGaps([]Event{{Seq: 0}, {Seq: 1}, {Seq: 2}}); got != nil {
		t.Errorf("unstamped prefix produced gaps %v", got)
	}
}

func TestSummarize(t *testing.T) {
	events := []Event{
		{Kind: KindLayerStart, Layer: "a"},
		{Kind: KindAlloc, Layer: "a"},
		{Kind: KindAlloc, Layer: "a"},
		{Kind: KindLayerEnd, Layer: "a"},
		{Kind: KindLayerStart, Layer: "b"},
		{Kind: KindSpill, Layer: "b"},
	}
	s := Summarize(events)
	if len(s.Layers) != 2 || s.Layers[0] != "a" || s.Layers[1] != "b" {
		t.Fatalf("layers = %v", s.Layers)
	}
	if s.Counts["a"][KindAlloc] != 2 || s.Counts["b"][KindSpill] != 1 {
		t.Errorf("counts = %v", s.Counts)
	}
	// Kinds in lifecycle order, only those present.
	want := []Kind{KindLayerStart, KindAlloc, KindSpill, KindLayerEnd}
	if len(s.Kinds) != len(want) {
		t.Fatalf("kinds = %v", s.Kinds)
	}
	for i := range want {
		if s.Kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", s.Kinds, want)
		}
	}
	empty := Summarize(nil)
	if len(empty.Layers) != 0 || len(empty.Kinds) != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}
