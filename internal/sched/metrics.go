package sched

import (
	"shortcutmining/internal/metrics"
)

// Scheduler metric names (the per-run simulator metrics live in
// internal/core; these describe the multi-tenant layer above it).
const (
	MetricRequests       = "scm_sched_requests_total"
	MetricPreemptions    = "scm_sched_preemptions_total"
	MetricTenancyBytes   = "scm_sched_tenancy_bytes_total"
	MetricLatencyCycles  = "scm_sched_latency_cycles"
	MetricQueueCycles    = "scm_sched_queue_wait_cycles"
	MetricResidentRuns   = "scm_sched_resident_runs_peak"
	MetricMakespanCycles = "scm_sched_makespan_cycles"
	// MetricCompressSaved counts bytes the interlayer codec kept off the
	// DRAM bus, per stream (zero when the spec has no compress= clause).
	MetricCompressSaved = "scm_sched_compress_saved_bytes_total"
)

// observer is the scheduler's pre-resolved instrument bundle; a nil
// *observer disables observation with one branch per site, exactly
// like core's.
type observer struct {
	completedC []*metrics.Counter
	rejectedC  []*metrics.Counter
	preemptC   []*metrics.Counter
	spillC     []*metrics.Counter
	compSavedC []*metrics.Counter
	latencyH   []*metrics.Histogram
	queueH     []*metrics.Histogram
	residentG  *metrics.Gauge
	makespanG  *metrics.Gauge
}

// newObserver registers the per-stream instrument families on reg.
// Returns nil for a nil registry.
func newObserver(reg *metrics.Registry, names []string) *observer {
	if reg == nil {
		return nil
	}
	o := &observer{
		residentG: reg.Gauge(MetricResidentRuns, "high-water mark of co-resident runs"),
		makespanG: reg.Gauge(MetricMakespanCycles, "finish cycle of the last completed request"),
	}
	// Latency buckets span one fast layer (~1e4 cycles) to minutes of
	// queueing at 200 MHz (~1e10 cycles).
	bounds := metrics.ExpBuckets(1e4, 4, 11)
	for _, name := range names {
		l := metrics.L("stream", name)
		o.completedC = append(o.completedC, reg.Counter(MetricRequests,
			"requests by terminal state", l, metrics.L("state", "completed")))
		o.rejectedC = append(o.rejectedC, reg.Counter(MetricRequests,
			"requests by terminal state", l, metrics.L("state", "rejected")))
		o.preemptC = append(o.preemptC, reg.Counter(MetricPreemptions,
			"layer-boundary suspensions per stream", l))
		o.spillC = append(o.spillC, reg.Counter(MetricTenancyBytes,
			"bytes spilled at preemption and re-loaded at resumption", l))
		o.compSavedC = append(o.compSavedC, reg.Counter(MetricCompressSaved,
			"bytes the interlayer codec kept off the DRAM bus", l))
		o.latencyH = append(o.latencyH, reg.Histogram(MetricLatencyCycles,
			"request latency (arrival to completion) in cycles", bounds, l))
		o.queueH = append(o.queueH, reg.Histogram(MetricQueueCycles,
			"cycles between arrival and first executed layer", bounds, l))
	}
	return o
}

func (o *observer) completed(stream int, latency, wait int64) {
	if o != nil {
		o.completedC[stream].Inc()
		o.latencyH[stream].Observe(float64(latency))
		o.queueH[stream].Observe(float64(wait))
	}
}

func (o *observer) rejected(stream int) {
	if o != nil {
		o.rejectedC[stream].Inc()
	}
}

func (o *observer) preempted(stream int, spillBytes int64) {
	if o != nil {
		o.preemptC[stream].Inc()
		o.spillC[stream].Add(spillBytes)
	}
}

func (o *observer) compressed(stream int, savedBytes int64) {
	if o != nil {
		o.compSavedC[stream].Add(savedBytes)
	}
}

func (o *observer) resident(n int) {
	if o != nil {
		o.residentG.SetMax(float64(n))
	}
}

func (o *observer) finished(makespan int64, peak int) {
	if o != nil {
		o.makespanG.Set(float64(makespan))
		o.residentG.SetMax(float64(peak))
	}
}
