// Package sched is the multi-tenant scheduling simulator: N request
// streams — each a model-zoo network with a seeded arrival process —
// time-share one accelerator's bank pool, interleaved at layer
// granularity through the resumable core.Run API. The scheduler is
// fully deterministic: the same Spec (seed included) always produces
// byte-identical per-stream statistics.
//
// The physical model is the paper's own mechanism turned around:
// because logical buffers are composed at run time from a shared
// physical SRAM bank pool, nothing in the hardware ties the pool to a
// single network. A preempted tenant's live logical buffers are torn
// down P5-style — resident bytes without an up-to-date DRAM copy are
// spilled — and rebuilt on resume, with the re-load traffic charged to
// the preempted stream. Suspend/resume costs are accounted separately
// from each run's own traffic, so per-stream results always reconcile
// exactly against the single-tenant baseline.
package sched

import (
	"fmt"
	"strconv"
	"strings"

	"shortcutmining/internal/compress"
	"shortcutmining/internal/core"
	"shortcutmining/internal/noc"
)

// Policy selects how co-resident runs share the accelerator.
type Policy int

const (
	// FCFS runs each request to completion in arrival order — no
	// preemption, the single-tenant baseline with queueing.
	FCFS Policy = iota
	// RoundRobin gives each resident run a quantum of layers, then
	// suspends it (spilling its working set) and rotates.
	RoundRobin
	// Priority preempts at every layer boundary in favor of the
	// highest-priority runnable request (strictly higher priority than
	// the current tenant; ties never preempt).
	Priority
)

// String implements fmt.Stringer in the grammar's vocabulary.
func (p Policy) String() string {
	switch p {
	case FCFS:
		return "fcfs"
	case RoundRobin:
		return "rr"
	case Priority:
		return "prio"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy reads the grammar's policy names.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "fcfs":
		return FCFS, nil
	case "rr", "round-robin":
		return RoundRobin, nil
	case "prio", "priority":
		return Priority, nil
	}
	return FCFS, fmt.Errorf("sched: unknown policy %q (want fcfs, rr, prio)", s)
}

// StreamSpec describes one request stream: which network, how many
// requests, and the arrival process.
type StreamSpec struct {
	// Name labels the stream in stats and metrics; defaults to the
	// network name (deduplicated with a #i suffix).
	Name string `json:"name,omitempty"`
	// Network is a model-zoo network name.
	Network string `json:"network"`
	// Strategy is the buffer-management design point of this stream's
	// runs (default SCM).
	Strategy core.Strategy `json:"strategy"`
	// Requests is how many inferences the stream submits (default 1).
	Requests int `json:"requests"`
	// GapCycles separates consecutive arrivals; 0 submits everything
	// at StartCycles (a burst).
	GapCycles int64 `json:"gap_cycles,omitempty"`
	// StartCycles offsets the stream's first arrival.
	StartCycles int64 `json:"start_cycles,omitempty"`
	// Poisson replaces the fixed gap with seeded exponential gaps of
	// mean GapCycles.
	Poisson bool `json:"poisson,omitempty"`
	// Priority orders streams under the prio policy (higher wins).
	Priority int `json:"priority,omitempty"`
	// MinBanks overrides the run's computed minimum bank demand for
	// admission (models a carve-out reservation). Zero = computed.
	MinBanks int `json:"min_banks,omitempty"`
}

// Spec is a complete multi-tenant scheduling scenario.
type Spec struct {
	// Seed drives every random choice (Poisson arrival draws). The
	// same spec always produces the same schedule.
	Seed int64 `json:"seed"`
	// Policy selects the time-sharing discipline (default FCFS).
	Policy Policy `json:"policy"`
	// QuantumLayers is the round-robin quantum (default 8).
	QuantumLayers int `json:"quantum_layers,omitempty"`
	// MaxResident bounds runs launched but unfinished (each resident
	// run owns a spill region in DRAM); 0 = unlimited.
	MaxResident int `json:"max_resident,omitempty"`
	// Streams are the co-resident request streams.
	Streams []StreamSpec `json:"streams"`

	// Compress applies an interlayer feature-map codec at every chip's
	// DRAM boundary (and, under Chips > 1, to interconnect handoffs).
	// Nil means uncompressed. Every stream shares the one codec: the
	// codec engine sits at the memory controller, not per tenant.
	Compress *compress.Config `json:"compress,omitempty"`

	// Chips shards the scenario across N simulated accelerators
	// (internal/cluster), each with its own bank pool, connected by a
	// contended interconnect. 0 or 1 = single chip (this package).
	Chips int `json:"chips,omitempty"`
	// Topology wires the chips when Chips > 1: ring | mesh | all
	// (default ring).
	Topology string `json:"topology,omitempty"`
	// Placement maps layers to chips when Chips > 1: hash | leastload |
	// affinity (default affinity).
	Placement string `json:"placement,omitempty"`
	// LinkGBps / HopLatency tune the interconnect links; zero takes
	// the noc package defaults.
	LinkGBps   float64 `json:"link_gbps,omitempty"`
	HopLatency int64   `json:"hop_latency,omitempty"`
}

// maxSpecRequests bounds the total request count so a malformed spec
// cannot make the scheduler loop effectively forever.
const maxSpecRequests = 1 << 20

// DefaultQuantum is the round-robin quantum when the spec omits one.
const DefaultQuantum = 8

// Validate checks the scenario before the scheduler accepts it.
func (s *Spec) Validate() error {
	if s == nil || len(s.Streams) == 0 {
		return fmt.Errorf("sched: spec has no streams")
	}
	switch s.Policy {
	case FCFS, RoundRobin, Priority:
	default:
		return fmt.Errorf("sched: unknown policy %d", int(s.Policy))
	}
	if s.QuantumLayers < 0 {
		return fmt.Errorf("sched: negative quantum %d", s.QuantumLayers)
	}
	if s.MaxResident < 0 {
		return fmt.Errorf("sched: negative max-resident %d", s.MaxResident)
	}
	if err := s.validateCluster(); err != nil {
		return err
	}
	if err := s.Compress.Validate(); err != nil {
		return err
	}
	total := 0
	for i, st := range s.Streams {
		if st.Network == "" {
			return fmt.Errorf("sched: stream %d has no network", i)
		}
		if st.Requests <= 0 {
			return fmt.Errorf("sched: stream %d (%s) has %d requests", i, st.Network, st.Requests)
		}
		if st.GapCycles < 0 || st.StartCycles < 0 {
			return fmt.Errorf("sched: stream %d (%s) has a negative arrival parameter", i, st.Network)
		}
		if st.MinBanks < 0 {
			return fmt.Errorf("sched: stream %d (%s) has negative min-banks", i, st.Network)
		}
		total += st.Requests
	}
	if total > maxSpecRequests {
		return fmt.Errorf("sched: %d total requests (max %d)", total, maxSpecRequests)
	}
	return nil
}

// validateCluster checks the multi-chip clauses. Topology names defer
// to the authoritative noc parser; the placement vocabulary must stay
// in sync with cluster.ParsePlacement (cluster imports sched, so its
// parser cannot be called from here — a cluster unit test pins the
// two equal).
func (s *Spec) validateCluster() error {
	if s.Chips < 0 {
		return fmt.Errorf("sched: negative chips %d", s.Chips)
	}
	if s.Chips > noc.MaxChips {
		return fmt.Errorf("sched: %d chips (max %d)", s.Chips, noc.MaxChips)
	}
	if s.Topology != "" {
		if _, err := noc.ParseTopology(s.Topology); err != nil {
			return err
		}
	}
	switch s.Placement {
	case "", "hash", "leastload", "affinity":
	default:
		return fmt.Errorf("sched: unknown placement %q (want hash, leastload, affinity)", s.Placement)
	}
	if s.LinkGBps < 0 {
		return fmt.Errorf("sched: negative link bandwidth %g", s.LinkGBps)
	}
	if s.HopLatency < 0 {
		return fmt.Errorf("sched: negative hop latency %d", s.HopLatency)
	}
	if s.Chips <= 1 && (s.Topology != "" || s.Placement != "" || s.LinkGBps != 0 || s.HopLatency != 0) {
		return fmt.Errorf("sched: topo/place/linkgbps/hoplat require chips>1")
	}
	return nil
}

// String renders the spec in the grammar ParseSpec reads, so a spec
// round-trips through the CLI flag.
func (s *Spec) String() string {
	if s == nil {
		return ""
	}
	parts := []string{fmt.Sprintf("seed=%d", s.Seed), fmt.Sprintf("policy=%s", s.Policy)}
	if s.QuantumLayers > 0 {
		parts = append(parts, fmt.Sprintf("quantum=%d", s.QuantumLayers))
	}
	if s.MaxResident > 0 {
		parts = append(parts, fmt.Sprintf("maxresident=%d", s.MaxResident))
	}
	if s.Compress != nil {
		parts = append(parts, fmt.Sprintf("compress=%s", s.Compress.String()))
	}
	if s.Chips > 1 {
		parts = append(parts, fmt.Sprintf("chips=%d", s.Chips))
		if s.Topology != "" {
			parts = append(parts, fmt.Sprintf("topo=%s", s.Topology))
		}
		if s.Placement != "" {
			parts = append(parts, fmt.Sprintf("place=%s", s.Placement))
		}
		if s.LinkGBps > 0 {
			parts = append(parts, fmt.Sprintf("linkgbps=%s", strconv.FormatFloat(s.LinkGBps, 'g', -1, 64)))
		}
		if s.HopLatency > 0 {
			parts = append(parts, fmt.Sprintf("hoplat=%d", s.HopLatency))
		}
	}
	for _, st := range s.Streams {
		var kv []string
		kv = append(kv, fmt.Sprintf("n=%d", st.Requests))
		if st.GapCycles > 0 {
			kv = append(kv, fmt.Sprintf("gap=%d", st.GapCycles))
		}
		if st.StartCycles > 0 {
			kv = append(kv, fmt.Sprintf("start=%d", st.StartCycles))
		}
		if st.Poisson {
			kv = append(kv, "poisson")
		}
		if st.Priority != 0 {
			kv = append(kv, fmt.Sprintf("prio=%d", st.Priority))
		}
		if st.Strategy != core.SCM {
			kv = append(kv, fmt.Sprintf("strategy=%s", st.Strategy))
		}
		if st.MinBanks > 0 {
			kv = append(kv, fmt.Sprintf("banks=%d", st.MinBanks))
		}
		if st.Name != "" {
			kv = append(kv, fmt.Sprintf("name=%s", st.Name))
		}
		parts = append(parts, fmt.Sprintf("stream=%s:%s", st.Network, strings.Join(kv, ",")))
	}
	return strings.Join(parts, ";")
}

// ParseSpec reads the compact scheduling grammar used by the -spec CLI
// flag and the /v1/schedule endpoint: semicolon-separated clauses.
//
//	seed=42                      RNG seed (default 1)
//	policy=rr                    fcfs | rr | prio (default fcfs)
//	quantum=4                    round-robin quantum in layers (default 8)
//	maxresident=2                bound on launched-but-unfinished runs
//	compress=zvc:sparsity=0.5    interlayer feature-map codec (compress.ParseSpec)
//	chips=3                      shard across 3 chips (internal/cluster)
//	topo=mesh                    interconnect wiring: ring | mesh | all
//	place=affinity               layer placement: hash | leastload | affinity
//	linkgbps=16                  per-link bandwidth (GB/s)
//	hoplat=64                    per-hop link latency (cycles)
//	stream=resnet34:n=8,gap=2000000          8 requests, fixed inter-arrival gap
//	stream=squeezenet:n=4,gap=500000,poisson seeded exponential gaps, mean 500000
//	stream=resnet50:n=2,prio=3,strategy=baseline,banks=10,start=100,name=vip
//
// Example: "seed=7;policy=prio;stream=resnet34:n=4,gap=1000000;stream=squeezenet:n=6,gap=300000,prio=2".
// The returned spec is validated; malformed input yields an error,
// never a panic.
func ParseSpec(s string) (*Spec, error) {
	spec := &Spec{Seed: 1}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, hasEq := strings.Cut(clause, "=")
		if !hasEq {
			return nil, fmt.Errorf("sched: clause %q is not key=value", clause)
		}
		switch key {
		case "seed":
			seed, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sched: bad seed %q: %v", val, err)
			}
			spec.Seed = seed
		case "policy":
			p, err := ParsePolicy(val)
			if err != nil {
				return nil, err
			}
			spec.Policy = p
		case "quantum":
			q, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("sched: bad quantum %q: %v", val, err)
			}
			spec.QuantumLayers = q
		case "maxresident":
			m, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("sched: bad maxresident %q: %v", val, err)
			}
			spec.MaxResident = m
		case "compress":
			cc, err := compress.ParseSpec(val)
			if err != nil {
				return nil, err
			}
			spec.Compress = cc
		case "chips":
			c, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("sched: bad chips %q: %v", val, err)
			}
			spec.Chips = c
		case "topo":
			spec.Topology = val
		case "place":
			spec.Placement = val
		case "linkgbps":
			g, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("sched: bad linkgbps %q: %v", val, err)
			}
			spec.LinkGBps = g
		case "hoplat":
			h, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sched: bad hoplat %q: %v", val, err)
			}
			spec.HopLatency = h
		case "stream":
			st, err := parseStream(val)
			if err != nil {
				return nil, fmt.Errorf("sched: %q: %v", clause, err)
			}
			spec.Streams = append(spec.Streams, st)
		default:
			return nil, fmt.Errorf("sched: unknown clause %q (want seed=, policy=, quantum=, maxresident=, compress=, chips=, topo=, place=, linkgbps=, hoplat=, stream=)", clause)
		}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// parseStream reads "network:k=v,k=v,flag" stream descriptions.
func parseStream(s string) (StreamSpec, error) {
	network, params, _ := strings.Cut(s, ":")
	if network == "" {
		return StreamSpec{}, fmt.Errorf("stream has no network")
	}
	st := StreamSpec{Network: network, Strategy: core.SCM, Requests: 1}
	if params == "" {
		return st, nil
	}
	for _, part := range strings.Split(params, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, hasEq := strings.Cut(part, "=")
		if !hasEq {
			if k == "poisson" {
				st.Poisson = true
				continue
			}
			return StreamSpec{}, fmt.Errorf("unknown flag %q", k)
		}
		var err error
		switch k {
		case "n":
			st.Requests, err = strconv.Atoi(v)
		case "gap":
			st.GapCycles, err = strconv.ParseInt(v, 10, 64)
		case "start":
			st.StartCycles, err = strconv.ParseInt(v, 10, 64)
		case "prio":
			st.Priority, err = strconv.Atoi(v)
		case "banks":
			st.MinBanks, err = strconv.Atoi(v)
		case "strategy":
			st.Strategy, err = core.ParseStrategy(v)
		case "name":
			st.Name = v
		default:
			return StreamSpec{}, fmt.Errorf("unknown parameter %q", k)
		}
		if err != nil {
			return StreamSpec{}, fmt.Errorf("bad %s %q: %v", k, v, err)
		}
	}
	return st, nil
}

// streamNames returns the display name of every stream, deduplicated
// deterministically: unnamed streams take their network name, and
// collisions gain a #i suffix in spec order.
func (s *Spec) streamNames() []string {
	names := make([]string, len(s.Streams))
	seen := map[string]int{}
	for i, st := range s.Streams {
		name := st.Name
		if name == "" {
			name = st.Network
		}
		seen[name]++
		if n := seen[name]; n > 1 {
			name = fmt.Sprintf("%s#%d", name, n)
		}
		names[i] = name
	}
	return names
}
