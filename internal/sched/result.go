package sched

import (
	"fmt"
	"sort"

	"shortcutmining/internal/core"
	"shortcutmining/internal/dram"
	"shortcutmining/internal/stats"
)

// RequestStat is one settled request's timeline, in cycles.
type RequestStat struct {
	Stream        string `json:"stream"`
	Seq           int    `json:"seq"`
	Arrival       int64  `json:"arrival"`
	Start         int64  `json:"start"`
	Finish        int64  `json:"finish"`
	Latency       int64  `json:"latency"`
	QueueWait     int64  `json:"queue_wait"`
	ServiceCycles int64  `json:"service_cycles"`
	Preemptions   int64  `json:"preemptions"`
	SpillBytes    int64  `json:"spill_bytes"`
	ReloadBytes   int64  `json:"reload_bytes"`
}

// Quantiles holds the nearest-rank latency percentiles of one series,
// in cycles.
type Quantiles struct {
	P50 int64 `json:"p50"`
	P95 int64 `json:"p95"`
	P99 int64 `json:"p99"`
}

// quantiles computes nearest-rank percentiles over a copy of vals.
func quantiles(vals []int64) Quantiles {
	if len(vals) == 0 {
		return Quantiles{}
	}
	s := append([]int64(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := func(q float64) int64 {
		i := int(q*float64(len(s))+0.999999) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	return Quantiles{P50: rank(0.50), P95: rank(0.95), P99: rank(0.99)}
}

// ComputeQuantiles exposes the nearest-rank percentile computation so
// layers built on this package's result vocabulary (internal/cluster)
// summarize latencies identically.
func ComputeQuantiles(vals []int64) Quantiles { return quantiles(vals) }

// StreamResult is one stream's QoS outcome.
type StreamResult struct {
	Name     string `json:"name"`
	Network  string `json:"network"`
	Strategy string `json:"strategy"`
	Priority int    `json:"priority,omitempty"`

	Requests  int `json:"requests"`
	Completed int `json:"completed"`
	Rejected  int `json:"rejected"`

	Latency   Quantiles `json:"latency_cycles"`
	QueueWait Quantiles `json:"queue_wait_cycles"`
	// MeanLatency is the arithmetic mean request latency in cycles.
	MeanLatency float64 `json:"mean_latency_cycles"`

	// Preemptions counts suspensions of this stream's runs; Sched is
	// the multi-tenancy cost ledger (spill/reload traffic and cycles
	// attributable purely to sharing the accelerator).
	Preemptions int64           `json:"preemptions"`
	Sched       core.SchedStats `json:"sched"`

	// ServiceCycles is the sum of completed requests' own cycle
	// counts and SingleTenantCycles one request's single-tenant
	// TotalCycles — by construction ServiceCycles == Completed ×
	// SingleTenantCycles, the reconciliation the tests pin.
	ServiceCycles      int64 `json:"service_cycles"`
	SingleTenantCycles int64 `json:"single_tenant_cycles"`
	// Traffic sums the completed requests' own DRAM traffic; it
	// excludes Sched spill/reload bytes, which are reported above.
	Traffic dram.Traffic `json:"traffic"`

	// Compression sums the completed requests' codec ledgers; nil when
	// the spec carries no compress= clause.
	Compression *stats.CompressionStats `json:"compression,omitempty"`
}

// Slowdown is the mean latency relative to an uncontended run
// (mean latency / single-tenant cycles); 1.0 = no interference.
func (r StreamResult) Slowdown() float64 {
	if r.SingleTenantCycles == 0 {
		return 0
	}
	return r.MeanLatency / float64(r.SingleTenantCycles)
}

// TenancyBytes is the stream's total multi-tenancy traffic: bytes
// spilled at preemption plus bytes re-loaded at resumption.
func (r StreamResult) TenancyBytes() int64 { return r.Sched.SpillBytes + r.Sched.ReloadBytes }

// Result is a complete scheduling outcome.
type Result struct {
	Policy        string `json:"policy"`
	Seed          int64  `json:"seed"`
	QuantumLayers int    `json:"quantum_layers"`
	PoolBanks     int    `json:"pool_banks"`

	// MakespanCycles is the finish time of the last completed
	// request; PeakResident the most runs ever co-resident.
	MakespanCycles int64 `json:"makespan_cycles"`
	PeakResident   int   `json:"peak_resident"`

	Streams []StreamResult `json:"streams"`
	// Requests lists every settled request's timeline (completion
	// order), for CSV export and plotting.
	Requests []RequestStat `json:"requests"`

	// Compression is the whole scenario's codec ledger (the sum of the
	// per-stream ledgers); nil when compression is off.
	Compression *stats.CompressionStats `json:"compression,omitempty"`
}

// TotalTenancyBytes sums every stream's multi-tenancy traffic — the
// price of sharing, zero under FCFS.
func (r *Result) TotalTenancyBytes() int64 {
	var total int64
	for _, s := range r.Streams {
		total += s.TenancyBytes()
	}
	return total
}

// QoSTable renders the per-stream statistics for CLI / markdown use.
func (r *Result) QoSTable() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Per-stream QoS (policy=%s, seed=%d, pool=%d banks)", r.Policy, r.Seed, r.PoolBanks),
		"stream", "network", "strategy", "reqs", "done", "rej",
		"lat p50 (Mcyc)", "lat p95 (Mcyc)", "lat p99 (Mcyc)",
		"wait p95 (Mcyc)", "slowdown", "preempts", "tenancy MB")
	mcyc := func(v int64) string { return fmt.Sprintf("%.2f", float64(v)/1e6) }
	for _, s := range r.Streams {
		t.Add(s.Name, s.Network, s.Strategy,
			fmt.Sprintf("%d", s.Requests), fmt.Sprintf("%d", s.Completed), fmt.Sprintf("%d", s.Rejected),
			mcyc(s.Latency.P50), mcyc(s.Latency.P95), mcyc(s.Latency.P99),
			mcyc(s.QueueWait.P95),
			fmt.Sprintf("%.2fx", s.Slowdown()),
			fmt.Sprintf("%d", s.Preemptions),
			fmt.Sprintf("%.2f", float64(s.TenancyBytes())/1e6))
	}
	return t
}

// assemble folds the accumulators into the final Result.
func (s *scheduler) assemble() *Result {
	res := &Result{
		Policy:         s.spec.Policy.String(),
		Seed:           s.spec.Seed,
		QuantumLayers:  s.quantum,
		PoolBanks:      s.cfg.Pool.NumBanks,
		MakespanCycles: s.makespan,
		PeakResident:   s.peakRes,
	}
	for i, acc := range s.perStream {
		st := s.spec.Streams[i]
		sr := StreamResult{
			Name:     s.names[i],
			Network:  st.Network,
			Strategy: st.Strategy.String(),
			Priority: st.Priority,

			Requests:  st.Requests,
			Completed: acc.completed,
			Rejected:  acc.rejected,

			Latency:   quantiles(acc.latencies),
			QueueWait: quantiles(acc.queueWaits),

			Preemptions: acc.preemptions,
			Sched:       acc.sched,

			ServiceCycles:      acc.serviceCycles,
			SingleTenantCycles: acc.singleTenant,
			Traffic:            acc.traffic,
			Compression:        acc.comp,
		}
		if acc.comp != nil {
			if res.Compression == nil {
				res.Compression = &stats.CompressionStats{}
			}
			res.Compression.Add(*acc.comp)
		}
		if n := len(acc.latencies); n > 0 {
			var sum int64
			for _, l := range acc.latencies {
				sum += l
			}
			sr.MeanLatency = float64(sum) / float64(n)
		}
		res.Streams = append(res.Streams, sr)
		res.Requests = append(res.Requests, acc.requests...)
	}
	sort.SliceStable(res.Requests, func(a, b int) bool { return res.Requests[a].Finish < res.Requests[b].Finish })
	return res
}
