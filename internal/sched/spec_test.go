package sched

import (
	"strings"
	"testing"

	"shortcutmining/internal/core"
)

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("seed=42;policy=rr;quantum=4;maxresident=2;" +
		"stream=resnet34:n=8,gap=2000000,poisson,prio=3,strategy=baseline,banks=10,start=100,name=vip;" +
		"stream=squeezenet:n=2")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.Seed != 42 || spec.Policy != RoundRobin || spec.QuantumLayers != 4 || spec.MaxResident != 2 {
		t.Errorf("header fields: %+v", spec)
	}
	st := spec.Streams[0]
	want := StreamSpec{Name: "vip", Network: "resnet34", Strategy: core.Baseline,
		Requests: 8, GapCycles: 2000000, StartCycles: 100, Poisson: true, Priority: 3, MinBanks: 10}
	if st != want {
		t.Errorf("stream 0:\n got %+v\nwant %+v", st, want)
	}
	if st := spec.Streams[1]; st.Network != "squeezenet" || st.Requests != 2 || st.Strategy != core.SCM {
		t.Errorf("stream 1 defaults: %+v", st)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	in := "seed=7;policy=prio;maxresident=3;" +
		"stream=resnet34:n=4,gap=1000000;" +
		"stream=squeezenet:n=6,gap=300000,poisson,prio=2,strategy=fmreuse,name=bg"
	spec, err := ParseSpec(in)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	again, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", spec.String(), err)
	}
	if spec.String() != again.String() {
		t.Errorf("spec does not round-trip:\n first %s\nsecond %s", spec.String(), again.String())
	}
}

func TestSpecClusterClauses(t *testing.T) {
	in := "seed=3;policy=rr;chips=4;topo=mesh;place=affinity;linkgbps=8.5;hoplat=32;" +
		"stream=resnet34:n=2;stream=squeezenet:n=2"
	spec, err := ParseSpec(in)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.Chips != 4 || spec.Topology != "mesh" || spec.Placement != "affinity" ||
		spec.LinkGBps != 8.5 || spec.HopLatency != 32 {
		t.Fatalf("cluster fields not parsed: %+v", spec)
	}
	again, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", spec.String(), err)
	}
	if spec.String() != again.String() {
		t.Errorf("cluster spec does not round-trip:\n first %s\nsecond %s", spec.String(), again.String())
	}
	// Single-chip specs render without cluster clauses.
	single, err := ParseSpec("stream=vgg16:n=1")
	if err != nil {
		t.Fatal(err)
	}
	if s := single.String(); strings.Contains(s, "chips=") {
		t.Errorf("single-chip spec leaked cluster clauses: %s", s)
	}
}

func TestRunRejectsMultiChip(t *testing.T) {
	spec, err := ParseSpec("chips=2;stream=squeezenet:n=1")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if _, err := Run(core.Default(), spec, nil); err == nil {
		t.Fatal("sched.Run accepted a chips>1 spec; cluster owns those")
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"chips=-1;stream=vgg16:",             // negative chips
		"chips=999;stream=vgg16:",            // over chip cap
		"chips=2;topo=torus;stream=vgg16:",   // unknown topology
		"chips=2;place=random;stream=vgg16:", // unknown placement
		"chips=2;linkgbps=-4;stream=vgg16:",  // negative bandwidth
		"chips=2;hoplat=-1;stream=vgg16:",    // negative hop latency
		"topo=ring;stream=vgg16:",            // topo without chips
		"place=affinity;stream=vgg16:",       // place without chips
		"chips=2;linkgbps=abc;stream=vgg16:", // bad float
		"chips=two;stream=vgg16:",            // bad int
		"",                                   // no streams
		"policy=lifo;stream=vgg16:",          // unknown policy
		"stream=:n=2",                        // empty network
		"stream=vgg16:n=0",                   // zero requests
		"stream=vgg16:n=x",                   // bad int
		"stream=vgg16:bogus",                 // unknown flag
		"stream=vgg16:wat=1",                 // unknown parameter
		"quantum=-1;stream=vgg16:",           // negative quantum
		"turbo=1;stream=vgg16:",              // unknown clause
		"seed",                               // clause without =
		"stream=vgg16:n=9999999",             // over request cap
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q): want error, got nil", bad)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []Policy{FCFS, RoundRobin, Priority} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("sjf"); err == nil {
		t.Error("ParsePolicy(sjf): want error")
	}
}

func TestStreamNames(t *testing.T) {
	spec := &Spec{Streams: []StreamSpec{
		{Network: "resnet34"}, {Network: "resnet34"}, {Network: "vgg16", Name: "vip"}, {Network: "vgg16"},
	}}
	got := spec.streamNames()
	want := []string{"resnet34", "resnet34#2", "vip", "vgg16"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("streamNames = %v, want %v", got, want)
	}
}

func TestQuantiles(t *testing.T) {
	if q := quantiles(nil); q != (Quantiles{}) {
		t.Errorf("empty quantiles = %+v", q)
	}
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(100 - i) // reverse order: quantiles must sort
	}
	q := quantiles(vals)
	if q.P50 != 50 || q.P95 != 95 || q.P99 != 99 {
		t.Errorf("quantiles = %+v, want 50/95/99", q)
	}
}
