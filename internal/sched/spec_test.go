package sched

import (
	"strings"
	"testing"

	"shortcutmining/internal/core"
)

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("seed=42;policy=rr;quantum=4;maxresident=2;" +
		"stream=resnet34:n=8,gap=2000000,poisson,prio=3,strategy=baseline,banks=10,start=100,name=vip;" +
		"stream=squeezenet:n=2")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.Seed != 42 || spec.Policy != RoundRobin || spec.QuantumLayers != 4 || spec.MaxResident != 2 {
		t.Errorf("header fields: %+v", spec)
	}
	st := spec.Streams[0]
	want := StreamSpec{Name: "vip", Network: "resnet34", Strategy: core.Baseline,
		Requests: 8, GapCycles: 2000000, StartCycles: 100, Poisson: true, Priority: 3, MinBanks: 10}
	if st != want {
		t.Errorf("stream 0:\n got %+v\nwant %+v", st, want)
	}
	if st := spec.Streams[1]; st.Network != "squeezenet" || st.Requests != 2 || st.Strategy != core.SCM {
		t.Errorf("stream 1 defaults: %+v", st)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	in := "seed=7;policy=prio;maxresident=3;" +
		"stream=resnet34:n=4,gap=1000000;" +
		"stream=squeezenet:n=6,gap=300000,poisson,prio=2,strategy=fmreuse,name=bg"
	spec, err := ParseSpec(in)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	again, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", spec.String(), err)
	}
	if spec.String() != again.String() {
		t.Errorf("spec does not round-trip:\n first %s\nsecond %s", spec.String(), again.String())
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"",                          // no streams
		"policy=lifo;stream=vgg16:", // unknown policy
		"stream=:n=2",               // empty network
		"stream=vgg16:n=0",          // zero requests
		"stream=vgg16:n=x",          // bad int
		"stream=vgg16:bogus",        // unknown flag
		"stream=vgg16:wat=1",        // unknown parameter
		"quantum=-1;stream=vgg16:",  // negative quantum
		"turbo=1;stream=vgg16:",     // unknown clause
		"seed",                      // clause without =
		"stream=vgg16:n=9999999",    // over request cap
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q): want error, got nil", bad)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []Policy{FCFS, RoundRobin, Priority} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("sjf"); err == nil {
		t.Error("ParsePolicy(sjf): want error")
	}
}

func TestStreamNames(t *testing.T) {
	spec := &Spec{Streams: []StreamSpec{
		{Network: "resnet34"}, {Network: "resnet34"}, {Network: "vgg16", Name: "vip"}, {Network: "vgg16"},
	}}
	got := spec.streamNames()
	want := []string{"resnet34", "resnet34#2", "vip", "vgg16"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("streamNames = %v, want %v", got, want)
	}
}

func TestQuantiles(t *testing.T) {
	if q := quantiles(nil); q != (Quantiles{}) {
		t.Errorf("empty quantiles = %+v", q)
	}
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(100 - i) // reverse order: quantiles must sort
	}
	q := quantiles(vals)
	if q.P50 != 50 || q.P95 != 95 || q.P99 != 99 {
		t.Errorf("quantiles = %+v, want 50/95/99", q)
	}
}
