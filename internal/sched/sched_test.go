package sched

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"shortcutmining/internal/core"
	"shortcutmining/internal/metrics"
	"shortcutmining/internal/nn"
)

// contended is a scenario small enough for -race yet contended enough
// that round-robin and priority actually preempt.
const contended = "seed=11;policy=rr;quantum=2;" +
	"stream=squeezenet-bypass:n=3,gap=100000;" +
	"stream=densechain:n=4,gap=80000,poisson;" +
	"stream=squeezenet:n=2,start=50000"

func mustParse(t *testing.T, s string) *Spec {
	t.Helper()
	spec, err := ParseSpec(s)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", s, err)
	}
	return spec
}

func mustNet(t *testing.T, name string) *nn.Network {
	t.Helper()
	net, err := nn.Build(name)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	return net
}

func resultJSON(t *testing.T, r *Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return string(b)
}

// TestDeterminism runs the same seeded scenario twice sequentially and
// twice concurrently (the -race half of the guarantee): all four
// results must be byte-identical.
func TestDeterminism(t *testing.T) {
	cfg := core.Default()
	spec := mustParse(t, contended)

	first, err := Run(cfg, spec, nil)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	second, err := Run(cfg, spec, nil)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	want := resultJSON(t, first)
	if got := resultJSON(t, second); got != want {
		t.Fatalf("sequential reruns diverge:\n got %s\nwant %s", got, want)
	}

	var wg sync.WaitGroup
	results := make([]*Result, 2)
	errs := make([]error, 2)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each goroutine parses its own spec: concurrent runs must
			// not share mutable state anywhere.
			spec := mustParse(t, contended)
			results[i], errs[i] = Run(cfg, spec, nil)
		}(i)
	}
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("concurrent run %d: %v", i, errs[i])
		}
		if got := resultJSON(t, results[i]); got != want {
			t.Errorf("concurrent run %d diverges from sequential result", i)
		}
	}
}

// TestReconciliation pins the accounting contract: every stream's
// service cycles and DRAM traffic must equal its completed count times
// one single-tenant run — multi-tenancy costs live only in the
// separate tenancy ledger.
func TestReconciliation(t *testing.T) {
	cfg := core.Default()
	spec := mustParse(t, contended)
	res, err := Run(cfg, spec, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.MakespanCycles == 0 || res.PeakResident < 2 {
		t.Errorf("contended scenario not contended: makespan=%d peak=%d", res.MakespanCycles, res.PeakResident)
	}
	totalPreempt := int64(0)
	// The scheduler forces batch=1; the single-tenant baseline must
	// match that.
	base := cfg
	base.Batch = 1
	base.AmortizeWeights = false
	for _, sr := range res.Streams {
		if sr.Completed != sr.Requests || sr.Rejected != 0 {
			t.Errorf("%s: %d/%d completed, %d rejected", sr.Name, sr.Completed, sr.Requests, sr.Rejected)
		}
		strat, err := core.ParseStrategy(sr.Strategy)
		if err != nil {
			t.Fatalf("%s: %v", sr.Name, err)
		}
		single, err := core.Simulate(mustNet(t, sr.Network), base, strat, nil)
		if err != nil {
			t.Fatalf("%s: single-tenant run: %v", sr.Name, err)
		}
		if sr.SingleTenantCycles != single.TotalCycles {
			t.Errorf("%s: SingleTenantCycles=%d, independent run says %d",
				sr.Name, sr.SingleTenantCycles, single.TotalCycles)
		}
		if want := single.TotalCycles * int64(sr.Completed); sr.ServiceCycles != want {
			t.Errorf("%s: ServiceCycles=%d, want completed×single=%d", sr.Name, sr.ServiceCycles, want)
		}
		for c := range sr.Traffic {
			if want := single.Traffic[c] * int64(sr.Completed); sr.Traffic[c] != want {
				t.Errorf("%s: traffic class %d = %d bytes, want completed×single=%d",
					sr.Name, c, sr.Traffic[c], want)
			}
		}
		if sr.Sched.SpillBytes != sr.Sched.ReloadBytes {
			// Every suspended working set is reloaded in full on resume
			// only when the spilled prefix was resident; the ledger may
			// legitimately differ, but both directions must be counted.
			if sr.Sched.Suspends != sr.Sched.Resumes {
				t.Errorf("%s: suspends=%d resumes=%d", sr.Name, sr.Sched.Suspends, sr.Sched.Resumes)
			}
		}
		if sr.Preemptions != sr.Sched.Suspends {
			t.Errorf("%s: Preemptions=%d but ledger says %d suspends", sr.Name, sr.Preemptions, sr.Sched.Suspends)
		}
		totalPreempt += sr.Preemptions
	}
	if totalPreempt == 0 {
		t.Error("round-robin quantum=2 over 3 streams produced zero preemptions")
	}
	if res.TotalTenancyBytes() == 0 {
		t.Error("preemptive schedule reports zero tenancy traffic")
	}
}

// TestFCFSNoTenancyCost pins the FCFS invariant: no preemption, so the
// multi-tenancy ledger is zero and latency decomposes exactly into
// queue wait + single-tenant service.
func TestFCFSNoTenancyCost(t *testing.T) {
	spec := mustParse(t, "seed=3;policy=fcfs;stream=densechain:n=4,gap=1000;stream=squeezenet:n=2,gap=1000")
	res, err := Run(core.Default(), spec, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.TotalTenancyBytes() != 0 {
		t.Errorf("FCFS tenancy bytes = %d, want 0", res.TotalTenancyBytes())
	}
	if res.PeakResident != 1 {
		t.Errorf("FCFS peak resident = %d, want 1", res.PeakResident)
	}
	for _, sr := range res.Streams {
		if sr.Preemptions != 0 {
			t.Errorf("%s: FCFS preempted %d times", sr.Name, sr.Preemptions)
		}
	}
	for _, rq := range res.Requests {
		if rq.Latency != rq.QueueWait+rq.ServiceCycles {
			t.Errorf("%s/%d: latency %d != wait %d + service %d",
				rq.Stream, rq.Seq, rq.Latency, rq.QueueWait, rq.ServiceCycles)
		}
	}
}

// TestPriorityPreemption: a high-priority stream arriving mid-run must
// preempt the low-priority tenant and see lower queueing delay.
func TestPriorityPreemption(t *testing.T) {
	spec := mustParse(t, "seed=5;policy=prio;"+
		"stream=resnet18:n=1,name=bulk;"+
		"stream=densechain:n=2,gap=200000,start=100000,prio=5,name=vip")
	res, err := Run(core.Default(), spec, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	byName := map[string]StreamResult{}
	for _, sr := range res.Streams {
		byName[sr.Name] = sr
	}
	if byName["bulk"].Preemptions == 0 {
		t.Error("bulk stream was never preempted by the vip stream")
	}
	if byName["vip"].Preemptions != 0 {
		t.Errorf("vip stream was preempted %d times by lower priority", byName["vip"].Preemptions)
	}
	if v, b := byName["vip"].QueueWait.P95, byName["bulk"].QueueWait.P95; v > b && b > 0 {
		t.Errorf("vip waits longer than bulk: %d > %d", v, b)
	}
}

// TestAdmissionRejection: a stream whose declared bank demand exceeds
// the pool is refused, while admissible streams still complete.
func TestAdmissionRejection(t *testing.T) {
	cfg := core.Default()
	spec := mustParse(t, "seed=9;policy=fcfs;stream=densechain:n=3,banks=1000;stream=squeezenet:n=2")
	res, err := Run(cfg, spec, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if sr := res.Streams[0]; sr.Rejected != 3 || sr.Completed != 0 {
		t.Errorf("oversized stream: rejected=%d completed=%d, want 3/0", sr.Rejected, sr.Completed)
	}
	if sr := res.Streams[1]; sr.Completed != 2 || sr.Rejected != 0 {
		t.Errorf("admissible stream: completed=%d rejected=%d, want 2/0", sr.Completed, sr.Rejected)
	}
}

// TestMaxResident bounds co-residency.
func TestMaxResident(t *testing.T) {
	spec := mustParse(t, "seed=2;policy=rr;quantum=1;maxresident=2;"+
		"stream=densechain:n=2;stream=squeezenet:n=2;stream=squeezenet-bypass:n=2")
	res, err := Run(core.Default(), spec, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.PeakResident > 2 {
		t.Errorf("peak resident = %d, want <= 2", res.PeakResident)
	}
	for _, sr := range res.Streams {
		if sr.Completed != sr.Requests {
			t.Errorf("%s: %d/%d completed", sr.Name, sr.Completed, sr.Requests)
		}
	}
}

// TestSchedMetrics checks the observer publishes per-stream series.
func TestSchedMetrics(t *testing.T) {
	reg := metrics.New()
	spec := mustParse(t, contended)
	if _, err := Run(core.Default(), spec, reg); err != nil {
		t.Fatalf("run: %v", err)
	}
	snap := reg.Snapshot()
	found := map[string]bool{}
	for _, c := range snap.Counters {
		found[c.Name] = true
	}
	for _, g := range snap.Gauges {
		found[g.Name] = true
	}
	for _, h := range snap.Histograms {
		found[h.Name] = true
	}
	for _, name := range []string{MetricRequests, MetricPreemptions, MetricTenancyBytes,
		MetricLatencyCycles, MetricQueueCycles, MetricResidentRuns, MetricMakespanCycles} {
		if !found[name] {
			t.Errorf("metric %s not in snapshot", name)
		}
	}
}

// TestRunContextCancel verifies cancellation surfaces cleanly.
func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, core.Default(), mustParse(t, contended), nil); err == nil {
		t.Fatal("canceled run: want error")
	}
}

// TestQoSTable sanity-checks the rendered table.
func TestQoSTable(t *testing.T) {
	res, err := Run(core.Default(), mustParse(t, contended), nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	tbl := res.QoSTable().Markdown()
	for _, want := range []string{"stream", "lat p95", "preempts", "densechain", "squeezenet-bypass"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("QoS table missing %q:\n%s", want, tbl)
		}
	}
}
