package sched

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"shortcutmining/internal/core"
	"shortcutmining/internal/dram"
	"shortcutmining/internal/metrics"
	"shortcutmining/internal/nn"
	"shortcutmining/internal/stats"
)

// request is one inference arriving on a stream.
type request struct {
	stream  int
	seq     int
	arrival int64
}

// tenant is one launched, unfinished run.
type tenant struct {
	req     request
	run     *core.Run
	start   int64 // cycle of the first executed layer; -1 until then
	quantum int   // layers executed since the last switch-in
}

// Run executes the scenario on the platform and returns the per-stream
// QoS statistics. reg may be nil (no metrics).
func Run(cfg core.Config, spec *Spec, reg *metrics.Registry) (*Result, error) {
	return RunContext(context.Background(), cfg, spec, reg)
}

// RunContext is Run with cooperative cancellation at layer granularity
// (the same cadence as core.SimulateContext).
func RunContext(ctx context.Context, cfg core.Config, spec *Spec, reg *metrics.Registry) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Chips > 1 {
		// Sharded scenarios need per-chip pools and an interconnect —
		// that's internal/cluster's job (scm-cluster / POST /v1/cluster).
		return nil, fmt.Errorf("sched: spec requests chips=%d; multi-chip scenarios run through the cluster package", spec.Chips)
	}
	// Scheduled requests are single inferences: the pool holds one
	// image's working set, and batching across streams is a scheduler
	// follow-on (see ROADMAP), not an implicit config knob.
	cfg.Batch = 1
	cfg.AmortizeWeights = false
	if spec.Compress != nil {
		cfg.Compression = spec.Compress
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	nets := make([]*nn.Network, len(spec.Streams))
	for i, st := range spec.Streams {
		net, err := nn.Build(st.Network)
		if err != nil {
			return nil, fmt.Errorf("sched: stream %d: %w", i, err)
		}
		nets[i] = net
	}

	s := &scheduler{
		ctx:      ctx,
		cfg:      cfg,
		spec:     spec,
		nets:     nets,
		names:    spec.streamNames(),
		obs:      newObserver(reg, spec.streamNames()),
		quantum:  spec.QuantumLayers,
		arrivals: buildArrivals(spec),
		perStream: func(n int) []*streamAccum {
			out := make([]*streamAccum, n)
			for i := range out {
				out[i] = &streamAccum{}
			}
			return out
		}(len(spec.Streams)),
	}
	if s.quantum <= 0 {
		s.quantum = DefaultQuantum
	}
	if err := s.loop(); err != nil {
		return nil, err
	}
	return s.assemble(), nil
}

// buildArrivals precomputes every request's arrival cycle. Poisson
// streams draw exponential gaps from a per-stream RNG derived from the
// spec seed, so arrival processes are independent of each other and of
// stream order yet fully reproducible.
func buildArrivals(spec *Spec) []request {
	var out []request
	for i, st := range spec.Streams {
		// Per-stream RNG: golden-ratio stride decorrelates adjacent
		// stream seeds without depending on stream count or order.
		rng := rand.New(rand.NewSource(spec.Seed + int64(i)*0x1E3779B97F4A7C15))
		t := st.StartCycles
		for j := 0; j < st.Requests; j++ {
			if j > 0 {
				gap := st.GapCycles
				if st.Poisson && st.GapCycles > 0 {
					gap = int64(rng.ExpFloat64()*float64(st.GapCycles)) + 1
				}
				t += gap
			}
			out = append(out, request{stream: i, seq: j, arrival: t})
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].arrival != out[b].arrival {
			return out[a].arrival < out[b].arrival
		}
		if out[a].stream != out[b].stream {
			return out[a].stream < out[b].stream
		}
		return out[a].seq < out[b].seq
	})
	return out
}

// Arrival is one request's precomputed arrival, exposed for the
// cluster layer, which replays this package's exact deterministic
// arrival process across chips.
type Arrival struct {
	// Stream / Seq identify the request: spec stream index and the
	// request's position within that stream.
	Stream, Seq int
	// Cycle is the arrival time.
	Cycle int64
}

// Arrivals returns the scenario's deterministic arrival sequence,
// sorted by (cycle, stream, seq) — the order the scheduler admits
// requests. The spec should be validated first.
func (s *Spec) Arrivals() []Arrival {
	reqs := buildArrivals(s)
	out := make([]Arrival, len(reqs))
	for i, r := range reqs {
		out[i] = Arrival{Stream: r.stream, Seq: r.seq, Cycle: r.arrival}
	}
	return out
}

// StreamNames exposes the deduplicated per-stream display names used
// in results and metrics.
func (s *Spec) StreamNames() []string { return s.streamNames() }

// streamAccum accumulates one stream's outcome during the loop.
type streamAccum struct {
	completed, rejected int
	preemptions         int64
	sched               core.SchedStats
	serviceCycles       int64
	traffic             dram.Traffic
	singleTenant        int64 // one request's single-tenant TotalCycles
	comp                *stats.CompressionStats
	latencies           []int64
	queueWaits          []int64
	requests            []RequestStat
}

type scheduler struct {
	ctx   context.Context
	cfg   core.Config
	spec  *Spec
	nets  []*nn.Network
	names []string
	obs   *observer

	quantum  int
	arrivals []request
	ai       int // next arrival not yet visible

	now     int64
	waiting []request // arrived, not launched (arrival order)
	ready   []*tenant // launched, unfinished; ready[0] is the tenant on the accelerator
	settled int       // completed + rejected

	perStream []*streamAccum
	makespan  int64
	peakRes   int
}

// absorb moves arrivals that have happened by now into the waiting
// queue (they stay in deterministic arrival order).
func (s *scheduler) absorb() {
	for s.ai < len(s.arrivals) && s.arrivals[s.ai].arrival <= s.now {
		s.waiting = append(s.waiting, s.arrivals[s.ai])
		s.ai++
	}
}

// minBanks is the admission demand of a stream's runs.
func (s *scheduler) minBanks(stream int) int {
	if mb := s.spec.Streams[stream].MinBanks; mb > 0 {
		return mb
	}
	return s.cfg.ReserveBanks + 1
}

// admissible reports whether the stream's demand fits the shared pool.
func (s *scheduler) admissible(stream int) bool {
	return s.minBanks(stream) <= s.cfg.Pool.NumBanks
}

// reject permanently refuses a request whose bank demand cannot fit.
func (s *scheduler) reject(req request) {
	s.perStream[req.stream].rejected++
	s.settled++
	s.obs.rejected(req.stream)
}

// launch admits the waiting request at index wi: it leaves the queue
// and becomes a resident tenant at the back of the ready list.
func (s *scheduler) launch(wi int) (*tenant, error) {
	req := s.waiting[wi]
	s.waiting = append(s.waiting[:wi], s.waiting[wi+1:]...)
	st := s.spec.Streams[req.stream]
	run, err := core.NewRun(s.nets[req.stream], s.cfg, st.Strategy, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("sched: launching %s request %d: %w", s.names[req.stream], req.seq, err)
	}
	t := &tenant{req: req, run: run, start: -1}
	s.ready = append(s.ready, t)
	if len(s.ready) > s.peakRes {
		s.peakRes = len(s.ready)
	}
	s.obs.resident(len(s.ready))
	return t, nil
}

// roomToLaunch reports whether another run may become resident.
func (s *scheduler) roomToLaunch() bool {
	return s.spec.MaxResident == 0 || len(s.ready) < s.spec.MaxResident
}

// dropRejected filters inadmissible requests off the front of waiting
// so pick logic only ever sees launchable work.
func (s *scheduler) dropRejected() {
	kept := s.waiting[:0]
	for _, req := range s.waiting {
		if s.admissible(req.stream) {
			kept = append(kept, req)
		} else {
			s.reject(req)
		}
	}
	s.waiting = kept
}

// pick chooses the tenant to run next, launching from the waiting
// queue when the policy calls for it. ready[0] is the current tenant;
// pick reorders ready so its choice is at the head. Returns nil when
// nothing is runnable (idle until the next arrival).
func (s *scheduler) pick() (*tenant, error) {
	s.dropRejected()
	switch s.spec.Policy {
	case FCFS:
		// Non-preemptive: the resident tenant runs to completion, and
		// at most one run is resident at a time.
		if len(s.ready) > 0 {
			return s.ready[0], nil
		}
		if len(s.waiting) > 0 {
			return s.launch(0)
		}
		return nil, nil

	case RoundRobin:
		// Fill the resident set in arrival order, then rotate on
		// quantum expiry.
		for len(s.waiting) > 0 && s.roomToLaunch() {
			if _, err := s.launch(0); err != nil {
				return nil, err
			}
		}
		if len(s.ready) == 0 {
			return nil, nil
		}
		if s.ready[0].quantum >= s.quantum && len(s.ready) > 1 {
			expired := s.ready[0]
			s.ready = append(s.ready[1:], expired)
			s.ready[0].quantum = 0
		}
		return s.ready[0], nil

	case Priority:
		// The highest-priority runnable wins; the current tenant is
		// only preempted by a strictly higher priority, so equal
		// priorities never thrash.
		for len(s.waiting) > 0 && s.roomToLaunch() {
			if _, err := s.launch(0); err != nil {
				return nil, err
			}
		}
		if len(s.ready) == 0 {
			return nil, nil
		}
		best := 0
		for i := 1; i < len(s.ready); i++ {
			if s.prioLess(s.ready[best], s.ready[i]) {
				best = i
			}
		}
		if best != 0 && s.prio(s.ready[best]) > s.prio(s.ready[0]) {
			chosen := s.ready[best]
			s.ready = append(s.ready[:best], s.ready[best+1:]...)
			s.ready = append([]*tenant{chosen}, s.ready...)
			s.ready[0].quantum = 0
		}
		return s.ready[0], nil
	}
	return nil, fmt.Errorf("sched: unknown policy %d", int(s.spec.Policy))
}

func (s *scheduler) prio(t *tenant) int { return s.spec.Streams[t.req.stream].Priority }

// prioLess reports whether b should be preferred over a: higher
// priority first, then earlier arrival, then stream order, then seq.
func (s *scheduler) prioLess(a, b *tenant) bool {
	if pa, pb := s.prio(a), s.prio(b); pa != pb {
		return pa < pb
	}
	if a.req.arrival != b.req.arrival {
		return b.req.arrival < a.req.arrival
	}
	if a.req.stream != b.req.stream {
		return b.req.stream < a.req.stream
	}
	return b.req.seq < a.req.seq
}

// suspend preempts a tenant, spilling its working set; the spill
// cycles serialize onto the shared channel, advancing global time.
func (s *scheduler) suspend(t *tenant) error {
	before := t.run.Sched()
	if _, err := t.run.Suspend(); err != nil {
		return err
	}
	after := t.run.Sched()
	s.now += after.SpillCycles - before.SpillCycles
	acc := s.perStream[t.req.stream]
	acc.preemptions++
	s.obs.preempted(t.req.stream, after.SpillBytes-before.SpillBytes)
	return nil
}

// loop is the deterministic event loop: pick a tenant, execute one
// layer, account time, repeat until every request settled.
func (s *scheduler) loop() error {
	total := len(s.arrivals)
	var current *tenant
	for s.settled < total {
		if err := s.ctx.Err(); err != nil {
			return fmt.Errorf("sched: canceled at cycle %d: %w", s.now, err)
		}
		s.absorb()
		next, err := s.pick()
		if err != nil {
			return err
		}
		if next == nil {
			if s.ai >= len(s.arrivals) {
				break // only rejected requests remained
			}
			s.now = s.arrivals[s.ai].arrival
			current = nil
			continue
		}
		if current != nil && current != next && !current.run.Done() && !current.run.Suspended() {
			if err := s.suspend(current); err != nil {
				return err
			}
			next.quantum = 0
		}
		current = next
		if next.start < 0 {
			next.start = s.now
		}

		beforeClock := next.run.Clock()
		beforeSched := next.run.Sched()
		done, err := next.run.Step(s.ctx)
		if err != nil {
			return fmt.Errorf("sched: %s request %d: %w", s.names[next.req.stream], next.req.seq, err)
		}
		afterSched := next.run.Sched()
		s.now += next.run.Clock() - beforeClock
		s.now += afterSched.ReloadCycles - beforeSched.ReloadCycles
		next.quantum++

		if done {
			s.finish(next)
			current = nil
		}
	}
	s.obs.finished(s.makespan, s.peakRes)
	return nil
}

// finish retires a completed tenant and folds its outcome into the
// stream accumulators.
func (s *scheduler) finish(t *tenant) {
	for i, r := range s.ready {
		if r == t {
			s.ready = append(s.ready[:i], s.ready[i+1:]...)
			break
		}
	}
	res, err := t.run.Result()
	if err != nil {
		// finish is only called with done == true; Result cannot fail.
		// scmvet:ok nopanic scheduler invariant, not an input error: a done run always has a result
		panic(fmt.Sprintf("sched: finished run has no result: %v", err))
	}
	acc := s.perStream[t.req.stream]
	acc.completed++
	s.settled++
	sc := t.run.Sched()
	acc.sched.Suspends += sc.Suspends
	acc.sched.Resumes += sc.Resumes
	acc.sched.SpillBytes += sc.SpillBytes
	acc.sched.ReloadBytes += sc.ReloadBytes
	acc.sched.SpillCycles += sc.SpillCycles
	acc.sched.ReloadCycles += sc.ReloadCycles
	acc.serviceCycles += res.TotalCycles
	for c := range res.Traffic {
		acc.traffic[c] += res.Traffic[c] // scmvet:ok accounting fold of a finished tenant's RunStats into the stream ledger
	}
	acc.singleTenant = res.TotalCycles
	if res.Compression != nil {
		if acc.comp == nil {
			acc.comp = &stats.CompressionStats{}
		}
		acc.comp.Add(*res.Compression)
		s.obs.compressed(t.req.stream, res.Compression.SavedBytes)
	}
	lat := s.now - t.req.arrival
	wait := t.start - t.req.arrival
	acc.latencies = append(acc.latencies, lat)
	acc.queueWaits = append(acc.queueWaits, wait)
	acc.requests = append(acc.requests, RequestStat{
		Stream: s.names[t.req.stream], Seq: t.req.seq,
		Arrival: t.req.arrival, Start: t.start, Finish: s.now,
		Latency: lat, QueueWait: wait, ServiceCycles: res.TotalCycles,
		Preemptions: sc.Suspends, SpillBytes: sc.SpillBytes, ReloadBytes: sc.ReloadBytes,
	})
	if s.now > s.makespan {
		s.makespan = s.now
	}
	s.obs.completed(t.req.stream, lat, wait)
}
