// Package tensorops provides naive, obviously-correct reference
// implementations of the network operators on float32 data. The
// functional-verification mode of the core scheduler pushes real
// activations through the logical-buffer machinery and checks them
// bit-exactly against this package, proving that role switching,
// retention, spilling and bank recycling never lose or corrupt data.
//
// Layout is C-major (channel, row, column), matching tensor.Shape.
// Activation functions are identity: the buffer procedures are
// oblivious to element values, so verification needs determinism, not
// nonlinearities.
package tensorops

import (
	"fmt"
	"math/rand"

	"shortcutmining/internal/tensor"
)

// index returns the flat offset of (c, y, x) in shape s.
func index(s tensor.Shape, c, y, x int) int {
	return (c*s.H+y)*s.W + x
}

// Conv2D computes a dense 2-D convolution. weights is laid out
// [outC][inC][k][k]. The output shape follows tensor.ConvOut.
func Conv2D(in []float32, inShape tensor.Shape, weights []float32, outC, k, stride, pad int) ([]float32, tensor.Shape, error) {
	return GroupedConv2D(in, inShape, weights, outC, k, stride, pad, 1)
}

// GroupedConv2D computes a grouped 2-D convolution (groups = inShape.C
// is depthwise). weights is laid out [outC][inC/groups][k][k]; output
// channel oc reads input channels of its group only.
func GroupedConv2D(in []float32, inShape tensor.Shape, weights []float32, outC, k, stride, pad, groups int) ([]float32, tensor.Shape, error) {
	if len(in) != inShape.Elems() {
		return nil, tensor.Shape{}, fmt.Errorf("tensorops: input length %d != shape %v", len(in), inShape)
	}
	if groups < 1 || inShape.C%groups != 0 || outC%groups != 0 {
		return nil, tensor.Shape{}, fmt.Errorf("tensorops: groups %d does not divide channels %d→%d", groups, inShape.C, outC)
	}
	icg := inShape.C / groups
	ocg := outC / groups
	if want := outC * icg * k * k; len(weights) != want {
		return nil, tensor.Shape{}, fmt.Errorf("tensorops: weight length %d, want %d", len(weights), want)
	}
	outShape := tensor.Shape{
		C: outC,
		H: tensor.ConvOut(inShape.H, k, stride, pad),
		W: tensor.ConvOut(inShape.W, k, stride, pad),
	}
	if !outShape.Valid() {
		return nil, tensor.Shape{}, fmt.Errorf("tensorops: degenerate conv output %v", outShape)
	}
	out := make([]float32, outShape.Elems())
	for oc := 0; oc < outC; oc++ {
		icBase := (oc / ocg) * icg
		for oy := 0; oy < outShape.H; oy++ {
			for ox := 0; ox < outShape.W; ox++ {
				var acc float32
				for ic := 0; ic < icg; ic++ {
					for ky := 0; ky < k; ky++ {
						iy := oy*stride - pad + ky
						if iy < 0 || iy >= inShape.H {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*stride - pad + kx
							if ix < 0 || ix >= inShape.W {
								continue
							}
							w := weights[((oc*icg+ic)*k+ky)*k+kx]
							acc += w * in[index(inShape, icBase+ic, iy, ix)]
						}
					}
				}
				out[index(outShape, oc, oy, ox)] = acc
			}
		}
	}
	return out, outShape, nil
}

// MaxPool computes max pooling with the given window geometry.
// Padding positions contribute nothing (they are skipped, not treated
// as zero, matching framework semantics for max pooling).
func MaxPool(in []float32, inShape tensor.Shape, k, stride, pad int) ([]float32, tensor.Shape, error) {
	return pool(in, inShape, k, stride, pad, true)
}

// AvgPool computes average pooling; the divisor is the count of valid
// (in-bounds) window positions.
func AvgPool(in []float32, inShape tensor.Shape, k, stride, pad int) ([]float32, tensor.Shape, error) {
	return pool(in, inShape, k, stride, pad, false)
}

func pool(in []float32, inShape tensor.Shape, k, stride, pad int, max bool) ([]float32, tensor.Shape, error) {
	if len(in) != inShape.Elems() {
		return nil, tensor.Shape{}, fmt.Errorf("tensorops: input length %d != shape %v", len(in), inShape)
	}
	outShape := tensor.Shape{
		C: inShape.C,
		H: tensor.ConvOut(inShape.H, k, stride, pad),
		W: tensor.ConvOut(inShape.W, k, stride, pad),
	}
	if !outShape.Valid() {
		return nil, tensor.Shape{}, fmt.Errorf("tensorops: degenerate pool output %v", outShape)
	}
	out := make([]float32, outShape.Elems())
	for c := 0; c < inShape.C; c++ {
		for oy := 0; oy < outShape.H; oy++ {
			for ox := 0; ox < outShape.W; ox++ {
				var acc float32
				count := 0
				for ky := 0; ky < k; ky++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= inShape.H {
						continue
					}
					for kx := 0; kx < k; kx++ {
						ix := ox*stride - pad + kx
						if ix < 0 || ix >= inShape.W {
							continue
						}
						v := in[index(inShape, c, iy, ix)]
						if count == 0 {
							acc = v
						} else if max {
							if v > acc {
								acc = v
							}
						} else {
							acc += v
						}
						count++
					}
				}
				if !max && count > 0 {
					acc /= float32(count)
				}
				out[index(outShape, c, oy, ox)] = acc
			}
		}
	}
	return out, outShape, nil
}

// GlobalAvgPool reduces each channel to its mean.
func GlobalAvgPool(in []float32, inShape tensor.Shape) ([]float32, tensor.Shape, error) {
	if len(in) != inShape.Elems() {
		return nil, tensor.Shape{}, fmt.Errorf("tensorops: input length %d != shape %v", len(in), inShape)
	}
	out := make([]float32, inShape.C)
	per := inShape.H * inShape.W
	for c := 0; c < inShape.C; c++ {
		var sum float32
		for i := 0; i < per; i++ {
			sum += in[c*per+i]
		}
		out[c] = sum / float32(per)
	}
	return out, tensor.Shape{C: inShape.C, H: 1, W: 1}, nil
}

// FC computes a fully connected layer; weights is [outC][inElems].
func FC(in []float32, weights []float32, outC int) ([]float32, tensor.Shape, error) {
	if outC <= 0 || len(in) == 0 {
		return nil, tensor.Shape{}, fmt.Errorf("tensorops: bad FC geometry in=%d out=%d", len(in), outC)
	}
	if len(weights) != outC*len(in) {
		return nil, tensor.Shape{}, fmt.Errorf("tensorops: FC weight length %d, want %d", len(weights), outC*len(in))
	}
	out := make([]float32, outC)
	for o := 0; o < outC; o++ {
		var acc float32
		row := weights[o*len(in) : (o+1)*len(in)]
		for i, v := range in {
			acc += row[i] * v
		}
		out[o] = acc
	}
	return out, tensor.Shape{C: outC, H: 1, W: 1}, nil
}

// Add sums equally shaped operands element-wise.
func Add(operands ...[]float32) ([]float32, error) {
	if len(operands) < 2 {
		return nil, fmt.Errorf("tensorops: add needs at least two operands")
	}
	n := len(operands[0])
	out := make([]float32, n)
	copy(out, operands[0])
	for _, op := range operands[1:] {
		if len(op) != n {
			return nil, fmt.Errorf("tensorops: add length mismatch %d vs %d", len(op), n)
		}
		for i, v := range op {
			out[i] += v
		}
	}
	return out, nil
}

// Concat concatenates along the channel dimension (a plain append in
// C-major layout when spatial sizes match, which the IR guarantees).
func Concat(operands ...[]float32) []float32 {
	var out []float32
	for _, op := range operands {
		out = append(out, op...)
	}
	return out
}

// ChannelShuffle permutes channels the ShuffleNet way: viewing the C
// channels as a groups×(C/groups) matrix and transposing it, so output
// channel o*groups+g reads input channel g*(C/groups)+o.
func ChannelShuffle(in []float32, inShape tensor.Shape, groups int) ([]float32, error) {
	if len(in) != inShape.Elems() {
		return nil, fmt.Errorf("tensorops: input length %d != shape %v", len(in), inShape)
	}
	if groups < 2 || inShape.C%groups != 0 {
		return nil, fmt.Errorf("tensorops: shuffle groups %d must divide channels %d", groups, inShape.C)
	}
	per := inShape.C / groups
	hw := inShape.H * inShape.W
	out := make([]float32, len(in))
	for g := 0; g < groups; g++ {
		for o := 0; o < per; o++ {
			src := (g*per + o) * hw
			dst := (o*groups + g) * hw
			copy(out[dst:dst+hw], in[src:src+hw])
		}
	}
	return out, nil
}

// RandomTensor generates a deterministic pseudo-random tensor for the
// given seed, in [-1, 1).
func RandomTensor(seed int64, n int) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	for i := range out {
		out[i] = rng.Float32()*2 - 1
	}
	return out
}
