package tensorops

import (
	"math"
	"testing"
	"testing/quick"

	"shortcutmining/internal/tensor"
)

func almostEqual(a, b float32) bool {
	return math.Abs(float64(a-b)) < 1e-5
}

func TestConv2DIdentityKernel(t *testing.T) {
	// 1x1 kernel with weight 1 on one channel is the identity.
	in := []float32{1, 2, 3, 4}
	out, shape, err := Conv2D(in, tensor.Shape{C: 1, H: 2, W: 2}, []float32{1}, 1, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if shape != (tensor.Shape{C: 1, H: 2, W: 2}) {
		t.Fatalf("shape = %v", shape)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("out[%d] = %f", i, out[i])
		}
	}
}

func TestConv2DHandComputed(t *testing.T) {
	// 3x3 all-ones kernel over a 3x3 all-ones image with pad 1: each
	// output equals the count of valid positions.
	in := make([]float32, 9)
	for i := range in {
		in[i] = 1
	}
	w := make([]float32, 9)
	for i := range w {
		w[i] = 1
	}
	out, shape, err := Conv2D(in, tensor.Shape{C: 1, H: 3, W: 3}, w, 1, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{4, 6, 4, 6, 9, 6, 4, 6, 4}
	_ = shape
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %f, want %f", i, out[i], want[i])
		}
	}
}

func TestConv2DStride(t *testing.T) {
	// 1x1 stride-2 conv picks the even grid.
	in := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	out, shape, err := Conv2D(in, tensor.Shape{C: 1, H: 4, W: 4}, []float32{1}, 1, 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if shape != (tensor.Shape{C: 1, H: 2, W: 2}) {
		t.Fatalf("shape = %v", shape)
	}
	want := []float32{1, 3, 9, 11}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %f, want %f", i, out[i], want[i])
		}
	}
}

func TestConv2DMultiChannel(t *testing.T) {
	// Two input channels, pointwise sum via weights {1,1}.
	in := []float32{1, 2, 10, 20} // ch0: [1 2], ch1: [10 20]
	out, _, err := Conv2D(in, tensor.Shape{C: 2, H: 1, W: 2}, []float32{1, 1}, 1, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 11 || out[1] != 22 {
		t.Errorf("out = %v", out)
	}
}

func TestConv2DErrors(t *testing.T) {
	if _, _, err := Conv2D([]float32{1}, tensor.Shape{C: 1, H: 2, W: 2}, []float32{1}, 1, 1, 1, 0); err == nil {
		t.Error("short input accepted")
	}
	if _, _, err := Conv2D(make([]float32, 4), tensor.Shape{C: 1, H: 2, W: 2}, []float32{1, 1}, 1, 1, 1, 0); err == nil {
		t.Error("bad weight length accepted")
	}
	if _, _, err := Conv2D(make([]float32, 4), tensor.Shape{C: 1, H: 2, W: 2}, make([]float32, 25), 1, 5, 1, 0); err == nil {
		t.Error("degenerate output accepted")
	}
}

func TestMaxPool(t *testing.T) {
	in := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	out, shape, err := MaxPool(in, tensor.Shape{C: 1, H: 4, W: 4}, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if shape != (tensor.Shape{C: 1, H: 2, W: 2}) {
		t.Fatalf("shape = %v", shape)
	}
	want := []float32{6, 8, 14, 16}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %f, want %f", i, out[i], want[i])
		}
	}
}

func TestAvgPoolPaddingDivisor(t *testing.T) {
	// 2x2 avg pool with pad 1 on a 2x2 image: the corner window covers
	// exactly one valid element.
	in := []float32{4, 8, 12, 16}
	out, shape, err := AvgPool(in, tensor.Shape{C: 1, H: 2, W: 2}, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if shape != (tensor.Shape{C: 1, H: 2, W: 2}) {
		t.Fatalf("shape = %v", shape)
	}
	want := []float32{4, 8, 12, 16} // each window sees one element
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %f, want %f", i, out[i], want[i])
		}
	}
}

func TestGlobalAvgPool(t *testing.T) {
	in := []float32{1, 2, 3, 4, 10, 20, 30, 40}
	out, shape, err := GlobalAvgPool(in, tensor.Shape{C: 2, H: 2, W: 2})
	if err != nil {
		t.Fatal(err)
	}
	if shape != (tensor.Shape{C: 2, H: 1, W: 1}) {
		t.Fatalf("shape = %v", shape)
	}
	if out[0] != 2.5 || out[1] != 25 {
		t.Errorf("out = %v", out)
	}
}

func TestFC(t *testing.T) {
	in := []float32{1, 2, 3}
	w := []float32{
		1, 0, 0,
		0, 1, 1,
	}
	out, shape, err := FC(in, w, 2)
	if err != nil {
		t.Fatal(err)
	}
	if shape != (tensor.Shape{C: 2, H: 1, W: 1}) {
		t.Fatalf("shape = %v", shape)
	}
	if out[0] != 1 || out[1] != 5 {
		t.Errorf("out = %v", out)
	}
	if _, _, err := FC(in, w, 5); err == nil {
		t.Error("bad weight length accepted")
	}
	if _, _, err := FC(nil, nil, 1); err == nil {
		t.Error("empty input accepted")
	}
}

func TestAddAndConcat(t *testing.T) {
	sum, err := Add([]float32{1, 2}, []float32{10, 20}, []float32{100, 200})
	if err != nil {
		t.Fatal(err)
	}
	if sum[0] != 111 || sum[1] != 222 {
		t.Errorf("sum = %v", sum)
	}
	if _, err := Add([]float32{1}); err == nil {
		t.Error("single-operand add accepted")
	}
	if _, err := Add([]float32{1}, []float32{1, 2}); err == nil {
		t.Error("mismatched add accepted")
	}
	cat := Concat([]float32{1, 2}, []float32{3})
	if len(cat) != 3 || cat[2] != 3 {
		t.Errorf("concat = %v", cat)
	}
}

func TestRandomTensorDeterministic(t *testing.T) {
	a := RandomTensor(42, 100)
	b := RandomTensor(42, 100)
	c := RandomTensor(43, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed differs")
		}
		if a[i] < -1 || a[i] >= 1 {
			t.Fatalf("value %f out of range", a[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical tensors")
	}
}

func TestQuickConvLinearity(t *testing.T) {
	// Property: convolution is linear — conv(a+b) = conv(a)+conv(b).
	shape := tensor.Shape{C: 2, H: 5, W: 5}
	w := RandomTensor(7, 3*2*3*3)
	f := func(seedA, seedB int64) bool {
		a := RandomTensor(seedA, shape.Elems())
		b := RandomTensor(seedB, shape.Elems())
		ab, err := Add(a, b)
		if err != nil {
			return false
		}
		ca, _, err := Conv2D(a, shape, w, 3, 3, 1, 1)
		if err != nil {
			return false
		}
		cb, _, _ := Conv2D(b, shape, w, 3, 3, 1, 1)
		cab, _, _ := Conv2D(ab, shape, w, 3, 3, 1, 1)
		sum, _ := Add(ca, cb)
		for i := range cab {
			if !almostEqual(cab[i], sum[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickMaxPoolBounds(t *testing.T) {
	// Property: every pooled value appears in the input.
	shape := tensor.Shape{C: 1, H: 8, W: 8}
	f := func(seed int64) bool {
		in := RandomTensor(seed, shape.Elems())
		out, _, err := MaxPool(in, shape, 3, 2, 1)
		if err != nil {
			return false
		}
		present := make(map[float32]bool, len(in))
		for _, v := range in {
			present[v] = true
		}
		for _, v := range out {
			if !present[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGroupedConv2DDepthwiseIdentity(t *testing.T) {
	// Depthwise 1x1 conv with unit weights is the identity per channel.
	shape := tensor.Shape{C: 4, H: 3, W: 3}
	in := RandomTensor(11, shape.Elems())
	w := []float32{1, 1, 1, 1} // one 1x1 weight per channel
	out, outShape, err := GroupedConv2D(in, shape, w, 4, 1, 1, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if outShape != shape {
		t.Fatalf("shape = %v", outShape)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("out[%d] = %f, want %f", i, out[i], in[i])
		}
	}
}

func TestGroupedConv2DMatchesBlockDiagonalDense(t *testing.T) {
	// A 2-group conv equals a dense conv whose cross-group weights are
	// zero.
	shape := tensor.Shape{C: 4, H: 5, W: 5}
	in := RandomTensor(21, shape.Elems())
	gw := RandomTensor(22, 4*2*9) // [4 out][2 in/group][3x3]
	got, _, err := GroupedConv2D(in, shape, gw, 4, 3, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Expand to dense block-diagonal weights [4][4][3][3].
	dense := make([]float32, 4*4*9)
	for oc := 0; oc < 4; oc++ {
		gBase := (oc / 2) * 2 // first input channel of oc's group
		for ic := 0; ic < 2; ic++ {
			for kk := 0; kk < 9; kk++ {
				dense[(oc*4+gBase+ic)*9+kk] = gw[(oc*2+ic)*9+kk]
			}
		}
	}
	want, _, err := Conv2D(in, shape, dense, 4, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !almostEqual(got[i], want[i]) {
			t.Fatalf("elem %d: grouped %f vs dense %f", i, got[i], want[i])
		}
	}
}

func TestGroupedConv2DErrors(t *testing.T) {
	shape := tensor.Shape{C: 4, H: 3, W: 3}
	in := make([]float32, shape.Elems())
	if _, _, err := GroupedConv2D(in, shape, make([]float32, 8), 8, 1, 1, 0, 3); err == nil {
		t.Error("indivisible groups accepted")
	}
	if _, _, err := GroupedConv2D(in, shape, make([]float32, 3), 4, 1, 1, 0, 4); err == nil {
		t.Error("bad weight length accepted")
	}
}

func TestChannelShuffle(t *testing.T) {
	// C=6, groups=2: channels [0 1 2 | 3 4 5] transpose to
	// [0 3 1 4 2 5].
	shape := tensor.Shape{C: 6, H: 1, W: 2}
	in := []float32{0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5}
	out, err := ChannelShuffle(in, shape, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []float32{0, 3, 1, 4, 2, 5}
	for c, w := range wantOrder {
		if out[c*2] != w || out[c*2+1] != w {
			t.Errorf("out channel %d = %v, want %v", c, out[c*2], w)
		}
	}
	// Shuffle by g then by C/g is the identity.
	back, err := ChannelShuffle(out, shape, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if back[i] != in[i] {
			t.Fatalf("double shuffle not identity at %d", i)
		}
	}
	if _, err := ChannelShuffle(in[:5], shape, 2); err == nil {
		t.Error("short input accepted")
	}
	if _, err := ChannelShuffle(in, shape, 4); err == nil {
		t.Error("indivisible groups accepted")
	}
}
