package tensor

import (
	"testing"
	"testing/quick"
)

func TestDataTypeBytes(t *testing.T) {
	cases := []struct {
		d    DataType
		want int
	}{
		{Fixed8, 1},
		{Fixed16, 2},
		{Float32, 4},
	}
	for _, c := range cases {
		if got := c.d.Bytes(); got != c.want {
			t.Errorf("%v.Bytes() = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestDataTypeString(t *testing.T) {
	if Fixed16.String() != "fixed16" {
		t.Errorf("Fixed16.String() = %q", Fixed16.String())
	}
	if Fixed8.String() != "fixed8" {
		t.Errorf("Fixed8.String() = %q", Fixed8.String())
	}
	if Float32.String() != "float32" {
		t.Errorf("Float32.String() = %q", Float32.String())
	}
	if DataType(99).String() != "DataType(99)" {
		t.Errorf("unknown DataType String = %q", DataType(99).String())
	}
}

func TestDataTypeBytesUnknownIsZero(t *testing.T) {
	if got := DataType(42).Bytes(); got != 0 {
		t.Fatalf("Bytes on unknown DataType = %d, want 0", got)
	}
	if DataType(42).Valid() {
		t.Error("unknown DataType reads as valid")
	}
	for _, d := range []DataType{Fixed8, Fixed16, Float32} {
		if !d.Valid() {
			t.Errorf("%v reads as invalid", d)
		}
		if d.Bytes() <= 0 {
			t.Errorf("%v has non-positive size", d)
		}
	}
}

func TestParseDataType(t *testing.T) {
	cases := []struct {
		in   string
		want DataType
		ok   bool
	}{
		{"fixed8", Fixed8, true},
		{"int8", Fixed8, true},
		{"8", Fixed8, true},
		{"fixed16", Fixed16, true},
		{"int16", Fixed16, true},
		{"16", Fixed16, true},
		{"float32", Float32, true},
		{"fp32", Float32, true},
		{"32", Float32, true},
		{"bf16", Fixed16, false},
		{"", Fixed16, false},
	}
	for _, c := range cases {
		got, err := ParseDataType(c.in)
		if c.ok && err != nil {
			t.Errorf("ParseDataType(%q) error: %v", c.in, err)
			continue
		}
		if !c.ok {
			if err == nil {
				t.Errorf("ParseDataType(%q) expected error", c.in)
			}
			continue
		}
		if got != c.want {
			t.Errorf("ParseDataType(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestShapeElemsAndBytes(t *testing.T) {
	s := Shape{C: 64, H: 56, W: 56}
	if got := s.Elems(); got != 64*56*56 {
		t.Errorf("Elems = %d", got)
	}
	if got := s.Bytes(Fixed16); got != int64(64*56*56*2) {
		t.Errorf("Bytes(Fixed16) = %d", got)
	}
	if got := s.Bytes(Float32); got != int64(64*56*56*4) {
		t.Errorf("Bytes(Float32) = %d", got)
	}
}

func TestShapeValid(t *testing.T) {
	if !(Shape{1, 1, 1}).Valid() {
		t.Error("1x1x1 should be valid")
	}
	for _, s := range []Shape{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 2, 2}} {
		if s.Valid() {
			t.Errorf("%v should be invalid", s)
		}
	}
}

func TestShapeString(t *testing.T) {
	if got := (Shape{3, 224, 224}).String(); got != "3x224x224" {
		t.Errorf("String = %q", got)
	}
}

func TestConvOut(t *testing.T) {
	cases := []struct {
		in, k, stride, pad, want int
	}{
		{224, 7, 2, 3, 112}, // ResNet stem
		{112, 3, 2, 1, 56},  // ResNet max pool
		{56, 3, 1, 1, 56},   // same-padded 3x3
		{56, 1, 1, 0, 56},   // pointwise
		{56, 1, 2, 0, 28},   // strided projection
		{7, 7, 1, 0, 1},     // global-style pool
		{5, 7, 1, 0, 0},     // window larger than input, no pad
	}
	for _, c := range cases {
		if got := ConvOut(c.in, c.k, c.stride, c.pad); got != c.want {
			t.Errorf("ConvOut(%d,%d,%d,%d) = %d, want %d", c.in, c.k, c.stride, c.pad, got, c.want)
		}
	}
}

func TestConvOutNonPositiveStrideIsZero(t *testing.T) {
	if got := ConvOut(10, 3, 0, 1); got != 0 {
		t.Fatalf("ConvOut with stride 0 = %d, want 0", got)
	}
	if got := ConvOut(10, 3, -2, 1); got != 0 {
		t.Fatalf("ConvOut with negative stride = %d, want 0", got)
	}
}

func TestConvOutIdentityProperty(t *testing.T) {
	// Property: a same-padded stride-1 odd window preserves extent.
	f := func(in uint8, half uint8) bool {
		n := int(in%200) + 1
		k := 2*int(half%4) + 1
		return ConvOut(n, k, 1, k/2) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConvOutMonotoneInInput(t *testing.T) {
	// Property: output extent is non-decreasing in input extent.
	f := func(in uint8, k uint8, s uint8, p uint8) bool {
		n := int(in%128) + 8
		kk := int(k%5) + 1
		ss := int(s%3) + 1
		pp := int(p % 3)
		return ConvOut(n+1, kk, ss, pp) >= ConvOut(n, kk, ss, pp)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHumanBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0 B"},
		{512, "512 B"},
		{2048, "2.00 KiB"},
		{3 << 20, "3.00 MiB"},
		{int64(5) << 30, "5.00 GiB"},
	}
	for _, c := range cases {
		if got := HumanBytes(c.in); got != c.want {
			t.Errorf("HumanBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDataTypeJSONRoundTrip(t *testing.T) {
	for _, d := range []DataType{Fixed8, Fixed16, Float32} {
		b, err := d.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var back DataType
		if err := back.UnmarshalJSON(b); err != nil {
			t.Fatal(err)
		}
		if back != d {
			t.Errorf("round trip %v → %v", d, back)
		}
	}
}

func TestDataTypeUnmarshalErrors(t *testing.T) {
	var d DataType
	if err := d.UnmarshalJSON([]byte(`16`)); err == nil {
		t.Error("numeric accepted")
	}
	if err := d.UnmarshalJSON([]byte(`"bf16"`)); err == nil {
		t.Error("unknown type accepted")
	}
	if err := d.UnmarshalJSON([]byte(`"`)); err == nil {
		t.Error("malformed string accepted")
	}
}
