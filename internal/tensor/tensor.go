// Package tensor provides the shape and data-type vocabulary shared by
// the network IR, the tiling engine, and the accelerator models.
//
// The simulator is architecture-accurate rather than value-accurate in
// its default mode, so the central objects here are shapes and byte
// counts; actual element storage lives in package tensorops and is used
// only by the functional-verification mode.
package tensor

import "fmt"

// DataType is the numeric representation of feature-map and weight
// elements. The paper's FPGA prototype uses 16-bit fixed point; 8- and
// 32-bit variants are provided for the precision-sensitivity study
// (experiment E12).
type DataType int

const (
	// Fixed8 is 8-bit fixed point (1 byte/element).
	Fixed8 DataType = iota
	// Fixed16 is 16-bit fixed point (2 bytes/element), the paper's
	// default precision.
	Fixed16
	// Float32 is IEEE-754 single precision (4 bytes/element).
	Float32
)

// Bytes returns the storage size of one element, or 0 for an unknown
// data type (which Valid reports and core.Config.Validate rejects
// before any arithmetic can divide by it).
func (d DataType) Bytes() int {
	switch d {
	case Fixed8:
		return 1
	case Fixed16:
		return 2
	case Float32:
		return 4
	}
	return 0
}

// Valid reports whether d is one of the defined data types.
func (d DataType) Valid() bool {
	return d == Fixed8 || d == Fixed16 || d == Float32
}

// String implements fmt.Stringer.
func (d DataType) String() string {
	switch d {
	case Fixed8:
		return "fixed8"
	case Fixed16:
		return "fixed16"
	case Float32:
		return "float32"
	}
	return fmt.Sprintf("DataType(%d)", int(d))
}

// MarshalJSON encodes the data type as its canonical string, keeping
// configuration files human-editable.
func (d DataType) MarshalJSON() ([]byte, error) {
	return []byte(`"` + d.String() + `"`), nil
}

// UnmarshalJSON accepts any spelling ParseDataType does.
func (d *DataType) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("tensor: data type must be a JSON string, got %s", b)
	}
	parsed, err := ParseDataType(string(b[1 : len(b)-1]))
	if err != nil {
		return err
	}
	*d = parsed
	return nil
}

// ParseDataType converts a configuration string ("fixed8", "fixed16",
// "float32") to a DataType.
func ParseDataType(s string) (DataType, error) {
	switch s {
	case "fixed8", "int8", "8":
		return Fixed8, nil
	case "fixed16", "int16", "16":
		return Fixed16, nil
	case "float32", "fp32", "32":
		return Float32, nil
	}
	return Fixed16, fmt.Errorf("tensor: unknown data type %q", s)
}

// Shape describes one feature map in C×H×W layout. The batch dimension
// is carried separately by the schedulers because batching replicates
// traffic without changing per-image buffer management.
type Shape struct {
	C int // channels
	H int // rows
	W int // columns
}

// Elems returns C*H*W.
func (s Shape) Elems() int { return s.C * s.H * s.W }

// Bytes returns the storage footprint of the feature map at dtype d.
func (s Shape) Bytes(d DataType) int64 { return int64(s.Elems()) * int64(d.Bytes()) }

// Valid reports whether every dimension is positive.
func (s Shape) Valid() bool { return s.C > 0 && s.H > 0 && s.W > 0 }

// String implements fmt.Stringer.
func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.C, s.H, s.W) }

// ConvOut computes the spatial output size of a convolution or pooling
// window of size k with the given stride and symmetric padding applied
// to an input extent in. It mirrors the floor-mode arithmetic used by
// standard frameworks. A non-positive stride yields 0 — an impossible
// output extent the layer validators reject with a proper error.
func ConvOut(in, k, stride, pad int) int {
	if stride <= 0 {
		return 0
	}
	out := (in+2*pad-k)/stride + 1
	if out < 0 {
		return 0
	}
	return out
}

// HumanBytes renders a byte count with a binary-prefix unit, used by
// the reporting helpers ("1.50 MiB").
func HumanBytes(b int64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.2f %ciB", float64(b)/float64(div), "KMGTPE"[exp])
}
