// Package tiling plans how a layer executes under finite buffer
// capacity and derives the off-chip traffic that plan implies. The
// policy models the tiled accelerators of the paper's comparison class
// (Zhang et al. FPGA'15 family): output feature maps are produced in
// row stripes, channels are grouped when a stripe of all channels does
// not fit, and the loop order is chosen to minimize total traffic
// (weight-stationary across row tiles when output channels are
// grouped, input-stationary when weights fit on chip).
//
// The same planner serves both designs: the baseline calls it with its
// static ping-pong budgets, Shortcut Mining calls it with whatever
// capacity the bank pool has left after retention.
package tiling

import (
	"fmt"

	"shortcutmining/internal/nn"
	"shortcutmining/internal/tensor"
)

// Budget is the on-chip capacity available to one layer invocation.
type Budget struct {
	IBuf int64 // input feature-map buffer bytes
	OBuf int64 // output feature-map buffer bytes
	WBuf int64 // weight buffer bytes
}

// Plan describes the chosen tiling and the DRAM traffic it implies
// when the layer's input is streamed from DRAM (the baseline case;
// schedulers that hold the input on chip discount IFMReadBytes
// themselves).
type Plan struct {
	Layer *nn.Layer

	RowTiles  int // output row stripes
	TileRows  int // output rows per stripe (last stripe may be short)
	OutGroups int // output-channel groups (input re-streamed per group)
	InGroups  int // input-channel groups within a stripe pass

	IFMReadBytes    int64 // input streaming incl. halo re-reads and group passes
	WeightReadBytes int64
	OFMWriteBytes   int64
	// WeightStationary reports the chosen loop order: true when
	// weights stay resident per output group while row stripes stream.
	WeightStationary bool
}

// TotalBytes is the plan's aggregate DRAM traffic.
func (p Plan) TotalBytes() int64 {
	return p.IFMReadBytes + p.WeightReadBytes + p.OFMWriteBytes
}

func ceilDiv(a, b int64) int64 {
	return (a + b - 1) / b
}

// stripeReadBytes sums the input bytes needed to produce all output
// row stripes of height tileRows, accounting for the halo rows
// adjacent stripes re-read. One full pass over all input channels. The
// DMA is strided: rows the window never touches (stride > kernel, e.g.
// 1x1/s2 projection shortcuts) are not fetched.
func stripeReadBytes(l *nn.Layer, d tensor.DataType, tileRows int) int64 {
	in := l.In[0]
	e := int64(d.Bytes())
	rowBytes := int64(in.W) * int64(in.C) * e
	var totalRows int64
	for r0 := 0; r0 < l.Out.H; r0 += tileRows {
		r1 := r0 + tileRows
		if r1 > l.Out.H {
			r1 = l.Out.H
		}
		covered := -1 << 30 // highest input row already counted, +1
		for r := r0; r < r1; r++ {
			lo := r*l.Stride - l.Pad
			hi := lo + l.K
			if lo < covered {
				lo = covered
			}
			if lo < 0 {
				lo = 0
			}
			if hi > in.H {
				hi = in.H
			}
			if hi > lo {
				totalRows += int64(hi - lo)
			}
			if hi > covered {
				covered = hi
			}
		}
	}
	return totalRows * rowBytes
}

// usedStripeRows is the number of distinct input rows one interior
// stripe of tileRows output rows touches: k + (t-1)·s when windows
// overlap or abut, t·k when the stride skips rows, clamped to the
// input height.
func usedStripeRows(l *nn.Layer, tileRows int) int {
	var rows int
	if l.Stride >= l.K {
		rows = tileRows * l.K
	} else {
		rows = l.K + (tileRows-1)*l.Stride
	}
	if rows > l.In[0].H {
		rows = l.In[0].H
	}
	return rows
}

// inStripeBytes is the buffer footprint of the input stripe that
// produces tileRows output rows (full width, inChans channels).
func inStripeBytes(l *nn.Layer, d tensor.DataType, tileRows, inChans int) int64 {
	return int64(usedStripeRows(l, tileRows)) * int64(l.In[0].W) * int64(inChans) * int64(d.Bytes())
}

func outStripeBytes(l *nn.Layer, d tensor.DataType, tileRows, outChans int) int64 {
	return int64(tileRows) * int64(l.Out.W) * int64(outChans) * int64(d.Bytes())
}

// ForLayer computes the execution plan of one layer under the budget.
// It returns an error when even the minimal tile (one output row, one
// channel each way) cannot be buffered — a configuration error, not a
// runtime condition.
func ForLayer(l *nn.Layer, d tensor.DataType, bud Budget) (Plan, error) {
	switch l.Kind {
	case nn.OpInput:
		return Plan{Layer: l, RowTiles: 1, TileRows: l.Out.H, OutGroups: 1, InGroups: 1}, nil
	case nn.OpConv:
		return planWindowed(l, d, bud, l.WeightBytes(d))
	case nn.OpPool:
		return planWindowed(l, d, bud, 0)
	case nn.OpGlobalPool:
		return Plan{
			Layer: l, RowTiles: 1, TileRows: 1, OutGroups: 1, InGroups: 1,
			IFMReadBytes:  l.In[0].Bytes(d),
			OFMWriteBytes: l.Out.Bytes(d),
		}, nil
	case nn.OpFC:
		return planFC(l, d, bud)
	case nn.OpEltwiseAdd:
		var reads int64
		for _, s := range l.In {
			reads += s.Bytes(d)
		}
		return Plan{
			Layer: l, RowTiles: 1, TileRows: l.Out.H, OutGroups: 1, InGroups: 1,
			IFMReadBytes:  reads,
			OFMWriteBytes: l.Out.Bytes(d),
		}, nil
	case nn.OpConcat:
		// Concatenation is performed by address layout: producers
		// write adjacent regions, consumers read the union. No traffic
		// of its own in either design.
		return Plan{Layer: l, RowTiles: 1, TileRows: l.Out.H, OutGroups: 1, InGroups: 1}, nil
	case nn.OpShuffle:
		// Channel shuffle is a permuting copy through the datapath:
		// one read, one write of the feature map.
		return Plan{
			Layer: l, RowTiles: 1, TileRows: l.Out.H, OutGroups: 1, InGroups: 1,
			IFMReadBytes:  l.In[0].Bytes(d),
			OFMWriteBytes: l.Out.Bytes(d),
		}, nil
	}
	return Plan{}, fmt.Errorf("tiling: unsupported op %v", l.Kind)
}

// planWindowed handles conv and pool layers (pool is a conv with zero
// weights for traffic purposes).
func planWindowed(l *nn.Layer, d tensor.DataType, bud Budget, weightBytes int64) (Plan, error) {
	in := l.In[0]
	e := int64(d.Bytes())

	// Feasibility: one output row of one channel, K input rows of one
	// channel.
	if outStripeBytes(l, d, 1, 1) > bud.OBuf {
		return Plan{}, fmt.Errorf("tiling: %s: OBuf %d cannot hold one output row (%d bytes)",
			l.Name, bud.OBuf, outStripeBytes(l, d, 1, 1))
	}
	if inStripeBytes(l, d, 1, 1) > bud.IBuf {
		return Plan{}, fmt.Errorf("tiling: %s: IBuf %d cannot hold a minimal input stripe (%d bytes)",
			l.Name, bud.IBuf, inStripeBytes(l, d, 1, 1))
	}
	outC := l.Out.C
	perGroupWeights := func(groups int) int64 {
		if weightBytes == 0 {
			return 0
		}
		return int64(ceilDiv(int64(outC), int64(groups))) * int64(in.C/l.NumGroups()) * int64(l.K*l.K) * e
	}

	// Largest stripe that fits with full channels both ways.
	tileRows := 0
	for th := l.Out.H; th >= 1; th-- {
		if inStripeBytes(l, d, th, in.C) <= bud.IBuf && outStripeBytes(l, d, th, outC) <= bud.OBuf {
			tileRows = th
			break
		}
	}

	outGroups, inGroups := 1, 1
	if tileRows == 0 {
		// Channel grouping at one output row per stripe.
		tileRows = 1
		outChansFit := bud.OBuf / (int64(l.Out.W) * e)
		inChansFit := bud.IBuf / (inStripeBytes(l, d, 1, 1))
		if outChansFit < 1 || inChansFit < 1 {
			return Plan{}, fmt.Errorf("tiling: %s: budget too small for channel grouping", l.Name)
		}
		outGroups = int(ceilDiv(int64(outC), outChansFit))
		inGroups = int(ceilDiv(int64(in.C), inChansFit))
	}

	rowTiles := (l.Out.H + tileRows - 1) / tileRows
	stripeSum := stripeReadBytes(l, d, tileRows)
	ofm := l.Out.Bytes(d)

	// A grouped convolution's output-channel groups touch disjoint
	// input-channel slices (when the tiling groups align with the
	// convolution groups), so multiple passes do not multiply the
	// input traffic the way they do for dense layers.
	passBytes := func(outGroups int) int64 {
		share := outGroups
		if g := l.NumGroups(); share > g {
			share = g
		}
		return stripeSum * int64(outGroups) / int64(share)
	}

	p := Plan{
		Layer: l, RowTiles: rowTiles, TileRows: tileRows,
		OutGroups: outGroups, InGroups: inGroups,
		OFMWriteBytes: ofm,
	}
	if weightBytes == 0 {
		p.IFMReadBytes = passBytes(outGroups)
		return p, nil
	}

	// Weight-stationary (group-outer): weights of one output group
	// stay resident while every row stripe streams; the group count
	// may need to grow so a group's weights fit the weight buffer.
	wsGroups := outGroups
	for perGroupWeights(wsGroups) > bud.WBuf && wsGroups < outC {
		wsGroups++
	}
	if perGroupWeights(wsGroups) > bud.WBuf {
		return Plan{}, fmt.Errorf("tiling: %s: WBuf %d cannot hold one output channel's weights",
			l.Name, bud.WBuf)
	}
	wsIFM := passBytes(wsGroups)
	wsTotal := wsIFM + weightBytes + ofm

	// Input-stationary (row-outer): each row stripe streams once and
	// all output groups' weights stream against it.
	isIFM := passBytes(outGroups)
	isWeights := weightBytes * int64(rowTiles)
	isTotal := isIFM + isWeights + ofm
	// Row-outer still needs one group's weights buffered at a time.
	isFeasible := perGroupWeights(outGroups) <= bud.WBuf

	if !isFeasible || wsTotal <= isTotal {
		p.OutGroups = wsGroups
		p.IFMReadBytes = wsIFM
		p.WeightReadBytes = weightBytes
		p.WeightStationary = true
		return p, nil
	}
	p.IFMReadBytes = isIFM
	p.WeightReadBytes = isWeights
	return p, nil
}

func planFC(l *nn.Layer, d tensor.DataType, bud Budget) (Plan, error) {
	inBytes := l.In[0].Bytes(d)
	w := l.WeightBytes(d)
	p := Plan{
		Layer: l, RowTiles: 1, TileRows: 1, OutGroups: 1, InGroups: 1,
		OFMWriteBytes: l.Out.Bytes(d),
	}
	if inBytes <= bud.IBuf {
		// Input resident, weights streamed once: the standard regime —
		// FC weights dwarf every buffer.
		p.IFMReadBytes = inBytes
		p.WeightReadBytes = w
		p.WeightStationary = false
		return p, nil
	}
	// Input itself does not fit: stream the input once per output
	// group sized by what IBuf holds. (Never hit by the zoo; kept for
	// robustness.)
	groups := ceilDiv(inBytes, bud.IBuf)
	p.OutGroups = int(groups)
	p.IFMReadBytes = inBytes
	p.WeightReadBytes = w
	return p, nil
}
