package tiling

import (
	"shortcutmining/internal/nn"
	"shortcutmining/internal/tensor"
)

// Tile is one unit of the double-buffered execution pipeline: the
// input stripe and weights it loads, the output rows it produces and
// stores, and its share of the layer's output work (used by the
// detailed timing model to apportion compute cycles).
type Tile struct {
	Rows        int   // output rows this tile produces
	LoadBytes   int64 // input-stripe bytes entering on the fmap channel
	WeightBytes int64 // weight bytes entering on the weight channel
	StoreBytes  int64 // output bytes leaving on the fmap channel
}

// Tiles expands the plan into its per-tile transfer sequence, in
// execution order. The sum of tile fields equals the plan's aggregate
// traffic (weights may differ by integer-division crumbs of at most
// one byte per tile), so schedulers can scale the per-tile numbers to
// whatever portion of the plan actually touches DRAM.
func (p Plan) Tiles(d tensor.DataType) []Tile {
	l := p.Layer
	if l == nil {
		return nil
	}
	switch l.Kind {
	case nn.OpConv, nn.OpPool:
		return p.windowedTiles(d)
	case nn.OpInput, nn.OpConcat:
		return nil
	default:
		// Single-shot layers: one tile carrying everything.
		return []Tile{{
			Rows:        l.Out.H,
			LoadBytes:   p.IFMReadBytes,
			WeightBytes: p.WeightReadBytes,
			StoreBytes:  p.OFMWriteBytes,
		}}
	}
}

func (p Plan) windowedTiles(d tensor.DataType) []Tile {
	l := p.Layer
	in := l.In[0]
	e := int64(d.Bytes())
	rowBytes := int64(in.W) * int64(in.C) * e

	groups := p.OutGroups
	if groups < 1 {
		groups = 1
	}
	// Exact per-group channel split (first outC%groups groups carry
	// one extra channel) keeps Σ StoreBytes == OFMWriteBytes.
	groupChans := func(g int) int64 {
		c := int64(l.Out.C / groups)
		if g < l.Out.C%groups {
			c++
		}
		return c
	}
	var tiles []Tile
	for g := 0; g < groups; g++ {
		for r0 := 0; r0 < l.Out.H; r0 += p.TileRows {
			r1 := r0 + p.TileRows
			if r1 > l.Out.H {
				r1 = l.Out.H
			}
			t := Tile{Rows: r1 - r0}
			// Input rows this stripe touches (strided DMA semantics,
			// matching stripeReadBytes), divided by nothing: each
			// group pass re-reads its stripe.
			covered := -1 << 30
			var rows int64
			for r := r0; r < r1; r++ {
				lo := r*l.Stride - l.Pad
				hi := lo + l.K
				if lo < covered {
					lo = covered
				}
				if lo < 0 {
					lo = 0
				}
				if hi > in.H {
					hi = in.H
				}
				if hi > lo {
					rows += int64(hi - lo)
				}
				if hi > covered {
					covered = hi
				}
			}
			t.LoadBytes = rows * rowBytes // raw; rescaled to the plan total below
			t.StoreBytes = int64(t.Rows) * int64(l.Out.W) * groupChans(g) * e
			tiles = append(tiles, t)
		}
	}
	// Rescale raw stripe loads to the plan's aggregate IFM traffic
	// (grouped convolutions read only their input slice per pass), and
	// give the last tile the rounding remainder so the sum is exact.
	var rawTotal int64
	for _, t := range tiles {
		rawTotal += t.LoadBytes
	}
	if rawTotal > 0 && rawTotal != p.IFMReadBytes {
		var assigned int64
		for i := range tiles {
			if i == len(tiles)-1 {
				tiles[i].LoadBytes = p.IFMReadBytes - assigned
				break
			}
			tiles[i].LoadBytes = tiles[i].LoadBytes * p.IFMReadBytes / rawTotal
			assigned += tiles[i].LoadBytes
		}
	}
	// Distribute weights: stationary weights arrive once per group (on
	// its first tile); otherwise they re-arrive on every row tile.
	if p.WeightReadBytes > 0 {
		if p.WeightStationary {
			perGroup := p.WeightReadBytes / int64(groups)
			tilesPerGroup := len(tiles) / groups
			for g := 0; g < groups; g++ {
				tiles[g*tilesPerGroup].WeightBytes = perGroup
			}
		} else {
			per := p.WeightReadBytes / int64(len(tiles))
			for i := range tiles {
				tiles[i].WeightBytes = per
			}
		}
	}
	return tiles
}
