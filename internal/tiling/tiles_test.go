package tiling

import (
	"testing"
	"testing/quick"

	"shortcutmining/internal/nn"
	"shortcutmining/internal/tensor"
)

func mustPlan(t *testing.T, l *nn.Layer, bud Budget) Plan {
	t.Helper()
	p, err := ForLayer(l, tensor.Fixed16, bud)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTilesConserveAggregateTraffic(t *testing.T) {
	n := nn.MustResNet(34)
	buds := []Budget{
		big(),
		{IBuf: 32 << 10, OBuf: 32 << 10, WBuf: 64 << 10},
		{IBuf: 4 << 10, OBuf: 4 << 10, WBuf: 16 << 10},
	}
	for _, l := range n.Layers {
		for _, bud := range buds {
			p, err := ForLayer(l, tensor.Fixed16, bud)
			if err != nil {
				continue // infeasible tiny budget for this layer
			}
			tiles := p.Tiles(tensor.Fixed16)
			var load, weights, store int64
			var rows int
			for _, tile := range tiles {
				load += tile.LoadBytes
				weights += tile.WeightBytes
				store += tile.StoreBytes
				rows += tile.Rows
			}
			if l.Kind == nn.OpInput || l.Kind == nn.OpConcat {
				if tiles != nil {
					t.Errorf("%s: layout op produced tiles", l.Name)
				}
				continue
			}
			if load != p.IFMReadBytes {
				t.Errorf("%s: Σload = %d, plan %d", l.Name, load, p.IFMReadBytes)
			}
			if store != p.OFMWriteBytes {
				t.Errorf("%s: Σstore = %d, plan %d", l.Name, store, p.OFMWriteBytes)
			}
			// Weight crumbs: at most one byte per tile.
			if diff := p.WeightReadBytes - weights; diff < 0 || diff > int64(len(tiles)) {
				t.Errorf("%s: Σweights = %d, plan %d", l.Name, weights, p.WeightReadBytes)
			}
			if l.Kind == nn.OpConv || l.Kind == nn.OpPool {
				if rows != l.Out.H*p.OutGroups {
					t.Errorf("%s: Σrows = %d, want %d", l.Name, rows, l.Out.H*p.OutGroups)
				}
			}
		}
	}
}

func TestTilesWeightPlacement(t *testing.T) {
	b := nn.NewBuilder("t", tensor.Shape{C: 64, H: 16, W: 16})
	b.Conv("c", b.InputName(), 64, 3, 1, 1)
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	l := n.Layer("c")
	// Weight-stationary with grouping: weights land on each group's
	// first tile only.
	p := mustPlan(t, l, Budget{IBuf: 8 << 10, OBuf: 2 << 10, WBuf: 1 << 20})
	if !p.WeightStationary || p.OutGroups < 2 {
		t.Skipf("plan not in the grouped weight-stationary regime: %+v", p)
	}
	tiles := p.Tiles(tensor.Fixed16)
	perGroup := len(tiles) / p.OutGroups
	for i, tile := range tiles {
		first := i%perGroup == 0
		if first && tile.WeightBytes == 0 {
			t.Errorf("tile %d: group-leading tile has no weights", i)
		}
		if !first && tile.WeightBytes != 0 {
			t.Errorf("tile %d: non-leading tile has weights", i)
		}
	}
}

func TestTilesSingleShotOps(t *testing.T) {
	b := nn.NewBuilder("t", tensor.Shape{C: 8, H: 8, W: 8})
	x := b.Conv("c", b.InputName(), 8, 3, 1, 1)
	g := b.GlobalPool("g", x)
	b.FC("fc", g, 10)
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"g", "fc"} {
		p := mustPlan(t, n.Layer(name), big())
		tiles := p.Tiles(tensor.Fixed16)
		if len(tiles) != 1 {
			t.Fatalf("%s: %d tiles, want 1", name, len(tiles))
		}
		if tiles[0].LoadBytes != p.IFMReadBytes || tiles[0].StoreBytes != p.OFMWriteBytes {
			t.Errorf("%s: tile %+v does not match plan", name, tiles[0])
		}
	}
}

func TestTilesNilPlan(t *testing.T) {
	var p Plan
	if p.Tiles(tensor.Fixed16) != nil {
		t.Error("zero plan produced tiles")
	}
}

func TestQuickTilesConservation(t *testing.T) {
	n := nn.MustResNet(18)
	var convs []*nn.Layer
	for _, l := range n.Layers {
		if l.Kind == nn.OpConv {
			convs = append(convs, l)
		}
	}
	f := func(li, budKB uint8) bool {
		l := convs[int(li)%len(convs)]
		base := int64(int(budKB%96)+4) << 10
		p, err := ForLayer(l, tensor.Fixed16, Budget{IBuf: base, OBuf: base, WBuf: base * 4})
		if err != nil {
			return true
		}
		var load, store int64
		for _, tile := range p.Tiles(tensor.Fixed16) {
			load += tile.LoadBytes
			store += tile.StoreBytes
			if tile.Rows <= 0 || tile.LoadBytes < 0 || tile.StoreBytes < 0 {
				return false
			}
		}
		return load == p.IFMReadBytes && store == p.OFMWriteBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
