package tiling

import (
	"strings"
	"testing"
	"testing/quick"

	"shortcutmining/internal/nn"
	"shortcutmining/internal/tensor"
)

// convNet builds a one-conv network: in 8x16x16, k3 s1 p1 → out 8x16x16.
func convNet(t *testing.T) *nn.Network {
	t.Helper()
	b := nn.NewBuilder("t", tensor.Shape{C: 8, H: 16, W: 16})
	b.Conv("c", b.InputName(), 8, 3, 1, 1)
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func big() Budget { return Budget{IBuf: 1 << 20, OBuf: 1 << 20, WBuf: 1 << 20} }

func TestConvFitsEntirely(t *testing.T) {
	n := convNet(t)
	p, err := ForLayer(n.Layer("c"), tensor.Fixed16, big())
	if err != nil {
		t.Fatal(err)
	}
	if p.RowTiles != 1 || p.TileRows != 16 || p.OutGroups != 1 || p.InGroups != 1 {
		t.Errorf("plan = %+v", p)
	}
	if p.IFMReadBytes != 4096 {
		t.Errorf("ifm = %d, want 4096", p.IFMReadBytes)
	}
	if p.WeightReadBytes != 8*8*9*2 {
		t.Errorf("weights = %d, want 1152", p.WeightReadBytes)
	}
	if p.OFMWriteBytes != 4096 {
		t.Errorf("ofm = %d, want 4096", p.OFMWriteBytes)
	}
	if p.TotalBytes() != 4096+1152+4096 {
		t.Errorf("total = %d", p.TotalBytes())
	}
}

func TestConvRowTilingHaloOverhead(t *testing.T) {
	n := convNet(t)
	// IBuf 1600: stripe of 4 output rows needs 6 input rows × 16 × 8 ×
	// 2 = 1536 ≤ 1600; 5 rows would need 1792.
	bud := Budget{IBuf: 1600, OBuf: 1 << 20, WBuf: 1 << 20}
	p, err := ForLayer(n.Layer("c"), tensor.Fixed16, bud)
	if err != nil {
		t.Fatal(err)
	}
	if p.TileRows != 4 || p.RowTiles != 4 {
		t.Fatalf("plan = %+v", p)
	}
	// Hand-computed stripe rows: 5+6+6+5 = 22 input rows.
	if want := int64(22 * 16 * 8 * 2); p.IFMReadBytes != want {
		t.Errorf("ifm = %d, want %d", p.IFMReadBytes, want)
	}
	if p.IFMReadBytes <= 4096 {
		t.Error("halo overhead missing")
	}
}

func TestConvChannelGrouping(t *testing.T) {
	b := nn.NewBuilder("t", tensor.Shape{C: 64, H: 8, W: 8})
	b.Conv("c", b.InputName(), 64, 3, 1, 1)
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	l := n.Layer("c")
	// One output row of all 64 channels = 8*64*2 = 1024 bytes; give
	// OBuf 256 → 16 channels per group → 4 groups. IBuf: minimal
	// stripe (3 rows, 1 ch) = 48 bytes; give room for 8 channels (384).
	bud := Budget{IBuf: 384, OBuf: 256, WBuf: 1 << 20}
	p, err := ForLayer(l, tensor.Fixed16, bud)
	if err != nil {
		t.Fatal(err)
	}
	if p.TileRows != 1 {
		t.Errorf("tileRows = %d", p.TileRows)
	}
	if p.OutGroups != 4 {
		t.Errorf("outGroups = %d, want 4", p.OutGroups)
	}
	if p.InGroups != 8 {
		t.Errorf("inGroups = %d, want 8", p.InGroups)
	}
	// Input streamed once per output group.
	single := stripeReadBytes(l, tensor.Fixed16, 1)
	if p.IFMReadBytes != single*4 {
		t.Errorf("ifm = %d, want %d", p.IFMReadBytes, single*4)
	}
}

func TestConvWeightOrderChoice(t *testing.T) {
	// Large weights, small WBuf: weight-stationary splits output
	// channels; input-stationary re-reads weights per stripe. The
	// planner must pick the cheaper order.
	b := nn.NewBuilder("t", tensor.Shape{C: 256, H: 14, W: 14})
	b.Conv("c", b.InputName(), 256, 3, 1, 1)
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	l := n.Layer("c")
	w := l.WeightBytes(tensor.Fixed16) // 256*256*9*2 ≈ 1.18 MB
	bud := Budget{IBuf: 64 << 10, OBuf: 64 << 10, WBuf: w / 4}
	p, err := ForLayer(l, tensor.Fixed16, bud)
	if err != nil {
		t.Fatal(err)
	}
	if p.WeightStationary {
		if p.WeightReadBytes != w {
			t.Errorf("ws weights = %d, want %d", p.WeightReadBytes, w)
		}
		if p.OutGroups < 4 {
			t.Errorf("ws groups = %d, want ≥4", p.OutGroups)
		}
	} else {
		if p.WeightReadBytes != w*int64(p.RowTiles) {
			t.Errorf("is weights = %d", p.WeightReadBytes)
		}
	}
	// Whatever the order, it must beat or match the alternative.
	if p.TotalBytes() <= 0 {
		t.Error("bogus total")
	}
}

func TestConvBudgetTooSmall(t *testing.T) {
	n := convNet(t)
	cases := []struct {
		bud  Budget
		want string
	}{
		{Budget{IBuf: 8, OBuf: 1 << 20, WBuf: 1 << 20}, "minimal input stripe"},
		{Budget{IBuf: 1 << 20, OBuf: 8, WBuf: 1 << 20}, "one output row"},
		{Budget{IBuf: 1 << 20, OBuf: 1 << 20, WBuf: 4}, "weights"},
	}
	for _, c := range cases {
		_, err := ForLayer(n.Layer("c"), tensor.Fixed16, c.bud)
		if err == nil {
			t.Errorf("budget %+v accepted", c.bud)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("error %q does not mention %q", err, c.want)
		}
	}
}

func TestPoolPlanNoWeights(t *testing.T) {
	b := nn.NewBuilder("t", tensor.Shape{C: 8, H: 16, W: 16})
	b.Pool("p", b.InputName(), nn.MaxPool, 2, 2, 0)
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	p, err := ForLayer(n.Layer("p"), tensor.Fixed16, big())
	if err != nil {
		t.Fatal(err)
	}
	if p.WeightReadBytes != 0 {
		t.Errorf("pool weights = %d", p.WeightReadBytes)
	}
	if p.IFMReadBytes != 16*16*8*2 {
		t.Errorf("pool ifm = %d", p.IFMReadBytes)
	}
	if p.OFMWriteBytes != 8*8*8*2 {
		t.Errorf("pool ofm = %d", p.OFMWriteBytes)
	}
}

func TestOverlappingPoolHalo(t *testing.T) {
	// 3x3 stride-2 pool re-reads one halo row per stripe boundary when
	// tiled.
	b := nn.NewBuilder("t", tensor.Shape{C: 4, H: 31, W: 31})
	b.Pool("p", b.InputName(), nn.MaxPool, 3, 2, 0)
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	l := n.Layer("p")
	full, err := ForLayer(l, tensor.Fixed16, big())
	if err != nil {
		t.Fatal(err)
	}
	tight, err := ForLayer(l, tensor.Fixed16, Budget{IBuf: 2 << 10, OBuf: 1 << 20, WBuf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tight.RowTiles <= full.RowTiles {
		t.Fatalf("expected more tiles under tight budget: %d vs %d", tight.RowTiles, full.RowTiles)
	}
	if tight.IFMReadBytes <= full.IFMReadBytes {
		t.Errorf("expected halo overhead: %d vs %d", tight.IFMReadBytes, full.IFMReadBytes)
	}
}

func TestEltwiseAddPlan(t *testing.T) {
	b := nn.NewBuilder("t", tensor.Shape{C: 8, H: 16, W: 16})
	x := b.Conv("c1", b.InputName(), 8, 3, 1, 1)
	y := b.Conv("c2", x, 8, 3, 1, 1)
	add := b.Add("add", x, y)
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	p, err := ForLayer(n.Layer(add), tensor.Fixed16, big())
	if err != nil {
		t.Fatal(err)
	}
	if p.IFMReadBytes != 2*4096 {
		t.Errorf("add ifm = %d, want 8192", p.IFMReadBytes)
	}
	if p.OFMWriteBytes != 4096 {
		t.Errorf("add ofm = %d", p.OFMWriteBytes)
	}
}

func TestConcatIsFree(t *testing.T) {
	b := nn.NewBuilder("t", tensor.Shape{C: 8, H: 16, W: 16})
	a := b.Conv("a", b.InputName(), 8, 1, 1, 0)
	c := b.Conv("c", b.InputName(), 8, 1, 1, 0)
	cat := b.Concat("cat", a, c)
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	p, err := ForLayer(n.Layer(cat), tensor.Fixed16, big())
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalBytes() != 0 {
		t.Errorf("concat traffic = %d, want 0", p.TotalBytes())
	}
}

func TestGlobalPoolAndInputPlans(t *testing.T) {
	b := nn.NewBuilder("t", tensor.Shape{C: 8, H: 4, W: 4})
	g := b.GlobalPool("g", b.InputName())
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	p, err := ForLayer(n.Layer(g), tensor.Fixed16, big())
	if err != nil {
		t.Fatal(err)
	}
	if p.IFMReadBytes != 8*4*4*2 || p.OFMWriteBytes != 8*2 {
		t.Errorf("gpool plan = %+v", p)
	}
	pin, err := ForLayer(n.Input(), tensor.Fixed16, big())
	if err != nil {
		t.Fatal(err)
	}
	if pin.TotalBytes() != 0 {
		t.Errorf("input traffic = %d", pin.TotalBytes())
	}
}

func TestFCPlan(t *testing.T) {
	b := nn.NewBuilder("t", tensor.Shape{C: 512, H: 1, W: 1})
	b.FC("fc", b.InputName(), 1000)
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	l := n.Layer("fc")
	p, err := ForLayer(l, tensor.Fixed16, big())
	if err != nil {
		t.Fatal(err)
	}
	if p.IFMReadBytes != 512*2 {
		t.Errorf("fc ifm = %d", p.IFMReadBytes)
	}
	if p.WeightReadBytes != l.WeightBytes(tensor.Fixed16) {
		t.Errorf("fc weights = %d", p.WeightReadBytes)
	}
	if p.OFMWriteBytes != 1000*2 {
		t.Errorf("fc ofm = %d", p.OFMWriteBytes)
	}
}

func TestResNetAllLayersPlannable(t *testing.T) {
	n := nn.MustResNet(50)
	bud := Budget{IBuf: 256 << 10, OBuf: 256 << 10, WBuf: 512 << 10}
	for _, l := range n.Layers {
		if _, err := ForLayer(l, tensor.Fixed16, bud); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
	}
}

func TestQuickTrafficNonIncreasingInBudget(t *testing.T) {
	n := nn.MustResNet(34)
	convs := []*nn.Layer{}
	for _, l := range n.Layers {
		if l.Kind == nn.OpConv {
			convs = append(convs, l)
		}
	}
	f := func(li, budKB uint8) bool {
		l := convs[int(li)%len(convs)]
		base := int64(int(budKB%64)+8) << 10
		small := Budget{IBuf: base, OBuf: base, WBuf: base}
		large := Budget{IBuf: base * 2, OBuf: base * 2, WBuf: base * 2}
		ps, err1 := ForLayer(l, tensor.Fixed16, small)
		pl, err2 := ForLayer(l, tensor.Fixed16, large)
		if err1 != nil {
			return true // infeasible small budget: nothing to compare
		}
		if err2 != nil {
			return false // larger budget must stay feasible
		}
		return pl.TotalBytes() <= ps.TotalBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickIFMAtLeastFootprintOnce(t *testing.T) {
	// Property: planned IFM traffic is at least the bytes the kernel
	// actually needs once (the stripe union), and OFM equals the
	// output footprint exactly.
	n := nn.MustResNet(18)
	f := func(li, budKB uint8) bool {
		l := n.Layers[int(li)%len(n.Layers)]
		if l.Kind != nn.OpConv {
			return true
		}
		base := int64(int(budKB%128)+16) << 10
		p, err := ForLayer(l, tensor.Fixed16, Budget{IBuf: base, OBuf: base, WBuf: base * 4})
		if err != nil {
			return true
		}
		needOnce := stripeReadBytes(l, tensor.Fixed16, l.Out.H)
		return p.IFMReadBytes >= needOnce && p.OFMWriteBytes == l.Out.Bytes(tensor.Fixed16)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGroupedConvPassesShareInputSlices(t *testing.T) {
	// A depthwise conv forced into output-channel grouping must not
	// multiply its input traffic: each group reads only its own input
	// slice.
	b := nn.NewBuilder("dw", tensor.Shape{C: 64, H: 16, W: 16})
	b.GroupedConv("dw", b.InputName(), 64, 3, 1, 1, 64)
	b2 := nn.NewBuilder("dense", tensor.Shape{C: 64, H: 16, W: 16})
	b2.Conv("dense", b2.InputName(), 64, 3, 1, 1)
	ndw, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	nd, err := b2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// Tiny OBuf forces several output-channel groups for both layers.
	bud := Budget{IBuf: 8 << 10, OBuf: 512, WBuf: 1 << 20}
	pdw, err := ForLayer(ndw.Layer("dw"), tensor.Fixed16, bud)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := ForLayer(nd.Layer("dense"), tensor.Fixed16, bud)
	if err != nil {
		t.Fatal(err)
	}
	if pdw.OutGroups < 2 || pd.OutGroups < 2 {
		t.Skipf("grouping regime not reached: dw=%d dense=%d", pdw.OutGroups, pd.OutGroups)
	}
	inBytes := int64(64 * 16 * 16 * 2)
	// Depthwise groups partition the input: total reads equal ONE
	// stripe pass (halo overhead only, here 3 rows per 1-row stripe).
	single := stripeReadBytes(ndw.Layer("dw"), tensor.Fixed16, pdw.TileRows)
	if pdw.IFMReadBytes != single {
		t.Errorf("depthwise ifm = %d, want one pass %d", pdw.IFMReadBytes, single)
	}
	// The dense layer genuinely re-reads per group.
	if pd.IFMReadBytes < int64(pd.OutGroups)*inBytes {
		t.Errorf("dense ifm = %d with %d groups", pd.IFMReadBytes, pd.OutGroups)
	}
	if pd.IFMReadBytes <= 2*pdw.IFMReadBytes {
		t.Errorf("dense ifm %d not well above depthwise %d", pd.IFMReadBytes, pdw.IFMReadBytes)
	}
	// Tiles still conserve the (corrected) aggregate.
	var load int64
	for _, tile := range pdw.Tiles(tensor.Fixed16) {
		load += tile.LoadBytes
	}
	if load != pdw.IFMReadBytes {
		t.Errorf("tile loads %d != plan %d", load, pdw.IFMReadBytes)
	}
}
