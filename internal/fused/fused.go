// Package fused models the fused-layer CNN accelerator family (Alwani
// et al., MICRO 2016) as a comparator: consecutive layers execute as
// one pipeline over sliding line buffers, so intermediate feature maps
// inside a fusion group never touch DRAM — without requiring whole
// feature maps to fit on chip. Its structural weakness, which the
// Shortcut Mining paper targets, is that a shortcut operand crossing a
// fusion group has nowhere to live: it must round-trip through DRAM,
// and producers with multiple consumers terminate groups.
//
// The model is traffic-exact under its stated policy and
// cycle-approximate like the core schedulers, sharing the PE and DRAM
// models so comparisons are apples-to-apples (experiment E17).
package fused

import (
	"fmt"

	"shortcutmining/internal/compress"
	"shortcutmining/internal/dram"
	"shortcutmining/internal/nn"
	"shortcutmining/internal/pe"
	"shortcutmining/internal/stats"
	"shortcutmining/internal/tensor"
)

// Config is the fused-layer platform: the same PE array and channels
// as the core schedulers, with the bank pool re-interpreted as one
// line-buffer arena.
type Config struct {
	PE                  pe.Config
	DRAM                dram.Config
	BufferBytes         int64 // on-chip line-buffer arena (= the pool capacity)
	WeightBufBytes      int64
	WeightBandwidthGBps float64
	DType               tensor.DataType
	ControlCycles       int64

	// Compression is the optional interlayer feature-map codec at the
	// DRAM boundary, identical in semantics to core.Config.Compression:
	// group boundary traffic (head input, tail output, cross-group
	// shortcut reads) moves compressed; weights never do. Intra-group
	// edges never touch DRAM, so fusion and compression compose — the
	// codec only sees what fusion failed to keep on chip.
	Compression *compress.Config
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.PE.Validate(); err != nil {
		return err
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	if c.BufferBytes <= 0 || c.WeightBufBytes <= 0 {
		return fmt.Errorf("fused: buffers must be positive")
	}
	if err := c.Compression.Validate(); err != nil {
		return err
	}
	return nil
}

// Group is one fusion group: a maximal run of pipelineable layers.
type Group struct {
	Layers []int // layer indices, in execution order
	// WorkingSetBytes is the line-buffer footprint the group needs.
	WorkingSetBytes int64
}

// Result is the outcome of a fused-layer run.
type Result struct {
	Groups []Group
	Run    stats.RunStats
}

// fusable reports whether a layer can live inside a pipeline group.
func fusable(l *nn.Layer) bool {
	switch l.Kind {
	case nn.OpConv, nn.OpPool, nn.OpEltwiseAdd:
		return true
	}
	return false
}

// window returns the input rows layer l needs live per output row.
func window(l *nn.Layer) int {
	switch l.Kind {
	case nn.OpConv, nn.OpPool:
		return l.K + l.Stride
	default:
		return 1
	}
}

// lineBufferBytes is the sliding-window footprint of holding `rows`
// rows of the given feature map.
func lineBufferBytes(s tensor.Shape, rows int, d tensor.DataType) int64 {
	if rows > s.H {
		rows = s.H
	}
	return int64(rows) * int64(s.W) * int64(s.C) * int64(d.Bytes())
}

// workingSet computes the arena footprint of fusing layers[a..b]
// (indices into net.Layers): the head's input window plus, for each
// internal edge, the producer's output window sized by the consumer's
// kernel.
func workingSet(net *nn.Network, members []int, d tensor.DataType) int64 {
	head := net.Layers[members[0]]
	ws := lineBufferBytes(head.In[0], window(head), d)
	for i := 0; i < len(members)-1; i++ {
		prod := net.Layers[members[i]]
		cons := net.Layers[members[i+1]]
		ws += lineBufferBytes(prod.Out, window(cons), d)
	}
	// The tail streams its output through a double row buffer.
	tail := net.Layers[members[len(members)-1]]
	ws += lineBufferBytes(tail.Out, 2, d)
	return ws
}

// Simulate executes the network under the fused-layer policy and
// returns the fusion plan plus run statistics comparable with
// core.Simulate results.
func Simulate(net *nn.Network, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := net.Validate(); err != nil {
		return Result{}, err
	}
	ch, err := dram.NewChannel(cfg.DRAM)
	if err != nil {
		return Result{}, err
	}
	var tally codecTally
	if cfg.Compression != nil {
		ch.SetCompressor(cfg.Compression)
	}
	res := Result{Run: stats.RunStats{
		Network:  net.Name,
		Strategy: "fused-layer",
		Batch:    1,
		ClockMHz: cfg.PE.ClockMHz,
	}}

	// Greedy grouping over execution order.
	var current []int
	flush := func() error {
		if len(current) == 0 {
			return nil
		}
		g := Group{Layers: current, WorkingSetBytes: workingSet(net, current, cfg.DType)}
		if err := execGroup(net, cfg, ch, &res.Run, g, &tally); err != nil {
			return err
		}
		res.Groups = append(res.Groups, g)
		current = nil
		return nil
	}
	for _, l := range net.Layers {
		if l.Kind == nn.OpInput {
			res.Run.Layers = append(res.Run.Layers, stats.LayerStats{Name: l.Name, Kind: l.Kind.String(), Stage: l.Stage})
			continue
		}
		if l.Kind == nn.OpConcat {
			// Layout-only, as in the other schedulers; it also breaks
			// the pipeline (multiple producers).
			if err := flush(); err != nil {
				return Result{}, err
			}
			res.Run.Layers = append(res.Run.Layers, stats.LayerStats{Name: l.Name, Kind: l.Kind.String(), Stage: l.Stage})
			continue
		}
		// Can l extend the current group? Its primary input must be
		// the current tail, the tail must have no other consumers, and
		// the grown working set must fit.
		extendable := fusable(l) && len(current) > 0
		if extendable {
			tail := current[len(current)-1]
			primary := net.Layer(l.Inputs[len(l.Inputs)-1])
			if primary.Index != tail || len(net.Consumers(tail)) != 1 {
				extendable = false
			} else if workingSet(net, append(append([]int(nil), current...), l.Index), cfg.DType) > cfg.BufferBytes {
				extendable = false
			}
		}
		if extendable {
			current = append(current, l.Index)
			continue
		}
		if err := flush(); err != nil {
			return Result{}, err
		}
		current = []int{l.Index}
		if !fusable(l) { // FC / global pool run standalone
			if err := flush(); err != nil {
				return Result{}, err
			}
		}
	}
	if err := flush(); err != nil {
		return Result{}, err
	}

	res.Run.Traffic = ch.Traffic() // scmvet:ok accounting aggregation of the channel's tally into RunStats
	res.Run.MACs = net.TotalMACs()
	for _, ls := range res.Run.Layers {
		res.Run.ComputeCycles += ls.ComputeCycles
		res.Run.MemCycles += ls.MemCycles
		res.Run.TotalCycles += ls.Cycles
		res.Run.SRAMBytes += ls.SRAMBytes
	}
	if cfg.Compression != nil {
		cs := &stats.CompressionStats{
			Codec:        cfg.Compression.String(),
			Logical:      ch.LogicalTraffic(),
			Wire:         ch.RawTraffic(),
			EncodeCycles: tally.enc,
			DecodeCycles: tally.dec,
		}
		cs.SavedBytes = cs.Logical.Total() - cs.Wire.Total()
		res.Run.Compression = cs
	}
	return res, nil
}

// codecTally accumulates codec engine time across fusion groups.
type codecTally struct{ enc, dec int64 }

// execGroup charges one fusion group's traffic and timing. The group
// reads its head input once (line-buffered single pass), streams every
// member's weights, reads shortcut operands of internal adds from
// DRAM, and writes only the tail output.
func execGroup(net *nn.Network, cfg Config, ch *dram.Channel, run *stats.RunStats, g Group, tally *codecTally) error {
	d := cfg.DType
	before := ch.Traffic()

	// xfer charges one DMA transfer and, under compression, the codec
	// engine time of (de)compressing its logical payload.
	var codec int64
	xfer := func(c dram.Class, bytes int64) {
		ch.Transfer(c, bytes)
		if cfg.Compression != nil {
			enc, dec := cfg.Compression.CodecCycles(c, bytes)
			tally.enc += enc
			tally.dec += dec
			codec += enc + dec
		}
	}

	head := net.Layers[g.Layers[0]]
	tail := net.Layers[g.Layers[len(g.Layers)-1]]

	var compute int64
	var sram int64
	for gi, idx := range g.Layers {
		l := net.Layers[idx]
		compute += cfg.PE.LayerCycles(l)
		sram += 2 * l.Out.Bytes(d)
		xfer(dram.ClassWeightRead, l.WeightBytes(d))
		// Non-primary operands of adds come from DRAM: the pipeline
		// has no home for data produced outside the current group.
		if l.Kind == nn.OpEltwiseAdd {
			for _, in := range l.Inputs[:len(l.Inputs)-1] {
				p := net.Layer(in)
				inGroup := false
				for _, m := range g.Layers[:gi] {
					if m == p.Index {
						inGroup = true
					}
				}
				if !inGroup {
					xfer(dram.ClassShortcutRead, expandBytes(net, p, d))
				}
			}
		}
	}
	// Head primary input (by convention the last-listed input): one
	// line-buffered pass. A concat producer's bytes equal the sum of
	// its parts, so the address-layout view needs no special casing.
	primary := net.Layer(head.Inputs[len(head.Inputs)-1])
	xfer(dram.ClassIFMRead, expandBytes(net, primary, d))
	xfer(dram.ClassOFMWrite, tail.Out.Bytes(d))

	delta := ch.Traffic()
	for c := range delta {
		delta[c] -= before[c]
	}
	mem := memCycles(cfg, ch, delta)
	cycles := compute
	if mem > cycles {
		cycles = mem
	}
	cycles += cfg.ControlCycles + codec

	// Attribute the group's outcome to its tail layer for reporting;
	// internal members appear with zero traffic (they are fused away).
	for _, idx := range g.Layers[:len(g.Layers)-1] {
		l := net.Layers[idx]
		run.Layers = append(run.Layers, stats.LayerStats{Name: l.Name, Kind: l.Kind.String(), Stage: l.Stage})
	}
	run.Layers = append(run.Layers, stats.LayerStats{
		Name: tail.Name, Kind: tail.Kind.String(), Stage: tail.Stage,
		ComputeCycles: compute, MemCycles: mem, Cycles: cycles, CodecCycles: codec,
		Traffic: delta, SRAMBytes: sram,
	})
	return nil
}

// expandBytes returns the byte size of a producer's feature map,
// expanding concat pseudo-producers to their parts.
func expandBytes(net *nn.Network, p *nn.Layer, d tensor.DataType) int64 {
	return p.Out.Bytes(d)
}

func memCycles(cfg Config, ch *dram.Channel, delta dram.Traffic) int64 {
	clock := cfg.PE.ClockMHz
	if cfg.WeightBandwidthGBps <= 0 {
		return ch.CyclesAt(delta.Total(), clock)
	}
	fm := ch.CyclesAt(delta.FeatureMap(), clock)
	perCycle := cfg.WeightBandwidthGBps * 1e9 / (clock * 1e6)
	w := int64(float64(delta[dram.ClassWeightRead])/perCycle + 0.999999)
	if w > fm {
		return w
	}
	return fm
}
