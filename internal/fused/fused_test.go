package fused

import (
	"testing"

	"shortcutmining/internal/core"
	"shortcutmining/internal/dram"
	"shortcutmining/internal/nn"
	"shortcutmining/internal/pe"
	"shortcutmining/internal/tensor"
)

func testConfig() Config {
	return Config{
		PE:                  pe.Config{Tn: 16, Tm: 16, ClockMHz: 200, VectorWidth: 16},
		DRAM:                dram.Config{BandwidthGBps: 1.0, BurstBytes: 64, EnergyPJForB: 160},
		BufferBytes:         64 << 10,
		WeightBufBytes:      1 << 20,
		WeightBandwidthGBps: 12.8,
		DType:               tensor.Fixed16,
		ControlCycles:       500,
	}
}

// chain builds n same-shape convs (8x16x16 fmaps, 4 KiB each).
func chain(t *testing.T, n int) *nn.Network {
	t.Helper()
	b := nn.NewBuilder("chain", tensor.Shape{C: 8, H: 16, W: 16})
	x := b.InputName()
	for i := 0; i < n; i++ {
		x = b.Conv(string(rune('a'+i)), x, 8, 3, 1, 1)
	}
	net, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return net
}

const fm = int64(8 * 16 * 16 * 2)

func TestLinearChainFusesIntoOneGroup(t *testing.T) {
	net := chain(t, 4)
	res, err := Simulate(net, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("groups = %d, want 1 (%v)", len(res.Groups), res.Groups)
	}
	tr := res.Run.Traffic
	// One pass in, one result out, nothing in between.
	if tr[dram.ClassIFMRead] != fm {
		t.Errorf("ifm = %d, want %d", tr[dram.ClassIFMRead], fm)
	}
	if tr[dram.ClassOFMWrite] != fm {
		t.Errorf("ofm = %d, want %d", tr[dram.ClassOFMWrite], fm)
	}
	if got := res.Run.FmapTrafficBytes(); got != 2*fm {
		t.Errorf("fmap traffic = %d, want %d", got, 2*fm)
	}
}

func TestTinyBufferSplitsGroups(t *testing.T) {
	net := chain(t, 4)
	cfg := testConfig()
	cfg.BufferBytes = 2 << 10 // less than one line-buffer stage
	res, err := Simulate(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) < 2 {
		t.Fatalf("tiny buffer still fused everything: %d groups", len(res.Groups))
	}
	// Each split point adds one write+read round trip.
	extra := int64(len(res.Groups)-1) * 2 * fm
	if got := res.Run.FmapTrafficBytes(); got != 2*fm+extra {
		t.Errorf("fmap traffic = %d, want %d", got, 2*fm+extra)
	}
}

func TestShortcutOperandRoundTrips(t *testing.T) {
	// The structural weakness the paper exploits: even with a generous
	// buffer, the fused pipeline re-reads the shortcut operand.
	b := nn.NewBuilder("res", tensor.Shape{C: 8, H: 16, W: 16})
	x := b.Conv("c1", b.InputName(), 8, 3, 1, 1)
	y := b.Conv("c2", x, 8, 3, 1, 1)
	y = b.Conv("c3", y, 8, 3, 1, 1)
	b.Add("add", x, y)
	net, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(net, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Run.Traffic
	if tr[dram.ClassShortcutRead] != fm {
		t.Errorf("shortcut reads = %d, want %d", tr[dram.ClassShortcutRead], fm)
	}
	// c1 has two consumers → group break after c1: c1's output is
	// written and re-read by the next group.
	if tr[dram.ClassOFMWrite] < 2*fm {
		t.Errorf("ofm writes = %d, want ≥%d (c1 copy + result)", tr[dram.ClassOFMWrite], 2*fm)
	}
}

func TestFusedBeatsBaselineLosesToSCMOnResidualNets(t *testing.T) {
	// The paper's positioning: fused-layer removes adjacent-layer
	// round trips but not shortcut traffic.
	ccfg := core.Default()
	fcfg := testConfig()
	fcfg.PE = ccfg.PE
	fcfg.DRAM = ccfg.DRAM
	fcfg.BufferBytes = ccfg.Pool.TotalBytes()
	fcfg.WeightBufBytes = ccfg.WeightBufBytes
	fcfg.WeightBandwidthGBps = ccfg.WeightBandwidthGBps
	fcfg.DType = ccfg.DType

	for _, name := range []string{"resnet34", "resnet152", "squeezenet-bypass", "vgg16"} {
		net := nn.MustBuild(name)
		base, err := core.Simulate(net, ccfg, core.Baseline, nil)
		if err != nil {
			t.Fatal(err)
		}
		scm, err := core.Simulate(net, ccfg, core.SCM, nil)
		if err != nil {
			t.Fatal(err)
		}
		fl, err := Simulate(net, fcfg)
		if err != nil {
			t.Fatal(err)
		}
		f := fl.Run.FmapTrafficBytes()
		if f >= base.FmapTrafficBytes() {
			t.Errorf("%s: fused (%d) not better than baseline (%d)", name, f, base.FmapTrafficBytes())
		}
		// Where retention fits the pool, mining the shortcuts wins.
		if name == "resnet34" || name == "squeezenet-bypass" {
			if f <= scm.FmapTrafficBytes() {
				t.Errorf("%s: fused (%d) beat SCM (%d)", name, f, scm.FmapTrafficBytes())
			}
		}
	}
}

func TestSCMOvertakesFusedGivenCapacity(t *testing.T) {
	// ResNet-152's 1.6 MiB bottleneck fmaps overwhelm a 544 KiB pool,
	// where line buffering is the better fit; with a pool that holds
	// the block working set, shortcut mining wins again — the
	// crossover experiment E17 charts.
	net := nn.MustBuild("resnet152")
	ccfg := core.Default().WithPoolBytes(6 << 20)
	scm, err := core.Simulate(net, ccfg, core.SCM, nil)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := testConfig()
	fcfg.PE = ccfg.PE
	fcfg.DRAM = ccfg.DRAM
	fcfg.BufferBytes = ccfg.Pool.TotalBytes()
	fcfg.DType = ccfg.DType
	fl, err := Simulate(net, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if scm.FmapTrafficBytes() >= fl.Run.FmapTrafficBytes() {
		t.Errorf("6 MiB pool: SCM (%d) still behind fused (%d)",
			scm.FmapTrafficBytes(), fl.Run.FmapTrafficBytes())
	}
}

func TestWorkingSetGrowsWithGroup(t *testing.T) {
	net := chain(t, 4)
	d := tensor.Fixed16
	one := workingSet(net, []int{1}, d)
	two := workingSet(net, []int{1, 2}, d)
	three := workingSet(net, []int{1, 2, 3}, d)
	if !(one < two && two < three) {
		t.Errorf("working set not monotone: %d %d %d", one, two, three)
	}
}

func TestStandaloneHeadLayers(t *testing.T) {
	b := nn.NewBuilder("head", tensor.Shape{C: 8, H: 8, W: 8})
	x := b.Conv("c", b.InputName(), 8, 3, 1, 1)
	x = b.GlobalPool("gap", x)
	b.FC("fc", x, 10)
	net, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(net, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// conv | gap | fc: three groups (gap and fc are not fusable).
	if len(res.Groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(res.Groups))
	}
	if res.Run.Traffic[dram.ClassWeightRead] == 0 {
		t.Error("no weight traffic recorded")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := testConfig()
	bad.BufferBytes = 0
	if _, err := Simulate(nn.MustResNet(18), bad); err == nil {
		t.Error("zero buffer accepted")
	}
	bad = testConfig()
	bad.PE.Tn = 0
	if _, err := Simulate(nn.MustResNet(18), bad); err == nil {
		t.Error("bad PE config accepted")
	}
}

func TestLayerAccounting(t *testing.T) {
	net := chain(t, 3)
	res, err := Simulate(net, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Every layer (incl. input) appears exactly once in the report.
	if len(res.Run.Layers) != len(net.Layers) {
		t.Errorf("reported %d layers, net has %d", len(res.Run.Layers), len(net.Layers))
	}
}

func TestGroupsRespectWorkingSetBudget(t *testing.T) {
	cfg := testConfig()
	for _, name := range []string{"resnet34", "squeezenet-bypass", "vgg16"} {
		res, err := Simulate(nn.MustBuild(name), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range res.Groups {
			if len(g.Layers) > 1 && g.WorkingSetBytes > cfg.BufferBytes {
				t.Errorf("%s: multi-layer group %v working set %d exceeds buffer %d",
					name, g.Layers, g.WorkingSetBytes, cfg.BufferBytes)
			}
		}
	}
}

func TestEveryLayerAppearsInExactlyOneGroup(t *testing.T) {
	net := nn.MustBuild("googlenet")
	res, err := Simulate(net, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, g := range res.Groups {
		for _, idx := range g.Layers {
			if seen[idx] {
				t.Fatalf("layer %d in two groups", idx)
			}
			seen[idx] = true
		}
	}
	for _, l := range net.Layers {
		if l.Kind == nn.OpInput || l.Kind == nn.OpConcat {
			continue
		}
		if !seen[l.Index] {
			t.Errorf("layer %s missing from the fusion plan", l.Name)
		}
	}
}
