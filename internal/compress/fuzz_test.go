package compress

import (
	"testing"

	"shortcutmining/internal/dram"
)

// FuzzCompressSpec asserts the compress= grammar's core contract:
// arbitrary input yields either a validated config or an error — never
// a panic — every accepted config survives a String() round trip, and
// its codec functions respect the wire-byte invariants the DRAM
// channel relies on.
func FuzzCompressSpec(f *testing.F) {
	seeds := []string{
		"",
		"fixed:ratio=2",
		"fixed:ratio=1.5,enc=1,dec=1",
		"zvc",
		"zvc:sparsity=0.55",
		"zvc:sparsity=0.6,elem=2,enc=2,dec=2",
		"zvc:sparsity=0.5,classes=ifm+ofm+shortcut+spillw+spillr+interchip",
		"fixed:ratio=4,classes=interchip",
		" fixed : ratio = 2 ",
		"fixed:",
		"fixed:ratio",
		"fixed:ratio=2,bogus=1",
		"zvc:sparsity=1",
		"zvc:classes=weights",
		"lz4:ratio=2",
		"fixed:ratio=2,,",
		"zvc:sparsity=0.5,elem=9",
		"fixed:ratio=1e300",
		"zvc:sparsity=NaN",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		cfg, err := ParseSpec(input)
		if err != nil {
			if cfg != nil {
				t.Errorf("ParseSpec(%q) returned both a config and an error", input)
			}
			return
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("ParseSpec(%q) returned invalid config: %v", input, err)
		}
		// Accepted specs must round-trip through the printed grammar.
		printed := cfg.String()
		again, err := ParseSpec(printed)
		if err != nil {
			t.Fatalf("reparse of %q (from %q) failed: %v", printed, input, err)
		}
		if again.String() != printed {
			t.Errorf("round trip unstable: %q -> %q -> %q", input, printed, again.String())
		}
		// Codec invariants on every class and a size spread: wire in
		// [1, logical], weights untouched, cycles non-negative.
		for _, cl := range dram.Classes() {
			for _, logical := range []int64{0, 1, 7, 1024, 1<<20 + 3} {
				wire := cfg.WireBytes(cl, logical)
				switch {
				case logical <= 0:
					if wire != 0 {
						t.Errorf("%q: WireBytes(%s, %d) = %d, want 0", input, cl, logical, wire)
					}
				case wire < 1 || wire > logical:
					t.Errorf("%q: WireBytes(%s, %d) = %d outside [1, logical]", input, cl, logical, wire)
				}
				if cl == dram.ClassWeightRead && wire != logical && logical > 0 {
					t.Errorf("%q: weights compressed %d -> %d", input, logical, wire)
				}
				enc, dec := cfg.CodecCycles(cl, logical)
				if enc < 0 || dec < 0 {
					t.Errorf("%q: negative codec cycles enc=%d dec=%d", input, enc, dec)
				}
			}
		}
	})
}
