// Package compress models interlayer feature-map compression — the
// third DRAM-traffic-reduction axis next to shortcut mining (P1–P5)
// and layer fusion. Feature maps crossing the chip boundary are
// encoded at the producer and decoded at the consumer, so the wire
// moves fewer bytes than the layers exchange logically, at a
// deterministic per-transfer cycle cost. Weights are never compressed
// (read-only, preloaded, compressed offline if at all); the eligible
// class set is dram.Class.Compressible.
//
// Two codec models are provided:
//
//   - fixed: a flat logical/wire ratio, the simplest what-if knob
//     (wire = ceil(logical / ratio)).
//   - zvc: zero-value compression in the style of Shao et al.
//     (arXiv 2110.06155) — a one-bit-per-element occupancy bitmap plus
//     the packed non-zero elements, keyed on the configured activation
//     sparsity and element width, so the achieved ratio falls out of
//     the model instead of being asserted.
//
// Both are pure deterministic functions of (class, logical bytes):
// the same config always yields the same wire bytes and codec cycles,
// which is what keeps checkpoint/restore and cluster handoffs
// bit-identical under compression.
package compress

import (
	"fmt"
	"strconv"
	"strings"

	"shortcutmining/internal/dram"
)

// Codec names the compression model.
type Codec string

const (
	// CodecFixed applies a flat compression ratio to every eligible
	// transfer: wire = ceil(logical / Ratio).
	CodecFixed Codec = "fixed"
	// CodecZVC models zero-value compression: a 1-bit-per-element
	// occupancy bitmap plus the packed non-zero elements, derived from
	// Sparsity and ElemBytes.
	CodecZVC Codec = "zvc"
)

// Config is one interlayer codec: the model, its parameters, and the
// encode/decode engine cost. The zero value is invalid; build configs
// through ParseSpec or set Codec explicitly and Validate.
type Config struct {
	Codec Codec `json:"codec"`

	// Ratio is the flat logical/wire ratio of CodecFixed, > 1.
	Ratio float64 `json:"ratio,omitempty"`

	// Sparsity is the zero-element fraction CodecZVC assumes for
	// feature maps, in [0, 1). ElemBytes is the activation element
	// width in bytes (defaults to 2, the calibrated platform's
	// Fixed16).
	Sparsity  float64 `json:"sparsity,omitempty"`
	ElemBytes int     `json:"elem_bytes,omitempty"`

	// EncodeCyclesPerKiB / DecodeCyclesPerKiB are the codec engine
	// cost, charged per started KiB of *logical* payload on the
	// encoding (store-side) and decoding (load-side) halves of a
	// transfer. Zero models a free (fully pipelined) codec.
	EncodeCyclesPerKiB int64 `json:"enc_cycles_per_kib,omitempty"`
	DecodeCyclesPerKiB int64 `json:"dec_cycles_per_kib,omitempty"`

	// Classes optionally restricts compression to a subset of the
	// compressible classes. Empty means every dram.Class.Compressible
	// class. Non-compressible classes are rejected by Validate.
	Classes []dram.Class `json:"classes,omitempty"`
}

// DefaultElemBytes is the element width assumed when ElemBytes is 0:
// two bytes, matching the calibrated platform's Fixed16 datatype.
const DefaultElemBytes = 2

// Validate checks the codec configuration.
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	switch c.Codec {
	case CodecFixed:
		if c.Ratio <= 1 {
			return fmt.Errorf("compress: fixed codec needs ratio > 1, got %g", c.Ratio)
		}
	case CodecZVC:
		if c.Sparsity < 0 || c.Sparsity >= 1 {
			return fmt.Errorf("compress: zvc sparsity %g outside [0, 1)", c.Sparsity)
		}
		if c.ElemBytes < 0 {
			return fmt.Errorf("compress: negative element width %d", c.ElemBytes)
		}
		if c.ElemBytes > 8 {
			return fmt.Errorf("compress: element width %d exceeds 8 bytes", c.ElemBytes)
		}
	default:
		return fmt.Errorf("compress: unknown codec %q (want %q or %q)", c.Codec, CodecFixed, CodecZVC)
	}
	if c.EncodeCyclesPerKiB < 0 || c.DecodeCyclesPerKiB < 0 {
		return fmt.Errorf("compress: negative codec cycle cost (enc=%d dec=%d)",
			c.EncodeCyclesPerKiB, c.DecodeCyclesPerKiB)
	}
	seen := map[dram.Class]bool{}
	for _, cl := range c.Classes {
		if cl < 0 || int(cl) >= dram.NumClasses {
			return fmt.Errorf("compress: unknown traffic class %d", int(cl))
		}
		if !cl.Compressible() {
			return fmt.Errorf("compress: class %s is not compressible", cl)
		}
		if seen[cl] {
			return fmt.Errorf("compress: class %s listed twice", cl)
		}
		seen[cl] = true
	}
	return nil
}

// applies reports whether this codec touches the given class.
func (c *Config) applies(cl dram.Class) bool {
	if !cl.Compressible() {
		return false
	}
	if len(c.Classes) == 0 {
		return true
	}
	for _, want := range c.Classes {
		if want == cl {
			return true
		}
	}
	return false
}

// elemBytes resolves the configured element width.
func (c *Config) elemBytes() int64 {
	if c.ElemBytes > 0 {
		return int64(c.ElemBytes)
	}
	return DefaultElemBytes
}

// WireBytes implements dram.Compressor: the post-codec payload for a
// logical transfer of the given class. Classes the codec does not
// apply to pass through unchanged. The result is clamped to
// [1, logical]: a codec never inflates a transfer in this model (a
// real encoder falls back to raw + a tag bit), and never erases one.
func (c *Config) WireBytes(cl dram.Class, logical int64) int64 {
	if logical <= 0 {
		return 0
	}
	if !c.applies(cl) {
		return logical
	}
	var wire int64
	switch c.Codec {
	case CodecFixed:
		wire = int64(float64(logical) / c.Ratio)
		if float64(wire)*c.Ratio < float64(logical) {
			wire++
		}
	case CodecZVC:
		eb := c.elemBytes()
		n := logical / eb     // whole elements
		rem := logical - n*eb // trailing partial element, stored raw
		kept := n - int64(float64(n)*c.Sparsity)
		wire = (n+7)/8 + kept*eb + rem
	default:
		wire = logical
	}
	if wire < 1 {
		wire = 1
	}
	if wire > logical {
		wire = logical
	}
	return wire
}

// CodecCycles returns the encode- and decode-side engine cycles for a
// logical transfer of the given class. Reads (IFM, shortcut, spill
// reload) pay decode; writes (OFM, spill) pay encode; interchip
// handoffs pay both — encode at the source chip, decode at the
// destination. Cost is per started KiB of logical payload, so it
// scales with the tensor, not with the achieved ratio.
func (c *Config) CodecCycles(cl dram.Class, logical int64) (enc, dec int64) {
	if logical <= 0 || !c.applies(cl) {
		return 0, 0
	}
	kib := (logical + 1023) / 1024
	switch cl {
	case dram.ClassOFMWrite, dram.ClassSpillWrite:
		return kib * c.EncodeCyclesPerKiB, 0
	case dram.ClassIFMRead, dram.ClassShortcutRead, dram.ClassSpillRead:
		return 0, kib * c.DecodeCyclesPerKiB
	case dram.ClassInterchip:
		return kib * c.EncodeCyclesPerKiB, kib * c.DecodeCyclesPerKiB
	}
	return 0, 0
}

// RatioFor reports the effective logical/wire ratio the codec achieves
// on a transfer of the given class and size (1 when it does not apply).
func (c *Config) RatioFor(cl dram.Class, logical int64) float64 {
	if logical <= 0 {
		return 1
	}
	return float64(logical) / float64(c.WireBytes(cl, logical))
}

// classTokens lists the grammar tokens for the classes= key in grammar
// order; classToken walks it so rendered specs (which become cache keys
// and checkpoint fields) never depend on map iteration order.
var classTokens = []struct {
	tok string
	cl  dram.Class
}{
	{"ifm", dram.ClassIFMRead},
	{"ofm", dram.ClassOFMWrite},
	{"shortcut", dram.ClassShortcutRead},
	{"spillw", dram.ClassSpillWrite},
	{"spillr", dram.ClassSpillRead},
	{"interchip", dram.ClassInterchip},
}

// classNames maps grammar tokens to classes for the classes= key.
var classNames = func() map[string]dram.Class {
	m := make(map[string]dram.Class, len(classTokens))
	for _, e := range classTokens {
		m[e.tok] = e.cl
	}
	return m
}()

// classToken inverts classNames (classes are validated first).
func classToken(cl dram.Class) string {
	for _, e := range classTokens {
		if e.cl == cl {
			return e.tok
		}
	}
	return cl.String()
}

// ParseSpec parses the compact codec grammar used by CLI flags and the
// compress= clause of scheduling specs:
//
//	codec[:key=value[,key=value...]]
//
// Codecs and their keys:
//
//	fixed:ratio=2            flat 2:1 compression
//	zvc:sparsity=0.6         ZVC at 60% zero activations
//
// Shared keys: enc=<cycles/KiB>, dec=<cycles/KiB> (codec engine cost),
// elem=<bytes> (zvc element width, default 2), and
// classes=<tok>+<tok>+... restricting the eligible classes to a subset
// of {ifm, ofm, shortcut, spillw, spillr, interchip}.
//
// Examples:
//
//	fixed:ratio=2,enc=1,dec=1
//	zvc:sparsity=0.55,elem=2,enc=2,dec=2,classes=ifm+ofm+shortcut
//
// The grammar deliberately avoids ';' so a spec nests verbatim inside
// the semicolon-separated scheduling grammar.
func ParseSpec(s string) (*Config, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("compress: empty spec")
	}
	head, rest, hasParams := strings.Cut(s, ":")
	cfg := &Config{}
	switch Codec(strings.TrimSpace(head)) {
	case CodecFixed:
		cfg.Codec = CodecFixed
	case CodecZVC:
		cfg.Codec = CodecZVC
	default:
		return nil, fmt.Errorf("compress: unknown codec %q in %q (want fixed or zvc)", head, s)
	}
	if hasParams {
		if strings.TrimSpace(rest) == "" {
			return nil, fmt.Errorf("compress: trailing ':' with no parameters in %q", s)
		}
		for _, kv := range strings.Split(rest, ",") {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("compress: parameter %q is not key=value in %q", kv, s)
			}
			key, val = strings.TrimSpace(key), strings.TrimSpace(val)
			var err error
			switch key {
			case "ratio":
				cfg.Ratio, err = strconv.ParseFloat(val, 64)
			case "sparsity":
				cfg.Sparsity, err = strconv.ParseFloat(val, 64)
			case "elem":
				cfg.ElemBytes, err = strconv.Atoi(val)
			case "enc":
				cfg.EncodeCyclesPerKiB, err = strconv.ParseInt(val, 10, 64)
			case "dec":
				cfg.DecodeCyclesPerKiB, err = strconv.ParseInt(val, 10, 64)
			case "classes":
				cfg.Classes, err = parseClasses(val)
			default:
				return nil, fmt.Errorf("compress: unknown key %q in %q", key, s)
			}
			if err != nil {
				return nil, fmt.Errorf("compress: bad value for %s in %q: %v", key, s, err)
			}
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// parseClasses decodes the classes= token list.
func parseClasses(val string) ([]dram.Class, error) {
	if val == "" {
		return nil, fmt.Errorf("empty class list")
	}
	var out []dram.Class
	for _, tok := range strings.Split(val, "+") {
		cl, ok := classNames[strings.TrimSpace(tok)]
		if !ok {
			return nil, fmt.Errorf("unknown class token %q", tok)
		}
		out = append(out, cl)
	}
	return out, nil
}

// String renders the config back into the ParseSpec grammar, with keys
// in a fixed order so the output is deterministic and re-parseable.
func (c *Config) String() string {
	if c == nil {
		return ""
	}
	var sb strings.Builder
	sb.WriteString(string(c.Codec))
	var params []string
	if c.Codec == CodecFixed && c.Ratio != 0 {
		params = append(params, fmt.Sprintf("ratio=%g", c.Ratio))
	}
	if c.Codec == CodecZVC && c.Sparsity != 0 {
		params = append(params, fmt.Sprintf("sparsity=%g", c.Sparsity))
	}
	if c.ElemBytes != 0 {
		params = append(params, fmt.Sprintf("elem=%d", c.ElemBytes))
	}
	if c.EncodeCyclesPerKiB != 0 {
		params = append(params, fmt.Sprintf("enc=%d", c.EncodeCyclesPerKiB))
	}
	if c.DecodeCyclesPerKiB != 0 {
		params = append(params, fmt.Sprintf("dec=%d", c.DecodeCyclesPerKiB))
	}
	if len(c.Classes) > 0 {
		toks := make([]string, len(c.Classes))
		for i, cl := range c.Classes {
			toks[i] = classToken(cl)
		}
		params = append(params, "classes="+strings.Join(toks, "+"))
	}
	if len(params) > 0 {
		sb.WriteString(":")
		sb.WriteString(strings.Join(params, ","))
	}
	return sb.String()
}
