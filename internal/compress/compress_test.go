package compress

import (
	"encoding/json"
	"testing"
	"testing/quick"

	"shortcutmining/internal/dram"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"fixed ok", Config{Codec: CodecFixed, Ratio: 2}, true},
		{"fixed ratio 1", Config{Codec: CodecFixed, Ratio: 1}, false},
		{"fixed ratio 0", Config{Codec: CodecFixed}, false},
		{"zvc ok", Config{Codec: CodecZVC, Sparsity: 0.5}, true},
		{"zvc zero sparsity", Config{Codec: CodecZVC}, true},
		{"zvc sparsity 1", Config{Codec: CodecZVC, Sparsity: 1}, false},
		{"zvc negative sparsity", Config{Codec: CodecZVC, Sparsity: -0.1}, false},
		{"zvc wide elem", Config{Codec: CodecZVC, ElemBytes: 9}, false},
		{"unknown codec", Config{Codec: "lz4", Ratio: 2}, false},
		{"negative enc", Config{Codec: CodecFixed, Ratio: 2, EncodeCyclesPerKiB: -1}, false},
		{"weight class", Config{Codec: CodecFixed, Ratio: 2, Classes: []dram.Class{dram.ClassWeightRead}}, false},
		{"dup class", Config{Codec: CodecFixed, Ratio: 2, Classes: []dram.Class{dram.ClassIFMRead, dram.ClassIFMRead}}, false},
		{"bad class", Config{Codec: CodecFixed, Ratio: 2, Classes: []dram.Class{dram.Class(99)}}, false},
		{"class subset ok", Config{Codec: CodecFixed, Ratio: 2, Classes: []dram.Class{dram.ClassIFMRead, dram.ClassOFMWrite}}, true},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
		}
	}
	var nilCfg *Config
	if err := nilCfg.Validate(); err != nil {
		t.Errorf("nil config should validate: %v", err)
	}
}

func TestFixedWireBytes(t *testing.T) {
	cfg := Config{Codec: CodecFixed, Ratio: 2}
	if got := cfg.WireBytes(dram.ClassIFMRead, 1000); got != 500 {
		t.Errorf("1000B at 2:1 = %d, want 500", got)
	}
	// ceil: 1001/2 = 500.5 -> 501
	if got := cfg.WireBytes(dram.ClassIFMRead, 1001); got != 501 {
		t.Errorf("1001B at 2:1 = %d, want 501", got)
	}
	// weights pass through untouched
	if got := cfg.WireBytes(dram.ClassWeightRead, 1000); got != 1000 {
		t.Errorf("weights compressed to %d, want 1000", got)
	}
	if got := cfg.WireBytes(dram.ClassIFMRead, 0); got != 0 {
		t.Errorf("zero logical -> %d, want 0", got)
	}
	// tiny transfers never vanish
	if got := cfg.WireBytes(dram.ClassIFMRead, 1); got != 1 {
		t.Errorf("1B -> %d, want 1", got)
	}
}

func TestZVCWireBytes(t *testing.T) {
	// 1024 bytes of 2-byte elements = 512 elements. At 50% sparsity:
	// bitmap 512/8 = 64B, kept 256 elements = 512B -> 576B wire.
	cfg := Config{Codec: CodecZVC, Sparsity: 0.5, ElemBytes: 2}
	if got := cfg.WireBytes(dram.ClassOFMWrite, 1024); got != 576 {
		t.Errorf("zvc 1024B sparsity .5 = %d, want 576", got)
	}
	// Zero sparsity still pays the bitmap but clamps at logical.
	dense := Config{Codec: CodecZVC, Sparsity: 0}
	if got := dense.WireBytes(dram.ClassOFMWrite, 1024); got != 1024 {
		t.Errorf("dense zvc = %d, want clamp to 1024", got)
	}
	// Odd tail byte is carried raw.
	if got := cfg.WireBytes(dram.ClassOFMWrite, 1025); got != 577 {
		t.Errorf("zvc 1025B = %d, want 577", got)
	}
}

func TestWireBytesNeverInflatesQuick(t *testing.T) {
	cfgs := []Config{
		{Codec: CodecFixed, Ratio: 1.3},
		{Codec: CodecFixed, Ratio: 8},
		{Codec: CodecZVC, Sparsity: 0},
		{Codec: CodecZVC, Sparsity: 0.9, ElemBytes: 1},
		{Codec: CodecZVC, Sparsity: 0.25, ElemBytes: 4},
	}
	for _, cfg := range cfgs {
		cfg := cfg
		f := func(logical int64, clRaw uint8) bool {
			if logical < 0 {
				logical = -logical
			}
			logical %= 1 << 30
			cl := dram.Class(int(clRaw) % dram.NumClasses)
			wire := cfg.WireBytes(cl, logical)
			if logical == 0 {
				return wire == 0
			}
			return wire >= 1 && wire <= logical
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("cfg %+v: %v", cfg, err)
		}
	}
}

func TestCodecCyclesDirections(t *testing.T) {
	cfg := Config{Codec: CodecFixed, Ratio: 2, EncodeCyclesPerKiB: 3, DecodeCyclesPerKiB: 5}
	const logical = 2048 // 2 KiB
	check := func(cl dram.Class, wantEnc, wantDec int64) {
		t.Helper()
		enc, dec := cfg.CodecCycles(cl, logical)
		if enc != wantEnc || dec != wantDec {
			t.Errorf("%s: got enc=%d dec=%d, want enc=%d dec=%d", cl, enc, dec, wantEnc, wantDec)
		}
	}
	check(dram.ClassIFMRead, 0, 10)
	check(dram.ClassShortcutRead, 0, 10)
	check(dram.ClassSpillRead, 0, 10)
	check(dram.ClassOFMWrite, 6, 0)
	check(dram.ClassSpillWrite, 6, 0)
	check(dram.ClassInterchip, 6, 10)
	check(dram.ClassWeightRead, 0, 0)
	// Partial KiB rounds up.
	if enc, _ := cfg.CodecCycles(dram.ClassOFMWrite, 1); enc != 3 {
		t.Errorf("1B encode = %d cycles, want 3 (one started KiB)", enc)
	}
}

func TestClassSubset(t *testing.T) {
	cfg := Config{Codec: CodecFixed, Ratio: 4, Classes: []dram.Class{dram.ClassShortcutRead}}
	if got := cfg.WireBytes(dram.ClassShortcutRead, 4096); got != 1024 {
		t.Errorf("subset class compressed to %d, want 1024", got)
	}
	if got := cfg.WireBytes(dram.ClassIFMRead, 4096); got != 4096 {
		t.Errorf("excluded class compressed to %d, want 4096", got)
	}
	if enc, dec := cfg.CodecCycles(dram.ClassIFMRead, 4096); enc != 0 || dec != 0 {
		t.Errorf("excluded class charged codec cycles enc=%d dec=%d", enc, dec)
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	specs := []string{
		"fixed:ratio=2",
		"fixed:ratio=1.5,enc=1,dec=1",
		"zvc",
		"zvc:sparsity=0.55,elem=2,enc=2,dec=2",
		"zvc:sparsity=0.6,classes=ifm+ofm+shortcut",
		"fixed:ratio=4,classes=interchip",
	}
	for _, s := range specs {
		cfg, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		out := cfg.String()
		cfg2, err := ParseSpec(out)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", out, s, err)
		}
		if cfg2.String() != out {
			t.Errorf("String not a fixed point: %q -> %q -> %q", s, out, cfg2.String())
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"lz4:ratio=2",
		"fixed",         // ratio missing -> Validate fails
		"fixed:",        // trailing colon
		"fixed:ratio",   // not key=value
		"fixed:ratio=x", // bad float
		"fixed:ratio=2,bogus=1",
		"zvc:sparsity=1", // out of range
		"zvc:elem=0x2",   // bad int
		"zvc:classes=",   // empty class list
		"zvc:classes=ifm+weights",
		"fixed:ratio=2,classes=ifm+ifm",
	}
	for _, s := range bad {
		if cfg, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) = %+v, want error", s, cfg)
		}
	}
}

func TestRatioFor(t *testing.T) {
	cfg := Config{Codec: CodecFixed, Ratio: 2}
	if r := cfg.RatioFor(dram.ClassIFMRead, 1<<20); r != 2 {
		t.Errorf("ratio = %g, want 2", r)
	}
	if r := cfg.RatioFor(dram.ClassWeightRead, 1<<20); r != 1 {
		t.Errorf("weight ratio = %g, want 1", r)
	}
	if r := cfg.RatioFor(dram.ClassIFMRead, 0); r != 1 {
		t.Errorf("zero-byte ratio = %g, want 1", r)
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := &Config{Codec: CodecZVC, Sparsity: 0.5, ElemBytes: 2,
		EncodeCyclesPerKiB: 2, DecodeCyclesPerKiB: 3,
		Classes: []dram.Class{dram.ClassIFMRead, dram.ClassInterchip}}
	b, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != cfg.String() {
		t.Errorf("JSON round trip changed spec: %q vs %q", back.String(), cfg.String())
	}
}

// TestCompressorInterface pins that *Config satisfies dram.Compressor —
// the seam the channel uses.
func TestCompressorInterface(t *testing.T) {
	var _ dram.Compressor = &Config{}
}
