// RunError and the run watchdog: the structured, classified failure
// surface that replaces in-simulator panics. Every way a run can die
// is named by a checker constant and carries a severity, so callers
// (CLIs, experiments, tests) can distinguish "the fault plan exceeded
// what graceful degradation can absorb" from "the simulator broke an
// invariant".
package fault

import (
	"errors"
	"fmt"
)

// Severity classifies how a RunError should be handled.
type Severity int

const (
	// Recoverable: the run could not complete under the injected
	// faults, but the simulator state is consistent — e.g. the pool
	// shrank below the minimum workable size. Rerunning with a milder
	// plan or larger pool is expected to succeed.
	Recoverable Severity = iota
	// Fatal: an internal consistency check failed (leaked banks,
	// violated invariant, livelocked transfer). Indicates a simulator
	// bug or an unsurvivable fault plan; the run's outputs must not
	// be trusted.
	Fatal
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	if s == Fatal {
		return "fatal"
	}
	return "recoverable"
}

// Checker names — the Check field of a RunError.
const (
	// CheckBankLeak fires post-run when buffers still own banks after
	// the last layer released everything.
	CheckBankLeak = "bank-leak"
	// CheckInvariant fires when Pool.CheckInvariants fails post-run.
	CheckInvariant = "invariant"
	// CheckStuckProgress fires when a DMA transfer exhausts its retry
	// budget without completing.
	CheckStuckProgress = "stuck-progress"
	// CheckLiveness fires when a single layer exceeds the configured
	// watchdog cycle bound.
	CheckLiveness = "liveness"
	// CheckCapacity fires when the shrunken pool can no longer hold
	// what a layer strictly requires.
	CheckCapacity = "capacity"
)

// RunError is a classified simulation failure.
type RunError struct {
	// Severity says whether the run state is still consistent.
	Severity Severity
	// Check names the checker that fired (Check* constants).
	Check string
	// Layer is the layer being executed when the check fired, if any.
	Layer string
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *RunError) Error() string {
	where := ""
	if e.Layer != "" {
		where = " at layer " + e.Layer
	}
	return fmt.Sprintf("run error [%s/%s]%s: %v", e.Severity, e.Check, where, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *RunError) Unwrap() error { return e.Err }

// Errf builds a RunError from a format string.
func Errf(sev Severity, check, layer, format string, args ...any) *RunError {
	return &RunError{Severity: sev, Check: check, Layer: layer, Err: fmt.Errorf(format, args...)}
}

// AsRunError unwraps err to a *RunError if one is in the chain.
func AsRunError(err error) (*RunError, bool) {
	var re *RunError
	if errors.As(err, &re) {
		return re, true
	}
	return nil, false
}

// Watchdog holds the run-health bounds the executor enforces. The
// zero value disables the liveness bound and uses the default DMA
// retry budget.
type Watchdog struct {
	// MaxDMAAttempts bounds attempts per transfer (initial try plus
	// retries). Exhausting it is a fatal stuck-progress error. Zero
	// means DefaultMaxDMAAttempts.
	MaxDMAAttempts int
	// MaxLayerCycles, when positive, bounds the modeled cycles of any
	// single layer; exceeding it is a fatal liveness error.
	MaxLayerCycles int64
}

// DefaultMaxDMAAttempts is the retry budget per DMA transfer when the
// config does not set one.
const DefaultMaxDMAAttempts = 8

// Attempts resolves the effective per-transfer attempt budget.
func (w Watchdog) Attempts() int {
	if w.MaxDMAAttempts > 0 {
		return w.MaxDMAAttempts
	}
	return DefaultMaxDMAAttempts
}

// CheckLayer applies the liveness bound to one finished layer.
func (w Watchdog) CheckLayer(layer string, cycles int64) *RunError {
	if w.MaxLayerCycles > 0 && cycles > w.MaxLayerCycles {
		return Errf(Fatal, CheckLiveness, layer,
			"layer ran %d cycles, watchdog bound is %d", cycles, w.MaxLayerCycles)
	}
	return nil
}
