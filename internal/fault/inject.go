// Injector replays a Spec against a running simulation. All
// randomness comes from the spec seed, so a faulty run is exactly
// reproducible: same spec, same network, same victims, same retries.
package fault

import (
	"math/rand"
)

// Injector is the runtime side of a Spec: the executor asks it, at
// each layer boundary and each DMA transfer, what goes wrong now.
type Injector struct {
	spec   *Spec
	rng    *rand.Rand
	events []Event // sorted by trigger layer
	next   int     // first event not yet fired
	factor float64 // current effective bandwidth multiplier

	injected int64 // total events fired (all kinds)
}

// NewInjector builds the runtime injector for a validated spec. A nil
// or empty spec yields an injector that never injects (and is cheap:
// TransferFails short-circuits before touching the RNG).
func NewInjector(spec *Spec) *Injector {
	inj := &Injector{spec: spec, factor: 1}
	if spec == nil {
		return inj
	}
	inj.rng = rand.New(rand.NewSource(spec.Seed))
	inj.events = sortEventsByLayer(spec.Events)
	return inj
}

// ApplyLayer fires every event scheduled at or before the given layer
// that has not fired yet, in trigger order. BandwidthDegrade events
// update the injector's factor internally; bank events are returned
// for the pool owner to apply.
func (inj *Injector) ApplyLayer(layer int) []Event {
	if inj == nil || inj.next >= len(inj.events) {
		return nil
	}
	var bank []Event
	for inj.next < len(inj.events) && inj.events[inj.next].Layer <= layer {
		e := inj.events[inj.next]
		inj.next++
		inj.injected++
		if e.Kind == BandwidthDegrade {
			inj.factor = e.Factor
			continue
		}
		bank = append(bank, e)
	}
	return bank
}

// Factor is the current effective bandwidth multiplier in (0, 1]; 1
// means nominal bandwidth.
func (inj *Injector) Factor() float64 {
	if inj == nil {
		return 1
	}
	return inj.factor
}

// TransferFails draws whether one DMA transfer attempt fails. Each
// call consumes RNG state only when a failure probability is set.
func (inj *Injector) TransferFails() bool {
	if inj == nil || inj.spec == nil || inj.spec.DropProb == 0 {
		return false
	}
	return inj.rng.Float64() < inj.spec.DropProb
}

// Pick returns a seeded-uniform integer in [0, n); used to choose
// victim banks when an event does not name them explicitly.
func (inj *Injector) Pick(n int) int {
	if inj == nil || inj.rng == nil || n <= 0 {
		return 0
	}
	return inj.rng.Intn(n)
}

// Injected is the number of events fired so far (bank events plus
// bandwidth changes; per-transfer DMA failures are counted by the
// DMA retry path, not here).
func (inj *Injector) Injected() int64 {
	if inj == nil {
		return 0
	}
	return inj.injected
}

// Pending reports how many scheduled events have not fired yet —
// useful post-run to detect a plan whose trigger layers were past the
// end of the network.
func (inj *Injector) Pending() int {
	if inj == nil {
		return 0
	}
	return len(inj.events) - inj.next
}
