// Package fault is the simulator's deterministic fault-injection
// engine. It models the adversity a deployed accelerator meets —
// SRAM banks going bad, DMA transfers failing transiently, the DRAM
// channel losing effective bandwidth — as a seeded, reproducible plan
// that the scheduler in internal/core executes against.
//
// The hardware model behind each fault kind:
//
//   - Bank hard failure (predictive retirement). Error-counting logic
//     flags a bank whose correctable-error rate crossed the retirement
//     threshold. The bank is still readable when flagged, so the
//     controller migrates its contents — to a spare free bank when one
//     exists, otherwise by spilling the tail of the affected logical
//     buffer to DRAM (procedure P5 applied to a shrinking pool) — and
//     then retires the bank from service for the rest of the run.
//   - Bank transient error. A correctable (SECDED) upset: data is
//     repaired in place by the scrub pass; the run pays the scrub
//     cycles but no data is lost.
//   - DMA transient failure. A transfer attempt fails (CRC/ECC retry
//     on the link); the DMA engine re-issues it with exponential
//     backoff. Cycle cost is modeled; payload traffic counters are
//     not inflated (the bytes eventually arrive once).
//   - Bandwidth degradation. The effective feature-map channel
//     bandwidth drops to a fraction of nominal (thermal throttling,
//     refresh storms, a neighbor stealing the bus).
//
// Everything is driven by Spec — either parsed from the compact CLI
// grammar (see ParseSpec) or constructed programmatically — and
// replayed by an Injector whose randomness comes from the spec's seed
// only, so every faulty run is exactly reproducible.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// BankFail is a hard SRAM bank failure: the bank is retired from
	// the pool for the rest of the run (predictive retirement; its
	// contents are migrated first).
	BankFail Kind = iota
	// BankTransient is a correctable SRAM upset: scrub cycles are
	// charged, no data is lost.
	BankTransient
	// DMATransient makes DMA transfer attempts fail with the spec's
	// probability; the DMA engine retries with exponential backoff.
	DMATransient
	// BandwidthDegrade drops the effective feature-map channel
	// bandwidth to Factor times nominal from the trigger layer on.
	BandwidthDegrade
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case BankFail:
		return "bank-fail"
	case BankTransient:
		return "bank-transient"
	case DMATransient:
		return "dma-transient"
	case BandwidthDegrade:
		return "bw-degrade"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one scheduled fault. Bank events fire when the layer with
// index Layer starts executing; events whose layer never executes
// (index past the end of the network) simply never fire.
type Event struct {
	Kind Kind `json:"kind"`
	// Layer is the trigger: the event fires when the layer with this
	// index begins.
	Layer int `json:"layer"`
	// Count is how many banks the event affects (BankFail and
	// BankTransient with randomly chosen victims).
	Count int `json:"count,omitempty"`
	// Banks optionally names explicit victim banks instead of seeded
	// random choice.
	Banks []int `json:"banks,omitempty"`
	// Factor is the bandwidth multiplier of a BandwidthDegrade event,
	// in (0, 1].
	Factor float64 `json:"factor,omitempty"`
}

// Spec is a complete fault plan: the RNG seed, the per-transfer DMA
// failure probability, and the scheduled bank/bandwidth events.
type Spec struct {
	// Seed drives every random choice (victim banks, transfer-failure
	// draws). The same spec always produces the same faulty run.
	Seed int64 `json:"seed"`
	// DropProb is the probability that any single DMA transfer attempt
	// fails and must be retried, in [0, 1).
	DropProb float64 `json:"drop_prob,omitempty"`
	// Events are the scheduled faults, fired at layer boundaries.
	Events []Event `json:"events,omitempty"`
}

// maxEventBanks bounds Count so a malformed spec cannot make the
// executor loop over billions of victims.
const maxEventBanks = 1 << 16

// Validate checks the plan before a simulation accepts it.
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	if s.DropProb < 0 || s.DropProb >= 1 {
		return fmt.Errorf("fault: drop probability %g outside [0, 1)", s.DropProb)
	}
	for i, e := range s.Events {
		if e.Layer < 0 {
			return fmt.Errorf("fault: event %d (%s) has negative trigger layer %d", i, e.Kind, e.Layer)
		}
		switch e.Kind {
		case BankFail, BankTransient:
			n := e.Count
			if len(e.Banks) > 0 {
				n = len(e.Banks)
			}
			if n <= 0 {
				return fmt.Errorf("fault: event %d (%s) affects no banks", i, e.Kind)
			}
			if n > maxEventBanks {
				return fmt.Errorf("fault: event %d (%s) affects %d banks (max %d)", i, e.Kind, n, maxEventBanks)
			}
			for _, b := range e.Banks {
				if b < 0 {
					return fmt.Errorf("fault: event %d (%s) names negative bank %d", i, e.Kind, b)
				}
			}
		case BandwidthDegrade:
			if e.Factor <= 0 || e.Factor > 1 {
				return fmt.Errorf("fault: event %d (%s) factor %g outside (0, 1]", i, e.Kind, e.Factor)
			}
		default:
			return fmt.Errorf("fault: event %d has unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// Empty reports whether the spec injects nothing.
func (s *Spec) Empty() bool {
	return s == nil || (s.DropProb == 0 && len(s.Events) == 0)
}

// String renders the spec in the grammar ParseSpec reads, so a spec
// round-trips through the CLI flag.
func (s *Spec) String() string {
	if s == nil {
		return ""
	}
	parts := []string{fmt.Sprintf("seed=%d", s.Seed)}
	if s.DropProb > 0 {
		parts = append(parts, fmt.Sprintf("dma-drop:p=%g", s.DropProb))
	}
	for _, e := range s.Events {
		switch e.Kind {
		case BankFail, BankTransient:
			name := "bank-fail"
			if e.Kind == BankTransient {
				name = "bank-transient"
			}
			if len(e.Banks) > 0 {
				strs := make([]string, len(e.Banks))
				for i, b := range e.Banks {
					strs[i] = strconv.Itoa(b)
				}
				parts = append(parts, fmt.Sprintf("%s@%d:bank=%s", name, e.Layer, strings.Join(strs, ",")))
			} else {
				parts = append(parts, fmt.Sprintf("%s@%d:n=%d", name, e.Layer, e.Count))
			}
		case BandwidthDegrade:
			parts = append(parts, fmt.Sprintf("bw-degrade@%d:factor=%g", e.Layer, e.Factor))
		}
	}
	return strings.Join(parts, ";")
}

// ParseSpec reads the compact fault grammar used by the -faults CLI
// flag: semicolon-separated clauses, each a fault kind with an
// optional "@layer" trigger and ":key=value" parameters.
//
//	seed=42                         RNG seed (default 1)
//	bank-fail@4:n=3                 retire 3 random banks when layer 4 starts
//	bank-fail@4:bank=7,9            retire banks 7 and 9
//	bank-transient@6:n=2            2 correctable upsets at layer 6
//	dma-drop:p=0.05                 every DMA attempt fails with p=0.05
//	bw-degrade@10:factor=0.5        half bandwidth from layer 10 on
//
// Example: "seed=7;bank-fail@4:n=3;dma-drop:p=0.02;bw-degrade@10:factor=0.5".
// The returned spec is validated; malformed input yields an error,
// never a panic.
func ParseSpec(s string) (*Spec, error) {
	spec := &Spec{Seed: 1}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q: %v", v, err)
			}
			spec.Seed = seed
			continue
		}
		head, params, _ := strings.Cut(clause, ":")
		name, layerStr, hasLayer := strings.Cut(head, "@")
		layer := 0
		if hasLayer {
			var err error
			layer, err = strconv.Atoi(layerStr)
			if err != nil {
				return nil, fmt.Errorf("fault: bad trigger layer %q in %q: %v", layerStr, clause, err)
			}
		}
		kv, err := parseParams(params)
		if err != nil {
			return nil, fmt.Errorf("fault: %q: %v", clause, err)
		}
		switch name {
		case "bank-fail", "bank-transient":
			kind := BankFail
			if name == "bank-transient" {
				kind = BankTransient
			}
			ev := Event{Kind: kind, Layer: layer, Count: 1}
			if v, ok := kv["n"]; ok {
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, fmt.Errorf("fault: %q: bad count %q: %v", clause, v, err)
				}
				ev.Count = n
			}
			if v, ok := kv["bank"]; ok {
				for _, b := range strings.Split(v, ",") {
					id, err := strconv.Atoi(strings.TrimSpace(b))
					if err != nil {
						return nil, fmt.Errorf("fault: %q: bad bank %q: %v", clause, b, err)
					}
					ev.Banks = append(ev.Banks, id)
				}
				ev.Count = 0
			}
			spec.Events = append(spec.Events, ev)
		case "dma-drop":
			v, ok := kv["p"]
			if !ok {
				return nil, fmt.Errorf("fault: %q needs p=<prob>", clause)
			}
			p, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: %q: bad probability %q: %v", clause, v, err)
			}
			spec.DropProb = p
		case "bw-degrade":
			v, ok := kv["factor"]
			if !ok {
				return nil, fmt.Errorf("fault: %q needs factor=<0..1>", clause)
			}
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: %q: bad factor %q: %v", clause, v, err)
			}
			spec.Events = append(spec.Events, Event{Kind: BandwidthDegrade, Layer: layer, Factor: f})
		default:
			return nil, fmt.Errorf("fault: unknown clause %q (want seed=, bank-fail, bank-transient, dma-drop, bw-degrade)", clause)
		}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// parseParams splits "k=v,k=v" (bank=7,9 keeps the comma list as the
// value of the last key).
func parseParams(s string) (map[string]string, error) {
	kv := make(map[string]string)
	if s == "" {
		return kv, nil
	}
	key := ""
	for _, part := range strings.Split(s, ",") {
		if k, v, ok := strings.Cut(part, "="); ok {
			key = strings.TrimSpace(k)
			if key == "" {
				return nil, fmt.Errorf("empty parameter name in %q", s)
			}
			kv[key] = strings.TrimSpace(v)
		} else {
			// Continuation of a comma-separated value (bank lists).
			if key == "" {
				return nil, fmt.Errorf("parameter %q has no key", part)
			}
			kv[key] += "," + strings.TrimSpace(part)
		}
	}
	return kv, nil
}

// UniformBankFailures builds the standard E22 plan: n bank failures
// split across two trigger layers (early and mid-network) so the pool
// shrinks while shortcut data is pinned, exercising relocation and
// P5 spill, all under the given seed.
func UniformBankFailures(seed int64, n, earlyLayer, midLayer int) *Spec {
	s := &Spec{Seed: seed}
	if n <= 0 {
		return s
	}
	first := (n + 1) / 2
	s.Events = append(s.Events, Event{Kind: BankFail, Layer: earlyLayer, Count: first})
	if rest := n - first; rest > 0 {
		s.Events = append(s.Events, Event{Kind: BankFail, Layer: midLayer, Count: rest})
	}
	return s
}

// sortEventsByLayer orders a copy of the events by trigger layer
// (stable: same-layer events keep spec order).
func sortEventsByLayer(events []Event) []Event {
	out := append([]Event(nil), events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Layer < out[j].Layer })
	return out
}
