package fault

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestParseSpecFull(t *testing.T) {
	spec, err := ParseSpec("seed=7; bank-fail@4:n=3; bank-fail@9:bank=7,9; bank-transient@6:n=2; dma-drop:p=0.05; bw-degrade@10:factor=0.5")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.Seed != 7 {
		t.Errorf("seed = %d, want 7", spec.Seed)
	}
	if spec.DropProb != 0.05 {
		t.Errorf("drop prob = %g, want 0.05", spec.DropProb)
	}
	if len(spec.Events) != 4 {
		t.Fatalf("events = %d, want 4", len(spec.Events))
	}
	if e := spec.Events[0]; e.Kind != BankFail || e.Layer != 4 || e.Count != 3 {
		t.Errorf("event 0 = %+v", e)
	}
	if e := spec.Events[1]; e.Kind != BankFail || e.Layer != 9 || len(e.Banks) != 2 || e.Banks[0] != 7 || e.Banks[1] != 9 {
		t.Errorf("event 1 = %+v", e)
	}
	if e := spec.Events[2]; e.Kind != BankTransient || e.Layer != 6 || e.Count != 2 {
		t.Errorf("event 2 = %+v", e)
	}
	if e := spec.Events[3]; e.Kind != BandwidthDegrade || e.Layer != 10 || e.Factor != 0.5 {
		t.Errorf("event 3 = %+v", e)
	}
}

func TestParseSpecDefaults(t *testing.T) {
	spec, err := ParseSpec("bank-fail@2")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.Seed != 1 {
		t.Errorf("default seed = %d, want 1", spec.Seed)
	}
	if len(spec.Events) != 1 || spec.Events[0].Count != 1 {
		t.Errorf("events = %+v, want one single-bank failure", spec.Events)
	}
	if spec.Events[0].Layer != 2 {
		t.Errorf("layer = %d, want 2", spec.Events[0].Layer)
	}
}

func TestParseSpecEmpty(t *testing.T) {
	spec, err := ParseSpec("")
	if err != nil {
		t.Fatalf("ParseSpec(\"\"): %v", err)
	}
	if !spec.Empty() {
		t.Errorf("empty input should produce an empty spec, got %+v", spec)
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"bogus-clause",
		"seed=abc",
		"bank-fail@x:n=1",
		"bank-fail@2:n=zero",
		"bank-fail@2:n=0",
		"bank-fail@2:n=-3",
		"bank-fail@2:n=999999999",
		"bank-fail@-1:n=1",
		"bank-fail@2:bank=-4",
		"dma-drop",
		"dma-drop:p=1.5",
		"dma-drop:p=-0.1",
		"dma-drop:p=nope",
		"bw-degrade@3",
		"bw-degrade@3:factor=0",
		"bw-degrade@3:factor=2",
		"bank-fail@2:=5",
		"bank-fail@2:1,2",
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) = nil error, want failure", s)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for _, s := range []string{
		"seed=7;dma-drop:p=0.05;bank-fail@4:n=3;bank-fail@9:bank=7,9;bw-degrade@10:factor=0.5",
		"seed=1",
		"seed=42;bank-transient@0:n=2",
	} {
		spec, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		again, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("reparse of %q (= %q): %v", s, spec.String(), err)
		}
		j1, _ := json.Marshal(spec)
		j2, _ := json.Marshal(again)
		if string(j1) != string(j2) {
			t.Errorf("round trip of %q changed spec:\n  first  %s\n  second %s", s, j1, j2)
		}
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	spec, err := ParseSpec("seed=9;bank-fail@3:n=2;dma-drop:p=0.1;bw-degrade@5:factor=0.25")
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Errorf("unmarshaled spec fails validation: %v", err)
	}
	if back.Seed != 9 || back.DropProb != 0.1 || len(back.Events) != 2 {
		t.Errorf("round trip lost data: %+v", back)
	}
}

func TestInjectorDeterminism(t *testing.T) {
	spec, err := ParseSpec("seed=5;dma-drop:p=0.3;bank-fail@2:n=2;bw-degrade@4:factor=0.5")
	if err != nil {
		t.Fatal(err)
	}
	run := func() ([]int, []bool) {
		inj := NewInjector(spec)
		var picks []int
		var fails []bool
		for layer := 0; layer < 6; layer++ {
			inj.ApplyLayer(layer)
			picks = append(picks, inj.Pick(34))
			fails = append(fails, inj.TransferFails())
		}
		return picks, fails
	}
	p1, f1 := run()
	p2, f2 := run()
	for i := range p1 {
		if p1[i] != p2[i] || f1[i] != f2[i] {
			t.Fatalf("run diverged at step %d: picks %v vs %v, fails %v vs %v", i, p1, p2, f1, f2)
		}
	}
}

func TestInjectorApplyLayer(t *testing.T) {
	spec, err := ParseSpec("seed=1;bank-fail@2:n=1;bank-transient@2:n=3;bw-degrade@3:factor=0.5;bank-fail@5:n=2")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(spec)
	if ev := inj.ApplyLayer(0); len(ev) != 0 {
		t.Errorf("layer 0 fired %d events, want 0", len(ev))
	}
	if f := inj.Factor(); f != 1 {
		t.Errorf("factor before degrade = %g, want 1", f)
	}
	ev := inj.ApplyLayer(2)
	if len(ev) != 2 || ev[0].Kind != BankFail || ev[1].Kind != BankTransient {
		t.Errorf("layer 2 events = %+v, want bank-fail then bank-transient", ev)
	}
	// Skipping a layer still fires its events at the next boundary.
	ev = inj.ApplyLayer(4)
	if len(ev) != 0 {
		t.Errorf("layer 4 bank events = %+v, want none (degrade only)", ev)
	}
	if f := inj.Factor(); f != 0.5 {
		t.Errorf("factor after degrade = %g, want 0.5", f)
	}
	ev = inj.ApplyLayer(5)
	if len(ev) != 1 || ev[0].Count != 2 {
		t.Errorf("layer 5 events = %+v, want one 2-bank failure", ev)
	}
	if inj.Pending() != 0 {
		t.Errorf("pending = %d, want 0", inj.Pending())
	}
	if inj.Injected() != 4 {
		t.Errorf("injected = %d, want 4", inj.Injected())
	}
}

func TestNilInjector(t *testing.T) {
	var inj *Injector
	if inj.TransferFails() || inj.Factor() != 1 || inj.ApplyLayer(3) != nil || inj.Pick(5) != 0 {
		t.Error("nil injector must be inert")
	}
	empty := NewInjector(nil)
	if empty.TransferFails() || empty.Factor() != 1 || empty.ApplyLayer(3) != nil {
		t.Error("nil-spec injector must be inert")
	}
}

func TestUniformBankFailures(t *testing.T) {
	s := UniformBankFailures(42, 8, 2, 8)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, e := range s.Events {
		if e.Kind != BankFail {
			t.Errorf("unexpected kind %v", e.Kind)
		}
		total += e.Count
	}
	if total != 8 {
		t.Errorf("total failed banks = %d, want 8", total)
	}
	if s.Events[0].Layer != 2 || s.Events[1].Layer != 8 {
		t.Errorf("trigger layers = %d, %d; want 2, 8", s.Events[0].Layer, s.Events[1].Layer)
	}
	if zero := UniformBankFailures(42, 0, 2, 8); !zero.Empty() {
		t.Errorf("n=0 plan should be empty, got %+v", zero)
	}
	if one := UniformBankFailures(42, 1, 2, 8); len(one.Events) != 1 || one.Events[0].Count != 1 {
		t.Errorf("n=1 plan = %+v, want single event", one)
	}
}

func TestRunError(t *testing.T) {
	cause := errors.New("bank 7 still owned")
	re := Errf(Fatal, CheckBankLeak, "conv4", "post-run leak: %w", cause)
	if !errors.Is(re, cause) {
		t.Error("RunError must unwrap to its cause")
	}
	got, ok := AsRunError(fmt_wrap(re))
	if !ok || got.Check != CheckBankLeak || got.Severity != Fatal {
		t.Errorf("AsRunError = %+v, %v", got, ok)
	}
	msg := re.Error()
	for _, want := range []string{"fatal", CheckBankLeak, "conv4", "bank 7"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error message %q missing %q", msg, want)
		}
	}
	if _, ok := AsRunError(errors.New("plain")); ok {
		t.Error("plain error must not convert to RunError")
	}
}

// fmt_wrap adds one layer of %w wrapping.
func fmt_wrap(err error) error { return errors.Join(errors.New("outer"), err) }

func TestWatchdog(t *testing.T) {
	var w Watchdog
	if w.Attempts() != DefaultMaxDMAAttempts {
		t.Errorf("default attempts = %d, want %d", w.Attempts(), DefaultMaxDMAAttempts)
	}
	if err := w.CheckLayer("conv1", 1<<40); err != nil {
		t.Errorf("disabled watchdog flagged a layer: %v", err)
	}
	w = Watchdog{MaxDMAAttempts: 3, MaxLayerCycles: 1000}
	if w.Attempts() != 3 {
		t.Errorf("attempts = %d, want 3", w.Attempts())
	}
	if err := w.CheckLayer("conv1", 1000); err != nil {
		t.Errorf("at-bound layer flagged: %v", err)
	}
	err := w.CheckLayer("conv1", 1001)
	if err == nil {
		t.Fatal("over-bound layer not flagged")
	}
	if err.Check != CheckLiveness || err.Severity != Fatal {
		t.Errorf("liveness error = %+v", err)
	}
}

func TestValidateBounds(t *testing.T) {
	var nilSpec *Spec
	if err := nilSpec.Validate(); err != nil {
		t.Errorf("nil spec must validate: %v", err)
	}
	s := &Spec{Events: []Event{{Kind: Kind(99), Count: 1}}}
	if err := s.Validate(); err == nil {
		t.Error("unknown kind must fail validation")
	}
	s = &Spec{Events: []Event{{Kind: BankFail, Banks: make([]int, maxEventBanks+1)}}}
	if err := s.Validate(); err == nil {
		t.Error("oversized bank list must fail validation")
	}
}
