package fault

import (
	"strings"
	"testing"
)

// FuzzParseSpec asserts the CLI grammar's core contract: arbitrary
// input yields either a validated spec or an error — never a panic —
// and every accepted spec survives a String() round trip.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		"",
		"seed=42",
		"seed=7;bank-fail@4:n=3",
		"bank-fail@9:bank=7,9",
		"bank-transient@6:n=2",
		"dma-drop:p=0.05",
		"bw-degrade@10:factor=0.5",
		"seed=7;bank-fail@4:n=3;dma-drop:p=0.02;bw-degrade@10:factor=0.5",
		"seed=-1;bank-fail@0:n=1",
		" seed=1 ; bank-fail@2:n=1 ; ",
		"bank-fail@2:n=1;;;",
		"bogus",
		"dma-drop:p=1.5",
		"bank-fail@2:bank=1,2,3,4,5",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		spec, err := ParseSpec(input)
		if err != nil {
			if spec != nil {
				t.Errorf("ParseSpec(%q) returned both a spec and an error", input)
			}
			return
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("ParseSpec(%q) returned invalid spec: %v", input, err)
		}
		// Accepted specs must round-trip through the printed grammar.
		printed := spec.String()
		again, err := ParseSpec(printed)
		if err != nil {
			t.Fatalf("reparse of %q (from %q) failed: %v", printed, input, err)
		}
		if again.String() != printed {
			t.Errorf("round trip unstable: %q -> %q -> %q", input, printed, again.String())
		}
		// The injector must not blow up replaying any accepted spec.
		inj := NewInjector(spec)
		for layer := 0; layer < 4; layer++ {
			inj.ApplyLayer(layer)
			inj.TransferFails()
			if f := inj.Factor(); f <= 0 || f > 1 {
				t.Errorf("factor %g outside (0,1] for %q", f, input)
			}
		}
		_ = strings.TrimSpace(printed)
	})
}
