package nn

import (
	"strings"
	"testing"

	"shortcutmining/internal/tensor"
)

func small() tensor.Shape { return tensor.Shape{C: 8, H: 16, W: 16} }

func TestBuilderLinearNetwork(t *testing.T) {
	b := NewBuilder("lin", small())
	x := b.Conv("c1", b.InputName(), 16, 3, 1, 1)
	x = b.Pool("p1", x, MaxPool, 2, 2, 0)
	x = b.Conv("c2", x, 32, 3, 1, 1)
	x = b.GlobalPool("gp", x)
	b.FC("fc", x, 10)
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Layers) != 6 {
		t.Fatalf("got %d layers, want 6", len(n.Layers))
	}
	want := []tensor.Shape{
		{C: 8, H: 16, W: 16},
		{C: 16, H: 16, W: 16},
		{C: 16, H: 8, W: 8},
		{C: 32, H: 8, W: 8},
		{C: 32, H: 1, W: 1},
		{C: 10, H: 1, W: 1},
	}
	for i, l := range n.Layers {
		if l.Out != want[i] {
			t.Errorf("layer %s out = %v, want %v", l.Name, l.Out, want[i])
		}
		if l.Index != i {
			t.Errorf("layer %s index = %d, want %d", l.Name, l.Index, i)
		}
	}
}

func TestBuilderResidualShapes(t *testing.T) {
	b := NewBuilder("res", small())
	x := b.Conv("c1", b.InputName(), 8, 3, 1, 1)
	y := b.Conv("c2", x, 8, 3, 1, 1)
	y = b.Conv("c3", y, 8, 3, 1, 1)
	sum := b.Add("add", x, y)
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Layer(sum).Out; got != (tensor.Shape{C: 8, H: 16, W: 16}) {
		t.Errorf("add out = %v", got)
	}
	if got := len(n.Layer(sum).In); got != 2 {
		t.Errorf("add arity = %d", got)
	}
}

func TestBuilderConcatShapes(t *testing.T) {
	b := NewBuilder("cat", small())
	a := b.Conv("a", b.InputName(), 4, 1, 1, 0)
	c := b.Conv("c", b.InputName(), 12, 1, 1, 0)
	cat := b.Concat("cat", a, c)
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Layer(cat).Out; got != (tensor.Shape{C: 16, H: 16, W: 16}) {
		t.Errorf("concat out = %v", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *Builder)
		want  string
	}{
		{
			name:  "unknown input",
			build: func(b *Builder) { b.Conv("c", "ghost", 8, 3, 1, 1) },
			want:  "unknown layer",
		},
		{
			name: "duplicate name",
			build: func(b *Builder) {
				b.Conv("c", b.InputName(), 8, 3, 1, 1)
				b.Conv("c", b.InputName(), 8, 3, 1, 1)
			},
			want: "duplicate layer name",
		},
		{
			name:  "bad conv geometry",
			build: func(b *Builder) { b.Conv("c", b.InputName(), 8, 0, 1, 1) },
			want:  "bad conv geometry",
		},
		{
			name:  "bad pad",
			build: func(b *Builder) { b.Conv("c", b.InputName(), 8, 3, 1, -1) },
			want:  "bad conv geometry",
		},
		{
			name: "add shape mismatch",
			build: func(b *Builder) {
				a := b.Conv("a", b.InputName(), 8, 3, 1, 1)
				c := b.Conv("c", b.InputName(), 16, 3, 1, 1)
				b.Add("add", a, c)
			},
			want: "shape mismatch",
		},
		{
			name: "add single input",
			build: func(b *Builder) {
				a := b.Conv("a", b.InputName(), 8, 3, 1, 1)
				b.Add("add", a)
			},
			want: "at least two inputs",
		},
		{
			name: "concat spatial mismatch",
			build: func(b *Builder) {
				a := b.Conv("a", b.InputName(), 8, 3, 1, 1)
				c := b.Conv("c", b.InputName(), 8, 3, 2, 1)
				b.Concat("cat", a, c)
			},
			want: "spatial mismatch",
		},
		{
			name:  "empty name",
			build: func(b *Builder) { b.Conv("", b.InputName(), 8, 3, 1, 1) },
			want:  "empty name",
		},
		{
			name:  "window collapses output",
			build: func(b *Builder) { b.Pool("p", b.InputName(), MaxPool, 32, 1, 0) },
			want:  "invalid output shape",
		},
		{
			name:  "no layers",
			build: func(b *Builder) {},
			want:  "no layers",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := NewBuilder("bad", small())
			c.build(b)
			_, err := b.Finish()
			if err == nil {
				t.Fatalf("expected error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestBuilderFirstErrorWins(t *testing.T) {
	b := NewBuilder("bad", small())
	b.Conv("c", "ghost", 8, 3, 1, 1)       // first error
	b.Conv("c", b.InputName(), 0, 3, 1, 1) // would be a different error
	_, err := b.Finish()
	if err == nil || !strings.Contains(err.Error(), "unknown layer") {
		t.Fatalf("expected first error to be reported, got %v", err)
	}
}

func TestConsumersAndLastUse(t *testing.T) {
	b := NewBuilder("res", small())
	x := b.Conv("c1", b.InputName(), 8, 3, 1, 1) // index 1
	y := b.Conv("c2", x, 8, 3, 1, 1)             // index 2
	y = b.Conv("c3", y, 8, 3, 1, 1)              // index 3
	b.Add("add", x, y)                           // index 4
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	got := n.Consumers(1)
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("Consumers(c1) = %v, want [2 4]", got)
	}
	if lu := n.LastUse(1); lu != 4 {
		t.Errorf("LastUse(c1) = %d, want 4", lu)
	}
	if lu := n.LastUse(4); lu != 4 {
		t.Errorf("LastUse(add) = %d, want 4 (self)", lu)
	}
}

func TestLayerMACs(t *testing.T) {
	b := NewBuilder("macs", tensor.Shape{C: 3, H: 8, W: 8})
	conv := b.Conv("c", b.InputName(), 16, 3, 1, 1)
	gp := b.GlobalPool("gp", conv)
	fc := b.FC("fc", gp, 10)
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := n.Layer(conv).MACs(), int64(16*8*8*3*3*3); got != want {
		t.Errorf("conv MACs = %d, want %d", got, want)
	}
	if got, want := n.Layer(fc).MACs(), int64(16*10); got != want {
		t.Errorf("fc MACs = %d, want %d", got, want)
	}
	if got, want := n.TotalMACs(), int64(16*8*8*3*3*3+16*10); got != want {
		t.Errorf("TotalMACs = %d, want %d", got, want)
	}
}

func TestLayerWeightBytes(t *testing.T) {
	b := NewBuilder("w", tensor.Shape{C: 3, H: 8, W: 8})
	conv := b.Conv("c", b.InputName(), 16, 3, 1, 1)
	pool := b.Pool("p", conv, MaxPool, 2, 2, 0)
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := n.Layer(conv).WeightBytes(tensor.Fixed16), int64(16*3*3*3*2); got != want {
		t.Errorf("conv weights = %d, want %d", got, want)
	}
	if got := n.Layer(pool).WeightBytes(tensor.Fixed16); got != 0 {
		t.Errorf("pool weights = %d, want 0", got)
	}
}

func TestValidateCatchesTampering(t *testing.T) {
	n := MustResNet(18)
	if err := n.Validate(); err != nil {
		t.Fatalf("fresh network invalid: %v", err)
	}
	// Corrupt the index of one layer.
	n.Layers[3].Index = 99
	if err := n.Validate(); err == nil {
		t.Error("Validate missed corrupted index")
	}
	n.Layers[3].Index = 3
	// Corrupt an input reference to point forward.
	saved := n.Layers[3].Inputs
	n.Layers[3].Inputs = []string{n.Layers[10].Name}
	n.Layers[3].In = []tensor.Shape{n.Layers[10].Out}
	if err := n.Validate(); err == nil {
		t.Error("Validate missed non-topological input")
	}
	n.Layers[3].Inputs = saved
}

func TestStagesAndCounts(t *testing.T) {
	n := MustResNet(34)
	stages := n.Stages()
	want := []string{"stem", "layer1", "layer2", "layer3", "layer4", "head"}
	if len(stages) != len(want) {
		t.Fatalf("stages = %v", stages)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Errorf("stage[%d] = %q, want %q", i, stages[i], want[i])
		}
	}
	counts := n.SortedStageCounts()
	total := 0
	for _, c := range counts {
		total += c.Count
	}
	if total != len(n.Layers)-1 { // input has no stage
		t.Errorf("stage counts cover %d layers, want %d", total, len(n.Layers)-1)
	}
}

func TestNames(t *testing.T) {
	n := MustResNet(18)
	names := n.Names()
	if len(names) != len(n.Layers) {
		t.Fatalf("Names length %d != %d", len(names), len(n.Layers))
	}
	if names[0] != "input" {
		t.Errorf("first name = %q", names[0])
	}
	seen := map[string]bool{}
	for _, nm := range names {
		if seen[nm] {
			t.Errorf("duplicate name %q", nm)
		}
		seen[nm] = true
	}
}

func TestOpKindStrings(t *testing.T) {
	kinds := map[OpKind]string{
		OpInput: "input", OpConv: "conv", OpPool: "pool",
		OpGlobalPool: "gpool", OpFC: "fc", OpEltwiseAdd: "add", OpConcat: "concat",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if MaxPool.String() != "max" || AvgPool.String() != "avg" {
		t.Error("PoolKind strings wrong")
	}
}
