package nn

import "fmt"

// DenseNet121 builds the ImageNet DenseNet-121: four dense blocks
// (6/12/24/16 bottleneck layers, growth 32) joined by 1x1+avgpool
// transitions. Every layer's input is the concatenation of its block
// input and all previous layers in the block, so a single feature map
// can have dozens of consumers spread across dozens of layers — the
// most demanding multi-consumer retention workload in the zoo and the
// stress case for the concat-transparent consumption planner.
func DenseNet121() (*Network, error) {
	const growth = 32
	blocks := []int{6, 12, 24, 16}

	b := NewBuilder("densenet121", imageNetInput)
	b.SetStage("stem")
	x := b.Conv("conv1", b.InputName(), 64, 7, 2, 3)
	x = b.Pool("pool1", x, MaxPool, 3, 2, 1)

	channels := 64
	for bi, layers := range blocks {
		b.SetStage(fmt.Sprintf("block%d", bi+1))
		feats := []string{x}
		for li := 0; li < layers; li++ {
			prefix := fmt.Sprintf("block%d.%d", bi+1, li+1)
			in := feats[0]
			if len(feats) > 1 {
				in = b.Concat(prefix+".concat_in", feats...)
			}
			y := b.Conv(prefix+".bottleneck", in, 4*growth, 1, 1, 0)
			y = b.Conv(prefix+".conv", y, growth, 3, 1, 1)
			feats = append(feats, y)
		}
		channels += layers * growth
		x = b.Concat(fmt.Sprintf("block%d.out", bi+1), feats...)
		if bi < len(blocks)-1 {
			b.SetStage(fmt.Sprintf("transition%d", bi+1))
			channels /= 2
			x = b.Conv(fmt.Sprintf("trans%d.conv", bi+1), x, channels, 1, 1, 0)
			x = b.Pool(fmt.Sprintf("trans%d.pool", bi+1), x, AvgPool, 2, 2, 0)
		}
	}
	b.SetStage("head")
	x = b.GlobalPool("avgpool", x)
	b.FC("fc", x, 1000)
	return b.Finish()
}
