package nn

import (
	"testing"

	"shortcutmining/internal/tensor"
)

func TestEdgesLinearChain(t *testing.T) {
	b := NewBuilder("lin", small())
	x := b.Conv("c1", b.InputName(), 8, 3, 1, 1)
	x = b.Conv("c2", x, 8, 3, 1, 1)
	b.Conv("c3", x, 8, 3, 1, 1)
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	edges := Edges(n, tensor.Fixed16)
	if len(edges) != 3 {
		t.Fatalf("got %d edges, want 3", len(edges))
	}
	for _, e := range edges {
		if e.Shortcut {
			t.Errorf("linear chain edge %d→%d flagged as shortcut", e.Producer, e.Consumer)
		}
		if e.Consumer != e.Producer+1 {
			t.Errorf("edge %d→%d not adjacent", e.Producer, e.Consumer)
		}
		if e.Span() != 0 {
			t.Errorf("edge span = %d, want 0", e.Span())
		}
	}
}

func TestEdgesResidual(t *testing.T) {
	b := NewBuilder("res", small())
	x := b.Conv("c1", b.InputName(), 8, 3, 1, 1) // 1
	y := b.Conv("c2", x, 8, 3, 1, 1)             // 2
	y = b.Conv("c3", y, 8, 3, 1, 1)              // 3
	b.Add("add", x, y)                           // 4
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	sc := ShortcutEdges(n, tensor.Fixed16)
	if len(sc) != 1 {
		t.Fatalf("got %d shortcut edges, want 1", len(sc))
	}
	e := sc[0]
	if e.Producer != 1 || e.Consumer != 4 {
		t.Errorf("shortcut edge = %d→%d, want 1→4", e.Producer, e.Consumer)
	}
	if e.Span() != 2 {
		t.Errorf("span = %d, want 2", e.Span())
	}
	if want := n.Layers[1].Out.Bytes(tensor.Fixed16); e.Bytes != want {
		t.Errorf("edge bytes = %d, want %d", e.Bytes, want)
	}
}

func TestEdgeBytesScaleWithDtype(t *testing.T) {
	n := MustResNet(18)
	e16 := Edges(n, tensor.Fixed16)
	e32 := Edges(n, tensor.Float32)
	if len(e16) != len(e32) {
		t.Fatal("edge counts differ across dtypes")
	}
	for i := range e16 {
		if e32[i].Bytes != 2*e16[i].Bytes {
			t.Fatalf("edge %d: float32 bytes %d != 2×fixed16 %d", i, e32[i].Bytes, e16[i].Bytes)
		}
	}
}

func TestCharacterizeResidualAccounting(t *testing.T) {
	// One residual block with equal shapes S everywhere:
	// baseline reads = input S (image) + edges {input→c1, c1→c2, c2→c3,
	// c3→add, c1→add} = 6S; writes = 4 layer outputs = 4S.
	b := NewBuilder("res", small())
	x := b.Conv("c1", b.InputName(), 8, 3, 1, 1)
	y := b.Conv("c2", x, 8, 3, 1, 1)
	y = b.Conv("c3", y, 8, 3, 1, 1)
	b.Add("add", x, y)
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	s := small().Bytes(tensor.Fixed16)
	ch := Characterize(n, tensor.Fixed16)
	if ch.BaselineReads != 6*s {
		t.Errorf("reads = %d, want %d", ch.BaselineReads, 6*s)
	}
	if ch.BaselineWrites != 4*s {
		t.Errorf("writes = %d, want %d", ch.BaselineWrites, 4*s)
	}
	// Shortcut traffic = the c1→add read plus c1's attributed store.
	if ch.ShortcutTraffic != 2*s {
		t.Errorf("shortcut traffic = %d, want %d", ch.ShortcutTraffic, 2*s)
	}
	if ch.ShortcutShare != float64(2*s)/float64(10*s) {
		t.Errorf("shortcut share = %f", ch.ShortcutShare)
	}
	if ch.BaselineFmapTraffic() != 10*s {
		t.Errorf("total = %d", ch.BaselineFmapTraffic())
	}
	if ch.ShortcutEdges != 1 || ch.MaxSpan != 2 {
		t.Errorf("edges=%d span=%d", ch.ShortcutEdges, ch.MaxSpan)
	}
}

func TestCharacterizeSharedProducerStoreCountedOnce(t *testing.T) {
	// One producer feeding two shortcut consumers must have its store
	// attributed once, not twice.
	b := NewBuilder("shared", small())
	x := b.Conv("c1", b.InputName(), 8, 3, 1, 1) // 1
	y := b.Conv("c2", x, 8, 3, 1, 1)             // 2
	y = b.Conv("c3", y, 8, 3, 1, 1)              // 3
	a1 := b.Add("add1", x, y)                    // 4, shortcut x
	z := b.Conv("c4", a1, 8, 3, 1, 1)            // 5
	b.Add("add2", x, z)                          // 6, shortcut x again
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	s := small().Bytes(tensor.Fixed16)
	ch := Characterize(n, tensor.Fixed16)
	if ch.ShortcutEdges != 2 {
		t.Fatalf("shortcut edges = %d, want 2", ch.ShortcutEdges)
	}
	// Two shortcut reads + one attributed store.
	if ch.ShortcutTraffic != 3*s {
		t.Errorf("shortcut traffic = %d, want %d", ch.ShortcutTraffic, 3*s)
	}
}

func TestShortcutShareNearPaperClaim(t *testing.T) {
	// The abstract: shortcut data is "nearly 40% of the total feature
	// map data" for the residual networks evaluated. Check the model
	// zoo lands in a credible band around that.
	for _, name := range []string{"resnet34", "resnet152"} {
		ch := Characterize(MustBuild(name), tensor.Fixed16)
		if ch.ShortcutShare < 0.25 || ch.ShortcutShare > 0.55 {
			t.Errorf("%s shortcut share = %.1f%%, want 25–55%%", name, 100*ch.ShortcutShare)
		}
	}
	// Shortcut-free controls sit at zero.
	for _, name := range []string{"vgg16", "plain34"} {
		ch := Characterize(MustBuild(name), tensor.Fixed16)
		if ch.ShortcutTraffic != 0 {
			t.Errorf("%s shortcut traffic = %d, want 0", name, ch.ShortcutTraffic)
		}
	}
}

func TestAnalyzeLivenessLinear(t *testing.T) {
	b := NewBuilder("lin", small())
	x := b.Conv("c1", b.InputName(), 8, 3, 1, 1)
	b.Conv("c2", x, 8, 3, 1, 1)
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	lv := AnalyzeLiveness(n, tensor.Fixed16)
	s := small().Bytes(tensor.Fixed16)
	// At any step of a same-shape linear chain at most 2 fmaps are live.
	if lv.LivePeak != 2*s {
		t.Errorf("live peak = %d, want %d", lv.LivePeak, 2*s)
	}
	if lv.LastUse[0] != 1 || lv.LastUse[1] != 2 || lv.LastUse[2] != 2 {
		t.Errorf("last use = %v", lv.LastUse)
	}
}

func TestAnalyzeLivenessResidualNeedsThreeBuffers(t *testing.T) {
	b := NewBuilder("res", small())
	x := b.Conv("c1", b.InputName(), 8, 3, 1, 1)
	y := b.Conv("c2", x, 8, 3, 1, 1)
	y = b.Conv("c3", y, 8, 3, 1, 1)
	b.Add("add", x, y)
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	lv := AnalyzeLiveness(n, tensor.Fixed16)
	s := small().Bytes(tensor.Fixed16)
	// While c3 runs: x (pinned shortcut) + c2 output (input) + c3
	// output (being produced) are all live.
	if lv.LivePeak != 3*s {
		t.Errorf("live peak = %d, want %d", lv.LivePeak, 3*s)
	}
}

func TestLivenessPeakIndependentOfShortcutSpan(t *testing.T) {
	// The paper's "any number of intermediate layers without
	// additional buffer resources" claim at the liveness level: with
	// same-shape layers, the live peak does not grow with span.
	var first int64
	for span := 1; span <= 8; span++ {
		n, err := ShortcutSpanNet(span, 2, 16, 28)
		if err != nil {
			t.Fatal(err)
		}
		lv := AnalyzeLiveness(n, tensor.Fixed16)
		if span == 1 {
			first = lv.LivePeak
			continue
		}
		if lv.LivePeak != first {
			t.Errorf("span %d: live peak %d != span-1 peak %d", span, lv.LivePeak, first)
		}
	}
}
