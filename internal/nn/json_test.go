package nn

import (
	"bytes"
	"strings"
	"testing"

	"shortcutmining/internal/tensor"
)

func TestDecodeJSONResidualBlock(t *testing.T) {
	src := `{
	  "name": "jsonnet",
	  "input": {"c": 8, "h": 16, "w": 16},
	  "layers": [
	    {"name": "c1", "op": "conv", "inputs": ["input"], "out_channels": 8, "kernel": 3, "stride": 1, "pad": 1},
	    {"name": "c2", "op": "conv", "inputs": ["c1"], "out_channels": 8, "kernel": 3, "stride": 1, "pad": 1, "stage": "body"},
	    {"name": "sum", "op": "add", "inputs": ["c1", "c2"]},
	    {"name": "down", "op": "pool", "pool": "max", "inputs": ["sum"], "kernel": 2, "stride": 2},
	    {"name": "gap", "op": "gpool", "inputs": ["down"]},
	    {"name": "fc", "op": "fc", "inputs": ["gap"], "out_channels": 10}
	  ]
	}`
	n, err := DecodeJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "jsonnet" || len(n.Layers) != 7 {
		t.Fatalf("decoded %s with %d layers", n.Name, len(n.Layers))
	}
	if n.Layer("c2").Stage != "body" {
		t.Errorf("stage = %q", n.Layer("c2").Stage)
	}
	if got := n.Output().Out; got != (tensor.Shape{C: 10, H: 1, W: 1}) {
		t.Errorf("output = %v", got)
	}
	if len(ShortcutEdges(n, tensor.Fixed16)) != 1 {
		t.Error("shortcut edge lost in decoding")
	}
}

func TestDecodeJSONGroupedConvAndConcat(t *testing.T) {
	src := `{
	  "name": "g",
	  "input": {"c": 8, "h": 8, "w": 8},
	  "layers": [
	    {"name": "dw", "op": "conv", "inputs": ["input"], "out_channels": 8, "kernel": 3, "stride": 1, "pad": 1, "groups": 8},
	    {"name": "pw", "op": "conv", "inputs": ["dw"], "out_channels": 8, "kernel": 1, "stride": 1},
	    {"name": "cat", "op": "concat", "inputs": ["dw", "pw"]}
	  ]
	}`
	n, err := DecodeJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n.Layer("dw").NumGroups() != 8 {
		t.Error("groups lost")
	}
	if n.Layer("cat").Out.C != 16 {
		t.Errorf("concat channels = %d", n.Layer("cat").Out.C)
	}
}

func TestDecodeJSONErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"bad json", `{`, "decoding"},
		{"unknown field", `{"name":"x","input":{"c":1,"h":1,"w":1},"bogus":1,"layers":[]}`, "decoding"},
		{"no name", `{"input":{"c":1,"h":4,"w":4},"layers":[{"name":"c","op":"conv","inputs":["input"],"out_channels":1,"kernel":1,"stride":1}]}`, "needs a name"},
		{"unknown op", `{"name":"x","input":{"c":1,"h":4,"w":4},"layers":[{"name":"m","op":"magic","inputs":["input"]}]}`, "unknown op"},
		{"unknown pool", `{"name":"x","input":{"c":1,"h":4,"w":4},"layers":[{"name":"p","op":"pool","pool":"median","inputs":["input"],"kernel":2,"stride":2}]}`, "unknown pool kind"},
		{"conv arity", `{"name":"x","input":{"c":1,"h":4,"w":4},"layers":[{"name":"c","op":"conv","inputs":["input","input"],"out_channels":1,"kernel":1,"stride":1}]}`, "exactly one input"},
		{"builder error surfaces", `{"name":"x","input":{"c":1,"h":4,"w":4},"layers":[{"name":"c","op":"conv","inputs":["ghost"],"out_channels":1,"kernel":1,"stride":1}]}`, "unknown layer"},
		{"empty network", `{"name":"x","input":{"c":1,"h":4,"w":4},"layers":[]}`, "no layers"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := DecodeJSON(strings.NewReader(c.src))
			if err == nil {
				t.Fatalf("expected error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestJSONRoundTripZoo(t *testing.T) {
	// Every zoo network must survive encode → decode with identical
	// structure and analysis results.
	for _, name := range ZooNames() {
		orig := MustBuild(name)
		var buf bytes.Buffer
		if err := EncodeJSON(&buf, orig); err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		back, err := DecodeJSON(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if len(back.Layers) != len(orig.Layers) {
			t.Fatalf("%s: layer count %d → %d", name, len(orig.Layers), len(back.Layers))
		}
		for i := range orig.Layers {
			a, b := orig.Layers[i], back.Layers[i]
			if a.Name != b.Name || a.Kind != b.Kind || a.Out != b.Out || a.Stage != b.Stage ||
				a.NumGroups() != b.NumGroups() {
				t.Fatalf("%s: layer %d differs: %+v vs %+v", name, i, a, b)
			}
		}
		ca := Characterize(orig, tensor.Fixed16)
		cb := Characterize(back, tensor.Fixed16)
		if ca != cb {
			t.Errorf("%s: characteristics changed across round trip", name)
		}
	}
}

func TestDecodeJSONShuffle(t *testing.T) {
	src := `{
	  "name": "sh",
	  "input": {"c": 12, "h": 8, "w": 8},
	  "layers": [
	    {"name": "g1", "op": "conv", "inputs": ["input"], "out_channels": 12, "kernel": 1, "stride": 1, "groups": 3},
	    {"name": "mix", "op": "shuffle", "inputs": ["g1"], "groups": 3},
	    {"name": "g2", "op": "conv", "inputs": ["mix"], "out_channels": 12, "kernel": 1, "stride": 1, "groups": 3}
	  ]
	}`
	n, err := DecodeJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n.Layer("mix").Kind != OpShuffle || n.Layer("mix").NumGroups() != 3 {
		t.Error("shuffle not decoded")
	}
	// Bad groups surface the builder error.
	bad := strings.Replace(src, `"groups": 3},
	    {"name": "g2"`, `"groups": 5},
	    {"name": "g2"`, 1)
	if _, err := DecodeJSON(strings.NewReader(bad)); err == nil {
		t.Error("indivisible shuffle groups accepted")
	}
}
