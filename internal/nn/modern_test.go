package nn

import (
	"testing"

	"shortcutmining/internal/tensor"
)

func TestGroupedConvSemantics(t *testing.T) {
	b := NewBuilder("g", tensor.Shape{C: 8, H: 8, W: 8})
	dense := b.Conv("dense", b.InputName(), 16, 3, 1, 1)
	grouped := b.GroupedConv("grouped", dense, 16, 3, 1, 1, 4)
	dw := b.GroupedConv("dw", grouped, 16, 3, 1, 1, 16)
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	d, g, w := n.Layer(dense), n.Layer(grouped), n.Layer(dw)
	if d.NumGroups() != 1 || g.NumGroups() != 4 || w.NumGroups() != 16 {
		t.Fatal("group counts wrong")
	}
	// Grouped conv divides MACs and weights by the group count.
	if g.MACs() != int64(16*8*8)*int64(16/4)*9 {
		t.Errorf("grouped MACs = %d", g.MACs())
	}
	if w.MACs() != int64(16*8*8)*1*9 {
		t.Errorf("depthwise MACs = %d", w.MACs())
	}
	if g.WeightBytes(tensor.Fixed8) != int64(16*4*9) {
		t.Errorf("grouped weights = %d", g.WeightBytes(tensor.Fixed8))
	}
	if w.WeightBytes(tensor.Fixed8) != int64(16*1*9) {
		t.Errorf("depthwise weights = %d", w.WeightBytes(tensor.Fixed8))
	}
}

func TestGroupedConvValidation(t *testing.T) {
	b := NewBuilder("g", tensor.Shape{C: 6, H: 8, W: 8})
	b.GroupedConv("bad", b.InputName(), 8, 3, 1, 1, 4) // 6 % 4 != 0
	if _, err := b.Finish(); err == nil {
		t.Error("indivisible groups accepted")
	}
	b = NewBuilder("g", tensor.Shape{C: 8, H: 8, W: 8})
	b.GroupedConv("bad", b.InputName(), 6, 3, 1, 1, 4) // 6 % 4 != 0
	if _, err := b.Finish(); err == nil {
		t.Error("indivisible output groups accepted")
	}
}

func TestMobileNetV2KnownNumbers(t *testing.T) {
	n, err := MobileNetV2()
	if err != nil {
		t.Fatal(err)
	}
	// Published: ~3.4M params, ~300M MACs at 224×224.
	params := n.TotalWeightBytes(tensor.Fixed8)
	if !approx(params, 3_400_000, 0.06) {
		t.Errorf("params = %d, want ≈3.4M", params)
	}
	if !approx(n.TotalMACs(), 300_000_000, 0.08) {
		t.Errorf("MACs = %d, want ≈300M", n.TotalMACs())
	}
	if got := n.Output().Out; got != (tensor.Shape{C: 1000, H: 1, W: 1}) {
		t.Errorf("output = %v", got)
	}
	// 10 identity-shortcut blocks: stage2(1)+stage3(2)+stage4(3)+stage5(2)+stage6(2).
	adds := 0
	for _, l := range n.Layers {
		if l.Kind == OpEltwiseAdd {
			adds++
		}
	}
	if adds != 10 {
		t.Errorf("adds = %d, want 10", adds)
	}
	// Depthwise layers are present and grouped.
	dw := n.Layer("block2.0.dw")
	if dw == nil || dw.NumGroups() != dw.In[0].C {
		t.Error("depthwise layer missing or not depthwise")
	}
}

func TestMobileNetV2StageGeometry(t *testing.T) {
	n, err := MobileNetV2()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		layer string
		want  tensor.Shape
	}{
		{"conv1", tensor.Shape{C: 32, H: 112, W: 112}},
		{"block1.0.project", tensor.Shape{C: 16, H: 112, W: 112}},
		{"block2.1.add", tensor.Shape{C: 24, H: 56, W: 56}},
		{"block4.3.add", tensor.Shape{C: 64, H: 14, W: 14}},
		{"block7.0.project", tensor.Shape{C: 320, H: 7, W: 7}},
		{"conv_last", tensor.Shape{C: 1280, H: 7, W: 7}},
	}
	for _, c := range cases {
		l := n.Layer(c.layer)
		if l == nil {
			t.Fatalf("missing layer %q", c.layer)
		}
		if l.Out != c.want {
			t.Errorf("%s out = %v, want %v", c.layer, l.Out, c.want)
		}
	}
}

func TestGoogLeNetKnownNumbers(t *testing.T) {
	n, err := GoogLeNet()
	if err != nil {
		t.Fatal(err)
	}
	// Published: ~7.0M params (weights), ~1.5G MACs.
	params := n.TotalWeightBytes(tensor.Fixed8)
	if !approx(params, 7_000_000, 0.06) {
		t.Errorf("params = %d, want ≈7M", params)
	}
	if !approx(n.TotalMACs(), 1_500_000_000, 0.10) {
		t.Errorf("MACs = %d, want ≈1.5G", n.TotalMACs())
	}
	// Nine inception modules, each a 4-way concat.
	concats := 0
	for _, l := range n.Layers {
		if l.Kind == OpConcat {
			if len(l.In) != 4 {
				t.Errorf("%s has %d branches", l.Name, len(l.In))
			}
			concats++
		}
	}
	if concats != 9 {
		t.Errorf("concats = %d, want 9", concats)
	}
	// Known module output widths.
	cases := []struct {
		layer string
		wantC int
	}{
		{"inc3a.concat", 256}, {"inc3b.concat", 480},
		{"inc4e.concat", 832}, {"inc5b.concat", 1024},
	}
	for _, c := range cases {
		l := n.Layer(c.layer)
		if l == nil {
			t.Fatalf("missing %q", c.layer)
		}
		if l.Out.C != c.wantC {
			t.Errorf("%s channels = %d, want %d", c.layer, l.Out.C, c.wantC)
		}
	}
}

func TestGoogLeNetShortcutShareNearForty(t *testing.T) {
	n, err := GoogLeNet()
	if err != nil {
		t.Fatal(err)
	}
	ch := Characterize(n, tensor.Fixed16)
	if ch.ShortcutShare < 0.30 || ch.ShortcutShare > 0.50 {
		t.Errorf("googlenet shortcut share = %.1f%%, want ≈40%%", 100*ch.ShortcutShare)
	}
}

func TestRandomNetworksAlwaysValid(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		n, err := RandomNetwork(seed)
		if err != nil {
			t.Fatalf("RandomNetwork(%d): %v", seed, err)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(n.Layers) < 3 {
			t.Fatalf("seed %d: degenerate network", seed)
		}
	}
}

func TestRandomNetworksCoverMechanisms(t *testing.T) {
	// Across a seed range the generator must produce shortcut edges,
	// concats, grouped convs and pooling — otherwise the fuzz tests
	// exercise less than intended.
	var sawShortcut, sawConcat, sawGroup, sawPool bool
	for seed := int64(0); seed < 100; seed++ {
		n, err := RandomNetwork(seed)
		if err != nil {
			t.Fatalf("RandomNetwork(%d): %v", seed, err)
		}
		if len(ShortcutEdges(n, tensor.Fixed16)) > 0 {
			sawShortcut = true
		}
		for _, l := range n.Layers {
			switch {
			case l.Kind == OpConcat:
				sawConcat = true
			case l.Kind == OpPool:
				sawPool = true
			case l.Kind == OpConv && l.NumGroups() > 1:
				sawGroup = true
			}
		}
	}
	if !sawShortcut || !sawConcat || !sawGroup || !sawPool {
		t.Errorf("coverage: shortcut=%v concat=%v group=%v pool=%v",
			sawShortcut, sawConcat, sawGroup, sawPool)
	}
}

func TestRandomNetworkDeterministic(t *testing.T) {
	a, err := RandomNetwork(12345)
	if err != nil {
		t.Fatalf("RandomNetwork(%d): %v", 12345, err)
	}
	b, err := RandomNetwork(12345)
	if err != nil {
		t.Fatalf("RandomNetwork(%d): %v", 12345, err)
	}
	if len(a.Layers) != len(b.Layers) {
		t.Fatal("same seed, different layer count")
	}
	for i := range a.Layers {
		if a.Layers[i].Name != b.Layers[i].Name || a.Layers[i].Out != b.Layers[i].Out {
			t.Fatalf("same seed, different layer %d", i)
		}
	}
}

func TestDenseNet121KnownNumbers(t *testing.T) {
	n, err := DenseNet121()
	if err != nil {
		t.Fatal(err)
	}
	// Published: ~7.98M params, ~2.87G MACs.
	params := n.TotalWeightBytes(tensor.Fixed8)
	if !approx(params, 7_980_000, 0.04) {
		t.Errorf("params = %d, want ≈7.98M", params)
	}
	if !approx(n.TotalMACs(), 2_870_000_000, 0.05) {
		t.Errorf("MACs = %d, want ≈2.87G", n.TotalMACs())
	}
	ch := Characterize(n, tensor.Fixed16)
	if ch.ConvLayers != 120 { // 1 stem + 58×2 dense + 3 transitions
		t.Errorf("conv layers = %d, want 120", ch.ConvLayers)
	}
	// Dense connectivity: hundreds of shortcut edges, spans of tens of
	// layers.
	if ch.ShortcutEdges < 400 || ch.MaxSpan < 50 {
		t.Errorf("edges=%d span=%d: dense connectivity missing", ch.ShortcutEdges, ch.MaxSpan)
	}
	// Block output widths.
	cases := []struct {
		layer string
		wantC int
	}{
		{"block1.out", 256}, {"trans1.conv", 128},
		{"block2.out", 512}, {"block3.out", 1024}, {"block4.out", 1024},
	}
	for _, c := range cases {
		l := n.Layer(c.layer)
		if l == nil {
			t.Fatalf("missing %q", c.layer)
		}
		if l.Out.C != c.wantC {
			t.Errorf("%s channels = %d, want %d", c.layer, l.Out.C, c.wantC)
		}
	}
	if got := n.Layer("block4.out").Out; got.H != 7 || got.W != 7 {
		t.Errorf("final spatial = %v", got)
	}
}

func TestResNeXt50KnownNumbers(t *testing.T) {
	n, err := ResNeXt50()
	if err != nil {
		t.Fatal(err)
	}
	// Published: ~25.0M params, ~4.23G MACs.
	params := n.TotalWeightBytes(tensor.Fixed8)
	if !approx(params, 25_000_000, 0.04) {
		t.Errorf("params = %d, want ≈25M", params)
	}
	if !approx(n.TotalMACs(), 4_230_000_000, 0.05) {
		t.Errorf("MACs = %d, want ≈4.23G", n.TotalMACs())
	}
	// Grouped 3x3 in every block.
	c2 := n.Layer("layer1.0.conv2")
	if c2 == nil || c2.NumGroups() != 32 {
		t.Error("grouped conv2 missing")
	}
	// Same block structure as ResNet-50: 16 adds, 4 projections.
	adds, proj := 0, 0
	for _, l := range n.Layers {
		if l.Kind == OpEltwiseAdd {
			adds++
		}
		if l.Kind == OpConv && l.K == 1 && l.Stride >= 1 && l.Name != "" &&
			len(l.Name) > 10 && l.Name[len(l.Name)-10:] == "downsample" {
			proj++
		}
	}
	if adds != 16 || proj != 4 {
		t.Errorf("adds=%d projections=%d, want 16/4", adds, proj)
	}
	if got := n.Layer("layer4.2.add").Out; got != (tensor.Shape{C: 2048, H: 7, W: 7}) {
		t.Errorf("final block out = %v", got)
	}
}

func TestShuffleOpSemantics(t *testing.T) {
	b := NewBuilder("sh", tensor.Shape{C: 12, H: 8, W: 8})
	s := b.Shuffle("shuffle", b.InputName(), 3)
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	l := n.Layer(s)
	if l.Out != (tensor.Shape{C: 12, H: 8, W: 8}) {
		t.Errorf("shuffle out = %v", l.Out)
	}
	if l.WeightBytes(tensor.Fixed16) != 0 {
		t.Error("shuffle has weights")
	}
	if l.MACs() != int64(12*8*8) {
		t.Errorf("shuffle ops = %d", l.MACs())
	}
	// Invalid group counts are rejected.
	b = NewBuilder("bad", tensor.Shape{C: 10, H: 4, W: 4})
	b.Shuffle("s", b.InputName(), 3)
	if _, err := b.Finish(); err == nil {
		t.Error("indivisible shuffle accepted")
	}
	b = NewBuilder("bad", tensor.Shape{C: 10, H: 4, W: 4})
	b.Shuffle("s", b.InputName(), 1)
	if _, err := b.Finish(); err == nil {
		t.Error("single-group shuffle accepted")
	}
}

func TestShuffleNetV1KnownNumbers(t *testing.T) {
	n, err := ShuffleNetV1()
	if err != nil {
		t.Fatal(err)
	}
	// Published (1×, g=3): ~137 MFLOPs; params just under 2M.
	if !approx(n.TotalMACs(), 140_000_000, 0.08) {
		t.Errorf("MACs = %d, want ≈140M", n.TotalMACs())
	}
	params := n.TotalWeightBytes(tensor.Fixed8)
	if params < 1_500_000 || params > 2_200_000 {
		t.Errorf("params = %d, want ≈1.9M", params)
	}
	shuffles, adds, concats := 0, 0, 0
	for _, l := range n.Layers {
		switch l.Kind {
		case OpShuffle:
			shuffles++
		case OpEltwiseAdd:
			adds++
		case OpConcat:
			concats++
		}
	}
	if shuffles != 16 || adds != 13 || concats != 3 {
		t.Errorf("shuffles=%d adds=%d concats=%d, want 16/13/3", shuffles, adds, concats)
	}
	cases := []struct {
		layer string
		want  tensor.Shape
	}{
		{"stage2.0.concat", tensor.Shape{C: 240, H: 28, W: 28}},
		{"stage3.0.concat", tensor.Shape{C: 480, H: 14, W: 14}},
		{"stage4.3.add", tensor.Shape{C: 960, H: 7, W: 7}},
	}
	for _, c := range cases {
		l := n.Layer(c.layer)
		if l == nil {
			t.Fatalf("missing %q", c.layer)
		}
		if l.Out != c.want {
			t.Errorf("%s = %v, want %v", c.layer, l.Out, c.want)
		}
	}
}
