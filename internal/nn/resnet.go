package nn

import (
	"fmt"

	"shortcutmining/internal/tensor"
)

// imageNetInput is the canonical 224×224 RGB input used by the zoo.
var imageNetInput = tensor.Shape{C: 3, H: 224, W: 224}

// resnetSpec captures one depth configuration of the ResNet family.
type resnetSpec struct {
	blocks     [4]int // residual blocks per stage
	bottleneck bool   // 3-layer bottleneck vs 2-layer basic block
}

var resnetSpecs = map[int]resnetSpec{
	18:  {blocks: [4]int{2, 2, 2, 2}},
	34:  {blocks: [4]int{3, 4, 6, 3}},
	50:  {blocks: [4]int{3, 4, 6, 3}, bottleneck: true},
	101: {blocks: [4]int{3, 4, 23, 3}, bottleneck: true},
	152: {blocks: [4]int{3, 8, 36, 3}, bottleneck: true},
}

// ResNet builds the ImageNet ResNet of the given depth (18, 34, 50,
// 101 or 152) with projection shortcuts at stage transitions, exactly
// the topologies the paper evaluates (ResNet-34 and ResNet-152) plus
// the rest of the family for sweeps.
func ResNet(depth int) (*Network, error) {
	spec, ok := resnetSpecs[depth]
	if !ok {
		return nil, fmt.Errorf("nn: unsupported ResNet depth %d", depth)
	}
	b := NewBuilder(fmt.Sprintf("resnet%d", depth), imageNetInput)
	b.SetStage("stem")
	x := b.Conv("conv1", b.InputName(), 64, 7, 2, 3)
	x = b.Pool("pool1", x, MaxPool, 3, 2, 1)

	width := 64
	for stage := 0; stage < 4; stage++ {
		b.SetStage(fmt.Sprintf("layer%d", stage+1))
		stride := 1
		if stage > 0 {
			stride = 2
		}
		for blk := 0; blk < spec.blocks[stage]; blk++ {
			s := stride
			if blk > 0 {
				s = 1
			}
			prefix := fmt.Sprintf("layer%d.%d", stage+1, blk)
			if spec.bottleneck {
				x = bottleneckBlock(b, prefix, x, width, s)
			} else {
				x = basicBlock(b, prefix, x, width, s)
			}
		}
		width *= 2
	}

	b.SetStage("head")
	x = b.GlobalPool("avgpool", x)
	b.FC("fc", x, 1000)
	return b.Finish()
}

// MustResNet is ResNet for static zoo call sites.
func MustResNet(depth int) *Network {
	n, err := ResNet(depth)
	if err != nil {
		panic(err)
	}
	return n
}

// basicBlock appends a 2×3x3 residual block. The shortcut operand is
// the block input, optionally passed through a strided 1x1 projection
// when the geometry changes; the projection runs first so that its
// output, like any shortcut operand, must survive across the
// intermediate convolutions.
func basicBlock(b *Builder, prefix, in string, width, stride int) string {
	if b.err != nil {
		return ""
	}
	shortcut := in
	needsProj := stride != 1 || b.net.byName[in].Out.C != width
	if needsProj {
		shortcut = b.Conv(prefix+".downsample", in, width, 1, stride, 0)
	}
	y := b.Conv(prefix+".conv1", in, width, 3, stride, 1)
	y = b.Conv(prefix+".conv2", y, width, 3, 1, 1)
	return b.Add(prefix+".add", shortcut, y)
}

// bottleneckBlock appends a 1x1→3x3→1x1 bottleneck residual block with
// expansion 4.
func bottleneckBlock(b *Builder, prefix, in string, width, stride int) string {
	if b.err != nil {
		return ""
	}
	const expansion = 4
	outC := width * expansion
	shortcut := in
	needsProj := stride != 1 || b.net.byName[in].Out.C != outC
	if needsProj {
		shortcut = b.Conv(prefix+".downsample", in, outC, 1, stride, 0)
	}
	y := b.Conv(prefix+".conv1", in, width, 1, 1, 0)
	y = b.Conv(prefix+".conv2", y, width, 3, stride, 1)
	y = b.Conv(prefix+".conv3", y, outC, 1, 1, 0)
	return b.Add(prefix+".add", shortcut, y)
}

// PlainNet builds the shortcut-free counterpart of a basic-block
// ResNet (the "plain network" control: identical convolution stack,
// no residual additions). Supported depths are 18 and 34.
func PlainNet(depth int) (*Network, error) {
	spec, ok := resnetSpecs[depth]
	if !ok || spec.bottleneck {
		return nil, fmt.Errorf("nn: unsupported PlainNet depth %d", depth)
	}
	b := NewBuilder(fmt.Sprintf("plain%d", depth), imageNetInput)
	b.SetStage("stem")
	x := b.Conv("conv1", b.InputName(), 64, 7, 2, 3)
	x = b.Pool("pool1", x, MaxPool, 3, 2, 1)
	width := 64
	for stage := 0; stage < 4; stage++ {
		b.SetStage(fmt.Sprintf("layer%d", stage+1))
		stride := 1
		if stage > 0 {
			stride = 2
		}
		for blk := 0; blk < spec.blocks[stage]; blk++ {
			s := stride
			if blk > 0 {
				s = 1
			}
			prefix := fmt.Sprintf("layer%d.%d", stage+1, blk)
			x = b.Conv(prefix+".conv1", x, width, 3, s, 1)
			x = b.Conv(prefix+".conv2", x, width, 3, 1, 1)
		}
		width *= 2
	}
	b.SetStage("head")
	x = b.GlobalPool("avgpool", x)
	b.FC("fc", x, 1000)
	return b.Finish()
}
