// Package nn defines the network intermediate representation consumed
// by the accelerator schedulers: a topologically ordered graph of
// layers with inferred shapes, plus the analyses the Shortcut Mining
// controller needs (shortcut edges, feature-map liveness, MAC counts).
//
// The IR is deliberately architecture-oriented rather than
// training-oriented: batch normalization and activation functions are
// assumed fused into the producing convolution (as every accelerator in
// the paper's comparison class does), so they do not appear as nodes.
package nn

import (
	"fmt"
	"sort"

	"shortcutmining/internal/tensor"
)

// OpKind identifies the operator a layer performs.
type OpKind int

const (
	// OpInput is the network input pseudo-layer; it "produces" the
	// image feature map that the first real layer consumes.
	OpInput OpKind = iota
	// OpConv is a 2-D convolution with fused BN/activation.
	OpConv
	// OpPool is a spatial max or average pooling window.
	OpPool
	// OpGlobalPool is global average pooling to 1x1.
	OpGlobalPool
	// OpFC is a fully connected (inner product) layer.
	OpFC
	// OpEltwiseAdd is the element-wise addition that terminates a
	// residual shortcut.
	OpEltwiseAdd
	// OpConcat concatenates inputs along the channel dimension.
	OpConcat
	// OpShuffle permutes channels across groups (the ShuffleNet
	// channel shuffle): a data-movement layer with no weights.
	OpShuffle
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpInput:
		return "input"
	case OpConv:
		return "conv"
	case OpPool:
		return "pool"
	case OpGlobalPool:
		return "gpool"
	case OpFC:
		return "fc"
	case OpEltwiseAdd:
		return "add"
	case OpConcat:
		return "concat"
	case OpShuffle:
		return "shuffle"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// PoolKind distinguishes pooling flavours.
type PoolKind int

const (
	// MaxPool takes the window maximum.
	MaxPool PoolKind = iota
	// AvgPool takes the window mean.
	AvgPool
)

// String implements fmt.Stringer.
func (p PoolKind) String() string {
	if p == AvgPool {
		return "avg"
	}
	return "max"
}

// Layer is one node of the network graph. Fields beyond the geometry
// (Index, In, Out) are filled in by Builder.Finish during shape
// inference and must be treated as read-only afterwards.
type Layer struct {
	Name   string
	Kind   OpKind
	Inputs []string // producer layer names, primary input last-produced
	Stage  string   // reporting label ("stem", "layer2", "fire4", ...)

	// Convolution / pooling geometry. K is the window edge; OutC the
	// number of output channels for conv/fc. Groups partitions a
	// convolution's channels (1 = dense, InC = depthwise); it divides
	// both the MAC count and the weight footprint.
	K      int
	Stride int
	Pad    int
	OutC   int
	Groups int
	Pool   PoolKind

	// Inferred by Finish.
	Index int            // position in topological order
	In    []tensor.Shape // one per entry of Inputs
	Out   tensor.Shape
}

// InC returns the layer's total input channel count.
func (l *Layer) InC() int {
	c := 0
	for _, s := range l.In {
		c += s.C
	}
	return c
}

// NumGroups returns the effective convolution group count (Groups
// defaults to 1; a value equal to the input channel count makes the
// layer depthwise).
func (l *Layer) NumGroups() int {
	if l.Groups <= 1 {
		return 1
	}
	return l.Groups
}

func (l *Layer) groups() int { return l.NumGroups() }

// MACs returns the number of multiply-accumulate operations the layer
// performs. Pooling and element-wise layers report their element
// operation count so the timing model can account (cheaply) for them.
func (l *Layer) MACs() int64 {
	switch l.Kind {
	case OpConv:
		return int64(l.Out.Elems()) * int64(l.In[0].C/l.groups()) * int64(l.K) * int64(l.K)
	case OpFC:
		return int64(l.In[0].Elems()) * int64(l.OutC)
	case OpPool:
		return int64(l.Out.Elems()) * int64(l.K) * int64(l.K)
	case OpGlobalPool:
		return int64(l.In[0].Elems())
	case OpEltwiseAdd:
		return int64(l.Out.Elems()) * int64(len(l.In)-1)
	case OpConcat:
		return int64(l.Out.Elems())
	case OpShuffle:
		return int64(l.Out.Elems())
	}
	return 0
}

// WeightBytes returns the parameter footprint of the layer at dtype d.
func (l *Layer) WeightBytes(d tensor.DataType) int64 {
	switch l.Kind {
	case OpConv:
		return int64(l.OutC) * int64(l.In[0].C/l.groups()) * int64(l.K*l.K) * int64(d.Bytes())
	case OpFC:
		return int64(l.OutC) * int64(l.In[0].Elems()) * int64(d.Bytes())
	}
	return 0
}

// Network is a validated, shape-inferred layer graph in topological
// order. Construct one with Builder; a zero Network is not usable.
type Network struct {
	Name       string
	InputShape tensor.Shape
	Layers     []*Layer

	byName map[string]*Layer
}

// Layer returns the layer with the given name, or nil.
func (n *Network) Layer(name string) *Layer {
	return n.byName[name]
}

// Input returns the input pseudo-layer.
func (n *Network) Input() *Layer { return n.Layers[0] }

// Output returns the final layer in topological order.
func (n *Network) Output() *Layer { return n.Layers[len(n.Layers)-1] }

// Consumers returns the indices of layers that consume the output of
// the layer at index i, in ascending order.
func (n *Network) Consumers(i int) []int {
	name := n.Layers[i].Name
	var out []int
	for j := i + 1; j < len(n.Layers); j++ {
		for _, in := range n.Layers[j].Inputs {
			if in == name {
				out = append(out, j)
				break
			}
		}
	}
	return out
}

// LastUse returns the index of the last consumer of layer i's output,
// or i itself when nothing consumes it (the network output).
func (n *Network) LastUse(i int) int {
	last := i
	if c := n.Consumers(i); len(c) > 0 {
		last = c[len(c)-1]
	}
	return last
}

// TotalMACs sums MACs over conv and FC layers (the convention used for
// GOPS reporting; cheap element-wise work is excluded).
func (n *Network) TotalMACs() int64 {
	var total int64
	for _, l := range n.Layers {
		if l.Kind == OpConv || l.Kind == OpFC {
			total += l.MACs()
		}
	}
	return total
}

// TotalWeightBytes sums parameter footprints at dtype d.
func (n *Network) TotalWeightBytes(d tensor.DataType) int64 {
	var total int64
	for _, l := range n.Layers {
		total += l.WeightBytes(d)
	}
	return total
}

// Stages returns the distinct stage labels in first-appearance order.
func (n *Network) Stages() []string {
	seen := make(map[string]bool)
	var out []string
	for _, l := range n.Layers {
		if l.Stage == "" || seen[l.Stage] {
			continue
		}
		seen[l.Stage] = true
		out = append(out, l.Stage)
	}
	return out
}

// Validate re-checks structural invariants; Builder.Finish always
// leaves the network valid, so this is primarily a test hook and a
// guard for hand-assembled networks.
func (n *Network) Validate() error {
	if len(n.Layers) == 0 {
		return fmt.Errorf("nn: %s: empty network", n.Name)
	}
	if n.Layers[0].Kind != OpInput {
		return fmt.Errorf("nn: %s: first layer must be the input", n.Name)
	}
	seen := make(map[string]int, len(n.Layers))
	for i, l := range n.Layers {
		if l.Index != i {
			return fmt.Errorf("nn: %s: layer %q has index %d at position %d", n.Name, l.Name, l.Index, i)
		}
		if _, dup := seen[l.Name]; dup {
			return fmt.Errorf("nn: %s: duplicate layer name %q", n.Name, l.Name)
		}
		seen[l.Name] = i
		if !l.Out.Valid() {
			return fmt.Errorf("nn: %s: layer %q has invalid output shape %v", n.Name, l.Name, l.Out)
		}
		if i == 0 {
			if len(l.Inputs) != 0 {
				return fmt.Errorf("nn: %s: input layer cannot have inputs", n.Name)
			}
			continue
		}
		if len(l.Inputs) == 0 {
			return fmt.Errorf("nn: %s: layer %q has no inputs", n.Name, l.Name)
		}
		if len(l.Inputs) != len(l.In) {
			return fmt.Errorf("nn: %s: layer %q input arity mismatch", n.Name, l.Name)
		}
		for _, in := range l.Inputs {
			j, ok := seen[in]
			if !ok {
				return fmt.Errorf("nn: %s: layer %q consumes unknown or later layer %q", n.Name, l.Name, in)
			}
			if j >= i {
				return fmt.Errorf("nn: %s: layer %q consumes non-topological input %q", n.Name, l.Name, in)
			}
		}
	}
	return nil
}

// Builder assembles a Network layer by layer in execution order. Each
// Add* method returns the new layer's name so graphs read naturally:
//
//	b := nn.NewBuilder("net", tensor.Shape{C: 3, H: 224, W: 224})
//	x := b.Conv("conv1", b.InputName(), 64, 7, 2, 3)
//	x = b.Pool("pool1", x, nn.MaxPool, 3, 2, 1)
//
// Errors are accumulated and reported by Finish, keeping call sites
// free of per-layer error plumbing.
type Builder struct {
	net   *Network
	stage string
	err   error
}

// NewBuilder starts a network with the given name and input shape.
func NewBuilder(name string, input tensor.Shape) *Builder {
	n := &Network{
		Name:       name,
		InputShape: input,
		byName:     make(map[string]*Layer),
	}
	b := &Builder{net: n}
	b.add(&Layer{Name: "input", Kind: OpInput, Out: input})
	return b
}

// InputName returns the name of the input pseudo-layer.
func (b *Builder) InputName() string { return "input" }

// SetStage labels subsequent layers with a reporting stage.
func (b *Builder) SetStage(stage string) { b.stage = stage }

func (b *Builder) fail(format string, args ...any) string {
	if b.err == nil {
		b.err = fmt.Errorf("nn: %s: "+format, append([]any{b.net.Name}, args...)...)
	}
	return ""
}

func (b *Builder) add(l *Layer) string {
	if b.err != nil {
		return ""
	}
	if l.Name == "" {
		return b.fail("layer with empty name")
	}
	if _, dup := b.net.byName[l.Name]; dup {
		return b.fail("duplicate layer name %q", l.Name)
	}
	l.Index = len(b.net.Layers)
	l.Stage = b.stage
	if l.Kind == OpInput {
		l.Stage = ""
	}
	for _, in := range l.Inputs {
		p, ok := b.net.byName[in]
		if !ok {
			return b.fail("layer %q consumes unknown layer %q", l.Name, in)
		}
		l.In = append(l.In, p.Out)
	}
	if err := inferShape(l); err != nil {
		return b.fail("%v", err)
	}
	b.net.Layers = append(b.net.Layers, l)
	b.net.byName[l.Name] = l
	return l.Name
}

func inferShape(l *Layer) error {
	switch l.Kind {
	case OpInput:
		if !l.Out.Valid() {
			return fmt.Errorf("input shape %v invalid", l.Out)
		}
		return nil
	case OpConv:
		if l.K <= 0 || l.Stride <= 0 || l.Pad < 0 || l.OutC <= 0 {
			return fmt.Errorf("layer %q: bad conv geometry k=%d s=%d p=%d outc=%d", l.Name, l.K, l.Stride, l.Pad, l.OutC)
		}
		in := l.In[0]
		if g := l.groups(); in.C%g != 0 || l.OutC%g != 0 {
			return fmt.Errorf("layer %q: groups %d does not divide channels %d→%d", l.Name, g, in.C, l.OutC)
		}
		l.Out = tensor.Shape{
			C: l.OutC,
			H: tensor.ConvOut(in.H, l.K, l.Stride, l.Pad),
			W: tensor.ConvOut(in.W, l.K, l.Stride, l.Pad),
		}
	case OpPool:
		if l.K <= 0 || l.Stride <= 0 || l.Pad < 0 {
			return fmt.Errorf("layer %q: bad pool geometry", l.Name)
		}
		in := l.In[0]
		l.Out = tensor.Shape{
			C: in.C,
			H: tensor.ConvOut(in.H, l.K, l.Stride, l.Pad),
			W: tensor.ConvOut(in.W, l.K, l.Stride, l.Pad),
		}
	case OpGlobalPool:
		l.Out = tensor.Shape{C: l.In[0].C, H: 1, W: 1}
	case OpFC:
		if l.OutC <= 0 {
			return fmt.Errorf("layer %q: fc needs positive OutC", l.Name)
		}
		l.Out = tensor.Shape{C: l.OutC, H: 1, W: 1}
	case OpEltwiseAdd:
		if len(l.In) < 2 {
			return fmt.Errorf("layer %q: add needs at least two inputs", l.Name)
		}
		for _, s := range l.In[1:] {
			if s != l.In[0] {
				return fmt.Errorf("layer %q: add shape mismatch %v vs %v", l.Name, l.In[0], s)
			}
		}
		l.Out = l.In[0]
	case OpShuffle:
		if l.Groups < 2 || l.In[0].C%l.Groups != 0 {
			return fmt.Errorf("layer %q: shuffle groups %d must divide channels %d", l.Name, l.Groups, l.In[0].C)
		}
		l.Out = l.In[0]
	case OpConcat:
		if len(l.In) < 2 {
			return fmt.Errorf("layer %q: concat needs at least two inputs", l.Name)
		}
		c := 0
		for _, s := range l.In {
			if s.H != l.In[0].H || s.W != l.In[0].W {
				return fmt.Errorf("layer %q: concat spatial mismatch %v vs %v", l.Name, l.In[0], s)
			}
			c += s.C
		}
		l.Out = tensor.Shape{C: c, H: l.In[0].H, W: l.In[0].W}
	default:
		return fmt.Errorf("layer %q: unknown op kind %v", l.Name, l.Kind)
	}
	if !l.Out.Valid() {
		return fmt.Errorf("layer %q: inferred invalid output shape %v", l.Name, l.Out)
	}
	return nil
}

// Conv appends a dense convolution layer and returns its name.
func (b *Builder) Conv(name, input string, outC, k, stride, pad int) string {
	return b.add(&Layer{Name: name, Kind: OpConv, Inputs: []string{input}, OutC: outC, K: k, Stride: stride, Pad: pad})
}

// GroupedConv appends a grouped convolution (groups = input channels
// gives a depthwise convolution, the MobileNet building block).
func (b *Builder) GroupedConv(name, input string, outC, k, stride, pad, groups int) string {
	return b.add(&Layer{Name: name, Kind: OpConv, Inputs: []string{input}, OutC: outC, K: k, Stride: stride, Pad: pad, Groups: groups})
}

// Pool appends a pooling layer and returns its name.
func (b *Builder) Pool(name, input string, kind PoolKind, k, stride, pad int) string {
	return b.add(&Layer{Name: name, Kind: OpPool, Inputs: []string{input}, Pool: kind, K: k, Stride: stride, Pad: pad})
}

// GlobalPool appends a global average pooling layer.
func (b *Builder) GlobalPool(name, input string) string {
	return b.add(&Layer{Name: name, Kind: OpGlobalPool, Inputs: []string{input}})
}

// FC appends a fully connected layer.
func (b *Builder) FC(name, input string, outC int) string {
	return b.add(&Layer{Name: name, Kind: OpFC, Inputs: []string{input}, OutC: outC})
}

// Add appends an element-wise addition. The primary operand (the one
// produced immediately before in the execution order) should be listed
// last by convention, matching how the fused-add datapath consumes it.
func (b *Builder) Add(name string, inputs ...string) string {
	return b.add(&Layer{Name: name, Kind: OpEltwiseAdd, Inputs: inputs})
}

// Shuffle appends a channel shuffle across the given group count.
func (b *Builder) Shuffle(name, input string, groups int) string {
	return b.add(&Layer{Name: name, Kind: OpShuffle, Inputs: []string{input}, Groups: groups})
}

// Concat appends a channel concatenation.
func (b *Builder) Concat(name string, inputs ...string) string {
	return b.add(&Layer{Name: name, Kind: OpConcat, Inputs: inputs})
}

// Finish validates and returns the network. The builder must not be
// used afterwards.
func (b *Builder) Finish() (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.net.Layers) < 2 {
		return nil, fmt.Errorf("nn: %s: network has no layers beyond the input", b.net.Name)
	}
	if err := b.net.Validate(); err != nil {
		return nil, err
	}
	return b.net, nil
}

// MustFinish is Finish for the static model zoo, where construction
// errors are programming bugs.
func (b *Builder) MustFinish() *Network {
	n, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return n
}

// Names returns all layer names in topological order (useful for
// deterministic iteration in tests and tools).
func (n *Network) Names() []string {
	out := make([]string, len(n.Layers))
	for i, l := range n.Layers {
		out[i] = l.Name
	}
	return out
}

// SortedStageCounts reports, per stage label, how many layers belong to
// it (alphabetical by stage; reporting helper).
func (n *Network) SortedStageCounts() []struct {
	Stage string
	Count int
} {
	counts := make(map[string]int)
	for _, l := range n.Layers {
		if l.Stage != "" {
			counts[l.Stage]++
		}
	}
	stages := make([]string, 0, len(counts))
	for s := range counts {
		stages = append(stages, s)
	}
	sort.Strings(stages)
	out := make([]struct {
		Stage string
		Count int
	}, len(stages))
	for i, s := range stages {
		out[i].Stage = s
		out[i].Count = counts[s]
	}
	return out
}
