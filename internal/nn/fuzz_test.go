package nn

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecodeJSON hammers the user-facing network import path. The
// contract under arbitrary input: DecodeJSON either returns an error
// or a network that passes Validate — never a panic, never a
// half-built graph — and any accepted network survives an
// EncodeJSON/DecodeJSON round trip byte-identically.
func FuzzDecodeJSON(f *testing.F) {
	f.Add(`{"name":"tiny","input":{"c":3,"h":8,"w":8},"layers":[` +
		`{"name":"c1","op":"conv","inputs":["input"],"out_channels":4,"kernel":3,"stride":1,"pad":1}]}`)
	f.Add(`{"name":"res","input":{"c":8,"h":16,"w":16},"layers":[` +
		`{"name":"c1","op":"conv","inputs":["input"],"out_channels":8,"kernel":3,"stride":1,"pad":1},` +
		`{"name":"c2","op":"conv","inputs":["c1"],"out_channels":8,"kernel":3,"stride":1,"pad":1},` +
		`{"name":"add","op":"add","inputs":["input","c2"]},` +
		`{"name":"gp","op":"gpool","inputs":["add"]},` +
		`{"name":"fc","op":"fc","inputs":["gp"],"out_channels":10}]}`)
	f.Add(`{"name":"pools","input":{"c":2,"h":9,"w":9},"layers":[` +
		`{"name":"p1","op":"pool","pool":"avg","inputs":["input"],"kernel":3,"stride":2,"pad":0},` +
		`{"name":"sh","op":"shuffle","inputs":["p1"],"groups":2},` +
		`{"name":"cat","op":"concat","inputs":["p1","sh"]}]}`)
	f.Add(`{"name":"","input":{},"layers":[]}`)
	f.Add(`{"name":"bad","input":{"c":-1,"h":0,"w":1<<60}}`)
	f.Add(`not json at all`)

	f.Fuzz(func(t *testing.T, data string) {
		net, err := DecodeJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		if verr := net.Validate(); verr != nil {
			t.Fatalf("DecodeJSON accepted a network failing Validate: %v\ninput: %q", verr, data)
		}
		var enc bytes.Buffer
		if err := EncodeJSON(&enc, net); err != nil {
			t.Fatalf("EncodeJSON failed on an accepted network: %v", err)
		}
		again, err := DecodeJSON(bytes.NewReader(enc.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding encoded network: %v\njson: %s", err, enc.Bytes())
		}
		var enc2 bytes.Buffer
		if err := EncodeJSON(&enc2, again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc.Bytes(), enc2.Bytes()) {
			t.Fatalf("encode/decode/encode not a fixed point:\n%s\nvs\n%s", enc.Bytes(), enc2.Bytes())
		}
	})
}
