package nn

import (
	"shortcutmining/internal/tensor"
)

// Edge is one producer→consumer feature-map dependence.
type Edge struct {
	Producer int // layer index that produces the feature map
	Consumer int // layer index that consumes it
	Bytes    int64
	// Shortcut reports whether at least one other layer executes
	// between producer and consumer, i.e. the feature map must be
	// retained across intermediate layers (or spilled to DRAM) to be
	// reused on chip. This covers both residual add operands and the
	// cross-branch edges of concat modules (fire modules, DenseNet).
	Shortcut bool
}

// Edges enumerates every feature-map dependence of the network at
// dtype d, in (consumer, input-position) order.
func Edges(n *Network, d tensor.DataType) []Edge {
	var out []Edge
	for _, l := range n.Layers {
		for _, in := range l.Inputs {
			p := n.Layer(in)
			out = append(out, Edge{
				Producer: p.Index,
				Consumer: l.Index,
				Bytes:    p.Out.Bytes(d),
				Shortcut: l.Index-p.Index > 1,
			})
		}
	}
	return out
}

// ShortcutEdges returns only the edges that skip at least one
// intermediate layer.
func ShortcutEdges(n *Network, d tensor.DataType) []Edge {
	var out []Edge
	for _, e := range Edges(n, d) {
		if e.Shortcut {
			out = append(out, e)
		}
	}
	return out
}

// Span returns the number of layers executed strictly between the
// producer and the consumer of the edge.
func (e Edge) Span() int { return e.Consumer - e.Producer - 1 }

// Characteristics summarizes a network for the motivation study
// (experiment E1, the paper's "~40% of total feature map data" claim).
//
// The traffic convention matches the paper's conventional-accelerator
// accounting: every feature map produced is written to DRAM once and
// read back once per consuming edge; the input image is read once. A
// shortcut edge is then charged its read plus the (otherwise avoidable)
// store of its operand, which is what "shortcut connection data"
// measures.
type Characteristics struct {
	Network       string
	ConvLayers    int
	FCLayers      int
	ShortcutEdges int
	MaxSpan       int // widest shortcut (intermediate layer count)

	TotalFmapBytes    int64 // sum of all produced feature maps (incl. input)
	BaselineReads     int64 // per-edge reads under the conventional policy
	BaselineWrites    int64 // per-output writes under the conventional policy
	ShortcutBytes     int64 // read traffic on shortcut edges
	ShortcutTraffic   int64 // shortcut reads + attributed stores
	ShortcutShare     float64
	TotalMACs         int64
	TotalWeightsBytes int64
}

// Characterize computes Characteristics at dtype d.
func Characterize(n *Network, d tensor.DataType) Characteristics {
	c := Characteristics{
		Network:           n.Name,
		TotalMACs:         n.TotalMACs(),
		TotalWeightsBytes: n.TotalWeightBytes(d),
	}
	for _, l := range n.Layers {
		switch l.Kind {
		case OpConv:
			c.ConvLayers++
		case OpFC:
			c.FCLayers++
		}
		c.TotalFmapBytes += l.Out.Bytes(d)
		if l.Kind != OpInput {
			c.BaselineWrites += l.Out.Bytes(d)
		}
	}
	// The image itself arrives from DRAM exactly once.
	c.BaselineReads += n.Input().Out.Bytes(d)
	shortcutStores := make(map[int]int64)
	for _, e := range Edges(n, d) {
		c.BaselineReads += e.Bytes
		if e.Shortcut {
			c.ShortcutEdges++
			c.ShortcutBytes += e.Bytes
			if s := e.Span(); s > c.MaxSpan {
				c.MaxSpan = s
			}
			// Attribute the producer's store once, even when several
			// shortcut edges share a producer (DenseNet-style reuse).
			shortcutStores[e.Producer] = e.Bytes
		}
	}
	c.ShortcutTraffic = c.ShortcutBytes
	for _, b := range shortcutStores {
		c.ShortcutTraffic += b
	}
	if total := c.BaselineReads + c.BaselineWrites; total > 0 {
		c.ShortcutShare = float64(c.ShortcutTraffic) / float64(total)
	}
	return c
}

// BaselineFmapTraffic is the conventional-accelerator feature-map
// traffic (reads + writes) used as the normalization denominator.
func (c Characteristics) BaselineFmapTraffic() int64 {
	return c.BaselineReads + c.BaselineWrites
}

// Liveness describes when each produced feature map can be released.
type Liveness struct {
	// LastUse[i] is the index of the last layer consuming layer i's
	// output (i itself when unconsumed).
	LastUse []int
	// LivePeak is the maximum, over execution points, of the total
	// bytes of feature maps that are live (produced but not yet fully
	// consumed) — a lower bound on the pool needed for full on-chip
	// reuse.
	LivePeak int64
}

// AnalyzeLiveness computes feature-map liveness at dtype d. A feature
// map is live from the end of its producing layer until the end of its
// last consuming layer; during a layer the live set also includes its
// own output being produced.
func AnalyzeLiveness(n *Network, d tensor.DataType) Liveness {
	lv := Liveness{LastUse: make([]int, len(n.Layers))}
	for i := range n.Layers {
		lv.LastUse[i] = n.LastUse(i)
	}
	for step := range n.Layers {
		var live int64
		for i, l := range n.Layers {
			if i <= step && lv.LastUse[i] > step {
				live += l.Out.Bytes(d) // produced, still needed later
			}
		}
		live += n.Layers[step].Out.Bytes(d) // being produced now
		if live > lv.LivePeak {
			lv.LivePeak = live
		}
	}
	return lv
}
