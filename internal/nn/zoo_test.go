package nn

import (
	"testing"

	"shortcutmining/internal/tensor"
)

// approx reports whether got is within tol (fractional) of want.
func approx(got, want int64, tol float64) bool {
	diff := float64(got - want)
	if diff < 0 {
		diff = -diff
	}
	return diff <= tol*float64(want)
}

func TestResNetKnownParameterCounts(t *testing.T) {
	// Published parameter counts (conv+fc weights; our model omits BN
	// scale/shift and biases, a <2% difference).
	cases := []struct {
		depth int
		want  int64 // parameters
	}{
		{18, 11_690_000},
		{34, 21_800_000},
		{50, 25_560_000},
		{101, 44_550_000},
		{152, 60_190_000},
	}
	for _, c := range cases {
		n := MustResNet(c.depth)
		params := n.TotalWeightBytes(tensor.Fixed8) // 1 byte/param = param count
		if !approx(params, c.want, 0.03) {
			t.Errorf("resnet%d params = %d, want ≈%d", c.depth, params, c.want)
		}
	}
}

func TestResNetKnownMACs(t *testing.T) {
	cases := []struct {
		depth int
		want  int64
	}{
		{18, 1_820_000_000},
		{34, 3_670_000_000},
		{50, 4_110_000_000},
		{152, 11_560_000_000},
	}
	for _, c := range cases {
		n := MustResNet(c.depth)
		if !approx(n.TotalMACs(), c.want, 0.05) {
			t.Errorf("resnet%d MACs = %d, want ≈%d", c.depth, n.TotalMACs(), c.want)
		}
	}
}

func TestResNet34Structure(t *testing.T) {
	n := MustResNet(34)
	ch := Characterize(n, tensor.Fixed16)
	if ch.ConvLayers != 36 { // 33 3x3 convs + 3 projections
		t.Errorf("conv layers = %d, want 36", ch.ConvLayers)
	}
	if ch.FCLayers != 1 {
		t.Errorf("fc layers = %d, want 1", ch.FCLayers)
	}
	adds := 0
	for _, l := range n.Layers {
		if l.Kind == OpEltwiseAdd {
			adds++
		}
	}
	if adds != 16 {
		t.Errorf("residual adds = %d, want 16", adds)
	}
	if got := n.Output().Out; got != (tensor.Shape{C: 1000, H: 1, W: 1}) {
		t.Errorf("output shape = %v", got)
	}
}

func TestResNet152Structure(t *testing.T) {
	n := MustResNet(152)
	adds := 0
	for _, l := range n.Layers {
		if l.Kind == OpEltwiseAdd {
			adds++
		}
	}
	if adds != 50 { // 3+8+36+3 bottleneck blocks
		t.Errorf("residual adds = %d, want 50", adds)
	}
	ch := Characterize(n, tensor.Fixed16)
	if ch.ConvLayers != 155 { // 1 stem + 50*3 + 4 projections
		t.Errorf("conv layers = %d, want 155", ch.ConvLayers)
	}
}

func TestResNetStageShapes(t *testing.T) {
	n := MustResNet(34)
	cases := []struct {
		layer string
		want  tensor.Shape
	}{
		{"conv1", tensor.Shape{C: 64, H: 112, W: 112}},
		{"pool1", tensor.Shape{C: 64, H: 56, W: 56}},
		{"layer1.2.add", tensor.Shape{C: 64, H: 56, W: 56}},
		{"layer2.0.add", tensor.Shape{C: 128, H: 28, W: 28}},
		{"layer3.0.add", tensor.Shape{C: 256, H: 14, W: 14}},
		{"layer4.2.add", tensor.Shape{C: 512, H: 7, W: 7}},
	}
	for _, c := range cases {
		l := n.Layer(c.layer)
		if l == nil {
			t.Fatalf("missing layer %q", c.layer)
		}
		if l.Out != c.want {
			t.Errorf("%s out = %v, want %v", c.layer, l.Out, c.want)
		}
	}
}

func TestResNetUnsupportedDepth(t *testing.T) {
	if _, err := ResNet(42); err == nil {
		t.Error("ResNet(42) should fail")
	}
	if _, err := PlainNet(50); err == nil {
		t.Error("PlainNet(50) (bottleneck) should fail")
	}
}

func TestPlainNetHasNoShortcuts(t *testing.T) {
	n, err := PlainNet(34)
	if err != nil {
		t.Fatal(err)
	}
	if edges := ShortcutEdges(n, tensor.Fixed16); len(edges) != 0 {
		t.Errorf("plain34 has %d shortcut edges, want 0", len(edges))
	}
	// Same conv stack as ResNet-34 minus the three projections.
	ch := Characterize(n, tensor.Fixed16)
	if ch.ConvLayers != 33 {
		t.Errorf("conv layers = %d, want 33", ch.ConvLayers)
	}
}

func TestSqueezeNetV11Geometry(t *testing.T) {
	n := MustSqueezeNet(NoBypass)
	cases := []struct {
		layer string
		want  tensor.Shape
	}{
		{"conv1", tensor.Shape{C: 64, H: 111, W: 111}},
		{"pool1", tensor.Shape{C: 64, H: 55, W: 55}},
		{"fire2.concat", tensor.Shape{C: 128, H: 55, W: 55}},
		{"fire4.concat", tensor.Shape{C: 256, H: 27, W: 27}},
		{"fire6.concat", tensor.Shape{C: 384, H: 13, W: 13}},
		{"fire9.concat", tensor.Shape{C: 512, H: 13, W: 13}},
		{"conv10", tensor.Shape{C: 1000, H: 13, W: 13}},
		{"avgpool", tensor.Shape{C: 1000, H: 1, W: 1}},
	}
	for _, c := range cases {
		l := n.Layer(c.layer)
		if l == nil {
			t.Fatalf("missing layer %q", c.layer)
		}
		if l.Out != c.want {
			t.Errorf("%s out = %v, want %v", c.layer, l.Out, c.want)
		}
	}
	params := n.TotalWeightBytes(tensor.Fixed8)
	if !approx(params, 1_235_000, 0.03) {
		t.Errorf("squeezenet params = %d, want ≈1.235M", params)
	}
}

func TestSqueezeNetBypassModes(t *testing.T) {
	plain := MustSqueezeNet(NoBypass)
	simple := MustSqueezeNet(SimpleBypass)
	complexNet := MustSqueezeNet(ComplexBypass)

	count := func(n *Network, k OpKind) int {
		c := 0
		for _, l := range n.Layers {
			if l.Kind == k {
				c++
			}
		}
		return c
	}
	if got := count(plain, OpEltwiseAdd); got != 0 {
		t.Errorf("plain adds = %d", got)
	}
	if got := count(simple, OpEltwiseAdd); got != 4 { // fire3/5/7/9
		t.Errorf("simple adds = %d, want 4", got)
	}
	if got := count(complexNet, OpEltwiseAdd); got != 8 {
		t.Errorf("complex adds = %d, want 8", got)
	}
	// Bypass must not change the classifier geometry.
	for _, n := range []*Network{plain, simple, complexNet} {
		if got := n.Output().Out; got != (tensor.Shape{C: 1000, H: 1, W: 1}) {
			t.Errorf("%s output = %v", n.Name, got)
		}
	}
	// Every fire module contributes intra-module shortcut edges (the
	// squeeze→expand3x3 and expand1x1→concat hops) even without bypass.
	if got := len(ShortcutEdges(plain, tensor.Fixed16)); got < 16 {
		t.Errorf("plain squeezenet shortcut edges = %d, want ≥16", got)
	}
}

func TestVGG16KnownNumbers(t *testing.T) {
	n, err := VGG16()
	if err != nil {
		t.Fatal(err)
	}
	params := n.TotalWeightBytes(tensor.Fixed8)
	if !approx(params, 138_000_000, 0.03) {
		t.Errorf("vgg16 params = %d, want ≈138M", params)
	}
	if !approx(n.TotalMACs(), 15_470_000_000, 0.05) {
		t.Errorf("vgg16 MACs = %d, want ≈15.5G", n.TotalMACs())
	}
	if got := len(ShortcutEdges(n, tensor.Fixed16)); got != 0 {
		t.Errorf("vgg16 shortcut edges = %d, want 0", got)
	}
}

func TestDenseChain(t *testing.T) {
	n, err := DenseChain(4, 8, 14)
	if err != nil {
		t.Fatal(err)
	}
	// conv_i consumes growth*i channels.
	for i, wantIn := range []int{8, 16, 24, 32} {
		l := n.Layer("conv" + string(rune('1'+i)))
		if l == nil {
			t.Fatalf("missing conv%d", i+1)
		}
		if l.In[0].C != wantIn {
			t.Errorf("conv%d input channels = %d, want %d", i+1, l.In[0].C, wantIn)
		}
	}
	// Every early conv output feeds multiple later concats: its edges
	// must register as shortcuts.
	edges := ShortcutEdges(n, tensor.Fixed16)
	if len(edges) == 0 {
		t.Fatal("dense chain has no shortcut edges")
	}
	if _, err := DenseChain(1, 8, 14); err == nil {
		t.Error("DenseChain(1,...) should fail")
	}
}

func TestShortcutSpanNet(t *testing.T) {
	for span := 1; span <= 6; span++ {
		n, err := ShortcutSpanNet(span, 3, 16, 28)
		if err != nil {
			t.Fatal(err)
		}
		edges := ShortcutEdges(n, tensor.Fixed16)
		if len(edges) != 3 {
			t.Fatalf("span %d: %d shortcut edges, want 3", span, len(edges))
		}
		for _, e := range edges {
			if e.Span() != span {
				t.Errorf("span %d: edge span = %d", span, e.Span())
			}
		}
	}
	if _, err := ShortcutSpanNet(0, 1, 8, 8); err == nil {
		t.Error("span 0 should fail")
	}
}

func TestZooBuildsEverything(t *testing.T) {
	for _, name := range ZooNames() {
		n, err := Build(name)
		if err != nil {
			t.Errorf("Build(%q): %v", name, err)
			continue
		}
		if err := n.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
	}
	if _, err := Build("alexnet"); err == nil {
		t.Error("unknown network should fail")
	}
}

func TestHeadlineNetworksExist(t *testing.T) {
	for _, name := range HeadlineNetworks() {
		if _, err := Build(name); err != nil {
			t.Errorf("headline network %q: %v", name, err)
		}
	}
}

func TestMustBuildPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild on unknown name did not panic")
		}
	}()
	MustBuild("nope")
}
