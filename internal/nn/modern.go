package nn

import "fmt"

// MobileNetV2 builds the ImageNet MobileNetV2 topology: inverted
// residual bottlenecks whose expand → depthwise → project main path is
// bridged by identity shortcuts whenever stride and width allow. It is
// the modern, mobile-scale counterpart of the paper's residual
// workloads (extension experiment E14): shortcut data is plentiful but
// individual feature maps are small, so retention saturates earlier.
func MobileNetV2() (*Network, error) {
	b := NewBuilder("mobilenetv2", imageNetInput)
	b.SetStage("stem")
	x := b.Conv("conv1", b.InputName(), 32, 3, 2, 1)

	specs := []struct {
		t, c, n, s int // expansion, out channels, repeats, first stride
	}{
		{1, 16, 1, 1},
		{6, 24, 2, 2},
		{6, 32, 3, 2},
		{6, 64, 4, 2},
		{6, 96, 3, 1},
		{6, 160, 3, 2},
		{6, 320, 1, 1},
	}
	inC := 32
	for si, sp := range specs {
		b.SetStage(fmt.Sprintf("stage%d", si+1))
		for i := 0; i < sp.n; i++ {
			s := sp.s
			if i > 0 {
				s = 1
			}
			prefix := fmt.Sprintf("block%d.%d", si+1, i)
			x = invertedResidual(b, prefix, x, inC, sp.c, sp.t, s)
			inC = sp.c
		}
	}
	b.SetStage("head")
	x = b.Conv("conv_last", x, 1280, 1, 1, 0)
	x = b.GlobalPool("avgpool", x)
	b.FC("fc", x, 1000)
	return b.Finish()
}

// invertedResidual appends one MobileNetV2 bottleneck: 1x1 expand,
// 3x3 depthwise, 1x1 linear projection, with an identity shortcut when
// the geometry is preserved.
func invertedResidual(b *Builder, prefix, in string, inC, outC, expand, stride int) string {
	if b.err != nil {
		return ""
	}
	hidden := inC * expand
	y := in
	if expand != 1 {
		y = b.Conv(prefix+".expand", y, hidden, 1, 1, 0)
	}
	y = b.GroupedConv(prefix+".dw", y, hidden, 3, stride, 1, hidden)
	y = b.Conv(prefix+".project", y, outC, 1, 1, 0)
	if stride == 1 && inC == outC {
		return b.Add(prefix+".add", in, y)
	}
	return y
}

// GoogLeNet builds Inception v1: nine inception modules whose four
// branches all reconverge through channel concatenation — the
// concat-retention stress case (every branch output must survive the
// sibling branches' execution).
func GoogLeNet() (*Network, error) {
	b := NewBuilder("googlenet", imageNetInput)
	b.SetStage("stem")
	x := b.Conv("conv1", b.InputName(), 64, 7, 2, 3)
	x = b.Pool("pool1", x, MaxPool, 3, 2, 1)
	x = b.Conv("conv2reduce", x, 64, 1, 1, 0)
	x = b.Conv("conv2", x, 192, 3, 1, 1)
	x = b.Pool("pool2", x, MaxPool, 3, 2, 1)

	specs := []struct {
		name                     string
		c1, c3r, c3, c5r, c5, pp int
		poolAfter                bool
	}{
		{"3a", 64, 96, 128, 16, 32, 32, false},
		{"3b", 128, 128, 192, 32, 96, 64, true},
		{"4a", 192, 96, 208, 16, 48, 64, false},
		{"4b", 160, 112, 224, 24, 64, 64, false},
		{"4c", 128, 128, 256, 24, 64, 64, false},
		{"4d", 112, 144, 288, 32, 64, 64, false},
		{"4e", 256, 160, 320, 32, 128, 128, true},
		{"5a", 256, 160, 320, 32, 128, 128, false},
		{"5b", 384, 192, 384, 48, 128, 128, false},
	}
	for _, sp := range specs {
		b.SetStage("inception" + sp.name)
		x = inceptionModule(b, "inc"+sp.name, x, sp.c1, sp.c3r, sp.c3, sp.c5r, sp.c5, sp.pp)
		if sp.poolAfter {
			x = b.Pool("pool_"+sp.name, x, MaxPool, 3, 2, 1)
		}
	}
	b.SetStage("head")
	x = b.GlobalPool("avgpool", x)
	b.FC("fc", x, 1000)
	return b.Finish()
}

// inceptionModule appends the classic four-branch module: 1x1, 1x1→3x3,
// 1x1→5x5, and 3x3maxpool→1x1, concatenated along channels.
func inceptionModule(b *Builder, prefix, in string, c1, c3r, c3, c5r, c5, pp int) string {
	b1 := b.Conv(prefix+".b1", in, c1, 1, 1, 0)
	b3 := b.Conv(prefix+".b3r", in, c3r, 1, 1, 0)
	b3 = b.Conv(prefix+".b3", b3, c3, 3, 1, 1)
	b5 := b.Conv(prefix+".b5r", in, c5r, 1, 1, 0)
	b5 = b.Conv(prefix+".b5", b5, c5, 5, 1, 2)
	bp := b.Pool(prefix+".pool", in, MaxPool, 3, 1, 1)
	bp = b.Conv(prefix+".bp", bp, pp, 1, 1, 0)
	return b.Concat(prefix+".concat", b1, b3, b5, bp)
}

// ResNeXt50 builds ResNeXt-50 (32×4d): the ResNet-50 topology with
// 32-way grouped 3x3 convolutions and doubled bottleneck width —
// grouped convolution at ImageNet scale with the full residual
// shortcut structure.
func ResNeXt50() (*Network, error) {
	const cardinality = 32
	blocks := []int{3, 4, 6, 3}
	b := NewBuilder("resnext50", imageNetInput)
	b.SetStage("stem")
	x := b.Conv("conv1", b.InputName(), 64, 7, 2, 3)
	x = b.Pool("pool1", x, MaxPool, 3, 2, 1)

	width := 128 // bottleneck width (2× ResNet-50's)
	outC := 256  // block output channels
	for stage := 0; stage < 4; stage++ {
		b.SetStage(fmt.Sprintf("layer%d", stage+1))
		stride := 1
		if stage > 0 {
			stride = 2
		}
		for blk := 0; blk < blocks[stage]; blk++ {
			s := stride
			if blk > 0 {
				s = 1
			}
			prefix := fmt.Sprintf("layer%d.%d", stage+1, blk)
			shortcut := x
			if s != 1 || b.net.byName[x].Out.C != outC {
				shortcut = b.Conv(prefix+".downsample", x, outC, 1, s, 0)
			}
			y := b.Conv(prefix+".conv1", x, width, 1, 1, 0)
			y = b.GroupedConv(prefix+".conv2", y, width, 3, s, 1, cardinality)
			y = b.Conv(prefix+".conv3", y, outC, 1, 1, 0)
			x = b.Add(prefix+".add", shortcut, y)
		}
		width *= 2
		outC *= 2
	}
	b.SetStage("head")
	x = b.GlobalPool("avgpool", x)
	b.FC("fc", x, 1000)
	return b.Finish()
}

// ShuffleNetV1 builds ShuffleNet v1 (1×, groups 3): grouped pointwise
// convolutions whose channel mixing comes from an explicit shuffle
// layer — the op that motivated OpShuffle — with residual adds on
// stride-1 units and avgpool-concat bypasses on stride-2 units.
func ShuffleNetV1() (*Network, error) {
	const g = 3
	stages := []struct {
		out, units int
	}{{240, 4}, {480, 8}, {960, 4}}

	b := NewBuilder("shufflenetv1", imageNetInput)
	b.SetStage("stem")
	x := b.Conv("conv1", b.InputName(), 24, 3, 2, 1)
	x = b.Pool("pool1", x, MaxPool, 3, 2, 1)
	inC := 24

	for si, st := range stages {
		b.SetStage(fmt.Sprintf("stage%d", si+2))
		for u := 0; u < st.units; u++ {
			prefix := fmt.Sprintf("stage%d.%d", si+2, u)
			bott := st.out / 4
			g1 := g
			if si == 0 && u == 0 {
				g1 = 1 // the 24-channel stem input is not grouped
			}
			if u == 0 { // stride-2 unit: concat bypass
				branchOut := st.out - inC
				side := b.Pool(prefix+".avgpool", x, AvgPool, 3, 2, 1)
				y := b.GroupedConv(prefix+".gconv1", x, bott, 1, 1, 0, g1)
				y = b.Shuffle(prefix+".shuffle", y, g)
				y = b.GroupedConv(prefix+".dw", y, bott, 3, 2, 1, bott)
				y = b.GroupedConv(prefix+".gconv2", y, branchOut, 1, 1, 0, g)
				x = b.Concat(prefix+".concat", side, y)
			} else { // stride-1 unit: residual add
				y := b.GroupedConv(prefix+".gconv1", x, bott, 1, 1, 0, g1)
				y = b.Shuffle(prefix+".shuffle", y, g)
				y = b.GroupedConv(prefix+".dw", y, bott, 3, 1, 1, bott)
				y = b.GroupedConv(prefix+".gconv2", y, st.out, 1, 1, 0, g)
				x = b.Add(prefix+".add", x, y)
			}
			inC = st.out
		}
	}
	b.SetStage("head")
	x = b.GlobalPool("avgpool", x)
	b.FC("fc", x, 1000)
	return b.Finish()
}
