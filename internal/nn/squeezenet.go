package nn

import (
	"fmt"

	"shortcutmining/internal/tensor"
)

// BypassMode selects the shortcut topology of SqueezeNet, following
// §6 of the SqueezeNet paper: the HPCA'19 evaluation uses the bypass
// variant (otherwise there is no shortcut data to mine).
type BypassMode int

const (
	// NoBypass is plain SqueezeNet v1.1.
	NoBypass BypassMode = iota
	// SimpleBypass adds identity shortcuts around fire3/5/7/9 (the
	// modules whose input and output channel counts match).
	SimpleBypass
	// ComplexBypass additionally adds 1x1 projection shortcuts around
	// fire2/4/6/8.
	ComplexBypass
)

// String implements fmt.Stringer.
func (m BypassMode) String() string {
	switch m {
	case NoBypass:
		return "plain"
	case SimpleBypass:
		return "simple-bypass"
	case ComplexBypass:
		return "complex-bypass"
	}
	return fmt.Sprintf("BypassMode(%d)", int(m))
}

// fireSpec is one fire module: squeeze width and the two expand widths.
type fireSpec struct {
	squeeze, expand1, expand3 int
}

var squeezeNetFires = []fireSpec{
	{16, 64, 64},   // fire2
	{16, 64, 64},   // fire3
	{32, 128, 128}, // fire4
	{32, 128, 128}, // fire5
	{48, 192, 192}, // fire6
	{48, 192, 192}, // fire7
	{64, 256, 256}, // fire8
	{64, 256, 256}, // fire9
}

// SqueezeNet builds SqueezeNet v1.1 with the requested bypass mode.
// Fire modules decompose into squeeze → (expand1x1 ‖ expand3x3) →
// concat; the squeeze output feeding both expands and the expand1x1
// output crossing the expand3x3 layer are exactly the short-span
// retention cases P3 handles, while bypass additions are the
// residual-style long-span case.
func SqueezeNet(mode BypassMode) (*Network, error) {
	b := NewBuilder("squeezenet-"+mode.String(), imageNetInput)
	b.SetStage("stem")
	x := b.Conv("conv1", b.InputName(), 64, 3, 2, 0)
	x = b.Pool("pool1", x, MaxPool, 3, 2, 0)

	for i, f := range squeezeNetFires {
		id := i + 2 // fire2..fire9
		name := fmt.Sprintf("fire%d", id)
		b.SetStage(name)
		switch id {
		case 4:
			b.SetStage("pool3")
			x = b.Pool("pool3", x, MaxPool, 3, 2, 0)
			b.SetStage(name)
		case 6:
			b.SetStage("pool5")
			x = b.Pool("pool5", x, MaxPool, 3, 2, 0)
			b.SetStage(name)
		}
		in := x
		out := fireModule(b, name, in, f)
		matched := id%2 == 1 // fire3/5/7/9 keep channel count
		switch {
		case mode == SimpleBypass && matched, mode == ComplexBypass && matched:
			x = b.Add(name+".bypass", in, out)
		case mode == ComplexBypass:
			proj := b.Conv(name+".bypassconv", in, f.expand1+f.expand3, 1, 1, 0)
			x = b.Add(name+".bypass", proj, out)
		default:
			x = out
		}
	}

	b.SetStage("head")
	x = b.Conv("conv10", x, 1000, 1, 1, 0)
	b.GlobalPool("avgpool", x)
	return b.Finish()
}

// MustSqueezeNet is SqueezeNet for static zoo call sites.
func MustSqueezeNet(mode BypassMode) *Network {
	n, err := SqueezeNet(mode)
	if err != nil {
		panic(err)
	}
	return n
}

func fireModule(b *Builder, name, in string, f fireSpec) string {
	sq := b.Conv(name+".squeeze", in, f.squeeze, 1, 1, 0)
	e1 := b.Conv(name+".expand1x1", sq, f.expand1, 1, 1, 0)
	e3 := b.Conv(name+".expand3x3", sq, f.expand3, 3, 1, 1)
	return b.Concat(name+".concat", e1, e3)
}

// VGG16 builds VGG-16, the shortcut-free high-traffic control network.
func VGG16() (*Network, error) {
	b := NewBuilder("vgg16", imageNetInput)
	widths := []struct {
		n, c int
	}{{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512}}
	x := b.InputName()
	for stage, w := range widths {
		b.SetStage(fmt.Sprintf("block%d", stage+1))
		for i := 0; i < w.n; i++ {
			x = b.Conv(fmt.Sprintf("conv%d_%d", stage+1, i+1), x, w.c, 3, 1, 1)
		}
		x = b.Pool(fmt.Sprintf("pool%d", stage+1), x, MaxPool, 2, 2, 0)
	}
	b.SetStage("head")
	x = b.FC("fc6", x, 4096)
	x = b.FC("fc7", x, 4096)
	b.FC("fc8", x, 1000)
	return b.Finish()
}

// DenseChain builds a DenseNet-style chain: `blocks` convolutions where
// every layer's input is the concatenation of all previous outputs in
// the block. It exercises many-consumer shortcut retention (one
// produced fmap feeding several later layers), the generalization the
// paper's procedures support "across any number of intermediate
// layers". Spatial size and growth rate are configurable so the chain
// can be sized against a bank pool.
func DenseChain(blocks, growth, hw int) (*Network, error) {
	if blocks < 2 || growth < 1 || hw < 1 {
		return nil, fmt.Errorf("nn: bad DenseChain parameters blocks=%d growth=%d hw=%d", blocks, growth, hw)
	}
	b := NewBuilder(fmt.Sprintf("densechain-b%d-g%d", blocks, growth),
		tensor.Shape{C: growth, H: hw, W: hw})
	b.SetStage("dense")
	outs := []string{b.InputName()}
	concat := b.InputName()
	for i := 0; i < blocks; i++ {
		y := b.Conv(fmt.Sprintf("conv%d", i+1), concat, growth, 3, 1, 1)
		outs = append(outs, y)
		if i < blocks-1 {
			concat = b.Concat(fmt.Sprintf("concat%d", i+1), outs...)
		}
	}
	return b.Finish()
}

// ShortcutSpanNet builds the synthetic network for experiment E9: a
// few residual blocks whose main path contains `span` intermediate
// same-shape convolutions between the shortcut source and the
// element-wise add. All feature maps share one shape, so any change in
// traffic or pinned-bank peak across span values is attributable to the
// retention machinery alone.
func ShortcutSpanNet(span, blocks, channels, hw int) (*Network, error) {
	if span < 1 || blocks < 1 || channels < 1 || hw < 1 {
		return nil, fmt.Errorf("nn: bad ShortcutSpanNet parameters span=%d blocks=%d", span, blocks)
	}
	b := NewBuilder(fmt.Sprintf("span%d-net", span), tensor.Shape{C: channels, H: hw, W: hw})
	b.SetStage("stem")
	x := b.Conv("conv0", b.InputName(), channels, 3, 1, 1)
	for blk := 0; blk < blocks; blk++ {
		b.SetStage(fmt.Sprintf("block%d", blk+1))
		in := x
		y := in
		for i := 0; i < span; i++ {
			y = b.Conv(fmt.Sprintf("block%d.conv%d", blk+1, i+1), y, channels, 3, 1, 1)
		}
		x = b.Add(fmt.Sprintf("block%d.add", blk+1), in, y)
	}
	return b.Finish()
}
