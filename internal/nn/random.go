package nn

import (
	"fmt"
	"math/rand"

	"shortcutmining/internal/tensor"
)

// RandomNetwork generates a small, valid network from a seed: a
// conv/pool backbone sprinkled with residual adds (including long-span
// shortcuts), concat branches, grouped convolutions, and an optional
// classifier head. It drives the randomized end-to-end tests: any
// network it can produce must simulate under every strategy, preserve
// the traffic ordering, and verify functionally. A construction error
// means the generator itself is broken; callers (the randomized tests)
// treat it as fatal.
func RandomNetwork(seed int64) (*Network, error) {
	rng := rand.New(rand.NewSource(seed))
	channels := []int{4, 8, 12, 16}[rng.Intn(4)]
	hw := []int{8, 12, 16}[rng.Intn(3)]
	b := NewBuilder(fmt.Sprintf("random-%d", seed), tensor.Shape{C: channels, H: hw, W: hw})

	// outs tracks produced layer names with their shapes for shortcut
	// and concat candidates.
	type prod struct {
		name  string
		shape tensor.Shape
	}
	cur := prod{b.InputName(), tensor.Shape{C: channels, H: hw, W: hw}}
	var history []prod

	conv := func(name string, in prod, outC, k, stride, pad, groups int) prod {
		if b.err != nil {
			return in
		}
		var n string
		if groups > 1 {
			n = b.GroupedConv(name, in.name, outC, k, stride, pad, groups)
		} else {
			n = b.Conv(name, in.name, outC, k, stride, pad)
		}
		return prod{n, b.net.byName[n].Out}
	}

	steps := 4 + rng.Intn(10)
	for i := 0; i < steps; i++ {
		history = append(history, cur)
		name := fmt.Sprintf("l%d", i)
		switch choice := rng.Intn(10); {
		case choice < 4: // plain conv, occasionally grouped
			outC := []int{4, 8, 12, 16}[rng.Intn(4)]
			groups := 1
			if rng.Intn(4) == 0 && cur.shape.C%4 == 0 && outC%4 == 0 {
				groups = 4
			}
			k := []int{1, 3}[rng.Intn(2)]
			cur = conv(name, cur, outC, k, 1, k/2, groups)
		case choice < 6: // residual block with random span
			span := 1 + rng.Intn(3)
			src := cur
			y := cur
			for s := 0; s < span; s++ {
				y = conv(fmt.Sprintf("%s.s%d", name, s), y, src.shape.C, 3, 1, 1, 1)
			}
			n := b.Add(name+".add", src.name, y.name)
			cur = prod{n, src.shape}
		case choice < 8: // two-branch concat
			left := conv(name+".a", cur, 4+4*rng.Intn(2), 1, 1, 0, 1)
			right := conv(name+".b", cur, 4+4*rng.Intn(2), 3, 1, 1, 1)
			n := b.Concat(name+".cat", left.name, right.name)
			cur = prod{n, tensor.Shape{C: left.shape.C + right.shape.C, H: cur.shape.H, W: cur.shape.W}}
		case choice < 9 && cur.shape.H >= 4: // downsample
			n := b.Pool(name+".pool", cur.name, PoolKind(rng.Intn(2)), 2, 2, 0)
			cur = prod{n, tensor.Shape{C: cur.shape.C, H: cur.shape.H / 2, W: cur.shape.W / 2}}
		default: // long-range add to any same-shape ancestor
			match := -1
			for j := len(history) - 1; j >= 0; j-- {
				if history[j].shape == cur.shape && history[j].name != cur.name {
					match = j
					break
				}
			}
			if match < 0 {
				cur = conv(name, cur, cur.shape.C, 3, 1, 1, 1)
				break
			}
			n := b.Add(name+".skip", history[match].name, cur.name)
			cur = prod{n, cur.shape}
		}
	}
	if rng.Intn(2) == 0 {
		g := b.GlobalPool("gap", cur.name)
		b.FC("fc", g, 10)
	} else {
		b.Conv("head", cur.name, 8, 1, 1, 0)
	}
	return b.Finish()
}
