package nn

import (
	"encoding/json"
	"fmt"
	"io"

	"shortcutmining/internal/tensor"
)

// The JSON graph format lets users define networks without writing Go:
//
//	{
//	  "name": "mynet",
//	  "input": {"c": 3, "h": 224, "w": 224},
//	  "layers": [
//	    {"name": "conv1", "op": "conv", "inputs": ["input"],
//	     "out_channels": 64, "kernel": 7, "stride": 2, "pad": 3},
//	    {"name": "pool1", "op": "pool", "pool": "max", "inputs": ["conv1"],
//	     "kernel": 3, "stride": 2, "pad": 1},
//	    {"name": "add", "op": "add", "inputs": ["shortcut", "main"]}
//	  ]
//	}
//
// Layers execute in listing order; inputs must reference earlier
// layers (or "input"). The decoded network passes through the same
// Builder validation as the Go API.

type jsonShape struct {
	C int `json:"c"`
	H int `json:"h"`
	W int `json:"w"`
}

type jsonLayer struct {
	Name        string   `json:"name"`
	Op          string   `json:"op"`
	Inputs      []string `json:"inputs,omitempty"`
	Stage       string   `json:"stage,omitempty"`
	OutChannels int      `json:"out_channels,omitempty"`
	Kernel      int      `json:"kernel,omitempty"`
	Stride      int      `json:"stride,omitempty"`
	Pad         int      `json:"pad,omitempty"`
	Groups      int      `json:"groups,omitempty"`
	Pool        string   `json:"pool,omitempty"`
}

type jsonNetwork struct {
	Name   string      `json:"name"`
	Input  jsonShape   `json:"input"`
	Layers []jsonLayer `json:"layers"`
}

// DecodeJSON reads a network from the JSON graph format.
func DecodeJSON(r io.Reader) (*Network, error) {
	var jn jsonNetwork
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jn); err != nil {
		return nil, fmt.Errorf("nn: decoding network json: %w", err)
	}
	if jn.Name == "" {
		return nil, fmt.Errorf("nn: network json needs a name")
	}
	b := NewBuilder(jn.Name, tensor.Shape{C: jn.Input.C, H: jn.Input.H, W: jn.Input.W})
	for _, jl := range jn.Layers {
		b.SetStage(jl.Stage)
		one := func() (string, error) {
			if len(jl.Inputs) != 1 {
				return "", fmt.Errorf("nn: layer %q (%s) needs exactly one input", jl.Name, jl.Op)
			}
			return jl.Inputs[0], nil
		}
		switch jl.Op {
		case "conv":
			in, err := one()
			if err != nil {
				return nil, err
			}
			if jl.Groups > 1 {
				b.GroupedConv(jl.Name, in, jl.OutChannels, jl.Kernel, jl.Stride, jl.Pad, jl.Groups)
			} else {
				b.Conv(jl.Name, in, jl.OutChannels, jl.Kernel, jl.Stride, jl.Pad)
			}
		case "pool":
			in, err := one()
			if err != nil {
				return nil, err
			}
			kind := MaxPool
			switch jl.Pool {
			case "", "max":
			case "avg":
				kind = AvgPool
			default:
				return nil, fmt.Errorf("nn: layer %q: unknown pool kind %q", jl.Name, jl.Pool)
			}
			b.Pool(jl.Name, in, kind, jl.Kernel, jl.Stride, jl.Pad)
		case "gpool":
			in, err := one()
			if err != nil {
				return nil, err
			}
			b.GlobalPool(jl.Name, in)
		case "fc":
			in, err := one()
			if err != nil {
				return nil, err
			}
			b.FC(jl.Name, in, jl.OutChannels)
		case "shuffle":
			in, err := one()
			if err != nil {
				return nil, err
			}
			b.Shuffle(jl.Name, in, jl.Groups)
		case "add":
			b.Add(jl.Name, jl.Inputs...)
		case "concat":
			b.Concat(jl.Name, jl.Inputs...)
		default:
			return nil, fmt.Errorf("nn: layer %q: unknown op %q", jl.Name, jl.Op)
		}
	}
	return b.Finish()
}

// EncodeJSON writes the network in the JSON graph format; decoding the
// output reproduces an identical network.
func EncodeJSON(w io.Writer, n *Network) error {
	jn := jsonNetwork{
		Name:  n.Name,
		Input: jsonShape{C: n.InputShape.C, H: n.InputShape.H, W: n.InputShape.W},
	}
	for _, l := range n.Layers {
		if l.Kind == OpInput {
			continue
		}
		jl := jsonLayer{
			Name:   l.Name,
			Inputs: append([]string(nil), l.Inputs...),
			Stage:  l.Stage,
		}
		switch l.Kind {
		case OpConv:
			jl.Op = "conv"
			jl.OutChannels = l.OutC
			jl.Kernel, jl.Stride, jl.Pad = l.K, l.Stride, l.Pad
			if g := l.NumGroups(); g > 1 {
				jl.Groups = g
			}
		case OpPool:
			jl.Op = "pool"
			jl.Pool = l.Pool.String()
			jl.Kernel, jl.Stride, jl.Pad = l.K, l.Stride, l.Pad
		case OpGlobalPool:
			jl.Op = "gpool"
		case OpFC:
			jl.Op = "fc"
			jl.OutChannels = l.OutC
		case OpEltwiseAdd:
			jl.Op = "add"
		case OpShuffle:
			jl.Op = "shuffle"
			jl.Groups = l.NumGroups()
		case OpConcat:
			jl.Op = "concat"
		default:
			return fmt.Errorf("nn: cannot encode op %v", l.Kind)
		}
		jn.Layers = append(jn.Layers, jl)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jn)
}
