package nn

import (
	"fmt"
	"sort"
)

// zoo maps canonical model names to constructors. Synthetic,
// parameterized networks (DenseChain, ShortcutSpanNet) are not listed
// here; they are built directly by the experiments that sweep them.
var zoo = map[string]func() (*Network, error){
	"resnet18":           func() (*Network, error) { return ResNet(18) },
	"resnet34":           func() (*Network, error) { return ResNet(34) },
	"resnet50":           func() (*Network, error) { return ResNet(50) },
	"resnet101":          func() (*Network, error) { return ResNet(101) },
	"resnet152":          func() (*Network, error) { return ResNet(152) },
	"plain34":            func() (*Network, error) { return PlainNet(34) },
	"squeezenet":         func() (*Network, error) { return SqueezeNet(NoBypass) },
	"squeezenet-bypass":  func() (*Network, error) { return SqueezeNet(SimpleBypass) },
	"squeezenet-complex": func() (*Network, error) { return SqueezeNet(ComplexBypass) },
	"vgg16":              VGG16,
	"densechain":         func() (*Network, error) { return DenseChain(6, 32, 28) },
	"densenet121":        DenseNet121,
	"mobilenetv2":        MobileNetV2,
	"resnext50":          ResNeXt50,
	"shufflenetv1":       ShuffleNetV1,
	"googlenet":          GoogLeNet,
}

// Build constructs a zoo network by name.
func Build(name string) (*Network, error) {
	ctor, ok := zoo[name]
	if !ok {
		return nil, fmt.Errorf("nn: unknown network %q (see nn.ZooNames)", name)
	}
	return ctor()
}

// MustBuild is Build for static call sites.
func MustBuild(name string) *Network {
	n, err := Build(name)
	if err != nil {
		panic(err)
	}
	return n
}

// ZooNames lists the available model names in sorted order.
func ZooNames() []string {
	names := make([]string, 0, len(zoo))
	for n := range zoo {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HeadlineNetworks returns the three networks of the paper's headline
// results in the order the abstract reports them.
func HeadlineNetworks() []string {
	return []string{"squeezenet-bypass", "resnet34", "resnet152"}
}
