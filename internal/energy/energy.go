// Package energy rolls DRAM traffic, SRAM activity and MAC counts into
// access-energy estimates. The coefficients follow the convention of
// accelerator evaluations (Eyeriss-style normalized access costs): a
// DRAM byte costs roughly two orders of magnitude more than an on-chip
// buffer byte, which is why traffic reduction translates almost
// directly into energy reduction (experiment E7).
package energy

import "fmt"

// Model holds per-event energy coefficients in picojoules.
type Model struct {
	DRAMPerByte float64 // off-chip access energy per byte
	SRAMPerByte float64 // large on-chip buffer access per byte
	MACPerOp    float64 // one 16-bit multiply-accumulate
}

// Default returns the coefficients used by the experiments: 160 pJ/B
// DRAM (≈640 pJ per 32-bit word), 3 pJ/B buffer SRAM, 1 pJ per 16-bit
// MAC.
func Default() Model {
	return Model{DRAMPerByte: 160, SRAMPerByte: 3, MACPerOp: 1}
}

// Validate checks the model.
func (m Model) Validate() error {
	if m.DRAMPerByte < 0 || m.SRAMPerByte < 0 || m.MACPerOp < 0 {
		return fmt.Errorf("energy: negative coefficient in %+v", m)
	}
	if m.DRAMPerByte < m.SRAMPerByte {
		return fmt.Errorf("energy: DRAM (%g) cheaper than SRAM (%g)", m.DRAMPerByte, m.SRAMPerByte)
	}
	return nil
}

// Breakdown is an energy tally in picojoules.
type Breakdown struct {
	DRAMPJ float64 `json:"DRAMPJ"`
	SRAMPJ float64 `json:"SRAMPJ"`
	MACPJ  float64 `json:"MACPJ"`
}

// TotalPJ sums the components.
func (b Breakdown) TotalPJ() float64 { return b.DRAMPJ + b.SRAMPJ + b.MACPJ }

// TotalMJ returns the total in millijoules (convenient magnitude for
// whole-network inferences).
func (b Breakdown) TotalMJ() float64 { return b.TotalPJ() / 1e9 }

// Estimate combines the activity counters of one run. sramBytes should
// count every buffer read and write (the schedulers report it as
// roughly two touches per datapath byte: one write into a buffer, one
// read out).
func (m Model) Estimate(dramBytes, sramBytes, macs int64) Breakdown {
	return Breakdown{
		DRAMPJ: float64(dramBytes) * m.DRAMPerByte,
		SRAMPJ: float64(sramBytes) * m.SRAMPerByte,
		MACPJ:  float64(macs) * m.MACPerOp,
	}
}
