package energy

import (
	"math"
	"testing"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	bad := []Model{
		{DRAMPerByte: -1, SRAMPerByte: 1, MACPerOp: 1},
		{DRAMPerByte: 10, SRAMPerByte: -1, MACPerOp: 1},
		{DRAMPerByte: 10, SRAMPerByte: 1, MACPerOp: -1},
		{DRAMPerByte: 1, SRAMPerByte: 10, MACPerOp: 1}, // DRAM cheaper than SRAM
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestEstimate(t *testing.T) {
	m := Model{DRAMPerByte: 100, SRAMPerByte: 2, MACPerOp: 1}
	b := m.Estimate(1000, 5000, 1_000_000)
	if b.DRAMPJ != 100_000 {
		t.Errorf("dram = %g", b.DRAMPJ)
	}
	if b.SRAMPJ != 10_000 {
		t.Errorf("sram = %g", b.SRAMPJ)
	}
	if b.MACPJ != 1_000_000 {
		t.Errorf("mac = %g", b.MACPJ)
	}
	if b.TotalPJ() != 1_110_000 {
		t.Errorf("total = %g", b.TotalPJ())
	}
	if math.Abs(b.TotalMJ()-1_110_000/1e9) > 1e-15 {
		t.Errorf("mj = %g", b.TotalMJ())
	}
}

func TestZeroActivityZeroEnergy(t *testing.T) {
	if got := Default().Estimate(0, 0, 0).TotalPJ(); got != 0 {
		t.Errorf("zero activity energy = %g", got)
	}
}

func TestDRAMDominatesAtEqualBytes(t *testing.T) {
	m := Default()
	b := m.Estimate(1000, 1000, 0)
	if b.DRAMPJ <= b.SRAMPJ {
		t.Error("DRAM should dominate SRAM at equal byte counts")
	}
}
