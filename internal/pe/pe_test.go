package pe

import (
	"testing"
	"testing/quick"

	"shortcutmining/internal/nn"
	"shortcutmining/internal/tensor"
)

func testConfig() Config {
	return Config{Tn: 16, Tm: 16, ClockMHz: 200, VectorWidth: 16}
}

func buildConvNet(t *testing.T, inC, outC, hw, k, stride, pad int) *nn.Network {
	t.Helper()
	b := nn.NewBuilder("t", tensor.Shape{C: inC, H: hw, W: hw})
	b.Conv("c", b.InputName(), outC, k, stride, pad)
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Error(err)
	}
	bad := []Config{
		{Tn: 0, Tm: 16, ClockMHz: 200, VectorWidth: 16},
		{Tn: 16, Tm: 0, ClockMHz: 200, VectorWidth: 16},
		{Tn: 16, Tm: 16, ClockMHz: 0, VectorWidth: 16},
		{Tn: 16, Tm: 16, ClockMHz: 200, VectorWidth: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if testConfig().NumMACs() != 256 {
		t.Errorf("NumMACs = %d", testConfig().NumMACs())
	}
}

func TestConvCyclesExactDivide(t *testing.T) {
	// 16 in, 32 out channels on a 16x16 array: 1 input tile, 2 output
	// tiles. 8x8 output, 3x3 kernel: 64 * 9 * 1 * 2 = 1152 cycles.
	n := buildConvNet(t, 16, 32, 8, 3, 1, 1)
	conv := n.Layer("c")
	got := testConfig().LayerCycles(conv)
	if got != 1152 {
		t.Errorf("cycles = %d, want 1152", got)
	}
	// Perfect divide means full utilization.
	if u := testConfig().Utilization(conv); u != 1.0 {
		t.Errorf("utilization = %f, want 1.0", u)
	}
}

func TestConvCyclesRounding(t *testing.T) {
	// 3 input channels on 16 rows wastes 13 rows: utilization 3/16.
	n := buildConvNet(t, 3, 16, 8, 3, 1, 1)
	conv := n.Layer("c")
	cfg := testConfig()
	want := int64(8*8) * int64(9) * 1 * 1
	if got := cfg.LayerCycles(conv); got != want {
		t.Errorf("cycles = %d, want %d", got, want)
	}
	u := cfg.Utilization(conv)
	if u < 3.0/16-1e-9 || u > 3.0/16+1e-9 {
		t.Errorf("utilization = %f, want %f", u, 3.0/16)
	}
}

func TestFCCycles(t *testing.T) {
	b := nn.NewBuilder("t", tensor.Shape{C: 512, H: 1, W: 1})
	b.FC("fc", b.InputName(), 1000)
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// ceil(512/16)*ceil(1000/16) = 32*63 = 2016.
	if got := testConfig().LayerCycles(n.Layer("fc")); got != 2016 {
		t.Errorf("fc cycles = %d, want 2016", got)
	}
}

func TestEltwiseAndPoolCycles(t *testing.T) {
	b := nn.NewBuilder("t", tensor.Shape{C: 16, H: 8, W: 8})
	x := b.Conv("c1", b.InputName(), 16, 3, 1, 1)
	y := b.Conv("c2", x, 16, 3, 1, 1)
	add := b.Add("add", x, y)
	p := b.Pool("pool", add, nn.MaxPool, 2, 2, 0)
	g := b.GlobalPool("gp", p)
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	if got := cfg.LayerCycles(n.Layer(add)); got != int64(16*8*8)/16 {
		t.Errorf("add cycles = %d", got)
	}
	if got := cfg.LayerCycles(n.Layer(p)); got != int64(16*4*4*4)/16 {
		t.Errorf("pool cycles = %d", got)
	}
	if got := cfg.LayerCycles(n.Layer(g)); got != int64(16*4*4)/16 {
		t.Errorf("gpool cycles = %d", got)
	}
	if got := cfg.Utilization(n.Layer(add)); got != 0 {
		t.Errorf("add utilization = %f", got)
	}
}

func TestConcatAndInputAreFree(t *testing.T) {
	b := nn.NewBuilder("t", tensor.Shape{C: 8, H: 8, W: 8})
	a := b.Conv("a", b.InputName(), 8, 1, 1, 0)
	c := b.Conv("c", b.InputName(), 8, 1, 1, 0)
	cat := b.Concat("cat", a, c)
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	if got := cfg.LayerCycles(n.Layer(cat)); got != 0 {
		t.Errorf("concat cycles = %d", got)
	}
	if got := cfg.LayerCycles(n.Input()); got != 0 {
		t.Errorf("input cycles = %d", got)
	}
}

func TestNetworkCyclesAndSeconds(t *testing.T) {
	n := nn.MustResNet(18)
	cfg := testConfig()
	cycles := cfg.NetworkCycles(n)
	if cycles <= 0 {
		t.Fatal("non-positive network cycles")
	}
	// Lower bound: MACs / array size.
	lower := n.TotalMACs() / int64(cfg.NumMACs())
	if cycles < lower {
		t.Errorf("cycles %d below ideal %d", cycles, lower)
	}
	secs := cfg.SecondsAt(cycles)
	if secs <= 0 {
		t.Error("non-positive seconds")
	}
	// 200 MHz: seconds = cycles / 2e8.
	if want := float64(cycles) / 2e8; secs != want {
		t.Errorf("seconds = %g, want %g", secs, want)
	}
}

func TestQuickCyclesAtLeastIdeal(t *testing.T) {
	// Property: rounded mapping can never beat the ideal MACs/array
	// bound for conv layers.
	f := func(inC, outC, hw, k uint8) bool {
		ic := int(inC%64) + 1
		oc := int(outC%64) + 1
		sz := int(hw%16) + 3
		kk := []int{1, 3, 5}[int(k)%3]
		b := nn.NewBuilder("q", tensor.Shape{C: ic, H: sz, W: sz})
		b.Conv("c", b.InputName(), oc, kk, 1, kk/2)
		n, err := b.Finish()
		if err != nil {
			return false
		}
		conv := n.Layer("c")
		cfg := testConfig()
		cycles := cfg.LayerCycles(conv)
		ideal := float64(conv.MACs()) / float64(cfg.NumMACs())
		return float64(cycles) >= ideal && cfg.Utilization(conv) <= 1.0+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGroupedConvCycles(t *testing.T) {
	// Depthwise conv: each group has 1 input and 1 output channel, so
	// the array processes one channel pair per pass — groups dominate.
	b := nn.NewBuilder("g", tensor.Shape{C: 32, H: 8, W: 8})
	b.GroupedConv("dw", b.InputName(), 32, 3, 1, 1, 32)
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	dw := n.Layer("dw")
	cfg := testConfig()
	// 8*8 spatial × 32 groups × 9 window × ceil(1/16) × ceil(1/16).
	if got, want := cfg.LayerCycles(dw), int64(8*8*32*9); got != want {
		t.Errorf("depthwise cycles = %d, want %d", got, want)
	}
	// Utilization is 1/256: one MAC active per cycle.
	if u := cfg.Utilization(dw); u < 1.0/256-1e-9 || u > 1.0/256+1e-9 {
		t.Errorf("depthwise utilization = %f", u)
	}
}
