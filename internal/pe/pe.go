// Package pe models the processing-element array: a Tn×Tm grid of
// fixed-point MAC units (Tn input channels × Tm output channels in
// parallel), the organization used by the tiled accelerators the paper
// builds on and compares against. The model is cycle-approximate: it
// charges the loop-nest iteration count implied by the mapping, which
// captures the utilization loss from dimension rounding without
// simulating individual wires.
package pe

import (
	"fmt"

	"shortcutmining/internal/nn"
)

// Config sizes the array.
type Config struct {
	Tn       int     // parallel input channels (array rows)
	Tm       int     // parallel output channels (array columns)
	ClockMHz float64 // accelerator clock
	// VectorWidth is the element-wise datapath width (adders used by
	// pooling/eltwise layers, typically = Tm).
	VectorWidth int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Tn <= 0 || c.Tm <= 0 {
		return fmt.Errorf("pe: array dimensions must be positive, got %dx%d", c.Tn, c.Tm)
	}
	if c.ClockMHz <= 0 {
		return fmt.Errorf("pe: clock must be positive, got %g", c.ClockMHz)
	}
	if c.VectorWidth <= 0 {
		return fmt.Errorf("pe: vector width must be positive, got %d", c.VectorWidth)
	}
	return nil
}

// NumMACs returns the MAC count of the array.
func (c Config) NumMACs() int { return c.Tn * c.Tm }

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// LayerCycles returns the compute cycles for one invocation of the
// layer on a single image. The array processes, per cycle, Tn×Tm MACs
// of one kernel position of one output pixel; full input- and
// output-channel tiles are rounded up, which is where utilization is
// lost on channel counts that do not divide the array.
func (c Config) LayerCycles(l *nn.Layer) int64 {
	switch l.Kind {
	case nn.OpConv:
		g := l.NumGroups()
		spatial := int64(l.Out.H) * int64(l.Out.W)
		perPixel := int64(g) * int64(l.K*l.K) *
			int64(ceilDiv(l.In[0].C/g, c.Tn)) * int64(ceilDiv(l.OutC/g, c.Tm))
		return spatial * perPixel
	case nn.OpFC:
		return int64(ceilDiv(l.In[0].Elems(), c.Tn)) * int64(ceilDiv(l.OutC, c.Tm))
	case nn.OpPool:
		// One comparator/adder pass per window element per output.
		return int64(l.Out.Elems()) * int64(l.K*l.K) / int64(c.VectorWidth)
	case nn.OpGlobalPool:
		return int64(l.In[0].Elems()) / int64(c.VectorWidth)
	case nn.OpEltwiseAdd:
		return int64(l.Out.Elems()) * int64(len(l.In)-1) / int64(c.VectorWidth)
	case nn.OpShuffle:
		// A permuting copy through the vector datapath.
		return int64(l.Out.Elems()) / int64(c.VectorWidth)
	case nn.OpConcat, nn.OpInput:
		// Concatenation is a buffer-layout operation; it moves no data
		// through the datapath in either design.
		return 0
	}
	return 0
}

// Utilization returns achieved MACs per cycle divided by peak for the
// given layer (1.0 when the channel counts divide the array exactly).
// Non-MAC layers report 0.
func (c Config) Utilization(l *nn.Layer) float64 {
	if l.Kind != nn.OpConv && l.Kind != nn.OpFC {
		return 0
	}
	cycles := c.LayerCycles(l)
	if cycles == 0 {
		return 0
	}
	return float64(l.MACs()) / (float64(cycles) * float64(c.NumMACs()))
}

// NetworkCycles sums compute cycles over all layers for one image.
func (c Config) NetworkCycles(n *nn.Network) int64 {
	var total int64
	for _, l := range n.Layers {
		total += c.LayerCycles(l)
	}
	return total
}

// SecondsAt converts cycles to seconds at the configured clock.
func (c Config) SecondsAt(cycles int64) float64 {
	return float64(cycles) / (c.ClockMHz * 1e6)
}
