package core

import (
	"testing"

	"shortcutmining/internal/dram"
	"shortcutmining/internal/nn"
	"shortcutmining/internal/tensor"
)

// concatNet: squeeze → (e1 ‖ e3) → concat → head, plus a consumer of
// e1 after the concat to exercise multi-consumer expansion.
func concatNet(t *testing.T) *nn.Network {
	t.Helper()
	b := nn.NewBuilder("cat", tensor.Shape{C: 8, H: 8, W: 8})
	sq := b.Conv("sq", b.InputName(), 4, 1, 1, 0) // 1
	e1 := b.Conv("e1", sq, 8, 1, 1, 0)            // 2
	e3 := b.Conv("e3", sq, 8, 3, 1, 1)            // 3
	cat := b.Concat("cat", e1, e3)                // 4
	head := b.Conv("head", cat, 8, 1, 1, 0)       // 5
	b.Concat("cat2", head, e1)                    // 6: e1 read again
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestConsumptionPlanExpandsConcats(t *testing.T) {
	n := concatNet(t)
	cp := buildConsumptionPlan(n)

	// The concat layers themselves consume nothing.
	if len(cp.sources[4]) != 0 || len(cp.sources[6]) != 0 {
		t.Errorf("concat sources = %v / %v, want empty", cp.sources[4], cp.sources[6])
	}
	// head (5) reads e1 (2) and e3 (3) through the concat.
	if got := cp.sources[5]; len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("head sources = %v, want [2 3]", got)
	}
	// sq (1) is read by e1 and e3 only.
	if cp.consumers[1] != 2 {
		t.Errorf("sq consumers = %d, want 2", cp.consumers[1])
	}
	// e1 (2) is read by head (through cat) and would be read again by
	// a consumer of cat2 — but cat2 has no consumers, so e1's last use
	// is head.
	if cp.consumers[2] != 1 || cp.lastUse[2] != 5 {
		t.Errorf("e1 consumers=%d lastUse=%d, want 1/5", cp.consumers[2], cp.lastUse[2])
	}
	// Unconsumed outputs last-use themselves.
	if cp.lastUse[6] != 6 {
		t.Errorf("cat2 lastUse = %d", cp.lastUse[6])
	}
}

func TestConsumptionPlanNestedConcats(t *testing.T) {
	b := nn.NewBuilder("nest", tensor.Shape{C: 4, H: 8, W: 8})
	a := b.Conv("a", b.InputName(), 4, 1, 1, 0) // 1
	c := b.Conv("c", b.InputName(), 4, 1, 1, 0) // 2
	cat1 := b.Concat("cat1", a, c)              // 3
	d := b.Conv("d", b.InputName(), 4, 1, 1, 0) // 4
	cat2 := b.Concat("cat2", cat1, d)           // 5
	b.Conv("head", cat2, 4, 1, 1, 0)            // 6
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cp := buildConsumptionPlan(n)
	// head reads a, c, d through two concat levels, in order.
	want := []int{1, 2, 4}
	got := cp.sources[6]
	if len(got) != len(want) {
		t.Fatalf("head sources = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("source[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// The input feeds a, c, d: three consumers.
	if cp.consumers[0] != 3 {
		t.Errorf("input consumers = %d, want 3", cp.consumers[0])
	}
}

func TestConsumptionPlanDuplicateReads(t *testing.T) {
	// add(x, x2) where both operands trace to the same producer via
	// different paths must keep the duplicate for traffic purposes.
	b := nn.NewBuilder("dup", tensor.Shape{C: 4, H: 8, W: 8})
	x := b.Conv("x", b.InputName(), 4, 1, 1, 0) // 1
	y := b.Conv("y", x, 4, 3, 1, 1)             // 2
	b.Add("add", x, y)                          // 3: x read alongside y
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cp := buildConsumptionPlan(n)
	if got := cp.sources[3]; len(got) != 2 {
		t.Fatalf("add sources = %v", got)
	}
	// x is consumed by two distinct layers (y and add), counted once
	// per layer.
	if cp.consumers[1] != 2 {
		t.Errorf("x consumers = %d, want 2", cp.consumers[1])
	}
}

func TestUniqueInts(t *testing.T) {
	cases := []struct {
		in, want []int
	}{
		{nil, nil},
		{[]int{1}, []int{1}},
		{[]int{3, 1, 3, 2, 1}, []int{3, 1, 2}},
	}
	for _, c := range cases {
		got := uniqueInts(c.in)
		if len(got) != len(c.want) {
			t.Errorf("uniqueInts(%v) = %v", c.in, got)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("uniqueInts(%v)[%d] = %d, want %d", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestNextUseAfter(t *testing.T) {
	n := concatNet(t)
	e, err := newExecutor(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	e.net = n
	e.cp = buildConsumptionPlan(n)
	// e1 (2) is next used at head (5) from any point before.
	if got := e.nextUseAfter(2, 2); got != 5 {
		t.Errorf("nextUseAfter(e1, 2) = %d, want 5", got)
	}
	if got := e.nextUseAfter(2, 5); got != len(n.Layers)+1 {
		t.Errorf("nextUseAfter(e1, 5) = %d, want sentinel", got)
	}
}

func TestMemCyclesDualChannel(t *testing.T) {
	cfg := Default()
	cfg.DRAM.BandwidthGBps = 1.0  // fmap channel
	cfg.WeightBandwidthGBps = 2.0 // weight channel
	e, err := newExecutor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tr dram.Traffic
	// At 200 MHz: fmap channel moves 5 B/cycle, weight channel 10.
	tr[dram.ClassIFMRead] = 500     // 100 cycles on the fmap channel
	tr[dram.ClassWeightRead] = 2000 // 200 cycles on the weight channel
	if got := e.memCycles(tr); got != 200 {
		t.Errorf("dual-channel cycles = %d, want 200 (weight-bound)", got)
	}
	tr[dram.ClassWeightRead] = 100 // 10 cycles
	if got := e.memCycles(tr); got != 100 {
		t.Errorf("dual-channel cycles = %d, want 100 (fmap-bound)", got)
	}
	// Shared channel: everything serializes.
	cfg.WeightBandwidthGBps = 0
	e2, err := newExecutor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.memCycles(tr); got != 120 {
		t.Errorf("shared-channel cycles = %d, want 120", got)
	}
}

func TestReadClassRules(t *testing.T) {
	n := residualNet(t) // input(0) c1(1) c2(2) c3(3) add(4)
	e, err := newExecutor(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	e.net = n
	// Baseline (no role switch): adjacency reads are plain IFM.
	e.feat = Features{}
	if got := e.readClass(0, n.Layers[1]); got != dram.ClassIFMRead {
		t.Errorf("image read class = %v", got)
	}
	if got := e.readClass(1, n.Layers[2]); got != dram.ClassIFMRead {
		t.Errorf("baseline adjacent class = %v", got)
	}
	if got := e.readClass(1, n.Layers[4]); got != dram.ClassShortcutRead {
		t.Errorf("shortcut class = %v", got)
	}
	// With role switching, a DRAM-sourced adjacent read is a spill.
	e.feat = SCM.Features()
	if got := e.readClass(1, n.Layers[2]); got != dram.ClassSpillRead {
		t.Errorf("spill class = %v", got)
	}
	if got := e.readClass(0, n.Layers[1]); got != dram.ClassIFMRead {
		t.Errorf("image read class under scm = %v", got)
	}
}
