package core

import (
	"context"
	"fmt"

	"shortcutmining/internal/dram"
	"shortcutmining/internal/metrics"
	"shortcutmining/internal/nn"
	"shortcutmining/internal/sram"
	"shortcutmining/internal/stats"
	"shortcutmining/internal/trace"
)

// Run is a resumable, layer-granular simulation: the stepping API
// underneath Simulate* and the unit the multi-tenant scheduler
// (internal/sched) interleaves on one accelerator. A Run advances one
// layer per Step, can be suspended at any layer boundary — spilling
// its live logical buffers to DRAM so another tenant may use the bank
// pool — and resumed later, paying the re-load cost.
//
// The single-tenant path (NewRun + Step until done, no suspends)
// produces RunStats bit-identical to Simulate: suspend/resume costs
// are accounted separately in SchedStats, never folded into the run's
// own traffic or cycle attribution, so per-stream results always
// reconcile exactly against the single-tenant baseline.
type Run struct {
	e     *executor
	label string // strategy label override (NewRun); empty keeps featureLabel

	next      int // index of the next layer to execute
	done      bool
	err       error
	result    stats.RunStats
	suspended bool
	saved     []savedBuffer
	sched     SchedStats
}

// savedBuffer records what Suspend tore down so Resume can rebuild an
// equivalent pool state: the same bank count, role, tag, and pin
// status yield identical downstream scheduling decisions.
type savedBuffer struct {
	producer int
	role     sram.Role
	tag      string
	banks    int
	pinned   bool
}

// SchedStats is the multi-tenancy cost ledger of a Run: everything a
// scheduler did to it on top of its single-tenant execution. The
// fields are deliberately not part of RunStats — per-stream traffic
// stays bit-identical to the single-tenant run, and the scheduler
// reports these separately.
type SchedStats struct {
	Suspends int64 `json:"suspends"`
	Resumes  int64 `json:"resumes"`
	// SpillBytes is written to DRAM at suspension: the resident bytes
	// that had no up-to-date DRAM copy (burst-rounded).
	SpillBytes int64 `json:"spill_bytes"`
	// ReloadBytes is read back at resumption: the bytes that must be
	// resident again for the run to continue where it left off.
	ReloadBytes int64 `json:"reload_bytes"`
	// SpillCycles / ReloadCycles are the channel-occupancy cycles of
	// the above, charged to the stream by the scheduler (they never
	// appear in RunStats.TotalCycles).
	SpillCycles  int64 `json:"spill_cycles"`
	ReloadCycles int64 `json:"reload_cycles"`
}

// Footprint is a point-in-time view of a run's bank-pool occupancy —
// what Suspend would have to spill.
type Footprint struct {
	UsedBanks     int   `json:"used_banks"`
	PinnedBanks   int   `json:"pinned_banks"`
	FreeBanks     int   `json:"free_banks"`
	ResidentBytes int64 `json:"resident_bytes"`
}

// NewRun builds a resumable run under a canonical strategy. rec and
// reg may be nil (no trace, no metrics).
func NewRun(net *nn.Network, cfg Config, strat Strategy, rec trace.Recorder, reg *metrics.Registry) (*Run, error) {
	r, err := NewRunFeatures(net, cfg, strat.Features(), rec, reg)
	if err != nil {
		return nil, err
	}
	r.label = strat.String()
	return r, nil
}

// NewRunFeatures builds a resumable run with an explicit feature set.
// It performs the same validation and setup as SimulateFeatures but
// executes nothing: the first layer runs on the first Step.
func NewRunFeatures(net *nn.Network, cfg Config, feat Features, rec trace.Recorder, reg *metrics.Registry) (*Run, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	e, err := newExecutor(cfg)
	if err != nil {
		return nil, err
	}
	if rec != nil {
		e.rec = &trace.Stamper{R: rec}
	}
	e.obs = newObserver(reg)
	e.obs.attach(e)
	e.net = net
	e.feat = feat
	e.cp = buildConsumptionPlan(net)
	e.residents = make([]*resident, len(net.Layers))
	e.run = stats.RunStats{
		Network:  net.Name,
		Strategy: featureLabel(feat),
		Batch:    cfg.Batch,
		ClockMHz: cfg.PE.ClockMHz,
	}
	return &Run{e: e}, nil
}

// Network returns the network the run executes.
func (r *Run) Network() *nn.Network { return r.e.net }

// NumLayers is the total layer count; NextLayer the index of the next
// layer Step would execute (== NumLayers once done).
func (r *Run) NumLayers() int { return len(r.e.net.Layers) }

// NextLayer returns the index of the next layer to execute.
func (r *Run) NextLayer() int { return r.next }

// Done reports whether every layer has executed and the epilogue ran.
func (r *Run) Done() bool { return r.done }

// Err returns the terminal error, if the run failed.
func (r *Run) Err() error { return r.err }

// Suspended reports whether the run is currently suspended.
func (r *Run) Suspended() bool { return r.suspended }

// Clock is the run's own attributed cycle count so far — the sum of
// executed layer cycles, excluding scheduler suspend/resume costs.
func (r *Run) Clock() int64 { return r.e.clock }

// Sched returns the accumulated multi-tenancy cost ledger.
func (r *Run) Sched() SchedStats { return r.sched }

// MinBankDemand is the smallest number of in-service banks the run
// needs to make progress: the streaming reserve plus one allocatable
// bank. The scheduler's admission control refuses to launch a run
// whose demand does not fit the shared pool.
func (r *Run) MinBankDemand() int { return r.e.cfg.ReserveBanks + 1 }

// Footprint reports the run's current bank-pool occupancy.
func (r *Run) Footprint() Footprint {
	var resident int64
	for _, res := range r.e.residents {
		if res != nil && res.buf != nil && !res.buf.Freed() {
			resident += res.onChip
		}
	}
	return Footprint{
		UsedBanks:     r.e.pool.UsedBanks(),
		PinnedBanks:   r.e.pool.PinnedBanks(),
		FreeBanks:     r.e.pool.FreeBanks(),
		ResidentBytes: resident,
	}
}

// Handoff describes what a cross-chip boundary at the current layer
// boundary would have to move: the live on-chip bytes split into
// ordinary feature-map state and pinned shortcut state. Procedures
// P2–P5 keep the latter resident across a span of layers, so a
// placement cut through a shortcut span forces the pinned banks over
// the interconnect link — the quantity shortcut-affinity placement
// (internal/cluster) exists to minimize.
type Handoff struct {
	FmapBytes     int64 `json:"fmap_bytes"`
	ShortcutBytes int64 `json:"shortcut_bytes"`
}

// Total is the full payload a chip-to-chip handoff must carry.
func (h Handoff) Total() int64 { return h.FmapBytes + h.ShortcutBytes }

// Handoff reports the current cross-chip handoff payload. Like
// Footprint it is a read-only snapshot; Suspend remains the mechanism
// that actually evacuates the state.
func (r *Run) Handoff() Handoff {
	var h Handoff
	for _, res := range r.e.residents {
		if res == nil || res.buf == nil || res.buf.Freed() {
			continue
		}
		if res.buf.Pinned() {
			h.ShortcutBytes += res.onChip
		} else {
			h.FmapBytes += res.onChip
		}
	}
	return h
}

// fail parks the run in its terminal error state.
func (r *Run) fail(err error) error {
	r.err = err
	return err
}

// Step executes the next layer (auto-resuming a suspended run first)
// and returns true once the whole network has executed and the run
// epilogue (leak checks, stats assembly) completed. Cancellation is
// cooperative at layer granularity, exactly like SimulateContext.
// After an error the run is terminal: further Steps return the same
// error.
func (r *Run) Step(ctx context.Context) (bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if r.err != nil {
		return false, r.err
	}
	if r.done {
		return true, nil
	}
	if r.suspended {
		if err := r.Resume(); err != nil {
			return false, err
		}
	}
	l := r.e.net.Layers[r.next]
	if err := ctx.Err(); err != nil {
		return false, r.fail(fmt.Errorf("core: %s: canceled before layer %s: %w", r.e.net.Name, l.Name, err))
	}
	if err := r.e.execLayer(l); err != nil {
		return false, r.fail(fmt.Errorf("core: %s: layer %s: %w", r.e.net.Name, l.Name, err))
	}
	r.next++
	if r.next == len(r.e.net.Layers) {
		res, err := r.e.finish()
		if err != nil {
			return false, r.fail(err)
		}
		if r.label != "" {
			res.Strategy = r.label
		}
		r.result = res
		r.done = true
	}
	return r.done, nil
}

// Result returns the finished run's statistics. It errors until Done.
func (r *Run) Result() (stats.RunStats, error) {
	if r.err != nil {
		return stats.RunStats{}, r.err
	}
	if !r.done {
		return stats.RunStats{}, fmt.Errorf("core: %s: run not finished (next layer %d of %d)",
			r.e.net.Name, r.next, len(r.e.net.Layers))
	}
	return r.result, nil
}

// Suspend vacates the bank pool at a layer boundary so another tenant
// can use it: every live logical buffer is torn down, resident bytes
// without an up-to-date DRAM copy are spilled (procedure P5 applied to
// the whole working set), and enough is remembered to rebuild an
// equivalent pool state on Resume. It returns the footprint that was
// live at the moment of suspension. Suspending a run that holds no
// buffers is free. Functional-verification runs cannot be suspended
// (their golden payloads live in the buffers).
func (r *Run) Suspend() (Footprint, error) {
	if r.err != nil {
		return Footprint{}, r.err
	}
	if r.done {
		return Footprint{}, fmt.Errorf("core: %s: cannot suspend a finished run", r.e.net.Name)
	}
	if r.suspended {
		return Footprint{}, fmt.Errorf("core: %s: already suspended", r.e.net.Name)
	}
	if r.e.fn != nil {
		return Footprint{}, fmt.Errorf("core: %s: functional-verification runs are single-tenant", r.e.net.Name)
	}
	fp := r.Footprint()
	layer := "(pre-start)"
	if r.next > 0 {
		layer = r.e.net.Layers[r.next-1].Name
	}
	for p, res := range r.e.residents {
		if res == nil || res.buf == nil || res.buf.Freed() {
			continue
		}
		buf := res.buf
		r.saved = append(r.saved, savedBuffer{
			producer: p,
			role:     buf.Role(),
			tag:      buf.Tag(),
			banks:    buf.NumBanks(),
			pinned:   buf.Pinned(),
		})
		// Only bytes with no current DRAM copy must be written back;
		// a fully spilled fmap whose prefix is also resident re-loads
		// for free traffic-wise. The write-back goes through the
		// interlayer codec like any spill: the ledger records the wire
		// bytes, and encode time joins the spill's cycle bill.
		if dirty := res.total - res.spilled; dirty > 0 {
			moved := r.e.ch.WirePayload(dram.ClassSpillWrite, dirty)
			r.sched.SpillBytes += moved
			r.sched.SpillCycles += r.e.ch.CyclesAt(moved, r.e.cfg.PE.ClockMHz)
			if r.e.comp != nil {
				enc, _ := r.e.comp.CodecCycles(dram.ClassSpillWrite, dirty)
				r.sched.SpillCycles += enc
			}
			r.e.record(trace.Event{Kind: trace.KindSpill, Layer: layer, Tag: buf.Tag(),
				Bytes: moved, Note: "suspend"})
			res.spilled = res.total
		}
		if buf.Pinned() {
			if err := r.e.pool.Unpin(buf); err != nil {
				return Footprint{}, r.fail(err)
			}
		}
		if err := r.e.pool.Free(buf); err != nil {
			return Footprint{}, r.fail(err)
		}
		res.buf = nil
	}
	if used := r.e.pool.UsedBanks(); used != 0 {
		return Footprint{}, r.fail(fmt.Errorf("core: %s: %d banks still occupied after suspend", r.e.net.Name, used))
	}
	r.sched.Suspends++
	r.suspended = true
	return fp, nil
}

// Resume rebuilds the pool state Suspend recorded — same bank counts,
// roles, tags, and pin status — and charges the re-load traffic for
// the bytes that must be resident again. The run then continues
// exactly as if it had never been preempted.
func (r *Run) Resume() error {
	if r.err != nil {
		return r.err
	}
	if !r.suspended {
		return fmt.Errorf("core: %s: not suspended", r.e.net.Name)
	}
	bankBytes := r.e.bankBytes()
	for _, s := range r.saved {
		buf, err := r.e.pool.Alloc(s.role, s.tag, int64(s.banks)*bankBytes)
		if err != nil {
			return r.fail(fmt.Errorf("core: %s: resuming %s: %w", r.e.net.Name, s.tag, err))
		}
		if s.pinned {
			if err := r.e.pool.Pin(buf); err != nil {
				return r.fail(err)
			}
		}
		res := r.e.residents[s.producer]
		res.buf = buf
		if res.onChip > 0 {
			moved := r.e.ch.WirePayload(dram.ClassSpillRead, res.onChip)
			r.sched.ReloadBytes += moved
			r.sched.ReloadCycles += r.e.ch.CyclesAt(moved, r.e.cfg.PE.ClockMHz)
			if r.e.comp != nil {
				_, dec := r.e.comp.CodecCycles(dram.ClassSpillRead, res.onChip)
				r.sched.ReloadCycles += dec
			}
			r.e.record(trace.Event{Kind: trace.KindRefill, Layer: r.e.net.Layers[r.next].Name,
				Tag: s.tag, Bytes: moved, Note: "resume"})
		}
	}
	r.saved = r.saved[:0]
	r.sched.Resumes++
	r.suspended = false
	return nil
}
