package core

import (
	"testing"

	"shortcutmining/internal/dram"
	"shortcutmining/internal/nn"
	"shortcutmining/internal/trace"
)

// TestPerLayerTrafficSumsToRunTotals pins the accounting identity the
// reports rely on: the run's traffic is exactly the sum of its layers'
// (at batch 1; batch scales the totals, not the per-layer slices).
func TestPerLayerTrafficSumsToRunTotals(t *testing.T) {
	cfg := Default()
	for _, name := range []string{"resnet34", "squeezenet-bypass", "googlenet", "densenet121"} {
		net := nn.MustBuild(name)
		for _, s := range Strategies() {
			r, err := Simulate(net, cfg, s, nil)
			if err != nil {
				t.Fatal(err)
			}
			var sum dram.Traffic
			var cycles int64
			for _, l := range r.Layers {
				sum.Add(l.Traffic)
				cycles += l.Cycles
			}
			if sum != r.Traffic {
				t.Errorf("%s/%v: Σ layer traffic %v != run traffic %v", name, s, sum, r.Traffic)
			}
			if cycles != r.TotalCycles {
				t.Errorf("%s/%v: Σ layer cycles %d != run cycles %d", name, s, cycles, r.TotalCycles)
			}
		}
	}
}

// TestOccupancyTimelineBoundedByPeak: the layer-end occupancy timeline
// never exceeds the pool's tracked peak (the peak may be higher —
// it includes intra-layer transients).
func TestOccupancyTimelineBoundedByPeak(t *testing.T) {
	var buf trace.Buffer
	net := nn.MustBuild("resnet34")
	r, err := Simulate(net, Default(), SCM, &buf)
	if err != nil {
		t.Fatal(err)
	}
	tl := trace.Timeline(buf.Events)
	if len(tl) != len(net.Layers) {
		t.Fatalf("timeline has %d points for %d layers", len(tl), len(net.Layers))
	}
	maxEnd := 0
	for _, p := range tl {
		if p.UsedBanks > maxEnd {
			maxEnd = p.UsedBanks
		}
	}
	if maxEnd > r.PeakUsedBanks {
		t.Errorf("timeline max %d exceeds tracked peak %d", maxEnd, r.PeakUsedBanks)
	}
	if maxEnd == 0 {
		t.Error("timeline shows an empty pool throughout an SCM run")
	}
	// The final layer leaves the pool empty.
	if tl[len(tl)-1].UsedBanks != 0 {
		t.Errorf("pool not empty at the end: %d banks", tl[len(tl)-1].UsedBanks)
	}
}

// TestReusedPlusDramCoversInputs: for every executed layer, the bytes
// served on chip plus the bytes fetched from DRAM must cover the
// layer's input footprint (DRAM may exceed its share through halo
// re-reads, never undershoot it).
func TestReusedPlusDramCoversInputs(t *testing.T) {
	cfg := Default()
	net := nn.MustBuild("resnet34")
	r, err := Simulate(net, cfg, SCM, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, ls := range r.Layers {
		if ls.Kind == "input" || ls.Kind == "concat" {
			continue
		}
		l := net.Layer(ls.Name)
		var inBytes int64
		for _, s := range l.In {
			inBytes += s.Bytes(cfg.DType)
		}
		dramIn := ls.Traffic[dram.ClassIFMRead] + ls.Traffic[dram.ClassSpillRead] + ls.Traffic[dram.ClassShortcutRead]
		if ls.ReusedInputBytes+dramIn < inBytes {
			t.Errorf("%s: reused %d + dram %d < input footprint %d",
				ls.Name, ls.ReusedInputBytes, dramIn, inBytes)
		}
	}
}

// TestLivenessPeakPredictsPerfectReuse ties the static analysis to the
// scheduler: a pool that covers nn.AnalyzeLiveness's live peak (plus
// bank-rounding slack and the streaming reserve) must let SCM serve
// every internal edge on chip, leaving exactly the input image read
// and the final output write as feature-map traffic.
func TestLivenessPeakPredictsPerfectReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("zoo-wide liveness sweep skipped in -short mode")
	}
	for _, name := range nn.ZooNames() {
		net := nn.MustBuild(name)
		cfg := Default()
		cfg.Pool.BankBytes = 4 << 10
		lv := nn.AnalyzeLiveness(net, cfg.DType)
		// Slack: every concurrently live fmap may waste up to one bank.
		slack := int64(len(net.Layers)) * int64(cfg.Pool.BankBytes)
		reserve := int64(cfg.ReserveBanks) * int64(cfg.Pool.BankBytes)
		cfg = cfg.WithPoolBytes(lv.LivePeak + slack + reserve)

		r, err := Simulate(net, cfg, SCM, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		d := cfg.DType
		want := net.Input().Out.Bytes(d) + net.Output().Out.Bytes(d)
		got := r.FmapTrafficBytes()
		// Upper tolerance: one burst per DRAM transfer. Lower: the
		// strided DMA may legitimately skip image boundary rows a
		// pad-0 stem never touches (e.g. SqueezeNet reads 223 of 224).
		in := net.Input().Out
		rowBytes := int64(in.W) * int64(in.C) * int64(d.Bytes())
		if got > want+2*int64(cfg.DRAM.BurstBytes) || got < want-4*rowBytes {
			t.Errorf("%s: fmap traffic %d, want ≈image+result %d (pool %d)",
				name, got, want, cfg.Pool.TotalBytes())
		}
		if r.Traffic[dram.ClassSpillWrite] != 0 || r.Traffic[dram.ClassShortcutRead] != 0 {
			t.Errorf("%s: spills/shortcut reads at liveness-peak capacity", name)
		}
	}
}
