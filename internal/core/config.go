// Package core implements the paper's contribution: the Shortcut
// Mining accelerator scheduler, built from five procedures over the
// sram bank pool —
//
//	P1 logical buffer formation,
//	P2 zero-copy role switching (output becomes next input),
//	P3 shortcut retention across any number of intermediate layers,
//	P4 incremental bank recycling at the element-wise add,
//	P5 partial retention with graceful spilling,
//
// — together with the conventional baseline scheduler (static
// ping-pong buffers, per-layer DRAM round trips) and the role-switch-
// only ablation the experiments compare against. One executor
// parameterized by a Features set implements all of them, so every
// design point shares the tiling, DRAM, and PE models and differs only
// in buffer policy.
package core

import (
	"fmt"

	"shortcutmining/internal/compress"
	"shortcutmining/internal/dram"
	"shortcutmining/internal/energy"
	"shortcutmining/internal/fault"
	"shortcutmining/internal/pe"
	"shortcutmining/internal/sram"
	"shortcutmining/internal/tensor"
)

// Strategy names a buffer-management design point.
type Strategy int

const (
	// Baseline is the conventional accelerator: static ping-pong
	// input/output buffers, every feature map round-trips through
	// DRAM.
	Baseline Strategy = iota
	// FMReuse enables only role switching (P1+P2): each layer's output
	// stays on chip for the immediately following layer, but shortcut
	// operands still round-trip.
	FMReuse
	// SCM is full Shortcut Mining: P1–P5.
	SCM
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Baseline:
		return "baseline"
	case FMReuse:
		return "fm-reuse"
	case SCM:
		return "scm"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy converts a CLI string into a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "baseline":
		return Baseline, nil
	case "fm-reuse", "fmreuse":
		return FMReuse, nil
	case "scm", "shortcut-mining":
		return SCM, nil
	}
	return Baseline, fmt.Errorf("core: unknown strategy %q", s)
}

// Strategies lists the design points in comparison order.
func Strategies() []Strategy { return []Strategy{Baseline, FMReuse, SCM} }

// Features is the ablation switchboard (experiment E8). Zero value =
// baseline; Strategy.Features returns the canonical sets.
type Features struct {
	RoleSwitch         bool `json:"RoleSwitch"`         // P1+P2: reuse output as next layer's input
	ShortcutRetention  bool `json:"ShortcutRetention"`  // P3: pin shortcut fmaps across layers
	IncrementalRecycle bool `json:"IncrementalRecycle"` // P4: recycle consumed shortcut banks into the add's output
	PartialRetention   bool `json:"PartialRetention"`   // P5: retain what fits instead of all-or-nothing

	// StreamingRecycle extends P4 to windowed layers (extension,
	// experiment E18 — not part of the paper's canonical SCM): a conv
	// or pool whose input makes its final pass may release consumed
	// input banks to its own output, keeping a sliding-window margin
	// resident. It relieves the output-retention squeeze at layers
	// whose input and output together exceed the pool.
	StreamingRecycle bool `json:"StreamingRecycle"`
}

// Features returns the canonical feature set of the strategy.
func (s Strategy) Features() Features {
	switch s {
	case FMReuse:
		return Features{RoleSwitch: true, PartialRetention: true}
	case SCM:
		return Features{RoleSwitch: true, ShortcutRetention: true, IncrementalRecycle: true, PartialRetention: true}
	default:
		return Features{}
	}
}

// Config is the accelerator platform shared by every strategy.
type Config struct {
	PE     pe.Config
	Pool   sram.Config // feature-map bank pool (the baseline statically splits it)
	DRAM   dram.Config
	Energy energy.Model

	WeightBufBytes int64 // dedicated (double-buffered) weight SRAM
	// WeightBandwidthGBps is the dedicated weight DDR channel (the
	// prototype board has two SODIMMs: feature maps on one, weights on
	// the other). Zero means weights share the feature-map channel.
	WeightBandwidthGBps float64
	DType               tensor.DataType
	Batch               int
	// AmortizeWeights models batch processing with a layer-inner batch
	// loop: each layer's weights stream once per batch instead of once
	// per image. Feature-map traffic and compute still scale with the
	// batch (the pool holds one image's working set).
	AmortizeWeights bool

	// ReserveBanks stay unretained so spilled regions always have
	// streaming buffers; retention allocations may not dip into them.
	ReserveBanks int
	// ControlCycles is the fixed per-layer scheduling overhead.
	ControlCycles int64
	// Eviction selects what happens when a retained output needs banks
	// held by pinned shortcut data (design-space study, experiment
	// E15). The paper's design never evicts retained data.
	Eviction EvictionPolicy
	// DetailedTiming replaces the per-layer max(compute, mem)
	// approximation with a tile-level double-buffered pipeline model
	// (experiment E19). Traffic results are identical; cycle counts
	// grow by the pipeline fill/drain/imbalance bubbles.
	DetailedTiming bool

	// Compression is the optional interlayer feature-map codec applied
	// at the DRAM boundary (experiment E25, scm-sim -compress). Nil
	// means uncompressed. Weights are never compressed; see
	// dram.Class.Compressible for the eligible classes.
	Compression *compress.Config `json:",omitempty"`

	// Faults is the optional fault-injection plan replayed against the
	// run (experiment E22, scm-sim -faults). Nil means fault-free.
	Faults *fault.Spec `json:",omitempty"`
	// DMAMaxAttempts bounds attempts per DMA transfer (initial try
	// plus retries) under injected transient failures; exhausting it
	// is a fatal stuck-progress RunError. Zero means the default
	// (fault.DefaultMaxDMAAttempts).
	DMAMaxAttempts int
	// DMABackoffCycles is the wait after the first failed transfer
	// attempt; it doubles on every further retry (exponential
	// backoff). Zero means DefaultDMABackoffCycles.
	DMABackoffCycles int64
	// WatchdogLayerCycles, when positive, bounds the modeled cycles of
	// any single layer; exceeding it is a fatal liveness RunError.
	WatchdogLayerCycles int64
}

// DefaultDMABackoffCycles is the initial retry backoff when the config
// does not set one.
const DefaultDMABackoffCycles int64 = 64

// EvictionPolicy is the retention-conflict policy of procedure P5.
type EvictionPolicy int

const (
	// RetainPinned (the paper's policy) never evicts pinned shortcut
	// data; the conflicting output spills instead.
	RetainPinned EvictionPolicy = iota
	// EvictFarthest spills tail banks of the pinned feature map whose
	// next use is farthest in the future (Belady-style) when that next
	// use is farther than the output's.
	EvictFarthest
)

// String implements fmt.Stringer.
func (p EvictionPolicy) String() string {
	if p == EvictFarthest {
		return "evict-farthest"
	}
	return "retain-pinned"
}

// Default returns the calibrated platform used by the experiments
// (see DESIGN.md "Calibration notes" and EXPERIMENTS.md): a 64×56 MAC
// array at 200 MHz (3584 DSPs — a full Virtex-7 VC709, see
// internal/fpga), a 34-bank × 16 KiB feature-map pool (544 KiB),
// 512 KiB of double-buffered weight SRAM, a feature-map DDR channel
// with 1.0 GB/s effective bandwidth under short strided bursts, and a
// dedicated 12.8 GB/s weight channel (the board's second SODIMM).
func Default() Config {
	return Config{
		PE:                  pe.Config{Tn: 64, Tm: 56, ClockMHz: 200, VectorWidth: 64},
		Pool:                sram.Config{NumBanks: 34, BankBytes: 16 << 10},
		DRAM:                dram.Config{BandwidthGBps: 1.0, BurstBytes: 64, EnergyPJForB: 160},
		Energy:              energy.Default(),
		WeightBufBytes:      512 << 10,
		WeightBandwidthGBps: 12.8,
		DType:               tensor.Fixed16,
		Batch:               1,
		ReserveBanks:        6,
		ControlCycles:       500,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.PE.Validate(); err != nil {
		return err
	}
	if err := c.Pool.Validate(); err != nil {
		return err
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	if err := c.Energy.Validate(); err != nil {
		return err
	}
	if c.WeightBufBytes <= 0 {
		return fmt.Errorf("core: weight buffer must be positive, got %d", c.WeightBufBytes)
	}
	if c.WeightBandwidthGBps < 0 {
		return fmt.Errorf("core: negative weight bandwidth %g", c.WeightBandwidthGBps)
	}
	if c.Batch <= 0 {
		return fmt.Errorf("core: batch must be positive, got %d", c.Batch)
	}
	if c.ReserveBanks < 0 || c.ReserveBanks >= c.Pool.NumBanks {
		return fmt.Errorf("core: reserve %d out of range for %d banks", c.ReserveBanks, c.Pool.NumBanks)
	}
	if c.ControlCycles < 0 {
		return fmt.Errorf("core: negative control cycles")
	}
	if !c.DType.Valid() {
		return fmt.Errorf("core: unknown data type %v", c.DType)
	}
	if c.DMAMaxAttempts < 0 {
		return fmt.Errorf("core: negative DMA attempt budget %d", c.DMAMaxAttempts)
	}
	if c.DMABackoffCycles < 0 {
		return fmt.Errorf("core: negative DMA backoff %d", c.DMABackoffCycles)
	}
	if c.WatchdogLayerCycles < 0 {
		return fmt.Errorf("core: negative watchdog bound %d", c.WatchdogLayerCycles)
	}
	if err := c.Compression.Validate(); err != nil {
		return err
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	return nil
}

// WithPoolBytes returns a copy of the config whose pool capacity is
// approximately totalBytes, preserving the bank size (used by the
// buffer sweep, experiment E6).
func (c Config) WithPoolBytes(totalBytes int64) Config {
	banks := int((totalBytes + int64(c.Pool.BankBytes) - 1) / int64(c.Pool.BankBytes))
	if banks < c.ReserveBanks+1 {
		banks = c.ReserveBanks + 1
	}
	c.Pool.NumBanks = banks
	return c
}
