package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// DecodeConfigJSON reads a platform configuration. Fields absent from
// the document keep their calibrated defaults, so a config file only
// needs the parameters it changes:
//
//	{"Pool": {"NumBanks": 64, "BankBytes": 16384}, "Batch": 4}
//
// The result is validated before being returned.
func DecodeConfigJSON(r io.Reader) (Config, error) {
	cfg := Default()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("core: decoding config json: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// EncodeConfigJSON writes the configuration in the format
// DecodeConfigJSON reads.
func EncodeConfigJSON(w io.Writer, cfg Config) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cfg)
}
