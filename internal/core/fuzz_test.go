package core

import (
	"testing"

	"shortcutmining/internal/nn"
	"shortcutmining/internal/sram"
	"shortcutmining/internal/tensor"
)

// TestFuzzRandomNetworksAnalytical runs generator networks through
// every strategy at several pool sizes and checks the global
// invariants: simulations succeed, traffic ordering holds, weights are
// strategy-independent, and the pool is returned intact (enforced
// inside finish).
func TestFuzzRandomNetworksAnalytical(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		net, err := nn.RandomNetwork(seed)
		if err != nil {
			t.Fatalf("RandomNetwork(%d): %v", seed, err)
		}
		for _, banks := range []int{8, 16, 64} {
			cfg := Default()
			cfg.Pool = sram.Config{NumBanks: banks, BankBytes: 1 << 10}
			cfg.ReserveBanks = 2
			cfg.WeightBufBytes = 1 << 20

			base, err := Simulate(net, cfg, Baseline, nil)
			if err != nil {
				t.Fatalf("seed %d banks %d baseline: %v", seed, banks, err)
			}
			fmr, err := Simulate(net, cfg, FMReuse, nil)
			if err != nil {
				t.Fatalf("seed %d banks %d fm-reuse: %v", seed, banks, err)
			}
			scm, err := Simulate(net, cfg, SCM, nil)
			if err != nil {
				t.Fatalf("seed %d banks %d scm: %v", seed, banks, err)
			}
			b, f, s := base.FmapTrafficBytes(), fmr.FmapTrafficBytes(), scm.FmapTrafficBytes()
			if !(f <= b && s <= b) {
				t.Fatalf("seed %d banks %d: ordering vs baseline violated scm=%d fmr=%d base=%d (%s)",
					seed, banks, s, f, b, net.Name)
			}
			// scm ≤ fm-reuse holds on realistic configurations (tested
			// strictly on the zoo at the default platform) but is NOT a
			// theorem: at degenerate pool sizes, pinned shortcut banks
			// can displace intermediate outputs whose spilled re-reads
			// carry halo overhead, costing slightly more than the
			// shortcut re-fetch they save (see DESIGN.md, Limitations;
			// the E15 eviction policy mitigates). Allow that pathology a
			// bounded margin.
			if float64(s) > 1.15*float64(f) {
				t.Fatalf("seed %d banks %d: scm=%d far above fmr=%d (%s)",
					seed, banks, s, f, net.Name)
			}
			if base.Traffic[2] != scm.Traffic[2] { // ClassWeightRead
				t.Fatalf("seed %d: weight traffic differs across strategies", seed)
			}
		}
	}
}

// TestFuzzRandomNetworksFunctional is the deepest randomized check:
// real data through the buffer machinery for generator networks under
// tight pools, verified bit-exactly at every consumption point.
func TestFuzzRandomNetworksFunctional(t *testing.T) {
	if testing.Short() {
		t.Skip("functional fuzzing skipped in -short mode")
	}
	for seed := int64(0); seed < 120; seed++ {
		net, err := nn.RandomNetwork(seed)
		if err != nil {
			t.Fatalf("RandomNetwork(%d): %v", seed, err)
		}
		for _, banks := range []int{6, 12, 40} {
			cfg := Default()
			cfg.Pool = sram.Config{NumBanks: banks, BankBytes: 1 << 10}
			cfg.ReserveBanks = 2
			cfg.WeightBufBytes = 1 << 20
			for _, s := range Strategies() {
				if _, err := VerifyFunctional(net, cfg, s.Features(), seed); err != nil {
					t.Fatalf("seed %d banks %d %v: %v", seed, banks, s, err)
				}
			}
		}
	}
}

// TestModernNetworksSimulate covers the extension zoo (depthwise
// convolutions, inception concats) end to end on the default platform.
func TestModernNetworksSimulate(t *testing.T) {
	cfg := Default()
	for _, name := range []string{"mobilenetv2", "googlenet"} {
		net := nn.MustBuild(name)
		base, err := Simulate(net, cfg, Baseline, nil)
		if err != nil {
			t.Fatalf("%s baseline: %v", name, err)
		}
		scm, err := Simulate(net, cfg, SCM, nil)
		if err != nil {
			t.Fatalf("%s scm: %v", name, err)
		}
		if scm.FmapTrafficBytes() >= base.FmapTrafficBytes() {
			t.Errorf("%s: no reduction (%d vs %d)", name, scm.FmapTrafficBytes(), base.FmapTrafficBytes())
		}
		if scm.Throughput() < base.Throughput() {
			t.Errorf("%s: SCM slower", name)
		}
	}
}

// TestFunctionalInvertedResidual verifies data integrity through a
// MobileNetV2-style block (expand → depthwise → project → add) under
// pressure — the depthwise grouped datapath joins the machinery here.
func TestFunctionalInvertedResidual(t *testing.T) {
	bb := nn.NewBuilder("ires", tensor.Shape{C: 8, H: 12, W: 12})
	x := bb.Conv("stem", bb.InputName(), 8, 3, 1, 1)
	y := bb.Conv("expand", x, 48, 1, 1, 0)
	y = bb.GroupedConv("dw", y, 48, 3, 1, 1, 48)
	y = bb.Conv("project", y, 8, 1, 1, 0)
	sum := bb.Add("add", x, y)
	bb.Conv("head", sum, 8, 1, 1, 0)
	net, err := bb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for _, banks := range []int{8, 16, 64} {
		cfg := Default()
		cfg.Pool = sram.Config{NumBanks: banks, BankBytes: 1 << 10}
		cfg.ReserveBanks = 2
		cfg.WeightBufBytes = 1 << 20
		if _, err := VerifyFunctional(net, cfg, SCM.Features(), 5); err != nil {
			t.Fatalf("banks %d: %v", banks, err)
		}
	}
}

func TestDenseNet121SimulatesUnderAllStrategies(t *testing.T) {
	// The deepest multi-consumer workload: 535 shortcut edges, spans
	// up to 71 layers. Every strategy must complete with a clean pool
	// and the usual ordering.
	net := nn.MustBuild("densenet121")
	cfg := Default()
	base, err := Simulate(net, cfg, Baseline, nil)
	if err != nil {
		t.Fatal(err)
	}
	fmr, err := Simulate(net, cfg, FMReuse, nil)
	if err != nil {
		t.Fatal(err)
	}
	scm, err := Simulate(net, cfg, SCM, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, f, s := base.FmapTrafficBytes(), fmr.FmapTrafficBytes(), scm.FmapTrafficBytes()
	if !(s <= f && f <= b) {
		t.Errorf("ordering violated: %d / %d / %d", s, f, b)
	}
	if s >= b {
		t.Error("no reduction on densenet121")
	}
}

func TestShuffleNetSimulatesAndVerifies(t *testing.T) {
	// The shuffle op end to end: analytical ordering on the real
	// network, bit-exact functional verification on a scaled-down
	// shuffle unit under pressure.
	net := nn.MustBuild("shufflenetv1")
	cfg := Default()
	base, err := Simulate(net, cfg, Baseline, nil)
	if err != nil {
		t.Fatal(err)
	}
	scm, err := Simulate(net, cfg, SCM, nil)
	if err != nil {
		t.Fatal(err)
	}
	if scm.FmapTrafficBytes() >= base.FmapTrafficBytes() {
		t.Error("no reduction on shufflenetv1")
	}

	b := nn.NewBuilder("mini-shuffle", tensor.Shape{C: 12, H: 12, W: 12})
	x := b.Conv("stem", b.InputName(), 12, 3, 1, 1)
	y := b.GroupedConv("g1", x, 12, 1, 1, 0, 3)
	y = b.Shuffle("sh", y, 3)
	y = b.GroupedConv("dw", y, 12, 3, 1, 1, 12)
	y = b.GroupedConv("g2", y, 12, 1, 1, 0, 3)
	sum := b.Add("add", x, y)
	b.Conv("head", sum, 8, 1, 1, 0)
	mini, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for _, banks := range []int{6, 12, 48} {
		c := Default()
		c.Pool = sram.Config{NumBanks: banks, BankBytes: 1 << 10}
		c.ReserveBanks = 2
		c.WeightBufBytes = 1 << 20
		for _, s := range Strategies() {
			if _, err := VerifyFunctional(mini, c, s.Features(), 11); err != nil {
				t.Fatalf("banks %d %v: %v", banks, s, err)
			}
		}
	}
}
