package core

import (
	"bytes"
	"strings"
	"testing"

	"shortcutmining/internal/tensor"
)

func TestDecodeConfigJSONPartialOverridesDefaults(t *testing.T) {
	src := `{"Pool": {"NumBanks": 64, "BankBytes": 16384}, "Batch": 4, "DType": "fixed8"}`
	cfg, err := DecodeConfigJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Pool.NumBanks != 64 || cfg.Batch != 4 || cfg.DType != tensor.Fixed8 {
		t.Errorf("overrides lost: %+v", cfg)
	}
	// Untouched fields keep calibrated defaults.
	def := Default()
	if cfg.PE != def.PE || cfg.WeightBufBytes != def.WeightBufBytes {
		t.Errorf("defaults clobbered: %+v", cfg)
	}
}

func TestDecodeConfigJSONValidates(t *testing.T) {
	if _, err := DecodeConfigJSON(strings.NewReader(`{"Batch": 0}`)); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := DecodeConfigJSON(strings.NewReader(`{"Bogus": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := DecodeConfigJSON(strings.NewReader(`{`)); err == nil {
		t.Error("malformed json accepted")
	}
	if _, err := DecodeConfigJSON(strings.NewReader(`{"DType": 16}`)); err == nil {
		t.Error("numeric dtype accepted")
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	orig := Default()
	orig.Batch = 3
	orig.Eviction = EvictFarthest
	orig.DType = tensor.Float32
	var buf bytes.Buffer
	if err := EncodeConfigJSON(&buf, orig); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"float32"`) {
		t.Errorf("dtype not encoded as string:\n%s", buf.String())
	}
	back, err := DecodeConfigJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back != orig {
		t.Errorf("round trip changed config:\n%+v\n%+v", orig, back)
	}
}
