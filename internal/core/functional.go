package core

import (
	"fmt"
	"hash/fnv"

	"shortcutmining/internal/nn"
	"shortcutmining/internal/stats"
	"shortcutmining/internal/tensor"
	"shortcutmining/internal/tensorops"
)

// VerifyFunctional executes the network with real float32 activations
// flowing through the logical-buffer machinery and checks, at every
// consumption point, that the on-chip prefix (carried in buffer
// payloads through role switches, pinning and partial release) plus
// the spilled suffix reconstruct exactly the golden reference computed
// by package tensorops. It is the strongest correctness statement the
// repo makes about the Shortcut Mining procedures: no byte is ever
// lost, duplicated, or misattributed, under any feature set.
//
// The run uses float32 activations (so payload elements align with
// bank bytes) and deterministic weights derived from seed and the
// layer names. It returns the run statistics of the instrumented
// simulation.
func VerifyFunctional(net *nn.Network, cfg Config, feat Features, seed int64) (stats.RunStats, error) {
	cfg.DType = tensor.Float32
	if cfg.Pool.BankBytes%4 != 0 {
		return stats.RunStats{}, fmt.Errorf("core: functional mode needs 4-byte-aligned banks, got %d", cfg.Pool.BankBytes)
	}
	if err := cfg.Validate(); err != nil {
		return stats.RunStats{}, err
	}
	if err := net.Validate(); err != nil {
		return stats.RunStats{}, err
	}
	e, err := newExecutor(cfg)
	if err != nil {
		return stats.RunStats{}, err
	}
	e.feat = feat
	e.net = net
	e.cp = buildConsumptionPlan(net)
	e.residents = make([]*resident, len(net.Layers))
	e.fn = &funcState{
		seed:    seed,
		golden:  make(map[int][]float32),
		spilled: make(map[int]spilledCopy),
	}
	e.run = stats.RunStats{Network: net.Name, Strategy: featureLabel(feat) + "+functional",
		Batch: cfg.Batch, ClockMHz: cfg.PE.ClockMHz}
	for _, l := range net.Layers {
		if err := e.execLayer(l); err != nil {
			return stats.RunStats{}, fmt.Errorf("core: functional %s: layer %s: %w", net.Name, l.Name, err)
		}
	}
	return e.finish()
}

// spilledCopy is the "DRAM image" of a feature map: the element range
// [offset, offset+len(data)) of the golden tensor.
type spilledCopy struct {
	offset int
	data   []float32
}

// funcState carries the golden tensors and the simulated DRAM contents.
type funcState struct {
	seed    int64
	golden  map[int][]float32
	spilled map[int]spilledCopy
}

func layerSeed(base int64, netName, layerName string) int64 {
	h := fnv.New64a()
	h.Write([]byte(netName))
	h.Write([]byte{'/'})
	h.Write([]byte(layerName))
	return base ^ int64(h.Sum64())
}

// produceInput materializes the golden input image; it lives in DRAM.
func (f *funcState) produceInput(e *executor, l *nn.Layer) {
	img := tensorops.RandomTensor(f.seed, l.Out.Elems())
	f.golden[l.Index] = img
	f.spilled[l.Index] = spilledCopy{offset: 0, data: img}
}

// computeGolden evaluates one layer on the golden inputs.
func (f *funcState) computeGolden(e *executor, l *nn.Layer) error {
	gather := func(name string) []float32 { return f.golden[e.net.Layer(name).Index] }
	var (
		out []float32
		err error
	)
	switch l.Kind {
	case nn.OpConv:
		g := l.NumGroups()
		w := tensorops.RandomTensor(layerSeed(f.seed, e.net.Name, l.Name), l.OutC*l.In[0].C/g*l.K*l.K)
		out, _, err = tensorops.GroupedConv2D(gather(l.Inputs[0]), l.In[0], w, l.OutC, l.K, l.Stride, l.Pad, g)
	case nn.OpPool:
		if l.Pool == nn.MaxPool {
			out, _, err = tensorops.MaxPool(gather(l.Inputs[0]), l.In[0], l.K, l.Stride, l.Pad)
		} else {
			out, _, err = tensorops.AvgPool(gather(l.Inputs[0]), l.In[0], l.K, l.Stride, l.Pad)
		}
	case nn.OpGlobalPool:
		out, _, err = tensorops.GlobalAvgPool(gather(l.Inputs[0]), l.In[0])
	case nn.OpFC:
		w := tensorops.RandomTensor(layerSeed(f.seed, e.net.Name, l.Name), l.OutC*l.In[0].Elems())
		out, _, err = tensorops.FC(gather(l.Inputs[0]), w, l.OutC)
	case nn.OpEltwiseAdd:
		ops := make([][]float32, len(l.Inputs))
		for i, in := range l.Inputs {
			ops[i] = gather(in)
		}
		out, err = tensorops.Add(ops...)
	case nn.OpConcat:
		ops := make([][]float32, len(l.Inputs))
		for i, in := range l.Inputs {
			ops[i] = gather(in)
		}
		out = tensorops.Concat(ops...)
	case nn.OpShuffle:
		out, err = tensorops.ChannelShuffle(gather(l.Inputs[0]), l.In[0], l.NumGroups())
	default:
		return fmt.Errorf("functional: unsupported op %v", l.Kind)
	}
	if err != nil {
		return err
	}
	if len(out) != l.Out.Elems() {
		return fmt.Errorf("functional: %s produced %d elems, shape says %d", l.Name, len(out), l.Out.Elems())
	}
	f.golden[l.Index] = out
	return nil
}

// verifyInputs reconstructs every operand from its on-chip payload and
// spilled suffix and compares against the golden tensor.
func (f *funcState) verifyInputs(e *executor, l *nn.Layer, distinct []int) error {
	for _, p := range distinct {
		r := e.residents[p]
		if r == nil {
			return fmt.Errorf("functional: %s reads unproduced fmap %d", l.Name, p)
		}
		g := f.golden[p]
		total := len(g)
		onChipElems := int(r.onChip / 4)
		if onChipElems > 0 {
			if r.buf == nil {
				return fmt.Errorf("functional: %s: fmap %d claims %d on-chip elems with no buffer", l.Name, p, onChipElems)
			}
			payload, ok := r.buf.Payload.([]float32)
			if !ok {
				return fmt.Errorf("functional: %s: fmap %d payload lost (got %T)", l.Name, p, r.buf.Payload)
			}
			if len(payload) != onChipElems {
				return fmt.Errorf("functional: %s: fmap %d payload %d elems, bookkeeping says %d",
					l.Name, p, len(payload), onChipElems)
			}
			for i := 0; i < onChipElems; i++ {
				if payload[i] != g[i] {
					return fmt.Errorf("functional: %s: fmap %d on-chip elem %d = %g, golden %g",
						l.Name, p, i, payload[i], g[i])
				}
			}
		}
		if onChipElems < total {
			sc, ok := f.spilled[p]
			if !ok {
				return fmt.Errorf("functional: %s: fmap %d misses %d spilled elems with no DRAM copy",
					l.Name, p, total-onChipElems)
			}
			if sc.offset > onChipElems || sc.offset+len(sc.data) < total {
				return fmt.Errorf("functional: %s: fmap %d DRAM copy [%d,%d) does not cover suffix [%d,%d)",
					l.Name, p, sc.offset, sc.offset+len(sc.data), onChipElems, total)
			}
			for i := onChipElems; i < total; i++ {
				if sc.data[i-sc.offset] != g[i] {
					return fmt.Errorf("functional: %s: fmap %d spilled elem %d = %g, golden %g",
						l.Name, p, i, sc.data[i-sc.offset], g[i])
				}
			}
		}
	}
	return nil
}

// evict mirrors an eviction in the functional state: the payload
// shrinks to the new prefix and the DRAM copy is extended to cover the
// grown suffix.
func (f *funcState) evict(e *executor, p int, r *resident) {
	g := f.golden[p]
	onElems := int(r.onChip / 4)
	if r.buf != nil {
		r.buf.Payload = g[:onElems]
	}
	if existing, ok := f.spilled[p]; !ok || existing.offset > onElems {
		f.spilled[p] = spilledCopy{offset: onElems, data: g[onElems:]}
	}
}

// placeOutput attaches the retained prefix to the output buffer and
// records the DRAM copy exactly as the scheduler's byte accounting
// says it happened.
func (f *funcState) placeOutput(e *executor, l *nn.Layer, out *resident, fullCopy bool) {
	g := f.golden[l.Index]
	if out.buf != nil {
		out.buf.Payload = g[:out.onChip/4]
	}
	switch {
	case fullCopy || out.buf == nil:
		f.spilled[l.Index] = spilledCopy{offset: 0, data: g}
	case out.onChip < out.total:
		off := int(out.onChip / 4)
		f.spilled[l.Index] = spilledCopy{offset: off, data: g[off:]}
	}
}
