package core

import (
	"testing"

	"shortcutmining/internal/nn"
	"shortcutmining/internal/sram"
	"shortcutmining/internal/tensor"
)

func scmPlus() Features {
	f := SCM.Features()
	f.StreamingRecycle = true
	return f
}

func TestStreamingRecycleRelievesWindowedSqueeze(t *testing.T) {
	// A conv chain whose per-layer input+output exceeds the pool:
	// canonical SCM cannot retain any output (the input holds the
	// pool until the layer ends); streaming recycle can.
	b := nn.NewBuilder("squeeze", tensor.Shape{C: 8, H: 32, W: 32})
	x := b.Conv("c1", b.InputName(), 8, 3, 1, 1) // 16 KiB fmaps
	x = b.Conv("c2", x, 8, 3, 1, 1)
	x = b.Conv("c3", x, 8, 3, 1, 1)
	b.Conv("c4", x, 8, 3, 1, 1)
	net, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	cfg.Pool = sram.Config{NumBanks: 20, BankBytes: 1 << 10} // 20 KiB < 2 fmaps
	cfg.ReserveBanks = 2
	cfg.WeightBufBytes = 1 << 20

	plain, err := Simulate(net, cfg, SCM, nil)
	if err != nil {
		t.Fatal(err)
	}
	plus, err := SimulateFeatures(net, cfg, scmPlus(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if plus.FmapTrafficBytes() >= plain.FmapTrafficBytes() {
		t.Errorf("streaming recycle did not reduce traffic: %d vs %d",
			plus.FmapTrafficBytes(), plain.FmapTrafficBytes())
	}
	if plus.BanksRecycled <= plain.BanksRecycled {
		t.Errorf("no extra recycling: %d vs %d", plus.BanksRecycled, plain.BanksRecycled)
	}
}

func TestStreamingRecycleNeverIncreasesTraffic(t *testing.T) {
	cfg := Default()
	for _, name := range []string{"resnet34", "resnet152", "squeezenet-bypass", "vgg16", "mobilenetv2", "googlenet"} {
		net := nn.MustBuild(name)
		plain, err := Simulate(net, cfg, SCM, nil)
		if err != nil {
			t.Fatal(err)
		}
		plus, err := SimulateFeatures(net, cfg, scmPlus(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if plus.FmapTrafficBytes() > plain.FmapTrafficBytes() {
			t.Errorf("%s: streaming recycle increased traffic %d → %d",
				name, plain.FmapTrafficBytes(), plus.FmapTrafficBytes())
		}
	}
}

func TestStreamingRecycleKeepsWindowMargin(t *testing.T) {
	// The margin guarantees the sliding window's input rows are never
	// released: with a pool of exactly input+margin banks, the output
	// can only claim input banks beyond the margin.
	b := nn.NewBuilder("m", tensor.Shape{C: 4, H: 16, W: 16})
	x := b.Conv("c1", b.InputName(), 4, 3, 1, 1) // 2 KiB fmap = 2 banks
	b.Conv("c2", x, 4, 3, 1, 1)
	net, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	cfg.Pool = sram.Config{NumBanks: 4, BankBytes: 1 << 10}
	cfg.ReserveBanks = 1
	cfg.WeightBufBytes = 1 << 20
	// Margin for c2: (3+1) rows × 16 × 4 × 2 B = 512 B → 1 bank.
	r, err := SimulateFeatures(net, cfg, scmPlus(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Must complete with invariants intact (finish() enforces a clean
	// pool); recycling beyond the margin would have corrupted state.
	if r.TotalCycles == 0 {
		t.Error("degenerate run")
	}
}

func TestStreamingRecycleFunctionallyCorrect(t *testing.T) {
	cfg := Default()
	cfg.Pool = sram.Config{NumBanks: 12, BankBytes: 1 << 10}
	cfg.ReserveBanks = 2
	cfg.WeightBufBytes = 1 << 20
	for seed := int64(0); seed < 40; seed++ {
		net, err := nn.RandomNetwork(seed)
		if err != nil {
			t.Fatalf("RandomNetwork(%d): %v", seed, err)
		}
		if _, err := VerifyFunctional(net, cfg, scmPlus(), seed); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestStreamingRecycleSkipsGroupedPasses(t *testing.T) {
	// When output channels must be grouped, the input is re-streamed
	// per group and prefix release would be unsafe; the feature must
	// stay inert (the run still completes and verifies).
	b := nn.NewBuilder("grouped", tensor.Shape{C: 16, H: 16, W: 16})
	b.Conv("wide", b.InputName(), 256, 3, 1, 1) // forces channel grouping on tiny pools
	net, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	cfg.Pool = sram.Config{NumBanks: 8, BankBytes: 1 << 10}
	cfg.ReserveBanks = 2
	cfg.WeightBufBytes = 1 << 20
	if _, err := VerifyFunctional(net, cfg, scmPlus(), 1); err != nil {
		t.Fatal(err)
	}
}
