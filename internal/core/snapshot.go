package core

import (
	"fmt"

	"shortcutmining/internal/dram"
	"shortcutmining/internal/nn"
	"shortcutmining/internal/sram"
	"shortcutmining/internal/stats"
	"shortcutmining/internal/trace"
)

// SnapshotVersion is the RunSnapshot wire-format version. Decoders
// reject snapshots from a different version instead of guessing.
const SnapshotVersion = 1

// RunSnapshot is the serializable state of a suspended Run: everything
// RestoreRun needs to rebuild a Run that finishes with RunStats
// bit-identical to a run that was never torn down. It exists so the
// serving tier can journal a long simulation at layer boundaries and,
// after a crash, resume mid-network instead of recomputing.
//
// Only suspended runs snapshot cleanly — at a suspension boundary the
// bank pool is empty and the whole live state fits the fields below.
// Runs with a trace recorder, a metrics registry, fault injection, or
// functional verification attached refuse to snapshot: their state
// (emitted events, registry series, RNG draws, golden payloads) lives
// outside the Run and cannot be rebuilt faithfully.
type RunSnapshot struct {
	Version int    `json:"version"`
	Network string `json:"network"`
	// Label is the canonical strategy override of NewRun ("" for runs
	// built from an explicit feature set).
	Label    string   `json:"label,omitempty"`
	Features Features `json:"features"`

	// Next is the index of the next layer to execute; Clock and
	// MemCursor are the executor's cycle cursors at the boundary.
	Next      int   `json:"next"`
	Clock     int64 `json:"clock"`
	MemCursor int64 `json:"mem_cursor"`

	Sched     SchedStats         `json:"sched"`
	Saved     []SavedBuffer      `json:"saved,omitempty"`
	Residents []ResidentSnapshot `json:"residents,omitempty"`

	// Traffic, RawTraffic, and LogicalTraffic restore the DRAM channel
	// tally; PoolStats restores the bank pool's cumulative telemetry
	// (peaks, role switches) that finish() folds into RunStats.
	// LogicalTraffic and the codec cycle counters are zero in snapshots
	// from builds without compression support — valid, because those
	// builds could only run uncompressed.
	Traffic        dram.Traffic `json:"traffic"`
	RawTraffic     dram.Traffic `json:"raw_traffic"`
	LogicalTraffic dram.Traffic `json:"logical_traffic"`
	PoolStats      sram.Stats   `json:"pool_stats"`

	// EncodeCycles / DecodeCycles carry the interlayer codec engine
	// time accrued so far (zero when compression is off).
	EncodeCycles int64 `json:"encode_cycles,omitempty"`
	DecodeCycles int64 `json:"decode_cycles,omitempty"`

	// Scratch is the partially assembled RunStats (header plus the
	// per-layer records of every executed layer).
	Scratch stats.RunStats `json:"scratch"`
}

// SavedBuffer is the serializable form of what Suspend remembered
// about one torn-down logical buffer.
type SavedBuffer struct {
	Producer int       `json:"producer"`
	Role     sram.Role `json:"role"`
	Tag      string    `json:"tag"`
	Banks    int       `json:"banks"`
	Pinned   bool      `json:"pinned,omitempty"`
}

// ResidentSnapshot is the serializable form of one feature map's
// placement record. At a suspension boundary no resident owns a
// buffer, so the on-chip portion is fully described by OnChip (the
// bytes Resume must re-load).
type ResidentSnapshot struct {
	Producer      int   `json:"producer"`
	Total         int64 `json:"total"`
	OnChip        int64 `json:"on_chip"`
	Spilled       int64 `json:"spilled"`
	ConsumersLeft int   `json:"consumers_left"`
	LastUse       int   `json:"last_use"`
}

// Snapshot captures the state of a suspended run. It errors on runs
// that are not suspended, already finished or failed, or that carry
// un-serializable attachments (trace recorder, metrics registry,
// fault injection, functional verification).
func (r *Run) Snapshot() (*RunSnapshot, error) {
	name := r.e.net.Name
	switch {
	case r.err != nil:
		return nil, r.err
	case r.done:
		return nil, fmt.Errorf("core: %s: cannot snapshot a finished run", name)
	case !r.suspended:
		return nil, fmt.Errorf("core: %s: snapshot requires a suspended run (call Suspend first)", name)
	case r.e.fn != nil:
		return nil, fmt.Errorf("core: %s: functional-verification runs cannot be snapshotted", name)
	case r.e.inj != nil:
		return nil, fmt.Errorf("core: %s: fault-injected runs cannot be snapshotted (injector RNG state is not serializable)", name)
	case r.e.obs != nil:
		return nil, fmt.Errorf("core: %s: observed runs cannot be snapshotted (registry state lives outside the run)", name)
	}
	if _, nop := r.e.rec.R.(trace.Nop); !nop {
		return nil, fmt.Errorf("core: %s: traced runs cannot be snapshotted (emitted events cannot be rebuilt)", name)
	}
	snap := &RunSnapshot{
		Version:        SnapshotVersion,
		Network:        name,
		Label:          r.label,
		Features:       r.e.feat,
		Next:           r.next,
		Clock:          r.e.clock,
		MemCursor:      r.e.memCursor,
		Sched:          r.sched,
		Traffic:        r.e.ch.Traffic(),
		RawTraffic:     r.e.ch.RawTraffic(),
		LogicalTraffic: r.e.ch.LogicalTraffic(),
		PoolStats:      r.e.pool.Stats(),
		EncodeCycles:   r.e.encCycles,
		DecodeCycles:   r.e.decCycles,
		Scratch:        r.e.run,
	}
	for _, s := range r.saved {
		snap.Saved = append(snap.Saved, SavedBuffer{
			Producer: s.producer, Role: s.role, Tag: s.tag, Banks: s.banks, Pinned: s.pinned,
		})
	}
	for p, res := range r.e.residents {
		if res == nil {
			continue
		}
		snap.Residents = append(snap.Residents, ResidentSnapshot{
			Producer: p, Total: res.total, OnChip: res.onChip, Spilled: res.spilled,
			ConsumersLeft: res.consumersLeft, LastUse: res.lastUse,
		})
	}
	return snap, nil
}

// Validate checks a decoded snapshot's internal consistency against
// the network it claims to continue. It classifies malformed input as
// an error instead of letting RestoreRun build a run that corrupts
// state later.
func (s *RunSnapshot) Validate(net *nn.Network) error {
	if s == nil {
		return fmt.Errorf("core: nil snapshot")
	}
	if s.Version != SnapshotVersion {
		return fmt.Errorf("core: snapshot version %d, this build reads %d", s.Version, SnapshotVersion)
	}
	if net == nil {
		return fmt.Errorf("core: snapshot restore needs a network")
	}
	if s.Network != net.Name {
		return fmt.Errorf("core: snapshot of %q cannot restore onto network %q", s.Network, net.Name)
	}
	n := len(net.Layers)
	if s.Next < 0 || s.Next >= n {
		return fmt.Errorf("core: snapshot next layer %d outside [0, %d)", s.Next, n)
	}
	if got := len(s.Scratch.Layers); got != s.Next {
		return fmt.Errorf("core: snapshot has %d layer records for %d executed layers", got, s.Next)
	}
	if s.Clock < 0 || s.MemCursor < 0 {
		return fmt.Errorf("core: snapshot has negative cycle cursor (clock %d, mem %d)", s.Clock, s.MemCursor)
	}
	if s.EncodeCycles < 0 || s.DecodeCycles < 0 {
		return fmt.Errorf("core: snapshot has negative codec cycles (enc %d, dec %d)", s.EncodeCycles, s.DecodeCycles)
	}
	seen := make([]bool, n)
	for _, rs := range s.Residents {
		if rs.Producer < 0 || rs.Producer >= n {
			return fmt.Errorf("core: snapshot resident producer %d outside [0, %d)", rs.Producer, n)
		}
		if seen[rs.Producer] {
			return fmt.Errorf("core: snapshot has duplicate resident for producer %d", rs.Producer)
		}
		seen[rs.Producer] = true
		if rs.Total < 0 || rs.OnChip < 0 || rs.Spilled < 0 || rs.OnChip > rs.Total {
			return fmt.Errorf("core: snapshot resident %d has inconsistent byte counts (total %d, on-chip %d, spilled %d)",
				rs.Producer, rs.Total, rs.OnChip, rs.Spilled)
		}
	}
	for _, sb := range s.Saved {
		if sb.Producer < 0 || sb.Producer >= n {
			return fmt.Errorf("core: snapshot saved buffer producer %d outside [0, %d)", sb.Producer, n)
		}
		if !seen[sb.Producer] {
			return fmt.Errorf("core: snapshot saved buffer for producer %d has no resident record", sb.Producer)
		}
		if sb.Banks <= 0 {
			return fmt.Errorf("core: snapshot saved buffer for producer %d has %d banks", sb.Producer, sb.Banks)
		}
		if sb.Role != sram.RoleInput && sb.Role != sram.RoleOutput && sb.Role != sram.RoleRetained {
			return fmt.Errorf("core: snapshot saved buffer for producer %d has unknown role %d", sb.Producer, int(sb.Role))
		}
	}
	return nil
}

// RestoreRun rebuilds a suspended Run from a snapshot taken by
// Snapshot. The returned run behaves exactly like the original at the
// moment of suspension: the next Step auto-resumes (re-allocating the
// saved buffers and charging the re-load to the SchedStats ledger) and
// the finished RunStats is bit-identical to a run that was never
// suspended. cfg must describe the same platform the snapshot was
// taken under and must not carry a fault spec.
func RestoreRun(net *nn.Network, cfg Config, snap *RunSnapshot) (*Run, error) {
	if err := snap.Validate(net); err != nil {
		return nil, err
	}
	r, err := NewRunFeatures(net, cfg, snap.Features, nil, nil)
	if err != nil {
		return nil, err
	}
	if r.e.inj != nil {
		return nil, fmt.Errorf("core: %s: cannot restore a snapshot under a fault-injecting config", net.Name)
	}
	for _, rs := range snap.Residents {
		r.e.residents[rs.Producer] = &resident{
			producer: rs.Producer, total: rs.Total, onChip: rs.OnChip, spilled: rs.Spilled,
			consumersLeft: rs.ConsumersLeft, lastUse: rs.LastUse,
		}
	}
	for _, sb := range snap.Saved {
		r.saved = append(r.saved, savedBuffer{
			producer: sb.Producer, role: sb.Role, tag: sb.Tag, banks: sb.Banks, pinned: sb.Pinned,
		})
	}
	r.e.clock = snap.Clock
	r.e.memCursor = snap.MemCursor
	r.e.run = snap.Scratch
	r.e.ch.RestoreTraffic(snap.Traffic, snap.RawTraffic, snap.LogicalTraffic)
	r.e.pool.RestoreStats(snap.PoolStats)
	r.e.encCycles = snap.EncodeCycles
	r.e.decCycles = snap.DecodeCycles
	r.label = snap.Label
	r.sched = snap.Sched
	r.next = snap.Next
	r.suspended = true
	return r, nil
}
