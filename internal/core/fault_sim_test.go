package core

import (
	"testing"

	"shortcutmining/internal/fault"
	"shortcutmining/internal/metrics"
	"shortcutmining/internal/nn"
	"shortcutmining/internal/sram"
	"shortcutmining/internal/trace"
)

// TestZooCompletesUnderBankFailures is the tentpole acceptance check:
// with ~25% of the pool's banks hard-failing mid-run (8 of 34, split
// across an early and a mid-network layer, fixed seed), SCM completes
// every zoo network in analytical mode, the post-run invariant and
// leak checks pass (finish() enforces them), and the feature-map
// traffic inflation stays bounded: never below the fault-free run and
// never above the conventional baseline by more than burst-rounding
// slack.
func TestZooCompletesUnderBankFailures(t *testing.T) {
	for _, name := range nn.ZooNames() {
		net := nn.MustBuild(name)
		cfg := Default()
		clean, err := Simulate(net, cfg, SCM, nil)
		if err != nil {
			t.Fatalf("%s fault-free: %v", name, err)
		}
		base, err := Simulate(net, Default(), Baseline, nil)
		if err != nil {
			t.Fatalf("%s baseline: %v", name, err)
		}
		cfg.Faults = fault.UniformBankFailures(7, 8, 2, 8)
		faulty, err := Simulate(net, cfg, SCM, nil)
		if err != nil {
			t.Fatalf("%s with 8 failed banks: %v", name, err)
		}
		if got := faulty.Faults.BankFailures; got != 8 {
			t.Errorf("%s: BankFailures = %d, want 8", name, got)
		}
		if faulty.FmapTrafficBytes() < clean.FmapTrafficBytes() {
			t.Errorf("%s: faulty traffic %d below fault-free %d",
				name, faulty.FmapTrafficBytes(), clean.FmapTrafficBytes())
		}
		if limit := base.FmapTrafficBytes() * 5 / 4; faulty.FmapTrafficBytes() > limit {
			t.Errorf("%s: faulty SCM traffic %d exceeds 1.25x baseline %d",
				name, faulty.FmapTrafficBytes(), base.FmapTrafficBytes())
		}
		if faulty.TotalCycles < clean.TotalCycles {
			t.Errorf("%s: faulty cycles %d below fault-free %d",
				name, faulty.TotalCycles, clean.TotalCycles)
		}
	}
}

// TestFunctionalBitExactUnderFaults drives real activations through
// the pool while banks fail, transients scrub, transfers drop, and
// bandwidth degrades: VerifyFunctional checks every consumption point
// against the golden reference, so a pass means graceful degradation
// never loses or misattributes a byte, under every strategy.
func TestFunctionalBitExactUnderFaults(t *testing.T) {
	spec := &fault.Spec{
		Seed:     11,
		DropProb: 0.1,
		Events: []fault.Event{
			{Kind: fault.BankFail, Layer: 2, Count: 2},
			{Kind: fault.BankTransient, Layer: 3, Count: 1},
			{Kind: fault.BandwidthDegrade, Layer: 4, Factor: 0.5},
		},
	}
	for seed := int64(1); seed <= 3; seed++ {
		net, err := nn.RandomNetwork(seed)
		if err != nil {
			t.Fatalf("RandomNetwork(%d): %v", seed, err)
		}
		for _, banks := range []int{16, 64} {
			cfg := Default()
			cfg.Pool = sram.Config{NumBanks: banks, BankBytes: 4 << 10}
			cfg.ReserveBanks = 2
			cfg.WeightBufBytes = 1 << 20
			cfg.Faults = spec
			for _, strat := range Strategies() {
				run, err := VerifyFunctional(net, cfg, strat.Features(), seed)
				if err != nil {
					t.Fatalf("seed %d banks %d %s: %v", seed, banks, strat, err)
				}
				if run.Faults.BankFailures != 2 {
					t.Errorf("seed %d banks %d %s: BankFailures = %d, want 2",
						seed, banks, strat, run.Faults.BankFailures)
				}
				if run.Faults.TransientErrors != 1 {
					t.Errorf("seed %d banks %d %s: TransientErrors = %d, want 1",
						seed, banks, strat, run.Faults.TransientErrors)
				}
			}
		}
	}
}

// TestBaselineFlatUnderBankFailures pins down E22's control arm: the
// conventional baseline never allocates pool banks, so hard bank
// failures change neither its traffic nor its cycles — only the fault
// counters move. (It has no graceful-degradation path because it has
// nothing to degrade.)
func TestBaselineFlatUnderBankFailures(t *testing.T) {
	net := nn.MustBuild("resnet18")
	cfg := Default()
	clean, err := Simulate(net, cfg, Baseline, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = fault.UniformBankFailures(3, 8, 2, 8)
	faulty, err := Simulate(net, cfg, Baseline, nil)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Traffic != clean.Traffic {
		t.Errorf("baseline traffic moved under bank failures: %v vs %v", faulty.Traffic, clean.Traffic)
	}
	if faulty.TotalCycles != clean.TotalCycles {
		t.Errorf("baseline cycles moved under bank failures: %d vs %d", faulty.TotalCycles, clean.TotalCycles)
	}
	if faulty.Faults.BankFailures != 8 {
		t.Errorf("BankFailures = %d, want 8", faulty.Faults.BankFailures)
	}
}

// TestDMARetryAccounting checks the retry contract: injected transfer
// failures cost cycles and are tallied (retries, retry bytes, backoff
// cycles), but the payload Traffic counters — the paper's headline
// metric — are identical to the fault-free run, because each byte
// still arrives exactly once.
func TestDMARetryAccounting(t *testing.T) {
	net := nn.MustBuild("resnet18")
	cfg := Default()
	clean, err := Simulate(net, cfg, SCM, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = &fault.Spec{Seed: 5, DropProb: 0.05}
	faulty, err := Simulate(net, cfg, SCM, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := faulty.Faults
	if f.DMARetries == 0 || f.DMARetryCycles == 0 || f.RetryBytes == 0 {
		t.Fatalf("expected retry activity, got %+v", f)
	}
	if faulty.Traffic != clean.Traffic {
		t.Errorf("payload traffic inflated by retries: %v vs %v", faulty.Traffic, clean.Traffic)
	}
	if faulty.TotalCycles <= clean.TotalCycles {
		t.Errorf("retries cost no cycles: %d vs %d", faulty.TotalCycles, clean.TotalCycles)
	}
}

// TestBandwidthDegradeAccounting: halving the feature-map channel from
// the first layer on stretches transfers (DegradedCycles) and the run,
// without touching traffic.
func TestBandwidthDegradeAccounting(t *testing.T) {
	net := nn.MustBuild("resnet18")
	cfg := Default()
	clean, err := Simulate(net, cfg, SCM, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = &fault.Spec{Seed: 1, Events: []fault.Event{
		{Kind: fault.BandwidthDegrade, Layer: 0, Factor: 0.5},
	}}
	faulty, err := Simulate(net, cfg, SCM, nil)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Faults.DegradedCycles == 0 {
		t.Error("DegradedCycles = 0 under bw-degrade")
	}
	if faulty.TotalCycles <= clean.TotalCycles {
		t.Errorf("degraded run not slower: %d vs %d", faulty.TotalCycles, clean.TotalCycles)
	}
	if faulty.Traffic != clean.Traffic {
		t.Errorf("bw-degrade changed traffic: %v vs %v", faulty.Traffic, clean.Traffic)
	}
}

// TestWatchdogLiveness: an absurd per-layer cycle bound trips the
// liveness checker and surfaces as a classified fatal RunError, not a
// panic.
func TestWatchdogLiveness(t *testing.T) {
	net := nn.MustBuild("resnet18")
	cfg := Default()
	cfg.WatchdogLayerCycles = 1
	_, err := Simulate(net, cfg, SCM, nil)
	re, ok := fault.AsRunError(err)
	if !ok {
		t.Fatalf("want RunError, got %v", err)
	}
	if re.Check != fault.CheckLiveness || re.Severity != fault.Fatal {
		t.Errorf("got %s/%s, want fatal/liveness", re.Severity, re.Check)
	}
}

// TestStuckProgress: a transfer-failure probability high enough to
// exhaust a two-attempt budget yields a fatal stuck-progress RunError.
func TestStuckProgress(t *testing.T) {
	net := nn.MustBuild("resnet18")
	cfg := Default()
	cfg.Faults = &fault.Spec{Seed: 9, DropProb: 0.9}
	cfg.DMAMaxAttempts = 2
	_, err := Simulate(net, cfg, SCM, nil)
	re, ok := fault.AsRunError(err)
	if !ok {
		t.Fatalf("want RunError, got %v", err)
	}
	if re.Check != fault.CheckStuckProgress || re.Severity != fault.Fatal {
		t.Errorf("got %s/%s, want fatal/stuck-progress", re.Severity, re.Check)
	}
	if re.Layer == "" {
		t.Error("stuck-progress RunError lost its layer")
	}
}

// TestCapacityExhaustionIsRecoverable: failing every bank before the
// first real layer leaves the planner nothing to work with; the run
// dies with a *recoverable* capacity RunError (the pool state is
// consistent, the plan was just unsurvivable).
func TestCapacityExhaustionIsRecoverable(t *testing.T) {
	net := nn.MustBuild("resnet18")
	cfg := Default()
	cfg.Pool = sram.Config{NumBanks: 8, BankBytes: 1 << 10}
	cfg.ReserveBanks = 2
	cfg.WeightBufBytes = 1 << 20
	cfg.Faults = &fault.Spec{Seed: 2, Events: []fault.Event{
		{Kind: fault.BankFail, Layer: 1, Count: 8},
	}}
	_, err := Simulate(net, cfg, SCM, nil)
	re, ok := fault.AsRunError(err)
	if !ok {
		t.Fatalf("want RunError, got %v", err)
	}
	if re.Check != fault.CheckCapacity || re.Severity != fault.Recoverable {
		t.Errorf("got %s/%s, want recoverable/capacity", re.Severity, re.Check)
	}
}

// TestFailBankMigrationPaths unit-tests the two migration paths of
// failBank directly: an owned bank relocates to a spare while one
// exists (same bank count, position preserved, pin intact), and spills
// its owner's tail to DRAM once the pool has no spare left.
func TestFailBankMigrationPaths(t *testing.T) {
	cfg := Default()
	cfg.Pool = sram.Config{NumBanks: 4, BankBytes: 1 << 10}
	cfg.ReserveBanks = 0
	e, err := newExecutor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.inj = fault.NewInjector(&fault.Spec{Seed: 1})
	buf, err := e.pool.Alloc(sram.RoleRetained, "victim", 2<<10) // banks 0,1
	if err != nil {
		t.Fatal(err)
	}
	if err := e.pool.Pin(buf); err != nil {
		t.Fatal(err)
	}
	e.residents = []*resident{{producer: 0, total: buf.Bytes(), buf: buf, onChip: buf.Bytes()}}
	l := layerRef{index: 0, name: "l"}

	firstBank := buf.Banks()[0]
	if err := e.failBank(l, firstBank); err != nil {
		t.Fatalf("relocation path: %v", err)
	}
	if e.flt.Relocations != 1 {
		t.Fatalf("Relocations = %d, want 1", e.flt.Relocations)
	}
	if buf.NumBanks() != 2 || buf.Banks()[0] == firstBank {
		t.Fatalf("relocation left banks %v (failed bank %d)", buf.Banks(), firstBank)
	}
	if !buf.Pinned() {
		t.Error("relocation lost the pin")
	}

	// Retire the remaining free banks so the next failure has no spare.
	for e.pool.FreeBanks() > 0 {
		free := -1
		for b := 0; b < cfg.Pool.NumBanks; b++ {
			if !e.pool.IsFailed(b) && e.pool.Owner(b) == nil {
				free = b
				break
			}
		}
		if err := e.failBank(l, free); err != nil {
			t.Fatalf("retiring free bank %d: %v", free, err)
		}
	}
	tail := buf.Banks()[1]
	if err := e.failBank(l, tail); err != nil {
		t.Fatalf("spill path: %v", err)
	}
	if e.flt.FaultSpillBytes != 1<<10 {
		t.Errorf("FaultSpillBytes = %d, want %d", e.flt.FaultSpillBytes, 1<<10)
	}
	if buf.NumBanks() != 1 {
		t.Errorf("spill left %d banks, want 1", buf.NumBanks())
	}
	if got := e.residents[0].onChip; got != 1<<10 {
		t.Errorf("resident onChip = %d, want %d", got, 1<<10)
	}
	if err := e.pool.CheckInvariants(); err != nil {
		t.Errorf("pool invariants after migrations: %v", err)
	}
}

// TestFaultMetricsAndTrace checks the observability wiring: an
// observed faulty run lands fault counters in the metrics registry and
// fault/retry events in the trace buffer.
func TestFaultMetricsAndTrace(t *testing.T) {
	net := nn.MustBuild("resnet18")
	cfg := Default()
	cfg.Faults = &fault.Spec{
		Seed:     7,
		DropProb: 0.05,
		Events: []fault.Event{
			{Kind: fault.BankFail, Layer: 2, Count: 4},
			{Kind: fault.BankTransient, Layer: 3, Count: 2},
			{Kind: fault.BandwidthDegrade, Layer: 5, Factor: 0.75},
		},
	}
	reg := metrics.New()
	var buf trace.Buffer
	run, err := SimulateObserved(net, cfg, SCM, &buf, reg)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricFaultsInjected, "", metrics.L("kind", FaultBankFail)).Value(); got != 4 {
		t.Errorf("bank-fail counter = %d, want 4", got)
	}
	if got := reg.Counter(MetricFaultsInjected, "", metrics.L("kind", FaultBankTransient)).Value(); got != 2 {
		t.Errorf("bank-transient counter = %d, want 2", got)
	}
	if reg.Counter(MetricDMARetries, "").Value() != run.Faults.DMARetries {
		t.Errorf("retry counter %d != RunStats %d",
			reg.Counter(MetricDMARetries, "").Value(), run.Faults.DMARetries)
	}
	if run.Faults.DMARetries == 0 {
		t.Error("no retries at DropProb 0.05 over a resnet18 run")
	}
	if reg.Gauge(MetricPoolFailedBanks, "").Value() != 4 {
		t.Errorf("failed-banks gauge = %g, want 4", reg.Gauge(MetricPoolFailedBanks, "").Value())
	}
	if reg.Gauge(MetricBandwidthFactor, "").Value() != 0.75 {
		t.Errorf("bw-factor gauge = %g, want 0.75", reg.Gauge(MetricBandwidthFactor, "").Value())
	}
	if len(buf.OfKind(trace.KindFault)) == 0 {
		t.Error("no fault events in trace")
	}
	if len(buf.OfKind(trace.KindRetry)) == 0 {
		t.Error("no retry events in trace")
	}
	if run.Metrics == nil {
		t.Error("RunStats.Metrics snapshot missing")
	}
	if !run.Faults.Any() {
		t.Error("FaultStats.Any() = false on a faulty run")
	}
}

// TestValidateFaultKnobs: Config.Validate rejects the malformed fault
// and robustness knobs.
func TestValidateFaultKnobs(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.DMAMaxAttempts = -1 },
		func(c *Config) { c.DMABackoffCycles = -8 },
		func(c *Config) { c.WatchdogLayerCycles = -1 },
		func(c *Config) { c.Faults = &fault.Spec{DropProb: 1.5} },
		func(c *Config) { c.Faults = &fault.Spec{Events: []fault.Event{{Kind: fault.BankFail, Layer: -1}}} },
		func(c *Config) { c.DType = 99 },
	}
	for i, mutate := range bad {
		cfg := Default()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted a bad config", i)
		}
	}
}
