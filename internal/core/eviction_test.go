package core

import (
	"testing"

	"shortcutmining/internal/nn"
	"shortcutmining/internal/sram"
)

// evictionNet pits a far-future shortcut against near-future outputs:
// a shortcut spanning many layers whose retention starves the
// intermediate layers' output retention. EvictFarthest should trade
// the cold shortcut bytes for hot output bytes.
func evictionNet(t *testing.T) *nn.Network {
	t.Helper()
	n, err := nn.ShortcutSpanNet(6, 2, 8, 16) // 8x16x16 fmaps, span 6
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// pressureConfig holds ~2.5 fmaps: the pinned shortcut (1 fmap)
// conflicts with input+output of every intermediate layer.
func pressureConfig() Config {
	cfg := Default()
	cfg.Pool = sram.Config{NumBanks: 11, BankBytes: 1 << 10}
	cfg.ReserveBanks = 1
	cfg.WeightBufBytes = 1 << 20
	return cfg
}

func TestEvictFarthestActivatesUnderPressure(t *testing.T) {
	cfg := pressureConfig()
	keep, err := Simulate(evictionNet(t), cfg, SCM, nil)
	if err != nil {
		t.Fatal(err)
	}
	if keep.BanksEvicted != 0 {
		t.Errorf("retain-pinned policy evicted %d banks", keep.BanksEvicted)
	}
	cfg.Eviction = EvictFarthest
	evict, err := Simulate(evictionNet(t), cfg, SCM, nil)
	if err != nil {
		t.Fatal(err)
	}
	if evict.BanksEvicted == 0 {
		t.Fatal("evict-farthest never evicted under pressure")
	}
}

func TestEvictFarthestNeverWorseOnZoo(t *testing.T) {
	// Belady-style eviction trades a far re-fetch for a near one; on
	// the real networks it must not lose to the paper's policy by more
	// than the bank-granularity noise, and it must help somewhere.
	helped := false
	for _, name := range []string{"resnet34", "resnet152", "squeezenet-bypass", "googlenet"} {
		net := nn.MustBuild(name)
		cfg := Default()
		keep, err := Simulate(net, cfg, SCM, nil)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Eviction = EvictFarthest
		evict, err := Simulate(net, cfg, SCM, nil)
		if err != nil {
			t.Fatal(err)
		}
		k, e := keep.FmapTrafficBytes(), evict.FmapTrafficBytes()
		if e < k {
			helped = true
		}
		// Allow 5% regression: eviction is greedy, not optimal.
		if float64(e) > 1.05*float64(k) {
			t.Errorf("%s: evict-farthest regressed %d → %d", name, k, e)
		}
	}
	_ = helped // whether it helps depends on the pool size; activation is tested above
}

func TestEvictFarthestFunctionallyCorrect(t *testing.T) {
	// The hard part of eviction is data integrity: payload truncation
	// plus DRAM-copy extension must reconstruct exactly.
	cfg := pressureConfig()
	cfg.Eviction = EvictFarthest
	for seed := int64(0); seed < 30; seed++ {
		net, err := nn.RandomNetwork(seed)
		if err != nil {
			t.Fatalf("RandomNetwork(%d): %v", seed, err)
		}
		r, err := VerifyFunctional(net, cfg, SCM.Features(), seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		_ = r
	}
	// And on the adversarial span network.
	if _, err := VerifyFunctional(evictionNet(t), cfg, SCM.Features(), 3); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionPolicyStrings(t *testing.T) {
	if RetainPinned.String() != "retain-pinned" || EvictFarthest.String() != "evict-farthest" {
		t.Error("policy strings wrong")
	}
}

func TestEvictFarthestNoOpWithoutRetention(t *testing.T) {
	// Eviction only applies to pinned data; the baseline and fm-reuse
	// never pin, so the policy must be inert there.
	cfg := pressureConfig()
	cfg.Eviction = EvictFarthest
	for _, s := range []Strategy{Baseline, FMReuse} {
		r, err := Simulate(evictionNet(t), cfg, s, nil)
		if err != nil {
			t.Fatal(err)
		}
		if r.BanksEvicted != 0 {
			t.Errorf("%v evicted %d banks", s, r.BanksEvicted)
		}
	}
}

func TestEvictionPreservesInvariantOrdering(t *testing.T) {
	// Even with eviction, SCM must not exceed fm-reuse traffic.
	cfg := pressureConfig()
	cfg.Eviction = EvictFarthest
	net, err := nn.ShortcutSpanNet(4, 3, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	fmr, err := Simulate(net, cfg, FMReuse, nil)
	if err != nil {
		t.Fatal(err)
	}
	scm, err := Simulate(net, cfg, SCM, nil)
	if err != nil {
		t.Fatal(err)
	}
	if scm.FmapTrafficBytes() > fmr.FmapTrafficBytes() {
		t.Errorf("scm with eviction (%d) worse than fm-reuse (%d)",
			scm.FmapTrafficBytes(), fmr.FmapTrafficBytes())
	}
}
