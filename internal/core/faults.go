package core

import (
	"fmt"

	"shortcutmining/internal/dram"
	"shortcutmining/internal/fault"
	"shortcutmining/internal/sram"
	"shortcutmining/internal/trace"
)

// This file is the executor side of the fault model (see package
// fault for the hardware story). Bank events fire at layer entry,
// before the layer touches any operand, matching a controller that
// services the error-logger interrupt between layer descriptors:
//
//   - a transient SRAM error is scrubbed in place (cycle cost, no data
//     loss);
//   - a hard-failing FREE bank is simply retired;
//   - a hard-failing OWNED bank is migrated — to a spare free bank
//     when one exists (same layout position, so payload order and
//     functional bit-exactness are preserved), otherwise by spilling
//     the owning buffer's tail from the failed bank onward to DRAM
//     (procedure P5 applied to a shrinking pool) — and then retired.
//
// DMA transient failures and bandwidth degradation live in
// transferSpan (observe.go) and retryLoop below.

// applyFaults fires the injector's events scheduled at layer l.
func (e *executor) applyFaults(l layerRef) error {
	if e.inj == nil {
		return nil
	}
	prevFactor := e.inj.Factor()
	events := e.inj.ApplyLayer(l.index)
	if f := e.inj.Factor(); f != prevFactor {
		e.obs.fault(FaultBWDegrade, 1)
		e.obs.bandwidthFactor(f)
		e.record(trace.Event{Kind: trace.KindFault, Layer: l.name,
			Note: fmt.Sprintf("bw-degrade factor=%g", f)})
	}
	for _, ev := range events {
		switch ev.Kind {
		case fault.BankTransient:
			n := int64(ev.Count)
			if len(ev.Banks) > 0 {
				n = int64(len(ev.Banks))
			}
			e.flt.TransientErrors += n
			scrub := n * e.bankCopyCycles()
			e.flt.MigrationCycles += scrub
			e.layerFaultCycles += scrub
			e.obs.fault(FaultBankTransient, n)
			e.record(trace.Event{Kind: trace.KindFault, Layer: l.name,
				Banks: int(n), Note: "bank-transient (scrubbed)"})
		case fault.BankFail:
			victims := ev.Banks
			if len(victims) == 0 {
				victims = e.pickVictims(ev.Count)
			}
			for _, bank := range victims {
				if e.pool.IsFailed(bank) {
					continue // explicit spec hit the same bank twice
				}
				if bank >= e.cfg.Pool.NumBanks {
					continue // spec written for a larger pool
				}
				if err := e.failBank(l, bank); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// layerRef is the (index, name) pair applyFaults needs; OpInput and
// OpConcat layers inject like any other.
type layerRef struct {
	index int
	name  string
}

// pickVictims draws n distinct in-service banks with the injector's
// seeded RNG.
func (e *executor) pickVictims(n int) []int {
	var pool []int
	for b := 0; b < e.cfg.Pool.NumBanks; b++ {
		if !e.pool.IsFailed(b) {
			pool = append(pool, b)
		}
	}
	if n > len(pool) {
		n = len(pool)
	}
	victims := make([]int, 0, n)
	for i := 0; i < n; i++ {
		j := e.inj.Pick(len(pool))
		victims = append(victims, pool[j])
		pool = append(pool[:j], pool[j+1:]...)
	}
	return victims
}

// failBank retires one bank, migrating its contents first when owned.
func (e *executor) failBank(l layerRef, bank int) error {
	e.flt.BankFailures++
	e.obs.fault(FaultBankFail, 1)
	owner := e.pool.Owner(bank)
	if owner == nil {
		if err := e.pool.RetireBank(bank); err != nil {
			return fault.Errf(fault.Fatal, fault.CheckInvariant, l.name,
				"retiring free bank %d: %w", bank, err)
		}
		e.record(trace.Event{Kind: trace.KindFault, Layer: l.name, Banks: 1,
			Note: fmt.Sprintf("bank-fail bank=%d (free)", bank)})
		e.obs.poolFailed(e.pool.FailedBanks())
		return nil
	}
	if e.pool.FreeBanks() > 0 {
		if err := e.pool.RelocateBank(owner, bank); err != nil {
			return fault.Errf(fault.Fatal, fault.CheckInvariant, l.name,
				"relocating bank %d of %q: %w", bank, owner.Tag(), err)
		}
		cost := e.bankCopyCycles()
		e.flt.Relocations++
		e.flt.MigrationCycles += cost
		e.layerFaultCycles += cost
		e.obs.relocated()
		e.obs.poolFailed(e.pool.FailedBanks())
		e.record(trace.Event{Kind: trace.KindRelocate, Layer: l.name, Tag: owner.Tag(),
			Banks: 1, Note: fmt.Sprintf("bank-fail bank=%d -> spare", bank)})
		return nil
	}
	return e.spillFailedBank(l, owner, bank)
}

// spillFailedBank handles a bank failure with no spare: the owning
// buffer releases its tail from the failed bank's position onward,
// the released payload spills to DRAM, and the bank is retired. The
// surviving prefix keeps its pin; the resident bookkeeping (and the
// functional-mode DRAM image) shrink to match.
func (e *executor) spillFailedBank(l layerRef, owner *sram.Buffer, bank int) error {
	pos := -1
	for i, b := range owner.Banks() {
		if b == bank {
			pos = i
			break
		}
	}
	if pos < 0 {
		return fault.Errf(fault.Fatal, fault.CheckInvariant, l.name,
			"bank %d owner bookkeeping is inconsistent", bank)
	}
	wasPinned := owner.Pinned()
	if wasPinned {
		if err := e.pool.Unpin(owner); err != nil {
			return err
		}
	}
	oldBytes := owner.Bytes()
	tail := owner.NumBanks() - pos
	if err := e.pool.ReleaseTailBanks(owner, tail); err != nil {
		return err
	}
	if err := e.pool.RetireBank(bank); err != nil {
		return fault.Errf(fault.Fatal, fault.CheckInvariant, l.name,
			"retiring spilled bank %d: %w", bank, err)
	}
	freed := owner.Freed()
	newBytes := int64(0)
	if !freed {
		newBytes = owner.Bytes()
		if wasPinned {
			if err := e.pool.Pin(owner); err != nil {
				return err
			}
		}
	}
	delta := oldBytes - newBytes
	if delta > 0 {
		_, start, dur, err := e.transferSpan(dram.ClassSpillWrite, delta)
		if err != nil {
			return err
		}
		e.flt.FaultSpillBytes += delta
		e.obs.faultSpilled(delta)
		e.recordSpan(trace.Event{Kind: trace.KindSpill, Layer: l.name, Tag: owner.Tag(),
			Class: dram.ClassSpillWrite.String(), Bytes: delta,
			Note: fmt.Sprintf("bank-fail bank=%d no spare", bank)}, start, dur)
	}
	e.obs.poolFailed(e.pool.FailedBanks())
	e.record(trace.Event{Kind: trace.KindFault, Layer: l.name, Banks: 1,
		Note: fmt.Sprintf("bank-fail bank=%d (spilled %d B)", bank, delta)})

	// Shrink the resident that tracked this buffer so consumers fetch
	// the spilled suffix from DRAM.
	for p, r := range e.residents {
		if r == nil || r.buf != owner {
			continue
		}
		r.onChip = newBytes
		if freed {
			r.buf = nil
		}
		if e.fn != nil {
			e.fn.evict(e, p, r)
		}
		break
	}
	return nil
}

// retryLoop replays injected DMA transient failures for one transfer:
// each failed attempt costs the (degraded) transfer occupancy plus an
// exponentially doubling backoff, tallied separately from payload
// traffic. Exhausting the attempt budget is fatal.
func (e *executor) retryLoop(c dram.Class, payload, moved, dur int64) error {
	if e.inj == nil {
		return nil
	}
	backoff := e.cfg.DMABackoffCycles
	if backoff <= 0 {
		backoff = DefaultDMABackoffCycles
	}
	attempts := 1
	for e.inj.TransferFails() {
		if attempts >= e.wd.Attempts() {
			return fault.Errf(fault.Fatal, fault.CheckStuckProgress, e.curLayer,
				"transfer of %d bytes (%s) failed %d attempts", moved, c, attempts)
		}
		attempts++
		cost := dur + backoff
		e.flt.DMARetries++
		e.flt.DMARetryCycles += cost
		e.flt.RetryBytes += e.ch.RecordRetry(c, payload)
		e.layerFaultCycles += cost
		e.obs.retry(cost)
		e.recordSpan(trace.Event{Kind: trace.KindRetry, Layer: e.curLayer,
			Class: c.String(), Bytes: moved,
			Note: fmt.Sprintf("attempt %d backoff %d", attempts, backoff)}, e.memCursor, cost)
		e.memCursor += cost
		backoff *= 2
	}
	return nil
}

// bankCopyCycles is the modeled cost of moving (or scrubbing) one
// bank's contents through the on-chip datapath.
func (e *executor) bankCopyCycles() int64 {
	bw := int64(e.cfg.PE.VectorWidth) * int64(e.cfg.DType.Bytes())
	if bw <= 0 {
		bw = 64
	}
	return (e.bankBytes() + bw - 1) / bw
}
