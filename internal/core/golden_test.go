package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"shortcutmining/internal/dram"
	"shortcutmining/internal/nn"
	"shortcutmining/internal/stats"
)

// goldenRun is the summary pinned per network × strategy. It covers
// every externally meaningful RunStats field (traffic by class, cycle
// attribution, pool high-water marks, procedure counters), so any
// behavioral drift in the executor — including the Run/Step refactor —
// fails this test.
type goldenRun struct {
	Network         string       `json:"network"`
	Strategy        string       `json:"strategy"`
	Traffic         dram.Traffic `json:"traffic"`
	ComputeCycles   int64        `json:"compute_cycles"`
	MemCycles       int64        `json:"mem_cycles"`
	TotalCycles     int64        `json:"total_cycles"`
	SRAMBytes       int64        `json:"sram_bytes"`
	MACs            int64        `json:"macs"`
	PeakUsedBanks   int          `json:"peak_used_banks"`
	PeakPinnedBanks int          `json:"peak_pinned_banks"`
	RoleSwitches    int64        `json:"role_switches"`
	BanksRecycled   int64        `json:"banks_recycled"`
	BanksEvicted    int64        `json:"banks_evicted"`
	Layers          int          `json:"layers"`
}

func summarize(r stats.RunStats) goldenRun {
	return goldenRun{
		Network: r.Network, Strategy: r.Strategy, Traffic: r.Traffic,
		ComputeCycles: r.ComputeCycles, MemCycles: r.MemCycles,
		TotalCycles: r.TotalCycles, SRAMBytes: r.SRAMBytes, MACs: r.MACs,
		PeakUsedBanks: r.PeakUsedBanks, PeakPinnedBanks: r.PeakPinnedBanks,
		RoleSwitches: r.RoleSwitches, BanksRecycled: r.BanksRecycled,
		BanksEvicted: r.BanksEvicted, Layers: len(r.Layers),
	}
}

// goldenPath is shared with the generator below.
var goldenPath = filepath.Join("testdata", "simulate_golden.json")

// collectGolden runs the full zoo under every canonical strategy.
func collectGolden(t testing.TB) []goldenRun {
	cfg := Default()
	var out []goldenRun
	for _, name := range nn.ZooNames() {
		net, err := nn.Build(name)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		for _, s := range Strategies() {
			run, err := Simulate(net, cfg, s, nil)
			if err != nil {
				t.Fatalf("simulate %s/%s: %v", name, s, err)
			}
			out = append(out, summarize(run))
		}
	}
	return out
}

// TestSimulateGolden pins Simulate's observable results for every zoo
// network against testdata/simulate_golden.json, generated before the
// resumable-Run refactor. Regenerate with SCM_UPDATE_GOLDEN=1 — but a
// diff here means the executor's behavior changed, which the stepping
// refactor must never do.
func TestSimulateGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-zoo sweep")
	}
	got := collectGolden(t)
	if os.Getenv("SCM_UPDATE_GOLDEN") != "" {
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d entries)", goldenPath, len(got))
		return
	}
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with SCM_UPDATE_GOLDEN=1 to create): %v", err)
	}
	var want []goldenRun
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("golden has %d entries, run produced %d (zoo drift? regenerate deliberately)", len(want), len(got))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("%s/%s drifted:\n got  %+v\n want %+v",
				got[i].Network, got[i].Strategy, got[i], want[i])
		}
	}
}
