package core

import (
	"shortcutmining/internal/nn"
	"shortcutmining/internal/sram"
)

// resident tracks where one produced feature map currently lives: the
// on-chip portion (a logical buffer in the bank pool) and the spilled
// portion (bytes in DRAM). The baseline keeps everything spilled; full
// Shortcut Mining keeps everything on chip when capacity allows.
type resident struct {
	producer int
	total    int64
	buf      *sram.Buffer // nil when nothing is on chip
	onChip   int64
	spilled  int64 // bytes available in DRAM (capacity spills or full copies)

	consumersLeft int
	lastUse       int
}

// dramBytes is the portion a consumer must fetch from DRAM.
func (r *resident) dramBytes() int64 { return r.total - r.onChip }

// dropBuffer detaches and frees the on-chip portion (used when a
// design point without retention releases a feature map whose data is
// already fully in DRAM).
func (r *resident) dropBuffer(pool *sram.Pool) error {
	if r.buf == nil {
		return nil
	}
	if r.buf.Pinned() {
		if err := pool.Unpin(r.buf); err != nil {
			return err
		}
	}
	if !r.buf.Freed() {
		if err := pool.Free(r.buf); err != nil {
			return err
		}
	}
	r.buf = nil
	r.onChip = 0
	return nil
}

// consumptionPlan precomputes, per physical layer, which feature maps
// it actually reads. Concat layers are transparent: consuming a concat
// consumes its (recursively expanded) sources, so concatenation is
// pure bank layout and DenseNet-style multi-consumer fan-out works
// without aliasing buffers.
type consumptionPlan struct {
	// sources[i] lists the physical producer indices layer i reads
	// (duplicates preserved: reading the same fmap twice costs twice).
	sources [][]int
	// consumers[p] is the number of distinct physical layers reading
	// p's feature map.
	consumers []int
	// lastUse[p] is the index of the last physical reader (p itself
	// when unread).
	lastUse []int
}

func buildConsumptionPlan(net *nn.Network) consumptionPlan {
	n := len(net.Layers)
	cp := consumptionPlan{
		sources:   make([][]int, n),
		consumers: make([]int, n),
		lastUse:   make([]int, n),
	}
	for i := range cp.lastUse {
		cp.lastUse[i] = i
	}

	// expand resolves a producer to physical sources through concats.
	var expand func(p *nn.Layer) []int
	memo := make(map[int][]int)
	expand = func(p *nn.Layer) []int {
		if p.Kind != nn.OpConcat {
			return []int{p.Index}
		}
		if got, ok := memo[p.Index]; ok {
			return got
		}
		var out []int
		for _, in := range p.Inputs {
			out = append(out, expand(net.Layer(in))...)
		}
		memo[p.Index] = out
		return out
	}

	for _, l := range net.Layers {
		if l.Kind == nn.OpInput || l.Kind == nn.OpConcat {
			continue
		}
		var srcs []int
		for _, in := range l.Inputs {
			srcs = append(srcs, expand(net.Layer(in))...)
		}
		cp.sources[l.Index] = srcs
		for _, p := range uniqueInts(srcs) {
			cp.consumers[p]++
			if l.Index > cp.lastUse[p] {
				cp.lastUse[p] = l.Index
			}
		}
	}
	return cp
}

// uniqueInts returns the distinct values of s in first-appearance
// order (source lists are tiny, so the quadratic scan is fine).
func uniqueInts(s []int) []int {
	var out []int
	for _, v := range s {
		seen := false
		for _, u := range out {
			if u == v {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, v)
		}
	}
	return out
}
