package core

import (
	"shortcutmining/internal/dram"
	"shortcutmining/internal/nn"
	"shortcutmining/internal/tiling"
)

// The detailed timing mode replaces the per-layer max(compute, mem)
// approximation with a tile-level pipeline: tiles stream through
// load → compute → store stages with double-buffered inputs (a tile's
// load may start once the tile two positions earlier has released its
// buffer), loads and stores sharing the feature-map channel, weights
// arriving on their own channel. Pipeline fill, drain, and stage
// imbalance bubbles appear naturally, so detailed cycles are never
// below the simple model's.

// scaledTile is one pipeline step in cycles.
type scaledTile struct {
	load, weight, store float64 // channel-occupancy cycles
	compute             float64
}

// pipelineCycles computes the layer's makespan under detailed timing.
// delta is the DRAM traffic the layer actually generated; the plan's
// per-tile byte counts are scaled down to it, so resident data that
// never touched DRAM does not occupy the channel. Returns 0 when the
// layer has no tile structure (the caller keeps the simple model).
func (e *executor) pipelineCycles(l *nn.Layer, plan tiling.Plan, delta dram.Traffic) int64 {
	tiles := plan.Tiles(e.cfg.DType)
	if len(tiles) == 0 {
		return 0
	}
	clock := e.cfg.PE.ClockMHz
	fmapBPC := e.cfg.DRAM.BandwidthGBps * 1e9 / (clock * 1e6)
	weightBPC := fmapBPC
	if e.cfg.WeightBandwidthGBps > 0 {
		weightBPC = e.cfg.WeightBandwidthGBps * 1e9 / (clock * 1e6)
	}

	actualLoad := float64(delta[dram.ClassIFMRead] + delta[dram.ClassSpillRead] + delta[dram.ClassShortcutRead])
	actualStore := float64(delta[dram.ClassOFMWrite] + delta[dram.ClassSpillWrite])
	actualWeights := float64(delta[dram.ClassWeightRead])

	var planLoad, planStore, planWeights float64
	var totalRows int
	for _, t := range tiles {
		planLoad += float64(t.LoadBytes)
		planStore += float64(t.StoreBytes)
		planWeights += float64(t.WeightBytes)
		totalRows += t.Rows
	}
	frac := func(actual, planned float64) float64 {
		if planned <= 0 {
			return 0
		}
		return actual / planned
	}
	fLoad, fStore, fWeights := frac(actualLoad, planLoad), frac(actualStore, planStore), frac(actualWeights, planWeights)
	compute := float64(e.cfg.PE.LayerCycles(l))

	steps := make([]scaledTile, len(tiles))
	for i, t := range tiles {
		steps[i] = scaledTile{
			load:    float64(t.LoadBytes) * fLoad / fmapBPC,
			weight:  float64(t.WeightBytes) * fWeights / weightBPC,
			store:   float64(t.StoreBytes) * fStore / fmapBPC,
			compute: compute * float64(t.Rows) / float64(totalRows),
		}
	}
	return makespan(steps)
}

// makespan schedules the tile pipeline and returns its length in
// cycles (rounded up). Loads have channel priority (they gate
// compute); stores queue and drain whenever the channel would
// otherwise idle before the next permissible load.
func makespan(tiles []scaledTile) int64 {
	max := func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	var memFree, wFree float64 // channel availability
	compDone := [2]float64{}   // compute completion of tiles i-1, i-2
	var lastComp float64

	type pendingStore struct{ ready, dur float64 }
	var storeQ []pendingStore
	drainBefore := func(deadline float64) {
		for len(storeQ) > 0 {
			start := max(memFree, storeQ[0].ready)
			if start >= deadline {
				return
			}
			memFree = start + storeQ[0].dur
			storeQ = storeQ[1:]
		}
	}

	for _, t := range tiles {
		gate := compDone[1] // double buffering: tile i-2's buffer must be free
		drainBefore(gate)   // use the wait for queued write-backs
		loadDone := max(memFree, gate) + t.load
		memFree = loadDone
		wDone := max(wFree, gate) + t.weight
		wFree = wDone

		compStart := max(max(loadDone, wDone), compDone[0])
		cd := compStart + t.compute
		compDone[1], compDone[0] = compDone[0], cd
		lastComp = cd
		if t.store > 0 {
			storeQ = append(storeQ, pendingStore{ready: cd, dur: t.store})
		}
	}
	for _, s := range storeQ {
		memFree = max(memFree, s.ready) + s.dur
	}
	end := max(max(lastComp, memFree), wFree)
	n := int64(end)
	if float64(n) < end {
		n++
	}
	return n
}
