package core

import (
	"testing"

	"shortcutmining/internal/nn"
	"shortcutmining/internal/sram"
	"shortcutmining/internal/tensor"
)

// funcNets builds the small networks the functional mode exercises:
// every operator kind, shortcut spans, concat fan-out, projections.
func funcNets(t *testing.T) []*nn.Network {
	t.Helper()
	var nets []*nn.Network

	// Residual chain with pooling, projection, and classifier.
	b := nn.NewBuilder("mini-resnet", tensor.Shape{C: 4, H: 16, W: 16})
	x := b.Conv("stem", b.InputName(), 8, 3, 1, 1)
	x = b.Pool("pool", x, nn.MaxPool, 2, 2, 0)
	y := b.Conv("b1.c1", x, 8, 3, 1, 1)
	y = b.Conv("b1.c2", y, 8, 3, 1, 1)
	x = b.Add("b1.add", x, y)
	proj := b.Conv("b2.down", x, 16, 1, 2, 0)
	y = b.Conv("b2.c1", x, 16, 3, 2, 1)
	y = b.Conv("b2.c2", y, 16, 3, 1, 1)
	x = b.Add("b2.add", proj, y)
	x = b.GlobalPool("gap", x)
	b.FC("fc", x, 10)
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	nets = append(nets, n)

	// Fire-module style concat with bypass and average pooling.
	b = nn.NewBuilder("mini-squeeze", tensor.Shape{C: 8, H: 12, W: 12})
	x = b.Conv("c1", b.InputName(), 16, 3, 1, 1)
	sq := b.Conv("f.squeeze", x, 4, 1, 1, 0)
	e1 := b.Conv("f.e1", sq, 8, 1, 1, 0)
	e3 := b.Conv("f.e3", sq, 8, 3, 1, 1)
	cat := b.Concat("f.cat", e1, e3)
	x = b.Add("f.bypass", x, cat)
	x = b.Pool("avg", x, nn.AvgPool, 2, 2, 0)
	b.Conv("head", x, 10, 1, 1, 0)
	n, err = b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	nets = append(nets, n)

	// Long-span shortcut.
	n, err = nn.ShortcutSpanNet(5, 2, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	nets = append(nets, n)

	// Dense concat fan-out (multi-consumer retention).
	n, err = nn.DenseChain(4, 6, 10)
	if err != nil {
		t.Fatal(err)
	}
	nets = append(nets, n)
	return nets
}

func funcConfig(banks int) Config {
	cfg := Default()
	cfg.Pool = sram.Config{NumBanks: banks, BankBytes: 1 << 10}
	cfg.ReserveBanks = 2
	cfg.WeightBufBytes = 1 << 20
	return cfg
}

func TestFunctionalAllStrategiesGenerousPool(t *testing.T) {
	for _, net := range funcNets(t) {
		for _, s := range Strategies() {
			if _, err := VerifyFunctional(net, funcConfig(96), s.Features(), 1); err != nil {
				t.Errorf("%s/%s: %v", net.Name, s, err)
			}
		}
	}
}

func TestFunctionalUnderCapacityPressure(t *testing.T) {
	// Shrinking pools force partial retention, spilling, and
	// recycling; data must survive every combination.
	for _, net := range funcNets(t) {
		for _, banks := range []int{8, 12, 16, 24, 48} {
			for _, s := range Strategies() {
				if _, err := VerifyFunctional(net, funcConfig(banks), s.Features(), 7); err != nil {
					t.Errorf("%s/%s/banks=%d: %v", net.Name, s, banks, err)
				}
			}
		}
	}
}

func TestFunctionalAblationFeatureSets(t *testing.T) {
	sets := []Features{
		{RoleSwitch: true},
		{RoleSwitch: true, ShortcutRetention: true},
		{RoleSwitch: true, ShortcutRetention: true, PartialRetention: true},
		{RoleSwitch: true, ShortcutRetention: true, IncrementalRecycle: true},
		{RoleSwitch: true, PartialRetention: true, IncrementalRecycle: true},
	}
	for _, net := range funcNets(t) {
		for i, f := range sets {
			if _, err := VerifyFunctional(net, funcConfig(14), f, 99); err != nil {
				t.Errorf("%s/set%d: %v", net.Name, i, err)
			}
		}
	}
}

func TestFunctionalExercisesTheMachinery(t *testing.T) {
	// Sanity: the pressured runs really did spill, pin and recycle —
	// otherwise the verification proves less than claimed.
	net, err := nn.ShortcutSpanNet(3, 3, 8, 12)
	if err != nil {
		t.Fatal(err)
	}
	r, err := VerifyFunctional(net, funcConfig(9), SCM.Features(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.PeakPinnedBanks == 0 {
		t.Error("no pinning under pressure")
	}
	if r.Traffic[4] == 0 && r.BanksRecycled == 0 { // ClassSpillWrite
		t.Error("pressured run neither spilled nor recycled")
	}
}

func TestFunctionalRejectsMisalignedBanks(t *testing.T) {
	cfg := funcConfig(16)
	cfg.Pool.BankBytes = 1022
	if _, err := VerifyFunctional(nn.MustResNet(18), cfg, SCM.Features(), 1); err == nil {
		t.Error("misaligned banks accepted")
	}
}

func TestFunctionalDeterministic(t *testing.T) {
	net := funcNets(t)[0]
	a, err := VerifyFunctional(net, funcConfig(16), SCM.Features(), 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := VerifyFunctional(net, funcConfig(16), SCM.Features(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.FmapTrafficBytes() != b.FmapTrafficBytes() || a.TotalCycles != b.TotalCycles {
		t.Error("functional runs are not deterministic")
	}
}
