package core

import (
	"context"
	"testing"

	"shortcutmining/internal/compress"
	"shortcutmining/internal/dram"
	"shortcutmining/internal/nn"
)

// compressedDefault returns the calibrated platform with a ZVC codec
// on every compressible class.
func compressedDefault(t *testing.T) Config {
	t.Helper()
	cc, err := compress.ParseSpec("zvc:sparsity=0.5,enc=2,dec=2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	cfg.Compression = cc
	return cfg
}

// TestCompressedSimulate pins the codec's end-to-end effect: feature-
// map wire traffic shrinks, weight traffic is untouched, the codec
// ledger balances against the channel tallies, and codec engine time
// stays inside the per-layer cycle attribution.
func TestCompressedSimulate(t *testing.T) {
	net := nn.MustBuild("resnet34")
	base, err := Simulate(net, Default(), SCM, nil)
	if err != nil {
		t.Fatal(err)
	}
	if base.Compression != nil {
		t.Fatal("uncompressed run carries a codec ledger")
	}
	got, err := Simulate(net, compressedDefault(t), SCM, nil)
	if err != nil {
		t.Fatal(err)
	}
	cs := got.Compression
	if cs == nil {
		t.Fatal("compressed run reports no codec ledger")
	}
	if got.Traffic.FeatureMap() >= base.Traffic.FeatureMap() {
		t.Errorf("compressed fmap traffic %d not below uncompressed %d",
			got.Traffic.FeatureMap(), base.Traffic.FeatureMap())
	}
	if got.Traffic[dram.ClassWeightRead] != base.Traffic[dram.ClassWeightRead] {
		t.Errorf("weight traffic changed: %d vs %d",
			got.Traffic[dram.ClassWeightRead], base.Traffic[dram.ClassWeightRead])
	}
	// The logical view must match what the uncompressed run moved
	// (burst rounding aside, logical bytes are what layers exchange and
	// the codec cannot change that).
	if cs.Logical[dram.ClassWeightRead] != cs.Wire[dram.ClassWeightRead] {
		t.Errorf("weight class logical %d != wire %d (weights are never compressed)",
			cs.Logical[dram.ClassWeightRead], cs.Wire[dram.ClassWeightRead])
	}
	for c := range cs.Wire {
		if cs.Wire[c] > cs.Logical[c] {
			t.Errorf("class %d: wire %d exceeds logical %d", c, cs.Wire[c], cs.Logical[c])
		}
	}
	if cs.SavedBytes != cs.Logical.Total()-cs.Wire.Total() {
		t.Errorf("saved %d != logical-wire %d", cs.SavedBytes, cs.Logical.Total()-cs.Wire.Total())
	}
	if cs.EncodeCycles == 0 || cs.DecodeCycles == 0 {
		t.Errorf("codec engine time missing: enc %d dec %d", cs.EncodeCycles, cs.DecodeCycles)
	}
	var layerCodec, layerCycles int64
	for _, ls := range got.Layers {
		layerCodec += ls.CodecCycles
		layerCycles += ls.Cycles
	}
	if layerCodec != cs.EncodeCycles+cs.DecodeCycles {
		t.Errorf("per-layer codec cycles %d != ledger enc+dec %d",
			layerCodec, cs.EncodeCycles+cs.DecodeCycles)
	}
	if layerCycles != got.TotalCycles {
		t.Errorf("per-layer cycles %d != total %d with codec on", layerCycles, got.TotalCycles)
	}
}

// TestSuspendResumeBitIdenticalCompressed re-runs the suspend-at-every-
// boundary golden test with the codec on: preemption costs (now
// compressed spills and reloads) stay isolated in SchedStats and the
// final RunStats — codec ledger included — is bit-identical to the
// uninterrupted compressed run.
func TestSuspendResumeBitIdenticalCompressed(t *testing.T) {
	net := nn.MustBuild("squeezenet-bypass")
	cfg := compressedDefault(t)
	for _, strat := range Strategies() {
		want, err := Simulate(net, cfg, strat, nil)
		if err != nil {
			t.Fatalf("%s: Simulate: %v", strat, err)
		}
		r, err := NewRun(net, cfg, strat, nil, nil)
		if err != nil {
			t.Fatalf("%s: NewRun: %v", strat, err)
		}
		for done := false; !done; {
			done, err = r.Step(context.Background())
			if err != nil {
				t.Fatalf("%s: step: %v", strat, err)
			}
			if !done {
				if _, err := r.Suspend(); err != nil {
					t.Fatalf("%s: suspend at layer %d: %v", strat, r.NextLayer(), err)
				}
			}
		}
		got, err := r.Result()
		if err != nil {
			t.Fatalf("%s: Result: %v", strat, err)
		}
		if g, w := runJSON(t, got), runJSON(t, want); g != w {
			t.Errorf("%s: compressed suspend/resume changed RunStats\n got %s\nwant %s", strat, g, w)
		}
		if strat == SCM {
			// Compressed spills move fewer bytes than their logical
			// payload; the ledger records the wire side.
			sc := r.Sched()
			plain, err := func() (SchedStats, error) {
				pr, err := NewRun(net, Default(), strat, nil, nil)
				if err != nil {
					return SchedStats{}, err
				}
				for done := false; !done; {
					if done, err = pr.Step(context.Background()); err != nil {
						return SchedStats{}, err
					}
					if !done {
						if _, err := pr.Suspend(); err != nil {
							return SchedStats{}, err
						}
					}
				}
				return pr.Sched(), nil
			}()
			if err != nil {
				t.Fatalf("%s: uncompressed reference: %v", strat, err)
			}
			if sc.SpillBytes >= plain.SpillBytes {
				t.Errorf("%s: compressed spill bytes %d not below uncompressed %d",
					strat, sc.SpillBytes, plain.SpillBytes)
			}
		}
	}
}

// TestSnapshotRestoreBitIdenticalCompressed lifts the compressed
// suspend/resume test across the serialization boundary: checkpoint at
// every layer boundary, JSON round trip, restore into a fresh Run.
func TestSnapshotRestoreBitIdenticalCompressed(t *testing.T) {
	net := nn.MustBuild("squeezenet-bypass")
	cfg := compressedDefault(t)
	for _, strat := range Strategies() {
		want, err := Simulate(net, cfg, strat, nil)
		if err != nil {
			t.Fatalf("%s: Simulate: %v", strat, err)
		}
		r, err := NewRun(net, cfg, strat, nil, nil)
		if err != nil {
			t.Fatalf("%s: NewRun: %v", strat, err)
		}
		for done := false; !done; {
			done, err = r.Step(context.Background())
			if err != nil {
				t.Fatalf("%s: step at layer %d: %v", strat, r.NextLayer(), err)
			}
			if done {
				break
			}
			if _, err := r.Suspend(); err != nil {
				t.Fatalf("%s: suspend at layer %d: %v", strat, r.NextLayer(), err)
			}
			snap, err := r.Snapshot()
			if err != nil {
				t.Fatalf("%s: snapshot at layer %d: %v", strat, r.NextLayer(), err)
			}
			r, err = RestoreRun(net, cfg, roundtrip(t, snap))
			if err != nil {
				t.Fatalf("%s: restore at layer %d: %v", strat, snap.Next, err)
			}
		}
		got, err := r.Result()
		if err != nil {
			t.Fatalf("%s: Result: %v", strat, err)
		}
		if g, w := runJSON(t, got), runJSON(t, want); g != w {
			t.Errorf("%s: compressed snapshot/restore changed RunStats\n got %s\nwant %s", strat, g, w)
		}
	}
}
