package core_test

import (
	"testing"

	"shortcutmining/internal/core"
	"shortcutmining/internal/nn"
)

// maxAllocsPerLayer bounds the per-layer allocation budget of the
// Simulate hot path. The measured baseline is ~14 (densechain) to ~21
// (resnet34) allocations per layer; the cap leaves roughly 2x headroom
// so ordinary refactors pass while an accidental per-cycle or
// per-tile allocation inside the layer loop — which multiplies the
// count by orders of magnitude — fails immediately.
const maxAllocsPerLayer = 48.0

// TestSimulateAllocsPerLayer guards the serving throughput measured by
// scm-bench: the per-layer loop must stay allocation-light or
// cycles/sec regresses across every caller at once.
func TestSimulateAllocsPerLayer(t *testing.T) {
	for _, name := range []string{"densechain", "resnet34"} {
		net, err := nn.Build(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.Default()
		layers := 0
		allocs := testing.AllocsPerRun(10, func() {
			res, err := core.Simulate(net, cfg, core.SCM, nil)
			if err != nil {
				t.Fatal(err)
			}
			layers = len(res.Layers)
		})
		if layers == 0 {
			t.Fatalf("%s: no layers simulated", name)
		}
		perLayer := allocs / float64(layers)
		t.Logf("%s: %.0f allocs over %d layers = %.1f per layer (budget %.0f)",
			name, allocs, layers, perLayer, maxAllocsPerLayer)
		if perLayer > maxAllocsPerLayer {
			t.Errorf("%s: %.1f allocs per layer exceeds the %.0f budget — something in the layer loop started allocating",
				name, perLayer, maxAllocsPerLayer)
		}
	}
}
