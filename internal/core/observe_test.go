package core

import (
	"testing"

	"shortcutmining/internal/metrics"
	"shortcutmining/internal/trace"
)

func TestLayerCycleMetricsSumToTotal(t *testing.T) {
	n := residualNet(t)
	for _, batch := range []int{1, 4} {
		cfg := smallConfig()
		cfg.Batch = batch
		reg := metrics.New()
		r, err := SimulateObserved(n, cfg, SCM, nil, reg)
		if err != nil {
			t.Fatal(err)
		}
		if got := reg.SumCounter(MetricLayerCycles); got != r.TotalCycles {
			t.Errorf("batch=%d: sum(%s) = %d, want TotalCycles %d",
				batch, MetricLayerCycles, got, r.TotalCycles)
		}
		if reg.SumCounter(MetricLayerComputeCycles) == 0 {
			t.Errorf("batch=%d: no compute cycles attributed", batch)
		}
		if r.Metrics == nil {
			t.Fatalf("batch=%d: RunStats.Metrics not embedded", batch)
		}
	}
}

func TestDRAMMetricsMatchTraffic(t *testing.T) {
	n := residualNet(t)
	reg := metrics.New()
	r, err := SimulateObserved(n, smallConfig(), Baseline, nil, reg)
	if err != nil {
		t.Fatal(err)
	}
	// At batch=1 the channel observer sees every transfer exactly once,
	// so the counter family equals the run's traffic vector.
	if got, want := reg.SumCounter(MetricDRAMBytes), r.Traffic.Total(); got != want {
		t.Errorf("sum(%s) = %d, want %d", MetricDRAMBytes, got, want)
	}
	if reg.SumCounter(MetricDRAMTransfers) == 0 {
		t.Error("no transfers counted")
	}
	h := reg.Histogram(MetricDRAMBurstBytes, "", nil)
	if h.Count() != reg.SumCounter(MetricDRAMTransfers) {
		t.Errorf("burst histogram count %d != transfer count %d",
			h.Count(), reg.SumCounter(MetricDRAMTransfers))
	}
}

func TestProcedureCounters(t *testing.T) {
	n := residualNet(t)

	// Baseline streams every shortcut from DRAM: p3 misses, no hits.
	reg := metrics.New()
	if _, err := SimulateObserved(n, smallConfig(), Baseline, nil, reg); err != nil {
		t.Fatal(err)
	}
	p3 := metrics.L("proc", ProcRetention)
	if reg.Counter(MetricProcMisses, "", p3).Value() == 0 {
		t.Error("baseline recorded no p3 misses")
	}
	if reg.Counter(MetricProcHits, "", p3).Value() != 0 {
		t.Error("baseline recorded p3 hits")
	}

	// SCM on a fitting pool serves the shortcut and role switch on-chip.
	reg = metrics.New()
	if _, err := SimulateObserved(n, smallConfig(), SCM, nil, reg); err != nil {
		t.Fatal(err)
	}
	if reg.Counter(MetricProcHits, "", p3).Value() == 0 {
		t.Error("scm recorded no p3 hits")
	}
	if reg.Counter(MetricProcHits, "", metrics.L("proc", ProcRoleSwitch)).Value() == 0 {
		t.Error("scm recorded no p2 hits")
	}
}

func TestPoolPeakGaugeMatchesRunStats(t *testing.T) {
	n := residualNet(t)
	reg := metrics.New()
	r, err := SimulateObserved(n, smallConfig(), SCM, nil, reg)
	if err != nil {
		t.Fatal(err)
	}
	g := reg.Gauge(MetricPoolUsedPeak, "")
	if int(g.Peak()) != r.PeakUsedBanks {
		t.Errorf("pool peak gauge = %g, want %d", g.Peak(), r.PeakUsedBanks)
	}
}

func TestTraceCycleStampsMonotone(t *testing.T) {
	n := residualNet(t)
	var buf trace.Buffer
	if _, err := SimulateObserved(n, smallConfig(), SCM, &buf, metrics.New()); err != nil {
		t.Fatal(err)
	}
	prevStart, prevEnd := int64(-1), int64(-1)
	starts, ends := 0, 0
	for _, e := range buf.Events {
		switch e.Kind {
		case trace.KindLayerStart:
			if e.Cycle < prevStart || e.Cycle < prevEnd {
				t.Fatalf("layer-start at cycle %d after end %d", e.Cycle, prevEnd)
			}
			prevStart = e.Cycle
			starts++
		case trace.KindLayerEnd:
			if e.DurCycles < 0 {
				t.Fatalf("layer-end %q with negative duration", e.Layer)
			}
			if got := e.Cycle - e.DurCycles; got != prevStart {
				t.Fatalf("layer-end %q spans [%d,%d], layer started at %d",
					e.Layer, got, e.Cycle, prevStart)
			}
			prevEnd = e.Cycle
			ends++
		}
	}
	if starts == 0 || starts != ends {
		t.Errorf("layer-start/end = %d/%d", starts, ends)
	}
}

func TestSimulateObservedNilRegistry(t *testing.T) {
	// A nil registry must behave exactly like plain Simulate.
	n := residualNet(t)
	plain, err := Simulate(n, smallConfig(), SCM, nil)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := SimulateObserved(n, smallConfig(), SCM, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if observed.Metrics != nil {
		t.Error("nil registry produced a snapshot")
	}
	if observed.TotalCycles != plain.TotalCycles || observed.Traffic != plain.Traffic {
		t.Errorf("observed run diverged: %+v vs %+v", observed.TotalCycles, plain.TotalCycles)
	}
}
