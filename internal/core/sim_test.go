package core

import (
	"strings"
	"testing"

	"shortcutmining/internal/dram"
	"shortcutmining/internal/nn"
	"shortcutmining/internal/sram"
	"shortcutmining/internal/tensor"
	"shortcutmining/internal/trace"
)

// smallConfig is a platform whose pool comfortably holds the tiny test
// networks, making traffic hand-computable.
func smallConfig() Config {
	cfg := Default()
	cfg.Pool = sram.Config{NumBanks: 64, BankBytes: 4 << 10}
	cfg.ReserveBanks = 2
	cfg.WeightBufBytes = 1 << 20
	return cfg
}

// residualNet is one residual block of same-shape 8x16x16 fmaps
// (1 fmap = 4096 bytes at fixed16).
func residualNet(t *testing.T) *nn.Network {
	t.Helper()
	b := nn.NewBuilder("res", tensor.Shape{C: 8, H: 16, W: 16})
	x := b.Conv("c1", b.InputName(), 8, 3, 1, 1)
	y := b.Conv("c2", x, 8, 3, 1, 1)
	y = b.Conv("c3", y, 8, 3, 1, 1)
	b.Add("add", x, y)
	n, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

const fm = int64(8 * 16 * 16 * 2) // 4096

func TestBaselineTrafficHandComputed(t *testing.T) {
	n := residualNet(t)
	r, err := Simulate(n, smallConfig(), Baseline, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := r.Traffic
	// Reads: image (c1) + c1→c2 + c2→c3 = 3 fmaps of IFM...
	// plus the add reads c3 (gap 1, IFMRead) and c1 (gap 3, shortcut).
	if tr[dram.ClassIFMRead] != 4*fm {
		t.Errorf("ifm reads = %d, want %d", tr[dram.ClassIFMRead], 4*fm)
	}
	if tr[dram.ClassShortcutRead] != fm {
		t.Errorf("shortcut reads = %d, want %d", tr[dram.ClassShortcutRead], fm)
	}
	// Writes: every produced fmap (c1, c2, c3, add).
	if tr[dram.ClassOFMWrite] != 4*fm {
		t.Errorf("ofm writes = %d, want %d", tr[dram.ClassOFMWrite], 4*fm)
	}
	if tr[dram.ClassSpillWrite] != 0 || tr[dram.ClassSpillRead] != 0 {
		t.Error("baseline should not spill")
	}
	if r.FmapTrafficBytes() != 9*fm {
		t.Errorf("fmap traffic = %d, want %d", r.FmapTrafficBytes(), 9*fm)
	}
	// Weights: three 8→8 3x3 convs, read once each.
	if want := 3 * int64(8*8*9*2); tr[dram.ClassWeightRead] != want {
		t.Errorf("weights = %d, want %d", tr[dram.ClassWeightRead], want)
	}
	if r.PeakUsedBanks != 0 {
		t.Errorf("baseline used pool banks: %d", r.PeakUsedBanks)
	}
}

func TestSCMTrafficOnlyImageAndResult(t *testing.T) {
	n := residualNet(t)
	var buf trace.Buffer
	r, err := Simulate(n, smallConfig(), SCM, &buf)
	if err != nil {
		t.Fatal(err)
	}
	tr := r.Traffic
	// Everything retained: only the input image enters and the final
	// output leaves.
	if tr[dram.ClassIFMRead] != fm {
		t.Errorf("ifm reads = %d, want %d (image only)", tr[dram.ClassIFMRead], fm)
	}
	if tr[dram.ClassOFMWrite] != fm {
		t.Errorf("ofm writes = %d, want %d (result only)", tr[dram.ClassOFMWrite], fm)
	}
	for _, c := range []dram.Class{dram.ClassShortcutRead, dram.ClassSpillRead, dram.ClassSpillWrite} {
		if tr[c] != 0 {
			t.Errorf("%v = %d, want 0", c, tr[c])
		}
	}
	// The shortcut fmap was pinned across c2 and c3.
	if r.PeakPinnedBanks == 0 {
		t.Error("nothing was pinned")
	}
	if len(buf.OfKind(trace.KindPin)) != 1 {
		t.Errorf("pin events = %d, want 1", len(buf.OfKind(trace.KindPin)))
	}
	if len(buf.OfKind(trace.KindRoleSwitch)) == 0 {
		t.Error("no role-switch events")
	}
}

func TestFMReuseWritesShortcutCopy(t *testing.T) {
	n := residualNet(t)
	r, err := Simulate(n, smallConfig(), FMReuse, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := r.Traffic
	// c1's output feeds c2 on chip but must also be written for the
	// add; the add re-reads it as shortcut traffic.
	if tr[dram.ClassShortcutRead] != fm {
		t.Errorf("shortcut reads = %d, want %d", tr[dram.ClassShortcutRead], fm)
	}
	// Writes: c1 full copy + final output.
	if tr[dram.ClassOFMWrite] != 2*fm {
		t.Errorf("ofm writes = %d, want %d", tr[dram.ClassOFMWrite], 2*fm)
	}
	// Reads: image only (c2, c3, add primary inputs all on chip).
	if tr[dram.ClassIFMRead] != fm {
		t.Errorf("ifm reads = %d, want %d", tr[dram.ClassIFMRead], fm)
	}
	if r.FmapTrafficBytes() != 4*fm {
		t.Errorf("fmap traffic = %d, want %d", r.FmapTrafficBytes(), 4*fm)
	}
}

func TestStrategyOrderingAcrossZoo(t *testing.T) {
	cfg := Default()
	for _, name := range nn.ZooNames() {
		net := nn.MustBuild(name)
		base, err := Simulate(net, cfg, Baseline, nil)
		if err != nil {
			t.Fatalf("%s baseline: %v", name, err)
		}
		fmr, err := Simulate(net, cfg, FMReuse, nil)
		if err != nil {
			t.Fatalf("%s fm-reuse: %v", name, err)
		}
		scm, err := Simulate(net, cfg, SCM, nil)
		if err != nil {
			t.Fatalf("%s scm: %v", name, err)
		}
		b, f, s := base.FmapTrafficBytes(), fmr.FmapTrafficBytes(), scm.FmapTrafficBytes()
		if !(s <= f && f <= b) {
			t.Errorf("%s: traffic ordering violated: scm=%d fmreuse=%d baseline=%d", name, s, f, b)
		}
		if scm.Throughput() < base.Throughput() {
			t.Errorf("%s: SCM slower than baseline", name)
		}
		// Weight traffic is strategy-independent.
		if base.Traffic[dram.ClassWeightRead] != scm.Traffic[dram.ClassWeightRead] {
			t.Errorf("%s: weight traffic differs across strategies", name)
		}
	}
}

func TestShortcutFreeNetworksGainNothingFromRetention(t *testing.T) {
	cfg := Default()
	for _, name := range []string{"vgg16", "plain34"} {
		net := nn.MustBuild(name)
		fmr, err := Simulate(net, cfg, FMReuse, nil)
		if err != nil {
			t.Fatal(err)
		}
		scm, err := Simulate(net, cfg, SCM, nil)
		if err != nil {
			t.Fatal(err)
		}
		if fmr.FmapTrafficBytes() != scm.FmapTrafficBytes() {
			t.Errorf("%s: scm %d != fm-reuse %d without shortcuts",
				name, scm.FmapTrafficBytes(), fmr.FmapTrafficBytes())
		}
	}
}

func TestSCMTrafficMonotoneInPoolSize(t *testing.T) {
	net := nn.MustResNet(34)
	prev := int64(-1)
	for _, kb := range []int64{256, 384, 512, 768, 1024, 2048, 4096} {
		cfg := Default().WithPoolBytes(kb << 10)
		r, err := Simulate(net, cfg, SCM, nil)
		if err != nil {
			t.Fatalf("pool %dKB: %v", kb, err)
		}
		got := r.FmapTrafficBytes()
		if prev >= 0 && got > prev {
			t.Errorf("pool %dKB: traffic %d > smaller pool's %d", kb, got, prev)
		}
		prev = got
	}
}

func TestSpanInvariance(t *testing.T) {
	// The paper's core claim (E9): retaining a shortcut across more
	// intermediate layers costs no extra traffic and no extra pinned
	// banks, as long as the layer shapes are unchanged.
	cfg := smallConfig()
	var firstFmapPerBlock int64
	var firstPinned int
	for span := 1; span <= 8; span++ {
		net, err := nn.ShortcutSpanNet(span, 3, 8, 16)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Simulate(net, cfg, SCM, nil)
		if err != nil {
			t.Fatal(err)
		}
		if span == 1 {
			firstFmapPerBlock = r.FmapTrafficBytes()
			firstPinned = r.PeakPinnedBanks
			continue
		}
		if got := r.FmapTrafficBytes(); got != firstFmapPerBlock {
			t.Errorf("span %d: traffic %d != span-1 traffic %d", span, got, firstFmapPerBlock)
		}
		if r.PeakPinnedBanks != firstPinned {
			t.Errorf("span %d: pinned peak %d != span-1 peak %d", span, r.PeakPinnedBanks, firstPinned)
		}
	}
}

func TestIncrementalRecycleUnderPressure(t *testing.T) {
	// Pool sized so the add's output cannot be placed without
	// recycling the consumed shortcut banks: 3 fmaps of capacity + the
	// reserve; during the add, shortcut + primary are held (2 fmaps)
	// and the output (1 fmap) must come from recycled banks.
	b := nn.NewBuilder("res", tensor.Shape{C: 8, H: 16, W: 16})
	x := b.Conv("c1", b.InputName(), 8, 3, 1, 1)
	y := b.Conv("c2", x, 8, 3, 1, 1)
	sum := b.Add("add", x, y)
	b.Conv("c3", sum, 8, 3, 1, 1) // keeps the add's output retained
	net, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	cfg.Pool = sram.Config{NumBanks: 10, BankBytes: 1 << 10} // 10 KiB: 2.5 fmaps
	cfg.ReserveBanks = 1
	withRecycle, err := Simulate(net, cfg, SCM, nil)
	if err != nil {
		t.Fatal(err)
	}
	if withRecycle.BanksRecycled == 0 {
		t.Fatal("expected bank recycling under pressure")
	}
	noRecycle := SCM.Features()
	noRecycle.IncrementalRecycle = false
	without, err := SimulateFeatures(net, cfg, noRecycle, nil)
	if err != nil {
		t.Fatal(err)
	}
	if without.BanksRecycled != 0 {
		t.Error("recycling happened with P4 disabled")
	}
	if withRecycle.FmapTrafficBytes() >= without.FmapTrafficBytes() {
		t.Errorf("recycling did not reduce traffic: %d vs %d",
			withRecycle.FmapTrafficBytes(), without.FmapTrafficBytes())
	}
}

func TestPartialRetentionSpills(t *testing.T) {
	// Pool far smaller than one fmap: with P5 a prefix is retained and
	// the suffix spilled; without P5 retention is all-or-nothing.
	n := residualNet(t)
	cfg := Default()
	cfg.Pool = sram.Config{NumBanks: 8, BankBytes: 1 << 10} // 8 KiB, fmap = 4 KiB
	cfg.ReserveBanks = 2
	partial, err := Simulate(n, cfg, SCM, nil)
	if err != nil {
		t.Fatal(err)
	}
	if partial.Traffic[dram.ClassSpillWrite] == 0 {
		t.Error("expected spill writes under pressure")
	}
	noP5 := SCM.Features()
	noP5.PartialRetention = false
	allOrNothing, err := SimulateFeatures(n, cfg, noP5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if allOrNothing.FmapTrafficBytes() < partial.FmapTrafficBytes() {
		t.Errorf("all-or-nothing beat partial retention: %d vs %d",
			allOrNothing.FmapTrafficBytes(), partial.FmapTrafficBytes())
	}
}

func TestAblationMonotonicity(t *testing.T) {
	// Each procedure, added in order, must not increase traffic on the
	// headline residual networks.
	sets := []Features{
		{},
		{RoleSwitch: true, PartialRetention: true},
		{RoleSwitch: true, ShortcutRetention: true, PartialRetention: true},
		{RoleSwitch: true, ShortcutRetention: true, IncrementalRecycle: true, PartialRetention: true},
	}
	cfg := Default()
	for _, name := range nn.HeadlineNetworks() {
		net := nn.MustBuild(name)
		prev := int64(-1)
		for i, f := range sets {
			r, err := SimulateFeatures(net, cfg, f, nil)
			if err != nil {
				t.Fatalf("%s set %d: %v", name, i, err)
			}
			got := r.FmapTrafficBytes()
			if prev >= 0 && got > prev {
				t.Errorf("%s: feature set %d increased traffic %d → %d", name, i, prev, got)
			}
			prev = got
		}
	}
}

func TestBatchScaling(t *testing.T) {
	net := nn.MustResNet(18)
	cfg := Default()
	one, err := Simulate(net, cfg, SCM, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Batch = 4
	four, err := Simulate(net, cfg, SCM, nil)
	if err != nil {
		t.Fatal(err)
	}
	if four.FmapTrafficBytes() != 4*one.FmapTrafficBytes() {
		t.Errorf("traffic did not scale: %d vs 4×%d", four.FmapTrafficBytes(), one.FmapTrafficBytes())
	}
	if four.TotalCycles != 4*one.TotalCycles {
		t.Errorf("cycles did not scale: %d vs 4×%d", four.TotalCycles, one.TotalCycles)
	}
	if four.MACs != 4*one.MACs {
		t.Errorf("MACs did not scale")
	}
	// Throughput (img/s) is batch-invariant under linear scaling.
	if delta := four.Throughput() - one.Throughput(); delta > 1e-9 || delta < -1e-9 {
		t.Errorf("throughput changed with batch: %g vs %g", four.Throughput(), one.Throughput())
	}
}

func TestDTypeScaling(t *testing.T) {
	net := nn.MustResNet(18)
	cfg := Default()
	cfg.DType = tensor.Fixed8
	r8, err := Simulate(net, cfg, Baseline, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DType = tensor.Fixed16
	r16, err := Simulate(net, cfg, Baseline, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline fmap traffic scales at least with element size; the
	// fixed-capacity buffers make halo/grouping overheads relatively
	// worse at wider types, so slightly more than 2× is expected.
	lo, hi := 19*r8.FmapTrafficBytes()/10, 25*r8.FmapTrafficBytes()/10
	if got := r16.FmapTrafficBytes(); got < lo || got > hi {
		t.Errorf("fixed16 traffic %d not ≈2–2.5× fixed8 %d", got, r8.FmapTrafficBytes())
	}
}

func TestSimulateErrors(t *testing.T) {
	net := nn.MustResNet(18)
	bad := Default()
	bad.Batch = 0
	if _, err := Simulate(net, bad, SCM, nil); err == nil {
		t.Error("invalid config accepted")
	}
	tiny := Default()
	tiny.Pool = sram.Config{NumBanks: 2, BankBytes: 64}
	tiny.ReserveBanks = 0
	if _, err := Simulate(net, tiny, Baseline, nil); err == nil {
		t.Error("infeasible pool accepted")
	} else if !strings.Contains(err.Error(), "conv1") {
		t.Errorf("error should name the failing layer: %v", err)
	}
}

func TestParseStrategy(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Strategy
	}{{"baseline", Baseline}, {"fm-reuse", FMReuse}, {"fmreuse", FMReuse}, {"scm", SCM}, {"shortcut-mining", SCM}} {
		got, err := ParseStrategy(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseStrategy(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseStrategy("magic"); err == nil {
		t.Error("unknown strategy accepted")
	}
	if len(Strategies()) != 3 {
		t.Error("Strategies() should list 3 points")
	}
}

func TestFeatureLabels(t *testing.T) {
	if featureLabel(Baseline.Features()) != "baseline" {
		t.Error("baseline label")
	}
	if featureLabel(SCM.Features()) != "scm" {
		t.Error("scm label")
	}
	custom := Features{RoleSwitch: true, ShortcutRetention: true}
	if got := featureLabel(custom); !strings.Contains(got, "P2") || !strings.Contains(got, "P3") {
		t.Errorf("custom label = %q", got)
	}
	if Baseline.String() != "baseline" || FMReuse.String() != "fm-reuse" || SCM.String() != "scm" {
		t.Error("strategy strings")
	}
}

func TestWithPoolBytes(t *testing.T) {
	cfg := Default()
	c2 := cfg.WithPoolBytes(1 << 20)
	if got := c2.Pool.TotalBytes(); got < 1<<20 || got >= (1<<20)+int64(c2.Pool.BankBytes) {
		t.Errorf("pool bytes = %d", got)
	}
	c3 := cfg.WithPoolBytes(1)
	if c3.Pool.NumBanks <= cfg.ReserveBanks {
		t.Errorf("degenerate pool: %d banks", c3.Pool.NumBanks)
	}
}

func TestTraceEventsWellFormed(t *testing.T) {
	var buf trace.Buffer
	net := nn.MustBuild("squeezenet-bypass")
	if _, err := Simulate(net, Default(), SCM, &buf); err != nil {
		t.Fatal(err)
	}
	starts := buf.OfKind(trace.KindLayerStart)
	ends := buf.OfKind(trace.KindLayerEnd)
	if len(starts) != len(net.Layers) || len(ends) != len(net.Layers) {
		t.Errorf("start/end events %d/%d for %d layers", len(starts), len(ends), len(net.Layers))
	}
	var prev int64
	for _, e := range buf.Events {
		if e.Seq <= prev {
			t.Fatalf("non-monotonic seq %d after %d", e.Seq, prev)
		}
		prev = e.Seq
	}
	if len(buf.OfKind(trace.KindPin)) == 0 {
		t.Error("no retention events on a bypass network")
	}
}

func TestAmortizeWeights(t *testing.T) {
	net := nn.MustResNet(18)
	cfg := Default()
	cfg.Batch = 4
	perImage, err := Simulate(net, cfg, SCM, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.AmortizeWeights = true
	amort, err := Simulate(net, cfg, SCM, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Weights once vs four times; feature maps identical.
	if got, want := amort.Traffic[dram.ClassWeightRead], perImage.Traffic[dram.ClassWeightRead]/4; got != want {
		t.Errorf("amortized weights = %d, want %d", got, want)
	}
	if amort.FmapTrafficBytes() != perImage.FmapTrafficBytes() {
		t.Error("amortization changed feature-map traffic")
	}
}

func TestCaptureFanOutFmaps(t *testing.T) {
	// The input image feeds three branches; after the first branch
	// streams it from DRAM, the executor must capture it so the other
	// two read it on chip.
	b := nn.NewBuilder("fanout", tensor.Shape{C: 8, H: 16, W: 16})
	a := b.Conv("a", b.InputName(), 8, 1, 1, 0)
	c := b.Conv("c", b.InputName(), 8, 3, 1, 1)
	d := b.Conv("d", b.InputName(), 8, 3, 1, 1)
	s1 := b.Add("s1", a, c)
	b.Add("s2", s1, d)
	net, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var buf trace.Buffer
	r, err := Simulate(net, smallConfig(), SCM, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// Image read exactly once despite three consumers.
	if got := r.Traffic[dram.ClassIFMRead]; got != fm {
		t.Errorf("image traffic = %d, want %d (single read)", got, fm)
	}
	captured := false
	for _, e := range buf.OfKind(trace.KindPin) {
		if e.Note == "capture" && e.Tag == "input" {
			captured = true
		}
	}
	if !captured {
		t.Error("no capture event for the input image")
	}
	// Without retention the image is re-read per consumer.
	fmr, err := Simulate(net, smallConfig(), FMReuse, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmr.Traffic[dram.ClassIFMRead]; got != 3*fm {
		t.Errorf("fm-reuse image traffic = %d, want %d", got, 3*fm)
	}
}

func TestCaptureSkipsSingleFarConsumer(t *testing.T) {
	// A fully spilled fmap with ONE remaining consumer is not captured
	// (the retention-pressure gamble); residualNet's shortcut after c2
	// has exactly one consumer left, so force full spilling with a pool
	// too small to retain anything and check no capture happens.
	cfg := Default()
	cfg.Pool = sram.Config{NumBanks: 3, BankBytes: 1 << 10}
	cfg.ReserveBanks = 2
	cfg.WeightBufBytes = 1 << 20
	var buf trace.Buffer
	if _, err := Simulate(residualNet(t), cfg, SCM, &buf); err != nil {
		t.Fatal(err)
	}
	for _, e := range buf.OfKind(trace.KindPin) {
		if e.Note == "capture" {
			t.Errorf("unexpected capture of %s", e.Tag)
		}
	}
}

func TestCaptureFunctionallyCorrect(t *testing.T) {
	// Dense fan-out with capture active, under pressure, bit-exact.
	net, err := nn.DenseChain(5, 8, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, banks := range []int{6, 10, 24, 64} {
		cfg := Default()
		cfg.Pool = sram.Config{NumBanks: banks, BankBytes: 1 << 10}
		cfg.ReserveBanks = 2
		cfg.WeightBufBytes = 1 << 20
		if _, err := VerifyFunctional(net, cfg, SCM.Features(), 9); err != nil {
			t.Fatalf("banks %d: %v", banks, err)
		}
	}
}
