package core

import (
	"shortcutmining/internal/dram"
	"shortcutmining/internal/metrics"
	"shortcutmining/internal/stats"
	"shortcutmining/internal/trace"
)

// Metric names exposed by an observed run. The per-layer cycle
// counters are the acceptance contract: their sum equals
// RunStats.TotalCycles exactly.
const (
	MetricLayerCycles        = "scm_layer_cycles_total"
	MetricLayerComputeCycles = "scm_layer_compute_cycles_total"
	MetricLayerMemCycles     = "scm_layer_mem_cycles_total"
	MetricDRAMBytes          = "scm_dram_bytes_total"
	MetricDRAMTransfers      = "scm_dram_transfers_total"
	MetricDRAMBurstBytes     = "scm_dram_burst_bytes"
	MetricDRAMUtilization    = "scm_dram_bandwidth_utilization"
	MetricPoolUsedPeak       = "scm_pool_used_banks_peak"
	MetricPoolPinnedPeak     = "scm_pool_pinned_banks_peak"
	MetricProcHits           = "scm_proc_hits_total"
	MetricProcMisses         = "scm_proc_misses_total"

	// Interlayer-compression metrics (absent when no codec is
	// configured; registered lazily at run finish).
	MetricCompressLogicalBytes = "scm_compress_logical_bytes_total"
	MetricCompressWireBytes    = "scm_compress_wire_bytes_total"
	MetricCompressSavedBytes   = "scm_compress_saved_bytes_total"
	MetricCompressCodecCycles  = "scm_compress_codec_cycles_total"

	// Fault-injection metrics (all zero in a fault-free run).
	MetricFaultsInjected  = "scm_faults_injected_total"
	MetricDMARetries      = "scm_dma_retries_total"
	MetricDMARetryCycles  = "scm_dma_retry_cycles_total"
	MetricBankRelocations = "scm_bank_relocations_total"
	MetricFaultSpillBytes = "scm_fault_spill_bytes_total"
	MetricDegradedCycles  = "scm_dram_degraded_cycles_total"
	MetricBandwidthFactor = "scm_dram_bandwidth_factor"
	MetricPoolFailedBanks = "scm_pool_failed_banks"
)

// Fault kind labels of MetricFaultsInjected.
const (
	FaultBankFail      = "bank-fail"
	FaultBankTransient = "bank-transient"
	FaultBWDegrade     = "bw-degrade"
)

// Procedure labels of the hit/miss counters. Hit/miss semantics per
// procedure (an operand under partial retention can count on both
// sides — the on-chip prefix hits, the DRAM remainder misses):
//
//	p2  hit: an output buffer was role-switched into the next layer's
//	    input; miss: an adjacent producer's bytes had to stream back
//	    from DRAM despite role switching being on (capacity spill).
//	p3  hit: a shortcut operand (producer distance > 1) was served
//	    from retained banks; miss: shortcut bytes were re-fetched.
//	p4  hit: an element-wise add recycled consumed operand banks into
//	    its output; miss: recycling was enabled at an add but no bank
//	    could be recycled.
//	p5  hit: partial retention kept a non-empty prefix of an output
//	    that did not fully fit; miss: an output that wanted on-chip
//	    placement retained nothing.
const (
	ProcRoleSwitch = "p2"
	ProcRetention  = "p3"
	ProcRecycle    = "p4"
	ProcPartial    = "p5"
)

// observer is the executor's pre-resolved instrument bundle: every
// hot-path update is a pointer dereference, never a registry lookup.
// A nil *observer disables observation with a single branch per site.
type observer struct {
	reg *metrics.Registry

	dramBytes     [dram.NumClasses]*metrics.Counter
	dramTransfers [dram.NumClasses]*metrics.Counter
	burst         *metrics.Histogram
	util          *metrics.Histogram

	poolUsedPeak   *metrics.Gauge
	poolPinnedPeak *metrics.Gauge

	procHit  map[string]*metrics.Counter
	procMiss map[string]*metrics.Counter

	faultKind      map[string]*metrics.Counter
	dmaRetries     *metrics.Counter
	dmaRetryCycles *metrics.Counter
	relocations    *metrics.Counter
	faultSpill     *metrics.Counter
	degradedCycles *metrics.Counter
	bwFactor       *metrics.Gauge
	failedBanks    *metrics.Gauge
}

// newObserver registers the run-wide instrument families on reg and
// resolves the series the executor updates inline. Returns nil for a
// nil registry so call sites can gate on one pointer.
func newObserver(reg *metrics.Registry) *observer {
	if reg == nil {
		return nil
	}
	o := &observer{
		reg: reg,
		burst: reg.Histogram(MetricDRAMBurstBytes,
			"burst-rounded bytes moved per DRAM transfer",
			metrics.ExpBuckets(64, 4, 10)), // 64 B .. 16 MiB
		util: reg.Histogram(MetricDRAMUtilization,
			"per-layer feature-map channel occupancy (mem cycles / layer cycles)",
			[]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}),
		poolUsedPeak: reg.Gauge(MetricPoolUsedPeak,
			"high-water mark of occupied SRAM banks"),
		poolPinnedPeak: reg.Gauge(MetricPoolPinnedPeak,
			"high-water mark of pinned (retained) SRAM banks"),
		procHit:  make(map[string]*metrics.Counter),
		procMiss: make(map[string]*metrics.Counter),
	}
	for _, c := range dram.Classes() {
		o.dramBytes[c] = reg.Counter(MetricDRAMBytes,
			"burst-rounded off-chip bytes by traffic class", metrics.L("class", c.String()))
		o.dramTransfers[c] = reg.Counter(MetricDRAMTransfers,
			"DRAM transfers by traffic class", metrics.L("class", c.String()))
	}
	for _, p := range []string{ProcRoleSwitch, ProcRetention, ProcRecycle, ProcPartial} {
		o.procHit[p] = reg.Counter(MetricProcHits,
			"times a Shortcut Mining procedure served its purpose", metrics.L("proc", p))
		o.procMiss[p] = reg.Counter(MetricProcMisses,
			"times a Shortcut Mining procedure fell back to DRAM", metrics.L("proc", p))
	}
	o.faultKind = make(map[string]*metrics.Counter)
	for _, k := range []string{FaultBankFail, FaultBankTransient, FaultBWDegrade} {
		o.faultKind[k] = reg.Counter(MetricFaultsInjected,
			"injected faults by kind", metrics.L("kind", k))
	}
	o.dmaRetries = reg.Counter(MetricDMARetries,
		"DMA transfer attempts that failed and were reissued")
	o.dmaRetryCycles = reg.Counter(MetricDMARetryCycles,
		"cycles spent on DMA re-transfers and exponential backoff")
	o.relocations = reg.Counter(MetricBankRelocations,
		"failing banks whose contents migrated to a spare bank")
	o.faultSpill = reg.Counter(MetricFaultSpillBytes,
		"bytes P5-spilled to DRAM because a failing bank had no spare")
	o.degradedCycles = reg.Counter(MetricDegradedCycles,
		"extra channel cycles caused by bandwidth degradation")
	o.bwFactor = reg.Gauge(MetricBandwidthFactor,
		"current effective feature-map bandwidth multiplier (1 = nominal)")
	o.bwFactor.Set(1)
	o.failedBanks = reg.Gauge(MetricPoolFailedBanks,
		"SRAM banks retired from service")
	return o
}

// fault bumps the injected-fault counter for a kind; nil-safe.
func (o *observer) fault(kind string, n int64) {
	if o != nil {
		o.faultKind[kind].Add(n)
	}
}

// retry records one reissued DMA transfer and its cycle cost.
func (o *observer) retry(cycles int64) {
	if o != nil {
		o.dmaRetries.Inc()
		o.dmaRetryCycles.Add(cycles)
	}
}

// relocated records a bank migration to a spare.
func (o *observer) relocated() {
	if o != nil {
		o.relocations.Inc()
	}
}

// faultSpilled records bytes pushed to DRAM by a bank failure.
func (o *observer) faultSpilled(bytes int64) {
	if o != nil {
		o.faultSpill.Add(bytes)
	}
}

// degraded records extra cycles from reduced bandwidth.
func (o *observer) degraded(cycles int64) {
	if o != nil {
		o.degradedCycles.Add(cycles)
	}
}

// bandwidthFactor tracks the current degradation factor gauge.
func (o *observer) bandwidthFactor(f float64) {
	if o != nil {
		o.bwFactor.Set(f)
	}
}

// poolFailed tracks the retired-bank gauge.
func (o *observer) poolFailed(n int) {
	if o != nil {
		o.failedBanks.Set(float64(n))
	}
}

// attach hooks the platform components of e so their events flow into
// the registry without the executor touching every call site.
func (o *observer) attach(e *executor) {
	if o == nil {
		return
	}
	e.ch.SetObserver(func(c dram.Class, payload, moved int64) {
		o.dramBytes[c].Add(moved)
		o.dramTransfers[c].Inc()
		o.burst.Observe(float64(moved))
	})
	e.pool.SetObserver(func(used, pinned int) {
		o.poolUsedPeak.SetMax(float64(used))
		o.poolPinnedPeak.SetMax(float64(pinned))
	})
}

// hit / miss bump a procedure counter; nil-safe.
func (o *observer) hit(proc string) {
	if o != nil {
		o.procHit[proc].Inc()
	}
}

func (o *observer) miss(proc string) {
	if o != nil {
		o.procMiss[proc].Inc()
	}
}

// layerDone records the per-layer channel-utilization sample.
func (o *observer) layerDone(ls stats.LayerStats) {
	if o == nil || ls.Cycles <= 0 {
		return
	}
	o.util.Observe(float64(ls.MemCycles) / float64(ls.Cycles))
}

// finishRun records the per-layer cycle attribution (batch-scaled so
// the family sums to RunStats.TotalCycles exactly) and embeds the
// registry snapshot in the run result.
func (o *observer) finishRun(r *stats.RunStats, batch int64) {
	if o == nil {
		return
	}
	for _, ls := range r.Layers {
		l := metrics.L("layer", ls.Name)
		o.reg.Counter(MetricLayerCycles,
			"attributed cycles per layer (sums to RunStats.TotalCycles)", l).Add(ls.Cycles * batch)
		o.reg.Counter(MetricLayerComputeCycles,
			"PE-array cycles per layer", l).Add(ls.ComputeCycles * batch)
		o.reg.Counter(MetricLayerMemCycles,
			"feature-map channel occupancy cycles per layer", l).Add(ls.MemCycles * batch)
	}
	if cs := r.Compression; cs != nil {
		for _, c := range dram.Classes() {
			if !c.Compressible() {
				continue
			}
			l := metrics.L("class", c.String())
			o.reg.Counter(MetricCompressLogicalBytes,
				"pre-codec (logical) bytes by compressible traffic class", l).Add(cs.Logical[c])
			o.reg.Counter(MetricCompressWireBytes,
				"post-codec wire payload bytes by compressible traffic class", l).Add(cs.Wire[c])
		}
		o.reg.Counter(MetricCompressSavedBytes,
			"bytes the interlayer codec kept off the wire").Add(cs.SavedBytes)
		o.reg.Counter(MetricCompressCodecCycles,
			"codec engine cycles serialized into the run",
			metrics.L("dir", "encode")).Add(cs.EncodeCycles)
		o.reg.Counter(MetricCompressCodecCycles,
			"codec engine cycles serialized into the run",
			metrics.L("dir", "decode")).Add(cs.DecodeCycles)
	}
	r.Metrics = o.reg.Snapshot()
}

// record stamps the event with the executor's layer clock and forwards
// it to the trace recorder.
func (e *executor) record(ev trace.Event) {
	ev.Cycle = e.clock
	e.rec.Record(ev)
}

// recordSpan forwards an interval event (DMA transfer, layer span)
// with an explicit start cycle and duration.
func (e *executor) recordSpan(ev trace.Event, start, dur int64) {
	ev.Cycle = start
	ev.DurCycles = dur
	e.rec.Record(ev)
}

// transferSpan moves bytes over the feature-map channel, advances the
// DMA cursor by the transfer's occupancy cycles, and returns the moved
// bytes plus the span for trace stamping. The cursor never runs
// backwards: it is pulled up to the layer clock at layer entry, so
// DMA spans stay monotone across the whole run.
//
// Under fault injection the span stretches: bandwidth degradation
// scales the occupancy by 1/factor, and each injected transient
// failure reissues the transfer after an exponentially growing
// backoff. Exhausting the per-transfer attempt budget is a fatal
// stuck-progress RunError.
func (e *executor) transferSpan(c dram.Class, bytes int64) (moved, start, dur int64, err error) {
	moved = e.ch.Transfer(c, bytes)
	dur = e.ch.CyclesAt(moved, e.cfg.PE.ClockMHz)
	if e.comp != nil && moved > 0 {
		// Codec engine time is charged on the logical payload and
		// serialized into the layer (like fault handling), not into the
		// channel-occupancy span: the channel only sees wire bytes.
		enc, dec := e.comp.CodecCycles(c, bytes)
		e.encCycles += enc
		e.decCycles += dec
		e.layerCodecCycles += enc + dec
	}
	if f := e.inj.Factor(); f < 1 && dur > 0 {
		scaled := int64(float64(dur)/f + 0.999999)
		e.flt.DegradedCycles += scaled - dur
		e.obs.degraded(scaled - dur)
		dur = scaled
	}
	if moved > 0 {
		if err := e.retryLoop(c, bytes, moved, dur); err != nil {
			return moved, e.memCursor, dur, err
		}
	}
	start = e.memCursor
	e.memCursor += dur
	return moved, start, dur, nil
}
