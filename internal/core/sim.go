package core

import (
	"context"
	"fmt"

	"shortcutmining/internal/compress"
	"shortcutmining/internal/dram"
	"shortcutmining/internal/fault"
	"shortcutmining/internal/metrics"
	"shortcutmining/internal/nn"
	"shortcutmining/internal/sram"
	"shortcutmining/internal/stats"
	"shortcutmining/internal/tiling"
	"shortcutmining/internal/trace"
)

// Simulate executes the network on the platform under the canonical
// feature set of the strategy and returns the run statistics. rec may
// be nil when no trace is wanted.
func Simulate(net *nn.Network, cfg Config, strat Strategy, rec trace.Recorder) (stats.RunStats, error) {
	return SimulateContext(context.Background(), net, cfg, strat, rec)
}

// SimulateContext is Simulate with cancellation: the run checks ctx at
// every layer boundary (the same cadence as the liveness watchdog) and
// returns ctx.Err() — wrapped, so errors.Is sees context.Canceled or
// DeadlineExceeded — as soon as the current layer completes. The
// serving subsystem uses it for job timeouts and graceful drain.
func SimulateContext(ctx context.Context, net *nn.Network, cfg Config, strat Strategy, rec trace.Recorder) (stats.RunStats, error) {
	return SimulateObservedContext(ctx, net, cfg, strat, rec, nil)
}

// SimulateObserved is Simulate with the metrics registry attached: the
// run additionally populates reg with per-layer cycle attribution,
// per-class DRAM counters and burst/utilization histograms, pool
// high-water marks, and procedure hit/miss counters, and embeds a
// snapshot in RunStats.Metrics. reg may be nil (no observation).
func SimulateObserved(net *nn.Network, cfg Config, strat Strategy, rec trace.Recorder, reg *metrics.Registry) (stats.RunStats, error) {
	return SimulateObservedContext(context.Background(), net, cfg, strat, rec, reg)
}

// SimulateObservedContext is SimulateObserved with cancellation (see
// SimulateContext).
func SimulateObservedContext(ctx context.Context, net *nn.Network, cfg Config, strat Strategy, rec trace.Recorder, reg *metrics.Registry) (stats.RunStats, error) {
	run, err := SimulateFeaturesObservedContext(ctx, net, cfg, strat.Features(), rec, reg)
	if err != nil {
		return run, err
	}
	run.Strategy = strat.String()
	return run, nil
}

// SimulateFeatures executes the network with an explicit feature set —
// the ablation entry point (experiment E8). The canonical strategies
// are Simulate's Baseline/FMReuse/SCM.
func SimulateFeatures(net *nn.Network, cfg Config, feat Features, rec trace.Recorder) (stats.RunStats, error) {
	return SimulateFeaturesObserved(net, cfg, feat, rec, nil)
}

// SimulateFeaturesObserved is SimulateFeatures with the metrics
// registry attached (see SimulateObserved).
func SimulateFeaturesObserved(net *nn.Network, cfg Config, feat Features, rec trace.Recorder, reg *metrics.Registry) (stats.RunStats, error) {
	return SimulateFeaturesObservedContext(context.Background(), net, cfg, feat, rec, reg)
}

// SimulateFeaturesObservedContext is the full-control entry point:
// explicit feature set, optional trace recorder and metrics registry,
// and cooperative cancellation through ctx. It is a thin loop over the
// resumable Run API (NewRunFeatures / Step): a run that is never
// suspended produces results bit-identical to the stepping path, which
// is what the multi-tenant scheduler interleaves.
func SimulateFeaturesObservedContext(ctx context.Context, net *nn.Network, cfg Config, feat Features, rec trace.Recorder, reg *metrics.Registry) (stats.RunStats, error) {
	r, err := NewRunFeatures(net, cfg, feat, rec, reg)
	if err != nil {
		return stats.RunStats{}, err
	}
	// Cancellation is cooperative at layer granularity: a canceled
	// job stops before its next layer, leaving no partial-layer
	// state behind (the per-layer watchdog bounds how long one
	// layer can take to reach this check).
	for done := false; !done; {
		if done, err = r.Step(ctx); err != nil {
			return stats.RunStats{}, err
		}
	}
	return r.Result()
}

// featureLabel names an ad-hoc feature set for reports.
func featureLabel(f Features) string {
	switch f {
	case Baseline.Features():
		return Baseline.String()
	case FMReuse.Features():
		return FMReuse.String()
	case SCM.Features():
		return SCM.String()
	}
	s := "custom["
	if f.RoleSwitch {
		s += "P2"
	}
	if f.ShortcutRetention {
		s += "+P3"
	}
	if f.IncrementalRecycle {
		s += "+P4"
	}
	if f.PartialRetention {
		s += "+P5"
	}
	if f.StreamingRecycle {
		s += "+SR"
	}
	return s + "]"
}

type executor struct {
	net  *nn.Network
	cfg  Config
	feat Features
	pool *sram.Pool
	ch   *dram.Channel
	rec  *trace.Stamper
	obs  *observer // nil when metrics are off
	cp   consumptionPlan
	fn   *funcState // non-nil in functional-verification mode

	// clock is the simulated cycle at which the current layer starts
	// (the cumulative attributed cycles of everything before it);
	// memCursor tracks DMA-span placement within and across layers.
	// Both feed the cycle stamps of trace events.
	clock     int64
	memCursor int64

	// Fault-injection state: the injector replaying Config.Faults, the
	// watchdog bounds, the accumulated fault statistics, the current
	// layer name for error classification, and the fault cycles accrued
	// since the last layer closed (scrubs, migrations, retries —
	// charged to the next layer's cycle count).
	inj              *fault.Injector
	wd               fault.Watchdog
	flt              stats.FaultStats
	curLayer         string
	layerFaultCycles int64

	// Interlayer-compression state: the codec (nil when off), the
	// run-wide encode/decode engine cycle tallies, and the codec cycles
	// accrued since the last layer closed (serialized into that layer's
	// cycle count, like layerFaultCycles).
	comp             *compress.Config
	encCycles        int64
	decCycles        int64
	layerCodecCycles int64

	residents []*resident
	run       stats.RunStats
}

// newExecutor builds the platform half of an executor (pool, channel,
// nop trace); callers fill in the network, features, and plan.
func newExecutor(cfg Config) (*executor, error) {
	pool, err := sram.NewPool(cfg.Pool)
	if err != nil {
		return nil, err
	}
	ch, err := dram.NewChannel(cfg.DRAM)
	if err != nil {
		return nil, err
	}
	e := &executor{cfg: cfg, pool: pool, ch: ch, rec: &trace.Stamper{R: trace.Nop{}}}
	if cfg.Compression != nil {
		e.comp = cfg.Compression
		ch.SetCompressor(cfg.Compression)
	}
	if !cfg.Faults.Empty() {
		e.inj = fault.NewInjector(cfg.Faults)
	}
	e.wd = fault.Watchdog{MaxDMAAttempts: cfg.DMAMaxAttempts, MaxLayerCycles: cfg.WatchdogLayerCycles}
	return e, nil
}

func (e *executor) bankBytes() int64 { return int64(e.cfg.Pool.BankBytes) }

// planBudget derives the buffer capacity the tiling planner may
// assume. The baseline's physical buffers are a static four-way split
// of the same SRAM (input/output × ping/pong) — the inflexibility the
// logical-buffer abstraction removes. Under role switching, the
// resident input serves as the input buffer and the free pool backs
// the streaming buffers.
func (e *executor) planBudget(l *nn.Layer) tiling.Budget {
	if !e.feat.RoleSwitch {
		q := e.cfg.Pool.TotalBytes() / 4
		return tiling.Budget{IBuf: q, OBuf: q, WBuf: e.cfg.WeightBufBytes}
	}
	free := e.pool.FreeBytes()
	var inOnChip int64
	for _, p := range uniqueInts(e.cp.sources[l.Index]) {
		inOnChip += e.residents[p].onChip
	}
	return tiling.Budget{IBuf: inOnChip + free, OBuf: free, WBuf: e.cfg.WeightBufBytes}
}

// readClass labels a DRAM read feeding layer l from producer p.
func (e *executor) readClass(p int, l *nn.Layer) dram.Class {
	switch {
	case p == 0:
		return dram.ClassIFMRead // the input image lives in DRAM
	case l.Index-p > 1:
		return dram.ClassShortcutRead
	case e.feat.RoleSwitch:
		return dram.ClassSpillRead // would have been reused; capacity spill
	default:
		return dram.ClassIFMRead
	}
}

// recyclable is an operand buffer whose consumed prefix can be
// released into the current layer's output, keeping `keep` banks as a
// live margin (zero for element-wise streams, a sliding window for
// conv/pool under the StreamingRecycle extension).
type recyclable struct {
	buf  *sram.Buffer
	keep int
}

// recyclables returns the operand buffers the layer may consume
// bank-by-bank while producing its output. For an element-wise add
// this is procedure P4 proper: every operand making its final pass,
// released to zero. Under the StreamingRecycle extension a windowed
// layer may do the same with its input, provided the tiling makes a
// single monotone pass (no output-channel grouping, which would
// re-stream the input) and a window-sized margin survives.
func (e *executor) recyclables(l *nn.Layer, distinct []int, plan tiling.Plan) []recyclable {
	finalPass := func(p int) *resident {
		r := e.residents[p]
		if r.consumersLeft == 1 && r.buf != nil && !r.buf.Freed() && !r.buf.Pinned() {
			return r
		}
		return nil
	}
	switch {
	case l.Kind == nn.OpEltwiseAdd && e.feat.IncrementalRecycle:
		var out []recyclable
		for _, p := range distinct {
			if r := finalPass(p); r != nil {
				out = append(out, recyclable{buf: r.buf})
			}
		}
		return out
	case (l.Kind == nn.OpConv || l.Kind == nn.OpPool) && e.feat.StreamingRecycle:
		if plan.OutGroups != 1 || plan.InGroups != 1 {
			return nil
		}
		var out []recyclable
		for _, p := range distinct {
			r := finalPass(p)
			if r == nil {
				continue
			}
			// Sliding-window margin: k+stride input rows.
			in := l.In[0]
			marginBytes := int64(l.K+l.Stride) * int64(in.W) * int64(in.C) * int64(e.cfg.DType.Bytes())
			keep := int((marginBytes + e.bankBytes() - 1) / e.bankBytes())
			if keep < 1 {
				keep = 1
			}
			if r.buf.NumBanks() > keep {
				out = append(out, recyclable{buf: r.buf, keep: keep})
			}
		}
		return out
	}
	return nil
}

// nextUseAfter returns the index of the first layer after i that reads
// producer p's feature map, or a sentinel past the network when none
// does.
func (e *executor) nextUseAfter(p, i int) int {
	for j := i + 1; j < len(e.net.Layers); j++ {
		for _, s := range e.cp.sources[j] {
			if s == p {
				return j
			}
		}
	}
	return len(e.net.Layers) + 1
}

// evictOneBank implements the EvictFarthest policy: spill one tail
// bank of the pinned feature map whose next use is farthest in the
// future, provided it is farther than the output's own next use
// (otherwise eviction would be a strict loss). Inputs of the current
// layer are untouchable — they are being read right now.
func (e *executor) evictOneBank(l *nn.Layer, distinct []int, outNext int) (bool, error) {
	best, bestNext := -1, outNext
	for p, r := range e.residents {
		if r == nil || r.buf == nil || r.buf.Freed() || !r.buf.Pinned() {
			continue
		}
		current := false
		for _, d := range distinct {
			if d == p {
				current = true
				break
			}
		}
		if current {
			continue
		}
		if nu := e.nextUseAfter(p, l.Index); nu > bestNext {
			best, bestNext = p, nu
		}
	}
	if best < 0 {
		return false, nil
	}
	r := e.residents[best]
	if err := e.pool.Unpin(r.buf); err != nil {
		return false, err
	}
	if err := e.pool.ReleaseTailBanks(r.buf, 1); err != nil {
		return false, err
	}
	newOnChip := r.onChip
	if r.buf.Freed() {
		newOnChip = 0
	} else if c := r.buf.CapacityBytes(); newOnChip > c {
		newOnChip = c
	}
	if delta := r.onChip - newOnChip; delta > 0 {
		_, start, dur, err := e.transferSpan(dram.ClassSpillWrite, delta)
		if err != nil {
			return false, err
		}
		e.recordSpan(trace.Event{Kind: trace.KindSpill, Layer: l.Name, Class: dram.ClassSpillWrite.String(),
			Tag: e.net.Layers[best].Name, Bytes: delta, Note: "evict-farthest"}, start, dur)
	}
	r.onChip = newOnChip
	if r.buf.Freed() {
		r.buf = nil
	} else if err := e.pool.Pin(r.buf); err != nil {
		return false, err
	}
	if e.fn != nil {
		e.fn.evict(e, best, r)
	}
	return true, nil
}

// allocOutput forms the retained output buffer, growing bank by bank
// and recycling consumed operand banks when the free pool (minus the
// streaming reserve) runs out — and, under the EvictFarthest policy,
// spilling colder pinned data. It returns the buffer (nil when nothing
// could be retained), the retained bytes, and the recycled bank count.
func (e *executor) allocOutput(l *nn.Layer, want int64, recycle []recyclable, distinct []int) (*sram.Buffer, int64, int64, error) {
	if !e.feat.PartialRetention {
		capacity := e.pool.FreeBytes() - int64(e.cfg.ReserveBanks)*e.bankBytes()
		for _, rb := range recycle {
			capacity += rb.buf.CapacityBytes() - int64(rb.keep)*e.bankBytes()
		}
		if capacity < want {
			return nil, 0, 0, nil // all-or-nothing: retain nothing
		}
	}
	var (
		buf      *sram.Buffer
		got      int64
		recycled int64
	)
	for got < want {
		if e.pool.FreeBanks() > e.cfg.ReserveBanks {
			chunk := want - got
			if chunk > e.bankBytes() {
				chunk = e.bankBytes()
			}
			if buf == nil {
				b, err := e.pool.Alloc(sram.RoleOutput, l.Name, chunk)
				if err != nil {
					return nil, 0, 0, err
				}
				buf = b
				got += chunk
			} else {
				added, err := e.pool.Grow(buf, chunk)
				if err != nil {
					return nil, 0, 0, err
				}
				if added == 0 {
					break
				}
				got += added
			}
			continue
		}
		released := false
		for _, rb := range recycle {
			if !rb.buf.Freed() && rb.buf.NumBanks() > rb.keep {
				if err := e.pool.ReleaseBanks(rb.buf, 1); err != nil {
					return nil, 0, 0, err
				}
				recycled++
				released = true
				break
			}
		}
		if !released && e.cfg.Eviction == EvictFarthest && e.feat.ShortcutRetention {
			var err error
			released, err = e.evictOneBank(l, distinct, e.nextUseAfter(l.Index, l.Index))
			if err != nil {
				return nil, 0, 0, err
			}
		}
		if !released {
			break
		}
	}
	if recycled > 0 {
		e.record(trace.Event{Kind: trace.KindRecycle, Layer: l.Name, Banks: int(recycled)})
	}
	if buf != nil {
		e.record(trace.Event{Kind: trace.KindAlloc, Layer: l.Name, Tag: l.Name,
			Role: sram.RoleOutput.String(), Banks: buf.NumBanks(), Bytes: got})
	}
	return buf, got, recycled, nil
}

// captureSpilled retains (a prefix of) producer p's feature map after
// it streamed through the current layer, when it still has consumers
// ahead and no on-chip home. Only leftover capacity beyond the
// streaming reserve is used.
func (e *executor) captureSpilled(l *nn.Layer, p int) error {
	r := e.residents[p]
	// Capture only genuine fan-out (≥2 consumers ahead): holding banks
	// for a single far consumer is the retention-pressure gamble the
	// E15 policy study examines, not a clear win.
	if r == nil || r.buf != nil || r.consumersLeft < 2 || r.onChip > 0 {
		return nil
	}
	budget := e.pool.FreeBytes() - int64(e.cfg.ReserveBanks)*e.bankBytes()
	want := r.total
	if !e.feat.PartialRetention && budget < want {
		return nil
	}
	if want > budget {
		want = budget
	}
	if want <= 0 {
		return nil
	}
	buf, err := e.pool.Alloc(sram.RoleRetained, e.net.Layers[p].Name, want)
	if err != nil {
		return err
	}
	r.buf = buf
	r.onChip = want
	if err := e.pool.Pin(buf); err != nil {
		return err
	}
	e.record(trace.Event{Kind: trace.KindPin, Layer: l.Name, Tag: buf.Tag(),
		Banks: buf.NumBanks(), Bytes: want, Note: "capture"})
	if e.fn != nil {
		g := e.fn.golden[p]
		buf.Payload = g[:want/4]
	}
	return nil
}

func (e *executor) execLayer(l *nn.Layer) error {
	e.record(trace.Event{Kind: trace.KindLayerStart, Layer: l.Name})
	e.curLayer = l.Name
	if e.memCursor < e.clock {
		e.memCursor = e.clock
	}
	if err := e.applyFaults(layerRef{index: l.Index, name: l.Name}); err != nil {
		return err
	}
	d := e.cfg.DType

	if l.Kind == nn.OpInput {
		total := l.Out.Bytes(d)
		e.residents[0] = &resident{
			producer: 0, total: total, spilled: total,
			consumersLeft: e.cp.consumers[0], lastUse: e.cp.lastUse[0],
		}
		if e.fn != nil {
			e.fn.produceInput(e, l)
		}
		e.run.Layers = append(e.run.Layers, stats.LayerStats{Name: l.Name, Kind: l.Kind.String(), Stage: l.Stage})
		e.record(trace.Event{Kind: trace.KindLayerEnd, Layer: l.Name})
		return nil
	}
	if l.Kind == nn.OpConcat {
		// Transparent: concatenation is bank/address layout; its
		// sources are consumed directly by the concat's readers.
		if e.fn != nil {
			if err := e.fn.computeGolden(e, l); err != nil {
				return err
			}
		}
		e.run.Layers = append(e.run.Layers, stats.LayerStats{Name: l.Name, Kind: l.Kind.String(), Stage: l.Stage})
		e.record(trace.Event{Kind: trace.KindLayerEnd, Layer: l.Name})
		return nil
	}

	before := e.ch.Traffic()
	ls := stats.LayerStats{Name: l.Name, Kind: l.Kind.String(), Stage: l.Stage}

	plan, err := tiling.ForLayer(l, d, e.planBudget(l))
	if err != nil {
		if e.pool.FailedBanks() > 0 {
			// The shrunken pool can no longer back a workable tiling:
			// degradation has a floor, and this plan is past it.
			return fault.Errf(fault.Recoverable, fault.CheckCapacity, l.Name,
				"no tiling with %d of %d banks retired: %w",
				e.pool.FailedBanks(), e.cfg.Pool.NumBanks, err)
		}
		return err
	}

	srcs := e.cp.sources[l.Index]
	distinct := uniqueInts(srcs)

	// Operands at their final read are unpinned so the add can recycle
	// their banks and the epilogue can free them.
	for _, p := range distinct {
		r := e.residents[p]
		if r.consumersLeft == 1 && r.buf != nil && r.buf.Pinned() {
			if err := e.pool.Unpin(r.buf); err != nil {
				return err
			}
			e.record(trace.Event{Kind: trace.KindUnpin, Layer: l.Name, Tag: r.buf.Tag()})
		}
	}

	if e.fn != nil {
		if err := e.fn.verifyInputs(e, l, distinct); err != nil {
			return err
		}
		if err := e.fn.computeGolden(e, l); err != nil {
			return err
		}
	}

	// Input traffic. The planner's IFM bytes embed the halo/group
	// overhead factor for streamed data; resident bytes are free.
	var inTotal int64
	for _, s := range l.In {
		inTotal += s.Bytes(d)
	}
	factor := 1.0
	if inTotal > 0 {
		factor = float64(plan.IFMReadBytes) / float64(inTotal)
	}
	for _, p := range srcs {
		r := e.residents[p]
		ls.ReusedInputBytes += r.onChip
		shortcut := l.Index-p > 1 && p != 0
		if shortcut && r.onChip > 0 {
			e.obs.hit(ProcRetention) // mined shortcut bytes served on chip
		}
		if dp := r.dramBytes(); dp > 0 {
			read := int64(float64(dp)*factor + 0.5)
			class := e.readClass(p, l)
			moved, start, dur, err := e.transferSpan(class, read)
			if err != nil {
				return err
			}
			kind := trace.KindDRAM
			if class == dram.ClassSpillRead || class == dram.ClassShortcutRead {
				kind = trace.KindRefill
			}
			switch class {
			case dram.ClassShortcutRead:
				e.obs.miss(ProcRetention)
			case dram.ClassSpillRead:
				e.obs.miss(ProcRoleSwitch)
			}
			e.recordSpan(trace.Event{Kind: kind, Layer: l.Name,
				Tag: e.net.Layers[p].Name, Class: class.String(), Bytes: moved}, start, dur)
		}
		if r.buf != nil && l.Index-p == 1 && r.buf.Role() != sram.RoleInput {
			if err := e.pool.SetRole(r.buf, sram.RoleInput); err != nil {
				return err
			}
			e.obs.hit(ProcRoleSwitch)
			e.record(trace.Event{Kind: trace.KindRoleSwitch, Layer: l.Name, Tag: r.buf.Tag(),
				Role: sram.RoleInput.String()})
		}
	}

	e.ch.Transfer(dram.ClassWeightRead, plan.WeightReadBytes)

	// Output placement.
	outBytes := l.Out.Bytes(d)
	consumers := e.cp.consumers[l.Index]
	lastUse := e.cp.lastUse[l.Index]
	out := &resident{producer: l.Index, total: outBytes, consumersLeft: consumers, lastUse: lastUse}

	keep := e.feat.RoleSwitch && consumers > 0
	fullCopy := !keep
	if keep && !e.feat.ShortcutRetention && lastUse > l.Index+1 {
		// Role switching alone can only hand data to the next layer;
		// later consumers need a DRAM copy.
		fullCopy = true
	}
	if keep {
		recycle := e.recyclables(l, distinct, plan)
		buf, got, recycled, err := e.allocOutput(l, outBytes, recycle, distinct)
		if err != nil {
			return err
		}
		out.buf = buf
		out.onChip = got
		ls.RecycledBanks = recycled
		if l.Kind == nn.OpEltwiseAdd && e.feat.IncrementalRecycle {
			if recycled > 0 {
				e.obs.hit(ProcRecycle)
			} else {
				e.obs.miss(ProcRecycle)
			}
		}
		if e.feat.PartialRetention {
			switch {
			case got > 0 && got < outBytes:
				e.obs.hit(ProcPartial) // a prefix survived the squeeze
			case got == 0:
				e.obs.miss(ProcPartial)
			}
		}
		if fullCopy {
			_, start, dur, err := e.transferSpan(dram.ClassOFMWrite, outBytes)
			if err != nil {
				return err
			}
			e.recordSpan(trace.Event{Kind: trace.KindDRAM, Layer: l.Name, Tag: l.Name,
				Class: dram.ClassOFMWrite.String(), Bytes: outBytes}, start, dur)
			out.spilled = outBytes
		} else if got < outBytes {
			spill := outBytes - got
			_, start, dur, err := e.transferSpan(dram.ClassSpillWrite, spill)
			if err != nil {
				return err
			}
			out.spilled = spill
			ls.SpilledBytes = spill
			e.recordSpan(trace.Event{Kind: trace.KindSpill, Layer: l.Name, Tag: l.Name, Bytes: spill,
				Class: dram.ClassSpillWrite.String(), Note: "partial retention"}, start, dur)
		}
	} else {
		_, start, dur, err := e.transferSpan(dram.ClassOFMWrite, outBytes)
		if err != nil {
			return err
		}
		e.recordSpan(trace.Event{Kind: trace.KindDRAM, Layer: l.Name, Tag: l.Name,
			Class: dram.ClassOFMWrite.String(), Bytes: outBytes}, start, dur)
		out.spilled = outBytes
	}

	if out.buf != nil && e.feat.ShortcutRetention && lastUse > l.Index+1 {
		if err := e.pool.Pin(out.buf); err != nil {
			return err
		}
		ls.RetainedBytes = out.onChip
		e.record(trace.Event{Kind: trace.KindPin, Layer: l.Name, Tag: l.Name,
			Banks: out.buf.NumBanks(), Bytes: out.onChip})
	}
	if consumers > 0 {
		e.residents[l.Index] = out
	}
	if e.fn != nil {
		e.fn.placeOutput(e, l, out, fullCopy)
	}

	// Release consumed operands.
	for _, p := range distinct {
		r := e.residents[p]
		r.consumersLeft--
		if r.consumersLeft == 0 || !e.feat.ShortcutRetention {
			if r.buf != nil {
				e.record(trace.Event{Kind: trace.KindFree, Layer: l.Name, Tag: e.net.Layers[p].Name})
			}
			if err := r.dropBuffer(e.pool); err != nil {
				return err
			}
		}
	}

	// Capture: an operand that streamed from DRAM this layer but has
	// more consumers ahead (the input image feeding several branches, a
	// fully spilled fan-out fmap) is worth keeping — it is on the chip
	// right now. Leftover capacity only, so output retention keeps
	// priority.
	if e.feat.ShortcutRetention {
		for _, p := range distinct {
			if err := e.captureSpilled(l, p); err != nil {
				return err
			}
		}
	}

	// Timing and bookkeeping.
	delta := e.ch.Traffic()
	for c := range delta {
		delta[c] -= before[c]
	}
	ls.Traffic = delta // scmvet:ok accounting per-layer slice of the channel's own tally, no new bytes
	ls.ComputeCycles = e.cfg.PE.LayerCycles(l)
	ls.MemCycles = e.memCycles(delta)
	ls.Cycles = ls.ComputeCycles
	if ls.MemCycles > ls.Cycles {
		ls.Cycles = ls.MemCycles
	}
	if e.cfg.DetailedTiming {
		if cyc := e.pipelineCycles(l, plan, delta); cyc > ls.Cycles {
			ls.Cycles = cyc
		}
	}
	ls.Cycles += e.cfg.ControlCycles
	// Fault handling is serialized with the layer: scrubs, migrations,
	// and DMA retry/backoff stalls accrued since the previous layer
	// closed are charged on top of the overlap model.
	ls.Cycles += e.layerFaultCycles
	e.layerFaultCycles = 0
	// Codec engine time (encode on stores, decode on loads) is likewise
	// serialized with the layer that moved the data.
	ls.CodecCycles = e.layerCodecCycles
	ls.Cycles += e.layerCodecCycles
	e.layerCodecCycles = 0
	if werr := e.wd.CheckLayer(l.Name, ls.Cycles); werr != nil {
		return werr
	}
	ls.SRAMBytes = 2 * (inTotal + outBytes + plan.WeightReadBytes)
	e.run.Layers = append(e.run.Layers, ls)
	e.obs.layerDone(ls)
	e.recordSpan(trace.Event{Kind: trace.KindLayerEnd, Layer: l.Name, Bytes: delta.Total(),
		Banks: e.pool.UsedBanks(), Pinned: e.pool.PinnedBanks(),
		Note: fmt.Sprintf("pinned=%d", e.pool.PinnedBanks())}, e.clock+ls.Cycles, ls.Cycles)
	e.clock += ls.Cycles
	return nil
}

// memCycles converts a layer's traffic into channel-occupancy cycles.
// With a dedicated weight channel the two streams overlap and the
// slower one gates the layer; otherwise everything shares one pipe.
// Injected bandwidth degradation stretches the feature-map stream by
// 1/factor; the weight channel is modeled fault-free (it is a separate
// physical SODIMM on the prototype board).
func (e *executor) memCycles(delta dram.Traffic) int64 {
	clock := e.cfg.PE.ClockMHz
	scale := func(cycles int64) int64 {
		if f := e.inj.Factor(); f < 1 {
			return int64(float64(cycles)/f + 0.999999)
		}
		return cycles
	}
	if e.cfg.WeightBandwidthGBps <= 0 {
		return scale(e.ch.CyclesAt(delta.Total(), clock))
	}
	fm := scale(e.ch.CyclesAt(delta.FeatureMap(), clock))
	wBytesPerCycle := e.cfg.WeightBandwidthGBps * 1e9 / (clock * 1e6)
	w := int64(float64(delta[dram.ClassWeightRead])/wBytesPerCycle + 0.999999)
	if w > fm {
		return w
	}
	return fm
}

func (e *executor) finish() (stats.RunStats, error) {
	if used := e.pool.UsedBanks(); used != 0 {
		return stats.RunStats{}, fault.Errf(fault.Fatal, fault.CheckBankLeak, "",
			"core: %s: %d banks leaked at end of run", e.net.Name, used)
	}
	if err := e.pool.CheckInvariants(); err != nil {
		return stats.RunStats{}, fault.Errf(fault.Fatal, fault.CheckInvariant, "",
			"core: %s: %w", e.net.Name, err)
	}
	batch := int64(e.cfg.Batch)
	r := &e.run
	r.Traffic = e.ch.Traffic() // scmvet:ok accounting aggregation of the channel's tally into RunStats
	for c := range r.Traffic {
		if dram.Class(c) == dram.ClassWeightRead && e.cfg.AmortizeWeights {
			continue // weights stream once per batch (layer-inner loop)
		}
		r.Traffic[c] *= batch // scmvet:ok accounting batch replication of per-image traffic (layer loop simulates one image)
	}
	for _, ls := range r.Layers {
		r.ComputeCycles += ls.ComputeCycles * batch
		r.MemCycles += ls.MemCycles * batch
		r.TotalCycles += ls.Cycles * batch
		r.SRAMBytes += ls.SRAMBytes * batch
	}
	r.MACs = e.net.TotalMACs() * batch
	ps := e.pool.Stats()
	r.PeakUsedBanks = ps.PeakUsedBanks
	r.PeakPinnedBanks = ps.PeakPinnedBanks
	r.RoleSwitches = ps.RoleSwitches
	r.BanksRecycled = ps.BanksRecycled
	r.BanksEvicted = ps.BanksEvicted
	// Fault statistics are per-run, not per-image: the injected events
	// happen once regardless of batch.
	r.Faults = e.flt
	if e.comp != nil {
		cs := &stats.CompressionStats{
			Codec:        e.comp.String(),
			Logical:      e.ch.LogicalTraffic(),
			Wire:         e.ch.RawTraffic(),
			EncodeCycles: e.encCycles * batch,
			DecodeCycles: e.decCycles * batch,
		}
		for c := range cs.Logical {
			if dram.Class(c) == dram.ClassWeightRead && e.cfg.AmortizeWeights {
				continue // same batch treatment as r.Traffic above
			}
			cs.Logical[c] *= batch // scmvet:ok accounting batch scaling of the per-image codec ledger, mirrors r.Traffic above
			cs.Wire[c] *= batch    // scmvet:ok accounting batch scaling of the per-image codec ledger, mirrors r.Traffic above
		}
		cs.SavedBytes = cs.Logical.Total() - cs.Wire.Total()
		r.Compression = cs
	}
	r.Energy = e.cfg.Energy.Estimate(r.Traffic.Total(), r.SRAMBytes, r.MACs)
	e.obs.finishRun(r, batch)
	return *r, nil
}
