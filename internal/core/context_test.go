package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"shortcutmining/internal/metrics"
	"shortcutmining/internal/nn"
	"shortcutmining/internal/stats"
	"shortcutmining/internal/trace"
)

func TestSimulateContextCanceled(t *testing.T) {
	net := nn.MustResNet(18)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SimulateContext(ctx, net, Default(), SCM, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSimulateContextDeadline(t *testing.T) {
	net := nn.MustResNet(18)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := SimulateContext(ctx, net, Default(), SCM, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// cancelAfter cancels its context after n recorded layer-start events,
// so cancellation lands mid-run at a deterministic layer boundary.
type cancelAfter struct {
	cancel context.CancelFunc
	left   int
}

func (c *cancelAfter) Record(ev trace.Event) {
	if ev.Kind == trace.KindLayerStart {
		c.left--
		if c.left == 0 {
			c.cancel()
		}
	}
}

func TestSimulateContextCancelMidRun(t *testing.T) {
	net := nn.MustResNet(34)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := SimulateContext(ctx, net, Default(), SCM, &cancelAfter{cancel: cancel, left: 5})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSimulateContextNilAndBackground(t *testing.T) {
	net := nn.MustResNet(18)
	want, err := Simulate(net, Default(), SCM, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SimulateContext(nil, net, Default(), SCM, nil) //lint:ignore SA1012 nil ctx tolerated by design
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("nil-context run differs from background-context run")
	}
}

// TestConcurrentSimulateDeterministic runs the same network/config on
// many goroutines at once and requires bit-identical RunStats — the
// guard against hidden shared state that the serving subsystem's
// worker pool depends on.
func TestConcurrentSimulateDeterministic(t *testing.T) {
	net := nn.MustResNet(34)
	cfg := Default()
	want, err := SimulateObserved(net, cfg, SCM, nil, metrics.New())
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	got := make([]stats.RunStats, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			// Per-run registry isolation: each goroutine observes into
			// its own registry, the pattern the serve engine enforces.
			got[w], errs[w] = SimulateObserved(net, cfg, SCM, nil, metrics.New())
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if !reflect.DeepEqual(want, got[w]) {
			t.Fatalf("worker %d produced different RunStats than the serial run", w)
		}
	}
}
