package core

import (
	"testing"

	"shortcutmining/internal/nn"
)

func TestMakespanSingleTile(t *testing.T) {
	// One tile: strictly sequential load → compute → store.
	got := makespan([]scaledTile{{load: 10, weight: 5, store: 3, compute: 7}})
	// compute starts at max(load=10, weight=5) = 10, ends 17; store
	// ends 20.
	if got != 20 {
		t.Errorf("makespan = %d, want 20", got)
	}
}

func TestMakespanPerfectOverlap(t *testing.T) {
	// Compute-bound tiles: after the first load, compute never stalls.
	tiles := make([]scaledTile, 4)
	for i := range tiles {
		tiles[i] = scaledTile{load: 2, compute: 10, store: 1}
	}
	// Fill (2) + 4×10 compute; stores hide under compute except the
	// final one (1). Loads of later tiles hide entirely.
	got := makespan(tiles)
	if got != 2+40+1 {
		t.Errorf("makespan = %d, want 43", got)
	}
}

func TestMakespanMemoryBound(t *testing.T) {
	// Memory-bound tiles: the fmap channel serializes loads+stores.
	tiles := make([]scaledTile, 4)
	for i := range tiles {
		tiles[i] = scaledTile{load: 10, compute: 1, store: 10}
	}
	got := makespan(tiles)
	// Channel moves 4×20 = 80 cycles of data; makespan is at least
	// that, plus the trailing compute dependency structure.
	if got < 80 {
		t.Errorf("makespan = %d, below channel occupancy 80", got)
	}
	if got > 95 {
		t.Errorf("makespan = %d, pipeline overhead implausibly large", got)
	}
}

func TestMakespanAtLeastBothBounds(t *testing.T) {
	tiles := []scaledTile{
		{load: 5, weight: 2, store: 3, compute: 9},
		{load: 7, weight: 0, store: 2, compute: 4},
		{load: 1, weight: 1, store: 6, compute: 8},
	}
	var mem, comp, w float64
	for _, t := range tiles {
		mem += t.load + t.store
		comp += t.compute
		w += t.weight
	}
	got := float64(makespan(tiles))
	if got < mem || got < comp || got < w {
		t.Errorf("makespan %f below a resource bound (mem %f comp %f w %f)", got, mem, comp, w)
	}
}

func TestDetailedTimingNeverFasterAndTrafficIdentical(t *testing.T) {
	for _, name := range []string{"resnet34", "squeezenet-bypass", "vgg16"} {
		net := nn.MustBuild(name)
		for _, s := range Strategies() {
			simple, err := Simulate(net, Default(), s, nil)
			if err != nil {
				t.Fatal(err)
			}
			cfg := Default()
			cfg.DetailedTiming = true
			detailed, err := Simulate(net, cfg, s, nil)
			if err != nil {
				t.Fatal(err)
			}
			if detailed.Traffic != simple.Traffic {
				t.Errorf("%s/%v: detailed timing changed traffic", name, s)
			}
			if detailed.TotalCycles < simple.TotalCycles {
				t.Errorf("%s/%v: detailed cycles %d below simple %d",
					name, s, detailed.TotalCycles, simple.TotalCycles)
			}
			// The pipeline model should stay within 2× of the ideal
			// overlap bound — it adds bubbles, not pathologies.
			if detailed.TotalCycles > 2*simple.TotalCycles {
				t.Errorf("%s/%v: detailed cycles %d more than 2× simple %d",
					name, s, detailed.TotalCycles, simple.TotalCycles)
			}
		}
	}
}

func TestDetailedTimingPreservesSpeedupStory(t *testing.T) {
	cfg := Default()
	cfg.DetailedTiming = true
	net := nn.MustBuild("resnet34")
	base, err := Simulate(net, cfg, Baseline, nil)
	if err != nil {
		t.Fatal(err)
	}
	scm, err := Simulate(net, cfg, SCM, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sp := scm.SpeedupVs(base); sp < 1.3 {
		t.Errorf("speedup under detailed timing = %.2f, story collapsed", sp)
	}
}
