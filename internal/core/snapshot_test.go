package core

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"shortcutmining/internal/fault"
	"shortcutmining/internal/metrics"
	"shortcutmining/internal/nn"
	"shortcutmining/internal/trace"
)

// roundtrip encodes a snapshot to JSON and decodes it back, the way a
// journal checkpoint record carries it across a process boundary.
func roundtrip(t *testing.T, snap *RunSnapshot) *RunSnapshot {
	t.Helper()
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	var got RunSnapshot
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}
	return &got
}

// TestSnapshotRestoreBitIdentical is the suspend-at-every-boundary
// golden test lifted across a serialization boundary: at every layer
// boundary the run is suspended, snapshotted, JSON-round-tripped,
// restored into a brand-new Run (fresh pool, fresh channel), and
// continued. The final RunStats must be bit-identical to the
// uninterrupted Simulate for every strategy.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	net := nn.MustBuild("squeezenet-bypass")
	cfg := Default()
	for _, strat := range Strategies() {
		want, err := Simulate(net, cfg, strat, nil)
		if err != nil {
			t.Fatalf("%s: Simulate: %v", strat, err)
		}
		r, err := NewRun(net, cfg, strat, nil, nil)
		if err != nil {
			t.Fatalf("%s: NewRun: %v", strat, err)
		}
		restores := 0
		for done := false; !done; {
			done, err = r.Step(context.Background())
			if err != nil {
				t.Fatalf("%s: step at layer %d: %v", strat, r.NextLayer(), err)
			}
			if done {
				break
			}
			if _, err := r.Suspend(); err != nil {
				t.Fatalf("%s: suspend at layer %d: %v", strat, r.NextLayer(), err)
			}
			snap, err := r.Snapshot()
			if err != nil {
				t.Fatalf("%s: snapshot at layer %d: %v", strat, r.NextLayer(), err)
			}
			r, err = RestoreRun(net, cfg, roundtrip(t, snap))
			if err != nil {
				t.Fatalf("%s: restore at layer %d: %v", strat, snap.Next, err)
			}
			if !r.Suspended() {
				t.Fatalf("%s: restored run not suspended", strat)
			}
			restores++
		}
		got, err := r.Result()
		if err != nil {
			t.Fatalf("%s: Result: %v", strat, err)
		}
		if g, w := runJSON(t, got), runJSON(t, want); g != w {
			t.Errorf("%s: snapshot/restore changed RunStats\n got %s\nwant %s", strat, g, w)
		}
		if restores != r.NumLayers()-1 {
			t.Errorf("%s: %d restores, want %d (one per interior boundary)", strat, restores, r.NumLayers()-1)
		}
		if sc := r.Sched(); sc.Resumes == 0 {
			t.Errorf("%s: restored run resumed nothing: %+v", strat, sc)
		}
	}
}

// TestSnapshotSchedLedgerSurvives: the multi-tenancy cost ledger rides
// along with the snapshot so a restored run reports the full
// suspend/resume history, not just the post-restore part.
func TestSnapshotSchedLedgerSurvives(t *testing.T) {
	net := nn.MustBuild("resnet18")
	cfg := Default()
	r, err := NewRun(net, cfg, SCM, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := r.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Suspend(); err != nil {
		t.Fatal(err)
	}
	snap, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	before := r.Sched()
	r2, err := RestoreRun(net, cfg, roundtrip(t, snap))
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Sched(); got != before {
		t.Errorf("restored ledger = %+v, want %+v", got, before)
	}
	for done := false; !done; {
		if done, err = r2.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	after := r2.Sched()
	if after.Suspends != before.Suspends || after.Resumes != before.Resumes+1 {
		t.Errorf("ledger after restore+finish = %+v (before %+v)", after, before)
	}
}

// TestSnapshotRefusals pins the attachment and lifecycle guards.
func TestSnapshotRefusals(t *testing.T) {
	net := nn.MustBuild("plain34")
	cfg := Default()

	t.Run("not suspended", func(t *testing.T) {
		r, err := NewRun(net, cfg, SCM, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Snapshot(); err == nil || !strings.Contains(err.Error(), "suspended") {
			t.Errorf("Snapshot on running run: err = %v, want suspension requirement", err)
		}
	})
	t.Run("traced", func(t *testing.T) {
		r, err := NewRun(net, cfg, SCM, &trace.Buffer{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		mustSuspend(t, r)
		if _, err := r.Snapshot(); err == nil || !strings.Contains(err.Error(), "traced") {
			t.Errorf("Snapshot of traced run: err = %v, want refusal", err)
		}
	})
	t.Run("observed", func(t *testing.T) {
		r, err := NewRun(net, cfg, SCM, nil, metrics.New())
		if err != nil {
			t.Fatal(err)
		}
		mustSuspend(t, r)
		if _, err := r.Snapshot(); err == nil || !strings.Contains(err.Error(), "observed") {
			t.Errorf("Snapshot of observed run: err = %v, want refusal", err)
		}
	})
	t.Run("fault-injected", func(t *testing.T) {
		fcfg := cfg
		fcfg.Faults = &fault.Spec{Seed: 3, DropProb: 0.1}
		r, err := NewRun(net, fcfg, SCM, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		mustSuspend(t, r)
		if _, err := r.Snapshot(); err == nil || !strings.Contains(err.Error(), "fault") {
			t.Errorf("Snapshot of fault-injected run: err = %v, want refusal", err)
		}
	})
}

func mustSuspend(t *testing.T, r *Run) {
	t.Helper()
	if _, err := r.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Suspend(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotValidate rejects malformed snapshots with classified
// errors instead of building a run that corrupts state later.
func TestSnapshotValidate(t *testing.T) {
	net := nn.MustBuild("plain34")
	cfg := Default()
	r, err := NewRun(net, cfg, SCM, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := r.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Suspend(); err != nil {
		t.Fatal(err)
	}
	good, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(s *RunSnapshot)
		want   string
	}{
		{"version", func(s *RunSnapshot) { s.Version = 99 }, "version"},
		{"network", func(s *RunSnapshot) { s.Network = "alexnet" }, "network"},
		{"next out of range", func(s *RunSnapshot) { s.Next = len(net.Layers) + 3 }, "next layer"},
		{"layer records", func(s *RunSnapshot) { s.Scratch.Layers = s.Scratch.Layers[:1] }, "layer records"},
		{"negative clock", func(s *RunSnapshot) { s.Clock = -1 }, "cycle cursor"},
		{"resident producer", func(s *RunSnapshot) {
			s.Residents = append(s.Residents, ResidentSnapshot{Producer: 5000})
		}, "producer"},
		{"duplicate resident", func(s *RunSnapshot) {
			s.Residents = append(s.Residents, s.Residents[0])
		}, "duplicate"},
		{"resident bytes", func(s *RunSnapshot) {
			s.Residents[0].OnChip = s.Residents[0].Total + 1
		}, "byte counts"},
		{"saved role", func(s *RunSnapshot) {
			s.Saved = append(s.Saved, SavedBuffer{Producer: good.Residents[0].Producer, Banks: 1, Role: 42})
		}, "role"},
		{"saved banks", func(s *RunSnapshot) {
			s.Saved = append(s.Saved, SavedBuffer{Producer: good.Residents[0].Producer, Banks: 0})
		}, "banks"},
		{"saved orphan", func(s *RunSnapshot) {
			s.Saved = append(s.Saved, SavedBuffer{Producer: len(net.Layers) - 1, Banks: 1})
		}, "no resident"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := roundtrip(t, good)
			tc.mutate(s)
			_, err := RestoreRun(net, cfg, s)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("RestoreRun(%s) = %v, want error containing %q", tc.name, err, tc.want)
			}
		})
	}

	if _, err := RestoreRun(net, cfg, nil); err == nil {
		t.Error("RestoreRun(nil) succeeded")
	}
	fcfg := cfg
	fcfg.Faults = &fault.Spec{Seed: 1, DropProb: 0.5}
	if _, err := RestoreRun(net, fcfg, roundtrip(t, good)); err == nil ||
		!strings.Contains(err.Error(), "fault") {
		t.Errorf("RestoreRun under faulty config = %v, want refusal", err)
	}
}
