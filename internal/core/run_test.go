package core

import (
	"context"
	"encoding/json"
	"testing"

	"shortcutmining/internal/nn"
	"shortcutmining/internal/stats"
)

// runJSON compares RunStats via their JSON form so every exported
// field (including nested traffic and energy) participates.
func runJSON(t *testing.T, r stats.RunStats) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// TestRunStepMatchesSimulate pins the refactor contract: stepping a
// Run to completion produces RunStats bit-identical to Simulate.
func TestRunStepMatchesSimulate(t *testing.T) {
	net := nn.MustBuild("resnet18")
	cfg := Default()
	for _, strat := range Strategies() {
		want, err := Simulate(net, cfg, strat, nil)
		if err != nil {
			t.Fatalf("%s: Simulate: %v", strat, err)
		}
		r, err := NewRun(net, cfg, strat, nil, nil)
		if err != nil {
			t.Fatalf("%s: NewRun: %v", strat, err)
		}
		steps := 0
		for done := false; !done; steps++ {
			done, err = r.Step(context.Background())
			if err != nil {
				t.Fatalf("%s: step %d: %v", strat, steps, err)
			}
		}
		if steps != r.NumLayers() {
			t.Errorf("%s: %d steps, want %d (one per layer)", strat, steps, r.NumLayers())
		}
		got, err := r.Result()
		if err != nil {
			t.Fatalf("%s: Result: %v", strat, err)
		}
		if g, w := runJSON(t, got), runJSON(t, want); g != w {
			t.Errorf("%s: stepped run diverged from Simulate\n got %s\nwant %s", strat, g, w)
		}
		if sc := r.Sched(); sc != (SchedStats{}) {
			t.Errorf("%s: uninterrupted run has nonzero SchedStats %+v", strat, sc)
		}
	}
}

// TestSuspendResumeBitIdentical suspends and resumes at every layer
// boundary of a run: the final RunStats must still be bit-identical to
// the uninterrupted simulation, with every multi-tenancy cost isolated
// in SchedStats.
func TestSuspendResumeBitIdentical(t *testing.T) {
	net := nn.MustBuild("squeezenet-bypass")
	cfg := Default()
	for _, strat := range Strategies() {
		want, err := Simulate(net, cfg, strat, nil)
		if err != nil {
			t.Fatalf("%s: Simulate: %v", strat, err)
		}
		r, err := NewRun(net, cfg, strat, nil, nil)
		if err != nil {
			t.Fatalf("%s: NewRun: %v", strat, err)
		}
		for done := false; !done; {
			done, err = r.Step(context.Background())
			if err != nil {
				t.Fatalf("%s: step: %v", strat, err)
			}
			if !done {
				fp, err := r.Suspend()
				if err != nil {
					t.Fatalf("%s: suspend at layer %d: %v", strat, r.NextLayer(), err)
				}
				if after := r.Footprint(); after.UsedBanks != 0 {
					t.Fatalf("%s: %d banks occupied after suspend (was %d)", strat, after.UsedBanks, fp.UsedBanks)
				}
				// Step auto-resumes; no explicit Resume needed.
			}
		}
		got, err := r.Result()
		if err != nil {
			t.Fatalf("%s: Result: %v", strat, err)
		}
		if g, w := runJSON(t, got), runJSON(t, want); g != w {
			t.Errorf("%s: suspend/resume changed RunStats\n got %s\nwant %s", strat, g, w)
		}
		sc := r.Sched()
		if sc.Suspends == 0 || sc.Resumes != sc.Suspends {
			t.Errorf("%s: suspend/resume ledger inconsistent: %+v", strat, sc)
		}
		if strat == Baseline {
			// Baseline retains nothing across layer boundaries, so
			// vacating the pool there is free.
			if sc.SpillBytes != 0 || sc.ReloadBytes != 0 {
				t.Errorf("baseline: expected free suspends, got %+v", sc)
			}
		} else {
			if sc.SpillBytes == 0 || sc.ReloadBytes == 0 {
				t.Errorf("%s: expected nonzero spill/reload traffic, got %+v", strat, sc)
			}
			if sc.SpillCycles == 0 || sc.ReloadCycles == 0 {
				t.Errorf("%s: expected nonzero spill/reload cycles, got %+v", strat, sc)
			}
		}
	}
}

// TestSuspendExplicitResume exercises the explicit Resume path (the
// scheduler lets Step auto-resume, but Resume is public API).
func TestSuspendExplicitResume(t *testing.T) {
	net := nn.MustBuild("densechain")
	cfg := Default()
	want, err := Simulate(net, cfg, SCM, nil)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	r, err := NewRun(net, cfg, SCM, nil, nil)
	if err != nil {
		t.Fatalf("NewRun: %v", err)
	}
	if _, err := r.Step(context.Background()); err != nil {
		t.Fatalf("step: %v", err)
	}
	if _, err := r.Suspend(); err != nil {
		t.Fatalf("suspend: %v", err)
	}
	if !r.Suspended() {
		t.Fatal("run not marked suspended")
	}
	if err := r.Resume(); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if r.Suspended() {
		t.Fatal("run still marked suspended after Resume")
	}
	for done := false; !done; {
		if done, err = r.Step(context.Background()); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	got, err := r.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if g, w := runJSON(t, got), runJSON(t, want); g != w {
		t.Errorf("explicit resume changed RunStats\n got %s\nwant %s", g, w)
	}
}

// TestRunStateErrors pins the API's refusal cases.
func TestRunStateErrors(t *testing.T) {
	net := nn.MustBuild("densechain")
	r, err := NewRun(net, Default(), SCM, nil, nil)
	if err != nil {
		t.Fatalf("NewRun: %v", err)
	}
	if _, err := r.Result(); err == nil {
		t.Error("Result before Done: want error")
	}
	if err := r.Resume(); err == nil {
		t.Error("Resume while not suspended: want error")
	}
	if _, err := r.Step(context.Background()); err != nil {
		t.Fatalf("step: %v", err)
	}
	if _, err := r.Suspend(); err != nil {
		t.Fatalf("suspend: %v", err)
	}
	if _, err := r.Suspend(); err == nil {
		t.Error("double Suspend: want error")
	}
	for done := false; !done; {
		if done, err = r.Step(context.Background()); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	if _, err := r.Suspend(); err == nil {
		t.Error("Suspend after Done: want error")
	}
	if done, err := r.Step(context.Background()); !done || err != nil {
		t.Errorf("Step after Done: got (%v, %v), want (true, nil)", done, err)
	}
}

// TestRunCancel verifies cooperative cancellation parks the run in a
// terminal error state.
func TestRunCancel(t *testing.T) {
	r, err := NewRun(nn.MustBuild("densechain"), Default(), SCM, nil, nil)
	if err != nil {
		t.Fatalf("NewRun: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Step(ctx); err == nil {
		t.Fatal("Step with canceled ctx: want error")
	}
	if r.Err() == nil {
		t.Fatal("run not terminal after cancellation")
	}
	if _, err := r.Step(context.Background()); err == nil {
		t.Fatal("Step after terminal error: want the same error")
	}
}

// TestRunFootprint checks the mid-run occupancy view is live.
func TestRunFootprint(t *testing.T) {
	r, err := NewRun(nn.MustBuild("resnet18"), Default(), SCM, nil, nil)
	if err != nil {
		t.Fatalf("NewRun: %v", err)
	}
	if fp := r.Footprint(); fp.UsedBanks != 0 || fp.ResidentBytes != 0 {
		t.Errorf("fresh run has footprint %+v", fp)
	}
	// Retention is data-dependent: step until the run holds live
	// buffers at a boundary (SCM must retain at some point).
	sawResident := false
	for done := false; !done && !sawResident; {
		var err error
		if done, err = r.Step(context.Background()); err != nil {
			t.Fatalf("step: %v", err)
		}
		if fp := r.Footprint(); fp.UsedBanks > 0 && fp.ResidentBytes > 0 {
			sawResident = true
		}
	}
	if !sawResident {
		t.Error("SCM run never held a resident buffer at any layer boundary")
	}
	if r.MinBankDemand() != Default().ReserveBanks+1 {
		t.Errorf("MinBankDemand = %d, want %d", r.MinBankDemand(), Default().ReserveBanks+1)
	}
}
