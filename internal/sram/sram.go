// Package sram models the on-chip buffer architecture that Shortcut
// Mining is built on: a pool of physical SRAM banks from which
// *logical buffers* are composed at run time.
//
// The package provides exactly the primitives the paper's procedures
// need:
//
//   - logical buffer formation over free banks (procedure P1),
//   - zero-copy role switching, so one layer's output buffer becomes
//     the next layer's input buffer (P2),
//   - pinning, so a shortcut feature map survives across any number of
//     intermediate layers (P3),
//   - incremental bank release, so the element-wise add can recycle
//     consumed shortcut banks into output banks (P4),
//   - partial (best-effort) allocation for graceful spilling when the
//     pool is oversubscribed (P5).
//
// The pool never moves data: a logical buffer is an ordered set of
// bank indices plus a byte count, and every operation preserves that
// mapping. Conservation invariants are checked by CheckInvariants and
// exercised with property-based tests.
package sram

import (
	"errors"
	"fmt"
	"sort"
)

// Role describes what a logical buffer currently holds. Roles carry no
// mechanism — switching them is free — but they drive accounting and
// make traces and invariants legible.
type Role int

const (
	// RoleInput marks the buffer feeding the currently running layer.
	RoleInput Role = iota
	// RoleOutput marks the buffer the current layer writes.
	RoleOutput
	// RoleRetained marks a pinned shortcut feature map waiting for its
	// consumer (the "mined" data).
	RoleRetained
	// RoleScratch marks transient allocations (e.g. pooling halos).
	RoleScratch
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleInput:
		return "input"
	case RoleOutput:
		return "output"
	case RoleRetained:
		return "retained"
	case RoleScratch:
		return "scratch"
	}
	return fmt.Sprintf("Role(%d)", int(r))
}

// Package errors. Callers branch on these to implement spill policies.
var (
	// ErrInsufficient reports that the pool has too few free banks for
	// a full allocation.
	ErrInsufficient = errors.New("sram: insufficient free banks")
	// ErrPinned reports an operation that is illegal on a pinned
	// buffer (freeing or releasing its banks).
	ErrPinned = errors.New("sram: buffer is pinned")
	// ErrReleased reports use of a buffer after it was freed.
	ErrReleased = errors.New("sram: buffer already freed")
	// ErrBankFailed reports an operation on a bank already retired
	// from service.
	ErrBankFailed = errors.New("sram: bank retired from service")
	// ErrBankOwned reports a retirement attempt on a bank that still
	// holds live data (the caller must migrate or spill first).
	ErrBankOwned = errors.New("sram: bank still owned")
)

// Config sizes a pool.
type Config struct {
	NumBanks  int // physical banks
	BankBytes int // capacity of each bank
}

// TotalBytes is the aggregate pool capacity.
func (c Config) TotalBytes() int64 { return int64(c.NumBanks) * int64(c.BankBytes) }

// BanksFor returns how many banks are needed to hold n bytes.
func (c Config) BanksFor(n int64) int {
	if n <= 0 {
		return 0
	}
	return int((n + int64(c.BankBytes) - 1) / int64(c.BankBytes))
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NumBanks <= 0 {
		return fmt.Errorf("sram: NumBanks must be positive, got %d", c.NumBanks)
	}
	if c.BankBytes <= 0 {
		return fmt.Errorf("sram: BankBytes must be positive, got %d", c.BankBytes)
	}
	return nil
}

// Buffer is a logical buffer: an ordered list of banks holding one
// feature map (or a retained prefix of one). Buffers are created and
// owned by a Pool; the zero value is not usable.
type Buffer struct {
	pool   *Pool
	id     int
	role   Role
	tag    string
	banks  []int
	bytes  int64 // valid payload bytes, ≤ capacity
	pinned bool
	freed  bool

	// Payload is an optional opaque value the functional-verification
	// mode attaches to prove that role switches and retention preserve
	// data identity without copies. The pool never touches it beyond
	// clearing it on Free.
	Payload any
}

// ID returns the buffer's pool-unique identity.
func (b *Buffer) ID() int { return b.id }

// Role returns the buffer's current role.
func (b *Buffer) Role() Role { return b.role }

// Tag returns the caller-provided identity (typically the producing
// layer's name).
func (b *Buffer) Tag() string { return b.tag }

// Banks returns the buffer's bank indices in layout order. The slice
// is a copy.
func (b *Buffer) Banks() []int { return append([]int(nil), b.banks...) }

// NumBanks returns how many banks the buffer currently occupies.
func (b *Buffer) NumBanks() int { return len(b.banks) }

// Bytes returns the valid payload byte count.
func (b *Buffer) Bytes() int64 { return b.bytes }

// CapacityBytes returns the total capacity of the buffer's banks.
func (b *Buffer) CapacityBytes() int64 {
	return int64(len(b.banks)) * int64(b.pool.cfg.BankBytes)
}

// Pinned reports whether the buffer is pinned.
func (b *Buffer) Pinned() bool { return b.pinned }

// Freed reports whether the buffer has been returned to the pool.
func (b *Buffer) Freed() bool { return b.freed }

// Pool is a physical bank pool. It is not safe for concurrent use; the
// schedulers are single-threaded per accelerator instance, matching
// the single control FSM of the hardware.
type Pool struct {
	cfg       Config
	owner     []int  // bank -> buffer id, or -1 when free
	free      []int  // free bank indices, LIFO
	failed    []bool // bank -> retired from service (fault injection)
	numFailed int
	buffers   map[int]*Buffer
	nextID    int
	pinned    int // banks owned by pinned buffers, kept incrementally
	observer  func(usedBanks, pinnedBanks int)

	stats Stats
}

// Stats accumulates pool telemetry for the experiments.
type Stats struct {
	Allocs        int64 `json:"Allocs"`
	PartialAllocs int64 `json:"PartialAllocs"`
	Frees         int64 `json:"Frees"`
	RoleSwitches  int64 `json:"RoleSwitches"`
	Pins          int64 `json:"Pins"`
	BanksRecycled int64 `json:"BanksRecycled"` // banks moved by ReleaseBanks (P4)
	BanksEvicted  int64 `json:"BanksEvicted"`  // banks moved by ReleaseTailBanks (eviction policies)
	BanksFailed   int64 `json:"BanksFailed"`   // banks retired from service (fault injection)
	Relocations   int64 `json:"Relocations"`   // banks whose contents moved to a spare (RelocateBank)

	PeakUsedBanks   int `json:"PeakUsedBanks"`
	PeakPinnedBanks int `json:"PeakPinnedBanks"`
}

// NewPool builds a pool; all banks start free.
func NewPool(cfg Config) (*Pool, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Pool{
		cfg:     cfg,
		owner:   make([]int, cfg.NumBanks),
		free:    make([]int, cfg.NumBanks),
		failed:  make([]bool, cfg.NumBanks),
		buffers: make(map[int]*Buffer),
	}
	for i := range p.owner {
		p.owner[i] = -1
		// Pop order low→high keeps layouts deterministic for tests.
		p.free[i] = cfg.NumBanks - 1 - i
	}
	return p, nil
}

// Config returns the pool configuration.
func (p *Pool) Config() Config { return p.cfg }

// FreeBanks returns the number of unowned banks.
func (p *Pool) FreeBanks() int { return len(p.free) }

// UsedBanks returns the number of owned banks.
func (p *Pool) UsedBanks() int { return p.cfg.NumBanks - len(p.free) - p.numFailed }

// FailedBanks returns the number of banks retired from service.
func (p *Pool) FailedBanks() int { return p.numFailed }

// InService returns the number of banks still usable (total minus
// retired) — the effective pool size graceful degradation works with.
func (p *Pool) InService() int { return p.cfg.NumBanks - p.numFailed }

// IsFailed reports whether the bank has been retired from service.
func (p *Pool) IsFailed(bank int) bool {
	return bank >= 0 && bank < len(p.failed) && p.failed[bank]
}

// Owner returns the live buffer owning the bank, or nil when the bank
// is free, failed, or out of range.
func (p *Pool) Owner(bank int) *Buffer {
	if bank < 0 || bank >= len(p.owner) || p.owner[bank] < 0 {
		return nil
	}
	return p.buffers[p.owner[bank]]
}

// FreeBytes returns the free capacity.
func (p *Pool) FreeBytes() int64 { return int64(len(p.free)) * int64(p.cfg.BankBytes) }

// PinnedBanks returns the number of banks owned by pinned buffers.
// The count is maintained incrementally (Pin/Unpin/Grow) so the
// observer hook can sample it on every pool mutation without an O(n)
// scan; CheckInvariants verifies it against the buffer map.
func (p *Pool) PinnedBanks() int { return p.pinned }

// Stats returns a copy of the accumulated telemetry.
func (p *Pool) Stats() Stats { return p.stats }

// RestoreStats overwrites the accumulated telemetry — the
// checkpoint/restore seam. A pool rebuilt from a mid-run snapshot
// continues the original counters and high-water marks (noteUsage
// keeps taking maxima on top), so the finished RunStats is
// bit-identical to an uninterrupted run.
func (p *Pool) RestoreStats(s Stats) { p.stats = s }

// Buffers returns the live buffers sorted by ID (deterministic; used
// by traces and invariant checks).
func (p *Pool) Buffers() []*Buffer {
	out := make([]*Buffer, 0, len(p.buffers))
	// scmvet:ok determinism collected set is sorted by ID before it is returned
	for _, b := range p.buffers {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

func (p *Pool) grab(n int) []int {
	banks := make([]int, n)
	for i := 0; i < n; i++ {
		bank := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		banks[i] = bank
	}
	return banks
}

// SetObserver installs a callback fired whenever occupancy may have
// grown (allocation, growth, pinning), receiving the current used and
// pinned bank counts. A nil observer (the default) costs one branch.
// The metrics layer tracks occupancy high-water marks through it.
func (p *Pool) SetObserver(o func(usedBanks, pinnedBanks int)) {
	p.observer = o
}

func (p *Pool) noteUsage() {
	used, pinned := p.UsedBanks(), p.PinnedBanks()
	if used > p.stats.PeakUsedBanks {
		p.stats.PeakUsedBanks = used
	}
	if pinned > p.stats.PeakPinnedBanks {
		p.stats.PeakPinnedBanks = pinned
	}
	if p.observer != nil {
		p.observer(used, pinned)
	}
}

// Alloc forms a logical buffer of exactly `bytes` payload bytes
// (procedure P1). It fails with ErrInsufficient when the pool lacks
// free banks, leaving the pool unchanged.
func (p *Pool) Alloc(role Role, tag string, bytes int64) (*Buffer, error) {
	if bytes <= 0 {
		return nil, fmt.Errorf("sram: alloc of %d bytes for %q", bytes, tag)
	}
	need := p.cfg.BanksFor(bytes)
	if need > len(p.free) {
		return nil, fmt.Errorf("%w: need %d banks for %q, have %d", ErrInsufficient, need, tag, len(p.free))
	}
	b := &Buffer{pool: p, id: p.nextID, role: role, tag: tag, banks: p.grab(need), bytes: bytes}
	p.nextID++
	for _, bank := range b.banks {
		p.owner[bank] = b.id
	}
	p.buffers[b.id] = b
	p.stats.Allocs++
	p.noteUsage()
	return b, nil
}

// AllocUpTo forms a logical buffer covering as much of `bytes` as the
// free banks allow (procedure P5, partial retention). It returns the
// buffer (nil when the pool is completely full) and the payload bytes
// actually covered; the caller spills the remainder to DRAM. Unlike
// Alloc it cannot fail: a short pool yields a partial buffer, an empty
// pool yields nil.
func (p *Pool) AllocUpTo(role Role, tag string, bytes int64) (*Buffer, int64) {
	if bytes <= 0 {
		return nil, 0
	}
	n := p.cfg.BanksFor(bytes)
	partial := n > len(p.free)
	if partial {
		n = len(p.free)
	}
	if n == 0 {
		return nil, 0
	}
	got := int64(n) * int64(p.cfg.BankBytes)
	if got > bytes {
		got = bytes
	}
	b := &Buffer{pool: p, id: p.nextID, role: role, tag: tag, banks: p.grab(n), bytes: got}
	p.nextID++
	for _, bank := range b.banks {
		p.owner[bank] = b.id
	}
	p.buffers[b.id] = b
	p.stats.Allocs++
	if partial {
		p.stats.PartialAllocs++
	}
	p.noteUsage()
	return b, got
}

// RetireBank removes a FREE bank from service permanently — the
// predictive-retirement step of the fault model. The bank leaves the
// free list and is never handed out again; the pool operates with a
// smaller effective size from here on. A bank holding live data must
// be migrated first (RelocateBank or a tail spill): retiring an owned
// bank is an error, and retiring twice is an error.
func (p *Pool) RetireBank(bank int) error {
	if bank < 0 || bank >= p.cfg.NumBanks {
		return fmt.Errorf("sram: retire out-of-range bank %d", bank)
	}
	if p.failed[bank] {
		return fmt.Errorf("%w: bank %d", ErrBankFailed, bank)
	}
	if p.owner[bank] != -1 {
		b := p.buffers[p.owner[bank]]
		return fmt.Errorf("%w: bank %d holds %q", ErrBankOwned, bank, b.tag)
	}
	for i, f := range p.free {
		if f == bank {
			p.free = append(p.free[:i], p.free[i+1:]...)
			p.failed[bank] = true
			p.numFailed++
			p.stats.BanksFailed++
			return nil
		}
	}
	return fmt.Errorf("sram: bank %d unowned but not on free list", bank)
}

// RelocateBank migrates the contents of an owned bank onto a spare
// free bank and retires the original — graceful degradation when a
// failing bank still holds live data and the pool has slack. The
// spare takes the failed bank's position in the buffer's layout, so
// payload byte order (and therefore functional-mode data identity) is
// preserved. Fails with ErrInsufficient when no free bank exists; the
// caller then falls back to a P5 tail spill.
func (p *Pool) RelocateBank(b *Buffer, bank int) error {
	if b.freed {
		return fmt.Errorf("%w: %q", ErrReleased, b.tag)
	}
	if len(p.free) == 0 {
		return fmt.Errorf("%w: no spare bank to relocate bank %d of %q", ErrInsufficient, bank, b.tag)
	}
	pos := -1
	for i, own := range b.banks {
		if own == bank {
			pos = i
			break
		}
	}
	if pos < 0 {
		return fmt.Errorf("sram: bank %d not owned by %q", bank, b.tag)
	}
	spare := p.grab(1)[0]
	b.banks[pos] = spare
	p.owner[spare] = b.id
	p.owner[bank] = -1
	p.failed[bank] = true
	p.numFailed++
	p.stats.BanksFailed++
	p.stats.Relocations++
	// Pinned-bank count is unchanged: same bank count, same buffer.
	p.noteUsage()
	return nil
}

// Free returns the buffer's banks to the pool. Pinned buffers must be
// unpinned first — the scheduler, not the pool, decides when retained
// data is dead.
func (p *Pool) Free(b *Buffer) error {
	if b.freed {
		return fmt.Errorf("%w: %q", ErrReleased, b.tag)
	}
	if b.pinned {
		return fmt.Errorf("%w: cannot free %q", ErrPinned, b.tag)
	}
	for _, bank := range b.banks {
		p.owner[bank] = -1
		p.free = append(p.free, bank)
	}
	b.banks = nil
	b.bytes = 0
	b.freed = true
	b.Payload = nil
	delete(p.buffers, b.id)
	p.stats.Frees++
	p.noteUsage()
	return nil
}

// SetRole renames the buffer's role — the zero-copy buffer switching
// of procedure P2. The banks, payload bytes and Payload are untouched.
func (p *Pool) SetRole(b *Buffer, role Role) error {
	if b.freed {
		return fmt.Errorf("%w: %q", ErrReleased, b.tag)
	}
	if b.role != role {
		b.role = role
		p.stats.RoleSwitches++
	}
	return nil
}

// Retag renames the buffer's feature-map identity (used when an
// in-place consumer such as pooling reuses its input banks).
func (p *Pool) Retag(b *Buffer, tag string) error {
	if b.freed {
		return fmt.Errorf("%w: %q", ErrReleased, b.tag)
	}
	b.tag = tag
	return nil
}

// Pin marks the buffer as retained shortcut data (procedure P3): it
// cannot be freed or have banks released until Unpin.
func (p *Pool) Pin(b *Buffer) error {
	if b.freed {
		return fmt.Errorf("%w: %q", ErrReleased, b.tag)
	}
	if !b.pinned {
		b.pinned = true
		p.pinned += len(b.banks)
		p.stats.Pins++
		p.noteUsage()
	}
	return nil
}

// Unpin clears the retention mark.
func (p *Pool) Unpin(b *Buffer) error {
	if b.freed {
		return fmt.Errorf("%w: %q", ErrReleased, b.tag)
	}
	if b.pinned {
		b.pinned = false
		p.pinned -= len(b.banks)
		p.noteUsage()
	}
	return nil
}

// ReleaseBanks returns the first n banks of the buffer to the pool —
// the incremental recycling of procedure P4: as the element-wise add
// consumes the retained shortcut prefix, those banks immediately
// become available for the add's own output. The buffer's payload
// shrinks by the released capacity. Releasing every bank frees the
// buffer.
func (p *Pool) ReleaseBanks(b *Buffer, n int) error {
	if b.freed {
		return fmt.Errorf("%w: %q", ErrReleased, b.tag)
	}
	if b.pinned {
		return fmt.Errorf("%w: cannot release banks of %q", ErrPinned, b.tag)
	}
	if n < 0 || n > len(b.banks) {
		return fmt.Errorf("sram: release %d of %d banks of %q", n, len(b.banks), b.tag)
	}
	for _, bank := range b.banks[:n] {
		p.owner[bank] = -1
		p.free = append(p.free, bank)
	}
	b.banks = append([]int(nil), b.banks[n:]...)
	released := int64(n) * int64(p.cfg.BankBytes)
	if b.bytes > released {
		b.bytes -= released
	} else {
		b.bytes = 0
	}
	p.stats.BanksRecycled += int64(n)
	if len(b.banks) == 0 {
		b.freed = true
		b.Payload = nil
		delete(p.buffers, b.id)
		p.stats.Frees++
	}
	return nil
}

// ReleaseTailBanks returns the LAST n banks of the buffer to the pool,
// keeping the payload prefix intact — the eviction primitive: a
// retained feature map shrinks from its tail, whose bytes the caller
// spills to DRAM. Releasing every bank frees the buffer.
func (p *Pool) ReleaseTailBanks(b *Buffer, n int) error {
	if b.freed {
		return fmt.Errorf("%w: %q", ErrReleased, b.tag)
	}
	if b.pinned {
		return fmt.Errorf("%w: cannot release banks of %q", ErrPinned, b.tag)
	}
	if n < 0 || n > len(b.banks) {
		return fmt.Errorf("sram: release %d of %d tail banks of %q", n, len(b.banks), b.tag)
	}
	keep := len(b.banks) - n
	for _, bank := range b.banks[keep:] {
		p.owner[bank] = -1
		p.free = append(p.free, bank)
	}
	b.banks = append([]int(nil), b.banks[:keep]...)
	if c := b.CapacityBytes(); b.bytes > c {
		b.bytes = c
	}
	p.stats.BanksEvicted += int64(n)
	if len(b.banks) == 0 {
		b.freed = true
		b.Payload = nil
		delete(p.buffers, b.id)
		p.stats.Frees++
	}
	return nil
}

// Grow appends free banks to the buffer until it covers `bytes` more
// payload, returning the payload bytes actually added (bounded by the
// free banks and by existing spare capacity in the last bank). Growing
// is how the add layer's output expands into banks recycled from the
// consumed shortcut operand (P4).
func (p *Pool) Grow(b *Buffer, bytes int64) (int64, error) {
	if b.freed {
		return 0, fmt.Errorf("%w: %q", ErrReleased, b.tag)
	}
	if bytes <= 0 {
		return 0, nil
	}
	added := int64(0)
	// Spare capacity in already-owned banks absorbs payload first.
	if spare := b.CapacityBytes() - b.bytes; spare > 0 {
		if spare > bytes {
			spare = bytes
		}
		b.bytes += spare
		added += spare
		bytes -= spare
	}
	for bytes > 0 && len(p.free) > 0 {
		bank := p.grab(1)[0]
		p.owner[bank] = b.id
		b.banks = append(b.banks, bank)
		if b.pinned {
			p.pinned++
		}
		chunk := int64(p.cfg.BankBytes)
		if chunk > bytes {
			chunk = bytes
		}
		b.bytes += chunk
		added += chunk
		bytes -= chunk
	}
	p.noteUsage()
	return added, nil
}

// Merge absorbs the given buffers into a single new logical buffer
// whose banks are the concatenation of theirs — how a hardware concat
// forms its output without moving a byte. The analytical scheduler in
// internal/core models concatenation transparently (consumers read the
// parts directly), so Merge is the hardware-faithful primitive kept
// for alternative schedulers; the source buffers are consumed (they
// read as freed afterwards) and none may be pinned, since their
// retention obligation would transfer to the merged buffer.
func (p *Pool) Merge(role Role, tag string, bufs ...*Buffer) (*Buffer, error) {
	if len(bufs) == 0 {
		return nil, fmt.Errorf("sram: merge of zero buffers for %q", tag)
	}
	for _, b := range bufs {
		if b.freed {
			return nil, fmt.Errorf("%w: merge source %q", ErrReleased, b.tag)
		}
		if b.pinned {
			return nil, fmt.Errorf("%w: merge source %q", ErrPinned, b.tag)
		}
	}
	m := &Buffer{pool: p, id: p.nextID, role: role, tag: tag}
	p.nextID++
	for _, b := range bufs {
		m.banks = append(m.banks, b.banks...)
		m.bytes += b.bytes
		for _, bank := range b.banks {
			p.owner[bank] = m.id
		}
		b.banks = nil
		b.bytes = 0
		b.freed = true
		b.Payload = nil
		delete(p.buffers, b.id)
	}
	p.buffers[m.id] = m
	p.stats.Allocs++
	p.noteUsage()
	return m, nil
}

// CheckInvariants verifies bank conservation: every bank is either on
// the free list, owned by exactly one live buffer, or retired from
// service; free-list entries are unique; retired banks are never owned
// or free; and every buffer's payload fits its banks.
func (p *Pool) CheckInvariants() error {
	seen := make(map[int]string, p.cfg.NumBanks)
	for _, bank := range p.free {
		if bank < 0 || bank >= p.cfg.NumBanks {
			return fmt.Errorf("sram: free list has out-of-range bank %d", bank)
		}
		if who, dup := seen[bank]; dup {
			return fmt.Errorf("sram: bank %d on free list and %s", bank, who)
		}
		seen[bank] = "free list"
		if p.owner[bank] != -1 {
			return fmt.Errorf("sram: free bank %d has owner %d", bank, p.owner[bank])
		}
		if p.failed[bank] {
			return fmt.Errorf("sram: retired bank %d on free list", bank)
		}
	}
	// scmvet:ok determinism invariant scan; only the first error of an already-corrupt pool can vary
	for id, b := range p.buffers {
		if b.freed {
			return fmt.Errorf("sram: freed buffer %q still registered", b.tag)
		}
		if b.id != id {
			return fmt.Errorf("sram: buffer id mismatch %d vs %d", b.id, id)
		}
		for _, bank := range b.banks {
			if bank < 0 || bank >= p.cfg.NumBanks {
				return fmt.Errorf("sram: buffer %q has out-of-range bank %d", b.tag, bank)
			}
			if who, dup := seen[bank]; dup {
				return fmt.Errorf("sram: bank %d owned by %q and %s", bank, b.tag, who)
			}
			seen[bank] = fmt.Sprintf("buffer %q", b.tag)
			if p.owner[bank] != b.id {
				return fmt.Errorf("sram: bank %d owner map says %d, buffer is %d", bank, p.owner[bank], b.id)
			}
			if p.failed[bank] {
				return fmt.Errorf("sram: retired bank %d owned by %q", bank, b.tag)
			}
		}
		if b.bytes > b.CapacityBytes() {
			return fmt.Errorf("sram: buffer %q payload %d exceeds capacity %d", b.tag, b.bytes, b.CapacityBytes())
		}
		if b.bytes < 0 {
			return fmt.Errorf("sram: buffer %q negative payload", b.tag)
		}
	}
	failed := 0
	for _, f := range p.failed {
		if f {
			failed++
		}
	}
	if failed != p.numFailed {
		return fmt.Errorf("sram: failed-bank count %d, marks say %d", p.numFailed, failed)
	}
	if len(seen)+failed != p.cfg.NumBanks {
		return fmt.Errorf("sram: %d banks accounted for (+%d retired), pool has %d", len(seen), failed, p.cfg.NumBanks)
	}
	pinned := 0
	// scmvet:ok determinism order-independent sum
	for _, b := range p.buffers {
		if b.pinned {
			pinned += len(b.banks)
		}
	}
	if pinned != p.pinned {
		return fmt.Errorf("sram: pinned-bank count %d, buffers say %d", p.pinned, pinned)
	}
	return nil
}
