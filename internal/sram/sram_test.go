package sram

import (
	"errors"
	"testing"
)

func newTestPool(t *testing.T, banks, bankBytes int) *Pool {
	t.Helper()
	p, err := NewPool(Config{NumBanks: banks, BankBytes: bankBytes})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustCheck(t *testing.T, p *Pool) {
	t.Helper()
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{NumBanks: 4, BankBytes: 1024}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Config{NumBanks: 0, BankBytes: 1024}).Validate(); err == nil {
		t.Error("zero banks accepted")
	}
	if err := (Config{NumBanks: 4, BankBytes: 0}).Validate(); err == nil {
		t.Error("zero bank bytes accepted")
	}
	if _, err := NewPool(Config{}); err == nil {
		t.Error("NewPool with zero config accepted")
	}
}

func TestConfigBanksFor(t *testing.T) {
	c := Config{NumBanks: 8, BankBytes: 1000}
	cases := []struct {
		bytes int64
		want  int
	}{
		{0, 0}, {-5, 0}, {1, 1}, {999, 1}, {1000, 1}, {1001, 2}, {8000, 8},
	}
	for _, tc := range cases {
		if got := c.BanksFor(tc.bytes); got != tc.want {
			t.Errorf("BanksFor(%d) = %d, want %d", tc.bytes, got, tc.want)
		}
	}
	if c.TotalBytes() != 8000 {
		t.Errorf("TotalBytes = %d", c.TotalBytes())
	}
}

func TestAllocFreeRoundTrip(t *testing.T) {
	p := newTestPool(t, 8, 1024)
	b, err := p.Alloc(RoleInput, "fm0", 3000)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumBanks() != 3 {
		t.Errorf("banks = %d, want 3", b.NumBanks())
	}
	if b.Bytes() != 3000 {
		t.Errorf("bytes = %d", b.Bytes())
	}
	if b.CapacityBytes() != 3072 {
		t.Errorf("capacity = %d", b.CapacityBytes())
	}
	if p.FreeBanks() != 5 || p.UsedBanks() != 3 {
		t.Errorf("free=%d used=%d", p.FreeBanks(), p.UsedBanks())
	}
	mustCheck(t, p)
	if err := p.Free(b); err != nil {
		t.Fatal(err)
	}
	if p.FreeBanks() != 8 {
		t.Errorf("free after Free = %d", p.FreeBanks())
	}
	if !b.Freed() {
		t.Error("buffer not marked freed")
	}
	mustCheck(t, p)
}

func TestAllocRejectsNonPositive(t *testing.T) {
	p := newTestPool(t, 4, 1024)
	if _, err := p.Alloc(RoleInput, "z", 0); err == nil {
		t.Error("zero-byte alloc accepted")
	}
	if _, err := p.Alloc(RoleInput, "z", -10); err == nil {
		t.Error("negative alloc accepted")
	}
}

func TestAllocInsufficientLeavesPoolUnchanged(t *testing.T) {
	p := newTestPool(t, 4, 1024)
	if _, err := p.Alloc(RoleInput, "a", 3*1024); err != nil {
		t.Fatal(err)
	}
	_, err := p.Alloc(RoleOutput, "b", 2*1024)
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("want ErrInsufficient, got %v", err)
	}
	if p.FreeBanks() != 1 {
		t.Errorf("failed alloc consumed banks: free=%d", p.FreeBanks())
	}
	mustCheck(t, p)
}

func TestAllocUpToFullWhenItFits(t *testing.T) {
	p := newTestPool(t, 8, 1024)
	b, got := p.AllocUpTo(RoleRetained, "sc", 2048)
	if b == nil || got != 2048 {
		t.Fatalf("got %d bytes", got)
	}
	if b.NumBanks() != 2 {
		t.Errorf("banks = %d", b.NumBanks())
	}
	mustCheck(t, p)
}

func TestAllocUpToPartial(t *testing.T) {
	p := newTestPool(t, 4, 1024)
	if _, err := p.Alloc(RoleInput, "a", 2*1024); err != nil {
		t.Fatal(err)
	}
	b, got := p.AllocUpTo(RoleRetained, "sc", 10*1024)
	if b == nil {
		t.Fatal("nil buffer from partial alloc")
	}
	if got != 2*1024 {
		t.Errorf("retained %d bytes, want %d", got, 2*1024)
	}
	if p.FreeBanks() != 0 {
		t.Errorf("free = %d", p.FreeBanks())
	}
	if p.Stats().PartialAllocs != 1 {
		t.Errorf("partial allocs = %d", p.Stats().PartialAllocs)
	}
	mustCheck(t, p)
}

func TestAllocUpToEmptyPool(t *testing.T) {
	p := newTestPool(t, 2, 1024)
	if _, err := p.Alloc(RoleInput, "a", 2*1024); err != nil {
		t.Fatal(err)
	}
	b, got := p.AllocUpTo(RoleRetained, "sc", 1024)
	if b != nil || got != 0 {
		t.Errorf("expected nil/0 from full pool, got %v/%d", b, got)
	}
	if b2, got2 := p.AllocUpTo(RoleRetained, "sc", 0); b2 != nil || got2 != 0 {
		t.Error("AllocUpTo(0) should return nil")
	}
	mustCheck(t, p)
}

func TestAllocUpToCapsAtRequest(t *testing.T) {
	// When the last free bank is bigger than the residual request, the
	// payload must report the request, not the bank capacity.
	p := newTestPool(t, 2, 1024)
	if _, err := p.Alloc(RoleInput, "a", 1024); err != nil {
		t.Fatal(err)
	}
	b, got := p.AllocUpTo(RoleRetained, "sc", 100)
	if b == nil || got != 100 {
		t.Fatalf("got %d, want 100", got)
	}
	if b.Bytes() != 100 {
		t.Errorf("payload = %d", b.Bytes())
	}
}

func TestSetRoleIsZeroCopy(t *testing.T) {
	p := newTestPool(t, 8, 1024)
	b, err := p.Alloc(RoleOutput, "fm1", 3000)
	if err != nil {
		t.Fatal(err)
	}
	payload := []float32{1, 2, 3}
	b.Payload = payload
	banksBefore := b.Banks()
	if err := p.SetRole(b, RoleInput); err != nil {
		t.Fatal(err)
	}
	if b.Role() != RoleInput {
		t.Errorf("role = %v", b.Role())
	}
	banksAfter := b.Banks()
	if len(banksBefore) != len(banksAfter) {
		t.Fatal("bank count changed on role switch")
	}
	for i := range banksBefore {
		if banksBefore[i] != banksAfter[i] {
			t.Errorf("bank %d moved: %d → %d", i, banksBefore[i], banksAfter[i])
		}
	}
	if got, ok := b.Payload.([]float32); !ok || &got[0] != &payload[0] {
		t.Error("payload identity lost on role switch")
	}
	if p.Stats().RoleSwitches != 1 {
		t.Errorf("role switches = %d", p.Stats().RoleSwitches)
	}
	// Same-role switch is a no-op for stats.
	if err := p.SetRole(b, RoleInput); err != nil {
		t.Fatal(err)
	}
	if p.Stats().RoleSwitches != 1 {
		t.Errorf("no-op switch counted")
	}
}

func TestRetag(t *testing.T) {
	p := newTestPool(t, 2, 1024)
	b, err := p.Alloc(RoleInput, "old", 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Retag(b, "new"); err != nil {
		t.Fatal(err)
	}
	if b.Tag() != "new" {
		t.Errorf("tag = %q", b.Tag())
	}
}

func TestPinBlocksFreeAndRelease(t *testing.T) {
	p := newTestPool(t, 8, 1024)
	b, err := p.Alloc(RoleRetained, "sc", 2048)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Pin(b); err != nil {
		t.Fatal(err)
	}
	if !b.Pinned() {
		t.Error("not pinned")
	}
	if err := p.Free(b); !errors.Is(err, ErrPinned) {
		t.Errorf("Free on pinned: %v", err)
	}
	if err := p.ReleaseBanks(b, 1); !errors.Is(err, ErrPinned) {
		t.Errorf("ReleaseBanks on pinned: %v", err)
	}
	if p.PinnedBanks() != 2 {
		t.Errorf("pinned banks = %d", p.PinnedBanks())
	}
	if err := p.Unpin(b); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(b); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, p)
}

func TestDoublePinIdempotent(t *testing.T) {
	p := newTestPool(t, 2, 1024)
	b, _ := p.Alloc(RoleRetained, "sc", 100)
	if err := p.Pin(b); err != nil {
		t.Fatal(err)
	}
	if err := p.Pin(b); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Pins != 1 {
		t.Errorf("pins = %d, want 1", p.Stats().Pins)
	}
}

func TestUseAfterFree(t *testing.T) {
	p := newTestPool(t, 4, 1024)
	b, _ := p.Alloc(RoleInput, "fm", 100)
	if err := p.Free(b); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(b); !errors.Is(err, ErrReleased) {
		t.Errorf("double free: %v", err)
	}
	if err := p.SetRole(b, RoleOutput); !errors.Is(err, ErrReleased) {
		t.Errorf("SetRole after free: %v", err)
	}
	if err := p.Pin(b); !errors.Is(err, ErrReleased) {
		t.Errorf("Pin after free: %v", err)
	}
	if err := p.Unpin(b); !errors.Is(err, ErrReleased) {
		t.Errorf("Unpin after free: %v", err)
	}
	if err := p.ReleaseBanks(b, 0); !errors.Is(err, ErrReleased) {
		t.Errorf("ReleaseBanks after free: %v", err)
	}
	if err := p.Retag(b, "x"); !errors.Is(err, ErrReleased) {
		t.Errorf("Retag after free: %v", err)
	}
}

func TestReleaseBanksIncremental(t *testing.T) {
	p := newTestPool(t, 8, 1024)
	b, err := p.Alloc(RoleRetained, "sc", 4000) // 4 banks
	if err != nil {
		t.Fatal(err)
	}
	banks := b.Banks()
	if err := p.ReleaseBanks(b, 2); err != nil {
		t.Fatal(err)
	}
	if b.NumBanks() != 2 {
		t.Errorf("banks = %d", b.NumBanks())
	}
	// Remaining banks are the original suffix, in order.
	rest := b.Banks()
	if rest[0] != banks[2] || rest[1] != banks[3] {
		t.Errorf("banks = %v, want suffix of %v", rest, banks)
	}
	if b.Bytes() != 4000-2048 {
		t.Errorf("bytes = %d", b.Bytes())
	}
	if p.FreeBanks() != 6 {
		t.Errorf("free = %d", p.FreeBanks())
	}
	if p.Stats().BanksRecycled != 2 {
		t.Errorf("recycled = %d", p.Stats().BanksRecycled)
	}
	mustCheck(t, p)
	// Releasing the rest frees the buffer entirely.
	if err := p.ReleaseBanks(b, 2); err != nil {
		t.Fatal(err)
	}
	if !b.Freed() {
		t.Error("full release did not free buffer")
	}
	if p.FreeBanks() != 8 {
		t.Errorf("free = %d", p.FreeBanks())
	}
	mustCheck(t, p)
}

func TestReleaseBanksClampsPayload(t *testing.T) {
	p := newTestPool(t, 4, 1024)
	b, _ := p.Alloc(RoleRetained, "sc", 1100) // 2 banks, payload 1100
	if err := p.ReleaseBanks(b, 1); err != nil {
		t.Fatal(err)
	}
	if b.Bytes() != 76 { // 1100-1024
		t.Errorf("bytes = %d", b.Bytes())
	}
	// A second release of more banks than remain is rejected.
	if err := p.ReleaseBanks(b, 2); err == nil {
		t.Error("over-release accepted")
	}
	if err := p.ReleaseBanks(b, -1); err == nil {
		t.Error("negative release accepted")
	}
}

func TestRecycledBanksImmediatelyReusable(t *testing.T) {
	// The P4 scenario: the pool is full, the add consumes shortcut
	// banks and allocates output banks from the recycled space.
	p := newTestPool(t, 4, 1024)
	sc, err := p.Alloc(RoleRetained, "shortcut", 2*1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(RoleInput, "in", 2*1024); err != nil {
		t.Fatal(err)
	}
	if p.FreeBanks() != 0 {
		t.Fatal("pool should be full")
	}
	// Consume half the shortcut, then place half the output.
	if err := p.ReleaseBanks(sc, 1); err != nil {
		t.Fatal(err)
	}
	out1, err := p.Alloc(RoleOutput, "out", 1024)
	if err != nil {
		t.Fatalf("recycled bank not reusable: %v", err)
	}
	if err := p.ReleaseBanks(sc, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(RoleOutput, "out2", 1024); err != nil {
		t.Fatalf("second recycled bank not reusable: %v", err)
	}
	_ = out1
	mustCheck(t, p)
}

func TestPeakTracking(t *testing.T) {
	p := newTestPool(t, 8, 1024)
	a, _ := p.Alloc(RoleInput, "a", 4*1024)
	b, _ := p.Alloc(RoleOutput, "b", 2*1024)
	if err := p.Pin(b); err != nil {
		t.Fatal(err)
	}
	if err := p.Unpin(b); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(b); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(a); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.PeakUsedBanks != 6 {
		t.Errorf("peak used = %d, want 6", st.PeakUsedBanks)
	}
	if st.PeakPinnedBanks != 2 {
		t.Errorf("peak pinned = %d, want 2", st.PeakPinnedBanks)
	}
}

func TestBuffersSortedAndRoles(t *testing.T) {
	p := newTestPool(t, 8, 1024)
	a, _ := p.Alloc(RoleInput, "a", 100)
	b, _ := p.Alloc(RoleOutput, "b", 100)
	c, _ := p.Alloc(RoleRetained, "c", 100)
	bufs := p.Buffers()
	if len(bufs) != 3 || bufs[0] != a || bufs[1] != b || bufs[2] != c {
		t.Errorf("Buffers order wrong")
	}
	if RoleInput.String() != "input" || RoleOutput.String() != "output" ||
		RoleRetained.String() != "retained" || RoleScratch.String() != "scratch" {
		t.Error("role strings wrong")
	}
}

func TestFreeClearsPayload(t *testing.T) {
	p := newTestPool(t, 2, 1024)
	b, _ := p.Alloc(RoleInput, "a", 100)
	b.Payload = "data"
	if err := p.Free(b); err != nil {
		t.Fatal(err)
	}
	if b.Payload != nil {
		t.Error("payload survived Free")
	}
}

func TestPoolObserver(t *testing.T) {
	p := newTestPool(t, 8, 1024)
	var lastUsed, lastPinned, calls int
	p.SetObserver(func(used, pinned int) {
		lastUsed, lastPinned = used, pinned
		calls++
	})
	b, err := p.Alloc(RoleOutput, "fm0", 2048)
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 || lastUsed != 2 || lastPinned != 0 {
		t.Fatalf("after alloc: calls=%d used=%d pinned=%d", calls, lastUsed, lastPinned)
	}
	if err := p.Pin(b); err != nil {
		t.Fatal(err)
	}
	if lastPinned != 2 {
		t.Errorf("after pin: pinned=%d, want 2", lastPinned)
	}
	if err := p.Unpin(b); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(b); err != nil {
		t.Fatal(err)
	}
	if lastUsed != 0 || lastPinned != 0 {
		t.Errorf("after free: used=%d pinned=%d", lastUsed, lastPinned)
	}
	p.SetObserver(nil)
	before := calls
	if _, err := p.Alloc(RoleInput, "fm1", 1024); err != nil {
		t.Fatal(err)
	}
	if calls != before {
		t.Error("detached observer still called")
	}
	mustCheck(t, p)
}
