package sram

import (
	"errors"
	"testing"
)

func TestGrowUsesSpareCapacityFirst(t *testing.T) {
	p := newTestPool(t, 8, 1024)
	b, err := p.Alloc(RoleOutput, "o", 1000) // 1 bank, 24 bytes spare
	if err != nil {
		t.Fatal(err)
	}
	added, err := p.Grow(b, 24)
	if err != nil {
		t.Fatal(err)
	}
	if added != 24 || b.NumBanks() != 1 || b.Bytes() != 1024 {
		t.Errorf("added=%d banks=%d bytes=%d", added, b.NumBanks(), b.Bytes())
	}
	mustCheck(t, p)
}

func TestGrowAcquiresBanks(t *testing.T) {
	p := newTestPool(t, 4, 1024)
	b, _ := p.Alloc(RoleOutput, "o", 1024)
	added, err := p.Grow(b, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if added != 2048 || b.NumBanks() != 3 || b.Bytes() != 3072 {
		t.Errorf("added=%d banks=%d bytes=%d", added, b.NumBanks(), b.Bytes())
	}
	mustCheck(t, p)
}

func TestGrowBoundedByFreeBanks(t *testing.T) {
	p := newTestPool(t, 2, 1024)
	b, _ := p.Alloc(RoleOutput, "o", 1024)
	added, err := p.Grow(b, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if added != 1024 { // only one free bank
		t.Errorf("added = %d, want 1024", added)
	}
	if p.FreeBanks() != 0 {
		t.Errorf("free = %d", p.FreeBanks())
	}
	mustCheck(t, p)
}

func TestGrowZeroAndFreed(t *testing.T) {
	p := newTestPool(t, 2, 1024)
	b, _ := p.Alloc(RoleOutput, "o", 100)
	if added, err := p.Grow(b, 0); err != nil || added != 0 {
		t.Errorf("grow 0 = %d, %v", added, err)
	}
	if err := p.Free(b); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Grow(b, 10); !errors.Is(err, ErrReleased) {
		t.Errorf("grow after free: %v", err)
	}
}

func TestMergeConcatenatesBanks(t *testing.T) {
	p := newTestPool(t, 8, 1024)
	a, _ := p.Alloc(RoleOutput, "e1", 2048)
	b, _ := p.Alloc(RoleOutput, "e3", 1000)
	aBanks, bBanks := a.Banks(), b.Banks()
	m, err := p.Merge(RoleInput, "concat", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Freed() || !b.Freed() {
		t.Error("sources not absorbed")
	}
	if m.Bytes() != 3048 {
		t.Errorf("merged bytes = %d", m.Bytes())
	}
	got := m.Banks()
	want := append(aBanks, bBanks...)
	if len(got) != len(want) {
		t.Fatalf("banks = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bank %d = %d, want %d", i, got[i], want[i])
		}
	}
	if m.Role() != RoleInput || m.Tag() != "concat" {
		t.Errorf("role/tag = %v/%q", m.Role(), m.Tag())
	}
	mustCheck(t, p)
	if err := p.Free(m); err != nil {
		t.Fatal(err)
	}
	if p.FreeBanks() != 8 {
		t.Errorf("free = %d", p.FreeBanks())
	}
}

func TestMergeRejectsPinnedAndFreed(t *testing.T) {
	p := newTestPool(t, 8, 1024)
	a, _ := p.Alloc(RoleOutput, "a", 100)
	b, _ := p.Alloc(RoleOutput, "b", 100)
	if err := p.Pin(a); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Merge(RoleInput, "m", a, b); !errors.Is(err, ErrPinned) {
		t.Errorf("merge with pinned source: %v", err)
	}
	if err := p.Unpin(a); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(a); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Merge(RoleInput, "m", a, b); !errors.Is(err, ErrReleased) {
		t.Errorf("merge with freed source: %v", err)
	}
	if _, err := p.Merge(RoleInput, "m"); err == nil {
		t.Error("empty merge accepted")
	}
	mustCheck(t, p)
}

func TestMergeSingleBuffer(t *testing.T) {
	p := newTestPool(t, 4, 1024)
	a, _ := p.Alloc(RoleOutput, "a", 1500)
	m, err := p.Merge(RoleRetained, "m", a)
	if err != nil {
		t.Fatal(err)
	}
	if m.Bytes() != 1500 || m.NumBanks() != 2 {
		t.Errorf("merged = %d bytes, %d banks", m.Bytes(), m.NumBanks())
	}
	mustCheck(t, p)
}

func TestReleaseTailBanksKeepsPrefix(t *testing.T) {
	p := newTestPool(t, 8, 1024)
	b, err := p.Alloc(RoleRetained, "sc", 4000) // 4 banks, payload 4000
	if err != nil {
		t.Fatal(err)
	}
	banks := b.Banks()
	if err := p.ReleaseTailBanks(b, 2); err != nil {
		t.Fatal(err)
	}
	rest := b.Banks()
	if len(rest) != 2 || rest[0] != banks[0] || rest[1] != banks[1] {
		t.Errorf("banks = %v, want prefix of %v", rest, banks)
	}
	if b.Bytes() != 2048 { // payload clamped to remaining capacity
		t.Errorf("bytes = %d", b.Bytes())
	}
	if p.Stats().BanksEvicted != 2 {
		t.Errorf("evicted = %d", p.Stats().BanksEvicted)
	}
	mustCheck(t, p)
	// Full tail release frees the buffer.
	if err := p.ReleaseTailBanks(b, 2); err != nil {
		t.Fatal(err)
	}
	if !b.Freed() || p.FreeBanks() != 8 {
		t.Error("full tail release did not free")
	}
	mustCheck(t, p)
}

func TestReleaseTailBanksGuards(t *testing.T) {
	p := newTestPool(t, 4, 1024)
	b, _ := p.Alloc(RoleRetained, "sc", 2048)
	if err := p.Pin(b); err != nil {
		t.Fatal(err)
	}
	if err := p.ReleaseTailBanks(b, 1); !errors.Is(err, ErrPinned) {
		t.Errorf("tail release on pinned: %v", err)
	}
	if err := p.Unpin(b); err != nil {
		t.Fatal(err)
	}
	if err := p.ReleaseTailBanks(b, 5); err == nil {
		t.Error("over-release accepted")
	}
	if err := p.ReleaseTailBanks(b, -1); err == nil {
		t.Error("negative release accepted")
	}
	if err := p.Free(b); err != nil {
		t.Fatal(err)
	}
	if err := p.ReleaseTailBanks(b, 0); !errors.Is(err, ErrReleased) {
		t.Errorf("tail release after free: %v", err)
	}
}

func TestReleaseTailShortPayload(t *testing.T) {
	// Payload smaller than remaining capacity is untouched by a tail
	// release of an empty-capacity bank.
	p := newTestPool(t, 4, 1024)
	b, _ := p.Alloc(RoleRetained, "sc", 1100) // 2 banks, payload 1100
	if err := p.ReleaseTailBanks(b, 1); err != nil {
		t.Fatal(err)
	}
	if b.Bytes() != 1024 { // clamped to one bank
		t.Errorf("bytes = %d", b.Bytes())
	}
	mustCheck(t, p)
}
