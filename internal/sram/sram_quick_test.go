package sram

import (
	"fmt"
	"testing"
	"testing/quick"
)

// opCode drives the randomized pool exerciser. Each byte of the quick
// input decodes into one pool operation applied to a live buffer (or an
// allocation when none applies).
type opCode byte

const (
	opAlloc opCode = iota
	opAllocUpTo
	opFree
	opSwitch
	opPin
	opUnpin
	opRelease
	opCount
)

// applyOps replays a random operation tape against a fresh pool and
// checks invariants after every step. It returns an error describing
// the first violation.
func applyOps(numBanks, bankBytes int, tape []byte) error {
	p, err := NewPool(Config{NumBanks: numBanks, BankBytes: bankBytes})
	if err != nil {
		return err
	}
	var live []*Buffer
	pick := func(b byte) *Buffer {
		if len(live) == 0 {
			return nil
		}
		return live[int(b)%len(live)]
	}
	drop := func(target *Buffer) {
		for i, b := range live {
			if b == target {
				live = append(live[:i], live[i+1:]...)
				return
			}
		}
	}
	for i := 0; i+1 < len(tape); i += 2 {
		op, arg := opCode(tape[i])%opCount, tape[i+1]
		switch op {
		case opAlloc:
			bytes := int64(arg%7+1) * int64(bankBytes) / 2
			if bytes == 0 {
				bytes = 1
			}
			b, err := p.Alloc(Role(arg%4), fmt.Sprintf("fm%d", i), bytes)
			if err == nil {
				live = append(live, b)
			}
		case opAllocUpTo:
			bytes := int64(arg%9+1) * int64(bankBytes)
			if b, got := p.AllocUpTo(RoleRetained, fmt.Sprintf("sc%d", i), bytes); b != nil {
				if got <= 0 || got > bytes {
					return fmt.Errorf("step %d: AllocUpTo returned %d of %d", i, got, bytes)
				}
				live = append(live, b)
			}
		case opFree:
			if b := pick(arg); b != nil && !b.Pinned() {
				if err := p.Free(b); err != nil {
					return fmt.Errorf("step %d: %v", i, err)
				}
				drop(b)
			}
		case opSwitch:
			if b := pick(arg); b != nil {
				if err := p.SetRole(b, Role(arg%4)); err != nil {
					return fmt.Errorf("step %d: %v", i, err)
				}
			}
		case opPin:
			if b := pick(arg); b != nil {
				if err := p.Pin(b); err != nil {
					return fmt.Errorf("step %d: %v", i, err)
				}
			}
		case opUnpin:
			if b := pick(arg); b != nil {
				if err := p.Unpin(b); err != nil {
					return fmt.Errorf("step %d: %v", i, err)
				}
			}
		case opRelease:
			if b := pick(arg); b != nil && !b.Pinned() {
				n := int(arg) % (b.NumBanks() + 1)
				if err := p.ReleaseBanks(b, n); err != nil {
					return fmt.Errorf("step %d: %v", i, err)
				}
				if b.Freed() {
					drop(b)
				}
			}
		}
		if err := p.CheckInvariants(); err != nil {
			return fmt.Errorf("step %d (op %d): %v", i, op, err)
		}
		if p.FreeBanks()+p.UsedBanks() != numBanks {
			return fmt.Errorf("step %d: bank conservation broken: %d+%d != %d",
				i, p.FreeBanks(), p.UsedBanks(), numBanks)
		}
	}
	// Drain: everything must be freeable and the pool must return to
	// its initial state.
	for _, b := range live {
		if b.Pinned() {
			if err := p.Unpin(b); err != nil {
				return err
			}
		}
		if err := p.Free(b); err != nil {
			return err
		}
	}
	if p.FreeBanks() != numBanks {
		return fmt.Errorf("drain left %d of %d banks free", p.FreeBanks(), numBanks)
	}
	return p.CheckInvariants()
}

func TestQuickPoolInvariants(t *testing.T) {
	f := func(tape []byte, banks, bankKB uint8) bool {
		nb := int(banks%32) + 1
		bb := (int(bankKB%8) + 1) * 256
		if err := applyOps(nb, bb, tape); err != nil {
			t.Logf("banks=%d bankBytes=%d: %v", nb, bb, err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickAllocNeverOverlaps(t *testing.T) {
	// Property: any sequence of full allocations yields disjoint bank
	// sets whose union size equals the used-bank count.
	f := func(sizes []uint16) bool {
		p, err := NewPool(Config{NumBanks: 64, BankBytes: 512})
		if err != nil {
			return false
		}
		owned := map[int]bool{}
		total := 0
		for i, s := range sizes {
			bytes := int64(s%4096) + 1
			b, err := p.Alloc(RoleInput, fmt.Sprintf("f%d", i), bytes)
			if err != nil {
				break
			}
			for _, bank := range b.Banks() {
				if owned[bank] {
					return false
				}
				owned[bank] = true
			}
			total += b.NumBanks()
		}
		return total == p.UsedBanks() && len(owned) == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickReleasePreservesSuffix(t *testing.T) {
	// Property: ReleaseBanks(n) leaves exactly the bank suffix and the
	// payload shrinks by the released capacity (clamped at zero).
	f := func(nBanks, rel uint8) bool {
		p, err := NewPool(Config{NumBanks: 32, BankBytes: 1024})
		if err != nil {
			return false
		}
		n := int(nBanks%16) + 1
		payload := int64(n)*1024 - 100
		b, err := p.Alloc(RoleRetained, "sc", payload)
		if err != nil {
			return false
		}
		before := b.Banks()
		r := int(rel) % (n + 1)
		if err := p.ReleaseBanks(b, r); err != nil {
			return false
		}
		if r == n {
			return b.Freed() && p.FreeBanks() == 32
		}
		after := b.Banks()
		if len(after) != n-r {
			return false
		}
		for i := range after {
			if after[i] != before[r+i] {
				return false
			}
		}
		wantBytes := payload - int64(r)*1024
		if wantBytes < 0 {
			wantBytes = 0
		}
		return b.Bytes() == wantBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
