package sram

import (
	"errors"
	"testing"
)

func poolOf(t *testing.T, banks, bankBytes int) *Pool {
	t.Helper()
	p, err := NewPool(Config{NumBanks: banks, BankBytes: bankBytes})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRetireFreeBank(t *testing.T) {
	p := poolOf(t, 8, 1024)
	if err := p.RetireBank(3); err != nil {
		t.Fatalf("RetireBank: %v", err)
	}
	if !p.IsFailed(3) {
		t.Error("bank 3 should read as failed")
	}
	if p.FailedBanks() != 1 || p.InService() != 7 || p.FreeBanks() != 7 {
		t.Errorf("counts after retire: failed=%d inService=%d free=%d",
			p.FailedBanks(), p.InService(), p.FreeBanks())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	// Retired bank is never handed out again.
	b, err := p.Alloc(RoleOutput, "x", 7*1024)
	if err != nil {
		t.Fatalf("Alloc after retire: %v", err)
	}
	for _, bank := range b.Banks() {
		if bank == 3 {
			t.Error("retired bank 3 was allocated")
		}
	}
	if _, err := p.Alloc(RoleOutput, "y", 1024); !errors.Is(err, ErrInsufficient) {
		t.Errorf("pool should be exhausted at 7 usable banks, got %v", err)
	}
}

func TestRetireErrors(t *testing.T) {
	p := poolOf(t, 4, 1024)
	if err := p.RetireBank(-1); err == nil {
		t.Error("negative bank must fail")
	}
	if err := p.RetireBank(4); err == nil {
		t.Error("out-of-range bank must fail")
	}
	b, err := p.Alloc(RoleOutput, "x", 2048)
	if err != nil {
		t.Fatal(err)
	}
	owned := b.Banks()[0]
	if err := p.RetireBank(owned); !errors.Is(err, ErrBankOwned) {
		t.Errorf("retiring owned bank: got %v, want ErrBankOwned", err)
	}
	free := 0
	for p.IsFailed(free) || p.Owner(free) != nil {
		free++
	}
	if err := p.RetireBank(free); err != nil {
		t.Fatal(err)
	}
	if err := p.RetireBank(free); !errors.Is(err, ErrBankFailed) {
		t.Errorf("double retire: got %v, want ErrBankFailed", err)
	}
}

func TestOwner(t *testing.T) {
	p := poolOf(t, 4, 1024)
	b, err := p.Alloc(RoleOutput, "x", 2048)
	if err != nil {
		t.Fatal(err)
	}
	for _, bank := range b.Banks() {
		if p.Owner(bank) != b {
			t.Errorf("Owner(%d) != allocated buffer", bank)
		}
	}
	if p.Owner(-1) != nil || p.Owner(99) != nil {
		t.Error("out-of-range Owner must be nil")
	}
	freeBank := -1
	for i := 0; i < 4; i++ {
		if p.Owner(i) == nil {
			freeBank = i
		}
	}
	if freeBank < 0 {
		t.Fatal("no free bank found")
	}
}

func TestRelocateBank(t *testing.T) {
	p := poolOf(t, 6, 1024)
	b, err := p.Alloc(RoleRetained, "sc", 3*1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Pin(b); err != nil {
		t.Fatal(err)
	}
	before := b.Banks()
	victim := before[1]
	if err := p.RelocateBank(b, victim); err != nil {
		t.Fatalf("RelocateBank: %v", err)
	}
	after := b.Banks()
	if len(after) != 3 {
		t.Fatalf("bank count changed: %v", after)
	}
	if after[0] != before[0] || after[2] != before[2] {
		t.Errorf("unaffected positions moved: %v -> %v", before, after)
	}
	if after[1] == victim {
		t.Error("victim bank still in layout")
	}
	if !p.IsFailed(victim) {
		t.Error("victim not marked failed")
	}
	if p.Owner(after[1]) != b {
		t.Error("spare bank not owned by buffer")
	}
	if p.PinnedBanks() != 3 {
		t.Errorf("pinned count = %d, want 3", p.PinnedBanks())
	}
	if b.Bytes() != 3*1024 {
		t.Errorf("payload changed: %d", b.Bytes())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestRelocateNoSpare(t *testing.T) {
	p := poolOf(t, 2, 1024)
	b, err := p.Alloc(RoleOutput, "x", 2048)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RelocateBank(b, b.Banks()[0]); !errors.Is(err, ErrInsufficient) {
		t.Errorf("relocate with full pool: got %v, want ErrInsufficient", err)
	}
	if err := p.RelocateBank(b, 99); err == nil {
		t.Error("relocate of bank not in buffer must fail once a spare exists")
	}
}

func TestRelocateWrongBank(t *testing.T) {
	p := poolOf(t, 4, 1024)
	b, err := p.Alloc(RoleOutput, "x", 1024)
	if err != nil {
		t.Fatal(err)
	}
	other, err := p.Alloc(RoleOutput, "y", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RelocateBank(b, other.Banks()[0]); err == nil {
		t.Error("relocating a bank owned by another buffer must fail")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShrinkToZeroFreeThenRetire(t *testing.T) {
	// Retire every free bank one by one; pool must stay consistent and
	// end with zero capacity.
	p := poolOf(t, 5, 1024)
	for i := 0; i < 5; i++ {
		if err := p.RetireBank(i); err != nil {
			t.Fatalf("retire %d: %v", i, err)
		}
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("invariants after retiring %d: %v", i, err)
		}
	}
	if p.InService() != 0 || p.FreeBanks() != 0 {
		t.Errorf("inService=%d free=%d, want 0/0", p.InService(), p.FreeBanks())
	}
	if b, got := p.AllocUpTo(RoleOutput, "x", 1024); b != nil || got != 0 {
		t.Error("dead pool must not allocate")
	}
	if p.Stats().BanksFailed != 5 {
		t.Errorf("BanksFailed = %d, want 5", p.Stats().BanksFailed)
	}
}

func TestAllocUpToNeverPanics(t *testing.T) {
	// The exact-fit path used to go through Alloc with a panic on the
	// "unreachable" error; exercise full, partial, and empty cases.
	p := poolOf(t, 4, 1024)
	b, got := p.AllocUpTo(RoleRetained, "full", 4*1024)
	if b == nil || got != 4*1024 || p.Stats().PartialAllocs != 0 {
		t.Fatalf("full fit: got %d, partials %d", got, p.Stats().PartialAllocs)
	}
	if err := p.Free(b); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(RoleOutput, "x", 3*1024); err != nil {
		t.Fatal(err)
	}
	b, got = p.AllocUpTo(RoleRetained, "partial", 4*1024)
	if b == nil || got != 1024 || p.Stats().PartialAllocs != 1 {
		t.Fatalf("partial fit: got %d, partials %d", got, p.Stats().PartialAllocs)
	}
	if b2, got2 := p.AllocUpTo(RoleRetained, "none", 1024); b2 != nil || got2 != 0 {
		t.Error("empty pool must return nil, 0")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRetireBankCorruptFreeList(t *testing.T) {
	// A bank that is unowned but missing from the free list is a
	// corruption RetireBank must refuse to mask.
	p := poolOf(t, 3, 1024)
	p.free = p.free[:len(p.free)-1] // simulate corruption
	gone := p.owner[0]
	_ = gone
	bank := -1
	for i := range p.owner {
		onFree := false
		for _, f := range p.free {
			if f == i {
				onFree = true
			}
		}
		if !onFree && p.owner[i] == -1 {
			bank = i
		}
	}
	if bank < 0 {
		t.Fatal("setup failed")
	}
	if err := p.RetireBank(bank); err == nil {
		t.Error("retiring a bank missing from the free list must fail")
	}
}
