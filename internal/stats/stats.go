// Package stats defines the result types produced by the accelerator
// schedulers and the table rendering used by the experiment harness,
// the CLIs, and EXPERIMENTS.md.
package stats

import (
	"fmt"
	"strings"

	"shortcutmining/internal/dram"
	"shortcutmining/internal/energy"
	"shortcutmining/internal/metrics"
)

// LayerStats is the outcome of executing one layer.
type LayerStats struct {
	Name  string `json:"Name"`
	Kind  string `json:"Kind"`
	Stage string `json:"Stage"`

	ComputeCycles int64 `json:"ComputeCycles"`
	MemCycles     int64 `json:"MemCycles"`
	Cycles        int64 `json:"Cycles"` // max(compute, mem) + control overhead

	Traffic   dram.Traffic `json:"Traffic"`   // off-chip bytes by class (burst-rounded)
	SRAMBytes int64        `json:"SRAMBytes"` // on-chip buffer touches

	// CodecCycles is the interlayer-compression engine time serialized
	// into this layer (encode on stores, decode on loads); zero when no
	// codec is configured. Included in Cycles.
	CodecCycles int64 `json:"CodecCycles,omitempty"`

	// Shortcut Mining bookkeeping (zero under the baseline).
	ReusedInputBytes int64 `json:"ReusedInputBytes"` // input served by role switching (P2)
	RetainedBytes    int64 `json:"RetainedBytes"`    // shortcut bytes pinned on chip (P3)
	SpilledBytes     int64 `json:"SpilledBytes"`     // shortcut/fmap bytes spilled (P5)
	RecycledBanks    int64 `json:"RecycledBanks"`    // banks recycled during the add (P4)
}

// FmapBytes is the layer's off-chip feature-map traffic.
func (l LayerStats) FmapBytes() int64 { return l.Traffic.FeatureMap() }

// RunStats is the outcome of executing a network.
type RunStats struct {
	Network  string  `json:"Network"`
	Strategy string  `json:"Strategy"`
	Batch    int     `json:"Batch"`
	ClockMHz float64 `json:"ClockMHz"`

	Layers []LayerStats `json:"Layers"`

	Traffic       dram.Traffic `json:"Traffic"`
	ComputeCycles int64        `json:"ComputeCycles"`
	MemCycles     int64        `json:"MemCycles"`
	TotalCycles   int64        `json:"TotalCycles"`
	SRAMBytes     int64        `json:"SRAMBytes"`
	MACs          int64        `json:"MACs"`

	PeakUsedBanks   int   `json:"PeakUsedBanks"`
	PeakPinnedBanks int   `json:"PeakPinnedBanks"`
	RoleSwitches    int64 `json:"RoleSwitches"`
	BanksRecycled   int64 `json:"BanksRecycled"`
	BanksEvicted    int64 `json:"BanksEvicted"`

	Energy energy.Breakdown `json:"Energy"`

	// Faults summarizes injected adversity and the degradation machinery
	// it triggered; all-zero for a fault-free run.
	Faults FaultStats `json:"Faults"`

	// Compression summarizes the interlayer codec's effect: the logical
	// (pre-codec) bytes per class, what actually crossed the wire, and
	// the encode/decode engine cycles (already included in TotalCycles).
	// Nil when no codec was configured, so uncompressed runs serialize
	// byte-identically to previous releases.
	Compression *CompressionStats `json:"Compression,omitempty"`

	// Metrics is the registry snapshot of an observed run (nil when
	// the run was not observed); scm-sim -json embeds it verbatim.
	Metrics *metrics.Snapshot `json:"Metrics,omitempty"`
}

// FaultStats summarizes a run's injected faults and the cost of
// absorbing them. Cycle fields are already included in TotalCycles;
// RetryBytes is NOT included in Traffic (retries re-move bytes the
// tally already counted once).
type FaultStats struct {
	BankFailures    int64 `json:"BankFailures"`    // banks hard-failed and retired from service
	TransientErrors int64 `json:"TransientErrors"` // correctable SRAM upsets (scrubbed in place)
	Relocations     int64 `json:"Relocations"`     // failed banks whose data moved to a spare
	FaultSpillBytes int64 `json:"FaultSpillBytes"` // bytes P5-spilled to DRAM because no spare existed
	MigrationCycles int64 `json:"MigrationCycles"` // cycles spent relocating + scrubbing

	DMARetries     int64 `json:"DMARetries"`     // failed transfer attempts that were reissued
	DMARetryCycles int64 `json:"DMARetryCycles"` // re-transfer plus exponential-backoff cycles
	RetryBytes     int64 `json:"RetryBytes"`     // burst-rounded bytes re-moved by retries
	DegradedCycles int64 `json:"DegradedCycles"` // extra channel cycles from bandwidth degradation
}

// Any reports whether any fault machinery fired during the run.
func (f FaultStats) Any() bool { return f != FaultStats{} }

// CompressionStats is the interlayer-codec ledger of a run: what the
// layers logically exchanged versus what the codec put on the wire,
// plus the engine time spent encoding and decoding. Wire records the
// post-codec payload before burst rounding (the burst-rounded view is
// RunStats.Traffic); non-compressible classes carry identical Logical
// and Wire entries.
type CompressionStats struct {
	// Codec is the spec-grammar rendering of the configuration
	// (e.g. "zvc:sparsity=0.55,enc=2,dec=2").
	Codec string `json:"Codec"`

	Logical dram.Traffic `json:"Logical"` // requested bytes by class, pre-codec
	Wire    dram.Traffic `json:"Wire"`    // post-codec payload bytes by class

	// SavedBytes is Logical.Total() − Wire.Total() — what the codec
	// kept off the wire.
	SavedBytes int64 `json:"SavedBytes"`

	// EncodeCycles / DecodeCycles are the codec engine time serialized
	// into the run (already included in TotalCycles).
	EncodeCycles int64 `json:"EncodeCycles"`
	DecodeCycles int64 `json:"DecodeCycles"`
}

// Ratio is the achieved compression ratio (logical/wire) over the
// codec-eligible feature-map classes, 1 when nothing moved. Weight
// traffic is excluded: it never compresses, and folding it in would
// dilute the ratio toward 1 on weight-heavy networks.
func (c CompressionStats) Ratio() float64 {
	w := c.Wire.FeatureMap()
	if w == 0 {
		return 1
	}
	return float64(c.Logical.FeatureMap()) / float64(w)
}

// Add accumulates another run's codec ledger (cluster/scheduler
// aggregation across per-request runs).
func (c *CompressionStats) Add(o CompressionStats) {
	if c.Codec == "" {
		c.Codec = o.Codec
	}
	c.Logical.Add(o.Logical) // scmvet:ok accounting aggregation of per-run codec ledgers, no new bytes
	c.Wire.Add(o.Wire)       // scmvet:ok accounting aggregation of per-run codec ledgers, no new bytes
	c.SavedBytes += o.SavedBytes
	c.EncodeCycles += o.EncodeCycles
	c.DecodeCycles += o.DecodeCycles
}

// FmapTrafficBytes is the run's off-chip feature-map traffic — the
// paper's headline metric.
func (r RunStats) FmapTrafficBytes() int64 { return r.Traffic.FeatureMap() }

// TotalTrafficBytes includes weights.
func (r RunStats) TotalTrafficBytes() int64 { return r.Traffic.Total() }

// LatencySeconds is the batch latency at the configured clock.
func (r RunStats) LatencySeconds() float64 {
	return float64(r.TotalCycles) / (r.ClockMHz * 1e6)
}

// Throughput is images per second.
func (r RunStats) Throughput() float64 {
	if r.TotalCycles == 0 {
		return 0
	}
	return float64(r.Batch) / r.LatencySeconds()
}

// GOPS is billions of operations per second, counting each MAC as two
// operations (the convention of the paper's comparison class).
func (r RunStats) GOPS() float64 {
	if r.TotalCycles == 0 {
		return 0
	}
	return 2 * float64(r.MACs) / r.LatencySeconds() / 1e9
}

// StageTraffic aggregates feature-map traffic by stage label, in the
// order the stages first appear.
func (r RunStats) StageTraffic() ([]string, map[string]int64) {
	var order []string
	agg := make(map[string]int64)
	for _, l := range r.Layers {
		stage := l.Stage
		if stage == "" {
			stage = "(none)"
		}
		if _, ok := agg[stage]; !ok {
			order = append(order, stage)
		}
		agg[stage] += l.FmapBytes()
	}
	return order, agg
}

// TrafficReductionVs returns the fractional feature-map traffic
// reduction of r relative to a baseline run (positive = r moves fewer
// bytes).
func (r RunStats) TrafficReductionVs(base RunStats) float64 {
	b := base.FmapTrafficBytes()
	if b == 0 {
		return 0
	}
	return 1 - float64(r.FmapTrafficBytes())/float64(b)
}

// SpeedupVs returns r's throughput relative to a baseline run.
func (r RunStats) SpeedupVs(base RunStats) float64 {
	bt := base.Throughput()
	if bt == 0 {
		return 0
	}
	return r.Throughput() / bt
}

// Table is a small render helper for experiment output: markdown for
// EXPERIMENTS.md, CSV for downstream plotting.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable builds a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends one row. Short rows are padded so ragged callers cannot
// corrupt the rendering.
func (t *Table) Add(cells ...string) {
	for len(cells) < len(t.Header) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "### %s\n\n", t.Title)
	}
	sb.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	sb.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row[:len(t.Header)], " | ") + " |\n")
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (cells containing
// commas or quotes are quoted).
func (t *Table) CSV() string {
	var sb strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(esc(c))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row[:len(t.Header)])
	}
	return sb.String()
}

// Chart renders a horizontal ASCII bar chart with one bar per label,
// scaled to the maximum value — sweep output for terminals (scm-exp
// -chart, examples/buffer_sweep).
func Chart(title string, labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 40
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title + "\n")
	}
	maxVal := 0.0
	maxLabel := 0
	for i, v := range values {
		if v > maxVal {
			maxVal = v
		}
		if i < len(labels) && len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		bars := 0
		if maxVal > 0 && v > 0 {
			bars = int(v/maxVal*float64(width) + 0.5)
		}
		fmt.Fprintf(&sb, "%-*s |%-*s| %.3g\n", maxLabel, label, width, strings.Repeat("#", bars), v)
	}
	return sb.String()
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// F2 formats a float with two decimals.
func F2(f float64) string { return fmt.Sprintf("%.2f", f) }

// MB formats a byte count in binary megabytes with two decimals.
func MB(b int64) string { return fmt.Sprintf("%.2f", float64(b)/(1<<20)) }
