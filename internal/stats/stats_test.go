package stats

import (
	"strings"
	"testing"

	"shortcutmining/internal/dram"
)

func sampleRun() RunStats {
	var tr dram.Traffic
	tr[dram.ClassIFMRead] = 1000
	tr[dram.ClassOFMWrite] = 500
	tr[dram.ClassWeightRead] = 2000
	tr[dram.ClassShortcutRead] = 100
	return RunStats{
		Network: "net", Strategy: "baseline", Batch: 2, ClockMHz: 200,
		Traffic: tr, TotalCycles: 4_000_000, MACs: 1_000_000_000,
	}
}

func TestFmapVsTotalTraffic(t *testing.T) {
	r := sampleRun()
	if got := r.FmapTrafficBytes(); got != 1600 {
		t.Errorf("fmap traffic = %d, want 1600", got)
	}
	if got := r.TotalTrafficBytes(); got != 3600 {
		t.Errorf("total traffic = %d, want 3600", got)
	}
}

func TestLatencyThroughputGOPS(t *testing.T) {
	r := sampleRun()
	// 4M cycles at 200 MHz = 20 ms for a batch of 2 → 100 img/s.
	if got := r.LatencySeconds(); got != 0.02 {
		t.Errorf("latency = %g", got)
	}
	if got := r.Throughput(); got != 100 {
		t.Errorf("throughput = %g", got)
	}
	// 2*1e9 ops / 0.02 s = 1e11 ops/s = 100 GOPS.
	if got := r.GOPS(); got != 100 {
		t.Errorf("gops = %g", got)
	}
	var zero RunStats
	if zero.Throughput() != 0 || zero.GOPS() != 0 {
		t.Error("zero-cycle run should report 0")
	}
}

func TestReductionAndSpeedup(t *testing.T) {
	base := sampleRun()
	improved := sampleRun()
	improved.Traffic[dram.ClassIFMRead] = 200
	improved.Traffic[dram.ClassShortcutRead] = 0
	improved.TotalCycles = 2_000_000
	// fmap: base 1600, improved 700 → reduction 56.25%.
	if got := improved.TrafficReductionVs(base); got != 1-700.0/1600 {
		t.Errorf("reduction = %g", got)
	}
	if got := improved.SpeedupVs(base); got != 2 {
		t.Errorf("speedup = %g", got)
	}
	var zero RunStats
	if improved.TrafficReductionVs(zero) != 0 || improved.SpeedupVs(zero) != 0 {
		t.Error("degenerate baseline should report 0")
	}
}

func TestLayerStatsFmapBytes(t *testing.T) {
	var l LayerStats
	l.Traffic[dram.ClassIFMRead] = 10
	l.Traffic[dram.ClassWeightRead] = 100
	l.Traffic[dram.ClassSpillWrite] = 5
	if got := l.FmapBytes(); got != 15 {
		t.Errorf("fmap bytes = %d", got)
	}
}

func TestStageTraffic(t *testing.T) {
	r := RunStats{Layers: []LayerStats{
		{Name: "a", Stage: "stem"},
		{Name: "b", Stage: "layer1"},
		{Name: "c", Stage: "layer1"},
		{Name: "d"},
	}}
	r.Layers[0].Traffic[dram.ClassIFMRead] = 10
	r.Layers[1].Traffic[dram.ClassIFMRead] = 20
	r.Layers[2].Traffic[dram.ClassOFMWrite] = 30
	r.Layers[3].Traffic[dram.ClassOFMWrite] = 40
	order, agg := r.StageTraffic()
	if len(order) != 3 || order[0] != "stem" || order[1] != "layer1" || order[2] != "(none)" {
		t.Errorf("order = %v", order)
	}
	if agg["stem"] != 10 || agg["layer1"] != 50 || agg["(none)"] != 40 {
		t.Errorf("agg = %v", agg)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Demo", "net", "traffic")
	tb.Add("resnet34", "42")
	tb.Add("short") // padded
	md := tb.Markdown()
	for _, want := range []string{"### Demo", "| net | traffic |", "| --- | --- |", "| resnet34 | 42 |", "| short |  |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	// No title → no heading line.
	tb2 := NewTable("", "a")
	tb2.Add("1")
	if strings.Contains(tb2.Markdown(), "###") {
		t.Error("untitled table rendered a heading")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.Add(`quote"inside`, "with,comma")
	csv := tb.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != `"quote""inside","with,comma"` {
		t.Errorf("row = %q", lines[1])
	}
}

func TestFormatters(t *testing.T) {
	if got := Pct(0.5333); got != "53.3%" {
		t.Errorf("Pct = %q", got)
	}
	if got := F2(1.927); got != "1.93" {
		t.Errorf("F2 = %q", got)
	}
	if got := MB(3 << 20); got != "3.00" {
		t.Errorf("MB = %q", got)
	}
}

func TestChart(t *testing.T) {
	out := Chart("demo", []string{"a", "bb"}, []float64{1, 2}, 10)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 || lines[0] != "demo" {
		t.Fatalf("chart = %q", out)
	}
	if !strings.Contains(lines[2], "##########") {
		t.Errorf("max bar not full width: %q", lines[2])
	}
	if !strings.Contains(lines[1], "#####") || strings.Contains(lines[1], "######") {
		t.Errorf("half bar wrong: %q", lines[1])
	}
	// Zero and negative values render as empty bars, no panic.
	out = Chart("", []string{"z"}, []float64{0}, 5)
	if strings.Contains(out, "#") {
		t.Errorf("zero value drew bars: %q", out)
	}
	if got := Chart("", nil, []float64{3}, 0); !strings.Contains(got, "#") {
		t.Errorf("default width broken: %q", got)
	}
}
