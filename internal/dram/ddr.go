package dram

import "fmt"

// DDRTimings models one DDR channel at the transaction level, used to
// derive the *effective* bandwidth the simulator's Config assumes. The
// feature-map channel of the calibrated platform moves short, strided
// bursts (row stripes of partially retained maps, halo re-reads) with
// poor row-buffer locality, which is why its effective bandwidth sits
// far below the pin rate; the weight channel streams long sequential
// bursts and runs near peak.
type DDRTimings struct {
	TransferMTs float64 // mega-transfers per second (e.g. 1600 for DDR3-1600)
	BusBytes    int     // data bus width in bytes (8 for a 64-bit SODIMM)
	// Row activate + precharge + CAS latency for a row-buffer miss,
	// and CAS-only latency for a hit, in nanoseconds.
	RowMissNs float64
	RowHitNs  float64
}

// DDR3_1600 returns the timings of the DDR3-1600 SODIMMs on a
// VC709-class board: 12.8 GB/s pin bandwidth, ~45 ns row-miss penalty
// (tRP+tRCD+CL ≈ 13.75+13.75+13.75), ~14 ns CAS on a hit.
func DDR3_1600() DDRTimings {
	return DDRTimings{TransferMTs: 1600, BusBytes: 8, RowMissNs: 45, RowHitNs: 13.75}
}

// Validate checks the timings.
func (t DDRTimings) Validate() error {
	if t.TransferMTs <= 0 || t.BusBytes <= 0 {
		return fmt.Errorf("dram: bad DDR geometry %+v", t)
	}
	if t.RowMissNs < t.RowHitNs || t.RowHitNs < 0 {
		return fmt.Errorf("dram: inconsistent DDR latencies %+v", t)
	}
	return nil
}

// PeakGBps is the pin bandwidth.
func (t DDRTimings) PeakGBps() float64 {
	return t.TransferMTs * 1e6 * float64(t.BusBytes) / 1e9
}

// EffectiveGBps derives the sustained bandwidth for an access stream
// of the given mean transaction size and row-buffer hit rate: each
// transaction pays its data time plus the (hit- or miss-weighted)
// access latency, serialized — a deliberately pessimistic single-rank
// model matching a simple FPGA memory controller without deep
// reordering.
func (t DDRTimings) EffectiveGBps(burstBytes int64, rowHitRate float64) (float64, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	if burstBytes <= 0 {
		return 0, fmt.Errorf("dram: non-positive burst %d", burstBytes)
	}
	if rowHitRate < 0 || rowHitRate > 1 {
		return 0, fmt.Errorf("dram: hit rate %g out of [0,1]", rowHitRate)
	}
	dataNs := float64(burstBytes) / (t.TransferMTs * 1e6 * float64(t.BusBytes)) * 1e9
	latNs := rowHitRate*t.RowHitNs + (1-rowHitRate)*t.RowMissNs
	return float64(burstBytes) / (dataNs + latNs), nil
}
