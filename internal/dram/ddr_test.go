package dram

import (
	"testing"
	"testing/quick"
)

func TestDDR3PeakBandwidth(t *testing.T) {
	if got := DDR3_1600().PeakGBps(); got != 12.8 {
		t.Errorf("peak = %g GB/s, want 12.8", got)
	}
}

func TestDDRValidate(t *testing.T) {
	if err := DDR3_1600().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []DDRTimings{
		{TransferMTs: 0, BusBytes: 8, RowMissNs: 45, RowHitNs: 14},
		{TransferMTs: 1600, BusBytes: 0, RowMissNs: 45, RowHitNs: 14},
		{TransferMTs: 1600, BusBytes: 8, RowMissNs: 10, RowHitNs: 14}, // miss < hit
		{TransferMTs: 1600, BusBytes: 8, RowMissNs: 45, RowHitNs: -1},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad timings %d accepted", i)
		}
	}
}

func TestEffectiveBandwidthRegimes(t *testing.T) {
	ddr := DDR3_1600()
	// Long sequential bursts with high locality approach the pin rate
	// — the weight channel regime.
	seq, err := ddr.EffectiveGBps(4096, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if seq < 0.90*ddr.PeakGBps() {
		t.Errorf("sequential regime %g GB/s, want ≥90%% of peak", seq)
	}
	// Short strided bursts with poor locality collapse to the order of
	// 1 GB/s — the calibrated feature-map channel (Config.DRAM).
	strided, err := ddr.EffectiveGBps(48, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if strided < 0.7 || strided > 1.6 {
		t.Errorf("strided regime %g GB/s, want ≈1 GB/s", strided)
	}
	if strided >= seq {
		t.Error("strided regime should be far slower than sequential")
	}
}

func TestEffectiveBandwidthErrors(t *testing.T) {
	ddr := DDR3_1600()
	if _, err := ddr.EffectiveGBps(0, 0.5); err == nil {
		t.Error("zero burst accepted")
	}
	if _, err := ddr.EffectiveGBps(64, -0.1); err == nil {
		t.Error("negative hit rate accepted")
	}
	if _, err := ddr.EffectiveGBps(64, 1.1); err == nil {
		t.Error("hit rate > 1 accepted")
	}
	var bad DDRTimings
	if _, err := bad.EffectiveGBps(64, 0.5); err == nil {
		t.Error("invalid timings accepted")
	}
}

func TestQuickEffectiveBandwidthMonotone(t *testing.T) {
	ddr := DDR3_1600()
	// Monotone in burst size and in hit rate, always below peak.
	f := func(b1, b2 uint16, h1, h2 uint8) bool {
		s1, s2 := int64(b1%4096)+16, int64(b2%4096)+16
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		r1, r2 := float64(h1%101)/100, float64(h2%101)/100
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		a, err := ddr.EffectiveGBps(s1, r1)
		if err != nil {
			return false
		}
		b, err := ddr.EffectiveGBps(s2, r1)
		if err != nil {
			return false
		}
		c, err := ddr.EffectiveGBps(s1, r2)
		if err != nil {
			return false
		}
		return a <= b && a <= c && b <= ddr.PeakGBps() && a > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
