package dram

import (
	"testing"
	"testing/quick"
)

func newTestChannel(t *testing.T) *Channel {
	t.Helper()
	ch, err := NewChannel(Config{BandwidthGBps: 12.8, BurstBytes: 64, EnergyPJForB: 160})
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestConfigValidate(t *testing.T) {
	good := Config{BandwidthGBps: 10, BurstBytes: 64, EnergyPJForB: 100}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	bad := []Config{
		{BandwidthGBps: 0, BurstBytes: 64},
		{BandwidthGBps: 10, BurstBytes: 0},
		{BandwidthGBps: 10, BurstBytes: 64, EnergyPJForB: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
		if _, err := NewChannel(c); err == nil {
			t.Errorf("NewChannel accepted bad config %d", i)
		}
	}
}

func TestTransferBurstRounding(t *testing.T) {
	ch := newTestChannel(t)
	if moved := ch.Transfer(ClassIFMRead, 100); moved != 128 {
		t.Errorf("moved = %d, want 128", moved)
	}
	if moved := ch.Transfer(ClassIFMRead, 64); moved != 64 {
		t.Errorf("aligned moved = %d, want 64", moved)
	}
	tr := ch.Traffic()
	if tr[ClassIFMRead] != 192 {
		t.Errorf("tallied = %d, want 192", tr[ClassIFMRead])
	}
	raw := ch.RawTraffic()
	if raw[ClassIFMRead] != 164 {
		t.Errorf("raw = %d, want 164", raw[ClassIFMRead])
	}
}

func TestTransferIgnoresNonPositive(t *testing.T) {
	ch := newTestChannel(t)
	if moved := ch.Transfer(ClassOFMWrite, 0); moved != 0 {
		t.Errorf("zero transfer moved %d", moved)
	}
	if moved := ch.Transfer(ClassOFMWrite, -5); moved != 0 {
		t.Errorf("negative transfer moved %d", moved)
	}
	if ch.Traffic().Total() != 0 {
		t.Error("counters changed")
	}
}

func TestTrafficClassSlicing(t *testing.T) {
	ch := newTestChannel(t)
	ch.Transfer(ClassIFMRead, 640)
	ch.Transfer(ClassOFMWrite, 640)
	ch.Transfer(ClassWeightRead, 1280)
	ch.Transfer(ClassShortcutRead, 64)
	ch.Transfer(ClassSpillWrite, 64)
	ch.Transfer(ClassSpillRead, 64)
	tr := ch.Traffic()
	if got := tr.Total(); got != 640+640+1280+64*3 {
		t.Errorf("total = %d", got)
	}
	if got := tr.FeatureMap(); got != 640+640+64*3 {
		t.Errorf("feature map = %d", got)
	}
}

func TestClassPredicatesAndStrings(t *testing.T) {
	if ClassWeightRead.IsFeatureMap() {
		t.Error("weights counted as feature map")
	}
	for _, c := range Classes() {
		if c != ClassWeightRead && !c.IsFeatureMap() {
			t.Errorf("%v should be feature map", c)
		}
		if c.String() == "" {
			t.Errorf("empty string for class %d", int(c))
		}
	}
	if len(Classes()) != NumClasses {
		t.Errorf("Classes() length %d != %d", len(Classes()), NumClasses)
	}
	want := map[Class]string{
		ClassIFMRead: "ifm-read", ClassOFMWrite: "ofm-write",
		ClassWeightRead: "weight-read", ClassShortcutRead: "shortcut-read",
		ClassSpillWrite: "spill-write", ClassSpillRead: "spill-read",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), s)
		}
	}
}

func TestTrafficAdd(t *testing.T) {
	var a, b Traffic
	a[ClassIFMRead] = 100
	b[ClassIFMRead] = 50
	b[ClassOFMWrite] = 25
	a.Add(b)
	if a[ClassIFMRead] != 150 || a[ClassOFMWrite] != 25 {
		t.Errorf("Add result %v", a)
	}
}

func TestCyclesAt(t *testing.T) {
	ch := newTestChannel(t) // 12.8 GB/s
	// At 200 MHz: 12.8e9/200e6 = 64 bytes/cycle.
	if got := ch.CyclesAt(6400, 200); got != 100 {
		t.Errorf("cycles = %d, want 100", got)
	}
	if got := ch.CyclesAt(6401, 200); got != 101 {
		t.Errorf("cycles = %d, want 101 (round up)", got)
	}
	if got := ch.CyclesAt(0, 200); got != 0 {
		t.Errorf("cycles for 0 bytes = %d", got)
	}
}

func TestEnergy(t *testing.T) {
	ch := newTestChannel(t)
	ch.Transfer(ClassIFMRead, 640)
	if got := ch.EnergyPJ(); got != 640*160 {
		t.Errorf("energy = %g", got)
	}
}

func TestReset(t *testing.T) {
	ch := newTestChannel(t)
	ch.Transfer(ClassIFMRead, 640)
	ch.Reset()
	if ch.Traffic().Total() != 0 || ch.RawTraffic().Total() != 0 {
		t.Error("reset did not clear counters")
	}
	if ch.Config().BandwidthGBps != 12.8 {
		t.Error("reset clobbered config")
	}
}

func TestQuickRoundingProperties(t *testing.T) {
	ch := newTestChannel(t)
	f := func(n uint32) bool {
		bytes := int64(n%10_000_000) + 1
		before := ch.Traffic()[ClassIFMRead]
		moved := ch.Transfer(ClassIFMRead, bytes)
		// Rounded up, within one burst, multiple of the burst.
		if moved < bytes || moved-bytes >= 64 || moved%64 != 0 {
			return false
		}
		return ch.Traffic()[ClassIFMRead] == before+moved
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCyclesMonotone(t *testing.T) {
	ch := newTestChannel(t)
	f := func(a, b uint32) bool {
		x, y := int64(a%1_000_000), int64(b%1_000_000)
		if x > y {
			x, y = y, x
		}
		return ch.CyclesAt(x, 200) <= ch.CyclesAt(y, 200)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChannelObserver(t *testing.T) {
	ch := newTestChannel(t)
	var gotClass Class
	var gotPayload, gotMoved int64
	calls := 0
	ch.SetObserver(func(c Class, payload, moved int64) {
		gotClass, gotPayload, gotMoved = c, payload, moved
		calls++
	})
	ch.Transfer(ClassSpillWrite, 100)
	if calls != 1 {
		t.Fatalf("observer calls = %d", calls)
	}
	if gotClass != ClassSpillWrite || gotPayload != 100 || gotMoved != 128 {
		t.Errorf("observed (%v, %d, %d), want (spill-write, 100, 128)", gotClass, gotPayload, gotMoved)
	}
	// Detaching stops the callbacks without affecting tallies.
	ch.SetObserver(nil)
	ch.Transfer(ClassIFMRead, 64)
	if calls != 1 {
		t.Errorf("detached observer still called")
	}
	if ch.Traffic()[ClassIFMRead] != 64 {
		t.Error("tally lost after detach")
	}
}

func TestRecordRetry(t *testing.T) {
	ch := newTestChannel(t)
	ch.Transfer(ClassIFMRead, 1000)
	moved := ch.RecordRetry(ClassIFMRead, 1000)
	if moved != ch.round(1000) {
		t.Errorf("retry moved %d, want burst-rounded %d", moved, ch.round(1000))
	}
	if ch.RecordRetry(ClassIFMRead, 0) != 0 || ch.RecordRetry(ClassIFMRead, -5) != 0 {
		t.Error("empty retry must move nothing")
	}
	// Retries must not inflate the payload tallies.
	if got := ch.Traffic()[ClassIFMRead]; got != ch.round(1000) {
		t.Errorf("Traffic inflated by retry: %d", got)
	}
	if got := ch.RawTraffic()[ClassIFMRead]; got != 1000 {
		t.Errorf("RawTraffic inflated by retry: %d", got)
	}
	if got := ch.RetryTraffic()[ClassIFMRead]; got != moved {
		t.Errorf("RetryTraffic = %d, want %d", got, moved)
	}
	ch.Reset()
	if ch.RetryTraffic().Total() != 0 {
		t.Error("Reset must clear retry tally")
	}
}
