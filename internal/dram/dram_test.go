package dram

import (
	"testing"
	"testing/quick"
)

func newTestChannel(t *testing.T) *Channel {
	t.Helper()
	ch, err := NewChannel(Config{BandwidthGBps: 12.8, BurstBytes: 64, EnergyPJForB: 160})
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestConfigValidate(t *testing.T) {
	good := Config{BandwidthGBps: 10, BurstBytes: 64, EnergyPJForB: 100}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	bad := []Config{
		{BandwidthGBps: 0, BurstBytes: 64},
		{BandwidthGBps: 10, BurstBytes: 0},
		{BandwidthGBps: 10, BurstBytes: 64, EnergyPJForB: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
		if _, err := NewChannel(c); err == nil {
			t.Errorf("NewChannel accepted bad config %d", i)
		}
	}
}

func TestTransferBurstRounding(t *testing.T) {
	ch := newTestChannel(t)
	if moved := ch.Transfer(ClassIFMRead, 100); moved != 128 {
		t.Errorf("moved = %d, want 128", moved)
	}
	if moved := ch.Transfer(ClassIFMRead, 64); moved != 64 {
		t.Errorf("aligned moved = %d, want 64", moved)
	}
	tr := ch.Traffic()
	if tr[ClassIFMRead] != 192 {
		t.Errorf("tallied = %d, want 192", tr[ClassIFMRead])
	}
	raw := ch.RawTraffic()
	if raw[ClassIFMRead] != 164 {
		t.Errorf("raw = %d, want 164", raw[ClassIFMRead])
	}
}

func TestTransferIgnoresNonPositive(t *testing.T) {
	ch := newTestChannel(t)
	if moved := ch.Transfer(ClassOFMWrite, 0); moved != 0 {
		t.Errorf("zero transfer moved %d", moved)
	}
	if moved := ch.Transfer(ClassOFMWrite, -5); moved != 0 {
		t.Errorf("negative transfer moved %d", moved)
	}
	if ch.Traffic().Total() != 0 {
		t.Error("counters changed")
	}
}

func TestTrafficClassSlicing(t *testing.T) {
	ch := newTestChannel(t)
	ch.Transfer(ClassIFMRead, 640)
	ch.Transfer(ClassOFMWrite, 640)
	ch.Transfer(ClassWeightRead, 1280)
	ch.Transfer(ClassShortcutRead, 64)
	ch.Transfer(ClassSpillWrite, 64)
	ch.Transfer(ClassSpillRead, 64)
	tr := ch.Traffic()
	if got := tr.Total(); got != 640+640+1280+64*3 {
		t.Errorf("total = %d", got)
	}
	if got := tr.FeatureMap(); got != 640+640+64*3 {
		t.Errorf("feature map = %d", got)
	}
}

func TestClassPredicatesAndStrings(t *testing.T) {
	if ClassWeightRead.IsFeatureMap() {
		t.Error("weights counted as feature map")
	}
	if ClassWeightRead.Compressible() {
		t.Error("weights marked compressible")
	}
	for _, c := range Classes() {
		if c != ClassWeightRead && !c.IsFeatureMap() {
			t.Errorf("%v should be feature map", c)
		}
		// The compressible set is exactly the feature-map set: every
		// boundary-crossing activation tensor, never weights. Pinned
		// here so adding a class forces an explicit decision.
		if c.Compressible() != c.IsFeatureMap() {
			t.Errorf("%v: Compressible=%v but IsFeatureMap=%v", c, c.Compressible(), c.IsFeatureMap())
		}
		if Class(int(c)+NumClasses).IsFeatureMap() || Class(int(c)+NumClasses).Compressible() {
			t.Errorf("out-of-range class %d matched a predicate", int(c)+NumClasses)
		}
		if c.String() == "" {
			t.Errorf("empty string for class %d", int(c))
		}
	}
	if len(Classes()) != NumClasses {
		t.Errorf("Classes() length %d != %d", len(Classes()), NumClasses)
	}
	want := map[Class]string{
		ClassIFMRead: "ifm-read", ClassOFMWrite: "ofm-write",
		ClassWeightRead: "weight-read", ClassShortcutRead: "shortcut-read",
		ClassSpillWrite: "spill-write", ClassSpillRead: "spill-read",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), s)
		}
	}
}

func TestTrafficAdd(t *testing.T) {
	var a, b Traffic
	a[ClassIFMRead] = 100
	b[ClassIFMRead] = 50
	b[ClassOFMWrite] = 25
	a.Add(b)
	if a[ClassIFMRead] != 150 || a[ClassOFMWrite] != 25 {
		t.Errorf("Add result %v", a)
	}
}

func TestCyclesAt(t *testing.T) {
	ch := newTestChannel(t) // 12.8 GB/s
	// At 200 MHz: 12.8e9/200e6 = 64 bytes/cycle.
	if got := ch.CyclesAt(6400, 200); got != 100 {
		t.Errorf("cycles = %d, want 100", got)
	}
	if got := ch.CyclesAt(6401, 200); got != 101 {
		t.Errorf("cycles = %d, want 101 (round up)", got)
	}
	if got := ch.CyclesAt(0, 200); got != 0 {
		t.Errorf("cycles for 0 bytes = %d", got)
	}
}

func TestEnergy(t *testing.T) {
	ch := newTestChannel(t)
	ch.Transfer(ClassIFMRead, 640)
	if got := ch.EnergyPJ(); got != 640*160 {
		t.Errorf("energy = %g", got)
	}
}

func TestReset(t *testing.T) {
	ch := newTestChannel(t)
	ch.Transfer(ClassIFMRead, 640)
	ch.Reset()
	if ch.Traffic().Total() != 0 || ch.RawTraffic().Total() != 0 {
		t.Error("reset did not clear counters")
	}
	if ch.Config().BandwidthGBps != 12.8 {
		t.Error("reset clobbered config")
	}
}

func TestQuickRoundingProperties(t *testing.T) {
	ch := newTestChannel(t)
	f := func(n uint32) bool {
		bytes := int64(n%10_000_000) + 1
		before := ch.Traffic()[ClassIFMRead]
		moved := ch.Transfer(ClassIFMRead, bytes)
		// Rounded up, within one burst, multiple of the burst.
		if moved < bytes || moved-bytes >= 64 || moved%64 != 0 {
			return false
		}
		return ch.Traffic()[ClassIFMRead] == before+moved
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCyclesMonotone(t *testing.T) {
	ch := newTestChannel(t)
	f := func(a, b uint32) bool {
		x, y := int64(a%1_000_000), int64(b%1_000_000)
		if x > y {
			x, y = y, x
		}
		return ch.CyclesAt(x, 200) <= ch.CyclesAt(y, 200)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChannelObserver(t *testing.T) {
	ch := newTestChannel(t)
	var gotClass Class
	var gotPayload, gotMoved int64
	calls := 0
	ch.SetObserver(func(c Class, payload, moved int64) {
		gotClass, gotPayload, gotMoved = c, payload, moved
		calls++
	})
	ch.Transfer(ClassSpillWrite, 100)
	if calls != 1 {
		t.Fatalf("observer calls = %d", calls)
	}
	if gotClass != ClassSpillWrite || gotPayload != 100 || gotMoved != 128 {
		t.Errorf("observed (%v, %d, %d), want (spill-write, 100, 128)", gotClass, gotPayload, gotMoved)
	}
	// Detaching stops the callbacks without affecting tallies.
	ch.SetObserver(nil)
	ch.Transfer(ClassIFMRead, 64)
	if calls != 1 {
		t.Errorf("detached observer still called")
	}
	if ch.Traffic()[ClassIFMRead] != 64 {
		t.Error("tally lost after detach")
	}
}

func TestRecordRetry(t *testing.T) {
	ch := newTestChannel(t)
	ch.Transfer(ClassIFMRead, 1000)
	moved := ch.RecordRetry(ClassIFMRead, 1000)
	if moved != ch.round(1000) {
		t.Errorf("retry moved %d, want burst-rounded %d", moved, ch.round(1000))
	}
	if ch.RecordRetry(ClassIFMRead, 0) != 0 || ch.RecordRetry(ClassIFMRead, -5) != 0 {
		t.Error("empty retry must move nothing")
	}
	// Retries must not inflate the payload tallies.
	if got := ch.Traffic()[ClassIFMRead]; got != ch.round(1000) {
		t.Errorf("Traffic inflated by retry: %d", got)
	}
	if got := ch.RawTraffic()[ClassIFMRead]; got != 1000 {
		t.Errorf("RawTraffic inflated by retry: %d", got)
	}
	if got := ch.RetryTraffic()[ClassIFMRead]; got != moved {
		t.Errorf("RetryTraffic = %d, want %d", got, moved)
	}
	ch.Reset()
	if ch.RetryTraffic().Total() != 0 {
		t.Error("Reset must clear retry tally")
	}
}

// halver is a test compressor: wire = ceil(logical/2).
type halver struct{}

func (halver) WireBytes(c Class, logical int64) int64 { return (logical + 1) / 2 }

func TestCompressorTransfer(t *testing.T) {
	ch := newTestChannel(t)
	ch.SetCompressor(halver{})

	// Compressible class: 1000 logical -> 500 wire -> 512 on the bus.
	if moved := ch.Transfer(ClassOFMWrite, 1000); moved != 512 {
		t.Errorf("compressed moved = %d, want 512", moved)
	}
	if got := ch.Traffic()[ClassOFMWrite]; got != 512 {
		t.Errorf("traffic = %d, want 512", got)
	}
	if got := ch.RawTraffic()[ClassOFMWrite]; got != 500 {
		t.Errorf("raw = %d, want 500 (wire payload)", got)
	}
	if got := ch.LogicalTraffic()[ClassOFMWrite]; got != 1000 {
		t.Errorf("logical = %d, want 1000", got)
	}

	// Weights bypass the codec entirely.
	if moved := ch.Transfer(ClassWeightRead, 1000); moved != 1024 {
		t.Errorf("weight moved = %d, want 1024 (uncompressed)", moved)
	}
	if got := ch.LogicalTraffic()[ClassWeightRead]; got != 1000 {
		t.Errorf("weight logical = %d, want 1000", got)
	}

	// Retries re-move the *wire* bytes.
	if moved := ch.RecordRetry(ClassOFMWrite, 1000); moved != 512 {
		t.Errorf("retry moved = %d, want 512", moved)
	}

	// Removing the codec restores passthrough.
	ch.SetCompressor(nil)
	if moved := ch.Transfer(ClassOFMWrite, 1000); moved != 1024 {
		t.Errorf("post-detach moved = %d, want 1024", moved)
	}
}

func TestCompressorObserverSeesWireBytes(t *testing.T) {
	ch := newTestChannel(t)
	ch.SetCompressor(halver{})
	var gotPayload, gotMoved int64
	ch.SetObserver(func(c Class, payload, moved int64) { gotPayload, gotMoved = payload, moved })
	ch.Transfer(ClassIFMRead, 1000)
	if gotPayload != 500 || gotMoved != 512 {
		t.Errorf("observer saw (%d, %d), want wire view (500, 512)", gotPayload, gotMoved)
	}
}

func TestWirePayload(t *testing.T) {
	ch := newTestChannel(t)
	// Without a codec WirePayload degenerates to Round.
	if got, want := ch.WirePayload(ClassSpillWrite, 100), ch.Round(100); got != want {
		t.Errorf("uncompressed WirePayload = %d, want %d", got, want)
	}
	ch.SetCompressor(halver{})
	if got := ch.WirePayload(ClassSpillWrite, 1000); got != 512 {
		t.Errorf("WirePayload = %d, want 512", got)
	}
	if got := ch.WirePayload(ClassWeightRead, 1000); got != 1024 {
		t.Errorf("weight WirePayload = %d, want 1024", got)
	}
	if ch.WirePayload(ClassSpillWrite, 0) != 0 || ch.WirePayload(ClassSpillWrite, -3) != 0 {
		t.Error("non-positive WirePayload must be 0")
	}
	// WirePayload records nothing.
	if ch.Traffic().Total() != 0 || ch.LogicalTraffic().Total() != 0 {
		t.Error("WirePayload recorded a transfer")
	}
}

func TestLogicalEqualsRawWithoutCompressor(t *testing.T) {
	ch := newTestChannel(t)
	ch.Transfer(ClassIFMRead, 100)
	ch.Transfer(ClassOFMWrite, 9999)
	ch.Transfer(ClassWeightRead, 12345)
	if ch.LogicalTraffic() != ch.RawTraffic() {
		t.Errorf("logical %v != raw %v without a codec", ch.LogicalTraffic(), ch.RawTraffic())
	}
}

func TestRestoreTrafficIncludesLogical(t *testing.T) {
	ch := newTestChannel(t)
	ch.SetCompressor(halver{})
	ch.Transfer(ClassOFMWrite, 1000)
	tr, raw, logical := ch.Traffic(), ch.RawTraffic(), ch.LogicalTraffic()
	ch2 := newTestChannel(t)
	ch2.SetCompressor(halver{})
	ch2.RestoreTraffic(tr, raw, logical)
	if ch2.Traffic() != tr || ch2.RawTraffic() != raw || ch2.LogicalTraffic() != logical {
		t.Error("RestoreTraffic did not carry all three tallies")
	}
	ch.Reset()
	if ch.LogicalTraffic().Total() != 0 {
		t.Error("Reset must clear the logical tally")
	}
}
