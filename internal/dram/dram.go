// Package dram models the off-chip memory channel of the accelerator:
// a sustained-bandwidth pipe with burst-granular transfers, per-class
// byte accounting, and access energy. The paper's headline metric —
// off-chip feature-map traffic — is read directly from this package's
// counters.
package dram

import "fmt"

// Class labels the purpose of a transfer so experiments can slice
// traffic the way the paper does (feature maps vs. weights, shortcut
// re-fetches vs. ordinary input streaming, spills from partial
// retention).
type Class int

const (
	// ClassIFMRead is input-feature-map streaming into the input
	// buffer.
	ClassIFMRead Class = iota
	// ClassOFMWrite is output-feature-map write-back.
	ClassOFMWrite
	// ClassWeightRead is filter/parameter streaming.
	ClassWeightRead
	// ClassShortcutRead is the re-fetch of a shortcut operand at an
	// element-wise add or concat that could not be served on chip.
	ClassShortcutRead
	// ClassSpillWrite is the overflow store of a partially retained
	// feature map (procedure P5).
	ClassSpillWrite
	// ClassSpillRead is the reload of previously spilled bytes.
	ClassSpillRead
	// ClassInterchip is feature-map / pinned-shortcut bytes handed off
	// across a chip-to-chip interconnect link when a sharded scenario
	// crosses a placement boundary (internal/cluster).
	ClassInterchip

	// NumClasses is the number of traffic classes.
	NumClasses int = iota
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassIFMRead:
		return "ifm-read"
	case ClassOFMWrite:
		return "ofm-write"
	case ClassWeightRead:
		return "weight-read"
	case ClassShortcutRead:
		return "shortcut-read"
	case ClassSpillWrite:
		return "spill-write"
	case ClassSpillRead:
		return "spill-read"
	case ClassInterchip:
		return "interchip"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// IsFeatureMap reports whether the class counts toward the paper's
// "off-chip feature map traffic" metric. The set is spelled out rather
// than derived from != ClassWeightRead so that adding a class forces a
// decision here: IFM/OFM streaming, shortcut re-fetches, P5 spills, and
// interchip handoffs (which carry feature maps and pinned shortcut
// state) all count; weights do not.
func (c Class) IsFeatureMap() bool {
	switch c {
	case ClassIFMRead, ClassOFMWrite, ClassShortcutRead,
		ClassSpillWrite, ClassSpillRead, ClassInterchip:
		return true
	}
	return false
}

// Compressible reports whether transfers of this class are eligible
// for interlayer feature-map compression. Feature-map classes qualify:
// activations are sparse and low-precision, so boundary codecs (ZVC,
// fixed-ratio) apply to IFM/OFM streaming, shortcut re-fetches, P5
// spills, and interchip handoffs. Weights are explicitly excluded —
// they are read-only, preloaded, and compressed offline if at all, so
// the interlayer codec never sees them.
func (c Class) Compressible() bool {
	switch c {
	case ClassIFMRead, ClassOFMWrite, ClassShortcutRead,
		ClassSpillWrite, ClassSpillRead, ClassInterchip:
		return true
	}
	return false
}

// Classes lists all classes in declaration order.
func Classes() []Class {
	out := make([]Class, NumClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// Config describes the channel.
type Config struct {
	BandwidthGBps float64 // sustained bandwidth, GB/s (1e9 bytes)
	BurstBytes    int     // transaction granularity; transfers round up
	EnergyPJForB  float64 // access energy per byte, picojoules
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BandwidthGBps <= 0 {
		return fmt.Errorf("dram: bandwidth must be positive, got %g", c.BandwidthGBps)
	}
	if c.BurstBytes <= 0 {
		return fmt.Errorf("dram: burst must be positive, got %d", c.BurstBytes)
	}
	if c.EnergyPJForB < 0 {
		return fmt.Errorf("dram: negative energy %g", c.EnergyPJForB)
	}
	return nil
}

// Traffic is a per-class byte tally. Bytes are burst-rounded, i.e.
// they measure what the bus actually moves.
type Traffic [NumClasses]int64

// Total sums every class.
func (t Traffic) Total() int64 {
	var sum int64
	for _, b := range t {
		sum += b
	}
	return sum
}

// FeatureMap sums the classes counted as feature-map traffic.
func (t Traffic) FeatureMap() int64 {
	var sum int64
	for c, b := range t {
		if Class(c).IsFeatureMap() {
			sum += b
		}
	}
	return sum
}

// Add accumulates another tally.
func (t *Traffic) Add(o Traffic) {
	for c := range t {
		t[c] += o[c]
	}
}

// Compressor shrinks the wire payload of compressible transfer
// classes. Implementations must be deterministic pure functions of
// (class, logical size); internal/compress provides the codec models.
// The interface lives here so the channel can apply compression at the
// transfer boundary without importing the codec package.
type Compressor interface {
	// WireBytes returns the post-codec payload for a logical transfer
	// of the given class. Must return a value in [1, logical] for
	// logical > 0 and must not be called for logical <= 0.
	WireBytes(c Class, logical int64) int64
}

// Channel is one accelerator's DRAM interface. Like the bank pool it
// is single-threaded by design.
type Channel struct {
	cfg      Config
	traffic  Traffic
	raw      Traffic // pre-rounding wire payload bytes
	logical  Traffic // requested bytes before compression
	retry    Traffic // bytes re-moved by failed-transfer retries
	comp     Compressor
	observer func(c Class, payload, moved int64)
}

// NewChannel builds a channel.
func NewChannel(cfg Config) (*Channel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Channel{cfg: cfg}, nil
}

// Config returns the channel configuration.
func (ch *Channel) Config() Config { return ch.cfg }

// round applies burst granularity.
func (ch *Channel) round(bytes int64) int64 {
	b := int64(ch.cfg.BurstBytes)
	return (bytes + b - 1) / b * b
}

// Round applies the channel's burst granularity to a byte count
// without recording a transfer — for callers (scheduler suspend/resume
// accounting) that tally traffic in their own ledger.
func (ch *Channel) Round(bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	return ch.round(bytes)
}

// SetCompressor installs (or, with nil, removes) the interlayer codec.
// Subsequent transfers of Compressible classes move the compressed
// payload on the bus while the logical tally keeps the requested
// bytes; non-compressible classes are unaffected. Without a compressor
// logical and raw tallies are identical.
func (ch *Channel) SetCompressor(comp Compressor) { ch.comp = comp }

// wire maps a logical payload to what actually crosses the bus.
func (ch *Channel) wire(c Class, bytes int64) int64 {
	if ch.comp == nil || !c.Compressible() {
		return bytes
	}
	return ch.comp.WireBytes(c, bytes)
}

// SetObserver installs a per-transfer callback receiving the class,
// the payload bytes requested, and the burst-rounded bytes moved. A
// nil observer (the default) costs one predictable branch per
// transfer; the metrics layer uses this hook for burst-size and
// per-class traffic instrumentation.
func (ch *Channel) SetObserver(o func(c Class, payload, moved int64)) {
	ch.observer = o
}

// Transfer records a transfer of the given class and returns the
// burst-rounded byte count actually moved. Zero or negative sizes are
// ignored (and return 0), which keeps call sites free of emptiness
// checks when a spill or refill happens to be empty.
func (ch *Channel) Transfer(c Class, bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	wire := ch.wire(c, bytes)
	moved := ch.round(wire)
	ch.traffic[c] += moved
	ch.raw[c] += wire
	ch.logical[c] += bytes
	if ch.observer != nil {
		ch.observer(c, wire, moved)
	}
	return moved
}

// WirePayload returns the burst-rounded bytes a transfer of the given
// class and logical size would move, applying the installed codec,
// without recording it — the compression-aware counterpart of Round
// for callers (scheduler suspend/resume, cluster handoffs) that tally
// traffic in their own ledger.
func (ch *Channel) WirePayload(c Class, bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	return ch.round(ch.wire(c, bytes))
}

// RecordRetry tallies the bytes of a failed-and-reissued transfer
// attempt. Retries occupy the bus but deliver no new payload, so they
// are kept out of Traffic — the paper's headline traffic metric counts
// each byte once no matter how many attempts it took — and surfaced
// separately via RetryTraffic.
func (ch *Channel) RecordRetry(c Class, bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	moved := ch.round(ch.wire(c, bytes))
	ch.retry[c] += moved
	return moved
}

// RetryTraffic returns the burst-rounded bytes re-moved by DMA
// retries, by class.
func (ch *Channel) RetryTraffic() Traffic { return ch.retry }

// Traffic returns the burst-rounded tally so far.
func (ch *Channel) Traffic() Traffic { return ch.traffic }

// RawTraffic returns the wire payload (post-codec, pre-rounding) tally
// so far. Without a compressor it equals LogicalTraffic.
func (ch *Channel) RawTraffic() Traffic { return ch.raw }

// LogicalTraffic returns the requested (pre-compression) byte tally so
// far. The per-class gap to RawTraffic is exactly what the codec saved.
func (ch *Channel) LogicalTraffic() Traffic { return ch.logical }

// Reset clears the counters (the configuration and codec are retained).
func (ch *Channel) Reset() {
	ch.traffic = Traffic{}
	ch.raw = Traffic{}
	ch.logical = Traffic{}
	ch.retry = Traffic{}
}

// RestoreTraffic overwrites the burst-rounded, wire-payload, and
// logical tallies — the checkpoint/restore seam. A channel rebuilt
// from a mid-run snapshot continues the original tally so the final
// traffic ledger is bit-identical to an uninterrupted run. Retry
// traffic is deliberately absent: snapshots are only taken of
// fault-free runs.
func (ch *Channel) RestoreTraffic(traffic, raw, logical Traffic) {
	ch.traffic = traffic
	ch.raw = raw
	ch.logical = logical
}

// CyclesAt converts a byte count into channel-occupancy cycles at the
// given accelerator clock. Partial cycles round up.
func (ch *Channel) CyclesAt(bytes int64, clockMHz float64) int64 {
	if bytes <= 0 {
		return 0
	}
	bytesPerCycle := ch.cfg.BandwidthGBps * 1e9 / (clockMHz * 1e6)
	cycles := float64(bytes) / bytesPerCycle
	n := int64(cycles)
	if float64(n) < cycles {
		n++
	}
	return n
}

// EnergyPJ returns the access energy of the tallied traffic.
func (ch *Channel) EnergyPJ() float64 {
	return float64(ch.traffic.Total()) * ch.cfg.EnergyPJForB
}
