// Package dram models the off-chip memory channel of the accelerator:
// a sustained-bandwidth pipe with burst-granular transfers, per-class
// byte accounting, and access energy. The paper's headline metric —
// off-chip feature-map traffic — is read directly from this package's
// counters.
package dram

import "fmt"

// Class labels the purpose of a transfer so experiments can slice
// traffic the way the paper does (feature maps vs. weights, shortcut
// re-fetches vs. ordinary input streaming, spills from partial
// retention).
type Class int

const (
	// ClassIFMRead is input-feature-map streaming into the input
	// buffer.
	ClassIFMRead Class = iota
	// ClassOFMWrite is output-feature-map write-back.
	ClassOFMWrite
	// ClassWeightRead is filter/parameter streaming.
	ClassWeightRead
	// ClassShortcutRead is the re-fetch of a shortcut operand at an
	// element-wise add or concat that could not be served on chip.
	ClassShortcutRead
	// ClassSpillWrite is the overflow store of a partially retained
	// feature map (procedure P5).
	ClassSpillWrite
	// ClassSpillRead is the reload of previously spilled bytes.
	ClassSpillRead
	// ClassInterchip is feature-map / pinned-shortcut bytes handed off
	// across a chip-to-chip interconnect link when a sharded scenario
	// crosses a placement boundary (internal/cluster).
	ClassInterchip

	// NumClasses is the number of traffic classes.
	NumClasses int = iota
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassIFMRead:
		return "ifm-read"
	case ClassOFMWrite:
		return "ofm-write"
	case ClassWeightRead:
		return "weight-read"
	case ClassShortcutRead:
		return "shortcut-read"
	case ClassSpillWrite:
		return "spill-write"
	case ClassSpillRead:
		return "spill-read"
	case ClassInterchip:
		return "interchip"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// IsFeatureMap reports whether the class counts toward the paper's
// "off-chip feature map traffic" metric (everything except weights).
func (c Class) IsFeatureMap() bool { return c != ClassWeightRead }

// Classes lists all classes in declaration order.
func Classes() []Class {
	out := make([]Class, NumClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// Config describes the channel.
type Config struct {
	BandwidthGBps float64 // sustained bandwidth, GB/s (1e9 bytes)
	BurstBytes    int     // transaction granularity; transfers round up
	EnergyPJForB  float64 // access energy per byte, picojoules
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BandwidthGBps <= 0 {
		return fmt.Errorf("dram: bandwidth must be positive, got %g", c.BandwidthGBps)
	}
	if c.BurstBytes <= 0 {
		return fmt.Errorf("dram: burst must be positive, got %d", c.BurstBytes)
	}
	if c.EnergyPJForB < 0 {
		return fmt.Errorf("dram: negative energy %g", c.EnergyPJForB)
	}
	return nil
}

// Traffic is a per-class byte tally. Bytes are burst-rounded, i.e.
// they measure what the bus actually moves.
type Traffic [NumClasses]int64

// Total sums every class.
func (t Traffic) Total() int64 {
	var sum int64
	for _, b := range t {
		sum += b
	}
	return sum
}

// FeatureMap sums the classes counted as feature-map traffic.
func (t Traffic) FeatureMap() int64 {
	var sum int64
	for c, b := range t {
		if Class(c).IsFeatureMap() {
			sum += b
		}
	}
	return sum
}

// Add accumulates another tally.
func (t *Traffic) Add(o Traffic) {
	for c := range t {
		t[c] += o[c]
	}
}

// Channel is one accelerator's DRAM interface. Like the bank pool it
// is single-threaded by design.
type Channel struct {
	cfg      Config
	traffic  Traffic
	raw      Traffic // pre-rounding payload bytes
	retry    Traffic // bytes re-moved by failed-transfer retries
	observer func(c Class, payload, moved int64)
}

// NewChannel builds a channel.
func NewChannel(cfg Config) (*Channel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Channel{cfg: cfg}, nil
}

// Config returns the channel configuration.
func (ch *Channel) Config() Config { return ch.cfg }

// round applies burst granularity.
func (ch *Channel) round(bytes int64) int64 {
	b := int64(ch.cfg.BurstBytes)
	return (bytes + b - 1) / b * b
}

// Round applies the channel's burst granularity to a byte count
// without recording a transfer — for callers (scheduler suspend/resume
// accounting) that tally traffic in their own ledger.
func (ch *Channel) Round(bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	return ch.round(bytes)
}

// SetObserver installs a per-transfer callback receiving the class,
// the payload bytes requested, and the burst-rounded bytes moved. A
// nil observer (the default) costs one predictable branch per
// transfer; the metrics layer uses this hook for burst-size and
// per-class traffic instrumentation.
func (ch *Channel) SetObserver(o func(c Class, payload, moved int64)) {
	ch.observer = o
}

// Transfer records a transfer of the given class and returns the
// burst-rounded byte count actually moved. Zero or negative sizes are
// ignored (and return 0), which keeps call sites free of emptiness
// checks when a spill or refill happens to be empty.
func (ch *Channel) Transfer(c Class, bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	moved := ch.round(bytes)
	ch.traffic[c] += moved
	ch.raw[c] += bytes
	if ch.observer != nil {
		ch.observer(c, bytes, moved)
	}
	return moved
}

// RecordRetry tallies the bytes of a failed-and-reissued transfer
// attempt. Retries occupy the bus but deliver no new payload, so they
// are kept out of Traffic — the paper's headline traffic metric counts
// each byte once no matter how many attempts it took — and surfaced
// separately via RetryTraffic.
func (ch *Channel) RecordRetry(c Class, bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	moved := ch.round(bytes)
	ch.retry[c] += moved
	return moved
}

// RetryTraffic returns the burst-rounded bytes re-moved by DMA
// retries, by class.
func (ch *Channel) RetryTraffic() Traffic { return ch.retry }

// Traffic returns the burst-rounded tally so far.
func (ch *Channel) Traffic() Traffic { return ch.traffic }

// RawTraffic returns the payload (pre-rounding) tally so far.
func (ch *Channel) RawTraffic() Traffic { return ch.raw }

// Reset clears the counters (the configuration is retained).
func (ch *Channel) Reset() {
	ch.traffic = Traffic{}
	ch.raw = Traffic{}
	ch.retry = Traffic{}
}

// RestoreTraffic overwrites the burst-rounded and payload tallies —
// the checkpoint/restore seam. A channel rebuilt from a mid-run
// snapshot continues the original tally so the final traffic ledger is
// bit-identical to an uninterrupted run. Retry traffic is deliberately
// absent: snapshots are only taken of fault-free runs.
func (ch *Channel) RestoreTraffic(traffic, raw Traffic) {
	ch.traffic = traffic
	ch.raw = raw
}

// CyclesAt converts a byte count into channel-occupancy cycles at the
// given accelerator clock. Partial cycles round up.
func (ch *Channel) CyclesAt(bytes int64, clockMHz float64) int64 {
	if bytes <= 0 {
		return 0
	}
	bytesPerCycle := ch.cfg.BandwidthGBps * 1e9 / (clockMHz * 1e6)
	cycles := float64(bytes) / bytesPerCycle
	n := int64(cycles)
	if float64(n) < cycles {
		n++
	}
	return n
}

// EnergyPJ returns the access energy of the tallied traffic.
func (ch *Channel) EnergyPJ() float64 {
	return float64(ch.traffic.Total()) * ch.cfg.EnergyPJForB
}
