// Package noc models the chip-to-chip interconnect of a multi-chip
// accelerator cluster as a set of contended links. A transfer acquires
// an occupancy window on every link of its route: it waits for the
// earliest window that fits behind in-flight transfers (first-fit over
// the link's busy intervals), accumulating backpressure cycles, then
// occupies the link for its serialization time plus the per-hop
// latency. The fabric is fully deterministic — the same send sequence
// always yields the same windows — and single-threaded by design, like
// the bank pool and DRAM channel it sits beside.
package noc

import "fmt"

// Default link parameters: a chip-to-chip SerDes link is narrower and
// slower than the on-package DRAM channel, which is exactly why
// placement matters.
const (
	// DefaultLinkGBps is the per-link sustained bandwidth.
	DefaultLinkGBps = 16.0
	// DefaultHopLatency is the fixed router+wire latency per hop, in
	// accelerator cycles.
	DefaultHopLatency = 64
	// DefaultFlitBytes is the transfer granularity; payloads round up.
	DefaultFlitBytes = 64
)

// Config describes the fabric.
type Config struct {
	// Chips is the number of endpoints.
	Chips int
	// Topology arranges the links between them.
	Topology Topology
	// LinkGBps is the sustained bandwidth of one link (1e9 bytes/s).
	LinkGBps float64
	// HopLatency is the fixed per-hop latency in cycles.
	HopLatency int64
	// FlitBytes is the link transaction granularity; transfers round up.
	FlitBytes int
	// ClockMHz converts bandwidth into bytes per accelerator cycle.
	ClockMHz float64
}

// WithDefaults fills zero tuning fields with the package defaults.
// Negative values are left for Validate to reject.
func (c Config) WithDefaults() Config {
	if c.LinkGBps == 0 {
		c.LinkGBps = DefaultLinkGBps
	}
	if c.HopLatency == 0 {
		c.HopLatency = DefaultHopLatency
	}
	if c.FlitBytes == 0 {
		c.FlitBytes = DefaultFlitBytes
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Chips < 2 {
		return fmt.Errorf("noc: need at least 2 chips, got %d", c.Chips)
	}
	if c.Chips > MaxChips {
		return fmt.Errorf("noc: %d chips (max %d)", c.Chips, MaxChips)
	}
	switch c.Topology {
	case Ring, Mesh, AllToAll:
	default:
		return fmt.Errorf("noc: unknown topology %d", int(c.Topology))
	}
	if c.LinkGBps <= 0 {
		return fmt.Errorf("noc: link bandwidth must be positive, got %g", c.LinkGBps)
	}
	if c.HopLatency < 0 {
		return fmt.Errorf("noc: negative hop latency %d", c.HopLatency)
	}
	if c.FlitBytes <= 0 {
		return fmt.Errorf("noc: flit size must be positive, got %d", c.FlitBytes)
	}
	if c.ClockMHz <= 0 {
		return fmt.Errorf("noc: clock must be positive, got %g", c.ClockMHz)
	}
	return nil
}

// MaxChips bounds the fabric size (all-to-all grows quadratically).
const MaxChips = 64

// window is one half-open busy interval [start, end) on a link.
type window struct{ start, end int64 }

// link is one directed channel between adjacent chips.
type link struct {
	name string
	// busy holds the granted occupancy windows, sorted by start and
	// pairwise disjoint. Transfers first-fit into the gaps.
	busy  []window
	stats LinkStats
}

// LinkStats is the per-link ledger.
type LinkStats struct {
	// Name identifies the directed link, e.g. "c0>c1".
	Name string `json:"name"`
	// Transfers counts occupancy windows granted on this link.
	Transfers int64 `json:"transfers"`
	// Bytes is the flit-rounded payload moved across the link.
	Bytes int64 `json:"bytes"`
	// BusyCycles is the total occupancy (serialization + hop latency).
	BusyCycles int64 `json:"busy_cycles"`
	// BackpressureCycles is the total time transfers waited behind
	// in-flight occupants before their window was granted.
	BackpressureCycles int64 `json:"backpressure_cycles"`
}

// Transfer is the outcome of one Send.
type Transfer struct {
	From, To int
	// Bytes is the flit-rounded payload.
	Bytes int64
	// Depart is the requested departure cycle; Start when the first
	// link granted a window; Arrive when the payload fully landed.
	Depart, Start, Arrive int64
	// QueueCycles is the total backpressure across all hops; Occupancy
	// the total link-busy cycles the transfer consumed.
	QueueCycles, Occupancy int64
	// Hops is the route length in links.
	Hops int
}

// Latency is the end-to-end transfer time from requested departure.
func (t Transfer) Latency() int64 { return t.Arrive - t.Depart }

// SpanFunc receives one granted link-occupancy window: the directed
// link name, the transferred (flit-rounded) bytes, and the window
// [start, start+dur). The cluster layer forwards these into the trace
// recorder as Perfetto "noc" spans.
type SpanFunc func(link string, bytes, start, dur int64)

// Fabric is the contended interconnect: precomputed deterministic
// routes plus per-link occupancy state.
type Fabric struct {
	cfg    Config
	links  []*link
	routes [][][]int // routes[src][dst] = link indices, in hop order
	span   SpanFunc

	transfers int64
	bytes     int64
}

// New builds a fabric. Tuning fields at zero take the package
// defaults; Chips, Topology, and ClockMHz must be set.
func New(cfg Config) (*Fabric, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &Fabric{cfg: cfg}
	if err := f.build(); err != nil {
		return nil, err
	}
	return f, nil
}

// Config returns the (default-filled) fabric configuration.
func (f *Fabric) Config() Config { return f.cfg }

// SetSpanFunc installs the link-occupancy observer; nil disables it.
func (f *Fabric) SetSpanFunc(fn SpanFunc) { f.span = fn }

// NumLinks returns the number of directed links.
func (f *Fabric) NumLinks() int { return len(f.links) }

// RouteNames returns the directed link names of the src→dst route, for
// tests and diagnostics.
func (f *Fabric) RouteNames(src, dst int) ([]string, error) {
	if err := f.checkEndpoints(src, dst); err != nil {
		return nil, err
	}
	var out []string
	for _, li := range f.routes[src][dst] {
		out = append(out, f.links[li].name)
	}
	return out, nil
}

func (f *Fabric) checkEndpoints(src, dst int) error {
	if src < 0 || src >= f.cfg.Chips || dst < 0 || dst >= f.cfg.Chips {
		return fmt.Errorf("noc: endpoints %d>%d outside 0..%d", src, dst, f.cfg.Chips-1)
	}
	return nil
}

// round applies flit granularity.
func (f *Fabric) round(bytes int64) int64 {
	b := int64(f.cfg.FlitBytes)
	return (bytes + b - 1) / b * b
}

// serCycles is the serialization time of a rounded payload on one link.
func (f *Fabric) serCycles(bytes int64) int64 {
	bytesPerCycle := f.cfg.LinkGBps * 1e9 / (f.cfg.ClockMHz * 1e6)
	cycles := float64(bytes) / bytesPerCycle
	n := int64(cycles)
	if float64(n) < cycles {
		n++
	}
	return n
}

// Send moves bytes from src to dst, departing no earlier than depart.
// The payload is flit-rounded, then store-and-forwarded hop by hop:
// each link grants the earliest occupancy window at or after the
// payload's arrival at that hop, queuing behind in-flight transfers.
// Zero or negative payloads still traverse the route (a control-only
// handoff costs the hop latency). src == dst is free and touches no
// link.
func (f *Fabric) Send(src, dst int, bytes, depart int64) (Transfer, error) {
	if err := f.checkEndpoints(src, dst); err != nil {
		return Transfer{}, err
	}
	if bytes < 0 {
		bytes = 0
	}
	tr := Transfer{From: src, To: dst, Depart: depart, Start: depart, Arrive: depart}
	if src == dst {
		return tr, nil
	}
	tr.Bytes = f.round(bytes)
	occ := f.cfg.HopLatency + f.serCycles(tr.Bytes)
	t := depart
	route := f.routes[src][dst]
	for hop, li := range route {
		l := f.links[li]
		grant := l.reserve(t, occ)
		if hop == 0 {
			tr.Start = grant
		}
		wait := grant - t
		tr.QueueCycles += wait
		tr.Occupancy += occ
		l.stats.Transfers++
		l.stats.Bytes += tr.Bytes
		l.stats.BusyCycles += occ
		l.stats.BackpressureCycles += wait
		if f.span != nil {
			f.span(l.name, tr.Bytes, grant, occ)
		}
		t = grant + occ
	}
	tr.Arrive = t
	tr.Hops = len(route)
	f.transfers++
	f.bytes += tr.Bytes
	return tr, nil
}

// reserve grants the earliest window of length occ starting at or
// after t, first-fitting into the gaps between existing windows, and
// records it.
func (l *link) reserve(t, occ int64) int64 {
	start := t
	idx := len(l.busy)
	for i, w := range l.busy {
		if w.end <= start {
			continue // entirely before our candidate start
		}
		if w.start >= start+occ {
			idx = i // fits in the gap before window i
			break
		}
		// Overlaps the candidate: push the start past this window.
		if w.end > start {
			start = w.end
		}
	}
	if idx == len(l.busy) {
		// Re-scan for the insertion point of the final start.
		idx = len(l.busy)
		for i, w := range l.busy {
			if w.start > start {
				idx = i
				break
			}
		}
	}
	l.busy = append(l.busy, window{})
	copy(l.busy[idx+1:], l.busy[idx:])
	l.busy[idx] = window{start: start, end: start + occ}
	return start
}

// FabricStats is the fabric-wide ledger: totals plus the per-link
// breakdown, in deterministic link-declaration order.
type FabricStats struct {
	Topology string `json:"topology"`
	Chips    int    `json:"chips"`
	// Transfers counts Send calls that crossed at least one link;
	// Bytes their flit-rounded payload (counted once per transfer, not
	// per hop).
	Transfers int64 `json:"transfers"`
	Bytes     int64 `json:"bytes"`
	// BusyCycles / BackpressureCycles sum the per-link ledgers (a
	// multi-hop transfer contributes once per hop).
	BusyCycles         int64 `json:"busy_cycles"`
	BackpressureCycles int64 `json:"backpressure_cycles"`

	Links []LinkStats `json:"links"`
}

// Stats snapshots the fabric ledger.
func (f *Fabric) Stats() FabricStats {
	s := FabricStats{
		Topology:  f.cfg.Topology.String(),
		Chips:     f.cfg.Chips,
		Transfers: f.transfers,
		Bytes:     f.bytes,
	}
	for _, l := range f.links {
		s.BusyCycles += l.stats.BusyCycles
		s.BackpressureCycles += l.stats.BackpressureCycles
		ls := l.stats
		ls.Name = l.name
		s.Links = append(s.Links, ls)
	}
	return s
}
