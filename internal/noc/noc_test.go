package noc

import (
	"math/rand"
	"reflect"
	"testing"
)

func testConfig(chips int, topo Topology) Config {
	return Config{Chips: chips, Topology: topo, ClockMHz: 1000}
}

func mustFabric(t *testing.T, cfg Config) *Fabric {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return f
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"one chip", testConfig(1, Ring)},
		{"too many", testConfig(MaxChips+1, Ring)},
		{"bad topology", Config{Chips: 4, Topology: Topology(99), ClockMHz: 1000}},
		{"no clock", Config{Chips: 4, Topology: Ring}},
		{"negative bandwidth", Config{Chips: 4, Topology: Ring, LinkGBps: -1, ClockMHz: 1000}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: New accepted invalid config", tc.name)
		}
	}
	f := mustFabric(t, testConfig(4, Ring))
	got := f.Config()
	if got.LinkGBps != DefaultLinkGBps || got.HopLatency != DefaultHopLatency || got.FlitBytes != DefaultFlitBytes {
		t.Errorf("defaults not applied: %+v", got)
	}
}

func TestRingRoutes(t *testing.T) {
	f := mustFabric(t, testConfig(5, Ring))
	cases := []struct {
		src, dst int
		want     []string
	}{
		{0, 1, []string{"c0>c1"}},
		{0, 2, []string{"c0>c1", "c1>c2"}},
		// Distance 3 clockwise vs 2 counter-clockwise: go backwards.
		{0, 3, []string{"c0>c4", "c4>c3"}},
		{4, 0, []string{"c4>c0"}},
		{1, 4, []string{"c1>c0", "c0>c4"}},
	}
	for _, tc := range cases {
		got, err := f.RouteNames(tc.src, tc.dst)
		if err != nil {
			t.Fatalf("RouteNames(%d,%d): %v", tc.src, tc.dst, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("route %d>%d = %v, want %v", tc.src, tc.dst, got, tc.want)
		}
	}
	// Even ring, tie distance: clockwise wins.
	f4 := mustFabric(t, testConfig(4, Ring))
	got, err := f4.RouteNames(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"c0>c1", "c1>c2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tie route 0>2 = %v, want %v", got, want)
	}
}

func TestMeshRoutes(t *testing.T) {
	// 7 chips on a 3-wide grid: rows [0 1 2], [3 4 5], [6] (ragged).
	f := mustFabric(t, testConfig(7, Mesh))
	cases := []struct {
		src, dst int
		want     []string
	}{
		{0, 2, []string{"c0>c1", "c1>c2"}},
		// Toward a narrower row: x first (in the wide row), then y.
		{2, 6, []string{"c2>c1", "c1>c0", "c0>c3", "c3>c6"}},
		// Toward a wider row: y first, then x.
		{6, 2, []string{"c6>c3", "c3>c0", "c0>c1", "c1>c2"}},
		{5, 0, []string{"c5>c2", "c2>c1", "c1>c0"}},
	}
	for _, tc := range cases {
		got, err := f.RouteNames(tc.src, tc.dst)
		if err != nil {
			t.Fatalf("RouteNames(%d,%d): %v", tc.src, tc.dst, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("route %d>%d = %v, want %v", tc.src, tc.dst, got, tc.want)
		}
	}
}

func TestMeshRoutesAlwaysValid(t *testing.T) {
	// Every chip count up to a few rows: New fails internally if any
	// route would pass through a nonexistent ragged-grid cell.
	for n := 2; n <= 20; n++ {
		f := mustFabric(t, testConfig(n, Mesh))
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if _, err := f.RouteNames(s, d); err != nil {
					t.Fatalf("n=%d route %d>%d: %v", n, s, d, err)
				}
			}
		}
	}
}

func TestAllToAllRoutes(t *testing.T) {
	f := mustFabric(t, testConfig(4, AllToAll))
	if f.NumLinks() != 12 {
		t.Fatalf("NumLinks = %d, want 12", f.NumLinks())
	}
	for s := 0; s < 4; s++ {
		for d := 0; d < 4; d++ {
			if s == d {
				continue
			}
			r, err := f.RouteNames(s, d)
			if err != nil {
				t.Fatal(err)
			}
			if len(r) != 1 {
				t.Errorf("route %d>%d has %d hops, want 1", s, d, len(r))
			}
		}
	}
}

func TestSendContention(t *testing.T) {
	// 1 GB/s link at 1000 MHz = 1 byte/cycle; hop latency 10.
	cfg := Config{Chips: 4, Topology: AllToAll, LinkGBps: 1, HopLatency: 10, FlitBytes: 64, ClockMHz: 1000}
	f := mustFabric(t, cfg)

	// First transfer: 64B on a free link → departs on time, occupancy 74.
	tr1, err := f.Send(0, 1, 64, 100)
	if err != nil {
		t.Fatal(err)
	}
	if tr1.Start != 100 || tr1.Arrive != 174 || tr1.QueueCycles != 0 {
		t.Fatalf("tr1 = %+v", tr1)
	}

	// Second transfer on the same link while busy → queues behind it.
	tr2, err := f.Send(0, 1, 64, 120)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Start != 174 || tr2.QueueCycles != 54 || tr2.Arrive != 248 {
		t.Fatalf("tr2 = %+v", tr2)
	}

	// A different link is unaffected.
	tr3, err := f.Send(2, 3, 64, 120)
	if err != nil {
		t.Fatal(err)
	}
	if tr3.Start != 120 || tr3.QueueCycles != 0 {
		t.Fatalf("tr3 = %+v", tr3)
	}

	// An earlier departure can first-fit into the gap before tr1.
	tr4, err := f.Send(0, 1, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr4.Start != 0 || tr4.QueueCycles != 0 || tr4.Arrive != 74 {
		t.Fatalf("tr4 = %+v", tr4)
	}

	// A transfer too big for the gap queues past both windows.
	tr5, err := f.Send(0, 1, 640, 0) // occupancy 650, no gap fits
	if err != nil {
		t.Fatal(err)
	}
	if tr5.Start != 248 || tr5.QueueCycles != 248 {
		t.Fatalf("tr5 = %+v", tr5)
	}

	// Self-send is free.
	tr6, err := f.Send(1, 1, 1<<20, 42)
	if err != nil {
		t.Fatal(err)
	}
	if tr6.Bytes != 0 || tr6.Arrive != 42 || tr6.Hops != 0 {
		t.Fatalf("tr6 = %+v", tr6)
	}

	if _, err := f.Send(0, 9, 64, 0); err == nil {
		t.Error("Send accepted out-of-range endpoint")
	}
}

func TestFlitRoundingAndZeroBytes(t *testing.T) {
	cfg := Config{Chips: 2, Topology: Ring, LinkGBps: 1, HopLatency: 10, FlitBytes: 64, ClockMHz: 1000}
	f := mustFabric(t, cfg)
	tr, err := f.Send(0, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Bytes != 64 {
		t.Errorf("1 byte rounded to %d, want 64", tr.Bytes)
	}
	tr, err = f.Send(0, 1, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Bytes != 0 || tr.Arrive != 1010 {
		t.Errorf("zero-byte control handoff = %+v, want arrive 1010", tr)
	}
}

// sendPattern drives a deterministic seeded all-pairs burst workload.
func sendPattern(t *testing.T, f *Fabric, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := f.Config().Chips
	for i := 0; i < 200; i++ {
		src := rng.Intn(n)
		dst := rng.Intn(n)
		bytes := int64(1+rng.Intn(64)) * 1024
		depart := int64(rng.Intn(20000))
		if _, err := f.Send(src, dst, bytes, depart); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGoldenTopologySweep pins the backpressure cycles of an identical
// seeded workload on each topology: the three wirings must produce
// distinct, stable contention. Changing routing or the occupancy model
// changes these numbers — update deliberately.
func TestGoldenTopologySweep(t *testing.T) {
	want := map[Topology]int64{
		Ring:     goldenRingBackpressure,
		Mesh:     goldenMeshBackpressure,
		AllToAll: goldenAllBackpressure,
	}
	got := make(map[Topology]int64)
	for _, topo := range []Topology{Ring, Mesh, AllToAll} {
		cfg := Config{Chips: 6, Topology: topo, LinkGBps: 4, HopLatency: 32, FlitBytes: 64, ClockMHz: 1000}
		f := mustFabric(t, cfg)
		sendPattern(t, f, 7)
		st := f.Stats()
		got[topo] = st.BackpressureCycles
		if st.BackpressureCycles != want[topo] {
			t.Errorf("%s backpressure = %d, want %d", topo, st.BackpressureCycles, want[topo])
		}
	}
	if got[Ring] == got[Mesh] || got[Mesh] == got[AllToAll] || got[Ring] == got[AllToAll] {
		t.Errorf("topologies not distinct: %v", got)
	}
	if !(got[Ring] > got[Mesh] && got[Mesh] > got[AllToAll]) {
		t.Errorf("expected ring > mesh > all-to-all contention, got %v", got)
	}
}

// Pinned by TestGoldenTopologySweep.
const (
	goldenRingBackpressure = 18055310
	goldenMeshBackpressure = 14877806
	goldenAllBackpressure  = 3413309
)

func TestDeterminism(t *testing.T) {
	for _, topo := range []Topology{Ring, Mesh, AllToAll} {
		a := mustFabric(t, testConfig(5, topo))
		b := mustFabric(t, testConfig(5, topo))
		sendPattern(t, a, 99)
		sendPattern(t, b, 99)
		if !reflect.DeepEqual(a.Stats(), b.Stats()) {
			t.Errorf("%s: identical workloads produced different stats", topo)
		}
	}
}

func TestStatsReconcile(t *testing.T) {
	cfg := Config{Chips: 6, Topology: Mesh, LinkGBps: 2, HopLatency: 16, FlitBytes: 64, ClockMHz: 1000}
	f := mustFabric(t, cfg)
	rng := rand.New(rand.NewSource(3))
	var wantQueue, wantOcc, wantBytes, wantSends int64
	for i := 0; i < 300; i++ {
		src, dst := rng.Intn(6), rng.Intn(6)
		tr, err := f.Send(src, dst, int64(rng.Intn(8192)), int64(rng.Intn(5000)))
		if err != nil {
			t.Fatal(err)
		}
		wantQueue += tr.QueueCycles
		wantOcc += tr.Occupancy
		if tr.Hops > 0 {
			wantBytes += tr.Bytes
			wantSends++
		}
		if lat := tr.Latency(); lat < 0 {
			t.Fatalf("negative latency: %+v", tr)
		}
	}
	st := f.Stats()
	if st.BackpressureCycles != wantQueue {
		t.Errorf("ledger backpressure %d != sum of transfer queue cycles %d", st.BackpressureCycles, wantQueue)
	}
	if st.BusyCycles != wantOcc {
		t.Errorf("ledger busy %d != sum of transfer occupancy %d", st.BusyCycles, wantOcc)
	}
	if st.Bytes != wantBytes || st.Transfers != wantSends {
		t.Errorf("ledger bytes/transfers = %d/%d, want %d/%d", st.Bytes, st.Transfers, wantBytes, wantSends)
	}
	var linkQueue, linkBusy int64
	for _, l := range st.Links {
		linkQueue += l.BackpressureCycles
		linkBusy += l.BusyCycles
	}
	if linkQueue != wantQueue || linkBusy != wantOcc {
		t.Errorf("per-link sums %d/%d != totals %d/%d", linkQueue, linkBusy, wantQueue, wantOcc)
	}
}

func TestSpanFunc(t *testing.T) {
	cfg := Config{Chips: 3, Topology: Ring, LinkGBps: 1, HopLatency: 8, FlitBytes: 64, ClockMHz: 1000}
	f := mustFabric(t, cfg)
	type span struct {
		link       string
		bytes, dur int64
	}
	var spans []span
	f.SetSpanFunc(func(link string, bytes, start, dur int64) {
		spans = append(spans, span{link, bytes, dur})
	})
	if _, err := f.Send(0, 2, 64, 0); err != nil { // 0>2 goes backwards: one hop
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].link != "c0>c2" || spans[0].bytes != 64 || spans[0].dur != 72 {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestReserveWindowsDisjointSorted(t *testing.T) {
	cfg := Config{Chips: 2, Topology: Ring, LinkGBps: 1, HopLatency: 4, FlitBytes: 64, ClockMHz: 1000}
	f := mustFabric(t, cfg)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		if _, err := f.Send(0, 1, int64(rng.Intn(512)), int64(rng.Intn(3000))); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range f.links {
		for i := 1; i < len(l.busy); i++ {
			if l.busy[i].start < l.busy[i-1].end {
				t.Fatalf("link %s windows overlap or unsorted at %d: %+v %+v",
					l.name, i, l.busy[i-1], l.busy[i])
			}
		}
	}
}
