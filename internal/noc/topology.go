package noc

import "fmt"

// Topology selects how chips are wired together.
type Topology int

const (
	// Ring links chip i to i±1 (mod N); routes take the shorter
	// direction, ties broken clockwise (increasing index).
	Ring Topology = iota
	// Mesh arranges chips row-major on a ceil(sqrt(N))-wide grid
	// (the last row may be ragged) with links between grid neighbors;
	// routes are dimension-ordered toward the wider row first.
	Mesh
	// AllToAll gives every ordered pair its own direct link.
	AllToAll
)

// String returns the spec-grammar name of the topology.
func (t Topology) String() string {
	switch t {
	case Ring:
		return "ring"
	case Mesh:
		return "mesh"
	case AllToAll:
		return "all"
	default:
		return fmt.Sprintf("topology(%d)", int(t))
	}
}

// ParseTopology parses a spec-grammar topology name.
func ParseTopology(s string) (Topology, error) {
	switch s {
	case "ring":
		return Ring, nil
	case "mesh":
		return Mesh, nil
	case "all", "alltoall", "all-to-all":
		return AllToAll, nil
	default:
		return 0, fmt.Errorf("noc: unknown topology %q (want ring, mesh, or all)", s)
	}
}

// build creates the directed links and precomputes every src→dst
// route. Link order — and therefore FabricStats.Links order — is a
// deterministic function of (Chips, Topology).
func (f *Fabric) build() error {
	n := f.cfg.Chips
	// linkAt[a][b] is the index of the directed link a→b, or -1.
	linkAt := make([][]int, n)
	for i := range linkAt {
		linkAt[i] = make([]int, n)
		for j := range linkAt[i] {
			linkAt[i][j] = -1
		}
	}
	addLink := func(a, b int) {
		if linkAt[a][b] >= 0 {
			return
		}
		linkAt[a][b] = len(f.links)
		f.links = append(f.links, &link{name: fmt.Sprintf("c%d>c%d", a, b)})
	}

	switch f.cfg.Topology {
	case Ring:
		for i := 0; i < n; i++ {
			addLink(i, (i+1)%n)
			addLink(i, (i-1+n)%n)
		}
	case Mesh:
		w := meshWidth(n)
		for i := 0; i < n; i++ {
			x, y := i%w, i/w
			if x+1 < w && i+1 < n { // east-west neighbor
				addLink(i, i+1)
				addLink(i+1, i)
			}
			if i+w < n { // north-south neighbor
				addLink(i, i+w)
				addLink(i+w, i)
			}
			_ = y
		}
	case AllToAll:
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a != b {
					addLink(a, b)
				}
			}
		}
	default:
		return fmt.Errorf("noc: unknown topology %d", int(f.cfg.Topology))
	}

	f.routes = make([][][]int, n)
	for src := 0; src < n; src++ {
		f.routes[src] = make([][]int, n)
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			hops := f.path(src, dst)
			route := make([]int, 0, len(hops)-1)
			for h := 0; h+1 < len(hops); h++ {
				li := linkAt[hops[h]][hops[h+1]]
				if li < 0 {
					return fmt.Errorf("noc: internal: no link c%d>c%d on %s route c%d..c%d",
						hops[h], hops[h+1], f.cfg.Topology, src, dst)
				}
				route = append(route, li)
			}
			f.routes[src][dst] = route
		}
	}
	return nil
}

// meshWidth is the grid width for n chips: ceil(sqrt(n)).
func meshWidth(n int) int {
	w := 1
	for w*w < n {
		w++
	}
	return w
}

// path lists the chips visited from src to dst, inclusive of both.
func (f *Fabric) path(src, dst int) []int {
	n := f.cfg.Chips
	hops := []int{src}
	switch f.cfg.Topology {
	case Ring:
		cw := (dst - src + n) % n  // clockwise distance
		ccw := (src - dst + n) % n // counter-clockwise distance
		step := 1
		if ccw < cw {
			step = n - 1 // i.e. -1 mod n
		}
		for at := src; at != dst; {
			at = (at + step) % n
			hops = append(hops, at)
		}
	case Mesh:
		w := meshWidth(n)
		sx, sy := src%w, src/w
		dx, dy := dst%w, dst/w
		x, y := sx, sy
		// Rows are prefix-filled, so widths are non-increasing with y.
		// Moving toward a narrower row (dy > sy): correct x first while
		// still in the wide row — column dx exists in every row up to
		// dy. Moving toward a wider row (dy < sy): correct y first —
		// column sx exists in every wider row. Same-row: x only.
		if dy > sy {
			for x != dx {
				x += sign(dx - x)
				hops = append(hops, y*w+x)
			}
			for y != dy {
				y += sign(dy - y)
				hops = append(hops, y*w+x)
			}
		} else {
			for y != dy {
				y += sign(dy - y)
				hops = append(hops, y*w+x)
			}
			for x != dx {
				x += sign(dx - x)
				hops = append(hops, y*w+x)
			}
		}
	case AllToAll:
		hops = append(hops, dst)
	}
	return hops
}

func sign(d int) int {
	if d < 0 {
		return -1
	}
	return 1
}
