// Package chaos is the serving layer's deterministic fault injector —
// the counterpart of internal/fault one level up the stack. Where
// fault models the accelerator's own adversity (bad banks, dropped DMA
// transfers), chaos models the adversity of the machine the serving
// process runs on: journal writes and fsyncs that fail, disks that go
// slow, workers that stall, and the process dying outright at a named
// crash point.
//
// Everything is driven by a Spec parsed from the same compact
// semicolon grammar as the -faults flag (see ParseSpec), and all
// randomness comes from the spec's seed, so a chaotic run is exactly
// reproducible — the property the kill-and-restart tests lean on.
//
// The injector never acts on its own: the journal pulls error and
// latency decisions through its Options hooks, the serve engine asks
// for stall delays, and crash points fire only where the code under
// test names them. A nil *Injector is valid everywhere and injects
// nothing, so production call sites need no guards.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the root of every synthetic I/O failure, so callers
// (and tests) can tell injected faults from real ones with errors.Is.
var ErrInjected = errors.New("chaos: injected fault")

// CrashPoint schedules a process crash at the Nth execution of a named
// site (1-based): "crash@checkpoint:n=3" fires the third time the code
// under test reaches Hit("checkpoint").
type CrashPoint struct {
	Site string `json:"site"`
	N    int    `json:"n"`
}

// Spec is a complete chaos plan.
type Spec struct {
	// Seed drives every probability draw. Same spec, same chaos.
	Seed int64 `json:"seed"`
	// JournalIOProb is the probability that any single journal write or
	// fsync fails with ErrInjected, in [0, 1).
	JournalIOProb float64 `json:"journal_io_prob,omitempty"`
	// SlowDiskMS adds a fixed latency to every journal append,
	// modeling a saturated or degraded disk.
	SlowDiskMS int `json:"slow_disk_ms,omitempty"`
	// StallProb is the probability that a worker pauses for StallMS
	// before starting a job, in [0, 1).
	StallProb float64 `json:"stall_prob,omitempty"`
	// StallMS is the stall duration.
	StallMS int `json:"stall_ms,omitempty"`
	// Crashes are the scheduled crash points.
	Crashes []CrashPoint `json:"crashes,omitempty"`
}

// Validate checks the plan before the serving layer accepts it.
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	if s.JournalIOProb < 0 || s.JournalIOProb >= 1 {
		return fmt.Errorf("chaos: journal-io probability %g outside [0, 1)", s.JournalIOProb)
	}
	if s.StallProb < 0 || s.StallProb >= 1 {
		return fmt.Errorf("chaos: stall probability %g outside [0, 1)", s.StallProb)
	}
	if s.SlowDiskMS < 0 {
		return fmt.Errorf("chaos: negative slow-disk latency %d", s.SlowDiskMS)
	}
	if s.StallMS < 0 {
		return fmt.Errorf("chaos: negative stall duration %d", s.StallMS)
	}
	if s.StallProb > 0 && s.StallMS == 0 {
		return fmt.Errorf("chaos: stall probability %g with zero duration", s.StallProb)
	}
	for i, c := range s.Crashes {
		if c.Site == "" {
			return fmt.Errorf("chaos: crash point %d has no site", i)
		}
		if c.N <= 0 {
			return fmt.Errorf("chaos: crash point %d (%s) has non-positive count %d", i, c.Site, c.N)
		}
	}
	return nil
}

// Empty reports whether the spec injects nothing.
func (s *Spec) Empty() bool {
	return s == nil || (s.JournalIOProb == 0 && s.SlowDiskMS == 0 &&
		s.StallProb == 0 && len(s.Crashes) == 0)
}

// String renders the spec in the grammar ParseSpec reads, so a spec
// round-trips through the CLI flag.
func (s *Spec) String() string {
	if s == nil {
		return ""
	}
	parts := []string{fmt.Sprintf("seed=%d", s.Seed)}
	if s.JournalIOProb > 0 {
		parts = append(parts, fmt.Sprintf("journal-io:p=%g", s.JournalIOProb))
	}
	if s.SlowDiskMS > 0 {
		parts = append(parts, fmt.Sprintf("slow-disk:ms=%d", s.SlowDiskMS))
	}
	if s.StallProb > 0 {
		parts = append(parts, fmt.Sprintf("stall:p=%g,ms=%d", s.StallProb, s.StallMS))
	}
	for _, c := range s.Crashes {
		parts = append(parts, fmt.Sprintf("crash@%s:n=%d", c.Site, c.N))
	}
	return strings.Join(parts, ";")
}

// ParseSpec reads the compact chaos grammar used by the -chaos CLI
// flag: semicolon-separated clauses, each a fault kind with optional
// ":key=value" parameters (the same shape as the -faults grammar).
//
//	seed=42                 RNG seed (default 1)
//	journal-io:p=0.1        each journal write/fsync fails with p=0.1
//	slow-disk:ms=5          every journal append takes 5ms extra
//	stall:p=0.05,ms=200     workers pause 200ms before 5% of jobs
//	crash@recover:n=1       crash the 1st time site "recover" is hit
//
// Example: "seed=7;journal-io:p=0.1;crash@checkpoint:n=2".
// The returned spec is validated; malformed input yields an error,
// never a panic.
func ParseSpec(s string) (*Spec, error) {
	spec := &Spec{Seed: 1}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad seed %q: %v", v, err)
			}
			spec.Seed = seed
			continue
		}
		head, params, _ := strings.Cut(clause, ":")
		name, site, hasSite := strings.Cut(head, "@")
		kv, err := parseParams(params)
		if err != nil {
			return nil, fmt.Errorf("chaos: %q: %v", clause, err)
		}
		switch name {
		case "journal-io":
			p, err := probParam(kv, "p", clause)
			if err != nil {
				return nil, err
			}
			spec.JournalIOProb = p
		case "slow-disk":
			ms, err := msParam(kv, "ms", clause)
			if err != nil {
				return nil, err
			}
			spec.SlowDiskMS = ms
		case "stall":
			p, err := probParam(kv, "p", clause)
			if err != nil {
				return nil, err
			}
			ms, err := msParam(kv, "ms", clause)
			if err != nil {
				return nil, err
			}
			spec.StallProb = p
			spec.StallMS = ms
		case "crash":
			if !hasSite || site == "" {
				return nil, fmt.Errorf("chaos: %q needs a site: crash@<site>:n=<k>", clause)
			}
			n := 1
			if v, ok := kv["n"]; ok {
				n, err = strconv.Atoi(v)
				if err != nil {
					return nil, fmt.Errorf("chaos: %q: bad count %q: %v", clause, v, err)
				}
			}
			spec.Crashes = append(spec.Crashes, CrashPoint{Site: site, N: n})
		default:
			return nil, fmt.Errorf("chaos: unknown clause %q (want seed=, journal-io, slow-disk, stall, crash@<site>)", clause)
		}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

func probParam(kv map[string]string, key, clause string) (float64, error) {
	v, ok := kv[key]
	if !ok {
		return 0, fmt.Errorf("chaos: %q needs %s=<prob>", clause, key)
	}
	p, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("chaos: %q: bad probability %q: %v", clause, v, err)
	}
	return p, nil
}

func msParam(kv map[string]string, key, clause string) (int, error) {
	v, ok := kv[key]
	if !ok {
		return 0, fmt.Errorf("chaos: %q needs %s=<millis>", clause, key)
	}
	ms, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("chaos: %q: bad duration %q: %v", clause, v, err)
	}
	return ms, nil
}

// parseParams splits "k=v,k=v".
func parseParams(s string) (map[string]string, error) {
	kv := make(map[string]string)
	if s == "" {
		return kv, nil
	}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok || strings.TrimSpace(k) == "" {
			return nil, fmt.Errorf("bad parameter %q (want key=value)", part)
		}
		kv[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	return kv, nil
}

// Counts tallies what the injector actually did, for tests and the
// metrics layer.
type Counts struct {
	IOErrors  int64 // journal write/fsync failures injected
	Stalls    int64 // worker stalls injected
	CrashHits int64 // crash-point evaluations that reached their site
}

// Injector replays a Spec. All methods are safe for concurrent use —
// the serving layer's workers share one injector — and all are
// nil-receiver-safe so production paths carry no chaos guards.
type Injector struct {
	spec Spec

	mu      sync.Mutex
	rng     *rand.Rand        // guarded by mu
	hits    map[string]int    // guarded by mu
	counts  Counts            // guarded by mu
	crashFn func(site string) // guarded by mu
}

// New builds an injector for the spec. A nil or empty spec yields a
// nil injector, which is valid and injects nothing.
func New(spec *Spec) (*Injector, error) {
	if spec.Empty() {
		return nil, nil
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		spec: *spec,
		rng:  rand.New(rand.NewSource(spec.Seed)),
		hits: make(map[string]int),
	}, nil
}

// SetCrashFn installs the function a triggered crash point calls.
// scm-serve wires this to os.Exit so a crash is a real process death;
// tests substitute a recorder. With no function installed a triggered
// crash point is a no-op (beyond counting the hit).
func (in *Injector) SetCrashFn(fn func(site string)) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashFn = fn
}

// JournalWriteErr is the journal's Options.WriteErr hook: it decides
// whether this write or fsync ("write" / "sync") fails. Failures wrap
// ErrInjected.
func (in *Injector) JournalWriteErr(op string) error {
	if in == nil || in.spec.JournalIOProb == 0 {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rng.Float64() >= in.spec.JournalIOProb {
		return nil
	}
	in.counts.IOErrors++
	return fmt.Errorf("%w: journal %s failed", ErrInjected, op)
}

// JournalLatency is the journal's Options.Latency hook: the extra
// delay each append should sleep to model a slow disk.
func (in *Injector) JournalLatency() time.Duration {
	if in == nil || in.spec.SlowDiskMS == 0 {
		return 0
	}
	return time.Duration(in.spec.SlowDiskMS) * time.Millisecond
}

// StallDelay reports how long a worker should pause before starting
// its next job: zero almost always, StallMS when the stall draw fires.
func (in *Injector) StallDelay() time.Duration {
	if in == nil || in.spec.StallProb == 0 {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rng.Float64() >= in.spec.StallProb {
		return 0
	}
	in.counts.Stalls++
	return time.Duration(in.spec.StallMS) * time.Millisecond
}

// Hit marks one execution of a named crash site. If a scheduled crash
// point's count is reached, the installed crash function runs — in
// production that call never returns (os.Exit). Sites not named in the
// spec cost one map lookup.
func (in *Injector) Hit(site string) {
	if in == nil || len(in.spec.Crashes) == 0 {
		return
	}
	in.mu.Lock()
	var fire func(string)
	for _, c := range in.spec.Crashes {
		if c.Site != site {
			continue
		}
		in.hits[site]++
		in.counts.CrashHits++
		if in.hits[site] == c.N {
			fire = in.crashFn
		}
		break
	}
	in.mu.Unlock()
	if fire != nil {
		fire(site)
	}
}

// Counts returns what the injector has done so far.
func (in *Injector) Counts() Counts {
	if in == nil {
		return Counts{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts
}

// Spec returns a copy of the plan the injector replays.
func (in *Injector) Spec() Spec {
	if in == nil {
		return Spec{}
	}
	return in.spec
}
