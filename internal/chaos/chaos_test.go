package chaos

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestParseSpecRoundtrip(t *testing.T) {
	cases := []string{
		"seed=1",
		"seed=42;journal-io:p=0.1",
		"seed=7;journal-io:p=0.25;slow-disk:ms=5;stall:p=0.05,ms=200;crash@recover:n=1;crash@checkpoint:n=3",
	}
	for _, in := range cases {
		spec, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		if got := spec.String(); got != in {
			t.Errorf("roundtrip %q -> %q", in, got)
		}
		if _, err := ParseSpec(spec.String()); err != nil {
			t.Errorf("re-parse of %q: %v", spec.String(), err)
		}
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := []string{
		"seed=abc",
		"journal-io",            // missing p
		"journal-io:p=1.5",      // out of range
		"slow-disk:ms=-1",       // negative
		"stall:p=0.5",           // missing ms
		"stall:p=0.5,ms=0",      // zero duration with nonzero prob
		"crash:n=1",             // no site
		"crash@site:n=0",        // non-positive count
		"crash@site:n=x",        // bad count
		"tornado:p=0.1",         // unknown clause
		"journal-io:p",          // malformed param
	}
	for _, in := range cases {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) accepted malformed input", in)
		}
	}
}

func TestNilInjectorInjectsNothing(t *testing.T) {
	for _, spec := range []*Spec{nil, {Seed: 9}} {
		in, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		if in != nil {
			t.Fatalf("New(%+v) = non-nil injector", spec)
		}
		// Every method must be nil-receiver-safe.
		if err := in.JournalWriteErr("write"); err != nil {
			t.Error(err)
		}
		if d := in.JournalLatency(); d != 0 {
			t.Error(d)
		}
		if d := in.StallDelay(); d != 0 {
			t.Error(d)
		}
		in.Hit("anywhere")
		in.SetCrashFn(func(string) {})
		if c := in.Counts(); c != (Counts{}) {
			t.Errorf("nil injector counted %+v", c)
		}
	}
}

// TestJournalIODeterministic: the same seed yields the same failure
// sequence; failures wrap ErrInjected and are counted.
func TestJournalIODeterministic(t *testing.T) {
	draw := func() []bool {
		in, err := New(&Spec{Seed: 42, JournalIOProb: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 200)
		fails := 0
		for i := range out {
			err := in.JournalWriteErr("write")
			out[i] = err != nil
			if err != nil {
				fails++
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("injected failure not classified: %v", err)
				}
			}
		}
		if fails == 0 || fails == len(out) {
			t.Fatalf("p=0.3 over %d draws produced %d failures", len(out), fails)
		}
		if got := in.Counts().IOErrors; got != int64(fails) {
			t.Fatalf("counted %d IO errors, observed %d", got, fails)
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identically seeded injectors", i)
		}
	}
}

func TestCrashPointFiresAtNthHit(t *testing.T) {
	in, err := New(&Spec{Seed: 1, Crashes: []CrashPoint{{Site: "checkpoint", N: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	var fired []string
	in.SetCrashFn(func(site string) { fired = append(fired, site) })
	for i := 0; i < 5; i++ {
		in.Hit("checkpoint")
		in.Hit("elsewhere") // unscheduled site: never fires
	}
	if len(fired) != 1 || fired[0] != "checkpoint" {
		t.Fatalf("crash fired %v, want exactly once at checkpoint", fired)
	}
	if c := in.Counts(); c.CrashHits != 5 {
		t.Errorf("CrashHits = %d, want 5 (elsewhere is unscheduled)", c.CrashHits)
	}
}

func TestCrashPointWithoutFnIsNoop(t *testing.T) {
	in, err := New(&Spec{Seed: 1, Crashes: []CrashPoint{{Site: "boot", N: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	in.Hit("boot") // must not panic with no crash function installed
	if c := in.Counts(); c.CrashHits != 1 {
		t.Errorf("CrashHits = %d", c.CrashHits)
	}
}

func TestLatencyAndStall(t *testing.T) {
	in, err := New(&Spec{Seed: 5, SlowDiskMS: 7, StallProb: 0.5, StallMS: 11})
	if err != nil {
		t.Fatal(err)
	}
	if d := in.JournalLatency(); d != 7*time.Millisecond {
		t.Errorf("JournalLatency = %v", d)
	}
	stalled := 0
	for i := 0; i < 100; i++ {
		switch d := in.StallDelay(); d {
		case 0:
		case 11 * time.Millisecond:
			stalled++
		default:
			t.Fatalf("StallDelay = %v, want 0 or 11ms", d)
		}
	}
	if stalled == 0 || stalled == 100 {
		t.Errorf("p=0.5 stalls over 100 draws = %d", stalled)
	}
	if c := in.Counts(); c.Stalls != int64(stalled) {
		t.Errorf("counted %d stalls, observed %d", c.Stalls, stalled)
	}
}

// TestConcurrentUse exercises the shared-RNG lock under the race
// detector.
func TestConcurrentUse(t *testing.T) {
	in, err := New(&Spec{
		Seed: 3, JournalIOProb: 0.2, StallProb: 0.2, StallMS: 1,
		Crashes: []CrashPoint{{Site: "s", N: 1 << 30}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_ = in.JournalWriteErr("sync")
				_ = in.StallDelay()
				in.Hit("s")
			}
		}()
	}
	wg.Wait()
	if c := in.Counts(); c.CrashHits != 8*500 {
		t.Errorf("CrashHits = %d, want %d", c.CrashHits, 8*500)
	}
}
