package workload

import (
	"fmt"

	"shortcutmining/internal/core"
	"shortcutmining/internal/fpga"
	"shortcutmining/internal/nn"
	"shortcutmining/internal/stats"
)

func init() {
	register(Experiment{
		ID:     "E8",
		Title:  "Procedure ablation",
		Anchor: "“a sequence of procedures which, collectively, can effectively reuse both shortcut and non-shortcut feature maps”",
		Run:    runE8,
	})
	register(Experiment{
		ID:     "E9",
		Title:  "Shortcut span invariance",
		Anchor: "“reuse shortcut data across any number of intermediate layers without using additional buffer resources”",
		Run:    runE9,
	})
	register(Experiment{
		ID:     "E10",
		Title:  "Bank-pool interconnect overhead",
		Anchor: "FPGA prototype resource tables",
		Run:    runE10,
	})
	register(Experiment{
		ID:     "E13",
		Title:  "Concat-style shortcut reuse",
		Anchor: "generality beyond element-wise adds (fire modules, dense connectivity)",
		Run:    runE13,
	})
}

func runE8(cfg core.Config) (Result, error) {
	steps := []struct {
		label string
		feat  core.Features
	}{
		{"baseline", core.Features{}},
		{"+P1/P2 role switching", core.Features{RoleSwitch: true, PartialRetention: true}},
		{"+P3 shortcut retention", core.Features{RoleSwitch: true, ShortcutRetention: true, PartialRetention: true}},
		{"+P4 bank recycling (= SCM)", core.SCM.Features()},
		{"SCM without P5 (all-or-nothing)", core.Features{RoleSwitch: true, ShortcutRetention: true, IncrementalRecycle: true}},
	}
	t := stats.NewTable("Feature-map traffic by procedure set (MiB per image)",
		"design point", "squeezenet-bypass", "resnet34", "resnet152")
	metrics := map[string]float64{}
	baselines := map[string]int64{}
	for i, st := range steps {
		row := []string{st.label}
		for _, h := range headline {
			net, err := nn.Build(h.name)
			if err != nil {
				return Result{}, err
			}
			r, err := core.SimulateFeatures(net, cfg, st.feat, nil)
			if err != nil {
				return Result{}, err
			}
			if i == 0 {
				baselines[h.name] = r.FmapTrafficBytes()
			}
			red := 1 - float64(r.FmapTrafficBytes())/float64(baselines[h.name])
			metrics[fmt.Sprintf("red/%d/%s", i, h.name)] = red
			row = append(row, fmt.Sprintf("%s (%s)", stats.MB(r.FmapTrafficBytes()), stats.Pct(red)))
		}
		t.Add(row...)
	}
	return Result{
		Tables:  []*stats.Table{t},
		Metrics: metrics,
		Notes: []string{
			"Each procedure contributes: role switching removes adjacent-layer round trips, retention removes shortcut re-fetches, recycling frees the add's peak demand, and partial retention keeps the mechanism effective when feature maps outgrow the pool (its absence hurts exactly the large-fmap networks).",
		},
	}, nil
}

func runE9(cfg core.Config) (Result, error) {
	t := stats.NewTable("Synthetic shortcut span sweep (8×16×16 fmaps, 3 blocks)",
		"intermediate layers", "scm fmap traffic (KiB)", "peak pinned banks", "peak used banks", "baseline fmap traffic (KiB)")
	metrics := map[string]float64{}
	for span := 1; span <= 8; span++ {
		net, err := nn.ShortcutSpanNet(span, 3, 8, 16)
		if err != nil {
			return Result{}, err
		}
		base, err := core.Simulate(net, cfg, core.Baseline, nil)
		if err != nil {
			return Result{}, err
		}
		scm, err := core.Simulate(net, cfg, core.SCM, nil)
		if err != nil {
			return Result{}, err
		}
		metrics[fmt.Sprintf("traffic/%d", span)] = float64(scm.FmapTrafficBytes())
		metrics[fmt.Sprintf("pinned/%d", span)] = float64(scm.PeakPinnedBanks)
		t.Add(fmt.Sprint(span),
			fmt.Sprintf("%.1f", float64(scm.FmapTrafficBytes())/1024),
			fmt.Sprint(scm.PeakPinnedBanks),
			fmt.Sprint(scm.PeakUsedBanks),
			fmt.Sprintf("%.1f", float64(base.FmapTrafficBytes())/1024))
	}
	return Result{
		Tables:  []*stats.Table{t},
		Metrics: metrics,
		Notes: []string{
			"SCM's traffic and pinned-bank peak are flat in the span while the baseline grows linearly — retention across any number of intermediate layers costs no additional buffer resources, the paper's distinguishing claim over fused-layer approaches.",
		},
	}, nil
}

func runE10(cfg core.Config) (Result, error) {
	t := stats.NewTable("Crossbar overhead vs pool granularity (VC709)",
		"banks", "bank size (KiB)", "crossbar LUTs", "share of design", "share of device", "fits")
	metrics := map[string]float64{}
	totalBytes := cfg.Pool.TotalBytes()
	for _, banks := range []int{8, 16, 34, 64, 128} {
		d := designFor(cfg, true)
		d.PoolBanks = banks
		d.BankBytes = int(totalBytes) / banks
		rep, err := fpga.Estimate(fpga.VC709(), d)
		if err != nil {
			return Result{}, err
		}
		ovh := rep.OverheadVsBaseline()
		metrics[fmt.Sprintf("overhead/%d", banks)] = ovh
		t.Add(fmt.Sprint(banks), fmt.Sprint(d.BankBytes>>10),
			fmt.Sprint(rep.CrossbarLUTs), stats.Pct(ovh),
			stats.Pct(float64(rep.CrossbarLUTs)/float64(rep.Device.LUT)),
			fmt.Sprint(rep.Fits))
	}
	return Result{
		Tables:  []*stats.Table{t},
		Metrics: metrics,
		Notes: []string{
			"Finer banking improves retention granularity but grows the port crossbar linearly; the calibrated 34-bank pool keeps the interconnect at a few percent of device LUTs.",
		},
	}, nil
}

func runE13(cfg core.Config) (Result, error) {
	t := stats.NewTable("Concat-style reuse",
		"network", "baseline (MiB)", "fm-reuse (MiB)", "scm (MiB)", "scm reduction")
	metrics := map[string]float64{}
	nets := []string{"squeezenet", "squeezenet-bypass", "squeezenet-complex", "densechain"}
	for _, name := range nets {
		base, err := simulate(name, cfg, core.Baseline)
		if err != nil {
			return Result{}, err
		}
		fmr, err := simulate(name, cfg, core.FMReuse)
		if err != nil {
			return Result{}, err
		}
		scm, err := simulate(name, cfg, core.SCM)
		if err != nil {
			return Result{}, err
		}
		red := scm.TrafficReductionVs(base)
		metrics["red/"+name] = red
		t.Add(name, stats.MB(base.FmapTrafficBytes()), stats.MB(fmr.FmapTrafficBytes()),
			stats.MB(scm.FmapTrafficBytes()), stats.Pct(red))
	}
	return Result{
		Tables:  []*stats.Table{t},
		Metrics: metrics,
		Notes: []string{
			"Concatenation is pure bank layout under logical buffers (zero-copy merge of the producers' banks), so fire modules and dense connectivity benefit from the same procedures as residual adds — including plain SqueezeNet, whose fire modules contain short-span cross-branch edges even without bypass.",
		},
	}, nil
}
