package workload

import (
	"fmt"

	"shortcutmining/internal/cluster"
	"shortcutmining/internal/core"
	"shortcutmining/internal/sched"
	"shortcutmining/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E24",
		Title: "Multi-chip sharding: topology × placement under a contended interconnect",
		Anchor: "distributed-serving extension (not in the paper): sharding a multi-tenant " +
			"scenario across chips turns the paper's on-chip shortcut-reuse question into a " +
			"placement question — a boundary that cuts a pinned shortcut forces its bytes over " +
			"a contended chip-to-chip link, so placement policies that respect shortcut " +
			"affinity trade load balance against interconnect traffic, and the fabric's " +
			"backpressure is ledgered as its own traffic class that reconciles exactly.",
		Run: runE24,
	})
}

// e24Streams is the fixed sharded scenario: a shortcut-heavy ResNet
// stream and a bursty bypass-dominated stream, dense enough that link
// occupancy windows overlap and backpressure is non-zero on the
// narrower topologies.
const e24Streams = "stream=resnet34:n=3,gap=400000,name=resnet;" +
	"stream=squeezenet-bypass:n=5,gap=150000,poisson,name=bypass"

func runE24(cfg core.Config) (Result, error) {
	res := Result{Metrics: map[string]float64{}}
	summary := stats.NewTable(
		"Topology × placement sweep (4 chips, 2 streams)",
		"topo", "placement", "makespan (Mcyc)", "crossings", "interchip (MB)",
		"handoff (MB)", "backpressure (Mcyc)")

	// Placement totals across topologies, to call the winner below.
	cycles := map[string]int64{}
	inter := map[string]int64{}

	for _, topo := range []string{"ring", "mesh", "all"} {
		for _, place := range []string{"hash", "leastload", "affinity"} {
			spec, err := sched.ParseSpec(fmt.Sprintf(
				"seed=24;chips=4;topo=%s;place=%s;%s", topo, place, e24Streams))
			if err != nil {
				return Result{}, err
			}
			out, err := cluster.Run(cfg, spec, nil, nil)
			if err != nil {
				return Result{}, err
			}
			if err := out.Reconcile(); err != nil {
				return Result{}, err
			}
			var crossings, handoff int64
			for _, s := range out.Streams {
				crossings += s.Crossings
			}
			for _, q := range out.Requests {
				handoff += q.ShortcutHandoffBytes
			}
			key := topo + "/" + place
			res.Metrics["makespan_mcyc/"+key] = float64(out.MakespanCycles) / 1e6
			res.Metrics["interchip_mb/"+key] = float64(out.InterchipBytes) / 1e6
			res.Metrics["backpressure_mcyc/"+key] = float64(out.Noc.BackpressureCycles) / 1e6
			cycles[place] += out.MakespanCycles
			inter[place] += out.InterchipBytes
			summary.Add(topo, place,
				stats.F2(float64(out.MakespanCycles)/1e6),
				fmt.Sprintf("%d", crossings),
				stats.F2(float64(out.InterchipBytes)/1e6),
				stats.F2(float64(handoff)/1e6),
				stats.F2(float64(out.Noc.BackpressureCycles)/1e6))
		}
	}
	res.Tables = append(res.Tables, summary)

	// The experiment's claim: placement policies measurably differ.
	// Record the summed-makespan spread so the test can pin it > 0.
	var minC, maxC int64
	for _, place := range []string{"hash", "leastload", "affinity"} {
		c := cycles[place]
		if minC == 0 || c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
		res.Metrics["total_makespan_mcyc/"+place] = float64(c) / 1e6
		res.Metrics["total_interchip_mb/"+place] = float64(inter[place]) / 1e6
	}
	res.Metrics["placement_spread_mcyc"] = float64(maxC-minC) / 1e6

	res.Notes = append(res.Notes,
		"Hash placement balances segments blindly and pays the most boundary crossings; "+
			"affinity placement keeps pinned-shortcut liveness spans on one chip, cutting both "+
			"interchip bytes and the handoff share that is forced shortcut state. "+
			"Richer topologies absorb the same traffic with less backpressure (all-to-all "+
			"gives every pair a private link; the ring serializes). Every cell reconciles: "+
			"per-request service cycles stay bit-identical to single-tenant runs, and fabric "+
			"bytes re-appear as the interchip class of the DRAM traffic ledger.")
	return res, nil
}
