package workload

import (
	"fmt"

	"shortcutmining/internal/core"
	"shortcutmining/internal/fpga"
	"shortcutmining/internal/nn"
	"shortcutmining/internal/sram"
	"shortcutmining/internal/stats"
)

func init() {
	register(Experiment{
		ID:     "E20",
		Title:  "Bank granularity at fixed capacity",
		Anchor: "logical-buffer design knob: finer banks retain at finer grain (less internal fragmentation, better partial retention) but grow the port crossbar",
		Run:    runE20,
	})
}

func runE20(cfg core.Config) (Result, error) {
	total := cfg.Pool.TotalBytes()
	t := stats.NewTable(
		fmt.Sprintf("SCM at fixed %d KiB pool, varying bank count", total>>10),
		"banks", "bank size (KiB)", "resnet34 reduction", "squeezenet reduction",
		"crossbar LUTs", "crossbar share of device")
	metrics := map[string]float64{}
	reserveBytes := int64(cfg.ReserveBanks) * int64(cfg.Pool.BankBytes)
	for _, banks := range []int{17, 34, 68, 136, 272} {
		c := cfg
		c.Pool = sram.Config{NumBanks: banks, BankBytes: int(total) / banks}
		// Hold the streaming reserve at the same byte capacity so the
		// sweep isolates granularity from provisioning.
		c.ReserveBanks = int(reserveBytes) / c.Pool.BankBytes
		row := []string{fmt.Sprint(banks), fmt.Sprint(c.Pool.BankBytes >> 10)}
		for _, name := range []string{"resnet34", "squeezenet-bypass"} {
			net, err := nn.Build(name)
			if err != nil {
				return Result{}, err
			}
			base, err := core.Simulate(net, c, core.Baseline, nil)
			if err != nil {
				return Result{}, err
			}
			scm, err := core.Simulate(net, c, core.SCM, nil)
			if err != nil {
				return Result{}, err
			}
			red := scm.TrafficReductionVs(base)
			metrics[fmt.Sprintf("red/%s/%d", name, banks)] = red
			row = append(row, stats.Pct(red))
		}
		rep, err := fpga.Estimate(fpga.VC709(), fpga.Design{
			MACs:           c.PE.NumMACs(),
			PoolBanks:      banks,
			BankBytes:      c.Pool.BankBytes,
			WeightBufBytes: c.WeightBufBytes,
			LogicalBuffers: true,
		})
		if err != nil {
			return Result{}, err
		}
		metrics[fmt.Sprintf("xbar/%d", banks)] = float64(rep.CrossbarLUTs) / float64(rep.Device.LUT)
		row = append(row, fmt.Sprint(rep.CrossbarLUTs),
			stats.Pct(float64(rep.CrossbarLUTs)/float64(rep.Device.LUT)))
		t.Add(row...)
	}
	return Result{
		Tables:  []*stats.Table{t},
		Metrics: metrics,
		Notes: []string{
			"At fixed capacity, halving the bank size consistently buys traffic reduction (finer partial retention, less fragmentation of the retained prefix) while the crossbar grows linearly in the bank count — the sweet spot sits where the retention curve flattens, which is where the calibrated 34-bank default lives.",
		},
	}, nil
}
