package workload

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"shortcutmining/internal/core"
)

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20", "E21", "E22", "E23", "E24", "E25"}
	if len(ids) != len(want) {
		t.Fatalf("registry has %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("id[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
}

func TestGetCaseInsensitive(t *testing.T) {
	e, err := Get("e3")
	if err != nil || e.ID != "E3" {
		t.Errorf("Get(e3) = %v, %v", e.ID, err)
	}
	if _, err := Get("E99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestAllExperimentsRunAndRender(t *testing.T) {
	cfg := core.Default()
	for _, e := range All() {
		res, err := e.Run(cfg)
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		res.ID, res.Title, res.Anchor = e.ID, e.Title, e.Anchor
		md := res.Markdown()
		if !strings.Contains(md, e.ID) || !strings.Contains(md, "|") {
			t.Errorf("%s: markdown malformed:\n%s", e.ID, md)
		}
		if len(res.Tables) == 0 {
			t.Errorf("%s: no tables", e.ID)
		}
		if len(res.Metrics) == 0 {
			t.Errorf("%s: no metrics", e.ID)
		}
	}
}

func TestE1ShortcutShareBand(t *testing.T) {
	res, err := mustRun(t, "E1")
	if err != nil {
		t.Fatal(err)
	}
	// The paper: "nearly 40% of the total feature map data" for the
	// shortcut networks; controls must be zero.
	for _, name := range []string{"resnet34", "resnet152", "squeezenet-bypass"} {
		share := res.Metrics["share/"+name]
		if share < 0.20 || share > 0.55 {
			t.Errorf("%s share = %.1f%%, outside credible band", name, 100*share)
		}
	}
	for _, name := range []string{"vgg16", "plain34"} {
		if got := res.Metrics["share/"+name]; got != 0 {
			t.Errorf("%s share = %f, want 0", name, got)
		}
	}
}

func TestE3HeadlineReductions(t *testing.T) {
	res, err := mustRun(t, "E3")
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 53.3 / 58 / 43 %. The calibrated platform must land in
	// the right regime and preserve the ordering r34 > squeezenet >
	// r152.
	sq := res.Metrics["reduction/squeezenet-bypass"]
	r34 := res.Metrics["reduction/resnet34"]
	r152 := res.Metrics["reduction/resnet152"]
	if sq < 0.45 || sq > 0.65 {
		t.Errorf("squeezenet reduction %.1f%% outside 45–65%%", 100*sq)
	}
	if r34 < 0.50 || r34 > 0.80 {
		t.Errorf("resnet34 reduction %.1f%% outside 50–80%%", 100*r34)
	}
	if r152 < 0.35 || r152 > 0.55 {
		t.Errorf("resnet152 reduction %.1f%% outside 35–55%%", 100*r152)
	}
	if !(r34 > sq && sq > r152) {
		t.Errorf("ordering violated: r34=%.3f sq=%.3f r152=%.3f", r34, sq, r152)
	}
}

func TestE4SpeedupNearPaper(t *testing.T) {
	res, err := mustRun(t, "E4")
	if err != nil {
		t.Fatal(err)
	}
	geo := res.Metrics["speedup/geomean"]
	if geo < 1.6 || geo > 2.2 {
		t.Errorf("geomean speedup %.2f outside 1.6–2.2 band around the paper's 1.93", geo)
	}
	for _, h := range headline {
		if sp := res.Metrics["speedup/"+h.name]; sp <= 1.0 {
			t.Errorf("%s speedup %.2f not > 1", h.name, sp)
		}
	}
}

func TestE6MonotoneInCapacity(t *testing.T) {
	res, err := mustRun(t, "E6")
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range headline {
		prev := -1.0
		// Tolerance: the metric is a ratio against a same-size
		// baseline whose own tiling improves with capacity, so tiny
		// dips at saturation are expected; SCM's absolute traffic is
		// strictly monotone (tested in core).
		for _, kb := range poolSweepKiB {
			red := res.Metrics[keyE6(h.name, kb)]
			if red < prev-1e-3 {
				t.Errorf("%s: reduction dropped at %d KiB: %.3f < %.3f", h.name, kb, red, prev)
			}
			prev = red
		}
		// Saturation: the largest pool must essentially eliminate
		// feature-map traffic beyond image+result.
		if last := res.Metrics[keyE6(h.name, 4096)]; last < 0.85 {
			t.Errorf("%s: 4 MiB pool reduction only %.1f%%", h.name, 100*last)
		}
	}
}

func keyE6(name string, kb int64) string {
	return "red/" + name + "/" + itoa(kb)
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestE9FlatAcrossSpan(t *testing.T) {
	res, err := mustRun(t, "E9")
	if err != nil {
		t.Fatal(err)
	}
	t1 := res.Metrics["traffic/1"]
	p1 := res.Metrics["pinned/1"]
	for span := 2; span <= 8; span++ {
		if res.Metrics["traffic/"+itoa(int64(span))] != t1 {
			t.Errorf("span %d traffic differs from span 1", span)
		}
		if res.Metrics["pinned/"+itoa(int64(span))] != p1 {
			t.Errorf("span %d pinned peak differs from span 1", span)
		}
	}
}

func TestE8AblationOrdered(t *testing.T) {
	res, err := mustRun(t, "E8")
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range headline {
		prev := -1.0
		for i := 0; i <= 3; i++ { // steps 0..3 are cumulative
			red := res.Metrics["red/"+itoa(int64(i))+"/"+h.name]
			if red < prev-1e-9 {
				t.Errorf("%s: step %d reduction %.3f < previous %.3f", h.name, i, red, prev)
			}
			prev = red
		}
	}
}

func TestE11SpeedupBatchInvariant(t *testing.T) {
	res, err := mustRun(t, "E11")
	if err != nil {
		t.Fatal(err)
	}
	s1 := res.Metrics["speedup/1"]
	for _, b := range []int{2, 4, 8} {
		if got := res.Metrics["speedup/"+itoa(int64(b))]; math.Abs(got-s1) > 1e-9 {
			t.Errorf("batch %d speedup %.4f != batch-1 %.4f", b, got, s1)
		}
	}
}

func TestE12NarrowerIsBetter(t *testing.T) {
	res, err := mustRun(t, "E12")
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range headline {
		r8 := res.Metrics["red/fixed8/"+h.name]
		r32 := res.Metrics["red/float32/"+h.name]
		if r8 <= r32 {
			t.Errorf("%s: fixed8 reduction %.3f not above float32 %.3f", h.name, r8, r32)
		}
	}
}

func TestE13ConcatGains(t *testing.T) {
	res, err := mustRun(t, "E13")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"squeezenet", "squeezenet-bypass", "densechain"} {
		if red := res.Metrics["red/"+name]; red <= 0 {
			t.Errorf("%s: no concat-reuse gain (%.3f)", name, red)
		}
	}
}

func TestE2CrossbarOverheadModest(t *testing.T) {
	res, err := mustRun(t, "E2")
	if err != nil {
		t.Fatal(err)
	}
	if ovh := res.Metrics["crossbarOverhead"]; ovh <= 0 || ovh > 0.5 {
		t.Errorf("crossbar overhead %.3f outside (0, 0.5]", ovh)
	}
}

func mustRun(t *testing.T, id string) (Result, error) {
	t.Helper()
	e, err := Get(id)
	if err != nil {
		return Result{}, err
	}
	res, err := e.Run(core.Default())
	if err != nil {
		return Result{}, err
	}
	res.ID = e.ID
	return res, nil
}

func TestE14ModernNetworksBenefit(t *testing.T) {
	res, err := mustRun(t, "E14")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"mobilenetv2", "googlenet", "resnext50", "shufflenetv1", "densenet121", "squeezenet-complex", "resnet50"} {
		if red := res.Metrics["red/"+name]; red <= 0.2 {
			t.Errorf("%s: reduction %.3f too small", name, red)
		}
		if sp := res.Metrics["speedup/"+name]; sp < 1.0 {
			t.Errorf("%s: speedup %.3f below 1", name, sp)
		}
	}
}

func TestE15PolicyWithinNoiseOfPaper(t *testing.T) {
	res, err := mustRun(t, "E15")
	if err != nil {
		t.Fatal(err)
	}
	anyEviction := false
	for k, v := range res.Metrics {
		if strings.HasPrefix(k, "delta/") {
			if v > 0.05 || v < -0.25 {
				t.Errorf("%s = %+.3f outside expected band", k, v)
			}
		}
		if strings.HasPrefix(k, "evictions/") && v > 0 {
			anyEviction = true
		}
	}
	if !anyEviction {
		t.Error("EvictFarthest never activated in the sweep")
	}
}

func TestE16SpeedupDecaysWithBandwidth(t *testing.T) {
	res, err := mustRun(t, "E16")
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range headline {
		lo := res.Metrics["speedup/"+h.name+"/0.5"]
		hi := res.Metrics["speedup/"+h.name+"/12.8"]
		if lo <= hi {
			t.Errorf("%s: speedup did not decay with bandwidth (%.2f vs %.2f)", h.name, lo, hi)
		}
		if hi > 1.3 {
			t.Errorf("%s: compute-bound regime still shows %.2f× speedup", h.name, hi)
		}
		if hi < 1.0 {
			t.Errorf("%s: SCM slower than baseline at high bandwidth", h.name)
		}
	}
}

func TestE17ComplementaryRegimes(t *testing.T) {
	res, err := mustRun(t, "E17")
	if err != nil {
		t.Fatal(err)
	}
	// SCM wins where retention fits.
	for _, name := range []string{"squeezenet-bypass", "resnet34"} {
		if r := res.Metrics["ratio/"+name]; r <= 1.0 {
			t.Errorf("%s: fused/scm ratio %.2f, want > 1", name, r)
		}
	}
	// The ResNet-152 crossover: fused leads at 544 KiB, SCM leads by 6 MiB.
	if res.Metrics["r152/544/fused"] >= res.Metrics["r152/544/scm"] {
		t.Error("at 544 KiB fused-layer should lead on ResNet-152")
	}
	if res.Metrics["r152/6144/scm"] >= res.Metrics["r152/6144/fused"] {
		t.Error("at 6 MiB SCM should lead on ResNet-152")
	}
}

func TestE18StreamingRecycleHelpsAtSmallPools(t *testing.T) {
	res, err := mustRun(t, "E18")
	if err != nil {
		t.Fatal(err)
	}
	anyGain := false
	for k, v := range res.Metrics {
		if !strings.HasPrefix(k, "gain/") {
			continue
		}
		// Sub-percent wobble is burst/halo rounding noise from the
		// spill-refill pattern shifting, not a real regression.
		if v < -0.005 {
			t.Errorf("%s = %.4f: streaming recycle regressed", k, v)
		}
		if v > 0.01 {
			anyGain = true
		}
	}
	if !anyGain {
		t.Error("streaming recycle never gained >1% anywhere in the sweep")
	}
}

func TestE19SpeedupStableAcrossTimingModels(t *testing.T) {
	res, err := mustRun(t, "E19")
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range headline {
		s := res.Metrics["speedup-simple/"+h.name]
		d := res.Metrics["speedup-detailed/"+h.name]
		if d < 1.0 {
			t.Errorf("%s: detailed speedup %.2f below 1", h.name, d)
		}
		// Stable means within ~35%% relatively — bubbles shift both
		// designs, not the conclusion.
		if d < 0.65*s || d > 1.35*s {
			t.Errorf("%s: speedup moved %.2f → %.2f across timing models", h.name, s, d)
		}
		if res.Metrics["slowdown/"+h.name] < 1.0 {
			t.Errorf("%s: detailed model made the baseline faster", h.name)
		}
	}
}

func TestE20FinerBanksRetainBetter(t *testing.T) {
	res, err := mustRun(t, "E20")
	if err != nil {
		t.Fatal(err)
	}
	// Monotone (within noise) reduction in bank count for resnet34,
	// and monotone crossbar growth.
	banks := []int{17, 34, 68, 136, 272}
	for i := 1; i < len(banks); i++ {
		coarse := res.Metrics[fmt.Sprintf("red/resnet34/%d", banks[i-1])]
		fine := res.Metrics[fmt.Sprintf("red/resnet34/%d", banks[i])]
		if fine < coarse-0.02 {
			t.Errorf("banks %d→%d: reduction fell %.3f → %.3f", banks[i-1], banks[i], coarse, fine)
		}
		if res.Metrics[fmt.Sprintf("xbar/%d", banks[i])] <= res.Metrics[fmt.Sprintf("xbar/%d", banks[i-1])] {
			t.Errorf("banks %d→%d: crossbar did not grow", banks[i-1], banks[i])
		}
	}
}

func TestE21PortabilityStoryHolds(t *testing.T) {
	res, err := mustRun(t, "E21")
	if err != nil {
		t.Fatal(err)
	}
	for _, plat := range []string{"vc709 (default)", "vc707", "half-scale"} {
		if res.Metrics["fits/"+plat] != 1 {
			t.Errorf("%s does not fit its device", plat)
		}
		for _, h := range headline {
			if red := res.Metrics[fmt.Sprintf("red/%s/%s", plat, h.name)]; red < 0.15 {
				t.Errorf("%s/%s: reduction %.3f too small", plat, h.name, red)
			}
			if sp := res.Metrics[fmt.Sprintf("speedup/%s/%s", plat, h.name)]; sp <= 1.0 {
				t.Errorf("%s/%s: speedup %.3f not > 1", plat, h.name, sp)
			}
		}
	}
}

func TestE24PlacementPoliciesMeasurablyDiffer(t *testing.T) {
	res, err := mustRun(t, "E24")
	if err != nil {
		t.Fatal(err)
	}
	// The experiment's headline claim: placement policy is a real lever.
	if spread := res.Metrics["placement_spread_mcyc"]; spread <= 0 {
		t.Errorf("placement policies indistinguishable: spread %.3f Mcyc", spread)
	}
	// Affinity exists to cut interconnect traffic; hash ignores it.
	hash := res.Metrics["total_interchip_mb/hash"]
	aff := res.Metrics["total_interchip_mb/affinity"]
	if aff >= hash {
		t.Errorf("affinity interchip %.2f MB not below hash %.2f MB", aff, hash)
	}
	// The contended scenario must actually contend somewhere.
	var anyBackpressure bool
	for k, v := range res.Metrics {
		if strings.HasPrefix(k, "backpressure_mcyc/") && v > 0 {
			anyBackpressure = true
		}
	}
	if !anyBackpressure {
		t.Error("no cell of the sweep shows link backpressure")
	}
	// Deterministic: a second run reproduces every metric exactly.
	again, err := mustRun(t, "E24")
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range res.Metrics {
		if again.Metrics[k] != v {
			t.Errorf("metric %s not deterministic: %v then %v", k, v, again.Metrics[k])
		}
	}
}

func TestE22GracefulDegradation(t *testing.T) {
	res, err := mustRun(t, "E22")
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range headline {
		prev := -1.0
		for _, label := range []string{"0%", "12%", "25%"} {
			infl := res.Metrics[fmt.Sprintf("inflation/%s/%s", h.name, label)]
			if infl < prev {
				t.Errorf("%s: inflation not monotone at %s: %.4f < %.4f", h.name, label, infl, prev)
			}
			prev = infl
			if red := res.Metrics[fmt.Sprintf("reduction/%s/%s", h.name, label)]; red <= 0 {
				t.Errorf("%s at %s failed banks: SCM reduction %.3f not positive", h.name, label, red)
			}
		}
		if infl := res.Metrics[fmt.Sprintf("inflation/%s/0%%", h.name)]; infl != 0 {
			t.Errorf("%s: fault-free inflation %.4f != 0", h.name, infl)
		}
		for _, s := range []core.Strategy{core.Baseline, core.SCM} {
			rel := res.Metrics[fmt.Sprintf("adversity-throughput/%s/%s", h.name, s)]
			if rel <= 0 || rel >= 1 {
				t.Errorf("%s/%s: adversity throughput ratio %.4f not in (0,1)", h.name, s, rel)
			}
		}
	}
}

func TestE25CompressionComposesWithMining(t *testing.T) {
	res, err := mustRun(t, "E25")
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["compose_ok"] != 1 {
		t.Error("some shortcut-bearing network moved more fmap bytes under both than the best single mechanism")
	}
	for _, ratio := range []string{"1.5", "2", "4"} {
		for _, h := range headline {
			key := fmt.Sprintf("%s/r%s", h.name, ratio)
			mine := res.Metrics["fmap_mb/"+key+"/mining"]
			comp := res.Metrics["fmap_mb/"+key+"/compression"]
			both := res.Metrics["fmap_mb/"+key+"/both"]
			base := res.Metrics["fmap_mb/"+key+"/baseline"]
			if mine <= 0 || comp <= 0 || both <= 0 || base <= 0 {
				t.Fatalf("%s: missing arm metrics (%v %v %v %v)", key, base, mine, comp, both)
			}
			if comp >= base {
				t.Errorf("%s: compression-only %.2f MiB not below baseline %.2f", key, comp, base)
			}
			best := mine
			if comp < best {
				best = comp
			}
			if both > best {
				t.Errorf("%s: both %.2f MiB exceeds best single mechanism %.2f", key, both, best)
			}
			if res.Metrics["compose_ok/"+key] != 1 {
				t.Errorf("%s: compose_ok not set", key)
			}
		}
		// Control: no shortcuts to mine, so mining-only stays at the
		// baseline and compression carries the whole reduction.
		key := fmt.Sprintf("squeezenet/r%s", ratio)
		if m, b := res.Metrics["fmap_mb/"+key+"/mining"], res.Metrics["fmap_mb/"+key+"/baseline"]; m > b {
			t.Errorf("%s: mining-only %.2f MiB above baseline %.2f on the bypass-free control", key, m, b)
		}
	}

	// Determinism pin: a second run reproduces every metric exactly.
	again, err := mustRun(t, "E25")
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range res.Metrics {
		if again.Metrics[k] != v {
			t.Errorf("metric %s not deterministic: %v then %v", k, v, again.Metrics[k])
		}
	}
}
