package workload

import (
	"fmt"

	"shortcutmining/internal/core"
	"shortcutmining/internal/fpga"
	"shortcutmining/internal/pe"
	"shortcutmining/internal/stats"
)

func init() {
	register(Experiment{
		ID:     "E21",
		Title:  "Platform portability",
		Anchor: "the conclusions should not be an artifact of one device: rescale the design to a smaller FPGA and a mid-size part and re-measure",
		Run:    runE21,
	})
}

// platformE21 is one device-scaled variant of the calibrated design.
type platformE21 struct {
	name   string
	dev    fpga.Device
	pe     pe.Config
	poolKB int64
}

func e21Platforms(cfg core.Config) []platformE21 {
	return []platformE21{
		// The calibrated VC709 design point.
		{"vc709 (default)", fpga.VC709(), cfg.PE, cfg.Pool.TotalBytes() >> 10},
		// VC707: 2800 DSPs → 48×56 array; proportionally smaller pool.
		{"vc707", fpga.VC707(), pe.Config{Tn: 48, Tm: 56, ClockMHz: cfg.PE.ClockMHz, VectorWidth: 48}, 416},
		// A mid-size part: half the array, half the pool.
		{"half-scale", fpga.VC707(), pe.Config{Tn: 32, Tm: 56, ClockMHz: cfg.PE.ClockMHz, VectorWidth: 32}, 272},
	}
}

func runE21(cfg core.Config) (Result, error) {
	t := stats.NewTable("Headline results across device scales",
		"platform", "fits", "squeezenet red / speedup", "resnet34 red / speedup", "resnet152 red / speedup")
	metrics := map[string]float64{}
	for _, p := range e21Platforms(cfg) {
		c := cfg
		c.PE = p.pe
		c = c.WithPoolBytes(p.poolKB << 10)
		rep, err := fpga.Estimate(p.dev, fpga.Design{
			MACs:           c.PE.NumMACs(),
			PoolBanks:      c.Pool.NumBanks,
			BankBytes:      c.Pool.BankBytes,
			WeightBufBytes: c.WeightBufBytes,
			LogicalBuffers: true,
		})
		if err != nil {
			return Result{}, err
		}
		row := []string{p.name, fmt.Sprint(rep.Fits)}
		for _, h := range headline {
			base, err := simulate(h.name, c, core.Baseline)
			if err != nil {
				return Result{}, err
			}
			scm, err := simulate(h.name, c, core.SCM)
			if err != nil {
				return Result{}, err
			}
			red := scm.TrafficReductionVs(base)
			sp := scm.SpeedupVs(base)
			metrics[fmt.Sprintf("red/%s/%s", p.name, h.name)] = red
			metrics[fmt.Sprintf("speedup/%s/%s", p.name, h.name)] = sp
			row = append(row, fmt.Sprintf("%s / %s×", stats.Pct(red), stats.F2(sp)))
		}
		metrics["fits/"+p.name] = boolToFloat(rep.Fits)
		t.Add(row...)
	}
	return Result{
		Tables:  []*stats.Table{t},
		Metrics: metrics,
		Notes: []string{
			"Scaling the array and the pool down together preserves the story: reductions shrink with the pool (partial retention bites earlier) but every platform keeps a substantial reduction and a >1 speedup on every network — the mechanism, not the device, carries the result.",
		},
	}, nil
}

func boolToFloat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
