package workload

import (
	"fmt"

	"shortcutmining/internal/core"
	"shortcutmining/internal/sched"
	"shortcutmining/internal/stats"
)

func init() {
	register(Experiment{
		ID:     "E23",
		Title:  "Multi-tenant scheduling: QoS under shared-pool time-sharing",
		Anchor: "scheduling extension (not in the paper): because logical buffers are composed at run time from a shared bank pool, nothing ties the pool to one network — co-resident streams can time-share it at layer granularity, paying a P5-style spill/re-load cost per preemption that the scheduler accounts separately, so per-stream traffic still reconciles exactly with the single-tenant baseline.",
		Run:    runE23,
	})
}

// e23Streams is the fixed contended scenario: a latency-sensitive
// small network, a bulk ResNet stream, and a bursty Poisson stream.
// The prio variant ranks the latency stream above the rest; priorities
// are inert under fcfs/rr, so one description serves all policies.
const e23Streams = "stream=squeezenet-bypass:n=4,gap=3000000,prio=5,name=latency;" +
	"stream=resnet34:n=3,gap=9000000,name=bulk;" +
	"stream=densechain:n=6,gap=1500000,poisson,prio=2,name=bursty"

func runE23(cfg core.Config) (Result, error) {
	res := Result{Metrics: map[string]float64{}}
	summary := stats.NewTable(
		fmt.Sprintf("Policy comparison (3 streams, pool = %d banks)", cfg.Pool.NumBanks),
		"policy", "makespan (Mcyc)", "latency-stream p95 (Mcyc)", "latency-stream slowdown",
		"preemptions", "tenancy traffic (MB)")
	for _, pol := range []string{"policy=fcfs", "policy=rr;quantum=8", "policy=prio"} {
		parsed, err := sched.ParseSpec("seed=23;" + pol + ";" + e23Streams)
		if err != nil {
			return Result{}, err
		}
		out, err := sched.Run(cfg, parsed, nil)
		if err != nil {
			return Result{}, err
		}
		res.Tables = append(res.Tables, out.QoSTable())

		var latency sched.StreamResult
		var preempts int64
		for _, sr := range out.Streams {
			if sr.Name == "latency" {
				latency = sr
			}
			preempts += sr.Preemptions
		}
		name := parsed.Policy.String()
		res.Metrics["makespan_mcyc/"+name] = float64(out.MakespanCycles) / 1e6
		res.Metrics["latency_p95_mcyc/"+name] = float64(latency.Latency.P95) / 1e6
		res.Metrics["latency_slowdown/"+name] = latency.Slowdown()
		res.Metrics["tenancy_mb/"+name] = float64(out.TotalTenancyBytes()) / 1e6
		summary.Add(name,
			stats.F2(float64(out.MakespanCycles)/1e6),
			stats.F2(float64(latency.Latency.P95)/1e6),
			fmt.Sprintf("%.2fx", latency.Slowdown()),
			fmt.Sprintf("%d", preempts),
			stats.F2(float64(out.TotalTenancyBytes())/1e6))
	}
	res.Tables = append(res.Tables, summary)
	res.Notes = append(res.Notes,
		"FCFS is the no-preemption floor: zero tenancy traffic, but the latency-sensitive stream queues behind bulk inferences. "+
			"Round-robin bounds queueing at the price of spill/re-load traffic per quantum expiry. "+
			"Priority preemption gives the latency stream near-single-tenant p95 while bulk absorbs the tenancy cost; "+
			"per-stream service cycles and traffic reconcile exactly with single-tenant runs under every policy (pinned by internal/sched tests).")
	return res, nil
}
