package workload

import (
	"fmt"

	"shortcutmining/internal/core"
	"shortcutmining/internal/nn"
	"shortcutmining/internal/stats"
)

func init() {
	register(Experiment{
		ID:     "E18",
		Title:  "Streaming recycle for windowed layers (extension)",
		Anchor: "future-work generalization of P4: the add's incremental bank recycling applied to conv/pool sliding windows",
		Run:    runE18,
	})
}

func runE18(cfg core.Config) (Result, error) {
	scmPlus := core.SCM.Features()
	scmPlus.StreamingRecycle = true

	header := []string{"pool (KiB)"}
	for _, h := range headline {
		header = append(header, h.name+" scm", h.name+" +SR")
	}
	t := stats.NewTable("Feature-map traffic (MiB): canonical SCM vs SCM + streaming recycle", header...)
	metrics := map[string]float64{}
	for _, kb := range []int64{128, 256, 544, 1024} {
		row := []string{fmt.Sprint(kb)}
		for _, h := range headline {
			net, err := nn.Build(h.name)
			if err != nil {
				return Result{}, err
			}
			c := cfg.WithPoolBytes(kb << 10)
			plain, err := core.Simulate(net, c, core.SCM, nil)
			if err != nil {
				return Result{}, err
			}
			plus, err := core.SimulateFeatures(net, c, scmPlus, nil)
			if err != nil {
				return Result{}, err
			}
			gain := 1 - float64(plus.FmapTrafficBytes())/float64(plain.FmapTrafficBytes())
			metrics[fmt.Sprintf("gain/%s/%d", h.name, kb)] = gain
			row = append(row, stats.MB(plain.FmapTrafficBytes()), stats.MB(plus.FmapTrafficBytes()))
		}
		t.Add(row...)
	}
	return Result{
		Tables:  []*stats.Table{t},
		Metrics: metrics,
		Notes: []string{
			"Streaming recycle lets a conv or pool release consumed input banks into its own output (keeping a window margin), relieving the layers whose input+output jointly exceed the pool. The gain concentrates at small pools and on large early-stage feature maps — it extends the regime where Shortcut Mining beats line-buffered fusion (E17) downward in capacity.",
		},
	}, nil
}
