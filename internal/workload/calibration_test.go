package workload

import (
	"testing"

	"shortcutmining/internal/core"
)

func TestCalibrationErrorOfDefaultIsSmall(t *testing.T) {
	e, err := CalibrationError(core.Default(), PaperTarget())
	if err != nil {
		t.Fatal(err)
	}
	// RMS reduction error + relative speedup error. The documented
	// residual: ResNet-34 overshoots by ~11 pp and the speedup sits 5%
	// low, so ~0.12 total; anything much above that means the
	// calibration drifted.
	if e > 0.18 {
		t.Errorf("default platform calibration error = %.3f", e)
	}
}

func TestCalibrateRanksDefaultNearTop(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep skipped in -short mode")
	}
	base := core.Default()
	points, err := Calibrate(base, PaperTarget(),
		[]int{28, 31, 34, 37, 40}, []int{4, 6, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("empty calibration result")
	}
	// Sorted ascending by error.
	for i := 1; i < len(points); i++ {
		if points[i].Error < points[i-1].Error {
			t.Fatal("calibration points not sorted")
		}
	}
	// The shipped default (34 banks, reserve 6) must rank in the top
	// third of its own neighborhood — the record that the choice was
	// not arbitrary.
	rank := -1
	for i, p := range points {
		if p.Banks == base.Pool.NumBanks && p.Reserve == base.ReserveBanks {
			rank = i
			break
		}
	}
	if rank < 0 {
		t.Fatal("default not in the calibration grid")
	}
	if rank > len(points)/3 {
		t.Errorf("default ranks %d of %d in its neighborhood", rank+1, len(points))
	}
}

func TestCalibrateRejectsEmptyGrid(t *testing.T) {
	if _, err := Calibrate(core.Default(), PaperTarget(), nil, []int{4}); err == nil {
		t.Error("empty grid accepted")
	}
}
