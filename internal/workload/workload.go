// Package workload defines the experiment suite E1–E25 that
// regenerates every table and figure of the evaluation (see DESIGN.md
// for the per-experiment index and the paper anchors). The same
// registry backs the scm-exp CLI, the root benchmark suite, and the
// public RunExperiment API; EXPERIMENTS.md records its output against
// the paper's numbers.
package workload

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"shortcutmining/internal/core"
	"shortcutmining/internal/nn"
	"shortcutmining/internal/stats"
)

// Result is the rendered outcome of one experiment.
type Result struct {
	ID     string
	Title  string
	Anchor string // the paper claim the experiment reproduces
	Tables []*stats.Table
	// Charts are pre-rendered ASCII figures (sweep curves) included in
	// the markdown as fenced blocks.
	Charts []string
	Notes  []string
	// Metrics are the headline scalars, for benchmarks and tests.
	Metrics map[string]float64
}

// Markdown renders the result for EXPERIMENTS.md / CLI output.
func (r Result) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "## %s — %s\n\n", r.ID, r.Title)
	fmt.Fprintf(&sb, "*Paper anchor:* %s\n\n", r.Anchor)
	for _, t := range r.Tables {
		sb.WriteString(t.Markdown())
		sb.WriteString("\n")
	}
	for _, c := range r.Charts {
		sb.WriteString("```\n" + c + "```\n\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "%s\n\n", n)
	}
	return sb.String()
}

// Experiment is one reproducible unit of the evaluation.
type Experiment struct {
	ID     string
	Title  string
	Anchor string
	Run    func(cfg core.Config) (Result, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the experiments in suite order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return idNum(out[i].ID) < idNum(out[j].ID) })
	return out
}

func idNum(id string) int {
	n := 0
	if _, err := fmt.Sscanf(id, "E%d", &n); err != nil {
		return 0 // malformed IDs sort first, together
	}
	return n
}

// Get finds an experiment by ID (case-insensitive).
func Get(id string) (Experiment, error) {
	for _, e := range registry {
		if strings.EqualFold(e.ID, id) {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("workload: unknown experiment %q (have E1–E%d)", id, len(registry))
}

// IDs returns the experiment IDs in suite order.
func IDs() []string {
	all := All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.ID
	}
	return out
}

// simulate is a convenience wrapper that fails an experiment loudly.
func simulate(name string, cfg core.Config, s core.Strategy) (stats.RunStats, error) {
	net, err := nn.Build(name)
	if err != nil {
		return stats.RunStats{}, err
	}
	return core.Simulate(net, cfg, s, nil)
}

// geomean computes the geometric mean of positive values.
func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	p := 1.0
	for _, v := range vals {
		p *= v
	}
	return math.Pow(p, 1/float64(len(vals)))
}

// headline lists the networks of the paper's headline results paired
// with the reductions the abstract reports.
var headline = []struct {
	name     string
	paperRed float64 // fraction
}{
	{"squeezenet-bypass", 0.533},
	{"resnet34", 0.58},
	{"resnet152", 0.43},
}
