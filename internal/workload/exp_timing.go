package workload

import (
	"shortcutmining/internal/core"
	"shortcutmining/internal/nn"
	"shortcutmining/internal/stats"
)

func init() {
	register(Experiment{
		ID:     "E19",
		Title:  "Timing-model fidelity",
		Anchor: "robustness of the throughput claim: does the speedup survive a tile-level double-buffered pipeline model with fill/drain bubbles?",
		Run:    runE19,
	})
}

func runE19(cfg core.Config) (Result, error) {
	detailed := cfg
	detailed.DetailedTiming = true

	t := stats.NewTable("Throughput under the simple vs detailed timing model (img/s)",
		"network", "baseline simple", "baseline detailed", "scm simple", "scm detailed",
		"speedup simple", "speedup detailed")
	metrics := map[string]float64{}
	for _, h := range headline {
		net, err := nn.Build(h.name)
		if err != nil {
			return Result{}, err
		}
		bs, err := core.Simulate(net, cfg, core.Baseline, nil)
		if err != nil {
			return Result{}, err
		}
		ss, err := core.Simulate(net, cfg, core.SCM, nil)
		if err != nil {
			return Result{}, err
		}
		bd, err := core.Simulate(net, detailed, core.Baseline, nil)
		if err != nil {
			return Result{}, err
		}
		sd, err := core.Simulate(net, detailed, core.SCM, nil)
		if err != nil {
			return Result{}, err
		}
		spS := ss.SpeedupVs(bs)
		spD := sd.SpeedupVs(bd)
		metrics["speedup-simple/"+h.name] = spS
		metrics["speedup-detailed/"+h.name] = spD
		metrics["slowdown/"+h.name] = bs.Throughput() / bd.Throughput()
		t.Add(h.name,
			stats.F2(bs.Throughput()), stats.F2(bd.Throughput()),
			stats.F2(ss.Throughput()), stats.F2(sd.Throughput()),
			stats.F2(spS)+"×", stats.F2(spD)+"×")
	}
	return Result{
		Tables:  []*stats.Table{t},
		Metrics: metrics,
		Notes: []string{
			"The detailed model streams every layer as tiles through a double-buffered load→compute→store pipeline sharing the real channels; absolute throughput drops by the pipeline bubbles, but the baseline and SCM absorb them alike, so the relative speedup — the paper's claim — is stable across timing-model fidelity.",
		},
	}, nil
}
