package workload

import (
	"fmt"

	"shortcutmining/internal/core"
	"shortcutmining/internal/fused"
	"shortcutmining/internal/nn"
	"shortcutmining/internal/stats"
)

func init() {
	register(Experiment{
		ID:     "E17",
		Title:  "Comparison with fused-layer accelerators",
		Anchor: "related-work positioning: fused-layer pipelines reuse adjacent-layer data but cannot hold shortcut operands, and they buy capacity-independence with group breaks at every multi-consumer point",
		Run:    runE17,
	})
}

// fusedConfig maps the shared platform onto the fused-layer model.
func fusedConfig(cfg core.Config) fused.Config {
	return fused.Config{
		PE:                  cfg.PE,
		DRAM:                cfg.DRAM,
		BufferBytes:         cfg.Pool.TotalBytes(),
		WeightBufBytes:      cfg.WeightBufBytes,
		WeightBandwidthGBps: cfg.WeightBandwidthGBps,
		DType:               cfg.DType,
		ControlCycles:       cfg.ControlCycles,
	}
}

func runE17(cfg core.Config) (Result, error) {
	t := stats.NewTable("Feature-map traffic: fused-layer vs shortcut mining (MiB, default 544 KiB SRAM)",
		"network", "baseline", "fused-layer", "scm", "fused groups", "scm wins by")
	metrics := map[string]float64{}
	for _, name := range []string{"squeezenet-bypass", "resnet34", "resnet152", "vgg16", "googlenet"} {
		net, err := nn.Build(name)
		if err != nil {
			return Result{}, err
		}
		base, err := core.Simulate(net, cfg, core.Baseline, nil)
		if err != nil {
			return Result{}, err
		}
		scm, err := core.Simulate(net, cfg, core.SCM, nil)
		if err != nil {
			return Result{}, err
		}
		fl, err := fused.Simulate(net, fusedConfig(cfg))
		if err != nil {
			return Result{}, err
		}
		ratio := float64(fl.Run.FmapTrafficBytes()) / float64(scm.FmapTrafficBytes())
		metrics["ratio/"+name] = ratio
		t.Add(name,
			stats.MB(base.FmapTrafficBytes()),
			stats.MB(fl.Run.FmapTrafficBytes()),
			stats.MB(scm.FmapTrafficBytes()),
			fmt.Sprint(len(fl.Groups)),
			fmt.Sprintf("%.2f×", ratio))
	}

	// Crossover sweep: where does SCM overtake fused-layer on
	// ResNet-152 as the pool grows?
	ct := stats.NewTable("ResNet-152 crossover vs SRAM capacity (MiB of traffic)",
		"SRAM (KiB)", "fused-layer", "scm", "winner")
	net, err := nn.Build("resnet152")
	if err != nil {
		return Result{}, err
	}
	for _, kb := range []int64{256, 544, 1024, 2048, 4096, 6144} {
		c := cfg.WithPoolBytes(kb << 10)
		scm, err := core.Simulate(net, c, core.SCM, nil)
		if err != nil {
			return Result{}, err
		}
		fl, err := fused.Simulate(net, fusedConfig(c))
		if err != nil {
			return Result{}, err
		}
		winner := "scm"
		if fl.Run.FmapTrafficBytes() < scm.FmapTrafficBytes() {
			winner = "fused-layer"
		}
		metrics[fmt.Sprintf("r152/%d/scm", kb)] = float64(scm.FmapTrafficBytes())
		metrics[fmt.Sprintf("r152/%d/fused", kb)] = float64(fl.Run.FmapTrafficBytes())
		ct.Add(fmt.Sprint(kb), stats.MB(fl.Run.FmapTrafficBytes()), stats.MB(scm.FmapTrafficBytes()), winner)
	}
	return Result{
		Tables:  []*stats.Table{t, ct},
		Metrics: metrics,
		Notes: []string{
			"Fused-layer pipelines are capacity-insensitive but pay a full shortcut round trip per residual block and a group break at every multi-consumer producer. Shortcut Mining wins wherever the block working set fits the pool (SqueezeNet, ResNet-34 at the default 544 KiB; ResNet-152 once the pool reaches its bottleneck working set) — the complementary regimes the paper's related-work section describes.",
		},
	}, nil
}
