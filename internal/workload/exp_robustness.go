package workload

import (
	"fmt"

	"shortcutmining/internal/core"
	"shortcutmining/internal/fault"
	"shortcutmining/internal/nn"
	"shortcutmining/internal/stats"
)

func init() {
	register(Experiment{
		ID:     "E22",
		Title:  "Graceful degradation under faults",
		Anchor: "robustness extension (not in the paper): SCM's traffic advantage should degrade gracefully — not collapse — as SRAM banks hard-fail mid-run, while the baseline, which keeps nothing on chip, is flat by construction; DMA retry and bandwidth faults cost cycles but never inflate payload traffic.",
		Run:    runE22,
	})
}

// e22Seed fixes every random choice (victim banks) of the experiment.
const e22Seed = 22

func runE22(cfg core.Config) (Result, error) {
	// Bank-failure sweep: 0%, ~12%, ~25% of the pool retired mid-run,
	// split across an early and a mid-network layer.
	fractions := []struct {
		label string
		banks int
	}{
		{"0%", 0},
		{"12%", cfg.Pool.NumBanks * 12 / 100},
		{"25%", cfg.Pool.NumBanks * 25 / 100},
	}
	t := stats.NewTable(
		fmt.Sprintf("Feature-map traffic (MB) with banks hard-failing mid-run (pool = %d banks)", cfg.Pool.NumBanks),
		"network", "failed banks", "baseline", "scm", "scm inflation vs fault-free", "scm reduction vs baseline")
	metrics := map[string]float64{}
	for _, h := range headline {
		net, err := nn.Build(h.name)
		if err != nil {
			return Result{}, err
		}
		var cleanSCM stats.RunStats
		for _, fr := range fractions {
			fcfg := cfg
			if fr.banks > 0 {
				fcfg.Faults = fault.UniformBankFailures(e22Seed, fr.banks, 2, 8)
			}
			base, err := core.Simulate(net, fcfg, core.Baseline, nil)
			if err != nil {
				return Result{}, err
			}
			scm, err := core.Simulate(net, fcfg, core.SCM, nil)
			if err != nil {
				return Result{}, err
			}
			if fr.banks == 0 {
				cleanSCM = scm
			}
			inflation := float64(scm.FmapTrafficBytes())/float64(cleanSCM.FmapTrafficBytes()) - 1
			metrics[fmt.Sprintf("inflation/%s/%s", h.name, fr.label)] = inflation
			metrics[fmt.Sprintf("reduction/%s/%s", h.name, fr.label)] = scm.TrafficReductionVs(base)
			t.Add(h.name, fmt.Sprintf("%d (%s)", fr.banks, fr.label),
				stats.F2(float64(base.FmapTrafficBytes())/1e6),
				stats.F2(float64(scm.FmapTrafficBytes())/1e6),
				stats.Pct(inflation),
				stats.Pct(scm.TrafficReductionVs(base)))
		}
	}

	// Channel adversity: transient DMA failures plus a mid-run
	// bandwidth drop. Payload traffic must not move; cycles may.
	adv := cfg
	adv.Faults = &fault.Spec{
		Seed:     e22Seed,
		DropProb: 0.05,
		Events: []fault.Event{
			{Kind: fault.BandwidthDegrade, Layer: 4, Factor: 0.75},
		},
	}
	t2 := stats.NewTable(
		"DMA drops (p=0.05) + bandwidth degradation (0.75x from layer 4): cycle cost without traffic inflation",
		"network", "strategy", "dma retries", "retry cycles", "degraded cycles", "throughput vs fault-free", "traffic moved?")
	for _, h := range headline {
		net, err := nn.Build(h.name)
		if err != nil {
			return Result{}, err
		}
		for _, s := range []core.Strategy{core.Baseline, core.SCM} {
			clean, err := core.Simulate(net, cfg, s, nil)
			if err != nil {
				return Result{}, err
			}
			faulty, err := core.Simulate(net, adv, s, nil)
			if err != nil {
				return Result{}, err
			}
			moved := "no"
			if faulty.Traffic != clean.Traffic {
				moved = "YES (bug)"
			}
			rel := faulty.Throughput() / clean.Throughput()
			metrics[fmt.Sprintf("adversity-throughput/%s/%s", h.name, s)] = rel
			t2.Add(h.name, s.String(),
				fmt.Sprintf("%d", faulty.Faults.DMARetries),
				fmt.Sprintf("%d", faulty.Faults.DMARetryCycles),
				fmt.Sprintf("%d", faulty.Faults.DegradedCycles),
				stats.Pct(rel),
				moved)
		}
	}

	return Result{
		Tables:  []*stats.Table{t, t2},
		Metrics: metrics,
		Notes: []string{
			"Bank failures only touch designs that keep state in the pool: the baseline's ping-pong split is a static budget, so its traffic is identical in every row, while SCM loses retention capacity bank by bank — relocating pinned shortcut data to spares while they last, then P5-spilling the tail — and its traffic inflates smoothly toward (but stays below) the baseline. Functional mode replays the same fault plans bit-exactly (see TestFunctionalBitExactUnderFaults).",
			"DMA retries re-move bytes that already count once in the traffic tally, so the paper's headline metric is retry-invariant by construction; the cost shows up purely as retry/backoff and degraded-bandwidth cycles serialized into the affected layers.",
		},
	}, nil
}
