package workload

import (
	"fmt"

	"shortcutmining/internal/compress"
	"shortcutmining/internal/core"
	"shortcutmining/internal/nn"
	"shortcutmining/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E25",
		Title: "Interlayer compression × shortcut mining: composable traffic axes",
		Anchor: "compression extension (not in the paper): an interlayer feature-map codec at " +
			"the DRAM boundary attacks the bytes shortcut mining cannot eliminate — whatever " +
			"still crosses the pins moves compressed, while weights are untouched. The two " +
			"mechanisms compose because they act on disjoint margins: mining removes transfers, " +
			"compression shrinks the survivors, so the combined arm never moves more feature-map " +
			"bytes than the better single mechanism on any shortcut-bearing network.",
		Run: runE25,
	})
}

// e25Nets is the paper's headline trio plus the bypass-free SqueezeNet
// as a control: it has no residual adds, so any mining gain there is
// concat reuse — composition must hold without a shortcut class.
var e25Nets = []string{"squeezenet-bypass", "resnet34", "resnet152", "squeezenet"}

// e25Ratios sweeps the fixed-rate codec's nominal ratio; 2× sits in the
// band typical zero-value/delta codecs reach on post-ReLU activations.
var e25Ratios = []float64{1.5, 2, 4}

// hasShortcut reports whether the topology carries a residual/bypass
// add — the structural feature that gives mining its advantage.
func hasShortcut(net *nn.Network) bool {
	for _, l := range net.Layers {
		if l.Kind == nn.OpEltwiseAdd {
			return true
		}
	}
	return false
}

func runE25(cfg core.Config) (Result, error) {
	metrics := map[string]float64{}
	var tables []*stats.Table

	type arms struct {
		base, mine stats.RunStats // codec-independent arms, computed once
		shortcut   bool
	}
	fixed := map[string]arms{}
	for _, name := range e25Nets {
		net, err := nn.Build(name)
		if err != nil {
			return Result{}, err
		}
		base, err := core.Simulate(net, cfg, core.Baseline, nil)
		if err != nil {
			return Result{}, err
		}
		mine, err := core.Simulate(net, cfg, core.SCM, nil)
		if err != nil {
			return Result{}, err
		}
		fixed[name] = arms{base: base, mine: mine, shortcut: hasShortcut(net)}
	}

	composeOK := 1.0
	for _, ratio := range e25Ratios {
		cc, err := compress.ParseSpec(fmt.Sprintf("fixed:ratio=%g,enc=2,dec=2", ratio))
		if err != nil {
			return Result{}, err
		}
		ccfg := cfg
		ccfg.Compression = cc
		t := stats.NewTable(
			fmt.Sprintf("Feature-map DRAM traffic by arm, %g× fixed codec (MiB)", ratio),
			"network", "baseline", "mining-only", "compression-only", "both", "both vs best single")
		for _, name := range e25Nets {
			net, err := nn.Build(name)
			if err != nil {
				return Result{}, err
			}
			comp, err := core.Simulate(net, ccfg, core.Baseline, nil)
			if err != nil {
				return Result{}, err
			}
			both, err := core.Simulate(net, ccfg, core.SCM, nil)
			if err != nil {
				return Result{}, err
			}
			f := fixed[name]
			key := fmt.Sprintf("%s/r%g", name, ratio)
			metrics["fmap_mb/"+key+"/baseline"] = float64(f.base.FmapTrafficBytes()) / (1 << 20)
			metrics["fmap_mb/"+key+"/mining"] = float64(f.mine.FmapTrafficBytes()) / (1 << 20)
			metrics["fmap_mb/"+key+"/compression"] = float64(comp.FmapTrafficBytes()) / (1 << 20)
			metrics["fmap_mb/"+key+"/both"] = float64(both.FmapTrafficBytes()) / (1 << 20)
			best := f.mine.FmapTrafficBytes()
			if comp.FmapTrafficBytes() < best {
				best = comp.FmapTrafficBytes()
			}
			ok := 1.0
			if f.shortcut && both.FmapTrafficBytes() > best {
				ok, composeOK = 0, 0
			}
			metrics["compose_ok/"+key] = ok
			t.Add(name,
				stats.MB(f.base.FmapTrafficBytes()),
				stats.MB(f.mine.FmapTrafficBytes()),
				stats.MB(comp.FmapTrafficBytes()),
				stats.MB(both.FmapTrafficBytes()),
				fmt.Sprintf("%.2f×", float64(best)/float64(both.FmapTrafficBytes())))
		}
		tables = append(tables, t)
	}
	metrics["compose_ok"] = composeOK

	return Result{
		Tables:  tables,
		Metrics: metrics,
		Notes: []string{
			"On every shortcut-bearing network the combined arm moves no more feature-map DRAM " +
				"bytes than the better of mining-only and compression-only at every codec ratio: " +
				"mining removes whole transfers (reused inputs, pinned shortcuts), the codec " +
				"shrinks the residue, and neither mechanism inflates the other's margin. The " +
				"bypass-free SqueezeNet control has no residual adds — its mining gain is pure " +
				"concat reuse — and the composition holds there too, so the claim is not an " +
				"artifact of the shortcut traffic class. Weight traffic is identical in all four " +
				"arms; the codec never touches it.",
		},
	}, nil
}
