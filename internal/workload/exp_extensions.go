package workload

import (
	"fmt"

	"shortcutmining/internal/core"
	"shortcutmining/internal/dram"
	"shortcutmining/internal/nn"
	"shortcutmining/internal/stats"
)

func init() {
	register(Experiment{
		ID:     "E14",
		Title:  "Modern networks (extension)",
		Anchor: "generality of the procedures beyond the paper's 2019 zoo (depthwise bottlenecks, inception concats)",
		Run:    runE14,
	})
	register(Experiment{
		ID:     "E15",
		Title:  "Retention-conflict policy study (extension)",
		Anchor: "design choice in P5: the paper never evicts pinned shortcut data; compare against Belady-style eviction",
		Run:    runE15,
	})
	register(Experiment{
		ID:     "E16",
		Title:  "Feature-map channel bandwidth sensitivity",
		Anchor: "throughput claim's dependence on the memory-bound regime (DDR timing derivation in internal/dram)",
		Run:    runE16,
	})
}

func runE14(cfg core.Config) (Result, error) {
	t := stats.NewTable("Modern networks on the calibrated platform",
		"network", "shortcut share", "baseline (MiB)", "scm (MiB)", "reduction", "speedup")
	metrics := map[string]float64{}
	for _, name := range []string{"mobilenetv2", "googlenet", "resnext50", "shufflenetv1", "densenet121", "squeezenet-complex", "resnet50"} {
		net, err := nn.Build(name)
		if err != nil {
			return Result{}, err
		}
		ch := nn.Characterize(net, cfg.DType)
		base, err := core.Simulate(net, cfg, core.Baseline, nil)
		if err != nil {
			return Result{}, err
		}
		scm, err := core.Simulate(net, cfg, core.SCM, nil)
		if err != nil {
			return Result{}, err
		}
		red := scm.TrafficReductionVs(base)
		sp := scm.SpeedupVs(base)
		metrics["red/"+name] = red
		metrics["speedup/"+name] = sp
		t.Add(name, stats.Pct(ch.ShortcutShare),
			stats.MB(base.FmapTrafficBytes()), stats.MB(scm.FmapTrafficBytes()),
			stats.Pct(red), stats.F2(sp)+"×")
	}
	return Result{
		Tables:  []*stats.Table{t},
		Metrics: metrics,
		Notes: []string{
			"GoogLeNet's four-branch concats make its shortcut share the highest in the zoo (≈40%) and it benefits accordingly; MobileNetV2's 6×-expanded hidden maps dominate its traffic, so even full shortcut reuse moves a smaller fraction; DenseNet-121's 535 shortcut edges with spans up to 71 layers exercise retention hardest — the procedures generalize, and the magnitude tracks the shortcut share.",
		},
	}, nil
}

func runE15(cfg core.Config) (Result, error) {
	pools := []int64{256, 384, 544, 768}
	header := []string{"pool (KiB)"}
	for _, h := range headline {
		header = append(header, h.name+" Δtraffic", h.name+" evictions")
	}
	t := stats.NewTable("EvictFarthest vs the paper's retain-pinned policy (SCM)", header...)
	metrics := map[string]float64{}
	for _, kb := range pools {
		row := []string{fmt.Sprint(kb)}
		for _, h := range headline {
			net, err := nn.Build(h.name)
			if err != nil {
				return Result{}, err
			}
			c := cfg.WithPoolBytes(kb << 10)
			keep, err := core.Simulate(net, c, core.SCM, nil)
			if err != nil {
				return Result{}, err
			}
			c.Eviction = core.EvictFarthest
			evict, err := core.Simulate(net, c, core.SCM, nil)
			if err != nil {
				return Result{}, err
			}
			delta := float64(evict.FmapTrafficBytes())/float64(keep.FmapTrafficBytes()) - 1
			metrics[fmt.Sprintf("delta/%s/%d", h.name, kb)] = delta
			metrics[fmt.Sprintf("evictions/%s/%d", h.name, kb)] = float64(evict.BanksEvicted)
			row = append(row, fmt.Sprintf("%+.2f%%", 100*delta), fmt.Sprint(evict.BanksEvicted))
		}
		t.Add(row...)
	}
	return Result{
		Tables:  []*stats.Table{t},
		Metrics: metrics,
		Notes: []string{
			"Belady-style eviction trades a far shortcut re-fetch for near output retention. On these workloads the gain stays within a few percent either way, supporting the paper's simpler never-evict choice — the shortcut's consumer is rarely far enough to lose a Belady comparison against the next layer's output at these pool sizes.",
		},
	}, nil
}

func runE16(cfg core.Config) (Result, error) {
	// The DDR derivation behind the sweep's anchor points.
	ddr := dram.DDR3_1600()
	strided, err := ddr.EffectiveGBps(48, 0.2)
	if err != nil {
		return Result{}, err
	}
	seq, err := ddr.EffectiveGBps(4096, 0.95)
	if err != nil {
		return Result{}, err
	}

	header := []string{"fmap channel (GB/s)"}
	for _, h := range headline {
		header = append(header, h.name+" speedup")
	}
	t := stats.NewTable("SCM speedup vs feature-map channel bandwidth", header...)
	metrics := map[string]float64{}
	for _, bw := range []float64{0.5, 1.0, 2.0, 4.0, 8.0, 12.8} {
		row := []string{fmt.Sprintf("%.1f", bw)}
		for _, h := range headline {
			net, err := nn.Build(h.name)
			if err != nil {
				return Result{}, err
			}
			c := cfg
			c.DRAM.BandwidthGBps = bw
			base, err := core.Simulate(net, c, core.Baseline, nil)
			if err != nil {
				return Result{}, err
			}
			scm, err := core.Simulate(net, c, core.SCM, nil)
			if err != nil {
				return Result{}, err
			}
			sp := scm.SpeedupVs(base)
			metrics[fmt.Sprintf("speedup/%s/%.1f", h.name, bw)] = sp
			row = append(row, stats.F2(sp)+"×")
		}
		t.Add(row...)
	}
	var charts []string
	bws := []float64{0.5, 1.0, 2.0, 4.0, 8.0, 12.8}
	for _, h := range headline {
		labels := make([]string, len(bws))
		values := make([]float64, len(bws))
		for i, bw := range bws {
			labels[i] = fmt.Sprintf("%.1f GB/s", bw)
			values[i] = metrics[fmt.Sprintf("speedup/%s/%.1f", h.name, bw)]
		}
		charts = append(charts, stats.Chart(h.name+" — SCM speedup vs fmap bandwidth", labels, values, 40))
	}
	return Result{
		Tables:  []*stats.Table{t},
		Charts:  charts,
		Metrics: metrics,
		Notes: []string{
			fmt.Sprintf("DDR3-1600 derivation (internal/dram): %.2f GB/s effective for the short strided bursts of the feature-map stream (48 B transactions, 20%% row hits) vs %.2f GB/s for sequential weight streaming — the calibrated 1.0 GB/s default and the dedicated 12.8 GB/s weight channel.", strided, seq),
			"The speedup decays toward 1× as the feature-map channel fattens and the design becomes compute-bound — traffic reduction is unchanged, but it no longer buys time. The paper's throughput claim presumes the memory-bound regime on the left of this table.",
		},
	}, nil
}
