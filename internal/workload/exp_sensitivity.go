package workload

import (
	"fmt"

	"shortcutmining/internal/core"
	"shortcutmining/internal/stats"
	"shortcutmining/internal/tensor"
)

func init() {
	register(Experiment{
		ID:     "E6",
		Title:  "On-chip buffer capacity sensitivity",
		Anchor: "buffer-size sensitivity figure",
		Run:    runE6,
	})
	register(Experiment{
		ID:     "E7",
		Title:  "Off-chip access energy",
		Anchor: "energy reduction figure",
		Run:    runE7,
	})
	register(Experiment{
		ID:     "E11",
		Title:  "Batch-size sensitivity",
		Anchor: "batch discussion (single-image pipelining)",
		Run:    runE11,
	})
	register(Experiment{
		ID:     "E12",
		Title:  "Precision sensitivity",
		Anchor: "16-bit fixed-point prototype (extension: 8/32-bit)",
		Run:    runE12,
	})
}

// poolSweepKiB is the capacity axis of E6.
var poolSweepKiB = []int64{128, 256, 384, 544, 768, 1024, 1536, 2048, 4096}

func runE6(cfg core.Config) (Result, error) {
	header := []string{"pool (KiB)"}
	for _, h := range headline {
		header = append(header, h.name+" reduction")
	}
	t := stats.NewTable("SCM traffic reduction vs pool capacity", header...)
	metrics := map[string]float64{}
	for _, kb := range poolSweepKiB {
		row := []string{fmt.Sprint(kb)}
		c := cfg.WithPoolBytes(kb << 10)
		for _, h := range headline {
			base, err := simulate(h.name, c, core.Baseline)
			if err != nil {
				return Result{}, err
			}
			scm, err := simulate(h.name, c, core.SCM)
			if err != nil {
				return Result{}, err
			}
			red := scm.TrafficReductionVs(base)
			metrics[fmt.Sprintf("red/%s/%d", h.name, kb)] = red
			row = append(row, stats.Pct(red))
		}
		t.Add(row...)
	}
	var charts []string
	for _, h := range headline {
		labels := make([]string, len(poolSweepKiB))
		values := make([]float64, len(poolSweepKiB))
		for i, kb := range poolSweepKiB {
			labels[i] = fmt.Sprintf("%d KiB", kb)
			values[i] = 100 * metrics[fmt.Sprintf("red/%s/%d", h.name, kb)]
		}
		charts = append(charts, stats.Chart(h.name+" — SCM reduction (%) vs pool capacity", labels, values, 40))
	}
	return Result{
		Tables:  []*stats.Table{t},
		Charts:  charts,
		Metrics: metrics,
		Notes: []string{
			"Reduction grows monotonically with capacity and saturates once every live feature map (including the pinned shortcut) fits; ResNet-152's wide bottleneck fmaps saturate last.",
		},
	}, nil
}

func runE7(cfg core.Config) (Result, error) {
	t := stats.NewTable("Access energy per image",
		"network", "baseline DRAM (mJ)", "scm DRAM (mJ)", "DRAM reduction",
		"baseline total (mJ)", "scm total (mJ)", "total reduction")
	metrics := map[string]float64{}
	for _, h := range headline {
		base, err := simulate(h.name, cfg, core.Baseline)
		if err != nil {
			return Result{}, err
		}
		scm, err := simulate(h.name, cfg, core.SCM)
		if err != nil {
			return Result{}, err
		}
		dRed := 1 - scm.Energy.DRAMPJ/base.Energy.DRAMPJ
		tRed := 1 - scm.Energy.TotalPJ()/base.Energy.TotalPJ()
		metrics["dram/"+h.name] = dRed
		metrics["total/"+h.name] = tRed
		t.Add(h.name,
			fmt.Sprintf("%.2f", base.Energy.DRAMPJ/1e9), fmt.Sprintf("%.2f", scm.Energy.DRAMPJ/1e9),
			stats.Pct(dRed),
			fmt.Sprintf("%.2f", base.Energy.TotalMJ()), fmt.Sprintf("%.2f", scm.Energy.TotalMJ()),
			stats.Pct(tRed))
	}
	return Result{
		Tables:  []*stats.Table{t},
		Metrics: metrics,
		Notes: []string{
			"DRAM access energy tracks traffic almost linearly (weights are untouched, so DRAM reduction is diluted relative to the feature-map-only metric).",
		},
	}, nil
}

func runE11(cfg core.Config) (Result, error) {
	t := stats.NewTable("Batch-size sensitivity (ResNet-34)",
		"batch", "baseline (img/s)", "scm (img/s)", "speedup",
		"scm fmap traffic (MiB)", "scm total traffic, weights amortized (MiB)")
	metrics := map[string]float64{}
	for _, b := range []int{1, 2, 4, 8} {
		c := cfg
		c.Batch = b
		base, err := simulate("resnet34", c, core.Baseline)
		if err != nil {
			return Result{}, err
		}
		scm, err := simulate("resnet34", c, core.SCM)
		if err != nil {
			return Result{}, err
		}
		c.AmortizeWeights = true
		amort, err := simulate("resnet34", c, core.SCM)
		if err != nil {
			return Result{}, err
		}
		sp := scm.SpeedupVs(base)
		metrics[fmt.Sprintf("speedup/%d", b)] = sp
		metrics[fmt.Sprintf("amortTotalMiB/%d", b)] = float64(amort.TotalTrafficBytes()) / (1 << 20)
		t.Add(fmt.Sprint(b), stats.F2(base.Throughput()), stats.F2(scm.Throughput()),
			stats.F2(sp)+"×", stats.MB(scm.FmapTrafficBytes()), stats.MB(amort.TotalTrafficBytes()))
	}
	return Result{
		Tables:  []*stats.Table{t},
		Metrics: metrics,
		Notes: []string{
			"Images are pipelined one at a time (the paper's deployment regime), so feature-map traffic and latency scale linearly and the speedup is batch-invariant. The amortized column shows the total-traffic benefit of a layer-inner batch loop: weights stream once per batch, so per-image total traffic falls with batch size even though feature-map traffic does not.",
		},
	}, nil
}

func runE12(cfg core.Config) (Result, error) {
	t := stats.NewTable("Precision sensitivity (SCM traffic reduction)",
		"precision", "squeezenet-bypass", "resnet34", "resnet152")
	metrics := map[string]float64{}
	for _, d := range []tensor.DataType{tensor.Fixed8, tensor.Fixed16, tensor.Float32} {
		c := cfg
		c.DType = d
		row := []string{d.String()}
		for _, h := range headline {
			base, err := simulate(h.name, c, core.Baseline)
			if err != nil {
				return Result{}, err
			}
			scm, err := simulate(h.name, c, core.SCM)
			if err != nil {
				return Result{}, err
			}
			red := scm.TrafficReductionVs(base)
			metrics[fmt.Sprintf("red/%s/%s", d, h.name)] = red
			row = append(row, stats.Pct(red))
		}
		t.Add(row...)
	}
	return Result{
		Tables:  []*stats.Table{t},
		Metrics: metrics,
		Notes: []string{
			"Narrower activations shrink every feature map relative to the fixed pool, so retention covers more of the network and the reduction grows — quantization and Shortcut Mining compose.",
		},
	}, nil
}
