package workload

import (
	"fmt"
	"math"

	"shortcutmining/internal/core"
)

// This file documents and automates the calibration behind
// core.Default(). The paper's prototype parameters (exact buffer
// provisioning, measured bandwidths) are not available, so the
// platform is chosen to minimize the distance to the abstract's
// quantitative claims:
//
//   - traffic reductions 53.3% / 58% / 43% for SqueezeNet-bypass /
//     ResNet-34 / ResNet-152,
//   - 1.93× geomean throughput.
//
// The knobs with leverage are the bank-pool capacity and the streaming
// reserve (they set where partial retention bites) and the feature-map
// channel bandwidth (it sets how memory-bound the baseline is). The PE
// array is pinned to the device's DSP budget (64×56 = 3584 on a
// VC709) and the weight channel to the second SODIMM's pin rate.

// CalibrationTarget is the paper's claims as an optimization target.
type CalibrationTarget struct {
	Reductions map[string]float64 // network → fractional reduction
	Speedup    float64            // geomean
}

// PaperTarget returns the abstract's numbers.
func PaperTarget() CalibrationTarget {
	return CalibrationTarget{
		Reductions: map[string]float64{
			"squeezenet-bypass": 0.533,
			"resnet34":          0.58,
			"resnet152":         0.43,
		},
		Speedup: 1.93,
	}
}

// CalibrationError scores a platform against the target: the RMS of
// the per-network reduction errors plus the relative speedup error,
// all in comparable (fractional) units.
func CalibrationError(cfg core.Config, target CalibrationTarget) (float64, error) {
	var sumSq float64
	var speedups []float64
	for name, want := range target.Reductions {
		base, err := simulate(name, cfg, core.Baseline)
		if err != nil {
			return 0, err
		}
		scm, err := simulate(name, cfg, core.SCM)
		if err != nil {
			return 0, err
		}
		diff := scm.TrafficReductionVs(base) - want
		sumSq += diff * diff
		speedups = append(speedups, scm.SpeedupVs(base))
	}
	rms := math.Sqrt(sumSq / float64(len(target.Reductions)))
	spErr := math.Abs(geomean(speedups)-target.Speedup) / target.Speedup
	return rms + spErr, nil
}

// CalibrationPoint is one candidate in the calibration search.
type CalibrationPoint struct {
	Banks   int
	Reserve int
	Error   float64
}

// Calibrate sweeps the pool geometry around the base config and
// returns the candidates sorted by error (best first). It is the
// reproducible record of how the default platform was chosen.
func Calibrate(base core.Config, target CalibrationTarget, banks []int, reserves []int) ([]CalibrationPoint, error) {
	if len(banks) == 0 || len(reserves) == 0 {
		return nil, fmt.Errorf("workload: empty calibration grid")
	}
	var points []CalibrationPoint
	for _, b := range banks {
		for _, r := range reserves {
			if r >= b {
				continue
			}
			cfg := base
			cfg.Pool.NumBanks = b
			cfg.ReserveBanks = r
			e, err := CalibrationError(cfg, target)
			if err != nil {
				return nil, err
			}
			points = append(points, CalibrationPoint{Banks: b, Reserve: r, Error: e})
		}
	}
	// Insertion sort: the grid is tiny.
	for i := 1; i < len(points); i++ {
		for j := i; j > 0 && points[j].Error < points[j-1].Error; j-- {
			points[j], points[j-1] = points[j-1], points[j]
		}
	}
	return points, nil
}
