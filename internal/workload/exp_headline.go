package workload

import (
	"fmt"

	"shortcutmining/internal/core"
	"shortcutmining/internal/nn"
	"shortcutmining/internal/stats"
)

func init() {
	register(Experiment{
		ID:     "E3",
		Title:  "Off-chip feature-map traffic reduction",
		Anchor: "“53.3%, 58%, and 43% reduction in off-chip feature map traffic for SqueezeNet, ResNet-34, and ResNet-152”",
		Run:    runE3,
	})
	register(Experiment{
		ID:     "E4",
		Title:  "Throughput",
		Anchor: "“a 1.93X increase in throughput compared with a state-of-the-art accelerator”",
		Run:    runE4,
	})
	register(Experiment{
		ID:     "E5",
		Title:  "Per-stage traffic breakdown (ResNet-34)",
		Anchor: "per-layer traffic figure",
		Run:    runE5,
	})
}

func runE3(cfg core.Config) (Result, error) {
	t := stats.NewTable("Off-chip feature-map traffic (per image)",
		"network", "baseline (MiB)", "fm-reuse (MiB)", "scm (MiB)",
		"fm-reuse reduction", "scm reduction", "paper")
	metrics := map[string]float64{}
	for _, h := range headline {
		base, err := simulate(h.name, cfg, core.Baseline)
		if err != nil {
			return Result{}, err
		}
		fmr, err := simulate(h.name, cfg, core.FMReuse)
		if err != nil {
			return Result{}, err
		}
		scm, err := simulate(h.name, cfg, core.SCM)
		if err != nil {
			return Result{}, err
		}
		red := scm.TrafficReductionVs(base)
		metrics["reduction/"+h.name] = red
		t.Add(h.name,
			stats.MB(base.FmapTrafficBytes()),
			stats.MB(fmr.FmapTrafficBytes()),
			stats.MB(scm.FmapTrafficBytes()),
			stats.Pct(fmr.TrafficReductionVs(base)),
			stats.Pct(red),
			stats.Pct(h.paperRed))
	}
	return Result{
		Tables:  []*stats.Table{t},
		Metrics: metrics,
		Notes: []string{
			"The fm-reuse column isolates role switching (what a cross-layer-fusion accelerator achieves); the gap to the scm column is the shortcut data the paper mines.",
		},
	}, nil
}

func runE4(cfg core.Config) (Result, error) {
	t := stats.NewTable("Throughput (batch 1)",
		"network", "baseline (img/s)", "scm (img/s)", "speedup",
		"baseline GOPS", "scm GOPS")
	metrics := map[string]float64{}
	var speedups []float64
	for _, h := range headline {
		base, err := simulate(h.name, cfg, core.Baseline)
		if err != nil {
			return Result{}, err
		}
		scm, err := simulate(h.name, cfg, core.SCM)
		if err != nil {
			return Result{}, err
		}
		sp := scm.SpeedupVs(base)
		speedups = append(speedups, sp)
		metrics["speedup/"+h.name] = sp
		t.Add(h.name,
			stats.F2(base.Throughput()), stats.F2(scm.Throughput()),
			stats.F2(sp)+"×", stats.F2(base.GOPS()), stats.F2(scm.GOPS()))
	}
	geo := geomean(speedups)
	metrics["speedup/geomean"] = geo
	t.Add("geomean", "", "", stats.F2(geo)+"×", "", "")
	return Result{
		Tables:  []*stats.Table{t},
		Metrics: metrics,
		Notes: []string{
			fmt.Sprintf("Geomean speedup %.2f× vs the paper's 1.93×; the baseline is feature-map bound on the calibrated platform, so traffic saved converts to time saved.", geo),
		},
	}, nil
}

func runE5(cfg core.Config) (Result, error) {
	net, err := nn.Build("resnet34")
	if err != nil {
		return Result{}, err
	}
	base, err := core.Simulate(net, cfg, core.Baseline, nil)
	if err != nil {
		return Result{}, err
	}
	scm, err := core.Simulate(net, cfg, core.SCM, nil)
	if err != nil {
		return Result{}, err
	}
	order, bAgg := base.StageTraffic()
	_, sAgg := scm.StageTraffic()
	t := stats.NewTable("ResNet-34 per-stage feature-map traffic",
		"stage", "baseline (MiB)", "scm (MiB)", "reduction")
	metrics := map[string]float64{}
	for _, st := range order {
		if st == "(none)" || bAgg[st] == 0 {
			continue
		}
		red := 1 - float64(sAgg[st])/float64(bAgg[st])
		metrics["stage/"+st] = red
		t.Add(st, stats.MB(bAgg[st]), stats.MB(sAgg[st]), stats.Pct(red))
	}
	return Result{
		Tables:  []*stats.Table{t},
		Metrics: metrics,
		Notes: []string{
			"Early stages (large feature maps vs. pool capacity) spill under partial retention; late stages are served entirely on chip — the shape the paper's per-layer figure shows.",
		},
	}, nil
}
