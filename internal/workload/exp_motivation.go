package workload

import (
	"fmt"

	"shortcutmining/internal/core"
	"shortcutmining/internal/fpga"
	"shortcutmining/internal/nn"
	"shortcutmining/internal/stats"
	"shortcutmining/internal/tensor"
)

func init() {
	register(Experiment{
		ID:     "E1",
		Title:  "Network characteristics and shortcut data share",
		Anchor: "“Those shortcut data accounts for nearly 40% of the total feature map data.”",
		Run:    runE1,
	})
	register(Experiment{
		ID:     "E2",
		Title:  "Accelerator configuration and FPGA feasibility",
		Anchor: "FPGA prototype platform table",
		Run:    runE2,
	})
}

func runE1(cfg core.Config) (Result, error) {
	nets := []string{"squeezenet-bypass", "resnet34", "resnet152", "resnet50", "squeezenet", "vgg16", "plain34"}
	t := stats.NewTable("Benchmark networks (224×224 input, 16-bit fixed point)",
		"network", "conv", "fc", "shortcut edges", "max span", "fmap data (MiB)", "shortcut traffic (MiB)", "shortcut share")
	metrics := map[string]float64{}
	for _, name := range nets {
		net, err := nn.Build(name)
		if err != nil {
			return Result{}, err
		}
		ch := nn.Characterize(net, cfg.DType)
		t.Add(name,
			fmt.Sprint(ch.ConvLayers), fmt.Sprint(ch.FCLayers),
			fmt.Sprint(ch.ShortcutEdges), fmt.Sprint(ch.MaxSpan),
			stats.MB(ch.BaselineFmapTraffic()), stats.MB(ch.ShortcutTraffic),
			stats.Pct(ch.ShortcutShare))
		metrics["share/"+name] = ch.ShortcutShare
	}
	return Result{
		Tables:  []*stats.Table{t},
		Metrics: metrics,
		Notes: []string{
			"Shortcut traffic counts the store and the later re-load of every feature map that must cross at least one intermediate layer before its consumer, under conventional per-layer DRAM round trips — the data Shortcut Mining targets.",
		},
	}, nil
}

func runE2(cfg core.Config) (Result, error) {
	t := stats.NewTable("Platform configuration (calibrated default)",
		"parameter", "value")
	t.Add("PE array", fmt.Sprintf("%d × %d MACs @ %g MHz", cfg.PE.Tn, cfg.PE.Tm, cfg.PE.ClockMHz))
	t.Add("feature-map SRAM pool", fmt.Sprintf("%d banks × %d KiB = %s",
		cfg.Pool.NumBanks, cfg.Pool.BankBytes>>10, tensor.HumanBytes(cfg.Pool.TotalBytes())))
	t.Add("weight buffer", tensor.HumanBytes(cfg.WeightBufBytes)+" (double-buffered)")
	t.Add("feature-map DDR channel", fmt.Sprintf("%.1f GB/s effective", cfg.DRAM.BandwidthGBps))
	t.Add("weight DDR channel", fmt.Sprintf("%.1f GB/s (dedicated)", cfg.WeightBandwidthGBps))
	t.Add("precision", cfg.DType.String())
	t.Add("streaming reserve", fmt.Sprintf("%d banks", cfg.ReserveBanks))

	ft := stats.NewTable("Virtex-7 VC709 utilization (analytical model)",
		"design", "BRAM36", "DSP", "LUT", "crossbar LUT", "fits", "clock (MHz)")
	metrics := map[string]float64{}
	for _, logical := range []bool{false, true} {
		rep, err := fpga.Estimate(fpga.VC709(), designFor(cfg, logical))
		if err != nil {
			return Result{}, err
		}
		name := "baseline (fixed buffers)"
		if logical {
			name = "shortcut mining (bank pool)"
			metrics["crossbarOverhead"] = rep.OverheadVsBaseline()
		}
		ft.Add(name,
			fmt.Sprintf("%d (%.0f%%)", rep.BRAMUsed, 100*rep.BRAMUtil),
			fmt.Sprintf("%d (%.0f%%)", rep.DSPUsed, 100*rep.DSPUtil),
			fmt.Sprintf("%d (%.0f%%)", rep.LUTUsed, 100*rep.LUTUtil),
			fmt.Sprint(rep.CrossbarLUTs),
			fmt.Sprint(rep.Fits), fmt.Sprintf("%.0f", rep.ClockMHz))
	}
	return Result{
		Tables:  []*stats.Table{t, ft},
		Metrics: metrics,
		Notes: []string{
			"Both designs use identical storage; logical buffers cost only the port-to-bank crossbar, mirroring the paper's argument that the flexibility is cheap.",
		},
	}, nil
}

// designFor maps the platform config onto the FPGA resource model.
func designFor(cfg core.Config, logical bool) fpga.Design {
	return fpga.Design{
		MACs:           cfg.PE.NumMACs(),
		PoolBanks:      cfg.Pool.NumBanks,
		BankBytes:      cfg.Pool.BankBytes,
		WeightBufBytes: cfg.WeightBufBytes,
		LogicalBuffers: logical,
	}
}
