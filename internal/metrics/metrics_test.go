package metrics

import (
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(41)
	c.Add(-7) // counters only go up
	if got := c.Value(); got != 42 {
		t.Errorf("value = %d, want 42", got)
	}
	if r.Counter("c_total", "help") != c {
		t.Error("re-registration returned a different series")
	}
}

func TestCounterLabels(t *testing.T) {
	r := New()
	a := r.Counter("x_total", "h", L("class", "a"))
	b := r.Counter("x_total", "h", L("class", "b"))
	if a == b {
		t.Fatal("distinct label sets share a series")
	}
	a.Add(3)
	b.Add(4)
	if got := r.SumCounter("x_total"); got != 7 {
		t.Errorf("SumCounter = %d, want 7", got)
	}
	// Label order must not matter.
	two := r.Counter("y_total", "h", L("a", "1"), L("b", "2"))
	two.Inc()
	if got := r.Counter("y_total", "h", L("b", "2"), L("a", "1")); got != two {
		t.Error("label order created a second series")
	}
}

func TestGaugePeak(t *testing.T) {
	r := New()
	g := r.Gauge("g", "h")
	g.Set(5)
	g.Set(2)
	if g.Value() != 2 || g.Peak() != 5 {
		t.Errorf("value/peak = %g/%g, want 2/5", g.Value(), g.Peak())
	}
	g.SetMax(1) // ratchet: no effect
	if g.Value() != 2 {
		t.Errorf("SetMax lowered the gauge to %g", g.Value())
	}
	g.SetMax(9)
	if g.Value() != 9 || g.Peak() != 9 {
		t.Errorf("after SetMax(9): value/peak = %g/%g", g.Value(), g.Peak())
	}
}

func TestHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("h", "help", []float64{10, 100})
	for _, v := range []float64{1, 10, 11, 1000} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 1022 {
		t.Errorf("count/sum = %d/%g", h.Count(), h.Sum())
	}
	// Bounds are inclusive upper edges: 10 lands in the first bucket.
	want := []int64{2, 1, 1}
	for i, c := range h.BucketCounts() {
		if c != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, c, want[i])
		}
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Error("nil registry claims enabled")
	}
	c := r.Counter("c", "h")
	c.Inc() // must not panic
	g := r.Gauge("g", "h")
	g.Set(1)
	h := r.Histogram("h", "h", []float64{1})
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil instruments recorded something")
	}
	if r.Snapshot() != nil {
		t.Error("nil registry produced a snapshot")
	}
	if err := r.WriteProm(nil); err != nil {
		t.Errorf("nil WriteProm: %v", err)
	}
	if r.SumCounter("c") != 0 {
		t.Error("nil SumCounter nonzero")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on kind mismatch")
		}
	}()
	r := New()
	r.Counter("m", "h")
	r.Gauge("m", "h")
}

func TestWriteProm(t *testing.T) {
	r := New()
	r.Counter("scm_x_total", "an x counter", L("class", `we"ird\`)).Add(7)
	r.Gauge("scm_g", "a gauge").Set(2.5)
	h := r.Histogram("scm_h", "a histogram", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(5)
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP scm_x_total an x counter",
		"# TYPE scm_x_total counter",
		`scm_x_total{class="we\"ird\\"} 7`,
		"# TYPE scm_g gauge",
		"scm_g 2.5",
		"# TYPE scm_h histogram",
		`scm_h_bucket{le="1"} 1`,
		`scm_h_bucket{le="2"} 1`,
		`scm_h_bucket{le="+Inf"} 2`,
		"scm_h_sum 5.5",
		"scm_h_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshot(t *testing.T) {
	r := New()
	r.Counter("c_total", "h", L("k", "v")).Add(3)
	r.Gauge("g", "h").SetMax(4)
	r.Histogram("h", "h", []float64{10}).Observe(42)
	s := r.Snapshot()
	if len(s.Counters) != 1 || s.Counters[0].Value != 3 || s.Counters[0].Labels[0].Value != "v" {
		t.Errorf("counters = %+v", s.Counters)
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Peak != 4 {
		t.Errorf("gauges = %+v", s.Gauges)
	}
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %+v", s.Histograms)
	}
	hs := s.Histograms[0]
	if hs.Count != 1 || hs.Sum != 42 {
		t.Errorf("histogram snap = %+v", hs)
	}
	// Buckets are cumulative and end at +Inf.
	if len(hs.Buckets) != 2 || hs.Buckets[0].Count != 0 || hs.Buckets[1].LE != "+Inf" || hs.Buckets[1].Count != 1 {
		t.Errorf("buckets = %+v", hs.Buckets)
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(64, 4, 3)
	if exp[0] != 64 || exp[1] != 256 || exp[2] != 1024 {
		t.Errorf("ExpBuckets = %v", exp)
	}
	lin := LinearBuckets(1, 2, 3)
	if lin[0] != 1 || lin[1] != 3 || lin[2] != 5 {
		t.Errorf("LinearBuckets = %v", lin)
	}
}
