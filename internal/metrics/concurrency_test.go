package metrics

import (
	"fmt"
	"io"
	"sync"
	"testing"
)

// TestConcurrentInstruments hammers one registry from many goroutines —
// the serving subsystem's usage pattern — and checks the totals. Run
// under -race this also proves the synchronization is complete.
func TestConcurrentInstruments(t *testing.T) {
	const (
		workers = 8
		iters   = 2000
	)
	r := New()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			// Each goroutine registers some shared and some private
			// series, exercising the registration path concurrently too.
			c := r.Counter("shared_total", "shared across goroutines")
			own := r.Counter("per_worker_total", "one series per goroutine",
				L("worker", fmt.Sprint(w)))
			g := r.Gauge("occupancy", "shared gauge")
			h := r.Histogram("samples", "shared histogram", []float64{1, 10, 100})
			for i := 0; i < iters; i++ {
				c.Inc()
				own.Inc()
				g.SetMax(float64(w*iters + i))
				h.Observe(float64(i % 200))
				if i%500 == 0 {
					// Concurrent readers must see coherent state.
					r.SumCounter("shared_total")
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	if got := r.SumCounter("shared_total"); got != workers*iters {
		t.Errorf("shared_total = %d, want %d", got, workers*iters)
	}
	if got := r.SumCounter("per_worker_total"); got != workers*iters {
		t.Errorf("per_worker_total = %d, want %d", got, workers*iters)
	}
	h := r.Histogram("samples", "", []float64{1, 10, 100})
	if h.Count() != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	g := r.Gauge("occupancy", "")
	if want := float64(workers*iters - 1); g.Peak() != want {
		t.Errorf("gauge peak = %g, want %g", g.Peak(), want)
	}
	if err := r.WriteProm(io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestGaugeAdd covers the occupancy-style up/down counter.
func TestGaugeAdd(t *testing.T) {
	var g Gauge
	g.Add(3)
	g.Add(2)
	g.Add(-4)
	if g.Value() != 1 {
		t.Errorf("value = %g, want 1", g.Value())
	}
	if g.Peak() != 5 {
		t.Errorf("peak = %g, want 5", g.Peak())
	}
	var nilGauge *Gauge
	nilGauge.Add(1) // nil-receiver safe like every instrument
}
