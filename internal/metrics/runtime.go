package metrics

import "runtime"

// Runtime metric names: the Go process underneath the simulator, as
// opposed to the simulated hardware. A serving deployment watches
// these next to the scm_serve_* family to tell an algorithmic
// regression from a runtime one (heap growth, GC pressure, goroutine
// leaks).
const (
	MetricRuntimeHeapBytes     = "scm_runtime_heap_alloc_bytes"
	MetricRuntimeHeapObjects   = "scm_runtime_heap_objects"
	MetricRuntimeSysBytes      = "scm_runtime_sys_bytes"
	MetricRuntimeGoroutines    = "scm_runtime_goroutines"
	MetricRuntimeGCTotal       = "scm_runtime_gc_total"
	MetricRuntimeGCPauses      = "scm_runtime_gc_pause_seconds"
	MetricRuntimeGoroutinesPer = "scm_runtime_goroutines_per_proc"
)

// RuntimeCollector samples Go runtime statistics into a registry: heap
// occupancy, goroutine count, cumulative GC count, and the individual
// GC stop-the-world pauses since the previous collection. The
// goroutines-per-proc gauge is the scheduler-latency proxy: when
// runnable goroutines pile up faster than GOMAXPROCS can drain them,
// the ratio climbs before request latency does.
//
// Collect is cheap (one runtime.ReadMemStats) but not free; callers
// sample it at scrape time, not per request.
type RuntimeCollector struct {
	heap, objects, sys *Gauge
	goroutines, perP   *Gauge
	gcTotal            *Counter
	pauses             *Histogram
	lastNumGC          uint32
}

// NewRuntimeCollector registers the runtime family on reg. A nil
// registry yields a nil collector, and Collect on a nil collector is a
// no-op, matching the package's nil-instrument convention.
func NewRuntimeCollector(reg *Registry) *RuntimeCollector {
	if reg == nil {
		return nil
	}
	return &RuntimeCollector{
		heap:       reg.Gauge(MetricRuntimeHeapBytes, "bytes of allocated heap objects"),
		objects:    reg.Gauge(MetricRuntimeHeapObjects, "number of allocated heap objects"),
		sys:        reg.Gauge(MetricRuntimeSysBytes, "bytes obtained from the OS"),
		goroutines: reg.Gauge(MetricRuntimeGoroutines, "goroutines that currently exist"),
		perP:       reg.Gauge(MetricRuntimeGoroutinesPer, "goroutines per GOMAXPROCS (scheduler-pressure proxy)"),
		gcTotal:    reg.Counter(MetricRuntimeGCTotal, "completed GC cycles"),
		pauses: reg.Histogram(MetricRuntimeGCPauses, "stop-the-world GC pause durations in seconds",
			[]float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1}),
	}
}

// Collect samples the runtime into the registered instruments.
func (c *RuntimeCollector) Collect() {
	if c == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.heap.Set(float64(ms.HeapAlloc))
	c.objects.Set(float64(ms.HeapObjects))
	c.sys.Set(float64(ms.Sys))
	g := runtime.NumGoroutine()
	c.goroutines.Set(float64(g))
	c.perP.Set(float64(g) / float64(runtime.GOMAXPROCS(0)))

	// Feed the pauses that completed since the last collection. The
	// runtime keeps a 256-entry ring; if more than 256 GCs happened
	// between collections the overwritten ones are skipped (the count
	// still lands in gc_total).
	from := c.lastNumGC
	if ms.NumGC > from+uint32(len(ms.PauseNs)) {
		from = ms.NumGC - uint32(len(ms.PauseNs))
	}
	for i := from; i < ms.NumGC; i++ {
		c.pauses.Observe(float64(ms.PauseNs[i%uint32(len(ms.PauseNs))]) / 1e9)
	}
	c.gcTotal.Add(int64(ms.NumGC - c.lastNumGC))
	c.lastNumGC = ms.NumGC
}
