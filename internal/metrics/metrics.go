// Package metrics is the simulator's lightweight observability
// registry: named counters, gauges, and fixed-bucket histograms with
// optional label dimensions, rendered as a Prometheus-style text page
// or captured as a JSON snapshot embedded in RunStats.
//
// The design goal is near-zero overhead when observability is off: a
// nil *Registry hands out nil instruments, and every instrument method
// is nil-receiver safe, so instrumented call sites need no branches.
// Hot paths hold on to the instrument pointers they need (one map
// lookup at registration, none per update).
//
// A Registry and its instruments are safe for concurrent use: the
// serving subsystem shares one server-wide registry across request
// goroutines. Counters are lock-free atomics; gauges and histograms
// take a short per-instrument lock. Per-run registries (one per
// simulated accelerator instance, the recommended isolation) pay only
// uncontended-synchronization cost.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value dimension of a series.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing integer, updated atomically.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d (negative deltas are ignored; a
// counter only goes up).
func (c *Counter) Add(d int64) {
	if c == nil || d <= 0 {
		return
	}
	c.v.Add(d)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value that also remembers its high-water
// mark (the pool-occupancy peaks the experiments care about).
type Gauge struct {
	mu      sync.Mutex
	v, peak float64 // guarded by mu
	set     bool    // guarded by mu
}

// Set records the current value and updates the peak.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.setLocked(v)
	g.mu.Unlock()
}

func (g *Gauge) setLocked(v float64) {
	g.v = v
	if !g.set || v > g.peak {
		g.peak = v
	}
	g.set = true
}

// SetMax ratchets the gauge: the value only moves up. High-water-mark
// instruments use this so the exposed value IS the peak.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	if !g.set || v > g.v {
		g.setLocked(v)
	}
	g.mu.Unlock()
}

// Add shifts the gauge by d (instantaneous occupancy instruments like
// queue depth count up and down).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.setLocked(g.v + d)
	g.mu.Unlock()
}

// Value returns the last set value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Peak returns the largest value ever set.
func (g *Gauge) Peak() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.peak
}

// RetainedSamples is how many raw observations a histogram keeps
// verbatim. While the sample count stays at or below this cap,
// quantiles are exact (nearest-rank over the retained values); beyond
// it the retained prefix is no longer representative and Quantile
// falls back to bucket interpolation. Short series — a load-generator
// run, a small scheduling scenario — therefore report exact p50/p95/
// p99 instead of bucket-edge approximations.
const RetainedSamples = 512

// Histogram is a fixed-bucket distribution. Bounds are inclusive upper
// edges in ascending order; an implicit +Inf bucket catches the rest.
// The first RetainedSamples observations are additionally kept raw so
// small-sample quantiles come out exact.
type Histogram struct {
	bounds  []float64 // immutable after construction
	mu      sync.Mutex
	counts  []int64   // guarded by mu: len(bounds)+1, non-cumulative
	sum     float64   // guarded by mu
	n       int64     // guarded by mu
	samples []float64 // guarded by mu: first RetainedSamples raw values
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	if len(h.samples) < RetainedSamples {
		h.samples = append(h.samples, v)
	}
	h.mu.Unlock()
}

// Quantile returns the q-quantile (0 < q <= 1) of the observed
// distribution. While every sample is still retained (n <=
// RetainedSamples) the result is the exact nearest-rank value; after
// that it is linearly interpolated within the covering bucket, with
// the +Inf bucket clamped to the largest finite bound. Zero samples
// yield 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if int64(len(h.samples)) == h.n { // every sample retained: exact
		s := append([]float64(nil), h.samples...)
		sort.Float64s(s)
		i := int(q*float64(len(s))+0.999999) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	// Bucket interpolation: walk to the bucket holding the q-rank,
	// then interpolate linearly between its edges.
	rank := q * float64(h.n)
	var cum int64
	for i, c := range h.counts {
		prev := cum
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		if i >= len(h.bounds) { // +Inf bucket: clamp to the last finite edge
			if len(h.bounds) == 0 {
				return h.sum / float64(h.n) // no finite edges: mean is the best estimate
			}
			return h.bounds[len(h.bounds)-1]
		}
		hi := h.bounds[i]
		frac := (rank - float64(prev)) / float64(c)
		return lo + (hi-lo)*frac
	}
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return 0
}

// snap returns a coherent copy of the mutable state.
func (h *Histogram) snap() (counts []int64, sum float64, n int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]int64(nil), h.counts...), h.sum, h.n
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Bounds returns the bucket upper edges (a copy).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// BucketCounts returns the per-bucket (non-cumulative) counts,
// including the final +Inf bucket (a copy).
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	counts, _, _ := h.snap()
	return counts
}

// kind discriminates instrument families.
type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	}
	return "unknown"
}

// series is one labeled instance of a family. The counter/gauge value
// and the single-label case live inline so registering a series is one
// allocation — per-layer families create hundreds per run.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram

	one [1]Label
	cv  Counter
	gv  Gauge
}

// family groups every series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   kind
	bounds []float64 // histogram families only
	order  []string  // series keys in registration order
	byKey  map[string]*series
}

// Registry owns the instruments of one simulation run (or, in the
// serving subsystem, of one server). The registration maps are guarded
// by mu; the instruments themselves synchronize their own updates, so
// hot-path Add/Set/Observe calls never touch the registry lock.
type Registry struct {
	mu       sync.Mutex
	order    []string           // guarded by mu
	families map[string]*family // guarded by mu
}

// New builds an empty registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Enabled reports whether the registry records anything (false for the
// nil registry the disabled path carries).
func (r *Registry) Enabled() bool { return r != nil }

// labelKey canonicalizes a label set (sorted by key) so the same
// series is returned regardless of argument order.
func labelKey(labels []Label) string {
	switch len(labels) {
	case 0:
		return ""
	case 1: // the hot-path shape (class=..., layer=..., proc=...)
		return labels[0].Key + "=" + labels[0].Value
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
	}
	return sb.String()
}

// lookup returns (creating if needed) the series for name+labels,
// checking family kind consistency. Mistyped registrations are
// programmer errors and panic with a clear message.
func (r *Registry) lookup(name, help string, k kind, bounds []float64, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, bounds: bounds, byKey: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.kind != k {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, k))
	}
	key := labelKey(labels)
	s, ok := f.byKey[key]
	if !ok {
		s = &series{}
		if len(labels) == 1 {
			s.one[0] = labels[0]
			s.labels = s.one[:]
		} else if len(labels) > 1 {
			s.labels = append([]Label(nil), labels...)
			sort.Slice(s.labels, func(i, j int) bool { return s.labels[i].Key < s.labels[j].Key })
		}
		switch k {
		case counterKind:
			s.c = &s.cv
		case gaugeKind:
			s.g = &s.gv
		case histogramKind:
			s.h = &Histogram{bounds: f.bounds, counts: make([]int64, len(f.bounds)+1)}
		}
		f.byKey[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter returns the counter series for name+labels, registering it
// on first use. Safe on a nil registry (returns a nil no-op counter).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, counterKind, nil, labels).c
}

// Gauge returns the gauge series for name+labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, gaugeKind, nil, labels).g
}

// Histogram returns the histogram series for name+labels. The bounds
// of the first registration win for the whole family; they must be
// ascending.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %s bounds not ascending: %v", name, bounds))
		}
	}
	return r.lookup(name, help, histogramKind, append([]float64(nil), bounds...), labels).h
}

// SumCounter sums every series of a counter family (zero when absent).
// The acceptance checks use it: per-layer cycle attribution must sum
// to RunStats.TotalCycles.
func (r *Registry) SumCounter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok || f.kind != counterKind {
		return 0
	}
	var sum int64
	for _, key := range f.order {
		sum += f.byKey[key].c.Value()
	}
	return sum
}

// escapeLabel escapes a label value for the text exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// renderLabels formats a label set as {k="v",...}; extra appends
// additional pre-rendered pairs (the histogram le label).
func renderLabels(labels []Label, extra ...string) string {
	if len(labels) == 0 && len(extra) == 0 {
		return ""
	}
	parts := make([]string, 0, len(labels)+len(extra))
	for _, l := range labels {
		parts = append(parts, l.Key+`="`+escapeLabel(l.Value)+`"`)
	}
	parts = append(parts, extra...)
	return "{" + strings.Join(parts, ",") + "}"
}

// formatFloat renders a float the way the exposition format expects.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return formatNum(v)
}

// formatNum formats without trailing zeros ("%g" semantics).
func formatNum(v float64) string { return fmt.Sprintf("%g", v) }

// WriteProm renders the registry in the Prometheus text exposition
// format, families in registration order, series in registration
// order within a family.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.families[name]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.kind); err != nil {
			return err
		}
		for _, key := range f.order {
			s := f.byKey[key]
			var err error
			switch f.kind {
			case counterKind:
				_, err = fmt.Fprintf(w, "%s%s %d\n", name, renderLabels(s.labels), s.c.Value())
			case gaugeKind:
				_, err = fmt.Fprintf(w, "%s%s %s\n", name, renderLabels(s.labels), formatNum(s.g.Value()))
			case histogramKind:
				counts, sum, n := s.h.snap()
				var cum int64
				for i, c := range counts {
					cum += c
					le := "+Inf"
					if i < len(s.h.bounds) {
						le = formatFloat(s.h.bounds[i])
					}
					if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n", name,
						renderLabels(s.labels, fmt.Sprintf("le=%q", le)), cum); err != nil {
						return err
					}
				}
				if _, err = fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(s.labels), formatNum(sum)); err != nil {
					return err
				}
				_, err = fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(s.labels), n)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// CounterSnap is one counter series in a Snapshot.
type CounterSnap struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  int64   `json:"value"`
}

// GaugeSnap is one gauge series in a Snapshot.
type GaugeSnap struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
	Peak   float64 `json:"peak"`
}

// BucketSnap is one cumulative histogram bucket. LE is rendered as a
// string so the +Inf bucket survives JSON.
type BucketSnap struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// HistogramSnap is one histogram series in a Snapshot. P50/P95/P99
// are exact nearest-rank values while the series retained every sample
// (count <= RetainedSamples) and bucket-interpolated estimates beyond
// that — see Histogram.Quantile.
type HistogramSnap struct {
	Name    string       `json:"name"`
	Labels  []Label      `json:"labels,omitempty"`
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	P50     float64      `json:"p50"`
	P95     float64      `json:"p95"`
	P99     float64      `json:"p99"`
	Buckets []BucketSnap `json:"buckets"`
}

// Snapshot is a point-in-time JSON-friendly copy of the registry,
// embedded in RunStats by the observed simulation entry points.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters,omitempty"`
	Gauges     []GaugeSnap     `json:"gauges,omitempty"`
	Histograms []HistogramSnap `json:"histograms,omitempty"`
}

// Snapshot captures the registry. A nil registry yields nil.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := &Snapshot{}
	var nc, ng, nh int
	for _, name := range r.order {
		switch f := r.families[name]; f.kind {
		case counterKind:
			nc += len(f.order)
		case gaugeKind:
			ng += len(f.order)
		case histogramKind:
			nh += len(f.order)
		}
	}
	snap.Counters = make([]CounterSnap, 0, nc)
	snap.Gauges = make([]GaugeSnap, 0, ng)
	snap.Histograms = make([]HistogramSnap, 0, nh)
	for _, name := range r.order {
		f := r.families[name]
		for _, key := range f.order {
			s := f.byKey[key]
			// Label sets are immutable after registration, so the
			// snapshot can share them instead of copying.
			labels := s.labels
			switch f.kind {
			case counterKind:
				snap.Counters = append(snap.Counters, CounterSnap{Name: name, Labels: labels, Value: s.c.Value()})
			case gaugeKind:
				snap.Gauges = append(snap.Gauges, GaugeSnap{Name: name, Labels: labels, Value: s.g.Value(), Peak: s.g.Peak()})
			case histogramKind:
				counts, sum, n := s.h.snap()
				hs := HistogramSnap{Name: name, Labels: labels, Count: n, Sum: sum,
					P50: s.h.Quantile(0.50), P95: s.h.Quantile(0.95), P99: s.h.Quantile(0.99),
					Buckets: make([]BucketSnap, 0, len(counts))}
				var cum int64
				for i, c := range counts {
					cum += c
					le := "+Inf"
					if i < len(s.h.bounds) {
						le = formatFloat(s.h.bounds[i])
					}
					hs.Buckets = append(hs.Buckets, BucketSnap{LE: le, Count: cum})
				}
				snap.Histograms = append(snap.Histograms, hs)
			}
		}
	}
	return snap
}

// ExpBuckets returns n ascending bounds starting at start, each factor
// times the previous — the standard shape for byte-size histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n ascending bounds start, start+step, ...
func LinearBuckets(start, step float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	return out
}
