package metrics

import (
	"strings"
	"testing"
)

// TestQuantileExactSmallSample pins the retained-sample behavior: while
// every observation is still held raw, quantiles are exact nearest-rank
// values, not bucket edges. The bounds are deliberately coarse so a
// bucket-interpolated answer could not accidentally match.
func TestQuantileExactSmallSample(t *testing.T) {
	r := New()
	h := r.Histogram("lat", "", []float64{1000})
	for v := 100; v >= 1; v-- { // reverse order: quantiles must sort
		h.Observe(float64(v))
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.50, 50}, {0.95, 95}, {0.99, 99}, {1.0, 100}} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%g) = %g, want exact %g", tc.q, got, tc.want)
		}
	}
}

// TestQuantileBucketFallback: past RetainedSamples the estimate comes
// from bucket interpolation and must land inside the covering bucket.
func TestQuantileBucketFallback(t *testing.T) {
	r := New()
	h := r.Histogram("lat", "", []float64{10, 100, 1000})
	for i := 0; i < RetainedSamples+500; i++ {
		h.Observe(float64(50)) // every sample in the (10,100] bucket
	}
	p95 := h.Quantile(0.95)
	if p95 <= 10 || p95 > 100 {
		t.Errorf("interpolated p95 = %g, want within (10,100]", p95)
	}
	// The overflow bucket clamps to the largest finite bound.
	h.Observe(1e9)
	if got := h.Quantile(1.0); got != 1000 {
		t.Errorf("+Inf-bucket quantile = %g, want clamp to 1000", got)
	}
}

// TestQuantileEmptyAndNil: zero samples and nil receivers yield 0.
func TestQuantileEmptyAndNil(t *testing.T) {
	r := New()
	if got := r.Histogram("empty", "", []float64{1}).Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
	var h *Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram quantile = %g, want 0", got)
	}
}

// TestSnapshotQuantiles: the JSON snapshot carries the p50/p95/p99 of
// each histogram series.
func TestSnapshotQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("lat", "request latency", []float64{1e6})
	for v := 1; v <= 200; v++ {
		h.Observe(float64(v))
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(snap.Histograms))
	}
	hs := snap.Histograms[0]
	if hs.P50 != 100 || hs.P95 != 190 || hs.P99 != 198 {
		t.Errorf("snapshot quantiles = %g/%g/%g, want 100/190/198", hs.P50, hs.P95, hs.P99)
	}
}

// TestRuntimeCollector: one collection populates the whole family with
// plausible values, and a nil collector stays inert.
func TestRuntimeCollector(t *testing.T) {
	r := New()
	c := NewRuntimeCollector(r)
	c.Collect()
	if v := r.Gauge(MetricRuntimeHeapBytes, "").Value(); v <= 0 {
		t.Errorf("heap bytes = %g, want > 0", v)
	}
	if v := r.Gauge(MetricRuntimeGoroutines, "").Value(); v < 1 {
		t.Errorf("goroutines = %g, want >= 1", v)
	}
	if v := r.Gauge(MetricRuntimeGoroutinesPer, "").Value(); v <= 0 {
		t.Errorf("goroutines per proc = %g, want > 0", v)
	}
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		MetricRuntimeHeapBytes, MetricRuntimeSysBytes,
		MetricRuntimeGCTotal, MetricRuntimeGCPauses, MetricRuntimeGoroutines,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("prom output missing %s", want)
		}
	}

	var nilC *RuntimeCollector
	nilC.Collect() // must not panic
}
