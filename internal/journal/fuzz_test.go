package journal

import (
	"errors"
	"testing"
)

// FuzzJournalDecode: the record decoder must never panic and must
// classify every rejection as exactly one of the frame/checksum/record
// sentinels — recovery code switches on these to decide between
// "torn tail, truncate" and "corruption, refuse to start".
func FuzzJournalDecode(f *testing.F) {
	valid, err := EncodeRecord(Record{Seq: 1, Job: "j000001", Op: OpAccepted, Kind: "simulate", RequestID: "r-1"})
	if err != nil {
		f.Fatal(err)
	}
	valid = valid[:len(valid)-1] // DecodeRecord takes the line without '\n'
	f.Add(valid)
	f.Add(valid[:len(valid)/2])               // truncated tail
	f.Add([]byte{})                           // empty line
	f.Add([]byte("00000000 {}"))              // framed, wrong CRC
	f.Add([]byte("zzzzzzzz {\"job\":\"j\"}")) // non-hex CRC
	f.Add([]byte("deadbeef"))                 // no separator
	flipped := append([]byte(nil), valid...)
	flipped[0] ^= 0x01 // flipped CRC nibble
	f.Add(flipped)
	bodyflip := append([]byte(nil), valid...)
	bodyflip[len(bodyflip)-2] ^= 0x20 // flipped payload byte
	f.Add(bodyflip)
	interleaved := append(append([]byte(nil), valid...), valid...) // two records mashed into one line
	f.Add(interleaved)

	f.Fuzz(func(t *testing.T, line []byte) {
		rec, err := DecodeRecord(line)
		if err != nil {
			if !errors.Is(err, ErrFrame) && !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrRecord) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		// Accepted records must re-encode: decode is the inverse of a
		// valid encode, never a lossy guess.
		if _, err := EncodeRecord(rec); err != nil {
			t.Fatalf("decoded record does not re-encode: %+v: %v", rec, err)
		}
	})
}
