// Package journal is the serving tier's durable job ledger: an
// append-only, fsync-on-commit write-ahead journal of job lifecycle
// records. The serve engine writes every async job's transitions
// (accepted → running → checkpoint… → done/failed/canceled) through
// it, and a restarted process replays the journal to recover accepted
// work instead of silently losing it.
//
// The design follows the same separation the simulator applies on
// chip — durable state (the pinned shortcut banks; here, the ledger)
// is kept apart from volatile execution state (the streaming buffers;
// here, the worker pool) — so a crash forfeits only the work in
// flight, never the record of what was accepted.
//
// On-disk format: numbered segment files ("wal-000001.jsonl") of
// CRC-framed JSONL records, one record per line:
//
//	crc32c(json) as 8 lowercase hex digits, one space, the JSON
//	document, '\n'
//
// Append marshals, frames, writes, and fsyncs before returning, so a
// record that Append acknowledged survives SIGKILL. Replay reads the
// segments in order; a torn tail (partial last line, CRC mismatch on
// the final record — the signature of a crash mid-write) is truncated
// away, while corruption anywhere else is a classified error, never a
// panic. Segments rotate at a byte threshold and Compact rewrites the
// records of still-live jobs into a fresh segment so the journal does
// not grow without bound.
package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Classified decode errors. Every corruption surfaces as one of these
// sentinels (wrapped with position detail) so callers can tell a torn
// tail from mid-file damage and from malformed records.
var (
	// ErrFrame reports a line that is not "crc hex, space, payload".
	ErrFrame = errors.New("journal: malformed record frame")
	// ErrChecksum reports a frame whose CRC does not match its payload.
	ErrChecksum = errors.New("journal: record checksum mismatch")
	// ErrRecord reports a well-framed payload that is not a valid record.
	ErrRecord = errors.New("journal: malformed record")
	// ErrClosed reports an append to a closed journal.
	ErrClosed = errors.New("journal: closed")
	// ErrDamaged reports an append refused because a previous failed
	// write left unacknowledged bytes in the active segment that could
	// not be truncated away. Each refused append retries the repair.
	ErrDamaged = errors.New("journal: active segment damaged")
)

// Op is a job lifecycle transition.
type Op string

// The journaled lifecycle: a job is accepted, starts running,
// optionally checkpoints every K layers, and ends in exactly one
// terminal op. Interrupted is written by recovery, not by the engine:
// it classifies a job that was running when the process died and had
// no checkpoint to resume from.
const (
	OpAccepted    Op = "accepted"
	OpRunning     Op = "running"
	OpCheckpoint  Op = "checkpoint"
	OpDone        Op = "done"
	OpFailed      Op = "failed"
	OpCanceled    Op = "canceled"
	OpInterrupted Op = "interrupted"
)

// valid reports whether the op is one of the journaled lifecycle ops.
func (o Op) valid() bool {
	switch o {
	case OpAccepted, OpRunning, OpCheckpoint, OpDone, OpFailed, OpCanceled, OpInterrupted:
		return true
	}
	return false
}

// Terminal reports whether the op ends a job's lifecycle.
func (o Op) Terminal() bool {
	return o == OpDone || o == OpFailed || o == OpCanceled || o == OpInterrupted
}

// Record is one journal entry. Payload carries the op-specific
// document: the full request for OpAccepted (so recovery can re-run
// it), a core.RunSnapshot for OpCheckpoint, and the result for OpDone.
type Record struct {
	// Seq is the journal-assigned monotone sequence number.
	Seq uint64 `json:"seq"`
	// Time is the wall-clock stamp from the journal's injected clock.
	Time time.Time `json:"time"`
	// Job is the engine job ID the record belongs to.
	Job string `json:"job"`
	// Op is the lifecycle transition.
	Op Op `json:"op"`
	// Kind is the job kind (simulate | sweep | schedule), set on
	// OpAccepted so recovery knows how to decode Payload.
	Kind string `json:"kind,omitempty"`
	// RequestID is the serving-layer correlation ID (OpAccepted).
	RequestID string `json:"request_id,omitempty"`
	// Layer is the next-layer index of a checkpoint record.
	Layer int `json:"layer,omitempty"`
	// Error is the failure reason of OpFailed / OpCanceled /
	// OpInterrupted records.
	Error string `json:"error,omitempty"`
	// Reason classifies a terminal record beyond its op ("timeout",
	// "interrupted", …) — mirrors the job's Reason field.
	Reason string `json:"reason,omitempty"`
	// Payload is the op-specific document.
	Payload json.RawMessage `json:"payload,omitempty"`
}

// castagnoli is the CRC-32C table (the polynomial used by modern
// storage stacks; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// EncodeRecord renders one CRC-framed journal line.
func EncodeRecord(rec Record) ([]byte, error) {
	if !rec.Op.valid() {
		return nil, fmt.Errorf("%w: unknown op %q", ErrRecord, rec.Op)
	}
	if rec.Job == "" {
		return nil, fmt.Errorf("%w: record has no job id", ErrRecord)
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRecord, err)
	}
	line := make([]byte, 0, len(payload)+10)
	line = fmt.Appendf(line, "%08x ", crc32.Checksum(payload, castagnoli))
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// DecodeRecord parses one journal line (without the trailing newline).
// Every malformed input yields a classified error — ErrFrame,
// ErrChecksum, or ErrRecord — never a panic.
func DecodeRecord(line []byte) (Record, error) {
	if len(line) < 10 || line[8] != ' ' {
		return Record{}, fmt.Errorf("%w: line of %d bytes", ErrFrame, len(line))
	}
	want64, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return Record{}, fmt.Errorf("%w: bad checksum field %q", ErrFrame, line[:8])
	}
	payload := line[9:]
	if got := crc32.Checksum(payload, castagnoli); got != uint32(want64) {
		return Record{}, fmt.Errorf("%w: have %08x, frame says %08x", ErrChecksum, got, uint32(want64))
	}
	var rec Record
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		return Record{}, fmt.Errorf("%w: %v", ErrRecord, err)
	}
	if !rec.Op.valid() {
		return Record{}, fmt.Errorf("%w: unknown op %q", ErrRecord, rec.Op)
	}
	if rec.Job == "" {
		return Record{}, fmt.Errorf("%w: record has no job id", ErrRecord)
	}
	return rec, nil
}

// Stats is a point-in-time view of the journal counters.
type Stats struct {
	Appends      int64 `json:"appends"`
	AppendErrors int64 `json:"append_errors"`
	SyncErrors   int64 `json:"sync_errors"`
	Rotations    int64 `json:"rotations"`
	Compactions  int64 `json:"compactions"`
	// Repairs counts failed appends whose unacknowledged bytes were
	// truncated back out of the active segment.
	Repairs int64 `json:"repairs"`
	// TornRecords counts records dropped by torn-tail truncation at
	// open (0 after a clean shutdown).
	TornRecords int64 `json:"torn_records"`
	// Segments and Bytes describe the on-disk footprint.
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
}

// Options configures a journal. The zero value is usable.
type Options struct {
	// SegmentBytes is the rotation threshold; <= 0 means 4 MiB.
	SegmentBytes int64
	// Now supplies record timestamps; nil means the caller's records
	// are stamped with the zero time (the serve engine injects its
	// Clock so the whole process has one wall-clock seam).
	Now func() time.Time
	// WriteErr, when non-nil, is consulted before every physical write
	// ("write") and fsync ("sync") — the chaos-injection seam. A
	// returned error aborts the append and is reported to the caller.
	// An injected "write" error first lands a partial frame in the
	// segment (the short write a real ENOSPC produces), so chaos runs
	// exercise the same truncate-back repair as physical faults.
	WriteErr func(op string) error
	// Latency, when non-nil, returns an artificial delay applied before
	// each physical write (the chaos slow-disk model).
	Latency func() time.Duration
}

// Journal is an open, appendable journal. All methods are safe for
// concurrent use.
type Journal struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File // guarded by mu: active segment
	seg     int      // guarded by mu: active segment index
	size    int64    // guarded by mu: acknowledged bytes in the active segment
	seq     uint64   // guarded by mu: last acknowledged sequence number
	closed  bool     // guarded by mu
	damaged bool     // guarded by mu: unacknowledged bytes sit past size in the active segment
	stats   Stats    // guarded by mu
}

// segmentName renders the file name of segment i.
func segmentName(i int) string { return fmt.Sprintf("wal-%06d.jsonl", i) }

// segmentIndex parses a segment file name, reporting ok=false for
// foreign files.
func segmentIndex(name string) (int, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".jsonl") {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".jsonl"))
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// segments lists the journal's segment indices in ascending order.
func segments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: reading %s: %w", dir, err)
	}
	var idx []int
	for _, e := range entries {
		if n, ok := segmentIndex(e.Name()); ok && !e.IsDir() {
			idx = append(idx, n)
		}
	}
	sort.Ints(idx)
	return idx, nil
}

// replaySegment reads one segment file. last marks the journal's final
// segment, where a torn tail (partial or corrupt final record — the
// signature of a crash mid-write) is truncated in place rather than
// reported; anywhere else corruption is a classified error. It
// returns the records and how many torn records were dropped.
func replaySegment(path string, last bool) ([]Record, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("journal: reading segment: %w", err)
	}
	var recs []Record
	offset := 0
	for offset < len(data) {
		nl := bytes.IndexByte(data[offset:], '\n')
		if nl < 0 {
			// Unterminated final line: a torn write.
			if !last {
				return nil, 0, fmt.Errorf("journal: %s: unterminated record at byte %d in non-final segment: %w",
					filepath.Base(path), offset, ErrFrame)
			}
			if err := os.Truncate(path, int64(offset)); err != nil {
				return nil, 0, fmt.Errorf("journal: truncating torn tail of %s: %w", filepath.Base(path), err)
			}
			return recs, 1, nil
		}
		line := data[offset : offset+nl]
		rec, derr := DecodeRecord(line)
		if derr != nil {
			atTail := offset+nl+1 == len(data)
			if last && atTail {
				// Torn final record (e.g. crash between write and sync
				// left a half-flushed page): truncate and recover.
				if err := os.Truncate(path, int64(offset)); err != nil {
					return nil, 0, fmt.Errorf("journal: truncating torn tail of %s: %w", filepath.Base(path), err)
				}
				return recs, 1, nil
			}
			return nil, 0, fmt.Errorf("journal: %s: record at byte %d: %w", filepath.Base(path), offset, derr)
		}
		recs = append(recs, rec)
		offset += nl + 1
	}
	return recs, 0, nil
}

// Open opens (creating if needed) the journal in dir, replays every
// existing segment, truncates a torn tail, and positions the journal
// to append. It returns the recovered records in sequence order.
// Mid-journal corruption (a bad record that is not the torn tail)
// fails Open with a classified error: the operator must decide, the
// journal will not silently skip history.
func Open(dir string, opts Options) (*Journal, []Record, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: creating %s: %w", dir, err)
	}
	idx, err := segments(dir)
	if err != nil {
		return nil, nil, err
	}
	j := &Journal{dir: dir, opts: opts, seg: 0}
	var recovered []Record
	for i, n := range idx {
		recs, torn, err := replaySegment(filepath.Join(dir, segmentName(n)), i == len(idx)-1)
		if err != nil {
			return nil, nil, err
		}
		j.stats.TornRecords += torn
		recovered = append(recovered, recs...)
		j.seg = n
	}
	for _, r := range recovered {
		if r.Seq > j.seq {
			j.seq = r.Seq
		}
	}
	j.stats.Segments = len(idx)
	for _, n := range idx {
		if fi, err := os.Stat(filepath.Join(dir, segmentName(n))); err == nil {
			j.stats.Bytes += fi.Size()
		}
	}
	// Always append to a fresh segment: old segments stay immutable
	// after recovery, so a replayed prefix can never be half-rewritten.
	if err := j.openSegmentLocked(j.seg + 1); err != nil {
		return nil, nil, err
	}
	return j, recovered, nil
}

// openSegmentLocked creates segment n and makes it the append target.
// The caller holds j.mu (or is constructing the journal).
func (j *Journal) openSegmentLocked(n int) error {
	path := filepath.Join(j.dir, segmentName(n))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: creating segment: %w", err)
	}
	// The new segment must itself survive a crash: fsync the directory
	// so the directory entry is durable before any record lands in it.
	if err := syncDir(j.dir); err != nil {
		closeErr := f.Close()
		return errors.Join(fmt.Errorf("journal: syncing directory: %w", err), closeErr)
	}
	if j.f != nil {
		if err := j.f.Close(); err != nil {
			closeErr := f.Close()
			return errors.Join(fmt.Errorf("journal: closing previous segment: %w", err), closeErr)
		}
	}
	j.f = f
	j.seg = n
	j.size = 0
	j.stats.Segments++
	return nil
}

// syncDir fsyncs a directory so file creations/removals inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	return errors.Join(syncErr, closeErr)
}

// Append assigns the next sequence number, stamps the record, writes
// it to the active segment, and fsyncs before returning: a nil error
// means the record survives SIGKILL. On error the record is not
// acknowledged and the active segment is truncated back to the last
// acknowledged byte, so the failed record can neither replay as
// committed (a failed fsync leaves its bytes in the file) nor become
// mid-segment corruption once a later append succeeds (a short write
// leaves a partial frame). If the truncation itself fails, the
// journal refuses further appends with ErrDamaged — retrying the
// repair on each attempt — so the damage stays a torn tail the next
// Open can truncate, never buried history.
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.damaged && !j.repairLocked() {
		j.stats.AppendErrors++
		return fmt.Errorf("%w: unacknowledged bytes past offset %d", ErrDamaged, j.size)
	}
	if j.opts.Now != nil {
		rec.Time = j.opts.Now()
	}
	rec.Seq = j.seq + 1
	line, err := EncodeRecord(rec)
	if err != nil {
		j.stats.AppendErrors++
		return err
	}
	if j.size+int64(len(line)) > j.opts.SegmentBytes && j.size > 0 {
		if err := j.openSegmentLocked(j.seg + 1); err != nil {
			j.stats.AppendErrors++
			return err
		}
		j.stats.Rotations++
	}
	if j.opts.Latency != nil {
		if d := j.opts.Latency(); d > 0 {
			time.Sleep(d)
		}
	}
	if j.opts.WriteErr != nil {
		if err := j.opts.WriteErr("write"); err != nil {
			// Land the short write a real ENOSPC would produce before
			// failing, so injected write faults drive the same repair
			// path as physical ones.
			// scmvet:ok ignorederr best-effort fault emulation; the append fails with the injected error either way
			j.f.Write(line[:len(line)/2])
			return j.failAppendLocked(false, err)
		}
	}
	if _, err := j.f.Write(line); err != nil {
		return j.failAppendLocked(false, fmt.Errorf("journal: writing record: %w", err))
	}
	if j.opts.WriteErr != nil {
		if err := j.opts.WriteErr("sync"); err != nil {
			return j.failAppendLocked(true, err)
		}
	}
	if err := j.f.Sync(); err != nil {
		// A failed fsync means the record's durability is unknown; the
		// caller must treat it as not committed (and the engine degrades
		// its health) even though the bytes may be in the page cache.
		return j.failAppendLocked(true, fmt.Errorf("journal: fsync: %w", err))
	}
	j.seq = rec.Seq
	j.size += int64(len(line))
	j.stats.Bytes += int64(len(line))
	j.stats.Appends++
	return nil
}

// failAppendLocked accounts a failed append whose bytes may have
// reached the active segment, repairs the segment, and passes the
// classified error through. The caller holds j.mu.
func (j *Journal) failAppendLocked(sync bool, err error) error {
	j.stats.AppendErrors++
	if sync {
		j.stats.SyncErrors++
	}
	j.damaged = true
	j.repairLocked()
	return err
}

// repairLocked truncates the active segment back to the last
// acknowledged size and repositions the write offset, erasing the
// bytes of any record whose Append returned an error. It reports
// whether the segment is clean again; on failure the journal stays
// damaged and every Append retries the repair before writing. The
// caller holds j.mu.
func (j *Journal) repairLocked() bool {
	if !j.damaged {
		return true
	}
	if j.f == nil {
		return false
	}
	if err := j.f.Truncate(j.size); err != nil {
		return false
	}
	if _, err := j.f.Seek(j.size, io.SeekStart); err != nil {
		return false
	}
	// Persist the truncation so the erased bytes cannot resurface from
	// the page cache after a crash (any tail they could leave behind is
	// past every acknowledged record, but a clean cut is cheaper than
	// relying on torn-tail recovery).
	if err := j.f.Sync(); err != nil {
		j.stats.SyncErrors++
		return false
	}
	j.damaged = false
	j.stats.Repairs++
	return true
}

// Seq returns the last acknowledged sequence number.
func (j *Journal) Seq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Stats returns the current counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Compact rewrites the journal so it holds only the records for which
// keep returns true (typically: jobs that are not yet terminal, plus
// terminal jobs still inside the history TTL). The surviving records
// are rewritten into the active segment's successor and every older
// segment is removed. Records keep their original sequence numbers, so
// replay order is unaffected.
func (j *Journal) Compact(records []Record, keep func(r Record) bool) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.damaged && !j.repairLocked() {
		return fmt.Errorf("%w: unacknowledged bytes past offset %d", ErrDamaged, j.size)
	}
	return j.rewriteLocked(records, keep)
}

// CompactSelf compacts the journal from its own on-disk state: it
// replays every segment under the journal lock (appends are quiesced,
// and every acknowledged record is already fsynced, so the read sees
// exactly the committed history), reduces the record set, and rewrites
// the survivors. This is the runtime-compaction entry point — boot-time
// compaction uses Compact with the records Open already replayed. A
// nil reduce keeps everything (still reclaiming rotated segments).
func (j *Journal) CompactSelf(reduce func(recs []Record) []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.damaged && !j.repairLocked() {
		return fmt.Errorf("%w: unacknowledged bytes past offset %d", ErrDamaged, j.size)
	}
	idx, err := segments(j.dir)
	if err != nil {
		return err
	}
	var recs []Record
	for _, n := range idx {
		// Strict replay everywhere: failed appends were truncated back
		// out above, so a torn tail here is real corruption, not a
		// crash artifact — surface it, don't truncate it.
		rs, _, err := replaySegment(filepath.Join(j.dir, segmentName(n)), false)
		if err != nil {
			return err
		}
		recs = append(recs, rs...)
	}
	if reduce != nil {
		recs = reduce(recs)
	}
	return j.rewriteLocked(recs, nil)
}

// rewriteLocked writes the kept records into a fresh segment and
// removes every older segment once the survivors are durable. The
// caller holds j.mu.
func (j *Journal) rewriteLocked(records []Record, keep func(r Record) bool) error {
	old, err := segments(j.dir)
	if err != nil {
		return err
	}
	if err := j.openSegmentLocked(j.seg + 1); err != nil {
		return err
	}
	var kept int64
	for _, rec := range records {
		if keep != nil && !keep(rec) {
			continue
		}
		line, err := EncodeRecord(rec)
		if err != nil {
			return err
		}
		if _, err := j.f.Write(line); err != nil {
			j.damaged = true
			j.repairLocked()
			return fmt.Errorf("journal: compaction write: %w", err)
		}
		j.size += int64(len(line))
		kept++
	}
	if err := j.f.Sync(); err != nil {
		j.stats.SyncErrors++
		return fmt.Errorf("journal: compaction fsync: %w", err)
	}
	// Only after the survivors are durable may history disappear.
	for _, n := range old {
		if n == j.seg {
			continue
		}
		if err := os.Remove(filepath.Join(j.dir, segmentName(n))); err != nil {
			return fmt.Errorf("journal: removing compacted segment: %w", err)
		}
		j.stats.Segments--
	}
	if err := syncDir(j.dir); err != nil {
		return fmt.Errorf("journal: syncing directory after compaction: %w", err)
	}
	j.stats.Compactions++
	j.recountBytesLocked()
	return nil
}

// recountBytesLocked refreshes the on-disk byte tally after
// compaction. The caller holds j.mu.
func (j *Journal) recountBytesLocked() {
	idx, err := segments(j.dir)
	if err != nil {
		return // counters are advisory; the next Stats call may be stale
	}
	var total int64
	for _, n := range idx {
		if fi, err := os.Stat(filepath.Join(j.dir, segmentName(n))); err == nil {
			total += fi.Size()
		}
	}
	j.stats.Bytes = total
	j.stats.Segments = len(idx)
}

// Close syncs and closes the active segment. Further Appends fail with
// ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.f == nil {
		return nil
	}
	syncErr := j.f.Sync()
	closeErr := j.f.Close()
	j.f = nil
	if syncErr != nil {
		j.stats.SyncErrors++
		return fmt.Errorf("journal: close fsync: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("journal: close: %w", closeErr)
	}
	return nil
}

// ReadAll replays every record in dir without opening the journal for
// writing — the inspection path used by tests and tooling. Unlike
// Open, it never mutates the on-disk state: a torn tail is skipped,
// not truncated.
func ReadAll(dir string) ([]Record, error) {
	idx, err := segments(dir)
	if err != nil {
		return nil, err
	}
	var out []Record
	for i, n := range idx {
		path := filepath.Join(dir, segmentName(n))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("journal: reading segment: %w", err)
		}
		last := i == len(idx)-1
		offset := 0
		for offset < len(data) {
			nl := bytes.IndexByte(data[offset:], '\n')
			if nl < 0 {
				if !last {
					return nil, fmt.Errorf("journal: %s: unterminated record in non-final segment: %w",
						filepath.Base(path), ErrFrame)
				}
				return out, nil // torn tail: ignore
			}
			rec, derr := DecodeRecord(data[offset : offset+nl])
			if derr != nil {
				if last && offset+nl+1 == len(data) {
					return out, nil // torn final record: ignore
				}
				return nil, fmt.Errorf("journal: %s: record at byte %d: %w", filepath.Base(path), offset, derr)
			}
			out = append(out, rec)
			offset += nl + 1
		}
	}
	return out, nil
}
