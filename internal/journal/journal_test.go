package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fakeClock returns a deterministic, strictly increasing clock.
func fakeClock() func() time.Time {
	t := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

func mustAppend(t *testing.T, j *Journal, rec Record) {
	t.Helper()
	if err := j.Append(rec); err != nil {
		t.Fatalf("Append(%+v): %v", rec, err)
	}
}

// TestAppendReplayRoundtrip: records written through Append come back
// from a reopened journal in order, with sequence numbers and
// payloads intact.
func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	j, recovered, err := Open(dir, Options{Now: fakeClock()})
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("fresh journal recovered %d records", len(recovered))
	}
	payload, _ := json.Marshal(map[string]string{"network": "resnet34"})
	mustAppend(t, j, Record{Job: "j000001", Op: OpAccepted, Kind: "simulate", RequestID: "r-1", Payload: payload})
	mustAppend(t, j, Record{Job: "j000001", Op: OpRunning})
	mustAppend(t, j, Record{Job: "j000001", Op: OpCheckpoint, Layer: 8, Payload: payload})
	mustAppend(t, j, Record{Job: "j000001", Op: OpDone, Payload: payload})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Job: "x", Op: OpDone}); !errors.Is(err, ErrClosed) {
		t.Errorf("append after close = %v, want ErrClosed", err)
	}

	_, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("recovered %d records, want 4", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d has seq %d", i, r.Seq)
		}
		if r.Job != "j000001" {
			t.Errorf("record %d job = %q", i, r.Job)
		}
		if r.Time.IsZero() {
			t.Errorf("record %d has zero timestamp", i)
		}
	}
	if recs[2].Op != OpCheckpoint || recs[2].Layer != 8 {
		t.Errorf("checkpoint record = %+v", recs[2])
	}
	if string(recs[3].Payload) != string(payload) {
		t.Errorf("payload lost: %s", recs[3].Payload)
	}
}

// TestTornTailTruncation: a partial final line (crash mid-write) is
// truncated on open; the intact prefix survives.
func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Job: "j1", Op: OpAccepted, Kind: "simulate"})
	mustAppend(t, j, Record{Job: "j1", Op: OpRunning})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn write: append half a record with no newline.
	seg := filepath.Join(dir, segmentName(1))
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"seq":3,"job":"j1","op":"do`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2 (torn third dropped)", len(recs))
	}
	if st := j2.Stats(); st.TornRecords != 1 {
		t.Errorf("TornRecords = %d, want 1", st.TornRecords)
	}
	// The truncation is physical: a third open sees a clean journal.
	if _, recs3, err := Open(dir, Options{}); err != nil || len(recs3) != 2 {
		t.Errorf("post-truncation open: %d records, err %v", len(recs3), err)
	}
}

// TestTornTerminatedTailTruncation: a complete-looking final line with
// a bad CRC (half-flushed page) is likewise truncated.
func TestTornTerminatedTailTruncation(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Job: "j1", Op: OpAccepted})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segmentName(1))
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("00000000 {\"seq\":2,\"job\":\"j1\",\"op\":\"done\"}\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open with corrupt terminated tail: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("recovered %d records, want 1", len(recs))
	}
}

// TestMidFileCorruptionClassified: damage that is NOT the torn tail
// fails Open with a classified error instead of silently skipping
// history.
func TestMidFileCorruptionClassified(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		mustAppend(t, j, Record{Job: fmt.Sprintf("j%d", i), Op: OpAccepted})
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[2] ^= 0xff // flip a CRC byte of the first record
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir, Options{})
	if err == nil {
		t.Fatal("open with mid-file corruption succeeded")
	}
	if !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrFrame) {
		t.Errorf("corruption error not classified: %v", err)
	}
}

// TestSegmentRotation: appends past the byte threshold roll into new
// segments, and replay stitches them back together in order.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		mustAppend(t, j, Record{Job: fmt.Sprintf("j%06d", i), Op: OpAccepted, Kind: "simulate"})
	}
	st := j.Stats()
	if st.Rotations == 0 {
		t.Fatalf("no rotations after %d appends with a 256-byte segment cap: %+v", n, st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	idx, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) < 3 {
		t.Errorf("segments on disk = %v, want several", idx)
	}
	_, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("recovered %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if want := fmt.Sprintf("j%06d", i); r.Job != want {
			t.Fatalf("record %d out of order: job %q, want %q", i, r.Job, want)
		}
	}
}

// TestCompaction: Compact keeps only the records the predicate
// accepts, removes old segments, and the survivors replay cleanly.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mustAppend(t, j, Record{Job: fmt.Sprintf("j%d", i), Op: OpAccepted})
		mustAppend(t, j, Record{Job: fmt.Sprintf("j%d", i), Op: OpDone})
	}
	mustAppend(t, j, Record{Job: "live", Op: OpAccepted})
	all, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(all, func(r Record) bool { return r.Job == "live" }); err != nil {
		t.Fatal(err)
	}
	if st := j.Stats(); st.Compactions != 1 || st.Segments != 1 {
		t.Errorf("post-compaction stats = %+v, want 1 compaction, 1 segment", st)
	}
	// The journal stays appendable after compaction.
	mustAppend(t, j, Record{Job: "live", Op: OpRunning})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Job != "live" || recs[1].Op != OpRunning {
		t.Fatalf("post-compaction replay = %+v, want live accepted+running", recs)
	}
	if recs[0].Seq >= recs[1].Seq {
		t.Errorf("sequence order lost across compaction: %d then %d", recs[0].Seq, recs[1].Seq)
	}
}

// TestInjectedIOErrors: the chaos seam turns writes and fsyncs into
// classified failures; a failed append is not acknowledged and the
// journal keeps working once the fault clears.
func TestInjectedIOErrors(t *testing.T) {
	dir := t.TempDir()
	var failing bool
	injected := errors.New("chaos: injected journal I/O error")
	j, _, err := Open(dir, Options{WriteErr: func(op string) error {
		if failing {
			return fmt.Errorf("%w (%s)", injected, op)
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Job: "j1", Op: OpAccepted})
	failing = true
	if err := j.Append(Record{Job: "j1", Op: OpRunning}); !errors.Is(err, injected) {
		t.Fatalf("append under injection = %v, want injected error", err)
	}
	failing = false
	mustAppend(t, j, Record{Job: "j1", Op: OpRunning})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.AppendErrors != 1 || st.Appends != 2 {
		t.Errorf("stats = %+v, want 1 append error, 2 appends", st)
	}
	_, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2 (failed append unacknowledged)", len(recs))
	}
}

// TestFailedWriteRepair: an injected write fault lands a short write
// (the ENOSPC signature) mid-segment, and the journal truncates it
// back out — later successful appends land after the last acknowledged
// record, so the journal reopens cleanly instead of failing with
// mid-file corruption.
func TestFailedWriteRepair(t *testing.T) {
	dir := t.TempDir()
	var failOp string
	j, _, err := Open(dir, Options{WriteErr: func(op string) error {
		if op == failOp {
			return fmt.Errorf("injected %s failure", op)
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Job: "j1", Op: OpAccepted})
	failOp = "write"
	if err := j.Append(Record{Job: "j1", Op: OpRunning}); err == nil {
		t.Fatal("append under write fault succeeded")
	}
	failOp = ""
	// The append after the fault must not land behind partial bytes.
	mustAppend(t, j, Record{Job: "j1", Op: OpRunning})
	mustAppend(t, j, Record{Job: "j1", Op: OpDone})
	if st := j.Stats(); st.Repairs != 1 {
		t.Errorf("Repairs = %d, want 1", st.Repairs)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after repaired write fault: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3 (failed append erased)", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d seq = %d, want %d (monotone, no gaps from the repair)", i, r.Seq, i+1)
		}
	}
}

// TestFailedSyncRepair: when the write lands but the fsync fails, the
// record's bytes are truncated back out — the caller was told the
// append failed, so the record must not replay as committed, and the
// sequence number must not appear twice.
func TestFailedSyncRepair(t *testing.T) {
	dir := t.TempDir()
	var failSync bool
	j, _, err := Open(dir, Options{WriteErr: func(op string) error {
		if failSync && op == "sync" {
			return fmt.Errorf("injected sync failure")
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Job: "j1", Op: OpAccepted})
	failSync = true
	if err := j.Append(Record{Job: "j1", Op: OpRunning, Error: "unacknowledged"}); err == nil {
		t.Fatal("append under sync fault succeeded")
	}
	failSync = false
	mustAppend(t, j, Record{Job: "j1", Op: OpDone})
	if st := j.Stats(); st.Repairs != 1 || st.SyncErrors != 1 {
		t.Errorf("stats = %+v, want 1 repair, 1 sync error", st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2 (unacknowledged record must not replay)", len(recs))
	}
	seen := map[uint64]bool{}
	for _, r := range recs {
		if r.Error == "unacknowledged" {
			t.Fatalf("record the caller was told failed replayed as committed: %+v", r)
		}
		if seen[r.Seq] {
			t.Fatalf("duplicate sequence number %d on disk", r.Seq)
		}
		seen[r.Seq] = true
	}
}

// TestCompactSelf: runtime compaction replays the journal's own
// segments, applies the reducer, and reclaims the old segments — no
// caller-supplied replay needed.
func TestCompactSelf(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		mustAppend(t, j, Record{Job: fmt.Sprintf("j%d", i), Op: OpAccepted})
		mustAppend(t, j, Record{Job: fmt.Sprintf("j%d", i), Op: OpDone})
	}
	mustAppend(t, j, Record{Job: "live", Op: OpAccepted})
	if err := j.CompactSelf(func(recs []Record) []Record {
		var out []Record
		for _, r := range recs {
			if r.Job == "live" {
				out = append(out, r)
			}
		}
		return out
	}); err != nil {
		t.Fatal(err)
	}
	if st := j.Stats(); st.Compactions != 1 || st.Segments != 1 {
		t.Errorf("post-CompactSelf stats = %+v, want 1 compaction, 1 segment", st)
	}
	mustAppend(t, j, Record{Job: "live", Op: OpRunning})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Job != "live" || recs[1].Op != OpRunning {
		t.Fatalf("post-CompactSelf replay = %+v, want live accepted+running", recs)
	}
}

// TestEncodeDecodeErrors pins the record-level validation.
func TestEncodeDecodeErrors(t *testing.T) {
	if _, err := EncodeRecord(Record{Op: OpDone}); !errors.Is(err, ErrRecord) {
		t.Errorf("encode without job = %v, want ErrRecord", err)
	}
	if _, err := EncodeRecord(Record{Job: "j", Op: "sideways"}); !errors.Is(err, ErrRecord) {
		t.Errorf("encode with bad op = %v, want ErrRecord", err)
	}
	cases := []struct {
		name string
		line string
		want error
	}{
		{"empty", "", ErrFrame},
		{"short", "abc", ErrFrame},
		{"no space", "0123456789abcdef", ErrFrame},
		{"bad hex", "zzzzzzzz {}", ErrFrame},
		{"crc mismatch", "00000000 {\"seq\":1,\"job\":\"j\",\"op\":\"done\"}", ErrChecksum},
	}
	for _, tc := range cases {
		if _, err := DecodeRecord([]byte(tc.line)); !errors.Is(err, tc.want) {
			t.Errorf("%s: DecodeRecord = %v, want %v", tc.name, err, tc.want)
		}
	}
	// A correctly framed payload that is not a record.
	line, err := EncodeRecord(Record{Job: "j", Op: OpDone})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := DecodeRecord(line[:len(line)-1])
	if err != nil || rec.Job != "j" {
		t.Fatalf("roundtrip = %+v, %v", rec, err)
	}
	if !OpDone.Terminal() || OpCheckpoint.Terminal() {
		t.Error("Terminal misclassifies ops")
	}
}

// TestForeignFilesIgnored: non-segment files in the directory are not
// treated as journal state.
func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wal-abc.jsonl"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("recovered %d records from foreign files", len(recs))
	}
	mustAppend(t, j, Record{Job: "j1", Op: OpAccepted})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReadAllNonDestructive: ReadAll skips a torn tail without
// truncating the file.
func TestReadAllNonDestructive(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Job: "j1", Op: OpAccepted})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segmentName(1))
	before, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("torn"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(dir)
	if err != nil || len(recs) != 1 {
		t.Fatalf("ReadAll = %d recs, %v", len(recs), err)
	}
	after, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before)+4 {
		t.Errorf("ReadAll mutated the segment: %d bytes, had %d+4", len(after), len(before))
	}
	if !strings.HasSuffix(string(after), "torn") {
		t.Error("torn tail removed by ReadAll")
	}
}
