package cluster

import (
	"fmt"

	"shortcutmining/internal/core"
	"shortcutmining/internal/dram"
	"shortcutmining/internal/noc"
	"shortcutmining/internal/sched"
	"shortcutmining/internal/stats"
)

// RequestResult is one settled request's sharded timeline, in cycles.
type RequestResult struct {
	Stream    string `json:"stream"`
	Seq       int    `json:"seq"`
	Arrival   int64  `json:"arrival"`
	Start     int64  `json:"start"`
	Finish    int64  `json:"finish"`
	Latency   int64  `json:"latency"`
	QueueWait int64  `json:"queue_wait"`
	// ServiceCycles is the request's own attributed cycles —
	// bit-identical to its single-tenant run.
	ServiceCycles int64 `json:"service_cycles"`
	// Crossings counts chip boundaries the request traversed;
	// InterchipBytes the flit-rounded payload it moved over the fabric,
	// of which ShortcutHandoffBytes were pinned shortcut state forced
	// across a placement cut.
	Crossings            int   `json:"crossings"`
	InterchipBytes       int64 `json:"interchip_bytes"`
	ShortcutHandoffBytes int64 `json:"shortcut_handoff_bytes"`
	// InterchipLogicalBytes is the pre-codec handoff payload and
	// CodecCycles the interchip encode+decode time on this request's
	// critical path; both are zero when compression is off.
	InterchipLogicalBytes int64 `json:"interchip_logical_bytes,omitempty"`
	CodecCycles           int64 `json:"codec_cycles,omitempty"`
	// BackpressureCycles is the time this request's handoffs queued
	// behind competing transfers.
	BackpressureCycles int64 `json:"backpressure_cycles"`
}

// StreamResult is one stream's sharded QoS outcome.
type StreamResult struct {
	Name     string `json:"name"`
	Network  string `json:"network"`
	Strategy string `json:"strategy"`

	Requests  int `json:"requests"`
	Completed int `json:"completed"`

	Latency     sched.Quantiles `json:"latency_cycles"`
	QueueWait   sched.Quantiles `json:"queue_wait_cycles"`
	MeanLatency float64         `json:"mean_latency_cycles"`

	// ServiceCycles reconciles exactly: Completed × SingleTenantCycles.
	ServiceCycles      int64 `json:"service_cycles"`
	SingleTenantCycles int64 `json:"single_tenant_cycles"`

	// Sched ledgers the boundary suspend/resume costs; Crossings and
	// InterchipBytes the fabric traffic the placement induced.
	Sched          core.SchedStats `json:"sched"`
	Crossings      int64           `json:"crossings"`
	InterchipBytes int64           `json:"interchip_bytes"`
	// InterchipLogicalBytes / CodecCycles mirror the per-request fields;
	// Compression is the stream's full codec ledger (per-chip DRAM
	// boundaries plus interchip handoffs). All zero/nil without a
	// compress= clause.
	InterchipLogicalBytes int64                   `json:"interchip_logical_bytes,omitempty"`
	CodecCycles           int64                   `json:"codec_cycles,omitempty"`
	Compression           *stats.CompressionStats `json:"compression,omitempty"`

	// Traffic sums the completed requests' own DRAM traffic (excludes
	// boundary spill/reload and interchip bytes, reported above).
	Traffic dram.Traffic `json:"traffic"`
}

// ChipResult is one chip's activity ledger.
type ChipResult struct {
	Chip     int   `json:"chip"`
	Segments int64 `json:"segments"`
	// ComputeCycles is run-attributed execution; SpillCycles /
	// ReloadCycles the boundary evacuation and restore charged to this
	// chip's DRAM channel.
	ComputeCycles int64 `json:"compute_cycles"`
	SpillCycles   int64 `json:"spill_cycles"`
	ReloadCycles  int64 `json:"reload_cycles"`
	// CodecCycles is interchip codec engine time at this chip: encode
	// on egress handoffs, decode on ingress (zero without compression).
	CodecCycles int64 `json:"codec_cycles,omitempty"`
	// FinishCycle is when the chip went idle for good.
	FinishCycle int64 `json:"finish_cycle"`
}

// Result is a complete sharded-scenario outcome.
type Result struct {
	Chips     int    `json:"chips"`
	Topology  string `json:"topology"`
	Placement string `json:"placement"`
	Seed      int64  `json:"seed"`
	PoolBanks int    `json:"pool_banks"` // per chip

	MakespanCycles int64 `json:"makespan_cycles"`

	Streams   []StreamResult  `json:"streams"`
	Requests  []RequestResult `json:"requests"`
	ChipStats []ChipResult    `json:"chip_stats"`
	Noc       noc.FabricStats `json:"noc"`

	// Traffic aggregates every request's per-class DRAM bytes plus the
	// interchip class, which equals Noc.Bytes by construction.
	Traffic        dram.Traffic `json:"traffic"`
	InterchipBytes int64        `json:"interchip_bytes"`

	// InterchipLogicalBytes is the pre-codec handoff payload total and
	// Compression the cluster-wide codec ledger; zero/nil without a
	// compress= clause.
	InterchipLogicalBytes int64                   `json:"interchip_logical_bytes,omitempty"`
	Compression           *stats.CompressionStats `json:"compression,omitempty"`
}

// assemble folds the accumulators into the final Result.
func assemble(spec *sched.Spec, names []string, place Placement, topo noc.Topology,
	cfg core.Config, perStream []*streamAccum, chips []chipAccum,
	requests []RequestResult, fstats noc.FabricStats, makespan, interTotal int64) *Result {
	res := &Result{
		Chips:          spec.Chips,
		Topology:       topo.String(),
		Placement:      place.String(),
		Seed:           spec.Seed,
		PoolBanks:      cfg.Pool.NumBanks,
		MakespanCycles: makespan,
		Requests:       requests,
		Noc:            fstats,
		InterchipBytes: interTotal,
	}
	for i, acc := range perStream {
		st := spec.Streams[i]
		sr := StreamResult{
			Name:     names[i],
			Network:  st.Network,
			Strategy: st.Strategy.String(),

			Requests:  st.Requests,
			Completed: acc.completed,

			Latency:   sched.ComputeQuantiles(acc.latencies),
			QueueWait: sched.ComputeQuantiles(acc.queueWaits),

			ServiceCycles:      acc.serviceCycles,
			SingleTenantCycles: acc.singleTenant,

			Sched:          acc.schedLedger,
			Crossings:      acc.crossings,
			InterchipBytes: acc.interBytes,
			Traffic:        acc.traffic,

			InterchipLogicalBytes: acc.interLogical,
			CodecCycles:           acc.codecCycles,
			Compression:           acc.comp,
		}
		if acc.comp != nil {
			if res.Compression == nil {
				res.Compression = &stats.CompressionStats{}
			}
			res.Compression.Add(*acc.comp)
			res.InterchipLogicalBytes += acc.interLogical
		}
		if n := len(acc.latencies); n > 0 {
			var sum int64
			for _, l := range acc.latencies {
				sum += l
			}
			sr.MeanLatency = float64(sum) / float64(n)
		}
		res.Streams = append(res.Streams, sr)
		for c := range acc.traffic {
			res.Traffic[c] += acc.traffic[c] // scmvet:ok accounting aggregate of per-stream ledgers into the cluster ledger
		}
	}
	res.Traffic[dram.ClassInterchip] = interTotal // scmvet:ok accounting fabric bytes enter the ledger under their own class
	for c, ca := range chips {
		res.ChipStats = append(res.ChipStats, ChipResult{
			Chip: c, Segments: ca.segments,
			ComputeCycles: ca.compute, SpillCycles: ca.spill, ReloadCycles: ca.reload,
			CodecCycles: ca.codec,
			FinishCycle: ca.freeAt,
		})
	}
	return res
}

// Reconcile cross-checks every ledger in the result; a non-nil error
// means cycles or bytes leaked between the per-request, per-chip,
// per-stream, and fabric views. E24 and the package tests call this on
// every run.
func (r *Result) Reconcile() error {
	var reqService, reqInter, reqQueue, reqInterLogical, reqCodec int64
	for _, q := range r.Requests {
		reqService += q.ServiceCycles
		reqInter += q.InterchipBytes
		reqQueue += q.BackpressureCycles
		reqInterLogical += q.InterchipLogicalBytes
		reqCodec += q.CodecCycles
	}
	var chipCompute, chipSpill, chipReload, chipCodec int64
	for _, c := range r.ChipStats {
		chipCompute += c.ComputeCycles
		chipSpill += c.SpillCycles
		chipReload += c.ReloadCycles
		chipCodec += c.CodecCycles
	}
	var streamService, streamInter, streamInterLogical, streamCodec int64
	var ledger core.SchedStats
	for _, s := range r.Streams {
		if s.Completed != s.Requests {
			return fmt.Errorf("cluster: stream %s completed %d of %d requests", s.Name, s.Completed, s.Requests)
		}
		if want := int64(s.Completed) * s.SingleTenantCycles; s.ServiceCycles != want {
			return fmt.Errorf("cluster: stream %s service cycles %d != completed×single-tenant %d — sharded runs are not bit-identical",
				s.Name, s.ServiceCycles, want)
		}
		streamService += s.ServiceCycles
		streamInter += s.InterchipBytes
		streamInterLogical += s.InterchipLogicalBytes
		streamCodec += s.CodecCycles
		ledger.SpillCycles += s.Sched.SpillCycles
		ledger.ReloadCycles += s.Sched.ReloadCycles
	}
	if reqService != chipCompute || reqService != streamService {
		return fmt.Errorf("cluster: service cycles leak: requests %d, chips %d, streams %d",
			reqService, chipCompute, streamService)
	}
	if chipSpill != ledger.SpillCycles || chipReload != ledger.ReloadCycles {
		return fmt.Errorf("cluster: boundary cycles leak: chips spill/reload %d/%d, streams %d/%d",
			chipSpill, chipReload, ledger.SpillCycles, ledger.ReloadCycles)
	}
	if reqInter != streamInter || reqInter != r.InterchipBytes || reqInter != r.Noc.Bytes {
		return fmt.Errorf("cluster: interchip bytes leak: requests %d, streams %d, result %d, fabric %d",
			reqInter, streamInter, r.InterchipBytes, r.Noc.Bytes)
	}
	if r.Traffic[dram.ClassInterchip] != r.Noc.Bytes {
		return fmt.Errorf("cluster: traffic ledger interchip class %d != fabric bytes %d",
			r.Traffic[dram.ClassInterchip], r.Noc.Bytes)
	}
	if reqQueue != r.Noc.BackpressureCycles {
		return fmt.Errorf("cluster: backpressure leak: requests %d, fabric %d", reqQueue, r.Noc.BackpressureCycles)
	}
	if reqInterLogical != streamInterLogical || reqInterLogical != r.InterchipLogicalBytes {
		return fmt.Errorf("cluster: interchip logical bytes leak: requests %d, streams %d, result %d",
			reqInterLogical, streamInterLogical, r.InterchipLogicalBytes)
	}
	if reqCodec != chipCodec || reqCodec != streamCodec {
		return fmt.Errorf("cluster: codec cycles leak: requests %d, chips %d, streams %d",
			reqCodec, chipCodec, streamCodec)
	}
	if r.Compression != nil {
		cl := r.Compression.Logical[dram.ClassInterchip]
		if cl != r.InterchipLogicalBytes {
			return fmt.Errorf("cluster: codec ledger interchip logical %d != result %d", cl, r.InterchipLogicalBytes)
		}
		// The codec ledger's wire bytes are pre-flit-rounding, so they
		// bound the fabric's rounded byte count from below.
		if cw := r.Compression.Wire[dram.ClassInterchip]; cw > r.Noc.Bytes {
			return fmt.Errorf("cluster: codec ledger interchip wire %d exceeds fabric bytes %d", cw, r.Noc.Bytes)
		}
	}
	var linkQueue, linkBusy int64
	for _, l := range r.Noc.Links {
		linkQueue += l.BackpressureCycles
		linkBusy += l.BusyCycles
	}
	if linkQueue != r.Noc.BackpressureCycles || linkBusy != r.Noc.BusyCycles {
		return fmt.Errorf("cluster: per-link sums %d/%d != fabric totals %d/%d",
			linkQueue, linkBusy, r.Noc.BackpressureCycles, r.Noc.BusyCycles)
	}
	return nil
}

// Table renders the per-stream sharded QoS for CLI / markdown use.
func (r *Result) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Sharded QoS (chips=%d, topo=%s, place=%s, seed=%d)",
			r.Chips, r.Topology, r.Placement, r.Seed),
		"stream", "network", "reqs", "done",
		"lat p50 (Mcyc)", "lat p95 (Mcyc)",
		"crossings", "interchip MB", "backpressure (Mcyc)")
	mcyc := func(v int64) string { return fmt.Sprintf("%.2f", float64(v)/1e6) }
	for _, s := range r.Streams {
		var bp int64
		for _, q := range r.Requests {
			if q.Stream == s.Name {
				bp += q.BackpressureCycles
			}
		}
		t.Add(s.Name, s.Network,
			fmt.Sprintf("%d", s.Requests), fmt.Sprintf("%d", s.Completed),
			mcyc(s.Latency.P50), mcyc(s.Latency.P95),
			fmt.Sprintf("%d", s.Crossings),
			fmt.Sprintf("%.2f", float64(s.InterchipBytes)/1e6),
			mcyc(bp))
	}
	return t
}

// ChipTable renders the per-chip activity ledger.
func (r *Result) ChipTable() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Per-chip activity (chips=%d, topo=%s, place=%s)", r.Chips, r.Topology, r.Placement),
		"chip", "segments", "compute (Mcyc)", "spill (Mcyc)", "reload (Mcyc)", "finish (Mcyc)")
	mcyc := func(v int64) string { return fmt.Sprintf("%.2f", float64(v)/1e6) }
	for _, c := range r.ChipStats {
		t.Add(fmt.Sprintf("c%d", c.Chip), fmt.Sprintf("%d", c.Segments),
			mcyc(c.ComputeCycles), mcyc(c.SpillCycles), mcyc(c.ReloadCycles), mcyc(c.FinishCycle))
	}
	return t
}
