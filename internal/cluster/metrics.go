package cluster

import (
	"fmt"

	"shortcutmining/internal/metrics"
)

// Cluster and interconnect metric names (the per-run simulator metrics
// live in internal/core, the single-chip scheduler's in internal/sched;
// these describe the sharding layer above both).
const (
	MetricRequests       = "scm_cluster_requests_total"
	MetricCrossings      = "scm_cluster_crossings_total"
	MetricInterchipBytes = "scm_cluster_interchip_bytes_total"
	MetricLatencyCycles  = "scm_cluster_latency_cycles"
	MetricMakespanCycles = "scm_cluster_makespan_cycles"
	MetricChipCompute    = "scm_cluster_chip_compute_cycles"

	// MetricCompress* ledger the cluster-wide interlayer codec: logical
	// vs wire bytes and codec engine time (absent without compression).
	MetricCompressLogical = "scm_cluster_compress_logical_bytes_total"
	MetricCompressWire    = "scm_cluster_compress_wire_bytes_total"
	MetricCompressCycles  = "scm_cluster_compress_codec_cycles_total"

	MetricNocTransfers    = "scm_noc_transfers_total"
	MetricNocBytes        = "scm_noc_bytes_total"
	MetricNocBusyCycles   = "scm_noc_busy_cycles_total"
	MetricNocBackpressure = "scm_noc_backpressure_cycles_total"
)

// publish exports a finished result onto the registry. The simulation
// is a deterministic batch, so instruments are written once from the
// assembled ledgers rather than streamed mid-run.
func publish(reg *metrics.Registry, r *Result) {
	if reg == nil {
		return
	}
	bounds := metrics.ExpBuckets(1e4, 4, 11)
	for _, s := range r.Streams {
		l := metrics.L("stream", s.Name)
		reg.Counter(MetricRequests, "sharded requests completed", l).Add(int64(s.Completed))
		reg.Counter(MetricCrossings, "chip-boundary handoffs", l).Add(s.Crossings)
		reg.Counter(MetricInterchipBytes, "bytes moved over the interconnect", l).Add(s.InterchipBytes)
	}
	lat := reg.Histogram(MetricLatencyCycles, "sharded request latency (arrival to completion) in cycles", bounds)
	for _, q := range r.Requests {
		lat.Observe(float64(q.Latency))
	}
	reg.Gauge(MetricMakespanCycles, "finish cycle of the last completed sharded request").Set(float64(r.MakespanCycles))
	for _, c := range r.ChipStats {
		reg.Gauge(MetricChipCompute, "run-attributed compute cycles per chip",
			metrics.L("chip", fmt.Sprintf("c%d", c.Chip))).Set(float64(c.ComputeCycles))
	}
	if r.Compression != nil {
		reg.Counter(MetricCompressLogical, "pre-codec bytes across all chips and handoffs").Add(r.Compression.Logical.Total())
		reg.Counter(MetricCompressWire, "post-codec bytes across all chips and handoffs").Add(r.Compression.Wire.Total())
		reg.Counter(MetricCompressCycles, "codec engine cycles by direction",
			metrics.L("dir", "encode")).Add(r.Compression.EncodeCycles)
		reg.Counter(MetricCompressCycles, "codec engine cycles by direction",
			metrics.L("dir", "decode")).Add(r.Compression.DecodeCycles)
	}
	for _, ln := range r.Noc.Links {
		l := metrics.L("link", ln.Name)
		reg.Counter(MetricNocTransfers, "occupancy windows granted per link", l).Add(ln.Transfers)
		reg.Counter(MetricNocBytes, "flit-rounded bytes per link", l).Add(ln.Bytes)
		reg.Counter(MetricNocBusyCycles, "link occupancy cycles", l).Add(ln.BusyCycles)
		reg.Counter(MetricNocBackpressure, "cycles transfers queued behind in-flight occupants", l).Add(ln.BackpressureCycles)
	}
}
