// Package cluster shards one multi-tenant scheduling scenario across N
// simulated accelerator chips connected by a contended interconnect
// (internal/noc). Each chip owns its own bank pool; a placement policy
// maps every stream's layers onto chips as contiguous segments (or
// per-layer for the hash baseline), and a request executes its
// segments in order, suspending P5-style at every chip boundary and
// handing its live feature-map and pinned-shortcut state to the next
// chip over the fabric.
//
// The execution model deliberately reuses the proven core.Run
// suspend/resume machinery at boundaries, so each request's own
// RunStats stay bit-identical to a single-chip run: all sharding costs
// — spill/reload at the boundary, link serialization, hop latency,
// and backpressure behind competing transfers — are ledgered
// separately and reconcile exactly (Result.Reconcile).
//
// Like sched, the whole simulation is deterministic: the same spec
// always yields byte-identical results. Segments are scheduled
// non-preemptively, earliest-start-first with (chip, stream, seq)
// tie-breaking, each chip serving one segment at a time.
package cluster

import (
	"context"
	"fmt"

	"shortcutmining/internal/core"
	"shortcutmining/internal/dram"
	"shortcutmining/internal/metrics"
	"shortcutmining/internal/nn"
	"shortcutmining/internal/noc"
	"shortcutmining/internal/sched"
	"shortcutmining/internal/stats"
	"shortcutmining/internal/trace"
)

// reqState tracks one request through its segment sequence.
type reqState struct {
	stream, seq int
	arrival     int64

	si      int // next segment index
	run     *core.Run
	readyAt int64 // earliest start of the next segment
	start   int64 // first executed cycle; -1 until launched
	finish  int64

	crossings     int
	interBytes    int64
	interLogical  int64 // pre-codec handoff payload (== interBytes pre-flit-rounding when uncompressed)
	codecCycles   int64 // interchip encode+decode time on this request's timeline
	shortcutBytes int64 // pinned-shortcut share of the handoff payloads
	queueCycles   int64 // noc backpressure experienced
	comp          *stats.CompressionStats
}

// chipAccum ledgers one chip's activity.
type chipAccum struct {
	segments               int64
	compute, spill, reload int64
	codec                  int64 // codec engine cycles at this chip (encode on egress, decode on ingress)
	freeAt                 int64
}

// streamAccum accumulates one stream's outcome.
type streamAccum struct {
	completed     int
	serviceCycles int64
	singleTenant  int64
	schedLedger   core.SchedStats
	traffic       dram.Traffic
	crossings     int64
	interBytes    int64
	interLogical  int64
	codecCycles   int64
	comp          *stats.CompressionStats
	latencies     []int64
	queueWaits    []int64
}

// Run executes a chips>1 scenario and returns the sharded outcome.
// reg and rec may be nil (no metrics, no trace).
func Run(cfg core.Config, spec *sched.Spec, reg *metrics.Registry, rec trace.Recorder) (*Result, error) {
	return RunContext(context.Background(), cfg, spec, reg, rec)
}

// RunContext is Run with cooperative cancellation at layer granularity.
func RunContext(ctx context.Context, cfg core.Config, spec *sched.Spec, reg *metrics.Registry, rec trace.Recorder) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Chips < 2 {
		return nil, fmt.Errorf("cluster: spec has chips=%d; single-chip scenarios run through sched", spec.Chips)
	}
	place, err := ParsePlacement(spec.Placement)
	if err != nil {
		return nil, err
	}
	topo := noc.Ring
	if spec.Topology != "" {
		topo, err = noc.ParseTopology(spec.Topology)
		if err != nil {
			return nil, err
		}
	}
	// Same single-inference normalization as sched.
	cfg.Batch = 1
	cfg.AmortizeWeights = false
	if spec.Compress != nil {
		cfg.Compression = spec.Compress
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	fabric, err := noc.New(noc.Config{
		Chips:      spec.Chips,
		Topology:   topo,
		LinkGBps:   spec.LinkGBps,
		HopLatency: spec.HopLatency,
		ClockMHz:   cfg.PE.ClockMHz,
	})
	if err != nil {
		return nil, err
	}
	if rec != nil {
		st := &trace.Stamper{R: rec}
		fabric.SetSpanFunc(func(link string, bytes, start, dur int64) {
			st.Record(trace.Event{Kind: trace.KindLink, Tag: link,
				Bytes: bytes, Cycle: start, DurCycles: dur})
		})
	}

	names := spec.StreamNames()
	nets := make([]*nn.Network, len(spec.Streams))
	segsByStream := make([][]segment, len(spec.Streams))
	perStream := make([]*streamAccum, len(spec.Streams))
	for i, st := range spec.Streams {
		net, err := nn.Build(st.Network)
		if err != nil {
			return nil, fmt.Errorf("cluster: stream %d: %w", i, err)
		}
		nets[i] = net
		perLayer, single, err := profile(ctx, net, cfg, st.Strategy)
		if err != nil {
			return nil, fmt.Errorf("cluster: stream %d (%s): %w", i, st.Network, err)
		}
		assignment := assign(place, net, cfg.DType, perLayer, spec.Chips)
		segsByStream[i] = segments(assignment)
		perStream[i] = &streamAccum{singleTenant: single}
	}

	reqs := make([]reqState, 0, len(spec.Streams))
	for _, a := range spec.Arrivals() {
		reqs = append(reqs, reqState{
			stream: a.Stream, seq: a.Seq, arrival: a.Cycle,
			readyAt: a.Cycle, start: -1,
		})
	}

	chips := make([]chipAccum, spec.Chips)
	var requests []RequestResult
	var makespan int64
	var interTotal int64

	remaining := len(reqs)
	for remaining > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("cluster: canceled: %w", err)
		}
		// Pick the runnable segment with the earliest start; ties go to
		// the lowest (chip, stream, seq). Executing it cannot invalidate
		// the choice: everything it generates starts at or after it.
		best := -1
		var bestStart int64
		var bestChip int
		for i := range reqs {
			r := &reqs[i]
			if r.si >= len(r.segs(segsByStream)) {
				continue
			}
			seg := r.segs(segsByStream)[r.si]
			start := r.readyAt
			if chips[seg.chip].freeAt > start {
				start = chips[seg.chip].freeAt
			}
			if best < 0 || start < bestStart ||
				(start == bestStart && (seg.chip < bestChip ||
					(seg.chip == bestChip && (r.stream < reqs[best].stream ||
						(r.stream == reqs[best].stream && r.seq < reqs[best].seq))))) {
				best, bestStart, bestChip = i, start, seg.chip
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("cluster: internal: %d requests unfinished but none runnable", remaining)
		}

		r := &reqs[best]
		segs := r.segs(segsByStream)
		seg := segs[r.si]
		ca := &chips[seg.chip]
		t := bestStart
		if r.run == nil {
			run, err := core.NewRun(nets[r.stream], cfg, spec.Streams[r.stream].Strategy, nil, nil)
			if err != nil {
				return nil, fmt.Errorf("cluster: %s request %d: %w", names[r.stream], r.seq, err)
			}
			r.run = run
			r.start = t
		}

		beforeClock := r.run.Clock()
		beforeSched := r.run.Sched()
		done := false
		for !done && r.run.NextLayer() < seg.hi {
			d, err := r.run.Step(ctx)
			if err != nil {
				return nil, fmt.Errorf("cluster: %s request %d: %w", names[r.stream], r.seq, err)
			}
			done = d
		}
		afterSched := r.run.Sched()
		clockDelta := r.run.Clock() - beforeClock
		reloadDelta := afterSched.ReloadCycles - beforeSched.ReloadCycles
		t += clockDelta + reloadDelta
		ca.compute += clockDelta
		ca.reload += reloadDelta
		ca.segments++
		r.si++

		if done {
			ca.freeAt = t
			r.finish = t
			if t > makespan {
				makespan = t
			}
			res, err := r.run.Result()
			if err != nil {
				return nil, fmt.Errorf("cluster: %s request %d: %w", names[r.stream], r.seq, err)
			}
			acc := perStream[r.stream]
			acc.completed++
			acc.serviceCycles += res.TotalCycles
			for c := range res.Traffic {
				acc.traffic[c] += res.Traffic[c] // scmvet:ok accounting fold of a finished request's RunStats into the stream ledger
			}
			sc := r.run.Sched()
			acc.schedLedger.Suspends += sc.Suspends
			acc.schedLedger.Resumes += sc.Resumes
			acc.schedLedger.SpillBytes += sc.SpillBytes
			acc.schedLedger.ReloadBytes += sc.ReloadBytes
			acc.schedLedger.SpillCycles += sc.SpillCycles
			acc.schedLedger.ReloadCycles += sc.ReloadCycles
			acc.crossings += int64(r.crossings)
			acc.interBytes += r.interBytes
			acc.interLogical += r.interLogical
			acc.codecCycles += r.codecCycles
			if res.Compression != nil {
				if r.comp == nil {
					r.comp = &stats.CompressionStats{}
				}
				r.comp.Add(*res.Compression)
			}
			if r.comp != nil {
				if acc.comp == nil {
					acc.comp = &stats.CompressionStats{}
				}
				acc.comp.Add(*r.comp)
			}
			lat := t - r.arrival
			wait := r.start - r.arrival
			acc.latencies = append(acc.latencies, lat)
			acc.queueWaits = append(acc.queueWaits, wait)
			requests = append(requests, RequestResult{
				Stream: names[r.stream], Seq: r.seq,
				Arrival: r.arrival, Start: r.start, Finish: t,
				Latency: lat, QueueWait: wait,
				ServiceCycles: res.TotalCycles,
				Crossings:     r.crossings, InterchipBytes: r.interBytes,
				InterchipLogicalBytes: r.interLogical,
				CodecCycles:           r.codecCycles,
				ShortcutHandoffBytes:  r.shortcutBytes,
				BackpressureCycles:    r.queueCycles,
			})
			r.run = nil // release the finished run's pool
			remaining--
			continue
		}

		// Chip boundary: evacuate the live state P5-style and ship it.
		h := r.run.Handoff()
		bs := r.run.Sched()
		if _, err := r.run.Suspend(); err != nil {
			return nil, fmt.Errorf("cluster: %s request %d boundary: %w", names[r.stream], r.seq, err)
		}
		spillDelta := r.run.Sched().SpillCycles - bs.SpillCycles
		t += spillDelta
		ca.spill += spillDelta
		// The handoff ships compressed when a codec covers the interchip
		// class: encode serializes on the source chip before the fabric
		// sees the payload, decode delays the destination's readiness.
		payload := h.Total()
		var decDelay int64
		if cfg.Compression != nil {
			wire := cfg.Compression.WireBytes(dram.ClassInterchip, payload)
			enc, dec := cfg.Compression.CodecCycles(dram.ClassInterchip, payload)
			t += enc
			ca.codec += enc
			chips[segs[r.si].chip].codec += dec
			decDelay = dec
			r.interLogical += payload
			r.codecCycles += enc + dec
			if r.comp == nil {
				r.comp = &stats.CompressionStats{}
			}
			r.comp.Logical[dram.ClassInterchip] += payload // scmvet:ok accounting codec ledger of the handoff, not a transfer; the fabric records the wire bytes
			r.comp.Wire[dram.ClassInterchip] += wire       // scmvet:ok accounting codec ledger of the handoff, not a transfer; the fabric records the wire bytes
			r.comp.SavedBytes += payload - wire
			r.comp.EncodeCycles += enc
			r.comp.DecodeCycles += dec
			payload = wire
		}
		ca.freeAt = t
		tr, err := fabric.Send(seg.chip, segs[r.si].chip, payload, t)
		if err != nil {
			return nil, fmt.Errorf("cluster: %s request %d handoff: %w", names[r.stream], r.seq, err)
		}
		r.readyAt = tr.Arrive + decDelay
		r.crossings++
		r.interBytes += tr.Bytes
		r.shortcutBytes += h.ShortcutBytes
		r.queueCycles += tr.QueueCycles
		interTotal += tr.Bytes
	}

	res := assemble(spec, names, place, topo, cfg, perStream, chips, requests, fabric.Stats(), makespan, interTotal)
	publish(reg, res)
	return res, nil
}

// segs resolves the request's segment list (all requests of a stream
// share one placement).
func (r *reqState) segs(byStream [][]segment) []segment { return byStream[r.stream] }

// profile runs one uncontended single-tenant inference to measure
// per-layer cycles (the balancing input of LeastLoad/Affinity) and the
// stream's single-tenant baseline, against which sharded service
// cycles reconcile bit-identically.
func profile(ctx context.Context, net *nn.Network, cfg core.Config, strat core.Strategy) ([]int64, int64, error) {
	run, err := core.NewRun(net, cfg, strat, nil, nil)
	if err != nil {
		return nil, 0, err
	}
	perLayer := make([]int64, run.NumLayers())
	for !run.Done() {
		li := run.NextLayer()
		before := run.Clock()
		if _, err := run.Step(ctx); err != nil {
			return nil, 0, err
		}
		perLayer[li] += run.Clock() - before
	}
	res, err := run.Result()
	if err != nil {
		return nil, 0, err
	}
	return perLayer, res.TotalCycles, nil
}
