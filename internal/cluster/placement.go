package cluster

import (
	"fmt"
	"hash/fnv"

	"shortcutmining/internal/nn"
	"shortcutmining/internal/tensor"
)

// Placement selects how a network's layers map onto chips.
type Placement int

const (
	// Hash statically hashes each layer name onto a chip. The
	// resulting assignment ignores both load and dataflow, so adjacent
	// layers ping-pong across the fabric — the worst case the other
	// policies are measured against.
	Hash Placement = iota
	// LeastLoad cuts the network into contiguous per-chip segments
	// balanced by profiled per-layer cycles, ignoring shortcut spans:
	// a cut may fall inside a residual block, forcing its pinned
	// shortcut banks across a link at every handoff.
	LeastLoad
	// Affinity balances contiguous segments like LeastLoad but
	// restricts cuts to boundaries no shortcut edge crosses, keeping
	// each residual producer/consumer pair — and therefore the P2–P5
	// pinned banks between them — local to one chip. When a network
	// has fewer clean boundaries than chips, the remaining cuts fall
	// back to the boundaries with the fewest crossing bytes.
	Affinity
)

// DefaultPlacement is used when a spec names none.
const DefaultPlacement = Affinity

// String returns the spec-grammar name of the policy.
func (p Placement) String() string {
	switch p {
	case Hash:
		return "hash"
	case LeastLoad:
		return "leastload"
	case Affinity:
		return "affinity"
	default:
		return fmt.Sprintf("placement(%d)", int(p))
	}
}

// ParsePlacement parses a spec-grammar placement name; empty selects
// the default.
func ParsePlacement(s string) (Placement, error) {
	switch s {
	case "":
		return DefaultPlacement, nil
	case "hash":
		return Hash, nil
	case "leastload", "least-loaded":
		return LeastLoad, nil
	case "affinity", "shortcut-affinity":
		return Affinity, nil
	default:
		return 0, fmt.Errorf("cluster: unknown placement %q (want hash, leastload, affinity)", s)
	}
}

// segment is a maximal run of consecutive layers on one chip.
type segment struct {
	chip   int
	lo, hi int // layer index range [lo, hi)
}

// assign maps every layer of net to a chip. perLayer holds profiled
// single-tenant cycles per layer (used by the balancing policies).
func assign(p Placement, net *nn.Network, dtype tensor.DataType, perLayer []int64, chips int) []int {
	n := len(net.Layers)
	out := make([]int, n)
	if chips <= 1 || n == 0 {
		return out
	}
	switch p {
	case Hash:
		for i, l := range net.Layers {
			h := fnv.New32a()
			h.Write([]byte(l.Name)) // scmvet:ok ignorederr hash.Hash32 Write never fails
			out[i] = int(h.Sum32() % uint32(chips))
		}
	case LeastLoad:
		cutsToAssign(out, balancedCuts(perLayer, chips, nil))
	case Affinity:
		cutsToAssign(out, balancedCuts(perLayer, chips, affinityBoundaries(net, dtype)))
	}
	return out
}

// affinityBoundaries classifies every cut boundary b (between layers
// b-1 and b): allowed[b] is true when no shortcut edge crosses it, and
// crossBytes[b] totals the feature-map bytes of all edges that do.
func affinityBoundaries(net *nn.Network, dtype tensor.DataType) *boundaryInfo {
	n := len(net.Layers)
	info := &boundaryInfo{
		allowed:    make([]bool, n),
		crossBytes: make([]int64, n),
	}
	for b := 1; b < n; b++ {
		info.allowed[b] = true
	}
	for _, e := range nn.Edges(net, dtype) {
		for b := e.Producer + 1; b <= e.Consumer && b < n; b++ {
			info.crossBytes[b] += e.Bytes
			if e.Shortcut {
				info.allowed[b] = false
			}
		}
	}
	return info
}

type boundaryInfo struct {
	allowed    []bool
	crossBytes []int64
}

// balancedCuts picks up to chips-1 strictly increasing cut boundaries
// over the profiled per-layer cycles, each as close as possible to the
// ideal equal-work prefix. With a boundaryInfo, cuts prefer allowed
// (shortcut-clean) boundaries and fall back to the smallest crossing
// byte count when no clean boundary remains for a cut.
func balancedCuts(perLayer []int64, chips int, info *boundaryInfo) []int {
	n := len(perLayer)
	prefix := make([]int64, n+1)
	for i, c := range perLayer {
		prefix[i+1] = prefix[i] + c
	}
	total := prefix[n]
	var cuts []int
	prev := 0
	for k := 1; k < chips; k++ {
		target := total * int64(k) / int64(chips)
		best, bestScore := -1, int64(-1)
		fallback, fallbackScore, fallbackBytes := -1, int64(-1), int64(-1)
		for b := prev + 1; b < n; b++ {
			dist := prefix[b] - target
			if dist < 0 {
				dist = -dist
			}
			if info == nil || info.allowed[b] {
				if best < 0 || dist < bestScore {
					best, bestScore = b, dist
				}
			} else if fallback < 0 ||
				info.crossBytes[b] < fallbackBytes ||
				(info.crossBytes[b] == fallbackBytes && dist < fallbackScore) {
				fallback, fallbackScore, fallbackBytes = b, dist, info.crossBytes[b]
			}
		}
		if best < 0 {
			best = fallback
		}
		if best < 0 {
			break // fewer boundaries than chips; the rest stay empty
		}
		cuts = append(cuts, best)
		prev = best
	}
	return cuts
}

// cutsToAssign converts increasing cut boundaries into a layer→chip
// assignment: layers before the first cut are chip 0, and so on.
func cutsToAssign(out []int, cuts []int) {
	chip := 0
	next := 0
	for i := range out {
		for next < len(cuts) && i >= cuts[next] {
			chip++
			next++
		}
		out[i] = chip
	}
}

// segments merges consecutive same-chip layers of an assignment into
// execution segments, in layer order.
func segments(assignment []int) []segment {
	var segs []segment
	for i, chip := range assignment {
		if len(segs) > 0 && segs[len(segs)-1].chip == chip {
			segs[len(segs)-1].hi = i + 1
			continue
		}
		segs = append(segs, segment{chip: chip, lo: i, hi: i + 1})
	}
	return segs
}
