package cluster

import (
	"testing"

	"shortcutmining/internal/compress"
	"shortcutmining/internal/core"
	"shortcutmining/internal/dram"
	"shortcutmining/internal/nn"
)

const compressClause = ";compress=zvc:sparsity=0.5,enc=2,dec=2"

// TestClusterCompressionReconciles checks that every ledger still
// balances when the interlayer codec covers both the per-chip DRAM
// boundaries and the interchip handoffs.
func TestClusterCompressionReconciles(t *testing.T) {
	cfg := core.Default()
	spec := testSpec(t, testScenario+";place=affinity"+compressClause)
	res, err := Run(cfg, spec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Reconcile(); err != nil {
		t.Fatal(err)
	}
	if res.Compression == nil {
		t.Fatal("compressed cluster run reports no codec ledger")
	}
	if lw, ww := res.Compression.Logical.Total(), res.Compression.Wire.Total(); ww >= lw {
		t.Errorf("codec ledger wire %d not below logical %d", ww, lw)
	}
	if res.InterchipLogicalBytes == 0 {
		t.Error("compressed run with crossings reports zero interchip logical bytes")
	}
	if res.Compression.Logical[dram.ClassInterchip] != res.InterchipLogicalBytes {
		t.Errorf("codec ledger interchip logical %d != result %d",
			res.Compression.Logical[dram.ClassInterchip], res.InterchipLogicalBytes)
	}
	var chipCodec int64
	for _, c := range res.ChipStats {
		chipCodec += c.CodecCycles
	}
	if chipCodec == 0 {
		t.Error("no chip accrued interchip codec cycles despite crossings")
	}
}

// TestClusterCompressionShrinksFabric pins the point of compressing
// handoffs: the same scenario moves fewer bytes over the interconnect.
func TestClusterCompressionShrinksFabric(t *testing.T) {
	cfg := core.Default()
	base, err := Run(cfg, testSpec(t, testScenario+";place=affinity"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Run(cfg, testSpec(t, testScenario+";place=affinity"+compressClause), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := comp.Reconcile(); err != nil {
		t.Fatal(err)
	}
	if comp.Noc.Bytes >= base.Noc.Bytes {
		t.Errorf("compressed fabric bytes %d not below uncompressed %d", comp.Noc.Bytes, base.Noc.Bytes)
	}
	if comp.Noc.BusyCycles >= base.Noc.BusyCycles {
		t.Errorf("compressed link occupancy %d not below uncompressed %d",
			comp.Noc.BusyCycles, base.Noc.BusyCycles)
	}
	if base.Compression != nil || base.InterchipLogicalBytes != 0 {
		t.Error("uncompressed run carries a codec ledger")
	}
}

// TestClusterCompressionBitIdentical re-runs the suspend-at-every-
// boundary determinism check with the codec on: each sharded request's
// RunStats must still match an uncontended single-tenant compressed
// run exactly.
func TestClusterCompressionBitIdentical(t *testing.T) {
	cfg := core.Default()
	spec := testSpec(t, "seed=5;chips=3;place=hash;stream=squeezenet:n=2,gap=300000"+compressClause)
	res, err := Run(cfg, spec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Reconcile(); err != nil {
		t.Fatal(err)
	}
	s := res.Streams[0]
	if s.Crossings == 0 {
		t.Fatal("hash placement produced no chip crossings; the test is vacuous")
	}
	net, err := nn.Build("squeezenet")
	if err != nil {
		t.Fatal(err)
	}
	scfg := cfg
	scfg.Batch = 1
	scfg.AmortizeWeights = false
	cc, err := compress.ParseSpec("zvc:sparsity=0.5,enc=2,dec=2")
	if err != nil {
		t.Fatal(err)
	}
	scfg.Compression = cc
	single, err := core.Simulate(net, scfg, core.SCM, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.ServiceCycles != int64(s.Completed)*single.TotalCycles {
		t.Errorf("sharded compressed service cycles %d != %d × single-tenant %d",
			s.ServiceCycles, s.Completed, single.TotalCycles)
	}
	for c := range single.Traffic {
		if s.Traffic[c] != int64(s.Completed)*single.Traffic[c] {
			t.Errorf("traffic class %d: sharded %d != %d × single-tenant %d",
				c, s.Traffic[c], s.Completed, single.Traffic[c])
		}
	}
	if single.Compression == nil || s.Compression == nil {
		t.Fatal("compressed runs carry no codec ledger")
	}
	// The stream ledger adds interchip handoffs on top of the per-run
	// DRAM ledgers; the DRAM classes themselves must match exactly.
	for _, c := range []dram.Class{dram.ClassIFMRead, dram.ClassOFMWrite, dram.ClassShortcutRead} {
		if got, want := s.Compression.Wire[c], int64(s.Completed)*single.Compression.Wire[c]; got != want {
			t.Errorf("codec wire class %v: sharded %d != %d", c, got, want)
		}
	}
}
