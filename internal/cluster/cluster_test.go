package cluster

import (
	"encoding/json"
	"sync"
	"testing"

	"shortcutmining/internal/core"
	"shortcutmining/internal/metrics"
	"shortcutmining/internal/nn"
	"shortcutmining/internal/sched"
	"shortcutmining/internal/trace"
)

func testSpec(t *testing.T, s string) *sched.Spec {
	t.Helper()
	spec, err := sched.ParseSpec(s)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", s, err)
	}
	return spec
}

const testScenario = "seed=11;chips=3;stream=squeezenet:n=3,gap=500000;stream=resnet34:n=2,gap=800000,poisson"

func TestPlacementNames(t *testing.T) {
	for _, p := range []Placement{Hash, LeastLoad, Affinity} {
		got, err := ParsePlacement(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePlacement(%q) = %v, %v", p.String(), got, err)
		}
	}
	if p, err := ParsePlacement(""); err != nil || p != DefaultPlacement {
		t.Errorf("empty placement = %v, %v; want default", p, err)
	}
	if _, err := ParsePlacement("random"); err == nil {
		t.Error("ParsePlacement(random): want error")
	}
}

func TestAssignmentShapes(t *testing.T) {
	cfg := core.Default()
	net, err := nn.Build("resnet34")
	if err != nil {
		t.Fatal(err)
	}
	perLayer := make([]int64, len(net.Layers))
	for i := range perLayer {
		perLayer[i] = 1000 // uniform weight is enough for shape checks
	}
	for _, chips := range []int{2, 3, 5} {
		for _, p := range []Placement{Hash, LeastLoad, Affinity} {
			a := assign(p, net, cfg.DType, perLayer, chips)
			if len(a) != len(net.Layers) {
				t.Fatalf("%s/%d: %d assignments for %d layers", p, chips, len(a), len(net.Layers))
			}
			for i, c := range a {
				if c < 0 || c >= chips {
					t.Fatalf("%s/%d: layer %d on chip %d", p, chips, i, c)
				}
			}
			if p == LeastLoad || p == Affinity {
				for i := 1; i < len(a); i++ {
					if a[i] < a[i-1] {
						t.Fatalf("%s/%d: assignment not contiguous at layer %d: %v", p, chips, i, a)
					}
				}
			}
		}
	}
}

func TestAffinityAvoidsShortcutCuts(t *testing.T) {
	cfg := core.Default()
	net, err := nn.Build("resnet34")
	if err != nil {
		t.Fatal(err)
	}
	perLayer := make([]int64, len(net.Layers))
	for i := range perLayer {
		perLayer[i] = 1000
	}
	info := affinityBoundaries(net, cfg.DType)
	var clean int
	for _, ok := range info.allowed {
		if ok {
			clean++
		}
	}
	if clean == 0 {
		t.Fatal("resnet34 reports no shortcut-clean boundaries; affinity has nothing to work with")
	}
	a := assign(Affinity, net, cfg.DType, perLayer, 3)
	for i := 1; i < len(a); i++ {
		if a[i] != a[i-1] && !info.allowed[i] {
			t.Errorf("affinity cut at boundary %d crosses a shortcut edge", i)
		}
	}
	// LeastLoad on the same inputs is free to cut anywhere; on a
	// residual network its pure balance cut generally lands inside a
	// block, which is exactly the traffic affinity avoids.
	b := assign(LeastLoad, net, cfg.DType, perLayer, 3)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Log("leastload and affinity chose identical cuts on uniform weights (allowed, but unusual)")
	}
}

func TestClusterReconciles(t *testing.T) {
	cfg := core.Default()
	for _, topo := range []string{"ring", "mesh", "all"} {
		for _, place := range []string{"hash", "leastload", "affinity"} {
			spec := testSpec(t, testScenario+";topo="+topo+";place="+place)
			res, err := Run(cfg, spec, nil, nil)
			if err != nil {
				t.Fatalf("%s/%s: %v", topo, place, err)
			}
			if err := res.Reconcile(); err != nil {
				t.Errorf("%s/%s: %v", topo, place, err)
			}
			if res.MakespanCycles <= 0 {
				t.Errorf("%s/%s: makespan %d", topo, place, res.MakespanCycles)
			}
		}
	}
}

// TestShardedBitIdentical is the suspend-at-every-boundary determinism
// check: each request's own RunStats (cycles AND per-class traffic)
// must match an uncontended single-tenant run exactly, no matter how
// many chip boundaries sliced it.
func TestShardedBitIdentical(t *testing.T) {
	cfg := core.Default()
	// hash placement maximizes boundaries: nearly every layer is a cut.
	spec := testSpec(t, "seed=5;chips=3;place=hash;stream=squeezenet:n=2,gap=300000")
	res, err := Run(cfg, spec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Reconcile(); err != nil {
		t.Fatal(err)
	}
	s := res.Streams[0]
	if s.Crossings == 0 {
		t.Fatal("hash placement produced no chip crossings; the test is vacuous")
	}
	net, err := nn.Build("squeezenet")
	if err != nil {
		t.Fatal(err)
	}
	scfg := cfg
	scfg.Batch = 1
	scfg.AmortizeWeights = false
	single, err := core.Simulate(net, scfg, core.SCM, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.SingleTenantCycles != single.TotalCycles {
		t.Errorf("single-tenant baseline %d != core.Simulate %d", s.SingleTenantCycles, single.TotalCycles)
	}
	if s.ServiceCycles != int64(s.Completed)*single.TotalCycles {
		t.Errorf("sharded service cycles %d != %d × %d", s.ServiceCycles, s.Completed, single.TotalCycles)
	}
	for c := range single.Traffic {
		if s.Traffic[c] != int64(s.Completed)*single.Traffic[c] {
			t.Errorf("traffic class %d: sharded %d != %d × single-tenant %d",
				c, s.Traffic[c], s.Completed, single.Traffic[c])
		}
	}
}

func TestClusterDeterminism(t *testing.T) {
	cfg := core.Default()
	spec := testSpec(t, testScenario+";topo=mesh;place=affinity")
	a, err := Run(cfg, spec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, spec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Error("identical specs produced different results")
	}
}

func TestPlacementPoliciesDiffer(t *testing.T) {
	cfg := core.Default()
	makespan := map[string]int64{}
	crossings := map[string]int64{}
	for _, place := range []string{"hash", "leastload", "affinity"} {
		spec := testSpec(t, testScenario+";topo=ring;place="+place)
		res, err := Run(cfg, spec, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Reconcile(); err != nil {
			t.Fatalf("%s: %v", place, err)
		}
		var cross int64
		for _, s := range res.Streams {
			cross += s.Crossings
		}
		makespan[place] = res.MakespanCycles
		crossings[place] = cross
	}
	if makespan["hash"] == makespan["affinity"] && makespan["hash"] == makespan["leastload"] {
		t.Errorf("all placements produced the same makespan: %v", makespan)
	}
	if crossings["hash"] <= crossings["affinity"] {
		t.Errorf("hash crossings (%d) should exceed affinity crossings (%d)",
			crossings["hash"], crossings["affinity"])
	}
	if makespan["hash"] <= makespan["affinity"] {
		t.Errorf("hash makespan (%d) should exceed affinity makespan (%d): ping-pong placement must cost",
			makespan["hash"], makespan["affinity"])
	}
}

// TestClusterConcurrentRuns exercises concurrent shard execution under
// -race: independent Run calls share no mutable state, so N goroutines
// running the same scenario must produce byte-identical results.
func TestClusterConcurrentRuns(t *testing.T) {
	cfg := core.Default()
	spec := testSpec(t, testScenario+";topo=mesh;place=leastload")
	const workers = 4
	results := make([]string, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res, err := Run(cfg, spec, nil, nil)
			if err != nil {
				errs[w] = err
				return
			}
			j, err := json.Marshal(res)
			if err != nil {
				errs[w] = err
				return
			}
			results[w] = string(j)
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if results[w] != results[0] {
			t.Errorf("worker %d diverged from worker 0", w)
		}
	}
}

func TestClusterRejectsBadSpecs(t *testing.T) {
	cfg := core.Default()
	single := testSpec(t, "stream=squeezenet:n=1")
	if _, err := Run(cfg, single, nil, nil); err == nil {
		t.Error("cluster.Run accepted a single-chip spec")
	}
	if _, err := Run(cfg, nil, nil, nil); err == nil {
		t.Error("cluster.Run accepted a nil spec")
	}
}

func TestClusterMetricsAndTrace(t *testing.T) {
	cfg := core.Default()
	reg := metrics.New()
	var buf trace.Buffer
	spec := testSpec(t, testScenario+";topo=ring;place=hash")
	res, err := Run(cfg, spec, reg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Reconcile(); err != nil {
		t.Fatal(err)
	}
	links := buf.OfKind(trace.KindLink)
	if int64(len(links)) == 0 {
		t.Error("no link-occupancy trace events recorded")
	}
	var spanBytes int64
	for _, e := range links {
		if e.Tag == "" || e.DurCycles <= 0 {
			t.Fatalf("malformed link span: %+v", e)
		}
	}
	// Every granted window appears once per hop; on a 2-chip-distance
	// ring route a transfer yields multiple spans, so spans ≥ transfers.
	if int64(len(links)) < res.Noc.Transfers {
		t.Errorf("%d link spans < %d transfers", len(links), res.Noc.Transfers)
	}
	_ = spanBytes

	snap := reg.Snapshot()
	found := map[string]bool{}
	for _, c := range snap.Counters {
		found[c.Name] = true
	}
	for _, g := range snap.Gauges {
		found[g.Name] = true
	}
	for _, want := range []string{MetricRequests, MetricCrossings, MetricInterchipBytes,
		MetricMakespanCycles, MetricChipCompute, MetricNocTransfers, MetricNocBackpressure} {
		if !found[want] {
			t.Errorf("metric family %s missing from snapshot", want)
		}
	}
}

func TestResultTables(t *testing.T) {
	cfg := core.Default()
	spec := testSpec(t, testScenario+";topo=all;place=affinity")
	res, err := Run(cfg, spec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if md := res.Table().Markdown(); md == "" {
		t.Error("empty QoS table")
	}
	if md := res.ChipTable().Markdown(); md == "" {
		t.Error("empty chip table")
	}
	for _, q := range res.Requests {
		if q.Latency < q.ServiceCycles {
			t.Errorf("request %s#%d latency %d < service %d", q.Stream, q.Seq, q.Latency, q.ServiceCycles)
		}
	}
	if res.Noc.Topology != "all" {
		t.Errorf("fabric stats topology %q, want all", res.Noc.Topology)
	}
}
