package report

import (
	"bytes"
	"strings"
	"testing"

	"shortcutmining/internal/core"
)

func TestReductionVerdict(t *testing.T) {
	cases := []struct {
		measured, claimed float64
		want              string
	}{
		{0.535, 0.533, "match"},
		{0.43, 0.43, "match"},
		{0.688, 0.58, "overshoot by 11 pp"},
		{0.40, 0.58, "undershoot by 18 pp"},
	}
	for _, c := range cases {
		got := reductionVerdict(c.measured, c.claimed)
		if !strings.Contains(got, c.want) {
			t.Errorf("reductionVerdict(%.3f, %.3f) = %q, want contains %q", c.measured, c.claimed, got, c.want)
		}
	}
}

func TestSpeedupVerdict(t *testing.T) {
	if got := speedupVerdict(1.85, 1.93); !strings.Contains(got, "match") {
		t.Errorf("1.85 vs 1.93 = %q", got)
	}
	if got := speedupVerdict(1.30, 1.93); !strings.Contains(got, "direction holds") {
		t.Errorf("1.30 vs 1.93 = %q", got)
	}
	if got := speedupVerdict(0.9, 1.93); !strings.Contains(got, "NOT reproduced") {
		t.Errorf("0.9 vs 1.93 = %q", got)
	}
}

func TestScorecardOnDefaultPlatform(t *testing.T) {
	rows, err := Scorecard(core.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("scorecard rows = %d", len(rows))
	}
	// On the calibrated platform, SqueezeNet and ResNet-152 match and
	// the span claim holds exactly.
	byClaim := map[string]Row{}
	for _, r := range rows {
		byClaim[r.Claim] = r
	}
	for _, name := range []string{"squeezenet-bypass", "resnet152"} {
		r := byClaim[name+" feature-map traffic reduction"]
		if r.Verdict != "match" {
			t.Errorf("%s verdict = %q, want match", name, r.Verdict)
		}
	}
	if r := byClaim["Throughput vs state-of-the-art baseline"]; !strings.Contains(r.Verdict, "match") {
		t.Errorf("speedup verdict = %q", r.Verdict)
	}
	if r := byClaim["Shortcut reuse across any number of intermediate layers without extra buffers"]; !strings.Contains(r.Verdict, "match") {
		t.Errorf("span verdict = %q", r.Verdict)
	}
}

func TestGenerateFullDocument(t *testing.T) {
	var buf bytes.Buffer
	if err := Generate(&buf, core.Default()); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	for _, want := range []string{
		"# EXPERIMENTS",
		"## Headline scorecard",
		"## Suite output (generated)",
		"## E1 —", "## E9 —", "## E19 —", "## E23 —", "## E24 —",
		"53.3%", "1.93×",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("document missing %q", want)
		}
	}
	// Every registered experiment appears.
	if got := strings.Count(doc, "*Paper anchor:*"); got != 25 {
		t.Errorf("document has %d experiments, want 25", got)
	}
}
